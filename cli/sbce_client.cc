// sbce_client: sends AnalysisRequests to a running sbce_serve daemon.
//
//   sbce_client --socket /tmp/sbce.sock --bomb arr_one --profile Angr
//   sbce_client --socket /tmp/sbce.sock --stats
//   sbce_client --socket /tmp/sbce.sock --shutdown
//
// Prints the result document as JSON. --deterministic restricts the
// output to the fields guaranteed bit-identical cold/warm/concurrent —
// that is the document the smoke test diffs across repeat requests.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/obs/json.h"
#include "src/service/api.h"
#include "src/service/client.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH (--bomb ID | --stats | --ping | --shutdown)\n"
      "  --bomb ID              analyze a dataset bomb\n"
      "  --profile NAME         tool profile (default Ideal)\n"
      "  --baseline             disable query-pipeline optimizations\n"
      "  --no-checkpoints       disable checkpoint re-exploration\n"
      "  --max-rounds N         engine round budget override\n"
      "  --max-queries N        solver query budget override\n"
      "  --solver-threads N     solver dispatch width override\n"
      "  --path-condition       include the seed path condition\n"
      "  --trace                include observability records inline\n"
      "  --deterministic        print only the deterministic result core\n"
      "  --stats                print daemon warm-cache/queue statistics\n"
      "  --ping                 round-trip a ping\n"
      "  --shutdown             ask the daemon to drain and exit\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbce;
  std::string socket_path;
  service::AnalysisRequest request;
  bool deterministic = false;
  bool do_stats = false;
  bool do_ping = false;
  bool do_shutdown = false;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      socket_path = value();
    } else if (std::strcmp(argv[i], "--bomb") == 0) {
      request.bomb = value();
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      request.profile = value();
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      request.baseline_pipeline = true;
    } else if (std::strcmp(argv[i], "--no-checkpoints") == 0) {
      request.no_checkpoints = true;
    } else if (std::strcmp(argv[i], "--max-rounds") == 0) {
      request.budgets.max_rounds = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-queries") == 0) {
      request.budgets.max_solver_queries = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--solver-threads") == 0) {
      request.budgets.solver_threads =
          static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--path-condition") == 0) {
      request.want_path_condition = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      request.want_trace = true;
    } else if (std::strcmp(argv[i], "--deterministic") == 0) {
      deterministic = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      do_stats = true;
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      do_ping = true;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      do_shutdown = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (socket_path.empty() ||
      (request.bomb.empty() && !do_stats && !do_ping && !do_shutdown)) {
    Usage(argv[0]);
    return 2;
  }

  auto client_or = service::Client::Connect(socket_path);
  if (!client_or.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(client_or).value();

  if (do_ping) {
    Status status = client.Ping();
    if (!status.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("pong\n");
  }
  if (!request.bomb.empty()) {
    auto doc = client.AnalyzeJson(request);
    if (!doc.ok()) {
      std::fprintf(stderr, "analyze failed: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    if (deterministic) {
      auto result = service::ResultFromJson(doc.value());
      if (!result.ok()) {
        std::fprintf(stderr, "bad result document: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("%s\n",
                  obs::Dump(service::ResultToJson(
                                result.value(), /*deterministic_only=*/true))
                      .c_str());
    } else {
      std::printf("%s\n", obs::Dump(doc.value()).c_str());
    }
    const auto* ok = doc.value().Find("ok");
    if (ok != nullptr && !ok->AsBool()) return 1;
  }
  if (do_stats) {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", obs::Dump(stats.value()).c_str());
  }
  if (do_shutdown) {
    Status status = client.Shutdown();
    if (!status.ok()) {
      std::fprintf(stderr, "shutdown failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("daemon shutting down\n");
  }
  return 0;
}
