// sbce_corpus: generate a parametric logic-bomb corpus, run it through
// the grid via the unified analysis API, and print the per-challenge-
// category scaling report.
//
//   sbce_corpus                      # default 72-cell corpus, all tools
//   sbce_corpus --smoke              # one parameter per family
//   sbce_corpus --jobs 8 --json      # parallel run, machine-readable
//   sbce_corpus --list               # print cells + ground truth, no run
//   sbce_corpus --cell gen_arr_03    # one cell through service::Analyze
//
// The grid and --json documents are bit-identical for every --jobs value
// (tools::RunGrid's determinism contract), and the corpus itself is a
// pure function of --seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/obs/json.h"
#include "src/report/scaling.h"
#include "src/service/api.h"
#include "src/tools/profiles.h"
#include "src/tools/runner.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed N          corpus seed (default %llu)\n"
      "  --smoke           small one-param-per-family corpus\n"
      "  --profiles CSV    tool profiles (default "
      "BAP,Triton,Angr,Angr-NoLib,Ideal)\n"
      "  --jobs N          parallel grid width (0 = hardware)\n"
      "  --json            print one JSON document instead of tables\n"
      "  --list            print generated cells + ground truth, no run\n"
      "  --cell ID         analyze one corpus cell via the service API\n"
      "  --baseline        disable query-pipeline optimizations\n"
      "  --no-checkpoints  disable checkpoint re-exploration\n"
      "  --no-presolve     disable the abstract pre-solver\n"
      "  --max-rounds N    engine round budget override\n",
      argv0, static_cast<unsigned long long>(sbce::corpus::kDefaultSeed));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbce;

  uint64_t seed = corpus::kDefaultSeed;
  bool smoke = false;
  bool json = false;
  bool list = false;
  std::string one_cell;
  std::string profiles_csv = "BAP,Triton,Angr,Angr-NoLib,Ideal";
  unsigned jobs = 1;
  tools::RunOptions options;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(value(), nullptr, 0);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--profiles") == 0) {
      profiles_csv = value();
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--cell") == 0) {
      one_cell = value();
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      options.baseline_pipeline = true;
    } else if (std::strcmp(argv[i], "--no-checkpoints") == 0) {
      options.no_checkpoints = true;
    } else if (std::strcmp(argv[i], "--no-presolve") == 0) {
      options.no_presolve = true;
    } else if (std::strcmp(argv[i], "--max-rounds") == 0) {
      options.max_rounds = std::strtoull(value(), nullptr, 10);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  // One cell through the corpus-cell addressing mode of the service API:
  // exactly what a wire client would send.
  if (!one_cell.empty()) {
    service::AnalysisRequest request;
    // First --profiles entry doubles as the profile for single-cell runs.
    const size_t comma = profiles_csv.find(',');
    request.profile = profiles_csv.substr(0, comma);
    request.corpus_cell = one_cell;
    request.corpus_seed = seed == corpus::kDefaultSeed ? 0 : seed;
    request.budgets.max_rounds = options.max_rounds;
    request.baseline_pipeline = options.baseline_pipeline;
    request.no_checkpoints = options.no_checkpoints;
    request.no_presolve = options.no_presolve;
    const service::AnalysisResult res = service::Analyze(request);
    std::printf("%s\n",
                obs::Dump(service::ResultToJson(res, /*deterministic_only=*/
                                                true))
                    .c_str());
    return res.ok ? 0 : 1;
  }

  corpus::CorpusSpec spec = smoke ? corpus::SmokeSpec() : corpus::CorpusSpec{};
  spec.seed = seed;
  auto generated = corpus::Generate(spec);
  if (!generated.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const corpus::Corpus corpus = std::move(generated).value();

  if (list) {
    for (const auto& cell : corpus.cells) {
      const bombs::GroundTruth truth = bombs::GroundTruthFor(cell.spec);
      std::printf("%-18s %-14s param=%-2d %s witness=%s\n",
                  cell.spec.id.c_str(),
                  std::string(corpus::FamilyName(cell.family)).c_str(),
                  cell.param, cell.negative ? "negative" : "positive",
                  truth.expect_trigger ? truth.argv.back().c_str() : "(none)");
    }
    std::printf("%zu cells, digest %llx\n", corpus.cells.size(),
                static_cast<unsigned long long>(corpus.digest));
    return 0;
  }

  std::vector<tools::ToolProfile> tools;
  {
    std::string csv = profiles_csv;
    size_t start = 0;
    while (start <= csv.size()) {
      const size_t comma = csv.find(',', start);
      const std::string name =
          csv.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
      if (!name.empty()) {
        auto profile = tools::ProfileByName(name);
        if (!profile) {
          std::fprintf(stderr, "unknown profile: %s\n", name.c_str());
          return 2;
        }
        tools.push_back(std::move(*profile));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  const auto cells = tools::CorpusCells(corpus, tools);
  if (!json) {
    std::printf("corpus seed %llu: %zu cells x %zu profiles = %zu grid "
                "cells (--jobs %u)\n\n",
                static_cast<unsigned long long>(corpus.seed),
                corpus.cells.size(), tools.size(), cells.size(), jobs);
  }
  const auto grid = tools::RunGrid(cells, options, jobs);
  const auto report = report::BuildScalingReport(corpus, grid);

  if (json) {
    obs::JsonValue doc = obs::JsonValue::Object();
    doc.Set("corpus_seed", obs::JsonValue::U64(corpus.seed));
    doc.Set("corpus_digest", obs::JsonValue::U64(corpus.digest));
    doc.Set("corpus_cells", obs::JsonValue::U64(corpus.cells.size()));
    doc.Set("grid", tools::GridToJson(grid));
    doc.Set("scaling", report::ScalingToJson(report));
    std::printf("%s\n", obs::Dump(doc).c_str());
  } else {
    std::printf("%s", report::RenderScalingReport(report).c_str());
  }
  return 0;
}
