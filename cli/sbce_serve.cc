// sbce_serve: the long-lived analysis daemon.
//
//   sbce_serve --socket /tmp/sbce.sock [--jobs 4] [--query-budget-mb 64]
//
// Serves AnalysisRequests over the AF_UNIX socket (wire protocol in
// src/service/wire.h), keeping images, predecoded text, warm solver
// verdicts and captured path conditions shared across requests. Stop it
// with `sbce_client --socket ... --shutdown` (drains in-flight work).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/service/daemon.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [options]\n"
      "  --socket PATH          AF_UNIX socket to listen on (required)\n"
      "  --jobs N               analysis concurrency per epoch (0 = auto)\n"
      "  --image-budget-mb N    warm image store budget (default 64)\n"
      "  --decode-budget-mb N   predecoded text store budget (default 64)\n"
      "  --query-budget-mb N    warm solver verdict budget (default 64)\n"
      "  --segment-budget-mb N  path-condition segment budget (default 32)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbce;
  service::Daemon::Options options;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* flag, const char** out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      *out = argv[++i];
      return true;
    };
    const char* v = nullptr;
    if (arg("--socket", &v)) {
      options.socket_path = v;
    } else if (arg("--jobs", &v)) {
      options.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg("--image-budget-mb", &v)) {
      options.warm.image_budget_bytes =
          std::strtoull(v, nullptr, 10) << 20;
    } else if (arg("--decode-budget-mb", &v)) {
      options.warm.decode_budget_bytes =
          std::strtoull(v, nullptr, 10) << 20;
    } else if (arg("--query-budget-mb", &v)) {
      options.warm.query_budget_bytes =
          std::strtoull(v, nullptr, 10) << 20;
    } else if (arg("--segment-budget-mb", &v)) {
      options.warm.segment_budget_bytes =
          std::strtoull(v, nullptr, 10) << 20;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    Usage(argv[0]);
    return 2;
  }

  service::Daemon daemon(options);
  Status status = daemon.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("sbce_serve: listening on %s\n", options.socket_path.c_str());
  std::fflush(stdout);
  daemon.Wait();
  std::printf("sbce_serve: shut down\n");
  return 0;
}
