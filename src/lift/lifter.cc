#include "src/lift/lifter.h"

#include "src/support/str.h"

namespace sbce::lift {

using isa::Opcode;

const std::set<Opcode>& FloatingPointOpcodes() {
  static const auto* kSet = new std::set<Opcode>{
      Opcode::kFAdd,   Opcode::kFSub, Opcode::kFMul, Opcode::kFDiv,
      Opcode::kFCmpEq, Opcode::kFCmpLt, Opcode::kFCmpLe,
      Opcode::kCvtIF,  Opcode::kCvtFI, Opcode::kFMov, Opcode::kFLd,
      Opcode::kFSt,    Opcode::kMovGF, Opcode::kMovFG,
  };
  return *kSet;
}

bool RequiresLifting(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kJmp:
      return false;
    default:
      return true;
  }
}

std::string RenderIl(const vm::TraceEvent& ev) {
  const auto& info = isa::GetOpcodeInfo(ev.instr.op);
  const std::string mnem(info.mnemonic);
  const auto pc = static_cast<unsigned long long>(ev.pc);
  if (info.is_branch) {
    return StrFormat("0x%llx: if %s(r%u=0x%llx) goto 0x%llx  [%s]", pc,
                     ev.instr.op == Opcode::kBz ? "zero" : "nonzero",
                     ev.instr.rs1, static_cast<unsigned long long>(ev.rs1_val),
                     static_cast<unsigned long long>(ev.next_pc),
                     ev.branch_taken ? "taken" : "fallthrough");
  }
  if (ev.instr.op == Opcode::kJmpR || ev.instr.op == Opcode::kCallR) {
    return StrFormat("0x%llx: %s -> r%u=0x%llx", pc, mnem.c_str(),
                     ev.instr.rs1,
                     static_cast<unsigned long long>(ev.rs1_val));
  }
  if (ev.instr.op == Opcode::kSys) {
    return StrFormat("0x%llx: sys %d -> 0x%llx", pc, ev.sys_num,
                     static_cast<unsigned long long>(ev.sys_ret));
  }
  if (info.is_load) {
    return StrFormat("0x%llx: %c%u := %s [0x%llx] = 0x%llx", pc,
                     info.is_fp ? 'f' : 'r', ev.instr.rd, mnem.c_str(),
                     static_cast<unsigned long long>(ev.mem_addr),
                     static_cast<unsigned long long>(ev.mem_value));
  }
  if (info.is_store) {
    return StrFormat("0x%llx: %s [0x%llx] := 0x%llx", pc, mnem.c_str(),
                     static_cast<unsigned long long>(ev.mem_addr),
                     static_cast<unsigned long long>(ev.mem_value));
  }
  return StrFormat("0x%llx: %c%u := %s(rs1=0x%llx, rs2=0x%llx)", pc,
                   info.is_fp ? 'f' : 'r', ev.instr.rd, mnem.c_str(),
                   static_cast<unsigned long long>(ev.rs1_val),
                   static_cast<unsigned long long>(ev.rs2_val));
}

}  // namespace sbce::lift
