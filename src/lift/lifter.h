// Instruction lifting surface.
//
// The conceptual framework in the paper lifts traced instructions into an
// intermediate language before symbolic reasoning. Here the lifter is the
// opcode-semantics surface of the trace executor: this module defines
// which opcodes a lifter must express, the canonical groupings real tools
// fail on (floating point!), and a printable IL rendering used by
// diagnostics, tests and docs. The actual expression-building transfer
// functions live in symex::TraceExecutor, parameterized by the
// supported-opcode set from SymexConfig — reaching an unsupported opcode
// with symbolic operands is the paper's Es1.
#pragma once

#include <set>
#include <string>

#include "src/isa/opcode.h"
#include "src/vm/trace_event.h"

namespace sbce::lift {

/// Opcodes whose semantics involve IEEE-754 floating point. Triton (as
/// studied) could not lift cvtsi2sd / ucomisd and friends; removing this
/// set from a profile's supported opcodes reproduces that gap.
const std::set<isa::Opcode>& FloatingPointOpcodes();

/// True if `op` manipulates data (needs lifting for symbolic reasoning);
/// false for pure control/no-ops (nop, halt, jmp, call, ret).
bool RequiresLifting(isa::Opcode op);

/// Renders the traced instruction as a one-line IL statement, e.g.
///   "r3 := bvadd(r1=0x5, r2=0x2)"
///   "if (r1=0x0 == 0) goto 0x1040  [taken]"
/// Used for Es1 diagnostics and trace dumps.
std::string RenderIl(const vm::TraceEvent& event);

}  // namespace sbce::lift
