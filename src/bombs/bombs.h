// The logic-bomb dataset (the paper's open-source benchmark, §V.A).
//
// Each bomb is a small SBVM binary whose SYS_BOMB block is guarded by one
// challenge. Specs carry: the program source, the seed input the engines
// start from, the ground-truth witness (input and/or environment that
// detonates it), any filesystem/device preconditions, and the outcome the
// paper's Table II reports for each of the four studied tools.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/isa/image.h"
#include "src/support/status.h"
#include "src/vm/devices.h"

namespace sbce::bombs {

enum class Category : uint8_t {
  kSymbolicDeclaration,
  kCovertPropagation,
  kParallel,
  kSymbolicArray,
  kContextual,
  kSymbolicJump,
  kFloatingPoint,
  kExternalCall,
  kCrypto,
  kNegative,   // infeasible path (false-positive probe, §V.C)
  kDemo,       // Figure 3 programs
  kTwoStage,   // generated two-stage trigger compositions (src/corpus)
};

std::string_view CategoryName(Category c);

/// Index into BombSpec::expected.
enum ToolIndex { kBap = 0, kTriton = 1, kAngr = 2, kAngrNoLib = 3 };

struct BombSpec {
  std::string id;
  Category category = Category::kDemo;
  std::string challenge;  // Table II row description

  std::string source;     // complete assembly (guest library included)

  std::vector<std::string> seed_argv;     // engines start here
  std::vector<std::string> witness_argv;  // detonating argv ("" row: none)
  bool argv_can_trigger = false;  // under experiment devices/filesystem

  vm::Devices experiment_devices;  // environment the tools run in
  vm::Devices trigger_devices;     // environment where the witness works
  std::map<std::string, std::string> files;  // pre-created files

  /// Paper Table II outcomes: "OK", "Es0".."Es3", "E", "P"; "-" for rows
  /// the paper does not contain (negative bomb, Figure 3 programs).
  std::array<std::string, 4> expected = {"-", "-", "-", "-"};
  /// What our reference (ideal) engine is expected to achieve.
  std::string expected_ideal;
};

/// All 22 Table II bombs, in paper order, followed by the negative bomb
/// and the two Figure 3 programs.
const std::vector<BombSpec>& AllBombs();

/// nullptr if not found.
const BombSpec* FindBomb(std::string_view id);

/// Bombs belonging to the 22-row Table II grid (excludes negative/demo).
std::vector<const BombSpec*> TableTwoBombs();

/// Assembles a bomb (aborts on assembler errors — specs are tested).
isa::BinaryImage BuildBomb(const BombSpec& spec);

/// Address of the bomb label in a built image.
uint64_t BombAddress(const isa::BinaryImage& image);

/// A spec's machine-checkable ground truth: the concrete argv, devices
/// and filesystem under which the bomb must detonate — or, for negative
/// specs (no witness argv and no triggering environment), the claim that
/// the seed input must NOT detonate it. Derived entirely from the spec's
/// fields, so every BombSpec carries a checkable trigger input rather
/// than one documented in comments.
struct GroundTruth {
  std::vector<std::string> argv;
  vm::Devices devices;
  std::map<std::string, std::string> files;
  /// False for negative specs: `argv` is the seed and running it must
  /// leave the bomb untriggered.
  bool expect_trigger = true;
};
GroundTruth GroundTruthFor(const BombSpec& spec);

/// Verify-before-admit: builds the image and concretely executes it twice
/// — the seed input (must not detonate, must not fault) and the ground
/// truth (must detonate; must not for negative specs). This is the gate
/// every generated corpus cell passes before admission, and the same
/// check the dataset tests apply to the 22 seed bombs.
Status VerifyGroundTruth(const BombSpec& spec);

}  // namespace sbce::bombs
