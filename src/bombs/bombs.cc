#include "src/bombs/bombs.h"

#include <bit>

#include "src/crypto/aes.h"
#include "src/crypto/sha1.h"
#include "src/vm/machine.h"
#include "src/guestlib/guestlib.h"
#include "src/isa/assembler.h"
#include "src/support/status.h"
#include "src/support/str.h"

namespace sbce::bombs {

namespace {

// Every bomb program ends with this suffix: the bomb block and the clean
// exit. `bomb:` is the label the engines target.
constexpr std::string_view kBombTail = R"(
  bomb:
    sys 16
  exit:
    movi r1, 0
    sys 0
)";

std::string WithLib(std::string main_text) {
  return main_text + guestlib::EmitGuestLib();
}

std::string FpBits(double d) {
  return StrFormat("0x%016llx",
                   static_cast<unsigned long long>(std::bit_cast<uint64_t>(d)));
}

std::string ByteList(std::span<const uint8_t> bytes) {
  std::string out;
  for (size_t i = 0; i < bytes.size(); ++i) {
    out += StrFormat("%s0x%02x", i == 0 ? "" : ",", bytes[i]);
  }
  return out;
}

uint64_t HostRand(uint64_t seed) {
  uint64_t state = seed;
  for (int i = 0; i < guestlib::kRandRounds; ++i) {
    state ^= state >> 13;
    state = (state * ((state >> 7) | 1) + 12345u) & 0x7fffffffu;
  }
  return state;
}

std::vector<BombSpec> BuildAll() {
  std::vector<BombSpec> bombs;

  // =====================================================================
  // Symbolic variable declaration
  // =====================================================================
  {
    BombSpec b;
    b.id = "svd_time";
    b.category = Category::kSymbolicDeclaration;
    b.challenge = "Employ time info in conditions for triggering a bomb";
    b.source = WithLib(R"(
      .entry main
      main:
        sys 5                      ; time()
        cmpeqi r5, r0, 1700000777
        bz r5, exit
    )" + std::string(kBombTail));
    b.seed_argv = {"prog", "seed"};
    b.argv_can_trigger = false;
    b.trigger_devices.time_seconds = 1'700'000'777;
    b.expected = {"Es0", "Es0", "Es0", "Es0"};
    b.expected_ideal = "Es0";  // nobody declares the clock symbolic
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "svd_web";
    b.category = Category::kSymbolicDeclaration;
    b.challenge = "Employ web contents in conditions for triggering a bomb";
    b.source = WithLib(R"(
      .entry main
      main:
        lea r1, webbuf
        movi r2, 64
        sys 15                     ; webget
        lea r4, webbuf
        ld1 r5, [r4+0]
        cmpeqi r6, r5, 'P'
        bz r6, exit
        ld1 r5, [r4+1]
        cmpeqi r6, r5, 'W'
        bz r6, exit
        ld1 r5, [r4+2]
        cmpeqi r6, r5, 'N'
        bz r6, exit
    )" + std::string(kBombTail) + R"(
      .data
      webbuf: .space 64
    )");
    b.seed_argv = {"prog", "seed"};
    b.argv_can_trigger = false;
    b.trigger_devices.web_document = "PWN! - detonation document";
    b.expected = {"Es0", "Es0", "E", "E"};
    b.expected_ideal = "Es0";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "svd_syscall";
    b.category = Category::kSymbolicDeclaration;
    b.challenge = "Employ the return values of system calls in conditions";
    b.source = WithLib(R"(
      .entry main
      main:
        sys 8                      ; getpid()
        movi r4, 7
        urem r5, r0, r4
        cmpeqi r6, r5, 3
        bz r6, exit
    )" + std::string(kBombTail));
    b.seed_argv = {"prog", "seed"};
    b.argv_can_trigger = false;
    b.trigger_devices.first_pid = 4245;  // 4245 % 7 == 3
    b.expected = {"Es0", "Es0", "P", "P"};
    b.expected_ideal = "Es0";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "svd_argvlen";
    b.category = Category::kSymbolicDeclaration;
    b.challenge = "Employ the length of argv[1] in conditions";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        movi r10, 0                ; n = strlen(argv[1]) inline
      len_loop:
        ldx1 r4, [r9+r10]
        bz r4, len_done
        addi r10, r10, 1
        jmp len_loop
      len_done:
        cmpeqi r5, r10, 9
        bz r5, exit
    )" + std::string(kBombTail));
    b.seed_argv = {"prog", "a"};
    b.witness_argv = {"prog", "AAAAAAAAA"};
    b.argv_can_trigger = true;
    b.expected = {"Es2", "Es0", "OK", "OK"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }

  // =====================================================================
  // Covert symbolic propagation
  // =====================================================================
  {
    BombSpec b;
    b.id = "csp_stack";
    b.category = Category::kCovertPropagation;
    b.challenge = "Push symbolic values into the stack and pop out";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        push r10
        pop r11
        cmpeqi r5, r11, 'Q'
        bz r5, exit
    )" + std::string(kBombTail));
    b.seed_argv = {"prog", "A"};
    b.witness_argv = {"prog", "Q"};
    b.argv_can_trigger = true;
    b.expected = {"Es1", "OK", "OK", "OK"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "csp_file";
    b.category = Category::kCovertPropagation;
    b.challenge = "Save symbolic values to a file and then read back";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        lea r4, iobuf
        st1 r10, [r4+0]
        lea r1, path               ; fd = open("tmp.dat", write)
        movi r2, 1
        sys 3
        mov r8, r0
        mov r1, r8                 ; write(fd, iobuf, 1)
        lea r2, iobuf
        movi r3, 1
        sys 1
        mov r1, r8                 ; close(fd)
        sys 4
        lea r1, path               ; fd = open("tmp.dat", read)
        movi r2, 0
        sys 3
        mov r8, r0
        mov r1, r8                 ; read(fd, iobuf2, 1)
        lea r2, iobuf2
        movi r3, 1
        sys 2
        lea r4, iobuf2
        ld1 r5, [r4+0]
        cmpeqi r6, r5, '7'
        bz r6, exit
    )" + std::string(kBombTail) + R"(
      .data
      path:   .asciz "tmp.dat"
      iobuf:  .space 8
      iobuf2: .space 8
    )");
    b.seed_argv = {"prog", "A"};
    b.witness_argv = {"prog", "7"};
    b.argv_can_trigger = true;
    b.expected = {"Es2", "Es2", "E", "Es2"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "csp_syscall";
    b.category = Category::kCovertPropagation;
    b.challenge = "Save symbolic values via system call and then read back";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        lea r1, key                ; echo_store("stash", byte)
        mov r2, r10
        sys 18
        lea r1, key                ; echo_load("stash")
        sys 19
        cmpeqi r5, r0, '5'
        bz r5, exit
    )" + std::string(kBombTail) + R"(
      .data
      key: .asciz "stash"
    )");
    b.seed_argv = {"prog", "A"};
    b.witness_argv = {"prog", "5"};
    b.argv_can_trigger = true;
    b.expected = {"Es2", "Es2", "P", "P"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "csp_exception";
    b.category = Category::kCovertPropagation;
    b.challenge = "Change symbolic values in an exception (argv[1] = 0)";
    b.source = WithLib(R"(
      .entry main
      main:
        movi r1, handler
        sys 14                     ; settrap
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        subi r10, r10, '0'
        movi r5, 100
        udiv r6, r5, r10           ; traps iff argv digit == 0
        movi r1, 0
        sys 0
      handler:
    )" + std::string(kBombTail));
    b.seed_argv = {"prog", "5"};
    b.witness_argv = {"prog", "0"};
    b.argv_can_trigger = true;
    b.expected = {"OK", "Es1", "E", "Es2"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "csp_fileexcept";
    b.category = Category::kCovertPropagation;
    b.challenge = "Change symbolic values in an file operation exception";
    b.source = WithLib(R"(
      .entry main
      main:
        movi r1, handler
        sys 14
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        subi r10, r10, '0'
        lea r1, path               ; open("missing.cfg") fails -> trap
        movi r2, 0
        sys 3
        trapneg r0
        movi r1, 0
        sys 0
      handler:
        mov r1, r10                ; the "exception object" carries the value
        call gl_unwind_deliver
        muli r0, r0, 2
        cmpeqi r5, r0, 14
        bz r5, exit
    )" + std::string(kBombTail) + R"(
      .data
      path: .asciz "missing.cfg"
    )");
    b.seed_argv = {"prog", "1"};
    b.witness_argv = {"prog", "7"};
    b.argv_can_trigger = true;
    b.expected = {"Es2", "Es2", "Es2", "Es2"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }

  // =====================================================================
  // Parallel programs
  // =====================================================================
  {
    BombSpec b;
    b.id = "par_pthread";
    b.category = Category::kParallel;
    b.challenge = "Change symbolic values in multi-threads via pthread";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        subi r10, r10, '0'
        lea r4, cell
        st8 r10, [r4+0]
        movi r1, worker            ; tid = thread_create(worker, 0)
        movi r2, 0
        sys 11
        mov r1, r0
        sys 12                     ; join
        lea r4, cell
        ld8 r5, [r4+0]
        cmpeqi r6, r5, 8
        bz r6, exit
    )" + std::string(kBombTail) + R"(
      worker:
        lea r4, cell
        ld8 r5, [r4+0]
        addi r5, r5, 1
        st8 r5, [r4+0]
        halt
      .data
      cell: .quad 0
    )");
    b.seed_argv = {"prog", "1"};
    b.witness_argv = {"prog", "7"};
    b.argv_can_trigger = true;
    b.expected = {"OK", "Es2", "Es2", "Es2"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "par_forkpipe";
    b.category = Category::kParallel;
    b.challenge = "Change symbolic values in multi-processes via fork/pipe";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        lea r1, fdbuf
        sys 10                     ; pipe
        sys 9                      ; fork
        bnz r0, parent
        xori r10, r10, 0x5A        ; child transforms the value
        lea r4, cell
        st8 r10, [r4+0]
        lea r4, fdbuf
        ld8 r1, [r4+8]
        lea r2, cell
        movi r3, 8
        sys 1                      ; write through the pipe
        movi r1, 0
        sys 0
      parent:
        lea r4, fdbuf
        ld8 r1, [r4+0]
        lea r2, cell2
        movi r3, 8
        sys 2                      ; read (blocks for the child)
        lea r4, cell2
        ld8 r5, [r4+0]
        cmpeqi r6, r5, 0x69
        bz r6, exit
    )" + std::string(kBombTail) + R"(
      .data
      fdbuf: .space 16
      cell:  .space 8
      cell2: .space 8
    )");
    b.seed_argv = {"prog", "A"};
    b.witness_argv = {"prog", "3"};  // '3' ^ 0x5A == 0x69
    b.argv_can_trigger = true;
    b.expected = {"Es2", "Es2", "Es2", "OK"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }

  // =====================================================================
  // Symbolic arrays
  // =====================================================================
  {
    BombSpec b;
    b.id = "arr_one";
    b.category = Category::kSymbolicArray;
    b.challenge = "Employ symbolic values as offsets for a level-one array";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        subi r10, r10, '0'
        lea r6, table
        ldx1 r5, [r6+r10]
        cmpeqi r7, r5, 77
        bz r7, exit
    )" + std::string(kBombTail) + R"(
      .data
      table: .byte 11, 22, 33, 44, 55, 66, 77, 88, 99, 12
    )");
    b.seed_argv = {"prog", "0"};
    b.witness_argv = {"prog", "6"};
    b.argv_can_trigger = true;
    b.expected = {"Es3", "Es3", "OK", "OK"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "arr_two";
    b.category = Category::kSymbolicArray;
    b.challenge = "Employ symbolic values as offsets for a level-two array";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        subi r10, r10, '0'
        lea r6, t1
        ldx1 r5, [r6+r10]          ; j = t1[digit]
        lea r6, t2
        ldx1 r5, [r6+r5]           ; v = t2[j]
        cmpeqi r7, r5, 0x5C
        bz r7, exit
    )" + std::string(kBombTail) + R"(
      .data
      t1: .byte 3, 9, 14, 2, 7, 11, 5, 1, 12, 6
      t2: .byte 0,0,0,0,0,0,0,0x5C,0,0,0,0,0,0,0,0
    )");
    b.seed_argv = {"prog", "0"};
    b.witness_argv = {"prog", "4"};  // t1[4]=7, t2[7]=0x5C
    b.argv_can_trigger = true;
    b.expected = {"Es3", "Es3", "Es3", "Es3"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }

  // =====================================================================
  // Contextual symbolic values
  // =====================================================================
  {
    BombSpec b;
    b.id = "ctx_filename";
    b.category = Category::kContextual;
    b.challenge = "Employ symbolic values as the name of a file";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        lea r4, namebuf
        st1 r10, [r4+4]            ; "file_.txt" <- argv[1][0]
        lea r1, namebuf
        movi r2, 0
        sys 3                      ; open succeeds only for the right name
        cmpltsi r5, r0, 0
        bnz r5, exit
    )" + std::string(kBombTail) + R"(
      .data
      namebuf: .asciz "file_.txt"
    )");
    b.seed_argv = {"prog", "A"};
    b.witness_argv = {"prog", "Z"};
    b.argv_can_trigger = true;
    b.files = {{"fileZ.txt", "present"}};
    b.expected = {"Es2", "Es3", "Es2", "Es2"};
    b.expected_ideal = "Es2";  // environment lookup is not invertible
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "ctx_syscallname";
    b.category = Category::kContextual;
    b.challenge = "Employ symbolic values as the name of a system call";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        lea r4, namebuf
        st1 r10, [r4+3]            ; "key_" <- argv[1][0]
        lea r1, namebuf
        sys 19                     ; echo_load(selector)
        cmpeqi r5, r0, 1
        bz r5, exit
    )" + std::string(kBombTail) + R"(
      .data
      namebuf: .asciz "key_"
    )");
    b.seed_argv = {"prog", "A"};
    b.witness_argv = {"prog", "Z"};
    b.argv_can_trigger = true;
    b.experiment_devices.echo_store = {{"keyZ", 1}};
    b.trigger_devices.echo_store = {{"keyZ", 1}};
    b.expected = {"Es2", "Es3", "Es2", "Es2"};
    b.expected_ideal = "Es2";
    bombs.push_back(std::move(b));
  }

  // =====================================================================
  // Symbolic jumps
  // =====================================================================
  {
    BombSpec b;
    b.id = "jmp_direct";
    b.category = Category::kSymbolicJump;
    b.challenge = "Employ symbolic values as unconditional jump addresses";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        subi r10, r10, '0'
        muli r10, r10, 8
        movi r5, slots
        add r5, r5, r10
        jmpr r5
      slots:
      exit:
        movi r1, 0
        sys 0
        nop
      bomb:
        sys 16
        movi r1, 0
        sys 0
    )");
    b.seed_argv = {"prog", "0"};
    b.witness_argv = {"prog", "3"};  // slots + 3*8 lands on the bomb
    b.argv_can_trigger = true;
    b.expected = {"Es3", "Es3", "Es2", "Es2"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "jmp_table";
    b.category = Category::kSymbolicJump;
    b.challenge = "Employ symbolic values as offsets to an address array";
    b.source = WithLib(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        subi r10, r10, '0'
        muli r10, r10, 8
        lea r6, jumptable
        ldx8 r5, [r6+r10]
        jmpr r5
    )" + std::string(kBombTail) + R"(
      .data
      jumptable: .quad exit, exit, bomb, exit, exit, exit, exit, exit, exit, exit
    )");
    b.seed_argv = {"prog", "0"};
    b.witness_argv = {"prog", "2"};
    b.argv_can_trigger = true;
    b.expected = {"Es3", "Es3", "Es3", "Es3"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }

  // =====================================================================
  // Floating point
  // =====================================================================
  {
    BombSpec b;
    b.id = "fp_round";
    b.category = Category::kFloatingPoint;
    b.challenge = "Employ floating-point numbers in symbolic conditions";
    const std::string fp_round_fmt = R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        subi r10, r10, '0'
        cvtif f0, r10
        lea r4, fpc
        fld f1, [r4+0]             ; 1e-20
        fmul f2, f0, f1            ; tiny = digit * 1e-20
        fld f3, [r4+8]             ; 1024.0
        fadd f4, f3, f2
        fcmpeq r5, f4, f3          ; absorbed by rounding?
        bz r5, exit
        fld f5, [r4+16]            ; 0.0
        fcmplt r6, f5, f2          ; and still positive?
        bz r6, exit
    )" + std::string(kBombTail) + R"(
      .data
      fpc: .quad %s, %s, %s
    )";
    b.source = WithLib(StrFormat(fp_round_fmt.c_str(), FpBits(1e-20).c_str(),
                                 FpBits(1024.0).c_str(), FpBits(0.0).c_str()));
    b.seed_argv = {"prog", "0"};
    b.witness_argv = {"prog", "1"};
    b.argv_can_trigger = true;
    b.expected = {"Es1", "Es1", "E", "Es3"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }

  // =====================================================================
  // External function calls (scalability)
  // =====================================================================
  {
    BombSpec b;
    b.id = "ext_sin";
    b.category = Category::kExternalCall;
    b.challenge = "Employ symbolic values as the parameter of sin";
    const std::string ext_sin_fmt = R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        subi r10, r10, '0'
        cvtif f0, r10
        lea r4, fpc
        fld f1, [r4+0]             ; 0.25
        fmul f0, f0, f1
        call gl_sin
        lea r4, fpc
        fld f2, [r4+8]             ; 0.247
        fcmplt r5, f2, f0
        bz r5, exit
        fld f3, [r4+16]            ; 0.248
        fcmplt r6, f0, f3
        bz r6, exit
    )" + std::string(kBombTail) + R"(
      .data
      fpc: .quad %s, %s, %s
    )";
    b.source = WithLib(StrFormat(ext_sin_fmt.c_str(), FpBits(0.25).c_str(),
                                 FpBits(0.247).c_str(), FpBits(0.248).c_str()));
    b.seed_argv = {"prog", "0"};
    b.witness_argv = {"prog", "1"};  // sin(0.25) ~ 0.2474
    b.argv_can_trigger = true;
    b.expected = {"Es1", "Es1", "E", "Es2"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "ext_srand";
    b.category = Category::kExternalCall;
    b.challenge = "Employ symbolic values as the parameter of srand";
    // Two consecutive outputs pin the 64-bit seed (near-)uniquely, so
    // seed recovery is a genuine search problem rather than a lookup.
    const std::string srand_key = "magicKey";
    uint64_t seed_val = 0;
    for (int i = 7; i >= 0; --i) {
      seed_val = (seed_val << 8) | static_cast<uint8_t>(srand_key[i]);
    }
    const uint64_t t1 = HostRand(seed_val);
    const uint64_t t2 = HostRand(t1);
    b.source = WithLib(StrFormat(R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld8 r10, [r9+0]            ; seed = first 8 raw bytes of argv[1]
        mov r1, r10
        call gl_srand
        call gl_rand
        mov r10, r0
        call gl_rand
        mov r11, r0
        cmpeqi r5, r10, %llu
        bz r5, exit
        cmpeqi r5, r11, %llu
        bz r5, exit
    )",
                                 static_cast<unsigned long long>(t1),
                                 static_cast<unsigned long long>(t2)) +
                       std::string(kBombTail));
    b.seed_argv = {"prog", "12345678"};
    b.witness_argv = {"prog", srand_key};
    b.argv_can_trigger = true;
    b.expected = {"Es2", "E", "E", "Es2"};
    b.expected_ideal = "E";  // seed recovery exceeds any sane budget
    bombs.push_back(std::move(b));
  }

  // =====================================================================
  // Crypto functions (scalability)
  // =====================================================================
  {
    BombSpec b;
    b.id = "cry_sha1";
    b.category = Category::kCrypto;
    b.challenge = "Infer the plain text from an SHA1 result";
    const std::string preimage = "Dsn2017!";
    const auto digest = crypto::Sha1(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(preimage.data()), preimage.size()));
    const std::string sha1_fmt = R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        movi r11, 0                ; inline strlen
      len_loop:
        ldx1 r4, [r9+r11]
        bz r4, len_done
        addi r11, r11, 1
        jmp len_loop
      len_done:
        mov r1, r9
        mov r2, r11
        lea r3, digestbuf
        call gl_sha1
        movi r11, 0
      cmp_loop:
        lea r4, digestbuf
        ldx1 r5, [r4+r11]
        lea r4, target
        ldx1 r6, [r4+r11]
        cmpeq r7, r5, r6
        bz r7, exit
        addi r11, r11, 1
        cmpltui r7, r11, 20
        bnz r7, cmp_loop
    )" + std::string(kBombTail) + R"(
      .data
      digestbuf: .space 20
      target: .byte %s
    )";
    b.source = WithLib(StrFormat(sha1_fmt.c_str(), ByteList(digest).c_str()));
    b.seed_argv = {"prog", "aaaaaaaa"};
    b.witness_argv = {"prog", preimage};
    b.argv_can_trigger = true;
    b.expected = {"E", "E", "E", "Es2"};
    b.expected_ideal = "E";
    bombs.push_back(std::move(b));
  }
  {
    BombSpec b;
    b.id = "cry_aes";
    b.category = Category::kCrypto;
    b.challenge = "Infer the key from an AES encryption result";
    const std::string key_str = "k3y-0f-l0gicbomb";  // 16 bytes
    crypto::AesKey key;
    crypto::AesBlock pt;
    const std::string pt_str = "SBCE-PLAINTEXT-0";
    for (int i = 0; i < 16; ++i) {
      key[i] = static_cast<uint8_t>(key_str[i]);
      pt[i] = static_cast<uint8_t>(pt_str[i]);
    }
    const auto ct = crypto::Aes128Encrypt(key, pt);
    const std::string aes_fmt = R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        movi r11, 0                ; copy up to 16 key bytes
      key_loop:
        ldx1 r4, [r9+r11]
        bz r4, key_done
        lea r5, keybuf
        stx1 r4, [r5+r11]
        addi r11, r11, 1
        cmpltui r4, r11, 16
        bnz r4, key_loop
      key_done:
        lea r1, keybuf
        lea r2, pt
        lea r3, ct
        call gl_aes128
        movi r11, 0
      cmp_loop:
        lea r4, ct
        ldx1 r5, [r4+r11]
        lea r4, target
        ldx1 r6, [r4+r11]
        cmpeq r7, r5, r6
        bz r7, exit
        addi r11, r11, 1
        cmpltui r7, r11, 16
        bnz r7, cmp_loop
    )" + std::string(kBombTail) + R"(
      .data
      keybuf: .space 16
      pt:     .byte %s
      ct:     .space 16
      target: .byte %s
    )";
    b.source = WithLib(StrFormat(aes_fmt.c_str(), ByteList(pt).c_str(),
                                 ByteList(ct).c_str()));
    b.seed_argv = {"prog", "x"};
    b.witness_argv = {"prog", key_str};
    b.argv_can_trigger = true;
    b.expected = {"Es2", "Es2", "Es2", "Es2"};
    b.expected_ideal = "E";
    bombs.push_back(std::move(b));
  }

  // =====================================================================
  // Negative bomb (§V.C): infeasible path used to expose false positives.
  // =====================================================================
  {
    BombSpec b;
    b.id = "neg_pow";
    b.category = Category::kNegative;
    b.challenge = "Negative bomb: pow(x, 2) == -1 (constant false)";
    const std::string neg_fmt = R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        ld1 r10, [r9+0]
        subi r10, r10, '0'
        cvtif f0, r10
        call gl_pow2
        lea r4, fpc
        fld f1, [r4+0]             ; -1.0
        fcmpeq r5, f0, f1
        bz r5, exit
    )" + std::string(kBombTail) + R"(
      .data
      fpc: .quad %s
    )";
    b.source = WithLib(StrFormat(neg_fmt.c_str(), FpBits(-1.0).c_str()));
    b.seed_argv = {"prog", "1"};
    b.argv_can_trigger = false;  // x^2 == -1 has no real solution
    b.expected = {"-", "-", "-", "-"};
    b.expected_ideal = "unreachable";
    bombs.push_back(std::move(b));
  }

  // =====================================================================
  // Figure 3 programs: external-call constraint blowup demo.
  // =====================================================================
  for (const bool with_print : {false, true}) {
    BombSpec b;
    b.id = with_print ? "fig3_print" : "fig3_noprint";
    b.category = Category::kDemo;
    b.challenge = with_print
                      ? "Figure 3 guard with printf enabled"
                      : "Figure 3 guard with printf commented out";
    std::string body = R"(
      .entry main
      main:
        ld8 r9, [r2+8]
        movi r10, 0                ; inline atoi
        movi r11, 0
      atoi_loop:
        ldx1 r4, [r9+r11]
        bz r4, atoi_done
        subi r4, r4, '0'
        muli r10, r10, 10
        add r10, r10, r4
        addi r11, r11, 1
        jmp atoi_loop
      atoi_done:
    )";
    if (with_print) {
      body += R"(
        mov r1, r10
        call gl_print_u64
      )";
    }
    body += R"(
        cmpltui r5, r10, 0x32
        bnz r5, exit
    )";
    b.source = WithLib(body + std::string(kBombTail));
    b.seed_argv = {"prog", "7"};
    b.witness_argv = {"prog", "99"};
    b.argv_can_trigger = true;
    b.expected = {"-", "-", "-", "-"};
    b.expected_ideal = "OK";
    bombs.push_back(std::move(b));
  }

  return bombs;
}

}  // namespace

std::string_view CategoryName(Category c) {
  switch (c) {
    case Category::kSymbolicDeclaration: return "Symbolic Variable Declaration";
    case Category::kCovertPropagation: return "Covert Symbolic Propagation";
    case Category::kParallel: return "Parallel Program";
    case Category::kSymbolicArray: return "Symbolic Array";
    case Category::kContextual: return "Contextual Symbolic Value";
    case Category::kSymbolicJump: return "Symbolic Jump";
    case Category::kFloatingPoint: return "Floating-point Number";
    case Category::kExternalCall: return "External Function Call";
    case Category::kCrypto: return "Crypto Function";
    case Category::kNegative: return "Negative Bomb";
    case Category::kDemo: return "Demo Program";
    case Category::kTwoStage: return "Two-stage Trigger";
  }
  return "?";
}

const std::vector<BombSpec>& AllBombs() {
  static const auto* kBombs = new std::vector<BombSpec>(BuildAll());
  return *kBombs;
}

const BombSpec* FindBomb(std::string_view id) {
  for (const auto& b : AllBombs()) {
    if (b.id == id) return &b;
  }
  return nullptr;
}

std::vector<const BombSpec*> TableTwoBombs() {
  std::vector<const BombSpec*> out;
  for (const auto& b : AllBombs()) {
    if (b.category != Category::kNegative && b.category != Category::kDemo) {
      out.push_back(&b);
    }
  }
  return out;
}

isa::BinaryImage BuildBomb(const BombSpec& spec) {
  auto img = isa::Assemble(spec.source);
  SBCE_CHECK_MSG(img.ok(),
                 spec.id + ": " + img.status().ToString());
  return std::move(img).value();
}

uint64_t BombAddress(const isa::BinaryImage& image) {
  auto addr = image.FindSymbol("bomb");
  SBCE_CHECK_MSG(addr.has_value(), "image lacks a bomb label");
  return *addr;
}

GroundTruth GroundTruthFor(const BombSpec& spec) {
  GroundTruth truth;
  truth.files = spec.files;
  const bool negative =
      !spec.argv_can_trigger && spec.witness_argv.empty() &&
      spec.trigger_devices.time_seconds == vm::Devices().time_seconds &&
      spec.trigger_devices.first_pid == vm::Devices().first_pid &&
      spec.trigger_devices.web_document == vm::Devices().web_document &&
      spec.trigger_devices.initial_rand_seed ==
          vm::Devices().initial_rand_seed &&
      spec.trigger_devices.echo_store.empty();
  if (negative) {
    // No witness argv and no triggering environment: the spec's ground
    // truth is infeasibility — the seed must never detonate it.
    truth.argv = spec.seed_argv;
    truth.devices = spec.experiment_devices;
    truth.expect_trigger = false;
    return truth;
  }
  truth.argv = spec.witness_argv.empty() ? spec.seed_argv : spec.witness_argv;
  truth.devices = spec.trigger_devices;
  truth.expect_trigger = true;
  return truth;
}

namespace {

vm::RunResult RunConcrete(const isa::BinaryImage& image,
                          std::vector<std::string> argv,
                          const vm::Devices& devices,
                          const std::map<std::string, std::string>& files) {
  vm::Machine machine(image, std::move(argv), devices);
  for (const auto& [path, contents] : files) {
    machine.fs().PutString(path, contents);
  }
  return machine.Run();
}

}  // namespace

Status VerifyGroundTruth(const BombSpec& spec) {
  auto assembled = isa::Assemble(spec.source);
  if (!assembled.ok()) {
    return Status::Invalid(spec.id + ": " + assembled.status().ToString());
  }
  const isa::BinaryImage image = std::move(assembled).value();
  if (!image.FindSymbol("bomb").has_value()) {
    return Status::Invalid(spec.id + ": image lacks a bomb label");
  }

  // Seed run: the engines must start from an untriggered, fault-free state.
  const vm::RunResult seed = RunConcrete(image, spec.seed_argv,
                                         spec.experiment_devices, spec.files);
  if (seed.faulted) {
    return Status::Precondition(spec.id + ": seed run faulted: " +
                                seed.fault_reason);
  }
  if (seed.bomb_triggered) {
    return Status::Precondition(spec.id + ": seed input already detonates");
  }

  // Ground-truth run: the witness detonates; negative specs must not.
  const GroundTruth truth = GroundTruthFor(spec);
  const vm::RunResult witness =
      RunConcrete(image, truth.argv, truth.devices, truth.files);
  if (truth.expect_trigger) {
    if (witness.faulted &&
        !witness.bomb_triggered) {
      return Status::Precondition(spec.id + ": witness run faulted: " +
                                  witness.fault_reason);
    }
    if (!witness.bomb_triggered) {
      return Status::Precondition(spec.id +
                                  ": ground-truth witness does not detonate");
    }
  } else if (witness.bomb_triggered) {
    return Status::Precondition(spec.id + ": negative spec detonated");
  }
  return Status::Ok();
}

}  // namespace sbce::bombs
