#include "src/report/scaling.h"

#include <tuple>

#include "src/report/table.h"
#include "src/support/str.h"

namespace sbce::report {

namespace {

std::string U64(uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

}  // namespace

ScalingReport BuildScalingReport(const corpus::Corpus& corpus,
                                 const tools::GridResult& grid) {
  ScalingReport report;
  report.corpus_seed = corpus.seed;

  // Rows keyed by (family, param, tool), created in grid order so the
  // report is family/param-major, tool-minor like the grid itself.
  std::map<std::tuple<std::string, int, std::string>, size_t> index;
  for (const tools::CellResult& cell : grid.cells) {
    const corpus::CorpusCell* meta = corpus.Find(cell.bomb_id);
    if (meta == nullptr) continue;

    const auto key = std::make_tuple(
        std::string(FamilyName(meta->family)), meta->param, cell.tool);
    auto [it, inserted] = index.try_emplace(key, report.rows.size());
    if (inserted) {
      ScalingRow row;
      row.family = std::get<0>(key);
      row.param = meta->param;
      row.tool = cell.tool;
      report.rows.push_back(std::move(row));
    }
    ScalingRow& row = report.rows[it->second];

    ++report.cells;
    const std::string label(tools::OutcomeLabel(cell.outcome));
    if (meta->negative) {
      ++row.negatives;
      ++report.negatives;
      if (cell.outcome == tools::Outcome::kOk) {
        ++row.false_positives;
        ++report.false_positives;
      }
    } else {
      ++row.positives;
      ++report.positives;
      ++row.outcomes[label];
      if (cell.matches_paper) {
        ++row.expected_matches;
        ++report.expected_matches;
      }
      if (cell.outcome == tools::Outcome::kOk) {
        ++row.solved;
        ++report.solved;
      }
    }
    if (cell.outcome != tools::Outcome::kOk && cell.attribution) {
      ++row.failure_stages[cell.attribution->stage];
      if (row.example_stage.empty()) {
        row.example_stage = cell.attribution->stage;
        row.example_pc = cell.attribution->pc;
        row.example_reason = cell.attribution->reason;
      }
    }
  }
  return report;
}

std::string RenderScalingReport(const ScalingReport& report) {
  AsciiTable table;
  table.SetTitle(StrFormat(
      "corpus scaling report (seed %llu): expected vs observed per "
      "family x parameter x tool",
      static_cast<unsigned long long>(report.corpus_seed)));
  table.SetHeader({"Family", "param", "Tool", "observed", "expected ✓",
                   "solved", "neg FP", "failure stages"});
  std::string last_family;
  for (const ScalingRow& row : report.rows) {
    if (row.family != last_family && !last_family.empty()) {
      table.AddSeparator();
    }
    last_family = row.family;
    std::string observed;
    for (const auto& [label, count] : row.outcomes) {
      observed += StrFormat("%s%s x%d", observed.empty() ? "" : ", ",
                            label.c_str(), count);
    }
    std::string stages;
    for (const auto& [stage, count] : row.failure_stages) {
      stages += StrFormat("%s%s x%d", stages.empty() ? "" : ", ",
                          stage.c_str(), count);
    }
    table.AddRow({row.family, StrFormat("%d", row.param), row.tool,
                  observed.empty() ? "-" : observed,
                  StrFormat("%d/%d", row.expected_matches, row.positives),
                  StrFormat("%d", row.solved),
                  StrFormat("%d/%d", row.false_positives, row.negatives),
                  stages.empty() ? "-" : stages});
  }
  std::string out = table.Render();
  out += StrFormat(
      "cells: %d (%d positive, %d negative)  expected matches: %d/%d  "
      "solved: %d  negative false positives: %d/%d\n",
      report.cells, report.positives, report.negatives,
      report.expected_matches, report.positives, report.solved,
      report.false_positives, report.negatives);
  return out;
}

obs::JsonValue ScalingToJson(const ScalingReport& report) {
  obs::JsonValue v = obs::JsonValue::Object();
  v.Set("corpus_seed", obs::JsonValue::U64(report.corpus_seed));
  v.Set("cells", obs::JsonValue::I64(report.cells));
  v.Set("positives", obs::JsonValue::I64(report.positives));
  v.Set("negatives", obs::JsonValue::I64(report.negatives));
  v.Set("expected_matches", obs::JsonValue::I64(report.expected_matches));
  v.Set("solved", obs::JsonValue::I64(report.solved));
  v.Set("false_positives", obs::JsonValue::I64(report.false_positives));
  obs::JsonValue rows = obs::JsonValue::Array();
  for (const ScalingRow& row : report.rows) {
    obs::JsonValue r = obs::JsonValue::Object();
    r.Set("family", obs::JsonValue::Str(row.family));
    r.Set("param", obs::JsonValue::I64(row.param));
    r.Set("tool", obs::JsonValue::Str(row.tool));
    r.Set("positives", obs::JsonValue::I64(row.positives));
    r.Set("expected_matches", obs::JsonValue::I64(row.expected_matches));
    r.Set("solved", obs::JsonValue::I64(row.solved));
    r.Set("negatives", obs::JsonValue::I64(row.negatives));
    r.Set("false_positives", obs::JsonValue::I64(row.false_positives));
    obs::JsonValue outcomes = obs::JsonValue::Object();
    for (const auto& [label, count] : row.outcomes) {
      outcomes.Set(label, obs::JsonValue::I64(count));
    }
    r.Set("outcomes", std::move(outcomes));
    obs::JsonValue stages = obs::JsonValue::Object();
    for (const auto& [stage, count] : row.failure_stages) {
      stages.Set(stage, obs::JsonValue::I64(count));
    }
    r.Set("failure_stages", std::move(stages));
    if (!row.example_stage.empty()) {
      obs::JsonValue example = obs::JsonValue::Object();
      example.Set("stage", obs::JsonValue::Str(row.example_stage));
      example.Set("pc", obs::JsonValue::U64(row.example_pc));
      example.Set("reason", obs::JsonValue::Str(row.example_reason));
      r.Set("example", std::move(example));
    }
    rows.items.push_back(std::move(r));
  }
  v.Set("rows", std::move(rows));
  return v;
}

}  // namespace sbce::report
