#include "src/report/table.h"

#include <algorithm>

#include "src/support/str.h"

namespace sbce::report {

std::string AsciiTable::Render() const {
  std::vector<size_t> widths;
  auto account = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      out += ' ';
      out += PadRight(i < row.size() ? row[i] : "", widths[i]);
      out += " |";
    }
    out += '\n';
    return out;
  };
  auto rule = [&] {
    std::string out = "+";
    for (size_t w : widths) out += std::string(w + 2, '-') + "+";
    out += '\n';
    return out;
  };

  std::string out;
  if (!title_.empty()) out += title_ + '\n';
  out += rule();
  if (!header_.empty()) {
    out += render_row(header_);
    out += rule();
  }
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : render_row(row);
  }
  out += rule();
  return out;
}

}  // namespace sbce::report
