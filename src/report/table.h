// Minimal ASCII table renderer for the bench binaries (Table I/II output).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace sbce::report {

class AsciiTable {
 public:
  /// Optional caption rendered on its own line above the top rule.
  void SetTitle(std::string title) { title_ = std::move(title); }
  void SetHeader(std::vector<std::string> cells) {
    header_ = std::move(cells);
  }
  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }
  void AddSeparator() { rows_.push_back({}); }

  std::string Render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sbce::report
