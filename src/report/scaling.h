// Per-challenge-category scaling report over a generated-corpus grid run:
// expected-vs-observed verdicts per tool profile, success and
// false-positive counts, and the {stage, pc, reason} failure attributions
// rolled up per family×parameter.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/obs/json.h"
#include "src/tools/runner.h"

namespace sbce::report {

/// One family×parameter×tool aggregation row (positive and negative
/// variants of the same cell fold into the same row).
struct ScalingRow {
  std::string family;
  int param = 0;
  std::string tool;

  int positives = 0;         // positive cells run
  int expected_matches = 0;  // observed label == predicted label
  int solved = 0;            // observed OK
  int negatives = 0;         // negative cells run
  int false_positives = 0;   // negative cells the tool reported OK

  /// Observed outcome label -> count, positives only.
  std::map<std::string, int> outcomes;
  /// Attribution stage -> count over every non-OK cell in the row.
  std::map<std::string, int> failure_stages;
  /// One representative attribution for the row (first non-OK cell).
  std::string example_stage;
  uint64_t example_pc = 0;
  std::string example_reason;
};

struct ScalingReport {
  uint64_t corpus_seed = 0;
  std::vector<ScalingRow> rows;  // grid order: family/param-major, tool-minor
  int cells = 0;
  int positives = 0;
  int negatives = 0;
  int expected_matches = 0;
  int solved = 0;
  int false_positives = 0;
};

/// Aggregates a grid run over `corpus` cells (tools::RunGrid over
/// tools::CorpusCells). Grid cells whose bomb id is not in the corpus are
/// ignored, so mixed grids are safe.
ScalingReport BuildScalingReport(const corpus::Corpus& corpus,
                                 const tools::GridResult& grid);

/// ASCII rendering (family blocks separated, totals footer).
std::string RenderScalingReport(const ScalingReport& report);

/// Machine-readable export (all counters plus per-row outcome and stage
/// maps; deterministic field order).
obs::JsonValue ScalingToJson(const ScalingReport& report);

}  // namespace sbce::report
