// Machine-readable failure provenance for a Table II cell.
//
// Every non-✓ outcome carries one of these records: which error stage the
// paper's taxonomy assigns (Es0–Es3, E, P), the triggering program counter
// or constraint, and a human-readable reason. The attribution *pass* that
// derives a record from an EngineResult lives in src/tools/classify (it
// needs the outcome taxonomy); this header is just the record and its
// JSON round-trip, so the obs layer stays dependency-free.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/obs/json.h"

namespace sbce::obs {

struct Attribution {
  /// Stage label: "Es0".."Es3", "E" or "P".
  std::string stage;
  /// Program counter of the triggering instruction/constraint; 0 when the
  /// failure has no single site (e.g. Es0 under-declaration).
  uint64_t pc = 0;
  /// Human-readable reason (the diagnostic detail, abort reason, …).
  std::string reason;
  /// Stage gloss or the offending constraint/claim, when available.
  std::string detail;

  bool operator==(const Attribution&) const = default;
};

JsonValue AttributionToJson(const Attribution& a);

/// Inverse of AttributionToJson; nullopt when `v` is not an attribution
/// object (missing stage or reason).
std::optional<Attribution> AttributionFromJson(const JsonValue& v);

}  // namespace sbce::obs
