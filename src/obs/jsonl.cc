#include "src/obs/jsonl.h"

#include <string>

#include "src/obs/json.h"

namespace sbce::obs {

namespace {

void AppendField(const Field& f, std::string* line) {
  line->push_back('"');
  JsonEscape(f.key, line);
  *line += "\":";
  switch (f.kind) {
    case Field::Kind::kUint:
      *line += Dump(JsonValue::U64(f.u));
      break;
    case Field::Kind::kInt:
      *line += Dump(JsonValue::I64(f.i));
      break;
    case Field::Kind::kStr:
      line->push_back('"');
      JsonEscape(f.s, line);
      line->push_back('"');
      break;
  }
}

}  // namespace

void JsonlSink::WriteLine(std::string_view type, std::string_view name,
                          std::span<const Field> fields, const Field* extra1,
                          const Field* extra2) {
  // Build the line outside the lock; sequence/flush under it.
  std::string line = "{\"t\":\"";
  JsonEscape(type, &line);
  line += "\",\"name\":\"";
  JsonEscape(name, &line);
  line.push_back('"');
  for (const Field* extra : {extra1, extra2}) {
    if (extra != nullptr) {
      line.push_back(',');
      AppendField(*extra, &line);
    }
  }
  if (!fields.empty()) {
    line += ",\"fields\":{";
    bool first = true;
    for (const Field& f : fields) {
      if (!first) line.push_back(',');
      first = false;
      AppendField(f, &line);
    }
    line.push_back('}');
  }
  line += "}\n";

  std::lock_guard<std::mutex> lock(mu_);
  ++seq_;
  (*out_) << line;
}

void JsonlSink::Event(std::string_view name, std::span<const Field> fields) {
  WriteLine("event", name, fields);
}

void JsonlSink::SpanBegin(std::string_view name, uint64_t span_id,
                          std::span<const Field> fields) {
  const Field id = Field::U("span", span_id);
  WriteLine("span_begin", name, fields, &id);
}

void JsonlSink::SpanEnd(std::string_view name, uint64_t span_id,
                        uint64_t micros) {
  const Field id = Field::U("span", span_id);
  const Field us = Field::U("micros", micros);
  WriteLine("span_end", name, {}, &id, &us);
}

void JsonlSink::Counter(std::string_view name, uint64_t delta) {
  const Field d = Field::U("delta", delta);
  WriteLine("counter", name, {}, &d);
}

}  // namespace sbce::obs
