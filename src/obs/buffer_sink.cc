#include "src/obs/buffer_sink.h"

#include <utility>

namespace sbce::obs {

void BufferSink::Event(std::string_view name, std::span<const Field> fields) {
  Record r;
  r.type = Record::Type::kEvent;
  r.name = name;
  for (const Field& f : fields) {
    OwnedField of;
    of.key = f.key;
    of.kind = f.kind;
    of.u = f.u;
    of.i = f.i;
    of.s.assign(f.s);
    r.fields.push_back(std::move(of));
  }
  Push(std::move(r));
}

void BufferSink::SpanBegin(std::string_view name, uint64_t span_id,
                           std::span<const Field> fields) {
  Record r;
  r.type = Record::Type::kSpanBegin;
  r.name = name;
  r.span_id = span_id;
  for (const Field& f : fields) {
    OwnedField of;
    of.key = f.key;
    of.kind = f.kind;
    of.u = f.u;
    of.i = f.i;
    of.s.assign(f.s);
    r.fields.push_back(std::move(of));
  }
  Push(std::move(r));
}

void BufferSink::SpanEnd(std::string_view name, uint64_t span_id,
                         uint64_t micros) {
  Record r;
  r.type = Record::Type::kSpanEnd;
  r.name = name;
  r.span_id = span_id;
  r.value = micros;
  Push(std::move(r));
}

void BufferSink::Counter(std::string_view name, uint64_t delta) {
  Record r;
  r.type = Record::Type::kCounter;
  r.name = name;
  r.value = delta;
  Push(std::move(r));
}

void BufferSink::Push(Record record) {
  std::lock_guard<std::mutex> lk(mu_);
  records_.push_back(std::move(record));
}

size_t BufferSink::records() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

void BufferSink::Replay(TraceSink& sink) const {
  ReplayPrefix(sink, static_cast<size_t>(-1));
}

void BufferSink::ReplayPrefix(TraceSink& sink, size_t n) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Field> fields;
  if (n > records_.size()) n = records_.size();
  for (size_t idx = 0; idx < n; ++idx) {
    const Record& r = records_[idx];
    fields.clear();
    for (const OwnedField& of : r.fields) {
      Field f;
      f.key = of.key;
      f.kind = of.kind;
      f.u = of.u;
      f.i = of.i;
      f.s = of.s;
      fields.push_back(f);
    }
    switch (r.type) {
      case Record::Type::kEvent:
        sink.Event(r.name, fields);
        break;
      case Record::Type::kSpanBegin:
        sink.SpanBegin(r.name, r.span_id, fields);
        break;
      case Record::Type::kSpanEnd:
        sink.SpanEnd(r.name, r.span_id, r.value);
        break;
      case Record::Type::kCounter:
        sink.Counter(r.name, r.value);
        break;
    }
  }
}

}  // namespace sbce::obs
