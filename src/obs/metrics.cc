#include "src/obs/metrics.h"

namespace sbce::obs {

Counter* MetricsRegistry::Get(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::Value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

JsonValue MetricsRegistry::SnapshotJson() const {
  JsonValue doc = JsonValue::Object();
  for (const auto& [name, value] : Snapshot()) {
    doc.Set(name, JsonValue::U64(value));
  }
  return doc;
}

void MetricsRegistry::Publish(const Tracer& tracer) const {
  if (!tracer.enabled()) return;
  for (const auto& [name, value] : Snapshot()) {
    tracer.Counter(name, value);
  }
}

}  // namespace sbce::obs
