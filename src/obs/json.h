// Minimal JSON value model, writer and parser for the observability
// layer's exports (JSON-lines traces, the Table II grid export, and the
// attribution round-trip). Covers the JSON we ourselves emit: objects,
// arrays, strings, integer/double numbers, booleans and null. Not a
// general-purpose validator — unknown escapes and exotic numbers are
// rejected rather than guessed at.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sbce::obs {

struct JsonValue {
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  /// Numbers keep their source text so 64-bit integers survive the trip
  /// exactly (doubles lose integers above 2^53).
  std::string number;
  std::string str;
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  static JsonValue Null() { return {}; }
  static JsonValue Bool(bool b);
  static JsonValue U64(uint64_t v);
  static JsonValue I64(int64_t v);
  static JsonValue Double(double v);
  static JsonValue Str(std::string_view s);
  static JsonValue Array() {
    JsonValue v;
    v.kind = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind = Kind::kObject;
    return v;
  }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Appends a member (objects) — no duplicate-key check.
  void Set(std::string_view key, JsonValue value);

  bool IsNull() const { return kind == Kind::kNull; }
  uint64_t AsU64(uint64_t fallback = 0) const;
  int64_t AsI64(int64_t fallback = 0) const;
  double AsDouble(double fallback = 0.0) const;
  std::string_view AsString() const { return str; }
  bool AsBool(bool fallback = false) const {
    return kind == Kind::kBool ? boolean : fallback;
  }
};

/// Appends `s` with JSON string escaping (no surrounding quotes).
void JsonEscape(std::string_view s, std::string* out);

/// Compact (single-line) serialization.
std::string Dump(const JsonValue& value);

/// Parses one JSON document; nullopt on any syntax error or trailing
/// non-whitespace garbage.
std::optional<JsonValue> ParseJson(std::string_view text);

}  // namespace sbce::obs
