// MetricsRegistry: named monotonic counters shared by a component tree.
//
// Counter handles are resolved once (a map lookup under a mutex) and then
// bumped lock-free; registered counters live as long as the registry, so
// hot paths hold raw Counter* without lifetime ceremony. The engine feeds
// core::EngineMetrics from per-Explore snapshots of its registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/trace_sink.h"

namespace sbce::obs {

class Counter {
 public:
  void Add(uint64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it at zero on
  /// first use. The pointer stays valid for the registry's lifetime.
  Counter* Get(std::string_view name);

  /// Current value of `name`; 0 if never registered.
  uint64_t Value(std::string_view name) const;

  /// All counters, sorted by name (the map order).
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  /// Snapshot() as a JSON object (name → value, sorted by name). The
  /// service daemon's `stats` endpoint serves this document.
  JsonValue SnapshotJson() const;

  /// Emits every counter's current value through `tracer` as Counter
  /// records (used to flush a registry into a sink at a checkpoint).
  void Publish(const Tracer& tracer) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
};

}  // namespace sbce::obs
