#include "src/obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sbce::obs {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind = Kind::kBool;
  v.boolean = b;
  return v;
}

JsonValue JsonValue::U64(uint64_t value) {
  JsonValue v;
  v.kind = Kind::kNumber;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  v.number = buf;
  return v;
}

JsonValue JsonValue::I64(int64_t value) {
  JsonValue v;
  v.kind = Kind::kNumber;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  v.number = buf;
  return v;
}

JsonValue JsonValue::Double(double value) {
  JsonValue v;
  v.kind = Kind::kNumber;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  v.number = buf;
  return v;
}

JsonValue JsonValue::Str(std::string_view s) {
  JsonValue v;
  v.kind = Kind::kString;
  v.str.assign(s);
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::Set(std::string_view key, JsonValue value) {
  kind = Kind::kObject;
  members.emplace_back(std::string(key), std::move(value));
}

uint64_t JsonValue::AsU64(uint64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return std::strtoull(number.c_str(), nullptr, 10);
}

int64_t JsonValue::AsI64(int64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return std::strtoll(number.c_str(), nullptr, 10);
}

double JsonValue::AsDouble(double fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return std::strtod(number.c_str(), nullptr);
}

namespace {

// Length of a valid UTF-8 sequence starting at s[i], or 0 if the bytes at
// s[i] are not well-formed UTF-8 (overlong forms and lone continuation
// bytes included). Needed because field values can carry raw binary
// (generated argv inputs, guest memory) and a JSON document must stay
// valid UTF-8.
size_t Utf8SequenceLength(std::string_view s, size_t i) {
  const auto byte = [&](size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char b0 = byte(i);
  if (b0 < 0x80) return 1;
  size_t len = 0;
  if ((b0 & 0xE0) == 0xC0 && b0 >= 0xC2) len = 2;  // C0/C1 are overlong
  else if ((b0 & 0xF0) == 0xE0) len = 3;
  else if ((b0 & 0xF8) == 0xF0 && b0 <= 0xF4) len = 4;
  else return 0;
  if (i + len > s.size()) return 0;
  for (size_t k = 1; k < len; ++k) {
    if ((byte(i + k) & 0xC0) != 0x80) return 0;
  }
  // Reject the overlong/surrogate/out-of-range corners.
  const unsigned char b1 = byte(i + 1);
  if (len == 3 && b0 == 0xE0 && b1 < 0xA0) return 0;  // overlong
  if (len == 3 && b0 == 0xED && b1 >= 0xA0) return 0;  // surrogate
  if (len == 4 && b0 == 0xF0 && b1 < 0x90) return 0;  // overlong
  if (len == 4 && b0 == 0xF4 && b1 >= 0x90) return 0;  // > U+10FFFF
  return len;
}

}  // namespace

void JsonEscape(std::string_view s, std::string* out) {
  const auto escape_byte = [out](char c) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "\\u%04x",
                  static_cast<unsigned>(static_cast<unsigned char>(c)));
    *out += buf;
  };
  for (size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': *out += "\\\""; ++i; continue;
      case '\\': *out += "\\\\"; ++i; continue;
      case '\n': *out += "\\n"; ++i; continue;
      case '\r': *out += "\\r"; ++i; continue;
      case '\t': *out += "\\t"; ++i; continue;
      default: break;
    }
    if (static_cast<unsigned char>(c) < 0x20) {
      escape_byte(c);
      ++i;
      continue;
    }
    const size_t len = Utf8SequenceLength(s, i);
    if (len == 0) {
      // Not UTF-8: escape the raw byte as U+00xx so the document stays
      // valid (the byte value survives; exact binary round-tripping is
      // not a goal of the trace format).
      escape_byte(c);
      ++i;
    } else {
      out->append(s, i, len);
      i += len;
    }
  }
}

namespace {

void DumpInto(const JsonValue& v, std::string* out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      *out += v.number.empty() ? "0" : v.number;
      break;
    case JsonValue::Kind::kString:
      out->push_back('"');
      JsonEscape(v.str, out);
      out->push_back('"');
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items) {
        if (!first) out->push_back(',');
        first = false;
        DumpInto(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        JsonEscape(key, out);
        *out += "\":";
        DumpInto(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    if (!ParseValue(&v)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      }
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return EatLiteral("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return EatLiteral("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return EatLiteral("null");
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    if (!Eat('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Eat(':')) return false;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      return Eat('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Eat('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      JsonValue item;
      if (!ParseValue(&item)) return false;
      out->items.push_back(std::move(item));
      SkipWs();
      if (Eat(',')) continue;
      return Eat(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // We only ever emit \u for control bytes; encode as UTF-8 for
          // completeness.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number.assign(text_.substr(start, pos_ - start));
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Dump(const JsonValue& value) {
  std::string out;
  DumpInto(value, &out);
  return out;
}

std::optional<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace sbce::obs
