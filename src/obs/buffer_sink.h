// BufferSink: a TraceSink that records everything it receives and can
// replay the sequence into another sink later.
//
// Built for deterministic parallel grid runs (tools::RunGrid): each cell
// traces into its own BufferSink while cells execute concurrently; after
// the barrier the buffers are replayed into the real sink in cell order,
// so the exported trace is identical to a serial run's regardless of how
// the cells interleaved on the worker pool.
//
// The TraceSink contract guarantees record/field *names* point into
// static storage, so they are kept as views; field string *values* are
// only live for the duration of the sink call and are copied.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/trace_sink.h"

namespace sbce::obs {

class BufferSink : public TraceSink {
 public:
  void Event(std::string_view name, std::span<const Field> fields) override;
  void SpanBegin(std::string_view name, uint64_t span_id,
                 std::span<const Field> fields) override;
  void SpanEnd(std::string_view name, uint64_t span_id,
               uint64_t micros) override;
  void Counter(std::string_view name, uint64_t delta) override;

  /// Re-emits every buffered record into `sink`, in arrival order. The
  /// buffer is left intact (replay is repeatable).
  void Replay(TraceSink& sink) const;

  /// Re-emits only the first `n` buffered records (everything, if `n`
  /// exceeds the buffer). Checkpoint resume uses this to reconstruct the
  /// record stream of an execution prefix it did not re-run.
  void ReplayPrefix(TraceSink& sink, size_t n) const;

  size_t records() const;

 private:
  struct OwnedField {
    std::string_view key;  // static storage per the TraceSink contract
    Field::Kind kind = Field::Kind::kUint;
    uint64_t u = 0;
    int64_t i = 0;
    std::string s;  // owned copy of the value
  };

  struct Record {
    enum class Type : uint8_t { kEvent, kSpanBegin, kSpanEnd, kCounter };
    Type type = Type::kEvent;
    std::string_view name;
    uint64_t span_id = 0;   // kSpanBegin / kSpanEnd
    uint64_t value = 0;     // micros (kSpanEnd) or delta (kCounter)
    std::vector<OwnedField> fields;
  };

  void Push(Record record);

  // Components inside one cell may trace from different threads (the
  // solver dispatch pool); serialize like JsonlSink does.
  mutable std::mutex mu_;
  std::vector<Record> records_;
};

/// TeeSink: records every primitive into `buffer` while forwarding it to
/// `out` (which may be null — record-only). The engine's checkpoint
/// trails tee each round's VM and symex record streams so a later resumed
/// round can replay the prefix it skipped, keeping --trace output
/// bit-identical to a from-scratch run.
class TeeSink : public TraceSink {
 public:
  TeeSink(BufferSink* buffer, TraceSink* out) : buffer_(buffer), out_(out) {}

  void Event(std::string_view name, std::span<const Field> fields) override {
    buffer_->Event(name, fields);
    if (out_ != nullptr) out_->Event(name, fields);
  }
  void SpanBegin(std::string_view name, uint64_t span_id,
                 std::span<const Field> fields) override {
    buffer_->SpanBegin(name, span_id, fields);
    if (out_ != nullptr) out_->SpanBegin(name, span_id, fields);
  }
  void SpanEnd(std::string_view name, uint64_t span_id,
               uint64_t micros) override {
    buffer_->SpanEnd(name, span_id, micros);
    if (out_ != nullptr) out_->SpanEnd(name, span_id, micros);
  }
  void Counter(std::string_view name, uint64_t delta) override {
    buffer_->Counter(name, delta);
    if (out_ != nullptr) out_->Counter(name, delta);
  }

 private:
  BufferSink* buffer_;
  TraceSink* out_;
};

}  // namespace sbce::obs
