// Observability substrate: the TraceSink interface and the nullable
// Tracer handle instrumented code holds.
//
// Contract (see DESIGN.md §5c):
//  * A TraceSink receives three primitives — point events, timed spans,
//    and monotonic counter increments — each carrying a static name and
//    a small set of key/value fields.
//  * Instrumented code never talks to a sink directly; it goes through a
//    Tracer, which may be empty. With no sink installed every Tracer
//    method is a single pointer test: no virtual call, no allocation,
//    and (for spans) no clock read. This is the "zero overhead when
//    disabled" rule the <5% vm_micro budget depends on.
//  * Field keys and names are string_views into static storage; field
//    string *values* are only guaranteed live for the duration of the
//    sink call — sinks that retain them must copy.
//  * Sinks may be called from the thread that owns the instrumented
//    component only; a sink shared across components (e.g. engine + VM)
//    must serialize internally if those components run on different
//    threads (JsonlSink does).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string_view>
#include <utility>

namespace sbce::obs {

/// One key/value attribute on an event or span.
struct Field {
  enum class Kind : uint8_t { kUint, kInt, kStr };

  std::string_view key;
  Kind kind = Kind::kUint;
  uint64_t u = 0;
  int64_t i = 0;
  std::string_view s;

  static constexpr Field U(std::string_view key, uint64_t value) {
    Field f;
    f.key = key;
    f.kind = Kind::kUint;
    f.u = value;
    return f;
  }
  static constexpr Field I(std::string_view key, int64_t value) {
    Field f;
    f.key = key;
    f.kind = Kind::kInt;
    f.i = value;
    return f;
  }
  static constexpr Field S(std::string_view key, std::string_view value) {
    Field f;
    f.key = key;
    f.kind = Kind::kStr;
    f.s = value;
    return f;
  }
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A point-in-time occurrence (a syscall, a diagnostic, a claim).
  virtual void Event(std::string_view name,
                     std::span<const Field> fields) = 0;

  /// A timed region. `span_id` pairs Begin with End; `micros` on End is
  /// the measured wall-clock duration.
  virtual void SpanBegin(std::string_view name, uint64_t span_id,
                         std::span<const Field> fields) = 0;
  virtual void SpanEnd(std::string_view name, uint64_t span_id,
                       uint64_t micros) = 0;

  /// A monotonic counter increment (mirrors MetricsRegistry updates).
  virtual void Counter(std::string_view name, uint64_t delta) = 0;
};

class Tracer;

/// RAII handle for a timed span. Inert (no clock read ever happens) when
/// created from an empty Tracer.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceSink* sink, std::string_view name, uint64_t span_id)
      : sink_(sink), name_(name), span_id_(span_id),
        start_(std::chrono::steady_clock::now()) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    sink_ = other.sink_;
    name_ = other.name_;
    span_id_ = other.span_id_;
    start_ = other.start_;
    other.sink_ = nullptr;
    return *this;
  }
  ~ScopedSpan() { End(); }

  /// Ends the span early (idempotent).
  void End() {
    if (sink_ == nullptr) return;
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    sink_->SpanEnd(name_, span_id_, static_cast<uint64_t>(micros));
    sink_ = nullptr;
  }

 private:
  TraceSink* sink_ = nullptr;
  std::string_view name_;
  uint64_t span_id_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// The handle instrumented code holds. Copyable, trivially small; an
/// empty Tracer (the default) makes every operation a no-op pointer test.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  bool enabled() const { return sink_ != nullptr; }
  TraceSink* sink() const { return sink_; }

  void Event(std::string_view name,
             std::initializer_list<Field> fields = {}) const {
    if (sink_ != nullptr) {
      sink_->Event(name, {fields.begin(), fields.size()});
    }
  }

  void Counter(std::string_view name, uint64_t delta = 1) const {
    if (sink_ != nullptr) sink_->Counter(name, delta);
  }

  /// Opens a timed span; the returned guard emits SpanEnd on destruction.
  [[nodiscard]] ScopedSpan Span(
      std::string_view name, std::initializer_list<Field> fields = {}) const {
    if (sink_ == nullptr) return {};
    const uint64_t id = next_span_id_++;
    sink_->SpanBegin(name, id, {fields.begin(), fields.size()});
    return {sink_, name, id};
  }

 private:
  TraceSink* sink_ = nullptr;
  /// Span ids only disambiguate Begin/End pairs in sink output; they are
  /// never fed back into program logic, so a shared counter is fine.
  static inline std::atomic<uint64_t> next_span_id_{1};
};

}  // namespace sbce::obs
