// JsonlSink: a TraceSink that renders every record as one JSON object per
// line ("JSON lines"), suitable for `table2_tool_grid --trace out.jsonl`
// and offline analysis. Thread-safe: records from different components
// interleave at line granularity.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <span>
#include <string_view>

#include "src/obs/trace_sink.h"

namespace sbce::obs {

class JsonlSink : public TraceSink {
 public:
  /// Writes to `out` (not owned; must outlive the sink).
  explicit JsonlSink(std::ostream* out) : out_(out) {}

  void Event(std::string_view name, std::span<const Field> fields) override;
  void SpanBegin(std::string_view name, uint64_t span_id,
                 std::span<const Field> fields) override;
  void SpanEnd(std::string_view name, uint64_t span_id,
               uint64_t micros) override;
  void Counter(std::string_view name, uint64_t delta) override;

  /// Lines written so far.
  uint64_t records() const { return seq_; }

 private:
  void WriteLine(std::string_view type, std::string_view name,
                 std::span<const Field> fields, const Field* extra1 = nullptr,
                 const Field* extra2 = nullptr);

  std::mutex mu_;
  std::ostream* out_;
  uint64_t seq_ = 0;
};

}  // namespace sbce::obs
