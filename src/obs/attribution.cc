#include "src/obs/attribution.h"

namespace sbce::obs {

JsonValue AttributionToJson(const Attribution& a) {
  JsonValue v = JsonValue::Object();
  v.Set("stage", JsonValue::Str(a.stage));
  v.Set("pc", JsonValue::U64(a.pc));
  v.Set("reason", JsonValue::Str(a.reason));
  if (!a.detail.empty()) v.Set("detail", JsonValue::Str(a.detail));
  return v;
}

std::optional<Attribution> AttributionFromJson(const JsonValue& v) {
  const JsonValue* stage = v.Find("stage");
  const JsonValue* reason = v.Find("reason");
  if (stage == nullptr || stage->kind != JsonValue::Kind::kString ||
      reason == nullptr || reason->kind != JsonValue::Kind::kString) {
    return std::nullopt;
  }
  Attribution a;
  a.stage.assign(stage->AsString());
  a.reason.assign(reason->AsString());
  if (const JsonValue* pc = v.Find("pc")) a.pc = pc->AsU64();
  if (const JsonValue* detail = v.Find("detail")) {
    a.detail.assign(detail->AsString());
  }
  return a;
}

}  // namespace sbce::obs
