#include "src/core/checkpoint.h"

namespace sbce::core {

size_t DeepestUsable(const CheckpointTrail& trail,
                     const std::vector<std::string>& argv,
                     std::vector<InputPatch>* patches) {
  // Layout gate: resuming requires the candidate's argv block to be laid
  // out byte-for-byte where the recorded one was, which holds exactly when
  // every argument has the recorded length.
  if (argv.size() != trail.argv.size()) return kNoCheckpoint;
  if (argv.size() != trail.argv_addrs.size()) return kNoCheckpoint;
  for (size_t i = 0; i < argv.size(); ++i) {
    if (argv[i].size() != trail.argv[i].size()) return kNoCheckpoint;
  }

  for (size_t ci = trail.checkpoints.size(); ci-- > 0;) {
    const Checkpoint& cp = trail.checkpoints[ci];
    if (cp.vm == nullptr || cp.symex == nullptr || cp.argv == nullptr) {
      continue;
    }
    if (cp.vm->processes.empty()) continue;
    const std::vector<std::string>& base = *cp.argv;
    if (base.size() != argv.size()) continue;
    const vm::Memory& mem = cp.vm->processes.front()->mem;

    // A checkpoint is reusable iff every byte where the candidate differs
    // from the input embedded in the snapshot was still *unread* at the
    // boundary. The consumed mask grows monotonically along the run, so
    // the first (deepest-first) fit is the best one.
    bool usable = true;
    std::vector<InputPatch> diff;
    for (size_t i = 0; i < argv.size() && usable; ++i) {
      if (base[i].size() != argv[i].size()) {
        usable = false;
        break;
      }
      for (size_t k = 0; k < argv[i].size(); ++k) {
        if (argv[i][k] == base[i][k]) continue;
        const uint64_t addr = trail.argv_addrs[i] + k;
        if (mem.InputConsumed(addr)) {
          usable = false;
          break;
        }
        // Bytes the prefix overwrote (without reading first) are dead in
        // the restored memory image — no patch needed or wanted.
        if (mem.InputOverwritten(addr)) continue;
        diff.push_back({addr, static_cast<uint8_t>(argv[i][k])});
      }
    }
    if (!usable) continue;
    if (patches != nullptr) *patches = std::move(diff);
    return ci;
  }
  return kNoCheckpoint;
}

}  // namespace sbce::core
