// Static control-flow reachability over a binary image.
//
// The directed-exploration mode of the engine (mirroring the Angr script in
// the paper, which checks "whether a bomb path is reachable") needs to know
// which negated branch directions can still reach the target address. This
// module decodes all executable sections, builds conservative successor
// edges and answers backward reachability queries.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/isa/image.h"
#include "src/isa/instruction.h"

namespace sbce::core {

class CfgReachability {
 public:
  /// Decodes `image`'s executable sections and computes the set of
  /// instruction addresses from which `target` is reachable. Conservative
  /// approximations: indirect jumps/calls are assumed able to reach the
  /// target; call instructions fall through (returns are not matched).
  CfgReachability(const isa::BinaryImage& image, uint64_t target);

  /// True if starting at `pc` the target may be reached.
  bool Reaches(uint64_t pc) const {
    return reaches_.count(pc) != 0 || indirect_anywhere_;
  }

  /// True if control starting at `pc` falls into the target without
  /// passing any further conditional branch or indirect transfer — i.e. a
  /// satisfiable state at `pc` IS a state at the target. This is the claim
  /// criterion: real engines report a bomb reachable when a constraint-
  /// satisfiable state sits on it, not merely somewhere that might still
  /// branch away.
  bool StraightLineReaches(uint64_t pc, uint64_t target) const;

  size_t ReachingCount() const { return reaches_.size(); }
  bool has_indirect_jumps() const { return indirect_anywhere_; }

 private:
  std::unordered_set<uint64_t> reaches_;
  std::unordered_map<uint64_t, isa::Instruction> instrs_;
  bool indirect_anywhere_ = false;
};

}  // namespace sbce::core
