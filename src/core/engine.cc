#include "src/core/engine.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <tuple>

#include "src/obs/buffer_sink.h"

#include "src/solver/absdomain.h"
#include "src/solver/presolve.h"
#include "src/support/str.h"

namespace sbce::core {

using solver::ExprRef;
using symex::ErrorStage;

namespace {

solver::PipelineOptions MakePipelineOptions(const EngineConfig& config,
                                            obs::Tracer tracer) {
  solver::PipelineOptions opts;
  opts.solver = config.budgets.solver;
  opts.threads = config.budgets.solver_threads;
  opts.shared_cache = config.shared_query_cache;
  opts.tracer = tracer;
  return opts;
}

std::string JoinArgv(const std::vector<std::string>& argv) {
  std::string out;
  for (const std::string& a : argv) {
    if (!out.empty()) out.push_back(' ');
    out += a;
  }
  return out;
}

}  // namespace

ConcolicEngine::ConcolicEngine(const isa::BinaryImage& image,
                               MachineFactory factory, EngineConfig config)
    : image_(image),
      factory_(std::move(factory)),
      config_(std::move(config)),
      tracer_(config_.trace_sink),
      c_rounds_(metrics_.Get("engine.rounds")),
      c_events_(metrics_.Get("engine.trace_events")),
      c_queries_(metrics_.Get("solver.queries")),
      c_conflicts_(metrics_.Get("solver.conflicts")),
      c_claims_(metrics_.Get("engine.claims")),
      c_validations_(metrics_.Get("engine.validations")),
      c_aborts_(metrics_.Get("engine.aborts")),
      c_decode_hits_(metrics_.Get("vm.decode_cache_hits")),
      c_decode_misses_(metrics_.Get("vm.decode_cache_misses")),
      c_ckpt_hits_(metrics_.Get("checkpoint.hits")),
      c_ckpt_misses_(metrics_.Get("checkpoint.misses")),
      c_ckpt_pages_(metrics_.Get("checkpoint.pages_copied")),
      c_ckpt_restore_micros_(metrics_.Get("checkpoint.restore_micros")),
      c_presolve_dropped_(metrics_.Get("engine.presolve_dropped")),
      pipeline_(MakePipelineOptions(config_, tracer_)) {}

uint64_t ConcolicEngine::QueriesThisExplore() const {
  return c_queries_->value() - queries_base_;
}

ConcolicEngine::RoundData ConcolicEngine::RunConcrete(
    const std::vector<std::string>& argv, const CheckpointTrail* parent) {
  RoundData round;
  auto machine = factory_(argv);

  // With checkpoints on and a sink installed, the VM traces through a tee
  // so the trail can later replay this round's record stream as a prefix.
  // The sink sees the exact same stream either way.
  const bool use_ckpt = config_.checkpoints;
  std::shared_ptr<obs::BufferSink> vm_buffer;
  std::optional<obs::TeeSink> vm_tee;
  if (use_ckpt && tracer_.enabled()) {
    vm_buffer = std::make_shared<obs::BufferSink>();
    vm_tee.emplace(vm_buffer.get(), config_.trace_sink);
    machine->set_tracer(obs::Tracer(&*vm_tee));
  } else {
    machine->set_tracer(tracer_);
  }
  machine->set_trace_hook([this, &round](const vm::TraceEvent& ev) {
    if (round.prefix_events + round.events.size() <
        config_.budgets.max_trace_events) {
      round.events.push_back(ev);
    } else {
      round.trace_overflow = true;
    }
  });

  // Resume from the deepest reusable checkpoint of the parent trail: the
  // prefix's trace records are replayed (not re-executed), the VM state is
  // restored, and the input bytes this candidate changes are rebound.
  bool resumed = false;
  size_t resume_index = kNoCheckpoint;
  uint64_t cow_base = 0;
  if (use_ckpt && parent != nullptr) {
    std::vector<InputPatch> patches;
    const size_t ci = DeepestUsable(*parent, argv, &patches);
    if (ci != kNoCheckpoint) {
      // The candidate machine must place argv where the recorded machine
      // did (equal layout implies equal addresses; verify anyway).
      bool layout_ok = true;
      for (size_t i = 0; i < argv.size(); ++i) {
        if (machine->ArgvStringAddr(i) != parent->argv_addrs[i]) {
          layout_ok = false;
          break;
        }
      }
      if (layout_ok) {
        const Checkpoint& cp = parent->checkpoints[ci];
        if (vm_tee && parent->vm_stream != nullptr) {
          parent->vm_stream->ReplayPrefix(*vm_tee, cp.vm_records);
        }
        const auto restore_start = std::chrono::steady_clock::now();
        machine->Restore(*cp.vm);
        c_ckpt_restore_micros_->Add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - restore_start)
                .count()));
        cow_base = machine->CowPagesCopied();
        for (const InputPatch& p : patches) {
          machine->RebindInputByte(p.addr, p.value);
        }
        round.prefix_events = cp.event_count;
        round.resume_exec = cp.symex;
        round.resume_sym_records = cp.sym_records;
        round.parent_sym_stream = parent->sym_stream;
        resumed = true;
        resume_index = ci;
      }
    }
  }
  // Fresh machines arm the input-watch masks; restored ones inherit the
  // recording run's accumulated masks through the snapshot.
  if (use_ckpt && !resumed) machine->WatchArgvBlock();

  CheckpointRecorder recorder(config_.budgets.max_checkpoints,
                              config_.budgets.checkpoint_stride);
  if (use_ckpt) {
    round.trail = std::make_shared<CheckpointTrail>();
    round.trail->argv = argv;
    round.trail->argv_addrs.reserve(argv.size());
    for (size_t i = 0; i < argv.size(); ++i) {
      round.trail->argv_addrs.push_back(machine->ArgvStringAddr(i));
    }
    if (resumed) recorder.Inherit(parent->checkpoints, resume_index);
    // New checkpoints embed this round's argv: after the rebind patches,
    // every live (non-overwritten) byte of the block holds it.
    auto argv_shared = std::make_shared<const std::vector<std::string>>(argv);
    machine->set_checkpoint_hook(
        recorder.stride(),
        [&round, &recorder, argv_shared, vm_buf = vm_buffer.get()](
            std::shared_ptr<const vm::MachineSnapshot> snap) -> uint64_t {
          if (round.trace_overflow) return 0;
          Checkpoint cp;
          cp.vm = std::move(snap);
          cp.argv = argv_shared;
          cp.event_count = round.prefix_events + round.events.size();
          cp.vm_records = vm_buf != nullptr ? vm_buf->records() : 0;
          return recorder.Add(std::move(cp));
        });
  }

  const vm::RunResult rr = machine->Run();
  round.bomb_hit = rr.bomb_triggered;
  round.vm_fault = rr.faulted;
  if (rr.budget_exhausted) round.trace_overflow = true;
  c_decode_hits_->Add(rr.decode_cache_hits);
  c_decode_misses_->Add(rr.decode_cache_misses);
  if (use_ckpt) {
    if (resumed) {
      c_ckpt_hits_->Increment();
      c_ckpt_pages_->Add(machine->CowPagesCopied() - cow_base);
    } else if (parent != nullptr) {
      c_ckpt_misses_->Increment();
    }
    round.trail->checkpoints = recorder.Take();
    round.trail->vm_stream = vm_buffer;
  }
  return round;
}

void ConcolicEngine::DeclareSymbolicInputs(
    symex::TraceExecutor& exec, const vm::Machine& machine,
    const std::vector<std::string>& argv) {
  if (!config_.sources.argv) return;
  const unsigned window = config_.sources.argv_max_len;
  for (size_t i = 1; i < argv.size(); ++i) {
    const uint64_t addr = machine.ArgvStringAddr(i);
    const size_t nbytes = window > 0 ? window : argv[i].size();
    std::vector<ExprRef> bytes;
    bytes.reserve(nbytes);
    for (size_t k = 0; k < nbytes; ++k) {
      bytes.push_back(
          pool_.Var(StrFormat("argv%zu_b%zu", i, k), 8));
    }
    exec.AddSymbolicBytes(addr, bytes);
  }
}

std::vector<std::string> ConcolicEngine::DecodeModel(
    const solver::Assignment& model,
    const std::vector<std::string>& current_argv, bool distort) const {
  std::vector<std::string> out = current_argv;
  const unsigned window = config_.sources.argv_max_len;
  for (size_t i = 1; i < out.size(); ++i) {
    const size_t nbytes = window > 0 ? window : out[i].size();
    std::vector<uint8_t> bytes(nbytes, 0);
    size_t last_assigned_nonzero = 0;
    bool any_assigned_nonzero = false;
    for (size_t k = 0; k < nbytes; ++k) {
      const std::string name = StrFormat("argv%zu_b%zu", i, k);
      if (auto it = model.find(name); it != model.end()) {
        uint8_t byte = static_cast<uint8_t>(it->second);
        // The modeled Angr symbolic-jump bug: model bytes are mis-decoded
        // by one (a data-propagation error on the recovered input).
        if (distort) byte = static_cast<uint8_t>(byte + 1);
        bytes[k] = byte;
        if (byte != 0) {
          last_assigned_nonzero = k;
          any_assigned_nonzero = true;
        }
      } else {
        bytes[k] = k < out[i].size() ? static_cast<uint8_t>(out[i][k]) : 0;
      }
    }
    // argv strings cannot contain NUL: fill unconstrained holes before the
    // last byte the model insists on, so the solution survives decoding.
    if (any_assigned_nonzero) {
      for (size_t k = 0; k < last_assigned_nonzero; ++k) {
        if (bytes[k] == 0) bytes[k] = 'A';
      }
    }
    std::string s;
    for (uint8_t byte : bytes) {
      if (byte == 0) break;
      s.push_back(static_cast<char>(byte));
    }
    out[i] = s;
  }
  return out;
}

EngineResult ConcolicEngine::Explore(
    const std::vector<std::string>& seed_argv, uint64_t target_pc) {
  const solver::PipelineStats before = pipeline_.stats();
  const uint64_t rounds_base = c_rounds_->value();
  const uint64_t events_base = c_events_->value();
  const uint64_t conflicts_base = c_conflicts_->value();
  const uint64_t decode_hits_base = c_decode_hits_->value();
  const uint64_t decode_misses_base = c_decode_misses_->value();
  const uint64_t ckpt_hits_base = c_ckpt_hits_->value();
  const uint64_t ckpt_misses_base = c_ckpt_misses_->value();
  const uint64_t ckpt_pages_base = c_ckpt_pages_->value();
  const uint64_t ckpt_restore_base = c_ckpt_restore_micros_->value();
  const uint64_t presolve_dropped_base = c_presolve_dropped_->value();
  queries_base_ = c_queries_->value();

  obs::ScopedSpan span =
      tracer_.Span("engine.explore", {obs::Field::U("target_pc", target_pc)});
  const auto wall_start = std::chrono::steady_clock::now();
  EngineResult result = ExploreImpl(seed_argv, target_pc);
  const auto wall_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  // The registry is the source of truth; EngineMetrics is the per-call
  // snapshot handed to callers/reports.
  EngineMetrics& m = result.metrics;
  m.rounds = c_rounds_->value() - rounds_base;
  m.total_events = c_events_->value() - events_base;
  m.solver_queries = c_queries_->value() - queries_base_;
  m.solver_conflicts = c_conflicts_->value() - conflicts_base;
  const solver::PipelineStats after = pipeline_.stats();
  m.solver_cache_hits = after.cache_hits - before.cache_hits;
  m.solver_cache_misses = after.cache_misses - before.cache_misses;
  m.sliced_queries = after.sliced_queries - before.sliced_queries;
  m.solver_micros = after.solver_micros - before.solver_micros;
  m.incremental_solves = after.incremental_solves - before.incremental_solves;
  m.portfolio_rescues = after.portfolio_rescues - before.portfolio_rescues;
  m.presolve_definitive = after.presolve_definitive - before.presolve_definitive;
  m.presolve_unsat = after.presolve_unsat - before.presolve_unsat;
  m.presolve_sat = after.presolve_sat - before.presolve_sat;
  m.presolve_rewrites = after.presolve_rewrites - before.presolve_rewrites;
  m.presolve_bits_pinned =
      after.presolve_bits_pinned - before.presolve_bits_pinned;
  m.presolve_dropped_negations =
      c_presolve_dropped_->value() - presolve_dropped_base;
  m.decode_cache_hits = c_decode_hits_->value() - decode_hits_base;
  m.decode_cache_misses = c_decode_misses_->value() - decode_misses_base;
  m.checkpoint_hits = c_ckpt_hits_->value() - ckpt_hits_base;
  m.checkpoint_misses = c_ckpt_misses_->value() - ckpt_misses_base;
  m.checkpoint_pages_copied = c_ckpt_pages_->value() - ckpt_pages_base;
  m.checkpoint_restore_micros =
      c_ckpt_restore_micros_->value() - ckpt_restore_base;
  m.explore_micros = static_cast<uint64_t>(wall_micros);
  metrics_.Get("engine.explore_micros")->Add(m.explore_micros);
  metrics_.Get("solver.cache_hits")->Add(m.solver_cache_hits);
  metrics_.Get("solver.cache_misses")->Add(m.solver_cache_misses);
  metrics_.Get("solver.sliced_queries")->Add(m.sliced_queries);
  metrics_.Get("solver.micros")->Add(m.solver_micros);
  metrics_.Get("solver.incremental_solves")->Add(m.incremental_solves);
  metrics_.Get("solver.portfolio_rescues")->Add(m.portfolio_rescues);
  metrics_.Get("solver.presolve_definitive")->Add(m.presolve_definitive);
  metrics_.Get("solver.presolve_unsat")->Add(m.presolve_unsat);
  metrics_.Get("solver.presolve_sat")->Add(m.presolve_sat);
  metrics_.Get("solver.presolve_rewrites")->Add(m.presolve_rewrites);
  metrics_.Get("solver.presolve_bits_pinned")->Add(m.presolve_bits_pinned);

  if (result.claimed) c_claims_->Increment();
  if (result.validated) c_validations_->Increment();
  if (result.aborted) {
    c_aborts_->Increment();
    tracer_.Event("engine.abort",
                  {obs::Field::S("reason", result.abort_reason)});
  }
  if (tracer_.enabled()) {
    tracer_.Event("engine.explore.done",
                  {obs::Field::U("rounds", m.rounds),
                   obs::Field::U("queries", m.solver_queries),
                   obs::Field::U("claimed", result.claimed ? 1 : 0),
                   obs::Field::U("validated", result.validated ? 1 : 0)});
  }
  return result;
}

EngineResult ConcolicEngine::ExploreImpl(
    const std::vector<std::string>& seed_argv, uint64_t target_pc) {
  EngineResult result;
  // Engine-raised diagnostics mirror into the sink like executor ones do.
  result.diag.tracer = tracer_;
  CfgReachability cfg(image_, target_pc);
  uint64_t rounds = 0;  // this call only; the registry counter is per-engine

  // Candidate inputs carry the trail of the round that derived them, so
  // their concrete run can resume from a recorded checkpoint.
  struct WorkItem {
    std::vector<std::string> argv;
    std::shared_ptr<const CheckpointTrail> trail;
  };
  std::deque<WorkItem> worklist;
  worklist.push_back(WorkItem{seed_argv, nullptr});
  std::set<std::vector<std::string>> enqueued = {seed_argv};
  // Negations already attempted: (pc, occurrence, direction-of-cond id).
  std::set<std::tuple<uint64_t, uint32_t, uint32_t>> flipped;

  bool first_round = true;
  while (!worklist.empty() && rounds < config_.budgets.max_rounds) {
    if (result.aborted) break;
    const WorkItem item = std::move(worklist.front());
    worklist.pop_front();
    const std::vector<std::string>& argv = item.argv;
    ++rounds;
    c_rounds_->Increment();
    result.explored_inputs.push_back(argv);

    RoundData round = RunConcrete(argv, item.trail.get());
    const uint64_t total_events = round.prefix_events + round.events.size();
    c_events_->Add(total_events);
    if (round.bomb_hit) {
      result.claimed = true;
      result.validated = true;
      result.claimed_argv = argv;
      if (tracer_.enabled()) {
        const std::string joined = JoinArgv(argv);
        tracer_.Event("engine.validated",
                      {obs::Field::U("round", rounds),
                       obs::Field::S("argv", joined)});
      }
      return result;
    }
    if (round.trace_overflow) {
      result.aborted = true;
      result.abort_reason = "trace budget exceeded (path/instruction blowup)";
      return result;
    }

    // Symbolic walk of this round's trace. A resumed round copies the
    // checkpoint's recorded walk state and only walks the trace suffix —
    // chunk calls are cumulative, so event indices, fresh-symbol names
    // and diagnostics come out as if the full trace had been walked.
    auto machine_for_layout = factory_(argv);  // addresses of argv strings
    std::optional<symex::TraceExecutor> exec_holder;
    if (round.resume_exec != nullptr) {
      exec_holder.emplace(*round.resume_exec);
    } else {
      exec_holder.emplace(&pool_, config_.symex);
    }
    symex::TraceExecutor& exec = *exec_holder;

    // Symex-side tee, mirroring RunConcrete's VM-side one: walk
    // diagnostics are buffered so a child round can replay the prefix.
    std::shared_ptr<obs::BufferSink> sym_buffer;
    std::optional<obs::TeeSink> sym_tee;
    obs::Tracer walk_tracer = tracer_;
    if (round.trail != nullptr && tracer_.enabled()) {
      sym_buffer = std::make_shared<obs::BufferSink>();
      sym_tee.emplace(sym_buffer.get(), config_.trace_sink);
      walk_tracer = obs::Tracer(&*sym_tee);
    }
    // (Re-)installed even on copies: a copied executor carries its source
    // round's reader and tracer, both bound to dead context.
    exec.state().diag().tracer = walk_tracer;
    exec.SetInitialByteReader(
        [this, &machine_for_layout](uint64_t addr) -> std::optional<uint8_t> {
          for (const auto& s : image_.sections()) {
            if (addr >= s.vaddr && addr < s.vaddr + s.data.size()) {
              return s.data[addr - s.vaddr];
            }
          }
          // argv block of the root process (written before execution).
          return machine_for_layout->root().mem.ReadU8(addr);
        });
    if (round.resume_exec == nullptr) {
      DeclareSymbolicInputs(exec, *machine_for_layout, argv);
    } else if (sym_tee && round.parent_sym_stream != nullptr) {
      round.parent_sym_stream->ReplayPrefix(*sym_tee,
                                            round.resume_sym_records);
    }

    // Walk in chunks, pairing each pending VM snapshot with a copy of the
    // executor once the walk reaches its boundary; then walk the rest.
    symex::SymTraceResult sym;
    const std::span<const vm::TraceEvent> suffix(round.events);
    size_t walked = 0;
    if (round.trail != nullptr) {
      for (Checkpoint& cp : round.trail->checkpoints) {
        if (cp.symex != nullptr) continue;  // inherited: already complete
        if (cp.event_count <= round.prefix_events) continue;
        if (cp.event_count > total_events) break;
        const size_t local =
            static_cast<size_t>(cp.event_count - round.prefix_events);
        sym = exec.Execute(suffix.subspan(walked, local - walked));
        walked = local;
        if (sym.aborted) break;
        cp.symex = std::make_shared<const symex::TraceExecutor>(exec);
        cp.sym_records = sym_buffer != nullptr ? sym_buffer->records() : 0;
      }
    }
    if (!sym.aborted) {
      sym = exec.Execute(suffix.subspan(walked));
    }

    // Publish the trail: checkpoints the walk never completed (abort, or
    // a snapshot past the trace end) cannot seed resumed rounds.
    std::shared_ptr<const CheckpointTrail> trail;
    if (round.trail != nullptr) {
      std::erase_if(round.trail->checkpoints, [](const Checkpoint& cp) {
        return cp.symex == nullptr;
      });
      round.trail->sym_stream = sym_buffer;
      trail = round.trail;
    }

    // Merge diagnostics and stats.
    auto& diag_entries = exec.state().diag().entries;
    result.diag.entries.insert(result.diag.entries.end(),
                               diag_entries.begin(), diag_entries.end());
    if (exec.state().AnySymbolicSeen()) result.any_symbolic_seen = true;
    if (first_round) {
      result.seed_symbolic_instrs = sym.symbolic_instr_count;
      result.seed_constraints = exec.state().path().size();
      result.seed_lib_constraints = sym.lib_constraint_count;
      if (config_.seed_path_hook) config_.seed_path_hook(exec.state().path());
      first_round = false;
    }
    if (sym.aborted) {
      result.aborted = true;
      result.abort_reason = sym.abort_reason;
      return result;
    }

    const auto& path = exec.state().path();
    if (!path.empty()) result.any_symbolic_branch = true;
    tracer_.Event("engine.round",
                  {obs::Field::U("round", rounds),
                   obs::Field::U("events", total_events),
                   obs::Field::U("constraints", path.size()),
                   obs::Field::U("jumps", exec.state().jumps().size())});

    // Candidate negations: directed first, then a bounded breadth slice.
    std::vector<size_t> candidates;
    std::vector<size_t> undirected;
    for (size_t i = 0; i < path.size(); ++i) {
      const auto key = std::make_tuple(path[i].pc, path[i].occurrence,
                                       path[i].cond->id);
      if (flipped.count(key) != 0) continue;
      const bool directed = path[i].negated_successor != 0 &&
                            cfg.Reaches(path[i].negated_successor);
      (directed ? candidates : undirected).push_back(i);
    }
    constexpr size_t kUndirectedPerRound = 12;
    for (size_t k = 0; k < undirected.size() && k < kUndirectedPerRound;
         ++k) {
      candidates.push_back(undirected[k]);
    }

    const size_t num_directed =
        candidates.size() -
        std::min(undirected.size(), kUndirectedPerRound);

    // Plan this round's negation batch up front (no engine state touched):
    // mirror the serial loop's budget accounting — queries the serial path
    // would never have issued are not built or solved.
    struct NegationCandidate {
      size_t path_index = 0;
      bool directed = false;
      bool fp_unsupported = false;
      bool presolve_infeasible = false;  // negated cond abstractly false
      size_t query = 0;  // into `queries` unless fp_unsupported/infeasible
    };
    std::vector<NegationCandidate> batch;
    std::vector<solver::QueryPipeline::Query> queries;
    {
      uint64_t planned = QueriesThisExplore();
      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        if (planned >= config_.budgets.max_solver_queries) break;
        const size_t i = candidates[ci];
        // Prefix constraints + negated condition.
        std::vector<ExprRef> assertions;
        assertions.reserve(i + 1);
        for (size_t k = 0; k < i; ++k) assertions.push_back(path[k].cond);
        assertions.push_back(pool_.Not(path[i].cond));

        NegationCandidate cand;
        cand.path_index = i;
        cand.directed = ci < num_directed;
        cand.fp_unsupported = !config_.solver_supports_fp &&
                              solver::ContainsHardFp(assertions);
        if (!cand.fp_unsupported) {
          // Layer-4 pre-solve: a negated condition that is abstractly
          // always-false makes the whole conjunction unsat, so the query
          // is never built or dispatched. FP-bearing queries are exempt —
          // they route to the FP search, which never answers kUnsat, so
          // dropping them would change observable outcomes. So are queries
          // whose circuit could blow the profile's max_sat_vars budget:
          // the full path would answer those RESOURCE_EXHAUSTED/kUnknown,
          // not kUnsat (the gate walk only runs on the rare would-drop
          // candidates, after the memoized abstract check). Accounting
          // (planned/queries counters) mirrors a kUnsat verdict exactly.
          if (config_.budgets.solver.presolve &&
              !solver::ContainsFp(assertions)) {
            const solver::AbsValue av = solver::AbsOf(assertions.back());
            if ((av.bottom || av.umax == 0) &&
                solver::PresolveCircuitFits(
                    assertions, config_.budgets.solver.max_sat_vars)) {
              cand.presolve_infeasible = true;
            }
          }
          ++planned;
          if (!cand.presolve_infeasible) {
            cand.query = queries.size();
            queries.push_back(std::move(assertions));
          }
        }
        batch.push_back(cand);
      }
    }

    // Cache-, slice- and thread-accelerated dispatch of the whole batch.
    // Outcomes are committed strictly in candidate order below (lowest
    // index first), so engine state, diagnostics and abort points are
    // bit-identical to solving one query at a time.
    const std::vector<solver::SolveResult> batch_results =
        pipeline_.SolveBatch(queries);

    for (const NegationCandidate& cand : batch) {
      const size_t i = cand.path_index;
      const bool directed = cand.directed;
      flipped.insert(std::make_tuple(path[i].pc, path[i].occurrence,
                                     path[i].cond->id));
      if (cand.fp_unsupported) {
        result.diag.Raise(
            ErrorStage::kEs3,
            "constraint requires an unsupported floating-point theory",
            path[i].pc);
        continue;
      }
      if (cand.presolve_infeasible) {
        // Same engine-visible effect as a kUnsat verdict (query counted,
        // zero conflicts, no new input) without the solve.
        c_queries_->Increment();
        c_presolve_dropped_->Increment();
        continue;
      }
      const std::vector<ExprRef>& assertions = queries[cand.query];

      c_queries_->Increment();
      const solver::SolveResult& res = batch_results[cand.query];
      c_conflicts_->Add(res.conflicts);
      if (res.status == solver::SolveStatus::kUnknown) {
        const bool circuit =
            res.note.find("circuit") != std::string::npos ||
            res.note.find("bit-blast") != std::string::npos;
        const BudgetOutcome outcome = circuit ? config_.on_circuit_budget
                                              : config_.on_conflict_budget;
        if (outcome == BudgetOutcome::kAbort) {
          result.aborted = true;
          result.abort_reason = "solver budget exceeded: " + res.note;
          return result;
        }
        // kClaimBest: emit a wrong best-effort test case for this path.
        result.claimed = true;
        result.claimed_argv = argv;
        continue;
      }
      if (res.status != solver::SolveStatus::kSat) continue;

      // Does the satisfying path rely on environment symbols?
      bool sys_env = false;
      bool lib_env = false;
      for (ExprRef v : solver::CollectVars(assertions)) {
        if (StartsWith(v->name, "sysenv")) sys_env = true;
        if (StartsWith(v->name, "extenv")) lib_env = true;
      }
      std::vector<std::string> next_argv =
          DecodeModel(res.model, argv, /*distort=*/false);
      // A claim requires a satisfiable state that *is* at the target: the
      // negated direction must fall straight-line into it. Exception:
      // when the satisfying path leans on unconstrained environment
      // symbols, the simulation can satisfy the remaining env-dependent
      // branches too, so mere CFG reachability suffices (this is how
      // simulation-based engines over-approximate).
      const bool env_backed = (sys_env || lib_env) &&
                              cfg.Reaches(path[i].negated_successor);
      if (cfg.StraightLineReaches(path[i].negated_successor, target_pc) ||
          env_backed) {
        result.claimed = true;
        result.claimed_argv = next_argv;
        if (sys_env) result.provenance |= ClaimProvenance::kSysEnv;
        if (lib_env) result.provenance |= ClaimProvenance::kLibEnv;
        if (tracer_.enabled()) {
          const std::string joined = JoinArgv(next_argv);
          tracer_.Event("engine.claim",
                        {obs::Field::U("pc", path[i].pc),
                         obs::Field::U("sys_env", sys_env ? 1 : 0),
                         obs::Field::U("lib_env", lib_env ? 1 : 0),
                         obs::Field::S("argv", joined)});
        }
      }
      if (enqueued.insert(next_argv).second) {
        if (directed) {
          worklist.push_front(WorkItem{next_argv, trail});
        } else {
          worklist.push_back(WorkItem{next_argv, trail});
        }
      }
    }

    // Symbolic indirect jumps: attempt target resolution.
    for (const auto& jump : exec.state().jumps()) {
      if (QueriesThisExplore() >= config_.budgets.max_solver_queries) break;
      std::vector<ExprRef> assertions;
      for (size_t k = 0; k < path.size() &&
                         path[k].event_index < jump.event_index;
           ++k) {
        assertions.push_back(path[k].cond);
      }
      assertions.push_back(
          pool_.Eq(jump.target, pool_.Const(target_pc, 64)));
      if (!config_.solver_supports_fp && solver::ContainsHardFp(assertions)) {
        result.diag.Raise(ErrorStage::kEs3,
                          "jump constraint requires unsupported theory",
                          jump.pc);
        continue;
      }
      c_queries_->Increment();
      auto res = pipeline_.Solve(assertions);
      c_conflicts_->Add(res.conflicts);
      if (res.status == solver::SolveStatus::kSat) {
        const bool buggy =
            config_.symex.jump_policy == symex::SymJumpPolicy::kBuggyResolve;
        std::vector<std::string> next_argv =
            DecodeModel(res.model, argv, /*distort=*/buggy);
        result.claimed = true;
        result.claimed_argv = next_argv;
        if (tracer_.enabled()) {
          const std::string joined = JoinArgv(next_argv);
          tracer_.Event("engine.claim",
                        {obs::Field::U("pc", jump.pc),
                         obs::Field::S("kind", "jump-resolution"),
                         obs::Field::S("argv", joined)});
        }
        if (enqueued.insert(next_argv).second) {
          worklist.push_front(WorkItem{next_argv, trail});
        }
      } else {
        result.diag.Raise(ErrorStage::kEs3,
                          "cannot model symbolic jump targets (no "
                          "satisfiable resolution)",
                          jump.pc);
      }
    }
  }

  if (!result.validated && !result.claimed &&
      config_.claims_on_exhausted_exploration && result.any_symbolic_branch &&
      !result.diag.Has(ErrorStage::kEs1) && !result.diag.Has(ErrorStage::kEs3)) {
    // BAP-style: report the inputs of the last explored flow as an answer.
    result.claimed = true;
    result.claimed_argv = seed_argv;
  }
  return result;
}

}  // namespace sbce::core
