// The concolic execution engine: alternating concrete runs and symbolic
// reasoning (the conceptual framework of §III.B).
//
// Each round: run the program in the VM with tracing → walk the trace
// symbolically → pick path constraints to negate (directed-first, using
// static CFG reachability toward the target) → solve → derive new inputs →
// schedule. The engine claims the target reachable when a directed query
// is satisfiable; every claim is then validated by concrete re-execution,
// which is what separates real successes (✓) from the paper's Es2/P
// outcomes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/core/cfg.h"
#include "src/core/checkpoint.h"
#include "src/isa/image.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_sink.h"
#include "src/solver/pipeline.h"
#include "src/solver/solver.h"
#include "src/symex/config.h"
#include "src/symex/executor.h"
#include "src/vm/machine.h"

namespace sbce::core {

struct EngineBudgets {
  uint64_t max_rounds = 48;
  uint64_t max_trace_events = 400'000;   // per round (exceeding aborts: E)
  uint64_t max_vm_instructions = 4'000'000;
  uint64_t max_solver_queries = 192;
  solver::SolverOptions solver;          // per-query conflict/circuit budget
  /// Solver dispatch concurrency for a round's branch-negation batch.
  /// 0 = auto (hardware concurrency capped at 8); 1 = serial. Engine
  /// results are bit-identical for every value (see solver::QueryPipeline).
  unsigned solver_threads = 0;
  /// Checkpoint budget per round: at most this many live VM+walk
  /// snapshots (0 disables recording). See core::CheckpointRecorder for
  /// the stride-doubling eviction policy.
  size_t max_checkpoints = 32;
  /// Instructions between consecutive snapshots, before any doubling.
  uint64_t checkpoint_stride = 2048;
};

/// What happens when a per-query solver budget is exceeded.
enum class BudgetOutcome : uint8_t {
  kAbort,      // engine dies: paper outcome E
  kClaimBest,  // tool emits a best-effort (wrong) test case: Es2 via
               // failed validation (BAP's behaviour in the study)
};

struct EngineConfig {
  symex::SymexConfig symex;
  symex::SymbolicSources sources;
  EngineBudgets budgets;
  BudgetOutcome on_conflict_budget = BudgetOutcome::kAbort;
  BudgetOutcome on_circuit_budget = BudgetOutcome::kAbort;
  /// Observability sink (not owned; may be null). When set, the engine,
  /// the VM it builds, the symbolic executor's diagnostics and the query
  /// pipeline all emit events/spans into it.
  obs::TraceSink* trace_sink = nullptr;
  /// BAP: when exploration exhausts without reaching the target but
  /// symbolic branches existed, claim the current inputs as an answer.
  bool claims_on_exhausted_exploration = false;
  /// Whether the solver backend has a floating-point theory. When false,
  /// FP constraints raise Es3 instead of being solved.
  bool solver_supports_fp = true;
  /// Checkpoint-based re-exploration: record VM+walk snapshots during
  /// each round and resume candidate rounds from the deepest reusable
  /// one. Engine results and trace output are bit-identical either way;
  /// off exists for measurement and as an escape hatch (--no-checkpoints).
  bool checkpoints = true;
  /// Warm-state injection for the service layer (src/service): an external
  /// query cache shared across engines that serve literally identical
  /// requests. Null = engine-private cache. Shared caches must be
  /// exact_only (QueryCache::Options) so a warm engine replays exactly the
  /// verdicts and models a cold run of the same request computed.
  std::shared_ptr<solver::QueryCache> shared_query_cache;
  /// Called once with the seed round's path constraints, right after the
  /// seed trace has been walked symbolically (even if the walk aborted —
  /// the hook then sees the partial path). The service layer captures
  /// these into warm, hash-consed expression segments so repeat requests
  /// can serve the extracted path condition (the trigger-signature use
  /// case) without re-running the analysis.
  std::function<void(std::span<const symex::PathConstraint>)> seed_path_hook;
};

/// Where a claim's satisfying assignment leaned on simulated environment
/// state. A bitmask so new environment sources extend the enum instead of
/// adding another bool to EngineResult.
enum class ClaimProvenance : uint8_t {
  kNone = 0,
  kSysEnv = 1u << 0,  // simulated syscall returns (Angr SimProcedures)
  kLibEnv = 1u << 1,  // skipped library calls (Angr-NoLib stubs)
};

constexpr ClaimProvenance operator|(ClaimProvenance a, ClaimProvenance b) {
  return static_cast<ClaimProvenance>(static_cast<uint8_t>(a) |
                                      static_cast<uint8_t>(b));
}
constexpr ClaimProvenance operator&(ClaimProvenance a, ClaimProvenance b) {
  return static_cast<ClaimProvenance>(static_cast<uint8_t>(a) &
                                      static_cast<uint8_t>(b));
}
constexpr ClaimProvenance& operator|=(ClaimProvenance& a, ClaimProvenance b) {
  return a = a | b;
}
constexpr bool Any(ClaimProvenance p) { return p != ClaimProvenance::kNone; }

/// Aggregated counters for one Explore call, snapshotted out of the
/// engine's obs::MetricsRegistry (the registry is the source of truth;
/// this struct is the stable reporting surface).
struct EngineMetrics {
  uint64_t rounds = 0;
  uint64_t total_events = 0;       // trace events across all rounds
  uint64_t solver_queries = 0;
  uint64_t solver_conflicts = 0;

  // Query-pipeline counters (cache hits/misses are per independence-
  // sliced component, not per engine query).
  uint64_t solver_cache_hits = 0;
  uint64_t solver_cache_misses = 0;
  uint64_t sliced_queries = 0;
  uint64_t solver_micros = 0;  // wall-clock spent inside the solver stage
  uint64_t incremental_solves = 0;   // components answered by warm sessions
  uint64_t portfolio_rescues = 0;    // budget-exhausted queries rescued

  // Abstract pre-solver counters (solver::Presolve + absdomain-backed
  // rewrites/known bits). Perf-only: excluded from deterministic exports.
  uint64_t presolve_definitive = 0;   // components decided without SAT
  uint64_t presolve_unsat = 0;
  uint64_t presolve_sat = 0;
  uint64_t presolve_rewrites = 0;     // range-rule rewrites applied
  uint64_t presolve_bits_pinned = 0;  // blaster literals constant-folded
  /// Candidate negations the planner dropped because the negated condition
  /// is abstractly always-false (layer 4; never built or dispatched).
  uint64_t presolve_dropped_negations = 0;

  // VM decode-cache counters, summed over every concrete run of the
  // exploration (see vm::RunResult).
  uint64_t decode_cache_hits = 0;
  uint64_t decode_cache_misses = 0;

  // Checkpoint-based re-exploration counters. A hit is a round resumed
  // from a parent checkpoint; a miss is a non-seed round that had to run
  // from scratch (no recorded checkpoint, layout mismatch, or a consumed
  // differing byte). Both stay 0 when checkpoints are disabled.
  uint64_t checkpoint_hits = 0;
  uint64_t checkpoint_misses = 0;
  /// Pages physically copied by CoW breaks in resumed rounds (the true
  /// cost of restore+run beyond the shared prefix).
  uint64_t checkpoint_pages_copied = 0;
  /// Wall-clock spent inside Machine::Restore. Timing-dependent:
  /// excluded from deterministic exports, like explore_micros.
  uint64_t checkpoint_restore_micros = 0;
  /// Wall-clock of the whole Explore call (per-cell wall-clock in grid
  /// runs). Timing-dependent: excluded from deterministic exports.
  uint64_t explore_micros = 0;
};

struct EngineResult {
  bool claimed = false;                 // engine believes target reachable
  std::vector<std::string> claimed_argv;
  bool validated = false;               // a concrete run hit the target
  /// Environment state the claim's model leaned on (kNone for claims
  /// grounded purely in declared inputs).
  ClaimProvenance provenance = ClaimProvenance::kNone;
  bool aborted = false;                 // paper outcome E
  std::string abort_reason;
  symex::Diagnostics diag;              // merged diagnostics
  bool any_symbolic_branch = false;
  bool any_symbolic_seen = false;

  EngineMetrics metrics;

  /// Every input the engine executed, in order (seed first). Useful for
  /// replaying the exploration, e.g. to measure coverage.
  std::vector<std::vector<std::string>> explored_inputs;

  // Figure 3 metrics, from the seed round.
  size_t seed_symbolic_instrs = 0;
  size_t seed_constraints = 0;
  size_t seed_lib_constraints = 0;
};

class ConcolicEngine {
 public:
  /// Builds the concrete machine for a given argv (tracing and validation
  /// runs use the same factory, so the environment is identical).
  using MachineFactory =
      std::function<std::unique_ptr<vm::Machine>(
          const std::vector<std::string>& argv)>;

  ConcolicEngine(const isa::BinaryImage& image, MachineFactory factory,
                 EngineConfig config);

  /// Directed exploration toward `target_pc` starting from `seed_argv`.
  EngineResult Explore(const std::vector<std::string>& seed_argv,
                       uint64_t target_pc);

  /// Cumulative counters across this engine's lifetime (Explore snapshots
  /// per-call deltas out of this registry into EngineMetrics).
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  EngineResult ExploreImpl(const std::vector<std::string>& seed_argv,
                           uint64_t target_pc);

  struct RoundData {
    /// Trace events this round actually executed: the full trace for a
    /// from-scratch round, only the suffix past the resumed checkpoint
    /// otherwise. Event indices recorded by the symbolic walk stay
    /// absolute either way (TraceExecutor chunks are cumulative).
    std::vector<vm::TraceEvent> events;
    /// Events skipped by resuming (0 for from-scratch rounds).
    uint64_t prefix_events = 0;
    bool bomb_hit = false;
    bool trace_overflow = false;
    bool vm_fault = false;
    /// Walk state to copy instead of a fresh executor (resumed rounds).
    std::shared_ptr<const symex::TraceExecutor> resume_exec;
    /// Symex record-stream prefix to replay before walking the suffix.
    size_t resume_sym_records = 0;
    std::shared_ptr<const obs::BufferSink> parent_sym_stream;
    /// This round's trail under construction (null ⇔ checkpoints off).
    std::shared_ptr<CheckpointTrail> trail;
  };

  RoundData RunConcrete(const std::vector<std::string>& argv,
                        const CheckpointTrail* parent);
  /// Installs argv symbolic bytes; returns the var names used.
  void DeclareSymbolicInputs(symex::TraceExecutor& exec,
                             const vm::Machine& machine,
                             const std::vector<std::string>& argv);
  std::vector<std::string> DecodeModel(
      const solver::Assignment& model,
      const std::vector<std::string>& current_argv, bool distort) const;

  uint64_t QueriesThisExplore() const;

  const isa::BinaryImage& image_;
  MachineFactory factory_;
  EngineConfig config_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  // Registry-backed counter handles (resolved once; bumped lock-free).
  obs::Counter* c_rounds_;
  obs::Counter* c_events_;
  obs::Counter* c_queries_;
  obs::Counter* c_conflicts_;
  obs::Counter* c_claims_;
  obs::Counter* c_validations_;
  obs::Counter* c_aborts_;
  obs::Counter* c_decode_hits_;
  obs::Counter* c_decode_misses_;
  obs::Counter* c_ckpt_hits_;
  obs::Counter* c_ckpt_misses_;
  obs::Counter* c_ckpt_pages_;
  obs::Counter* c_ckpt_restore_micros_;
  obs::Counter* c_presolve_dropped_;
  /// `c_queries_` value when the current Explore began (budget checks are
  /// per-exploration, the registry is per-engine).
  uint64_t queries_base_ = 0;
  solver::ExprPool pool_;
  solver::QueryPipeline pipeline_;
};

}  // namespace sbce::core
