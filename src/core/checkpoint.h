// Checkpoint trails for checkpoint-based re-exploration.
//
// During a concrete+symbolic round the engine snapshots the VM at
// scheduler sweep boundaries (vm::Machine's checkpoint hook) and, once the
// symbolic walk reaches the same boundary, pairs each snapshot with a copy
// of the trace executor. A candidate input derived from that round then
// resumes from the deepest checkpoint whose recorded prefix never
// *consumed* a byte on which the candidate differs (per-byte masks from
// Memory::SetInputWatch), instead of re-running the whole prefix.
//
// Budget/eviction policy (CheckpointRecorder): a trail keeps at most
// `max_checkpoints` snapshots. Snapshots start `stride` instructions
// apart; when the trail fills up, every other checkpoint is dropped and
// the stride doubles — the classic amortization that bounds live
// snapshots while keeping them roughly evenly spaced over the run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/buffer_sink.h"
#include "src/vm/machine.h"

namespace sbce::symex {
class TraceExecutor;
}

namespace sbce::core {

/// One resumable point of a recorded round: the VM state at a sweep
/// boundary, the symbolic walk state at the same trace position, and the
/// bookkeeping needed to keep resumed rounds bit-identical to from-scratch
/// ones (embedded input, record-stream prefix lengths).
struct Checkpoint {
  std::shared_ptr<const vm::MachineSnapshot> vm;
  /// Walk state after `event_count` events; null until the round's
  /// symbolic walk passes the boundary (incomplete checkpoints are pruned
  /// before the trail is published).
  std::shared_ptr<const symex::TraceExecutor> symex;
  /// The argv whose bytes `vm` holds (checkpoints inherited from a parent
  /// trail embed the parent's input, not the resuming round's).
  std::shared_ptr<const std::vector<std::string>> argv;
  uint64_t event_count = 0;  // trace events before the boundary (absolute)
  size_t vm_records = 0;     // VM obs records before the boundary
  size_t sym_records = 0;    // symex obs records before the boundary
};

/// The checkpoints of one recorded round, attached to every candidate
/// input that round produced. `vm_stream`/`sym_stream` hold the round's
/// full obs record streams (prefix replay keeps --trace output identical);
/// both are null when no trace sink is installed.
struct CheckpointTrail {
  std::vector<std::string> argv;     // input of the recording round
  std::vector<uint64_t> argv_addrs;  // guest address of argv[i]'s bytes
  std::shared_ptr<const obs::BufferSink> vm_stream;
  std::shared_ptr<const obs::BufferSink> sym_stream;
  std::vector<Checkpoint> checkpoints;  // ascending event_count
};

/// Applies the budget/eviction policy while a round records checkpoints.
class CheckpointRecorder {
 public:
  CheckpointRecorder(size_t max_checkpoints, uint64_t stride)
      : max_(max_checkpoints), stride_(stride) {}

  /// Seeds the trail with the parent's checkpoints up to and including
  /// `upto` (they are complete and their event counts precede the resume
  /// point, so they stay valid for the resumed round).
  void Inherit(const std::vector<Checkpoint>& parent, size_t upto) {
    for (size_t i = 0; i < parent.size() && i <= upto; ++i) {
      cps_.push_back(parent[i]);
    }
  }

  /// Records a checkpoint and returns the instruction gap to the next one
  /// (0 when checkpointing is disabled by a zero budget).
  uint64_t Add(Checkpoint cp) {
    if (max_ == 0) return 0;
    cps_.push_back(std::move(cp));
    while (cps_.size() > max_) {
      // Keep every other checkpoint counting back from the most recent
      // (which always survives — it is the deepest, hence the most
      // valuable resume point) and double the stride.
      size_t out = 0;
      for (size_t i = 0; i < cps_.size(); ++i) {
        if ((cps_.size() - 1 - i) % 2 == 0) cps_[out++] = std::move(cps_[i]);
      }
      cps_.resize(out);
      stride_ *= 2;
    }
    return stride_;
  }

  uint64_t stride() const { return stride_; }
  std::vector<Checkpoint> Take() { return std::move(cps_); }

 private:
  size_t max_;
  uint64_t stride_;
  std::vector<Checkpoint> cps_;
};

/// One input byte a resumed round must patch into restored guest memory.
struct InputPatch {
  uint64_t addr = 0;
  uint8_t value = 0;
};

inline constexpr size_t kNoCheckpoint = static_cast<size_t>(-1);

/// Index of the deepest checkpoint of `trail` that can soundly resume a
/// round for `argv`, or kNoCheckpoint. A checkpoint is usable iff the
/// candidate has the trail's exact per-argument layout (string lengths)
/// and no byte on which it differs from the checkpoint's embedded argv was
/// consumed by the recorded prefix. On success `patches` receives the
/// differing bytes that must be rebound after the restore (bytes the
/// prefix overwrote need no patch — their initial value is dead).
size_t DeepestUsable(const CheckpointTrail& trail,
                     const std::vector<std::string>& argv,
                     std::vector<InputPatch>* patches);

}  // namespace sbce::core
