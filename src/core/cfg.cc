#include "src/core/cfg.h"

#include <map>
#include <vector>

#include "src/isa/instruction.h"
#include "src/isa/opcode.h"

namespace sbce::core {

using isa::Opcode;

CfgReachability::CfgReachability(const isa::BinaryImage& image,
                                 uint64_t target) {
  // Decode every executable section into predecessor edges.
  std::map<uint64_t, std::vector<uint64_t>> preds;  // addr → predecessors
  for (const auto& section : image.sections()) {
    if ((section.flags & isa::kSectionExec) == 0) continue;
    for (size_t off = 0; off + isa::kInstrBytes <= section.data.size();
         off += isa::kInstrBytes) {
      const uint64_t pc = section.vaddr + off;
      auto decoded = isa::Decode(
          std::span<const uint8_t>(section.data.data() + off,
                                   isa::kInstrBytes));
      if (!decoded) continue;  // data in text: no edges
      const auto& in = decoded.value();
      instrs_.emplace(pc, in);
      const uint64_t next = pc + isa::kInstrBytes;
      const auto imm = static_cast<int64_t>(in.imm);
      switch (in.op) {
        case Opcode::kJmp:
          preds[next + imm].push_back(pc);
          break;
        case Opcode::kBz:
        case Opcode::kBnz:
          preds[next + imm].push_back(pc);
          preds[next].push_back(pc);
          break;
        case Opcode::kCall:
          preds[next + imm].push_back(pc);
          preds[next].push_back(pc);  // returns eventually fall through
          break;
        case Opcode::kJmpR:
        case Opcode::kCallR:
          // Unknown target: conservatively, such a site may reach anything.
          indirect_anywhere_ = true;
          preds[next].push_back(pc);
          break;
        case Opcode::kHalt:
        case Opcode::kRet:
          break;  // no static successor
        default:
          preds[next].push_back(pc);
          break;
      }
    }
  }

  // Backward BFS from the target.
  std::vector<uint64_t> work = {target};
  reaches_.insert(target);
  while (!work.empty()) {
    const uint64_t cur = work.back();
    work.pop_back();
    auto it = preds.find(cur);
    if (it == preds.end()) continue;
    for (uint64_t p : it->second) {
      if (reaches_.insert(p).second) work.push_back(p);
    }
  }
}

bool CfgReachability::StraightLineReaches(uint64_t pc,
                                          uint64_t target) const {
  for (int steps = 0; steps < 64; ++steps) {
    if (pc == target) return true;
    auto it = instrs_.find(pc);
    if (it == instrs_.end()) return false;
    const auto& in = it->second;
    const uint64_t next = pc + isa::kInstrBytes;
    switch (in.op) {
      case Opcode::kJmp:
        pc = next + static_cast<int64_t>(in.imm);
        break;
      case Opcode::kBz:
      case Opcode::kBnz:
      case Opcode::kJmpR:
      case Opcode::kCallR:
      case Opcode::kRet:
      case Opcode::kHalt:
        return false;  // further control-flow choice or end
      default:
        pc = next;
        break;
    }
  }
  return false;
}

}  // namespace sbce::core
