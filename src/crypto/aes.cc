#include "src/crypto/aes.h"

namespace sbce::crypto {

uint8_t GfMul(uint8_t a, uint8_t b) {
  uint16_t aa = a;
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= static_cast<uint8_t>(aa);
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11b;
    b >>= 1;
  }
  return p;
}

namespace {

uint8_t GfInv(uint8_t x) {
  // x^254 by square-and-multiply (exponent bits 1111 1110).
  uint8_t res = x;
  for (int bit = 6; bit >= 0; --bit) {
    res = GfMul(res, res);
    if (bit > 0) res = GfMul(res, x);
  }
  return res;
}

uint8_t Rotl8(uint8_t v, int n) {
  return static_cast<uint8_t>((v << n) | (v >> (8 - n)));
}

}  // namespace

uint8_t AesSbox(uint8_t x) {
  const uint8_t inv = GfInv(x);
  return static_cast<uint8_t>(inv ^ Rotl8(inv, 1) ^ Rotl8(inv, 2) ^
                              Rotl8(inv, 3) ^ Rotl8(inv, 4) ^ 0x63);
}

AesBlock Aes128Encrypt(const AesKey& key, const AesBlock& plaintext) {
  static const uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};
  // Key schedule.
  uint8_t rk[176];
  for (int i = 0; i < 16; ++i) rk[i] = key[i];
  for (int i = 4; i < 44; ++i) {
    uint8_t t[4] = {rk[4 * i - 4], rk[4 * i - 3], rk[4 * i - 2],
                    rk[4 * i - 1]};
    if (i % 4 == 0) {
      const uint8_t first = t[0];
      t[0] = AesSbox(t[1]);
      t[1] = AesSbox(t[2]);
      t[2] = AesSbox(t[3]);
      t[3] = AesSbox(first);
      t[0] ^= kRcon[i / 4 - 1];
    }
    for (int j = 0; j < 4; ++j) rk[4 * i + j] = rk[4 * (i - 4) + j] ^ t[j];
  }

  AesBlock s;
  for (int i = 0; i < 16; ++i) s[i] = plaintext[i] ^ rk[i];

  for (int round = 1; round <= 10; ++round) {
    // SubBytes.
    for (auto& b : s) b = AesSbox(b);
    // ShiftRows (column-major state: s[4c + r]).
    AesBlock t;
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        t[4 * c + r] = s[4 * ((c + r) % 4) + r];
      }
    }
    s = t;
    // MixColumns except the last round.
    if (round != 10) {
      for (int c = 0; c < 4; ++c) {
        const uint8_t a0 = s[4 * c], a1 = s[4 * c + 1], a2 = s[4 * c + 2],
                      a3 = s[4 * c + 3];
        s[4 * c] = GfMul(a0, 2) ^ GfMul(a1, 3) ^ a2 ^ a3;
        s[4 * c + 1] = a0 ^ GfMul(a1, 2) ^ GfMul(a2, 3) ^ a3;
        s[4 * c + 2] = a0 ^ a1 ^ GfMul(a2, 2) ^ GfMul(a3, 3);
        s[4 * c + 3] = GfMul(a0, 3) ^ a1 ^ a2 ^ GfMul(a3, 2);
      }
    }
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) s[i] ^= rk[16 * round + i];
  }
  return s;
}

}  // namespace sbce::crypto
