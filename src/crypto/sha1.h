// Host reference SHA-1 (FIPS 180-1), used as ground truth for the guest
// library implementation and for constructing bomb target digests.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace sbce::crypto {

using Sha1Digest = std::array<uint8_t, 20>;

Sha1Digest Sha1(std::span<const uint8_t> message);

}  // namespace sbce::crypto
