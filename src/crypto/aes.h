// Host reference AES-128 block encryption (FIPS 197), used as ground truth
// for the guest library implementation and bomb ciphertexts.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace sbce::crypto {

using AesBlock = std::array<uint8_t, 16>;
using AesKey = std::array<uint8_t, 16>;

AesBlock Aes128Encrypt(const AesKey& key, const AesBlock& plaintext);

/// The AES S-box computed from GF(2^8) arithmetic (no lookup table), the
/// same construction the guest library uses; exposed for tests.
uint8_t AesSbox(uint8_t x);
uint8_t GfMul(uint8_t a, uint8_t b);

}  // namespace sbce::crypto
