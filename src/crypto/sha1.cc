#include "src/crypto/sha1.h"

#include <cstring>
#include <vector>

namespace sbce::crypto {

namespace {
inline uint32_t Rotl(uint32_t v, int n) {
  return (v << n) | (v >> (32 - n));
}
}  // namespace

Sha1Digest Sha1(std::span<const uint8_t> message) {
  uint32_t h[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                   0xC3D2E1F0};
  // Padding.
  std::vector<uint8_t> data(message.begin(), message.end());
  const uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  data.push_back(0x80);
  while (data.size() % 64 != 56) data.push_back(0);
  for (int i = 7; i >= 0; --i) {
    data.push_back(static_cast<uint8_t>(bit_len >> (8 * i)));
  }

  for (size_t block = 0; block < data.size(); block += 64) {
    uint32_t w[80];
    for (int t = 0; t < 16; ++t) {
      w[t] = (static_cast<uint32_t>(data[block + 4 * t]) << 24) |
             (static_cast<uint32_t>(data[block + 4 * t + 1]) << 16) |
             (static_cast<uint32_t>(data[block + 4 * t + 2]) << 8) |
             static_cast<uint32_t>(data[block + 4 * t + 3]);
    }
    for (int t = 16; t < 80; ++t) {
      w[t] = Rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int t = 0; t < 80; ++t) {
      uint32_t f, k;
      if (t < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (t < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      const uint32_t temp = Rotl(a, 5) + f + e + k + w[t];
      e = d;
      d = c;
      c = Rotl(b, 30);
      b = a;
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }

  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<uint8_t>(h[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(h[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(h[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(h[i]);
  }
  return out;
}

}  // namespace sbce::crypto
