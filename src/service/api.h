// The unified analysis API: one request/result pair for the whole
// codebase.
//
// Every way of running an analysis — the Table II grid, the examples, the
// benches, the `sbce_client` CLI and the long-lived `sbce_serve` daemon —
// goes through service::Analyze(AnalysisRequest) and gets back an
// AnalysisResult. The grid runner (tools::RunGrid) dispatches every cell
// through this function; the old RunCell/ExploreImage shims are gone.
//
// Determinism contract (inherited from the grid runner and extended to
// the service): the same request yields a bit-identical deterministic
// result — ResultToJson(result, /*deterministic_only=*/true) — whether it
// is served cold or warm, in-process or through the daemon, serially or
// concurrently with other sessions. Warm state (src/service/warm_cache.h)
// only ever replays verdicts a cold run of the *same* request would have
// computed; everything scheduling- or cache-dependent (wall-clock, cache
// hit counters) lives in the non-deterministic "perf" section of the full
// JSON export.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/isa/image.h"
#include "src/obs/attribution.h"
#include "src/obs/json.h"
#include "src/obs/trace_sink.h"
#include "src/tools/classify.h"

namespace sbce::bombs {
struct BombSpec;
}  // namespace sbce::bombs

namespace sbce::service {

class WarmCache;

/// Engine budget overrides, applied onto the profile's defaults by
/// ApplyBudgets — the single place any override reaches an EngineConfig.
struct BudgetOverrides {
  std::optional<uint64_t> max_rounds;
  std::optional<uint64_t> max_solver_queries;
  std::optional<unsigned> solver_threads;
};

/// One analysis request. The target is exactly one of:
///   * `bomb`        — a dataset bomb id; seed argv, devices, filesystem
///                     preconditions and the paper's expected label come
///                     from the spec.
///   * `corpus_cell` — a generated corpus cell id (src/corpus), resolved
///                     in the deterministic corpus for `corpus_seed`
///                     (0 = the default seed). Fully serializable: the
///                     remote end regenerates the identical cell.
///   * `image`       — serialized SBX bytes (the wire form); `seed_argv`
///                     and `target_pc` are required.
///   * `local_image` — an in-process BinaryImage (not serializable; the
///                     caller keeps it alive across Analyze). Used by
///                     in-process embedders.
struct AnalysisRequest {
  std::string bomb;
  std::string corpus_cell;
  uint64_t corpus_seed = 0;  // 0 = corpus::kDefaultSeed
  std::vector<uint8_t> image;
  const isa::BinaryImage* local_image = nullptr;  // in-process only
  /// In-process only: analyze this spec instead of resolving `bomb` in
  /// the dataset (the grid runner's path — callers may hold specs that
  /// are not registered). Never admitted to shared warm state.
  const bombs::BombSpec* local_bomb = nullptr;
  std::vector<std::string> seed_argv;             // image targets
  uint64_t target_pc = 0;                         // image targets

  /// Tool profile name (tools::ProfileByName): "BAP", "Triton", "Angr",
  /// "Angr-NoLib", "Ideal".
  std::string profile = "Ideal";
  /// In-process escape hatch: a fully custom engine configuration (the
  /// ablation benches mutate profiles arbitrarily). Not serializable;
  /// wire requests always resolve `profile` by name. Requests carrying a
  /// custom engine are never admitted to shared warm state.
  std::optional<core::EngineConfig> custom_engine;

  BudgetOverrides budgets;
  /// Disable the query pipeline's optimizations (the --baseline contract).
  /// Implies no_presolve.
  bool baseline_pipeline = false;
  /// Disable checkpoint-based re-exploration (--no-checkpoints).
  bool no_checkpoints = false;
  /// Disable the abstract pre-solver at all four layers (--no-presolve):
  /// pipeline pre-solve, range-aware simplification, bit-blaster known
  /// bits, and engine negation dropping. Deterministic results are
  /// bit-identical either way; off exists for measurement and as an
  /// escape hatch.
  bool no_presolve = false;

  /// Return the seed round's extracted path condition (the
  /// trigger-signature use case). Served from the warm segment store on
  /// repeat requests.
  bool want_path_condition = false;
  /// Daemon only: stream the request's observability records back inline
  /// in the response ("trace" array of JSON lines).
  bool want_trace = false;
};

/// One analysis result: the paper-taxonomy outcome plus the full engine
/// result (in-process callers) and the reporting surface (wire callers).
struct AnalysisResult {
  /// False iff the request itself was rejected (unknown bomb/profile,
  /// undecodable image, missing target); `error` then says why and no
  /// analysis ran.
  bool ok = false;
  std::string error;

  std::string bomb;     // echo (dataset targets)
  std::string profile;  // echo

  tools::Outcome outcome = tools::Outcome::kE;
  std::string expected;  // paper label; "-" when not part of Table II
  bool matches_paper = false;
  std::optional<obs::Attribution> attribution;  // present iff outcome != OK

  core::EngineResult engine;

  /// Seed path condition, one "0x<pc>: <constraint>" line per conjunct
  /// (want_path_condition requests).
  std::vector<std::string> path_condition;
  /// Observability records as JSON lines (daemon want_trace requests).
  std::vector<std::string> trace_jsonl;

  /// Perf note: any warm store answered part of this request.
  bool served_warm = false;
};

/// Folds the request's budget overrides and mode toggles into an engine
/// configuration. Every override goes through here — the grid runner,
/// Analyze and the daemon share this one helper, so a newly added budget
/// cannot silently miss a path.
void ApplyBudgets(const AnalysisRequest& request, core::EngineConfig* config);

/// Shared/ambient state for Analyze. Default-constructed = cold, fully
/// per-request state (the grid runner's configuration: bit-identical to
/// the pre-service code path).
struct AnalyzeEnv {
  /// Warm store shared across requests (the daemon's). Null = cold.
  WarmCache* warm = nullptr;
  /// Observability sink threaded through engine, VM, symex and solver
  /// (not owned; may be null).
  obs::TraceSink* trace_sink = nullptr;
};

/// The single entry point: resolves the profile and target, applies
/// budgets, acquires or builds the immutable per-image state, runs the
/// concolic engine, and classifies the outcome against the paper.
AnalysisResult Analyze(const AnalysisRequest& request,
                       const AnalyzeEnv& env = {});

/// Wire codec for requests (bomb/image/seed/target/profile/budgets/modes
/// + want flags; local_image and custom_engine are in-process only and
/// never serialized).
obs::JsonValue RequestToJson(const AnalysisRequest& request);
Result<AnalysisRequest> RequestFromJson(const obs::JsonValue& v);

/// Canonical identity of the analysis a request asks for: a digest over
/// the analysis-semantic wire fields (want_* flags excluded — they do not
/// change the analysis). Warm query caches and expression segments are
/// keyed by this, so warm state is only ever shared between literally
/// identical analyses. 0 = not shareable (custom engine, or no target).
uint64_t RequestDigest(const AnalysisRequest& request);

/// Result export. With `deterministic_only` the document contains exactly
/// the fields guaranteed bit-identical cold/warm/concurrent (outcome,
/// claims, counters that are pure functions of the request); otherwise a
/// "perf" section with wall-clock and cache counters is appended.
obs::JsonValue ResultToJson(const AnalysisResult& result,
                            bool deterministic_only);

/// Inverse of ResultToJson for the reporting surface (outcome, labels,
/// claims, attribution, deterministic counters; the engine's in-memory
/// extras are not round-tripped). Error status if `v` is not a result.
Result<AnalysisResult> ResultFromJson(const obs::JsonValue& v);

}  // namespace sbce::service
