#include "src/service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sbce::service {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_id_(other.next_id_),
      reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::Invalid("socket path too long");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int e = errno;
    close(fd);
    return Status::Internal(std::string("connect: ") + std::strerror(e));
  }
  Client client;
  client.fd_ = fd;
  return client;
}

Result<obs::JsonValue> Client::ReadFrame() {
  char buf[64 * 1024];
  for (;;) {
    auto frame = reader_.Next();
    if (!frame.ok()) return frame.status();
    if (frame.value().has_value()) return std::move(*frame.value());
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n == 0) return Status::Internal("daemon closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read: ") + std::strerror(errno));
    }
    reader_.Feed(buf, static_cast<size_t>(n));
  }
}

Result<obs::JsonValue> Client::Call(obs::JsonValue frame) {
  if (fd_ < 0) return Status::Precondition("client not connected");
  const uint64_t id = EnvelopeId(frame);
  const std::string bytes = EncodeFrame(frame);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  for (;;) {
    auto reply = ReadFrame();
    if (!reply.ok()) return reply;
    auto type = EnvelopeType(reply.value());
    if (!type.ok()) return type.status();
    if (EnvelopeId(reply.value()) != id) continue;  // not ours (pipelined)
    if (type.value() == "error") {
      const obs::JsonValue* msg = reply.value().Find("message");
      return Status::Invalid(msg != nullptr ? std::string(msg->AsString())
                                            : "daemon error");
    }
    return reply;
  }
}

Result<obs::JsonValue> Client::AnalyzeJson(const AnalysisRequest& request) {
  obs::JsonValue frame = MakeEnvelope("analyze", next_id_++);
  frame.Set("request", RequestToJson(request));
  auto reply = Call(std::move(frame));
  if (!reply.ok()) return reply;
  const obs::JsonValue* body = reply.value().Find("result");
  if (body == nullptr) {
    return Status::Internal("result frame has no result body");
  }
  return obs::JsonValue(*body);
}

Result<AnalysisResult> Client::Analyze(const AnalysisRequest& request) {
  auto doc = AnalyzeJson(request);
  if (!doc.ok()) return doc.status();
  return ResultFromJson(doc.value());
}

Result<obs::JsonValue> Client::Stats() {
  auto reply = Call(MakeEnvelope("stats", next_id_++));
  if (!reply.ok()) return reply;
  const obs::JsonValue* body = reply.value().Find("stats");
  if (body == nullptr) {
    return Status::Internal("stats frame has no stats body");
  }
  return obs::JsonValue(*body);
}

Status Client::Ping() {
  auto reply = Call(MakeEnvelope("ping", next_id_++));
  return reply.ok() ? Status::Ok() : reply.status();
}

Status Client::Shutdown() {
  auto reply = Call(MakeEnvelope("shutdown", next_id_++));
  return reply.ok() ? Status::Ok() : reply.status();
}

}  // namespace sbce::service
