// The daemon's wire protocol: length-prefixed, versioned JSON frames.
//
// A frame is a u32 little-endian payload length followed by exactly that
// many bytes of compact JSON. Every payload is an envelope object:
//
//   {"v": 1, "type": "<type>", "id": <u64>, ...}
//
// with the request/response body inlined next to the envelope fields.
// Types the daemon understands:
//
//   client → server: "analyze"  (body: RequestToJson fields under "request")
//                    "stats"    (warm-cache + counter snapshot)
//                    "ping"
//                    "shutdown" (drain and stop accepting)
//   server → client: "result"   (body under "result": ResultToJson full doc)
//                    "stats"    (body under "stats")
//                    "pong"
//                    "error"    (body: "message")
//
// `id` is chosen by the client and echoed verbatim on the response, so one
// connection can have several requests in flight; responses may arrive in
// any order. Unknown envelope versions or types are answered with "error",
// never dropped.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/obs/json.h"
#include "src/support/status.h"

namespace sbce::service {

inline constexpr uint32_t kWireVersion = 1;

/// Frames larger than this are a protocol error (guards the daemon from
/// a garbage length prefix allocating gigabytes).
inline constexpr size_t kMaxFrameBytes = 64u << 20;

/// Serializes `doc` and appends one length-prefixed frame to `out`.
void AppendFrame(const obs::JsonValue& doc, std::string* out);
std::string EncodeFrame(const obs::JsonValue& doc);

/// Incremental frame decoder: feed raw socket bytes in, take complete
/// JSON payloads out. Any protocol violation (oversized length prefix,
/// payload that is not valid JSON) poisons the reader — the connection
/// should be dropped.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const void* data, size_t n);

  /// Next complete frame's payload; nullopt when more bytes are needed.
  /// Error status once the stream is unparseable (sticky).
  Result<std::optional<obs::JsonValue>> Next();

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
};

/// A fresh envelope: {"v": kWireVersion, "type": type, "id": id}.
obs::JsonValue MakeEnvelope(std::string_view type, uint64_t id);

/// {"v":1,"type":"error","id":id,"message":message}.
obs::JsonValue MakeErrorFrame(uint64_t id, std::string_view message);

/// Validates the envelope of a received payload: version must be
/// kWireVersion and "type" present. Returns the type string.
Result<std::string> EnvelopeType(const obs::JsonValue& doc);

/// The envelope id (0 when absent — ids are client-chosen and 0 is legal,
/// merely indistinguishable from "absent").
uint64_t EnvelopeId(const obs::JsonValue& doc);

}  // namespace sbce::service
