// WarmCache: the daemon's shared, byte-budgeted store of expensive
// immutable per-image state.
//
// Four stores, all admission/eviction-managed and counter-instrumented:
//
//   * image store    — image key → deserialized/built isa::BinaryImage
//                      (skips SBX parsing / bomb assembly on repeats).
//   * decode store   — image key → isa::PredecodedText (skips the
//                      per-request Predecode pass; the 3.7× interpreter
//                      speedup's setup cost is paid once per image).
//   * query store    — request digest → solver::QueryCache in exact-only
//                      mode (repeat requests answer their solver
//                      components from the verdicts the first run
//                      computed — soundly and bit-identically, see
//                      QueryCache::Options::exact_only).
//   * segment store  — request digest → ExprSegment: the seed round's
//                      path condition, hash-consed into an immutable
//                      cache-owned pool (repeat want_path_condition
//                      requests serve the extracted trigger signature
//                      without re-walking).
//
// Policy: admit-always, evict-LRU. Each store has a byte budget; after an
// admission the least-recently-used entries (never the one just touched)
// are evicted until the store fits. Query stores grow while engines run,
// so their footprint is re-measured at every acquire. Eviction only ever
// discards warm state — a later request rebuilds it cold — so correctness
// is unaffected by any eviction schedule (tested by the eviction-under-
// pressure suite).
//
// Thread safety: one mutex guards all stores; returned values are
// shared_ptr to immutable objects (or to the internally-locked
// QueryCache), so sessions keep using state that was evicted under them.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/isa/image.h"
#include "src/isa/predecode.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/solver/expr.h"
#include "src/solver/query_cache.h"
#include "src/symex/state.h"

namespace sbce::service {

/// An immutable, hash-consed expression segment: the seed round's path
/// condition captured into a cache-owned pool.
struct ExprSegment {
  solver::ExprPool pool;
  std::vector<solver::ExprRef> roots;  // 1-bit conjuncts, path order
  std::vector<uint64_t> pcs;           // constraint sites, parallel to roots
  size_t ApproxBytes() const;
};

/// Imports `path` into a fresh segment (the engine's seed_path_hook side).
std::shared_ptr<ExprSegment> CaptureSegment(
    std::span<const symex::PathConstraint> path);

/// Renders a segment as "0x<pc>: <constraint>" lines.
std::vector<std::string> PathConditionLines(const ExprSegment& segment);

class WarmCache {
 public:
  struct Options {
    size_t image_budget_bytes = 64u << 20;
    size_t decode_budget_bytes = 64u << 20;
    size_t query_budget_bytes = 64u << 20;
    size_t segment_budget_bytes = 32u << 20;
  };

  WarmCache() = default;
  explicit WarmCache(Options options) : options_(options) {}
  WarmCache(const WarmCache&) = delete;
  WarmCache& operator=(const WarmCache&) = delete;

  /// Image by key; `build` runs on a miss (under the cache lock — builds
  /// are deterministic and bounded) and the result is admitted.
  std::shared_ptr<const isa::BinaryImage> AcquireImage(
      uint64_t key, const std::function<isa::BinaryImage()>& build);

  /// Predecoded text for `image` (keyed by the same image key).
  std::shared_ptr<const isa::PredecodedText> AcquireDecode(
      uint64_t key, const isa::BinaryImage& image);

  /// Shared exact-only query cache for one request digest.
  std::shared_ptr<solver::QueryCache> AcquireQueryStore(uint64_t digest);

  /// Segment lookup; null on a miss (the caller then captures one via the
  /// engine hook and publishes it with StoreSegment — first writer wins).
  std::shared_ptr<const ExprSegment> FindSegment(uint64_t digest);
  void StoreSegment(uint64_t digest, std::shared_ptr<const ExprSegment> seg);

  /// Hit/miss/eviction counters: service.{image_cache,decode_cache,
  /// query_store,segment_store}.{hits,misses,evictions}.
  const obs::MetricsRegistry& metrics() const { return registry_; }

  /// Budgets, current byte sizes and entry counts per store, plus the
  /// counter snapshot — the daemon's `stats` payload.
  obs::JsonValue StatsJson() const;

 private:
  template <typename V>
  struct Store {
    struct Entry {
      V value;
      size_t bytes = 0;
      std::list<uint64_t>::iterator lru;  // into `order`
    };
    std::unordered_map<uint64_t, Entry> entries;
    std::list<uint64_t> order;  // front = most recently used
    size_t bytes = 0;
  };

  template <typename V>
  void TouchEntry(Store<V>& store, uint64_t key);
  template <typename V>
  void AdmitEntry(Store<V>& store, uint64_t key, V value, size_t bytes);
  template <typename V>
  void EvictToBudget(Store<V>& store, size_t budget, uint64_t keep_key,
                     obs::Counter* evictions);

  Options options_;
  mutable std::mutex mu_;
  Store<std::shared_ptr<const isa::BinaryImage>> images_;
  Store<std::shared_ptr<const isa::PredecodedText>> decodes_;
  Store<std::shared_ptr<solver::QueryCache>> queries_;
  Store<std::shared_ptr<const ExprSegment>> segments_;
  obs::MetricsRegistry registry_;
};

}  // namespace sbce::service
