// The analysis daemon: a long-lived process serving AnalysisRequests over
// a local (AF_UNIX) socket with the wire protocol of src/service/wire.h.
//
// Architecture (DESIGN.md §5g):
//
//   * One IO thread owns the listening socket and every connection:
//     poll()-driven reads feed per-connection FrameReaders; complete
//     frames are answered inline (ping/stats/shutdown) or queued as
//     analysis work; response bytes drain through per-connection output
//     buffers under POLLOUT.
//   * One dispatch thread runs scheduling epochs: each epoch takes at
//     most ONE queued request per connection (fair round-robin — a client
//     that batches 100 requests cannot starve one that sends a single
//     request) and scatters the batch over a ThreadPool. Responses are
//     handed back to the IO thread through the connections' output
//     buffers and a wakeup pipe.
//   * All requests share one WarmCache: images, predecoded text, warm
//     query verdicts and captured path-condition segments persist across
//     requests and connections, under the cache's byte budgets.
//
// Determinism: the daemon adds no nondeterminism to results — Analyze's
// contract (bit-identical deterministic JSON cold/warm/concurrent) holds
// at any --jobs and any number of simultaneous connections, because warm
// state is only shared between identical requests and each analysis is
// fully private otherwise.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/service/api.h"
#include "src/service/warm_cache.h"
#include "src/service/wire.h"
#include "src/support/status.h"
#include "src/support/thread_pool.h"

namespace sbce::service {

class Daemon {
 public:
  struct Options {
    /// Filesystem path the AF_UNIX socket binds to (unlinked first, and
    /// again on Stop).
    std::string socket_path;
    /// Analysis concurrency per epoch: total threads including the
    /// dispatch thread. 0 = hardware concurrency capped at 8.
    unsigned jobs = 0;
    WarmCache::Options warm;
    size_t max_frame_bytes = kMaxFrameBytes;
  };

  explicit Daemon(Options options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens and starts the IO + dispatch threads.
  Status Start();

  /// Blocks until the daemon stops (a client "shutdown" frame or Stop()).
  void Wait();

  /// Drains queued work and stops both threads. Idempotent; called by the
  /// destructor if needed.
  void Stop();

  WarmCache& warm() { return warm_; }

  /// The daemon's stats document: warm-cache stores + counters plus the
  /// request/connection counters ("stats" responses serve this).
  obs::JsonValue StatsJson() const;

 private:
  struct Connection {
    int fd = -1;
    FrameReader reader;
    std::string outbuf;
    size_t outpos = 0;  // flushed prefix of outbuf
    /// Queued analyze requests: (envelope id, request).
    std::deque<std::pair<uint64_t, AnalysisRequest>> pending;
    size_t inflight = 0;
    /// Flush outbuf, then close (protocol error or client shutdown).
    bool draining = false;

    explicit Connection(size_t max_frame_bytes)
        : reader(max_frame_bytes) {}
  };

  struct WorkItem {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    AnalysisRequest request;
  };

  void IoLoop();
  void DispatchLoop();
  void HandleFrame(Connection& conn, const obs::JsonValue& doc);
  void WakeIo();
  AnalysisResult Serve(const AnalysisRequest& request);

  Options options_;
  WarmCache warm_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // dispatch thread waits here
  std::condition_variable stop_cv_;   // Wait() waits here
  std::map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
  uint64_t rr_cursor_ = 0;  // round-robin: first conn id served next epoch
  bool stopping_ = false;
  bool stopped_ = true;
  /// Set by the dispatch thread when it has drained its queue after a
  /// stop request; the IO thread then flushes and exits.
  bool stopped_io_ready_ = false;
  /// Set by the IO thread on exit so Wait() can finish the teardown (a
  /// client "shutdown" stops the loops; Stop() still joins and cleans up).
  bool io_exited_ = false;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread io_thread_;
  std::thread dispatch_thread_;
};

}  // namespace sbce::service
