#include "src/service/daemon.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "src/obs/buffer_sink.h"
#include "src/obs/jsonl.h"

namespace sbce::service {

namespace {

unsigned ResolveJobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : (hw > 8 ? 8 : hw);
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Daemon::Daemon(Options options)
    : options_(std::move(options)), warm_(options_.warm) {}

Daemon::~Daemon() { Stop(); }

Status Daemon::Start() {
  if (options_.socket_path.empty()) {
    return Status::Invalid("daemon needs a socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::Invalid("socket path too long");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int e = errno;
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("bind: ") + std::strerror(e));
  }
  if (listen(listen_fd_, 128) < 0) {
    const int e = errno;
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen: ") + std::strerror(e));
  }
  SetNonBlocking(listen_fd_);
  if (pipe(wake_pipe_) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  pool_ = std::make_unique<ThreadPool>(ResolveJobs(options_.jobs));
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = false;
    stopped_ = false;
    stopped_io_ready_ = false;
    io_exited_ = false;
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  return Status::Ok();
}

void Daemon::Wait() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_cv_.wait(lk, [this] { return stopped_ || io_exited_; });
  }
  Stop();
}

void Daemon::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_ && !io_thread_.joinable()) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  WakeIo();
  if (io_thread_.joinable()) io_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, conn] : conns_) {
      if (conn->fd >= 0) close(conn->fd);
    }
    conns_.clear();
    stopped_ = true;
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      close(fd);
      fd = -1;
    }
  }
  pool_.reset();
  stop_cv_.notify_all();
}

void Daemon::WakeIo() {
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &b, 1);
  }
}

obs::JsonValue Daemon::StatsJson() const {
  obs::JsonValue doc = obs::JsonValue::Object();
  doc.Set("warm", warm_.StatsJson());
  doc.Set("daemon", registry_.SnapshotJson());
  {
    std::lock_guard<std::mutex> lk(mu_);
    doc.Set("connections", obs::JsonValue::U64(conns_.size()));
  }
  return doc;
}

void Daemon::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // parallel: conn id per pollfd (0 = none)
  char rbuf[64 * 1024];
  for (;;) {
    fds.clear();
    fd_conn.clear();
    bool stopping;
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping = stopping_;
      if (!stopping) {
        fds.push_back({listen_fd_, POLLIN, 0});
        fd_conn.push_back(0);
      }
      fds.push_back({wake_pipe_[0], POLLIN, 0});
      fd_conn.push_back(0);
      for (auto& [id, conn] : conns_) {
        short events = conn->draining ? 0 : POLLIN;
        if (conn->outpos < conn->outbuf.size()) events |= POLLOUT;
        if (events == 0 && conn->draining) {
          // Fully flushed draining connection: close it now.
          events = POLLOUT;  // poll once more; closed below on writable
        }
        fds.push_back({conn->fd, events, 0});
        fd_conn.push_back(id);
      }
    }
    if (stopping) {
      // Dispatch may still be draining queued work; keep flushing
      // responses until it finishes, then exit.
      bool dispatch_done;
      {
        std::lock_guard<std::mutex> lk(mu_);
        dispatch_done = stopped_io_ready_;
      }
      if (dispatch_done) {
        bool flushed = true;
        std::lock_guard<std::mutex> lk(mu_);
        for (auto& [id, conn] : conns_) {
          if (conn->outpos < conn->outbuf.size()) flushed = false;
        }
        if (flushed) {
          io_exited_ = true;
          stop_cv_.notify_all();
          return;
        }
      }
    }
    poll(fds.data(), fds.size(), 100);

    std::vector<uint64_t> to_close;
    bool queued_work = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (size_t i = 0; i < fds.size(); ++i) {
        const pollfd& pfd = fds[i];
        if (pfd.fd == wake_pipe_[0]) {
          if (pfd.revents & POLLIN) {
            while (read(wake_pipe_[0], rbuf, sizeof(rbuf)) > 0) {
            }
          }
          continue;
        }
        if (pfd.fd == listen_fd_ && fd_conn[i] == 0) {
          if (pfd.revents & POLLIN) {
            for (;;) {
              const int cfd = accept(listen_fd_, nullptr, nullptr);
              if (cfd < 0) break;
              SetNonBlocking(cfd);
              auto conn =
                  std::make_unique<Connection>(options_.max_frame_bytes);
              conn->fd = cfd;
              conns_.emplace(next_conn_id_++, std::move(conn));
              registry_.Get("service.connections")->Increment();
            }
          }
          continue;
        }
        auto it = conns_.find(fd_conn[i]);
        if (it == conns_.end()) continue;
        Connection& conn = *it->second;
        if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
          // Peer hung up; deliver nothing further. Requests already
          // queued/in flight finish and their responses are discarded
          // when the response finds the connection gone.
          if (!(pfd.revents & POLLIN)) {
            to_close.push_back(it->first);
            continue;
          }
        }
        if (pfd.revents & POLLIN) {
          for (;;) {
            const ssize_t n = read(conn.fd, rbuf, sizeof(rbuf));
            if (n > 0) {
              conn.reader.Feed(rbuf, static_cast<size_t>(n));
              continue;
            }
            if (n == 0) to_close.push_back(it->first);
            break;  // n<0: EAGAIN (or error → next poll reports it)
          }
          for (;;) {
            auto frame = conn.reader.Next();
            if (!frame.ok()) {
              AppendFrame(MakeErrorFrame(0, frame.status().message()),
                          &conn.outbuf);
              conn.draining = true;
              break;
            }
            if (!frame.value().has_value()) break;
            HandleFrame(conn, *frame.value());
            queued_work = true;
          }
        }
        if ((pfd.revents & POLLOUT) &&
            conn.outpos < conn.outbuf.size()) {
          for (;;) {
            const size_t left = conn.outbuf.size() - conn.outpos;
            if (left == 0) break;
            const ssize_t n = send(conn.fd, conn.outbuf.data() + conn.outpos,
                                   left, MSG_NOSIGNAL);
            if (n <= 0) break;
            conn.outpos += static_cast<size_t>(n);
          }
          if (conn.outpos == conn.outbuf.size()) {
            conn.outbuf.clear();
            conn.outpos = 0;
          }
        }
        if (conn.draining && conn.outpos >= conn.outbuf.size() &&
            conn.pending.empty() && conn.inflight == 0) {
          to_close.push_back(it->first);
        }
      }
      for (uint64_t id : to_close) {
        auto it = conns_.find(id);
        if (it == conns_.end()) continue;
        // Keep connections with work in flight alive as records (their
        // socket is closed) so responses have somewhere to land and the
        // dispatch bookkeeping stays consistent.
        close(it->second->fd);
        it->second->fd = -1;
        it->second->draining = true;
        if (it->second->pending.empty() && it->second->inflight == 0) {
          conns_.erase(it);
        }
      }
      // Re-drop connections whose fd already closed and whose work ended.
      for (auto it = conns_.begin(); it != conns_.end();) {
        Connection& conn = *it->second;
        if (conn.fd < 0 && conn.pending.empty() && conn.inflight == 0) {
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (queued_work) work_cv_.notify_all();
  }
}

void Daemon::HandleFrame(Connection& conn, const obs::JsonValue& doc) {
  auto type = EnvelopeType(doc);
  const uint64_t id = EnvelopeId(doc);
  if (!type.ok()) {
    AppendFrame(MakeErrorFrame(id, type.status().message()), &conn.outbuf);
    return;
  }
  registry_.Get("service.frames")->Increment();
  if (type.value() == "ping") {
    AppendFrame(MakeEnvelope("pong", id), &conn.outbuf);
    return;
  }
  if (type.value() == "stats") {
    obs::JsonValue reply = MakeEnvelope("stats", id);
    obs::JsonValue stats = obs::JsonValue::Object();
    stats.Set("warm", warm_.StatsJson());
    stats.Set("daemon", registry_.SnapshotJson());
    stats.Set("connections", obs::JsonValue::U64(conns_.size()));
    reply.Set("stats", std::move(stats));
    AppendFrame(reply, &conn.outbuf);
    return;
  }
  if (type.value() == "shutdown") {
    AppendFrame(MakeEnvelope("shutdown", id), &conn.outbuf);
    stopping_ = true;  // mu_ already held by IoLoop
    work_cv_.notify_all();
    return;
  }
  if (type.value() == "analyze") {
    const obs::JsonValue* body = doc.Find("request");
    if (body == nullptr) {
      AppendFrame(MakeErrorFrame(id, "analyze frame has no request"),
                  &conn.outbuf);
      return;
    }
    auto req = RequestFromJson(*body);
    if (!req.ok()) {
      AppendFrame(MakeErrorFrame(id, req.status().message()), &conn.outbuf);
      return;
    }
    registry_.Get("service.requests")->Increment();
    conn.pending.emplace_back(id, std::move(req).value());
    return;
  }
  AppendFrame(MakeErrorFrame(id, "unknown frame type: " + type.value()),
              &conn.outbuf);
}

AnalysisResult Daemon::Serve(const AnalysisRequest& request) {
  AnalyzeEnv env;
  env.warm = &warm_;
  if (!request.want_trace) return Analyze(request, env);
  obs::BufferSink buffer;
  env.trace_sink = &buffer;
  AnalysisResult res = Analyze(request, env);
  std::ostringstream lines;
  obs::JsonlSink jsonl(&lines);
  buffer.Replay(jsonl);
  std::string all = lines.str();
  size_t start = 0;
  while (start < all.size()) {
    size_t end = all.find('\n', start);
    if (end == std::string::npos) end = all.size();
    if (end > start) res.trace_jsonl.push_back(all.substr(start, end - start));
    start = end + 1;
  }
  return res;
}

void Daemon::DispatchLoop() {
  for (;;) {
    std::vector<WorkItem> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      for (;;) {
        // One request per connection per epoch, starting after the
        // round-robin cursor so every session advances.
        batch.clear();
        auto start = conns_.upper_bound(rr_cursor_);
        auto take = [&](auto begin, auto end) {
          for (auto it = begin; it != end; ++it) {
            Connection& conn = *it->second;
            if (conn.pending.empty()) continue;
            WorkItem item;
            item.conn_id = it->first;
            item.request_id = conn.pending.front().first;
            item.request = std::move(conn.pending.front().second);
            conn.pending.pop_front();
            ++conn.inflight;
            batch.push_back(std::move(item));
          }
        };
        take(start, conns_.end());
        take(conns_.begin(), start);
        if (!batch.empty()) {
          rr_cursor_ = batch.back().conn_id;
          break;
        }
        if (stopping_) {
          stopped_io_ready_ = true;
          WakeIo();
          return;
        }
        work_cv_.wait(lk);
      }
      registry_.Get("service.epochs")->Increment();
    }
    std::vector<obs::JsonValue> replies(batch.size());
    pool_->ForEachIndex(batch.size(), [&](size_t i) {
      AnalysisResult res = Serve(batch[i].request);
      obs::JsonValue reply = MakeEnvelope("result", batch[i].request_id);
      reply.Set("result", ResultToJson(res, /*deterministic_only=*/false));
      replies[i] = std::move(reply);
    });
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (size_t i = 0; i < batch.size(); ++i) {
        auto it = conns_.find(batch[i].conn_id);
        if (it == conns_.end()) continue;
        --it->second->inflight;
        if (it->second->fd >= 0) {
          AppendFrame(replies[i], &it->second->outbuf);
        }
      }
    }
    WakeIo();
  }
}

}  // namespace sbce::service
