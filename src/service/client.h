// Synchronous client for the analysis daemon: connects to the AF_UNIX
// socket, speaks the wire protocol, and exposes typed calls. One Client
// is one connection; it is not thread-safe (use one per thread — the
// daemon multiplexes connections, not the client).
#pragma once

#include <cstdint>
#include <string>

#include "src/obs/json.h"
#include "src/service/api.h"
#include "src/service/wire.h"
#include "src/support/status.h"

namespace sbce::service {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a daemon's socket.
  static Result<Client> Connect(const std::string& socket_path);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one envelope and blocks for the response with the same id
  /// ("error" frames come back as error Status).
  Result<obs::JsonValue> Call(obs::JsonValue frame);

  /// Round-trips an analysis: request out, AnalysisResult back. The
  /// result's `ok=false` + `error` report request-level rejections (bad
  /// bomb/profile); transport failures are the error Status.
  Result<AnalysisResult> Analyze(const AnalysisRequest& request);

  /// Raw result document of an analysis (the full wire JSON, perf section
  /// included) — what the CLI prints and the byte-identity tests diff.
  Result<obs::JsonValue> AnalyzeJson(const AnalysisRequest& request);

  Result<obs::JsonValue> Stats();
  Status Ping();
  /// Asks the daemon to drain and exit.
  Status Shutdown();

 private:
  Result<obs::JsonValue> ReadFrame();

  int fd_ = -1;
  uint64_t next_id_ = 1;
  FrameReader reader_;
};

}  // namespace sbce::service
