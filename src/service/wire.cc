#include "src/service/wire.h"

#include <cstring>

namespace sbce::service {

void AppendFrame(const obs::JsonValue& doc, std::string* out) {
  const std::string payload = obs::Dump(doc);
  const uint32_t n = static_cast<uint32_t>(payload.size());
  char prefix[4];
  prefix[0] = static_cast<char>(n & 0xff);
  prefix[1] = static_cast<char>((n >> 8) & 0xff);
  prefix[2] = static_cast<char>((n >> 16) & 0xff);
  prefix[3] = static_cast<char>((n >> 24) & 0xff);
  out->append(prefix, 4);
  out->append(payload);
}

std::string EncodeFrame(const obs::JsonValue& doc) {
  std::string out;
  AppendFrame(doc, &out);
  return out;
}

void FrameReader::Feed(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

Result<std::optional<obs::JsonValue>> FrameReader::Next() {
  if (poisoned_) return Status::Invalid("frame stream poisoned");
  // Compact the consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::optional<obs::JsonValue>(std::nullopt);
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const uint32_t len = static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24);
  if (len > max_frame_bytes_) {
    poisoned_ = true;
    return Status::Invalid("frame exceeds size limit");
  }
  if (avail < 4u + len) return std::optional<obs::JsonValue>(std::nullopt);
  std::string_view payload(buf_.data() + pos_ + 4, len);
  pos_ += 4u + len;
  std::optional<obs::JsonValue> doc = obs::ParseJson(payload);
  if (!doc) {
    poisoned_ = true;
    return Status::Invalid("frame payload is not valid JSON");
  }
  return std::optional<obs::JsonValue>(std::move(doc));
}

obs::JsonValue MakeEnvelope(std::string_view type, uint64_t id) {
  obs::JsonValue v = obs::JsonValue::Object();
  v.Set("v", obs::JsonValue::U64(kWireVersion));
  v.Set("type", obs::JsonValue::Str(type));
  v.Set("id", obs::JsonValue::U64(id));
  return v;
}

obs::JsonValue MakeErrorFrame(uint64_t id, std::string_view message) {
  obs::JsonValue v = MakeEnvelope("error", id);
  v.Set("message", obs::JsonValue::Str(message));
  return v;
}

Result<std::string> EnvelopeType(const obs::JsonValue& doc) {
  if (doc.kind != obs::JsonValue::Kind::kObject) {
    return Status::Invalid("payload is not an object");
  }
  const obs::JsonValue* v = doc.Find("v");
  if (v == nullptr || v->AsU64() != kWireVersion) {
    return Status::Invalid("unsupported protocol version");
  }
  const obs::JsonValue* type = doc.Find("type");
  if (type == nullptr || type->kind != obs::JsonValue::Kind::kString) {
    return Status::Invalid("envelope has no type");
  }
  return std::string(type->AsString());
}

uint64_t EnvelopeId(const obs::JsonValue& doc) {
  const obs::JsonValue* id = doc.Find("id");
  return id == nullptr ? 0 : id->AsU64();
}

}  // namespace sbce::service
