#include "src/service/api.h"

#include <memory>
#include <utility>

#include "src/bombs/bombs.h"
#include "src/corpus/corpus.h"
#include "src/isa/predecode.h"
#include "src/service/warm_cache.h"
#include "src/support/bits.h"
#include "src/support/str.h"
#include "src/tools/profiles.h"
#include "src/vm/machine.h"

namespace sbce::service {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string HexEncode(std::span<const uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::optional<std::vector<uint8_t>> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<uint8_t> out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

AnalysisResult RequestError(const AnalysisRequest& request,
                            std::string message) {
  AnalysisResult res;
  res.ok = false;
  res.error = std::move(message);
  res.bomb = request.bomb;
  res.profile = request.profile;
  return res;
}

/// The analysis-semantic fields, in fixed order — both the wire form and
/// the canonical digest input. `full` adds the want_* flags (wire only;
/// they do not change the analysis, so the digest excludes them).
obs::JsonValue RequestJsonImpl(const AnalysisRequest& request, bool full) {
  obs::JsonValue v = obs::JsonValue::Object();
  v.Set("v", obs::JsonValue::U64(1));
  if (!request.bomb.empty()) {
    v.Set("bomb", obs::JsonValue::Str(request.bomb));
  }
  if (!request.corpus_cell.empty()) {
    v.Set("corpus_cell", obs::JsonValue::Str(request.corpus_cell));
    if (request.corpus_seed != 0) {
      v.Set("corpus_seed", obs::JsonValue::U64(request.corpus_seed));
    }
  }
  if (!request.image.empty()) {
    v.Set("image", obs::JsonValue::Str(HexEncode(request.image)));
  }
  if (!request.seed_argv.empty()) {
    obs::JsonValue argv = obs::JsonValue::Array();
    for (const std::string& a : request.seed_argv) {
      argv.items.push_back(obs::JsonValue::Str(a));
    }
    v.Set("seed_argv", std::move(argv));
  }
  if (request.target_pc != 0) {
    v.Set("target_pc", obs::JsonValue::U64(request.target_pc));
  }
  v.Set("profile", obs::JsonValue::Str(request.profile));
  obs::JsonValue budgets = obs::JsonValue::Object();
  if (request.budgets.max_rounds) {
    budgets.Set("max_rounds", obs::JsonValue::U64(*request.budgets.max_rounds));
  }
  if (request.budgets.max_solver_queries) {
    budgets.Set("max_solver_queries",
                obs::JsonValue::U64(*request.budgets.max_solver_queries));
  }
  if (request.budgets.solver_threads) {
    budgets.Set("solver_threads",
                obs::JsonValue::U64(*request.budgets.solver_threads));
  }
  if (!budgets.members.empty()) v.Set("budgets", std::move(budgets));
  if (request.baseline_pipeline) v.Set("baseline", obs::JsonValue::Bool(true));
  if (request.no_checkpoints) {
    v.Set("no_checkpoints", obs::JsonValue::Bool(true));
  }
  if (request.no_presolve) v.Set("no_presolve", obs::JsonValue::Bool(true));
  if (full) {
    if (request.want_path_condition) {
      v.Set("path_condition", obs::JsonValue::Bool(true));
    }
    if (request.want_trace) v.Set("trace", obs::JsonValue::Bool(true));
  }
  return v;
}

}  // namespace

void ApplyBudgets(const AnalysisRequest& request,
                  core::EngineConfig* config) {
  if (request.baseline_pipeline) {
    config->budgets.solver.cache_queries = false;
    config->budgets.solver.slice_independent = false;
    config->budgets.solver.incremental_batch = false;
    config->budgets.solver.portfolio = false;
    config->budgets.solver.presolve = false;
    config->budgets.solver_threads = 1;
  }
  if (request.no_presolve) config->budgets.solver.presolve = false;
  if (request.budgets.max_rounds) {
    config->budgets.max_rounds = *request.budgets.max_rounds;
  }
  if (request.budgets.max_solver_queries) {
    config->budgets.max_solver_queries = *request.budgets.max_solver_queries;
  }
  if (request.budgets.solver_threads) {
    config->budgets.solver_threads = *request.budgets.solver_threads;
  }
  if (request.no_checkpoints) config->checkpoints = false;
}

obs::JsonValue RequestToJson(const AnalysisRequest& request) {
  return RequestJsonImpl(request, /*full=*/true);
}

Result<AnalysisRequest> RequestFromJson(const obs::JsonValue& v) {
  if (v.kind != obs::JsonValue::Kind::kObject) {
    return Status::Invalid("request is not an object");
  }
  const obs::JsonValue* ver = v.Find("v");
  if (ver == nullptr || ver->AsU64() != 1) {
    return Status::Invalid("unsupported request version");
  }
  AnalysisRequest req;
  if (const obs::JsonValue* b = v.Find("bomb")) req.bomb.assign(b->AsString());
  if (const obs::JsonValue* c = v.Find("corpus_cell")) {
    req.corpus_cell.assign(c->AsString());
  }
  if (const obs::JsonValue* s = v.Find("corpus_seed")) {
    req.corpus_seed = s->AsU64();
  }
  if (const obs::JsonValue* img = v.Find("image")) {
    auto bytes = HexDecode(img->AsString());
    if (!bytes) return Status::Invalid("image is not valid hex");
    req.image = std::move(*bytes);
  }
  if (const obs::JsonValue* argv = v.Find("seed_argv")) {
    if (argv->kind != obs::JsonValue::Kind::kArray) {
      return Status::Invalid("seed_argv is not an array");
    }
    for (const obs::JsonValue& a : argv->items) {
      req.seed_argv.emplace_back(a.AsString());
    }
  }
  if (const obs::JsonValue* t = v.Find("target_pc")) {
    req.target_pc = t->AsU64();
  }
  if (const obs::JsonValue* p = v.Find("profile")) {
    req.profile.assign(p->AsString());
  }
  if (const obs::JsonValue* budgets = v.Find("budgets")) {
    if (const obs::JsonValue* r = budgets->Find("max_rounds")) {
      req.budgets.max_rounds = r->AsU64();
    }
    if (const obs::JsonValue* q = budgets->Find("max_solver_queries")) {
      req.budgets.max_solver_queries = q->AsU64();
    }
    if (const obs::JsonValue* s = budgets->Find("solver_threads")) {
      req.budgets.solver_threads = static_cast<unsigned>(s->AsU64());
    }
  }
  if (const obs::JsonValue* b = v.Find("baseline")) {
    req.baseline_pipeline = b->AsBool();
  }
  if (const obs::JsonValue* n = v.Find("no_checkpoints")) {
    req.no_checkpoints = n->AsBool();
  }
  if (const obs::JsonValue* np = v.Find("no_presolve")) {
    req.no_presolve = np->AsBool();
  }
  if (const obs::JsonValue* pc = v.Find("path_condition")) {
    req.want_path_condition = pc->AsBool();
  }
  if (const obs::JsonValue* tr = v.Find("trace")) {
    req.want_trace = tr->AsBool();
  }
  return req;
}

uint64_t RequestDigest(const AnalysisRequest& request) {
  if (request.custom_engine.has_value()) return 0;  // not shareable
  if (request.local_bomb != nullptr) return 0;      // unregistered spec
  if (request.bomb.empty() && request.corpus_cell.empty() &&
      request.image.empty() && request.local_image == nullptr) {
    return 0;
  }
  obs::JsonValue canon;
  if (request.local_image != nullptr && request.image.empty()) {
    // Local images are digested through their serialized form, in wire
    // field order, so an in-process request and the equivalent wire
    // request share identity.
    AnalysisRequest wire_form = request;
    wire_form.image = request.local_image->Serialize();
    wire_form.local_image = nullptr;
    canon = RequestJsonImpl(wire_form, /*full=*/false);
  } else {
    canon = RequestJsonImpl(request, /*full=*/false);
  }
  const std::string dump = obs::Dump(canon);
  return Fnv1a(dump.data(), dump.size());
}

AnalysisResult Analyze(const AnalysisRequest& request,
                       const AnalyzeEnv& env) {
  // 1. Resolve the engine configuration.
  core::EngineConfig config;
  if (request.custom_engine.has_value()) {
    config = *request.custom_engine;
  } else {
    auto profile = tools::ProfileByName(request.profile);
    if (!profile) {
      return RequestError(request, "unknown profile: " + request.profile);
    }
    config = profile->engine;
  }
  ApplyBudgets(request, &config);
  config.trace_sink = env.trace_sink;

  // 2. Resolve the target: a dataset bomb, a generated corpus cell, or
  // an image. The corpus keepalive pins the generated spec for the whole
  // analysis (SharedCorpus entries live for the process, but holding the
  // reference makes the lifetime explicit).
  const bombs::BombSpec* spec = nullptr;
  std::shared_ptr<const corpus::Corpus> corpus_keepalive;
  std::shared_ptr<const isa::BinaryImage> image;
  uint64_t image_key = 0;
  if (!request.corpus_cell.empty()) {
    const uint64_t seed =
        request.corpus_seed != 0 ? request.corpus_seed : corpus::kDefaultSeed;
    corpus_keepalive = corpus::SharedCorpus(seed);
    if (corpus_keepalive == nullptr) {
      return RequestError(request, "corpus generation failed");
    }
    const corpus::CorpusCell* cell =
        corpus_keepalive->Find(request.corpus_cell);
    if (cell == nullptr) {
      return RequestError(request,
                          "unknown corpus cell: " + request.corpus_cell);
    }
    spec = &cell->spec;
    const std::string key_text = StrFormat(
        "corpus:%llu:%s", static_cast<unsigned long long>(seed),
        spec->id.c_str());
    image_key = Fnv1a(key_text.data(), key_text.size());
  } else if (request.local_bomb != nullptr || !request.bomb.empty()) {
    spec = request.local_bomb != nullptr ? request.local_bomb
                                         : bombs::FindBomb(request.bomb);
    if (spec == nullptr) {
      return RequestError(request, "unknown bomb: " + request.bomb);
    }
    const std::string key_text = "bomb:" + spec->id;
    image_key = Fnv1a(key_text.data(), key_text.size());
  } else if (request.local_image == nullptr && request.image.empty()) {
    return RequestError(request, "request has no target (bomb or image)");
  } else if (request.local_image == nullptr) {
    image_key = Fnv1a(request.image.data(), request.image.size());
  } else {
    const std::vector<uint8_t> bytes = request.local_image->Serialize();
    image_key = Fnv1a(bytes.data(), bytes.size());
  }

  const auto build_image = [&]() -> Result<isa::BinaryImage> {
    if (spec != nullptr) return bombs::BuildBomb(*spec);
    if (request.local_image != nullptr) return *request.local_image;
    return isa::BinaryImage::Deserialize(request.image);
  };

  bool warm_image = false;
  // Unregistered specs stay out of warm stores entirely: their image key
  // (the spec id) could collide with a dataset bomb of the same name.
  WarmCache* warm = request.local_bomb == nullptr ? env.warm : nullptr;
  if (warm != nullptr) {
    // Peek-build once outside the cache so deserialize errors surface as
    // request errors rather than aborting inside the admission callback.
    auto built = build_image();
    if (!built.ok()) {
      return RequestError(request,
                          "bad image: " + built.status().message());
    }
    const uint64_t misses_before =
        warm->metrics().Value("service.image_cache.misses");
    image = warm->AcquireImage(
        image_key, [&]() { return std::move(built).value(); });
    warm_image =
        warm->metrics().Value("service.image_cache.misses") ==
        misses_before;
  } else {
    auto built = build_image();
    if (!built.ok()) {
      return RequestError(request,
                          "bad image: " + built.status().message());
    }
    image = std::make_shared<const isa::BinaryImage>(
        std::move(built).value());
  }

  AnalysisResult res;
  res.ok = true;
  res.profile = request.profile;
  if (spec != nullptr) res.bomb = spec->id;
  res.served_warm = warm_image;

  const uint64_t target_pc =
      spec != nullptr ? bombs::BombAddress(*image) : request.target_pc;
  const std::vector<std::string>& seed_argv =
      spec != nullptr ? spec->seed_argv : request.seed_argv;

  // 3. Warm immutable state: predecoded text, shared query verdicts, and
  // the captured seed segment — all keyed so only identical analyses
  // share (see RequestDigest).
  std::shared_ptr<const isa::PredecodedText> predecoded;
  const uint64_t digest = RequestDigest(request);
  std::shared_ptr<const ExprSegment> segment;
  if (warm != nullptr) {
    predecoded = warm->AcquireDecode(image_key, *image);
    if (digest != 0 && !request.baseline_pipeline &&
        config.budgets.solver.cache_queries) {
      config.shared_query_cache = warm->AcquireQueryStore(digest);
    }
    if (digest != 0) segment = warm->FindSegment(digest);
  } else {
    predecoded = isa::Predecode(*image);
  }

  std::shared_ptr<ExprSegment> captured;
  if (segment == nullptr &&
      (request.want_path_condition ||
       (warm != nullptr && digest != 0))) {
    config.seed_path_hook =
        [&captured](std::span<const symex::PathConstraint> path) {
          captured = CaptureSegment(path);
        };
  }

  // 4. Run the engine. The machine factory mirrors what the grid runner
  // always built: the spec's devices and filesystem for bombs, a default
  // environment for raw images, the shared predecoded store for both.
  core::ConcolicEngine engine(
      *image,
      [spec, &image, &predecoded](const std::vector<std::string>& argv) {
        vm::Machine::Options vm_options;
        vm_options.predecoded = predecoded;
        auto machine = std::make_unique<vm::Machine>(
            *image, argv,
            spec != nullptr ? spec->experiment_devices : vm::Devices(),
            vm_options);
        if (spec != nullptr) {
          for (const auto& [path, contents] : spec->files) {
            machine->fs().PutString(path, contents);
          }
        }
        return machine;
      },
      config);
  res.engine = engine.Explore(seed_argv, target_pc);

  if (captured != nullptr) {
    segment = captured;
    if (warm != nullptr && digest != 0) {
      warm->StoreSegment(digest, captured);
    }
  } else if (segment != nullptr) {
    res.served_warm = true;
  }
  if (request.want_path_condition && segment != nullptr) {
    res.path_condition = PathConditionLines(*segment);
  }

  // 5. Classify against the paper's taxonomy.
  res.outcome = tools::Classify(res.engine);
  res.attribution = tools::Attribute(res.outcome, res.engine);
  if (spec != nullptr) {
    int tool_index = -1;
    if (request.profile == "BAP") tool_index = bombs::kBap;
    if (request.profile == "Triton") tool_index = bombs::kTriton;
    if (request.profile == "Angr") tool_index = bombs::kAngr;
    if (request.profile == "Angr-NoLib") tool_index = bombs::kAngrNoLib;
    res.expected = tool_index >= 0
                       ? spec->expected[static_cast<size_t>(tool_index)]
                       : spec->expected_ideal;
  } else {
    res.expected = "-";
  }
  res.matches_paper =
      res.expected == std::string(tools::OutcomeLabel(res.outcome));
  return res;
}

obs::JsonValue ResultToJson(const AnalysisResult& result,
                            bool deterministic_only) {
  obs::JsonValue v = obs::JsonValue::Object();
  v.Set("v", obs::JsonValue::U64(1));
  v.Set("ok", obs::JsonValue::Bool(result.ok));
  if (!result.ok) {
    v.Set("error", obs::JsonValue::Str(result.error));
    return v;
  }
  if (!result.bomb.empty()) v.Set("bomb", obs::JsonValue::Str(result.bomb));
  v.Set("profile", obs::JsonValue::Str(result.profile));
  v.Set("outcome",
        obs::JsonValue::Str(tools::OutcomeLabel(result.outcome)));
  v.Set("expected", obs::JsonValue::Str(result.expected));
  v.Set("matches_paper", obs::JsonValue::Bool(result.matches_paper));
  v.Set("claimed", obs::JsonValue::Bool(result.engine.claimed));
  if (!result.engine.claimed_argv.empty()) {
    obs::JsonValue argv = obs::JsonValue::Array();
    for (const std::string& a : result.engine.claimed_argv) {
      argv.items.push_back(obs::JsonValue::Str(a));
    }
    v.Set("claimed_argv", std::move(argv));
  }
  v.Set("validated", obs::JsonValue::Bool(result.engine.validated));
  v.Set("provenance",
        obs::JsonValue::U64(static_cast<uint8_t>(result.engine.provenance)));
  v.Set("aborted", obs::JsonValue::Bool(result.engine.aborted));
  if (!result.engine.abort_reason.empty()) {
    v.Set("abort_reason", obs::JsonValue::Str(result.engine.abort_reason));
  }
  if (result.attribution) {
    v.Set("attribution", obs::AttributionToJson(*result.attribution));
  }
  // Counters that are pure functions of the request (identical cold,
  // warm, and at any concurrency — the determinism contract).
  const core::EngineMetrics& m = result.engine.metrics;
  v.Set("any_symbolic_branch",
        obs::JsonValue::Bool(result.engine.any_symbolic_branch));
  v.Set("any_symbolic_seen",
        obs::JsonValue::Bool(result.engine.any_symbolic_seen));
  v.Set("rounds", obs::JsonValue::U64(m.rounds));
  v.Set("trace_events", obs::JsonValue::U64(m.total_events));
  v.Set("solver_queries", obs::JsonValue::U64(m.solver_queries));
  v.Set("sliced_queries", obs::JsonValue::U64(m.sliced_queries));
  v.Set("explored_inputs",
        obs::JsonValue::U64(result.engine.explored_inputs.size()));
  v.Set("seed_symbolic_instrs",
        obs::JsonValue::U64(result.engine.seed_symbolic_instrs));
  v.Set("seed_constraints",
        obs::JsonValue::U64(result.engine.seed_constraints));
  v.Set("seed_lib_constraints",
        obs::JsonValue::U64(result.engine.seed_lib_constraints));
  if (!result.path_condition.empty()) {
    obs::JsonValue pc = obs::JsonValue::Array();
    for (const std::string& line : result.path_condition) {
      pc.items.push_back(obs::JsonValue::Str(line));
    }
    v.Set("path_condition", std::move(pc));
  }
  if (deterministic_only) return v;

  // Schedule/warm-state-dependent observations: excluded from the
  // determinism contract by construction.
  obs::JsonValue perf = obs::JsonValue::Object();
  perf.Set("served_warm", obs::JsonValue::Bool(result.served_warm));
  perf.Set("solver_cache_hits", obs::JsonValue::U64(m.solver_cache_hits));
  perf.Set("solver_cache_misses",
           obs::JsonValue::U64(m.solver_cache_misses));
  perf.Set("solver_conflicts", obs::JsonValue::U64(m.solver_conflicts));
  perf.Set("solver_micros", obs::JsonValue::U64(m.solver_micros));
  perf.Set("incremental_solves", obs::JsonValue::U64(m.incremental_solves));
  perf.Set("portfolio_rescues", obs::JsonValue::U64(m.portfolio_rescues));
  perf.Set("presolve_definitive", obs::JsonValue::U64(m.presolve_definitive));
  perf.Set("presolve_unsat", obs::JsonValue::U64(m.presolve_unsat));
  perf.Set("presolve_sat", obs::JsonValue::U64(m.presolve_sat));
  perf.Set("presolve_rewrites", obs::JsonValue::U64(m.presolve_rewrites));
  perf.Set("presolve_bits_pinned",
           obs::JsonValue::U64(m.presolve_bits_pinned));
  perf.Set("presolve_dropped_negations",
           obs::JsonValue::U64(m.presolve_dropped_negations));
  perf.Set("decode_cache_hits", obs::JsonValue::U64(m.decode_cache_hits));
  perf.Set("decode_cache_misses",
           obs::JsonValue::U64(m.decode_cache_misses));
  perf.Set("checkpoint_hits", obs::JsonValue::U64(m.checkpoint_hits));
  perf.Set("checkpoint_misses", obs::JsonValue::U64(m.checkpoint_misses));
  perf.Set("explore_micros", obs::JsonValue::U64(m.explore_micros));
  v.Set("perf", std::move(perf));
  if (!result.trace_jsonl.empty()) {
    obs::JsonValue trace = obs::JsonValue::Array();
    for (const std::string& line : result.trace_jsonl) {
      trace.items.push_back(obs::JsonValue::Str(line));
    }
    v.Set("trace", std::move(trace));
  }
  return v;
}

Result<AnalysisResult> ResultFromJson(const obs::JsonValue& v) {
  if (v.kind != obs::JsonValue::Kind::kObject || v.Find("ok") == nullptr) {
    return Status::Invalid("not an analysis result");
  }
  AnalysisResult res;
  res.ok = v.Find("ok")->AsBool();
  if (const obs::JsonValue* e = v.Find("error")) res.error.assign(e->AsString());
  if (!res.ok) return res;
  if (const obs::JsonValue* b = v.Find("bomb")) res.bomb.assign(b->AsString());
  if (const obs::JsonValue* p = v.Find("profile")) {
    res.profile.assign(p->AsString());
  }
  const obs::JsonValue* outcome = v.Find("outcome");
  if (outcome == nullptr) return Status::Invalid("result has no outcome");
  bool found = false;
  for (tools::Outcome o :
       {tools::Outcome::kOk, tools::Outcome::kEs0, tools::Outcome::kEs1,
        tools::Outcome::kEs2, tools::Outcome::kEs3, tools::Outcome::kE,
        tools::Outcome::kP}) {
    if (outcome->AsString() == tools::OutcomeLabel(o)) {
      res.outcome = o;
      found = true;
      break;
    }
  }
  if (!found) return Status::Invalid("unknown outcome label");
  if (const obs::JsonValue* e = v.Find("expected")) {
    res.expected.assign(e->AsString());
  }
  if (const obs::JsonValue* mp = v.Find("matches_paper")) {
    res.matches_paper = mp->AsBool();
  }
  if (const obs::JsonValue* c = v.Find("claimed")) {
    res.engine.claimed = c->AsBool();
  }
  if (const obs::JsonValue* argv = v.Find("claimed_argv")) {
    for (const obs::JsonValue& a : argv->items) {
      res.engine.claimed_argv.emplace_back(a.AsString());
    }
  }
  if (const obs::JsonValue* val = v.Find("validated")) {
    res.engine.validated = val->AsBool();
  }
  if (const obs::JsonValue* pv = v.Find("provenance")) {
    res.engine.provenance =
        static_cast<core::ClaimProvenance>(pv->AsU64() & 0x3);
  }
  if (const obs::JsonValue* x = v.Find("any_symbolic_branch")) {
    res.engine.any_symbolic_branch = x->AsBool();
  }
  if (const obs::JsonValue* x = v.Find("any_symbolic_seen")) {
    res.engine.any_symbolic_seen = x->AsBool();
  }
  if (const obs::JsonValue* a = v.Find("aborted")) {
    res.engine.aborted = a->AsBool();
  }
  if (const obs::JsonValue* r = v.Find("abort_reason")) {
    res.engine.abort_reason.assign(r->AsString());
  }
  if (const obs::JsonValue* a = v.Find("attribution")) {
    res.attribution = obs::AttributionFromJson(*a);
    if (!res.attribution) return Status::Invalid("bad attribution record");
  }
  core::EngineMetrics& m = res.engine.metrics;
  if (const obs::JsonValue* x = v.Find("rounds")) m.rounds = x->AsU64();
  if (const obs::JsonValue* x = v.Find("trace_events")) {
    m.total_events = x->AsU64();
  }
  if (const obs::JsonValue* x = v.Find("solver_queries")) {
    m.solver_queries = x->AsU64();
  }
  if (const obs::JsonValue* x = v.Find("sliced_queries")) {
    m.sliced_queries = x->AsU64();
  }
  if (const obs::JsonValue* x = v.Find("explored_inputs")) {
    // Only the count crosses the wire; placeholder entries keep the
    // deterministic projection stable through a round trip.
    res.engine.explored_inputs.resize(x->AsU64());
  }
  if (const obs::JsonValue* x = v.Find("seed_symbolic_instrs")) {
    res.engine.seed_symbolic_instrs = x->AsU64();
  }
  if (const obs::JsonValue* x = v.Find("seed_constraints")) {
    res.engine.seed_constraints = x->AsU64();
  }
  if (const obs::JsonValue* x = v.Find("seed_lib_constraints")) {
    res.engine.seed_lib_constraints = x->AsU64();
  }
  if (const obs::JsonValue* pc = v.Find("path_condition")) {
    for (const obs::JsonValue& line : pc->items) {
      res.path_condition.emplace_back(line.AsString());
    }
  }
  if (const obs::JsonValue* perf = v.Find("perf")) {
    if (const obs::JsonValue* w = perf->Find("served_warm")) {
      res.served_warm = w->AsBool();
    }
    if (const obs::JsonValue* x = perf->Find("solver_cache_hits")) {
      m.solver_cache_hits = x->AsU64();
    }
    if (const obs::JsonValue* x = perf->Find("decode_cache_hits")) {
      m.decode_cache_hits = x->AsU64();
    }
    if (const obs::JsonValue* x = perf->Find("explore_micros")) {
      m.explore_micros = x->AsU64();
    }
  }
  if (const obs::JsonValue* trace = v.Find("trace")) {
    for (const obs::JsonValue& line : trace->items) {
      res.trace_jsonl.emplace_back(line.AsString());
    }
  }
  return res;
}

}  // namespace sbce::service
