#include "src/service/warm_cache.h"

#include <cstdio>
#include <utility>

namespace sbce::service {

size_t ExprSegment::ApproxBytes() const {
  // Hash-consed nodes dominate; strings (var names) are approximated by
  // the node constant below.
  constexpr size_t kPerNode = sizeof(solver::Expr) + 48;
  return sizeof(ExprSegment) + pool.size() * kPerNode +
         roots.size() * sizeof(solver::ExprRef) +
         pcs.size() * sizeof(uint64_t);
}

std::shared_ptr<ExprSegment> CaptureSegment(
    std::span<const symex::PathConstraint> path) {
  auto seg = std::make_shared<ExprSegment>();
  seg->roots.reserve(path.size());
  seg->pcs.reserve(path.size());
  for (const symex::PathConstraint& pc : path) {
    seg->roots.push_back(solver::ImportInto(&seg->pool, pc.cond));
    seg->pcs.push_back(pc.pc);
  }
  return seg;
}

std::vector<std::string> PathConditionLines(const ExprSegment& segment) {
  std::vector<std::string> lines;
  lines.reserve(segment.roots.size());
  for (size_t i = 0; i < segment.roots.size(); ++i) {
    char addr[32];
    std::snprintf(addr, sizeof(addr), "0x%llx: ",
                  static_cast<unsigned long long>(segment.pcs[i]));
    lines.push_back(addr + solver::ToString(segment.roots[i]));
  }
  return lines;
}

template <typename V>
void WarmCache::TouchEntry(Store<V>& store, uint64_t key) {
  auto it = store.entries.find(key);
  store.order.splice(store.order.begin(), store.order, it->second.lru);
}

template <typename V>
void WarmCache::AdmitEntry(Store<V>& store, uint64_t key, V value,
                           size_t bytes) {
  store.order.push_front(key);
  typename Store<V>::Entry entry;
  entry.value = std::move(value);
  entry.bytes = bytes;
  entry.lru = store.order.begin();
  store.bytes += bytes;
  store.entries.emplace(key, std::move(entry));
}

template <typename V>
void WarmCache::EvictToBudget(Store<V>& store, size_t budget,
                              uint64_t keep_key, obs::Counter* evictions) {
  // Evict LRU-first, but never the entry the current request just touched
  // (an over-budget singleton stays until something else displaces it).
  while (store.bytes > budget && store.order.size() > 1) {
    uint64_t victim = store.order.back();
    if (victim == keep_key) {
      // keep_key is LRU-last only when everything newer was already
      // evicted this pass; rotate it to the front and take the next one.
      store.order.splice(store.order.begin(), store.order,
                         std::prev(store.order.end()));
      victim = store.order.back();
    }
    auto it = store.entries.find(victim);
    store.bytes -= it->second.bytes;
    store.order.erase(it->second.lru);
    store.entries.erase(it);
    evictions->Increment();
  }
}

std::shared_ptr<const isa::BinaryImage> WarmCache::AcquireImage(
    uint64_t key, const std::function<isa::BinaryImage()>& build) {
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = images_.entries.find(key); it != images_.entries.end()) {
    registry_.Get("service.image_cache.hits")->Increment();
    TouchEntry(images_, key);
    return it->second.value;
  }
  registry_.Get("service.image_cache.misses")->Increment();
  auto image = std::make_shared<const isa::BinaryImage>(build());
  const size_t bytes = image->TotalBytes() + 128 * image->sections().size() +
                       sizeof(isa::BinaryImage);
  AdmitEntry(images_, key, std::shared_ptr<const isa::BinaryImage>(image),
             bytes);
  EvictToBudget(images_, options_.image_budget_bytes, key,
                registry_.Get("service.image_cache.evictions"));
  return image;
}

std::shared_ptr<const isa::PredecodedText> WarmCache::AcquireDecode(
    uint64_t key, const isa::BinaryImage& image) {
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = decodes_.entries.find(key); it != decodes_.entries.end()) {
    registry_.Get("service.decode_cache.hits")->Increment();
    TouchEntry(decodes_, key);
    return it->second.value;
  }
  registry_.Get("service.decode_cache.misses")->Increment();
  std::shared_ptr<const isa::PredecodedText> decoded = isa::Predecode(image);
  AdmitEntry(decodes_, key,
             std::shared_ptr<const isa::PredecodedText>(decoded),
             decoded->ApproxBytes());
  EvictToBudget(decodes_, options_.decode_budget_bytes, key,
                registry_.Get("service.decode_cache.evictions"));
  return decoded;
}

std::shared_ptr<solver::QueryCache> WarmCache::AcquireQueryStore(
    uint64_t digest) {
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = queries_.entries.find(digest); it != queries_.entries.end()) {
    registry_.Get("service.query_store.hits")->Increment();
    TouchEntry(queries_, digest);
    // Engines grew the caches since admission; re-measure everything so
    // the budget tracks reality, then trim.
    queries_.bytes = 0;
    for (auto& [key, entry] : queries_.entries) {
      entry.bytes = entry.value->ApproxBytes();
      queries_.bytes += entry.bytes;
    }
    EvictToBudget(queries_, options_.query_budget_bytes, digest,
                  registry_.Get("service.query_store.evictions"));
    return it->second.value;
  }
  registry_.Get("service.query_store.misses")->Increment();
  solver::QueryCache::Options cache_options;
  cache_options.exact_only = true;  // bit-identity contract; see header
  auto cache = std::make_shared<solver::QueryCache>(cache_options);
  AdmitEntry(queries_, digest, std::shared_ptr<solver::QueryCache>(cache),
             cache->ApproxBytes());
  EvictToBudget(queries_, options_.query_budget_bytes, digest,
                registry_.Get("service.query_store.evictions"));
  return cache;
}

std::shared_ptr<const ExprSegment> WarmCache::FindSegment(uint64_t digest) {
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = segments_.entries.find(digest);
      it != segments_.entries.end()) {
    registry_.Get("service.segment_store.hits")->Increment();
    TouchEntry(segments_, digest);
    return it->second.value;
  }
  registry_.Get("service.segment_store.misses")->Increment();
  return nullptr;
}

void WarmCache::StoreSegment(uint64_t digest,
                             std::shared_ptr<const ExprSegment> seg) {
  std::lock_guard<std::mutex> lk(mu_);
  if (segments_.entries.contains(digest)) return;  // first writer wins
  registry_.Get("service.segment_store.captures")->Increment();
  const size_t bytes = seg->ApproxBytes();
  AdmitEntry(segments_, digest, std::move(seg), bytes);
  EvictToBudget(segments_, options_.segment_budget_bytes, digest,
                registry_.Get("service.segment_store.evictions"));
}

obs::JsonValue WarmCache::StatsJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  obs::JsonValue doc = obs::JsonValue::Object();
  const auto store = [](size_t entries, size_t bytes, size_t budget) {
    obs::JsonValue s = obs::JsonValue::Object();
    s.Set("entries", obs::JsonValue::U64(entries));
    s.Set("bytes", obs::JsonValue::U64(bytes));
    s.Set("budget_bytes", obs::JsonValue::U64(budget));
    return s;
  };
  doc.Set("image_cache", store(images_.entries.size(), images_.bytes,
                               options_.image_budget_bytes));
  doc.Set("decode_cache", store(decodes_.entries.size(), decodes_.bytes,
                                options_.decode_budget_bytes));
  doc.Set("query_store", store(queries_.entries.size(), queries_.bytes,
                               options_.query_budget_bytes));
  doc.Set("segment_store", store(segments_.entries.size(), segments_.bytes,
                                 options_.segment_budget_bytes));
  doc.Set("counters", registry_.SnapshotJson());
  return doc;
}

}  // namespace sbce::service
