// Guest runtime library: SBVM assembly for the "shared library" functions
// the bombs call — the libc/libm/OpenSSL analogues of the paper's external
// function and crypto challenges.
//
// The emitted code lives in the .ltext/.ldata sections (addresses >=
// lib_text_base), which is what the tool profiles key their
// dynamic-library behaviours on: BAP/Triton trace into it, Angr lifts it,
// Angr-NoLib skips it and invents unconstrained return values.
//
// Calling convention: arguments in r1..r5 (f0 for FP), result in r0 (f0);
// r4..r9 are caller-saved scratch the library may clobber; functions use
// CALL/RET (concrete return addresses on the stack) and never push
// symbolic data, so lifter gaps around push/pop are not accidentally
// triggered by library plumbing.
//
// Functions:
//   gl_strlen(r1=ptr) -> r0
//   gl_atoi(r1=ptr) -> r0          unsigned decimal parse
//   gl_print_u64(r1=value)         decimal to stdout (the printf analogue)
//   gl_print_str(r1=ptr)           NUL-terminated string to stdout
//   gl_sin(f0=x) -> f0             degree-7 Taylor polynomial
//   gl_srand(r1=seed)              seeds the library PRNG state
//   gl_rand() -> r0                glibc-constant LCG, kRandRounds steps
//   gl_unwind_deliver(r1=v) -> r0  exception-object pass-through: round-
//                                  trips v through the echo-store runtime
//                                  channel (models C++ unwinding carrying
//                                  data outside the traced register flow)
//   gl_sha1(r1=msg, r2=len<=55, r3=out20)   single-block SHA-1
//   gl_aes128(r1=key16, r2=in16, r3=out16)  AES-128 block encryption
//                                  (branchless GF(2^8) arithmetic S-box)
#pragma once

#include <cstdint>
#include <string>

namespace sbce::guestlib {

/// Number of mixing steps one gl_rand() call performs. Each step is an
/// xorshift followed by a *quadratic* update (x *= (x>>7)|1), so unit
/// propagation cannot invert the chain; round count is chosen so the
/// seed-recovery circuit lands between the tool profiles' budgets (see
/// DESIGN.md, scalability challenges).
inline constexpr int kRandRounds = 16;

/// Assembly text for the whole library (.ltext/.ldata sections). Append to
/// a program's main source before assembling.
std::string EmitGuestLib();

/// Individual pieces, for tests and size accounting.
std::string EmitStringRoutines();  // strlen, atoi, print_*
std::string EmitMathRoutines();    // sin
std::string EmitRandRoutines();    // srand/rand
std::string EmitUnwindRoutine();   // unwind_deliver
std::string EmitSha1();
std::string EmitAes128();

}  // namespace sbce::guestlib
