#include "src/guestlib/guestlib.h"

#include "src/support/str.h"

namespace sbce::guestlib {

std::string EmitStringRoutines() {
  // printf-style width computation: a branchless ladder of nineteen
  // comparisons against powers of ten. This is what makes gl_print_u64
  // involve dozens of instructions that touch the printed (symbolic)
  // value — the Figure 3 effect.
  std::string ladder;
  uint64_t power = 10;
  for (int k = 1; k <= 19; ++k) {
    ladder += StrFormat(
        "  movi r8, 0x%08x\n"
        "  movhi r8, 0x%08x\n"
        "  cmpleu r4, r8, r1\n"
        "  add r7, r7, r4\n",
        static_cast<uint32_t>(power), static_cast<uint32_t>(power >> 32));
    if (k < 19) power *= 10;
  }
  return R"(
; ---- guest libc: strings and printing --------------------------------
.ltext
gl_strlen:                 ; r1=ptr -> r0=len   (clobbers r4)
  movi r0, 0
gls_loop:
  ldx1 r4, [r1+r0]
  bz r4, gls_done
  addi r0, r0, 1
  jmp gls_loop
gls_done:
  ret

gl_atoi:                   ; r1=ptr -> r0 (unsigned decimal; clobbers r4,r5)
  movi r0, 0
  movi r5, 0
gla_loop:
  ldx1 r4, [r1+r5]
  bz r4, gla_done
  subi r4, r4, '0'
  muli r0, r0, 10
  add r0, r0, r4
  addi r5, r5, 1
  jmp gla_loop
gla_done:
  ret

gl_print_u64:              ; r1=value (clobbers r1..r8)
  movi r7, 1               ; width = 1 + [v>=10] + [v>=100] + ...
)" + ladder + R"(
  lea r6, glp_buf_end
  movi r8, 10
glp_loop:
  urem r4, r1, r8
  addi r4, r4, '0'
  subi r6, r6, 1
  st1 r4, [r6+0]
  udiv r1, r1, r8
  bnz r1, glp_loop
  movi r1, 1               ; write(1, buf_end - width, width)
  mov r2, r6
  mov r3, r7
  sys 1
  ret

gl_print_str:              ; r1=ptr (clobbers r1..r4)
  mov r4, r1
  call gl_strlen
  mov r3, r0               ; len
  mov r2, r4
  movi r1, 1
  sys 1
  ret

.ldata
glp_buf:     .space 24
glp_buf_end: .byte 0
)";
}

std::string EmitMathRoutines() {
  return R"(
; ---- guest libm: sin via degree-7 Taylor polynomial --------------------
.ltext
gl_sin:                    ; f0=x -> f0~sin(x)  (clobbers f1..f5, r4)
  fmul f1, f0, f0          ; x^2
  fmov f2, f0              ; power = x
  fmov f3, f0              ; acc = x
  lea r4, gsin_c
  fmul f2, f2, f1          ; x^3
  fld f4, [r4+0]
  fmul f5, f2, f4
  fadd f3, f3, f5
  fmul f2, f2, f1          ; x^5
  fld f4, [r4+8]
  fmul f5, f2, f4
  fadd f3, f3, f5
  fmul f2, f2, f1          ; x^7
  fld f4, [r4+16]
  fmul f5, f2, f4
  fadd f3, f3, f5
  fmov f0, f3
  ret

gl_pow2:                   ; f0 -> f0 * f0 (the pow(x, 2) analogue)
  fmul f0, f0, f0
  ret

.ldata
gsin_c: .quad 0xbfc5555555555555, 0x3f81111111111111, 0xbf2a01a01a01a01a
)";
}

std::string EmitRandRoutines() {
  return StrFormat(R"(
; ---- guest libc: srand/rand (glibc TYPE_0 constants, %d smearing steps) -
.ltext
gl_srand:                  ; r1=seed
  lea r4, grand_state
  st8 r1, [r4+0]
  ret

gl_rand:                   ; -> r0 in [0, 2^31)  (clobbers r4..r7)
  lea r4, grand_state
  ld8 r0, [r4+0]
  movi r6, %d
  movi r5, 1
  shli r5, r5, 31
  subi r5, r5, 1           ; 0x7fffffff
grand_loop:
  shri r7, r0, 13          ; xorshift diffusion
  xor r0, r0, r7
  shri r7, r0, 7           ; quadratic step: x *= (x >> 7) | 1
  ori r7, r7, 1
  mul r0, r0, r7
  addi r0, r0, 12345
  and r0, r0, r5
  subi r6, r6, 1
  bnz r6, grand_loop
  st8 r0, [r4+0]
  ret

.ldata
grand_state: .quad 1
)",
                   kRandRounds, kRandRounds);
}

std::string EmitUnwindRoutine() {
  return R"(
; ---- guest runtime: exception-object delivery --------------------------
; Models C++ unwinding: the thrown value travels through runtime state
; (here: the echo-store syscall channel) rather than the traced register
; flow, which is why every studied tool loses taint across it.
.ltext
gl_unwind_deliver:         ; r1=value -> r0=value
  mov r2, r1
  lea r1, gunw_key
  sys 21                   ; tls_store(key, value)
  lea r1, gunw_key
  sys 22                   ; r0 = tls_load(key)
  ret

.ldata
gunw_key: .asciz "__unwind_obj"
)";
}

std::string EmitSha1() {
  return R"(
; ---- guest crypto: single-block SHA-1 ----------------------------------
; gl_sha1(r1=msg, r2=len<=55, r3=out20). Branchless in the data: all loop
; counters are concrete, so the only symbolic branches a caller sees are
; its own digest comparisons.
.ltext
gl_sha1:
  movi r9, 1
  shli r9, r9, 32
  subi r9, r9, 1           ; r9 = 0xffffffff
  ; zero the block
  lea r4, gsha_block
  movi r5, 0
gsha_zero:
  movi r0, 0
  stx1 r0, [r4+r5]
  addi r5, r5, 1
  cmpltui r6, r5, 64
  bnz r6, gsha_zero
  ; copy message
  movi r5, 0
gsha_copy:
  cmpltu r6, r5, r2
  bz r6, gsha_pad
  ldx1 r0, [r1+r5]
  stx1 r0, [r4+r5]
  addi r5, r5, 1
  jmp gsha_copy
gsha_pad:
  movi r0, 0x80
  stx1 r0, [r4+r2]
  muli r6, r2, 8           ; bit length (<= 440, fits two bytes)
  andi r0, r6, 0xff
  st1 r0, [r4+63]
  shri r0, r6, 8
  st1 r0, [r4+62]
  ; W[0..15] from big-endian words
  lea r7, gsha_w
  movi r5, 0
gsha_w16:
  muli r6, r5, 4
  ldx1 r0, [r4+r6]
  shli r0, r0, 8
  addi r6, r6, 1
  ldx1 r8, [r4+r6]
  or r0, r0, r8
  shli r0, r0, 8
  addi r6, r6, 1
  ldx1 r8, [r4+r6]
  or r0, r0, r8
  shli r0, r0, 8
  addi r6, r6, 1
  ldx1 r8, [r4+r6]
  or r0, r0, r8
  muli r6, r5, 8
  stx8 r0, [r7+r6]
  addi r5, r5, 1
  cmpltui r6, r5, 16
  bnz r6, gsha_w16
  ; W[16..79]: rotl1(W[t-3]^W[t-8]^W[t-14]^W[t-16])
gsha_wx:
  subi r6, r5, 3
  muli r6, r6, 8
  ldx8 r0, [r7+r6]
  subi r6, r5, 8
  muli r6, r6, 8
  ldx8 r8, [r7+r6]
  xor r0, r0, r8
  subi r6, r5, 14
  muli r6, r6, 8
  ldx8 r8, [r7+r6]
  xor r0, r0, r8
  subi r6, r5, 16
  muli r6, r6, 8
  ldx8 r8, [r7+r6]
  xor r0, r0, r8
  shli r8, r0, 1
  shri r0, r0, 31
  andi r0, r0, 1
  or r0, r0, r8
  and r0, r0, r9
  muli r6, r5, 8
  stx8 r0, [r7+r6]
  addi r5, r5, 1
  cmpltui r6, r5, 80
  bnz r6, gsha_wx
  ; a..e = r10..r14
  movi r10, 0x67452301
  movi r11, 0xEFCDAB89
  and r11, r11, r9
  movi r12, 0x98BADCFE
  and r12, r12, r9
  movi r13, 0x10325476
  movi r14, 0xC3D2E1F0
  and r14, r14, r9
  movi r5, 0
gsha_round:
  cmpltui r6, r5, 20
  bnz r6, gsha_f1
  cmpltui r6, r5, 40
  bnz r6, gsha_f2
  cmpltui r6, r5, 60
  bnz r6, gsha_f3
  xor r6, r11, r12         ; f4: b^c^d
  xor r6, r6, r13
  movi r8, 0xCA62C1D6
  jmp gsha_fdone
gsha_f1:                   ; (b&c) | (~b&d)
  and r6, r11, r12
  not r8, r11
  and r8, r8, r13
  or r6, r6, r8
  movi r8, 0x5A827999
  jmp gsha_fdone
gsha_f2:                   ; b^c^d
  xor r6, r11, r12
  xor r6, r6, r13
  movi r8, 0x6ED9EBA1
  jmp gsha_fdone
gsha_f3:                   ; (b&c) | (b&d) | (c&d)
  and r6, r11, r12
  and r0, r11, r13
  or r6, r6, r0
  and r0, r12, r13
  or r6, r6, r0
  movi r8, 0x8F1BBCDC
gsha_fdone:
  shli r0, r10, 5          ; temp = rotl5(a)+f+e+k+W[t]
  shri r2, r10, 27
  or r0, r0, r2
  and r0, r0, r9
  add r0, r0, r6
  add r0, r0, r14
  add r0, r0, r8
  muli r2, r5, 8
  ldx8 r2, [r7+r2]
  add r0, r0, r2
  and r0, r0, r9
  mov r14, r13             ; e=d
  mov r13, r12             ; d=c
  shli r2, r11, 30         ; c=rotl30(b)
  shri r12, r11, 2
  or r12, r12, r2
  and r12, r12, r9
  mov r11, r10             ; b=a
  mov r10, r0              ; a=temp
  addi r5, r5, 1
  cmpltui r6, r5, 80
  bnz r6, gsha_round
  ; digest = state + initial constants, stored big-endian
  movi r8, 0x67452301
  add r10, r10, r8
  and r10, r10, r9
  movi r8, 0xEFCDAB89
  and r8, r8, r9
  add r11, r11, r8
  and r11, r11, r9
  movi r8, 0x98BADCFE
  and r8, r8, r9
  add r12, r12, r8
  and r12, r12, r9
  movi r8, 0x10325476
  add r13, r13, r8
  and r13, r13, r9
  movi r8, 0xC3D2E1F0
  and r8, r8, r9
  add r14, r14, r8
  and r14, r14, r9
  ; store the five words
  shri r0, r10, 24
  st1 r0, [r3+0]
  shri r0, r10, 16
  st1 r0, [r3+1]
  shri r0, r10, 8
  st1 r0, [r3+2]
  st1 r10, [r3+3]
  shri r0, r11, 24
  st1 r0, [r3+4]
  shri r0, r11, 16
  st1 r0, [r3+5]
  shri r0, r11, 8
  st1 r0, [r3+6]
  st1 r11, [r3+7]
  shri r0, r12, 24
  st1 r0, [r3+8]
  shri r0, r12, 16
  st1 r0, [r3+9]
  shri r0, r12, 8
  st1 r0, [r3+10]
  st1 r12, [r3+11]
  shri r0, r13, 24
  st1 r0, [r3+12]
  shri r0, r13, 16
  st1 r0, [r3+13]
  shri r0, r13, 8
  st1 r0, [r3+14]
  st1 r13, [r3+15]
  shri r0, r14, 24
  st1 r0, [r3+16]
  shri r0, r14, 16
  st1 r0, [r3+17]
  shri r0, r14, 8
  st1 r0, [r3+18]
  st1 r14, [r3+19]
  ret

.ldata
gsha_block: .space 64
gsha_w:     .space 640
)";
}

std::string EmitAes128() {
  // GF(2^8) inverse via square-and-multiply for x^254, unrolled here.
  std::string gfinv = R"(
gl_gfinv:                  ; r1=x -> r0 = x^254 in GF(2^8) (clobbers r0..r8)
  mov r7, r1               ; x
  mov r8, r1               ; res = x (covers the leading exponent bit)
)";
  // Exponent 254 = 0b11111110; after consuming the MSB with res=x, process
  // the remaining 7 bits: for bits 6..1 (all ones): res=res^2 * x; for
  // bit 0 (zero): res=res^2.
  for (int bit = 6; bit >= 0; --bit) {
    gfinv +=
        "  mov r1, r8\n"
        "  mov r2, r8\n"
        "  call gl_gfmul\n"
        "  mov r8, r0\n";
    if (bit > 0) {
      gfinv +=
          "  mov r1, r8\n"
          "  mov r2, r7\n"
          "  call gl_gfmul\n"
          "  mov r8, r0\n";
    }
  }
  gfinv +=
      "  mov r0, r8\n"
      "  ret\n";

  return R"(
; ---- guest crypto: AES-128 block encryption ----------------------------
; Branchless GF(2^8) arithmetic S-box (inverse + affine), so no symbolic
; branches occur inside the cipher: the cost shows up purely as constraint
; complexity, which is the paper's point about crypto functions.
.ltext
gl_gfmul:                  ; r1=a, r2=b -> r0   (clobbers r0..r6)
  movi r0, 0
  movi r6, 8
gfm_loop:
  andi r5, r2, 1
  neg r5, r5
  and r5, r5, r1
  xor r0, r0, r5
  shli r1, r1, 1
  shri r5, r1, 8
  andi r5, r5, 1
  neg r5, r5
  movi r4, 0x11b
  and r5, r5, r4
  xor r1, r1, r5
  andi r1, r1, 0xff
  shri r2, r2, 1
  subi r6, r6, 1
  bnz r6, gfm_loop
  ret

)" + gfinv + R"(
gl_sbox:                   ; r1=x -> r0 = SubBytes(x) (clobbers r0..r8)
  call gl_gfinv
  ; affine: y = inv ^ rotl1 ^ rotl2 ^ rotl3 ^ rotl4 ^ 0x63  (8-bit rotls)
  mov r4, r0               ; inv
  mov r5, r0
  shli r6, r5, 1
  shri r5, r5, 7
  or r5, r5, r6
  andi r5, r5, 0xff
  xor r4, r4, r5           ; ^ rotl1
  mov r5, r0
  shli r6, r5, 2
  shri r5, r5, 6
  or r5, r5, r6
  andi r5, r5, 0xff
  xor r4, r4, r5           ; ^ rotl2
  mov r5, r0
  shli r6, r5, 3
  shri r5, r5, 5
  or r5, r5, r6
  andi r5, r5, 0xff
  xor r4, r4, r5           ; ^ rotl3
  mov r5, r0
  shli r6, r5, 4
  shri r5, r5, 4
  or r5, r5, r6
  andi r5, r5, 0xff
  xor r4, r4, r5           ; ^ rotl4
  xori r4, r4, 0x63
  mov r0, r4
  ret

gl_aes128:                 ; r1=key16, r2=in16, r3=out16
  ; stash the pointers: helper calls clobber low registers
  lea r4, aes_args
  st8 r1, [r4+0]
  st8 r2, [r4+8]
  st8 r3, [r4+16]
  ; ---- key schedule: rk[0..175] ----
  lea r10, aes_rk
  movi r11, 0              ; i: byte index
aks_copy:                  ; rk[0..15] = key
  lea r4, aes_args
  ld8 r1, [r4+0]
  ldx1 r0, [r1+r11]
  stx1 r0, [r10+r11]
  addi r11, r11, 1
  cmpltui r5, r11, 16
  bnz r5, aks_copy
  movi r11, 4              ; word index i in 4..43
aks_words:
  ; temp = rk bytes [4i-4 .. 4i-1] into aes_tmp[0..3]
  lea r12, aes_tmp
  muli r13, r11, 4
  subi r13, r13, 4
  movi r14, 0
aks_ldtemp:
  add r5, r13, r14
  ldx1 r0, [r10+r5]
  stx1 r0, [r12+r14]
  addi r14, r14, 1
  cmpltui r5, r14, 4
  bnz r5, aks_ldtemp
  ; if i % 4 == 0: rotword + subword + rcon
  andi r5, r11, 3
  bnz r5, aks_xor
  ; rotword: t0..t3 = t1,t2,t3,t0
  ld1 r0, [r12+0]
  ld1 r5, [r12+1]
  st1 r5, [r12+0]
  ld1 r5, [r12+2]
  st1 r5, [r12+1]
  ld1 r5, [r12+3]
  st1 r5, [r12+2]
  st1 r0, [r12+3]
  ; subword
  movi r14, 0
aks_sub:
  ldx1 r1, [r12+r14]
  call gl_sbox
  stx1 r0, [r12+r14]
  addi r14, r14, 1
  cmpltui r5, r14, 4
  bnz r5, aks_sub
  ; rcon: tmp[0] ^= rcon[i/4 - 1]
  shri r5, r11, 2
  subi r5, r5, 1
  lea r4, aes_rcon
  ldx1 r5, [r4+r5]
  ld1 r0, [r12+0]
  xor r0, r0, r5
  st1 r0, [r12+0]
aks_xor:                   ; rk[4i+j] = rk[4(i-4)+j] ^ tmp[j]
  movi r14, 0
aks_xorloop:
  muli r5, r11, 4
  subi r5, r5, 16
  add r5, r5, r14
  ldx1 r0, [r10+r5]
  ldx1 r5, [r12+r14]
  xor r0, r0, r5
  muli r5, r11, 4
  add r5, r5, r14
  stx1 r0, [r10+r5]
  addi r14, r14, 1
  cmpltui r5, r14, 4
  bnz r5, aks_xorloop
  addi r11, r11, 1
  cmpltui r5, r11, 44
  bnz r5, aks_words
  ; ---- state = in ^ rk[0..15] ----
  lea r12, aes_state
  lea r4, aes_args
  ld8 r1, [r4+8]
  movi r11, 0
ar_init:
  ldx1 r0, [r1+r11]
  ldx1 r5, [r10+r11]
  xor r0, r0, r5
  stx1 r0, [r12+r11]
  addi r11, r11, 1
  cmpltui r5, r11, 16
  bnz r5, ar_init
  ; ---- rounds 1..10 ----
  movi r13, 1              ; round counter
ar_round:
  ; SubBytes
  movi r11, 0
ar_sub:
  ldx1 r1, [r12+r11]
  call gl_sbox
  stx1 r0, [r12+r11]
  addi r11, r11, 1
  cmpltui r5, r11, 16
  bnz r5, ar_sub
  ; ShiftRows: tmp[4c+r] = state[4*((c+r)%4)+r]
  lea r14, aes_tmp
  movi r11, 0              ; c*4+r linear index
ar_shift:
  andi r5, r11, 3          ; r
  shri r6, r11, 2          ; c
  add r6, r6, r5           ; c + r
  andi r6, r6, 3
  muli r6, r6, 4
  add r6, r6, r5
  ldx1 r0, [r12+r6]
  stx1 r0, [r14+r11]
  addi r11, r11, 1
  cmpltui r5, r11, 16
  bnz r5, ar_shift
  ; copy tmp back to state
  movi r11, 0
ar_copyback:
  ldx1 r0, [r14+r11]
  stx1 r0, [r12+r11]
  addi r11, r11, 1
  cmpltui r5, r11, 16
  bnz r5, ar_copyback
  ; MixColumns (skipped in the final round)
  cmpeqi r5, r13, 10
  bnz r5, ar_addkey
  movi r11, 0              ; column base 0,4,8,12
ar_mix:
  ; load column a0..a3 into tmp[0..3] then write mixed back
  ldx1 r0, [r12+r11]
  st1 r0, [r14+0]
  addi r5, r11, 1
  ldx1 r0, [r12+r5]
  st1 r0, [r14+1]
  addi r5, r11, 2
  ldx1 r0, [r12+r5]
  st1 r0, [r14+2]
  addi r5, r11, 3
  ldx1 r0, [r12+r5]
  st1 r0, [r14+3]
  ; b_i = 2*a_i ^ 3*a_{i+1} ^ a_{i+2} ^ a_{i+3}
  movi r14, 0              ; NOTE r14 reused as row counter; reload tmp via lea
ar_mixrow:
  lea r4, aes_tmp
  ; 2*a_i  (accumulate in r8: gl_gfmul clobbers r0..r6)
  andi r5, r14, 3
  ldx1 r1, [r4+r5]
  movi r2, 2
  call gl_gfmul
  mov r8, r0
  ; 3*a_{i+1}
  lea r4, aes_tmp
  addi r5, r14, 1
  andi r5, r5, 3
  ldx1 r1, [r4+r5]
  movi r2, 3
  call gl_gfmul
  xor r8, r8, r0
  lea r4, aes_tmp
  addi r5, r14, 2
  andi r5, r5, 3
  ldx1 r0, [r4+r5]
  xor r8, r8, r0
  addi r5, r14, 3
  andi r5, r5, 3
  ldx1 r0, [r4+r5]
  xor r8, r8, r0
  ; state[col + i] = r8
  add r5, r11, r14
  stx1 r8, [r12+r5]
  addi r14, r14, 1
  cmpltui r5, r14, 4
  bnz r5, ar_mixrow
  lea r14, aes_tmp         ; restore tmp pointer for the next column
  addi r11, r11, 4
  cmpltui r5, r11, 16
  bnz r5, ar_mix
ar_addkey:                 ; state ^= rk[16*round ..]
  muli r6, r13, 16
  movi r11, 0
ar_ak:
  add r5, r6, r11
  ldx1 r0, [r10+r5]
  ldx1 r5, [r12+r11]
  xor r0, r0, r5
  stx1 r0, [r12+r11]
  addi r11, r11, 1
  cmpltui r5, r11, 16
  bnz r5, ar_ak
  addi r13, r13, 1
  cmpltui r5, r13, 11
  bnz r5, ar_round
  ; ---- write out ----
  lea r4, aes_args
  ld8 r3, [r4+16]
  movi r11, 0
ar_out:
  ldx1 r0, [r12+r11]
  stx1 r0, [r3+r11]
  addi r11, r11, 1
  cmpltui r5, r11, 16
  bnz r5, ar_out
  ret

.ldata
aes_args:  .space 24
aes_state: .space 16
aes_tmp:   .space 16
aes_rk:    .space 176
aes_rcon:  .byte 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36
)";
}

std::string EmitGuestLib() {
  return EmitStringRoutines() + EmitMathRoutines() + EmitRandRoutines() +
         EmitUnwindRoutine() + EmitSha1() + EmitAes128();
}

}  // namespace sbce::guestlib
