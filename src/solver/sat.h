// CDCL SAT solver (the MiniSat-style substrate under the bit-blaster).
//
// Features: two-watched-literal propagation, VSIDS decision heuristic with
// activity decay, first-UIP conflict clause learning with backjumping,
// phase saving, and Luby restarts. Budgeted by conflict count so the tool
// profiles can emulate solver timeouts (the paper's E outcomes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbce::solver {

/// Literal encoding: var*2 + sign (sign 1 = negated). Vars are 0-based.
using Lit = int32_t;

inline Lit MkLit(int var, bool negated = false) {
  return static_cast<Lit>(var) * 2 + (negated ? 1 : 0);
}
inline int LitVar(Lit l) { return l >> 1; }
inline bool LitNegated(Lit l) { return (l & 1) != 0; }
inline Lit Negate(Lit l) { return l ^ 1; }

enum class SatStatus { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  struct Options {
    uint64_t max_conflicts = 1'000'000;
    double var_decay = 0.95;
  };

  SatSolver() : SatSolver(Options{}) {}
  explicit SatSolver(const Options& options) : options_(options) {}

  /// Allocates a fresh variable; returns its index.
  int NewVar();
  int NumVars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. An empty clause (or one falsified at level 0) makes the
  /// instance trivially UNSAT.
  void AddClause(std::vector<Lit> lits);

  SatStatus Solve();

  /// Model access after kSat.
  bool ValueOf(int var) const { return assigns_[var] == 1; }

  uint64_t conflicts() const { return conflicts_; }
  uint64_t decisions() const { return decisions_; }
  uint64_t propagations() const { return propagations_; }
  size_t clause_count() const { return clauses_.size(); }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0;
  };

  static constexpr int kUndef = -1;

  // lbool encoding in assigns_: 0 = unassigned, 1 = true, 2 = false.
  int LitValue(Lit l) const {
    const uint8_t a = assigns_[LitVar(l)];
    if (a == 0) return 0;
    return (a == 1) != LitNegated(l) ? 1 : 2;
  }

  void Enqueue(Lit l, int reason);
  int Propagate();              // returns conflicting clause index or -1
  void Analyze(int conflict, std::vector<Lit>* learnt, int* backtrack_level);
  void Backtrack(int level);
  Lit PickBranchLit();
  void BumpVar(int var);
  void DecayActivities();
  void AttachClause(int ci);
  static uint64_t Luby(uint64_t i);

  Options options_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  // per literal: clause indexes
  std::vector<uint8_t> assigns_;           // per var lbool
  std::vector<int> reason_;                // per var: clause index or kUndef
  std::vector<int> level_;                 // per var
  std::vector<double> activity_;
  std::vector<uint8_t> phase_;             // saved phase per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;             // decision level boundaries
  size_t qhead_ = 0;
  double var_inc_ = 1.0;
  bool unsat_ = false;

  uint64_t conflicts_ = 0;
  uint64_t decisions_ = 0;
  uint64_t propagations_ = 0;

  std::vector<uint8_t> seen_;              // scratch for Analyze
};

}  // namespace sbce::solver
