// CDCL SAT solver (the MiniSat-style substrate under the bit-blaster).
//
// Features: two-watched-literal propagation, VSIDS decision heuristic with
// activity decay (indexed max-heap variable order), first-UIP conflict
// clause learning with backjumping, clause activity + LBD bookkeeping with
// periodic learnt-database reduction, phase saving, Luby restarts, and
// assumption-based incremental solving. Budgeted by conflict count so the
// tool profiles can emulate solver timeouts (the paper's E outcomes).
//
// Incremental contract
// --------------------
// The solver is reusable across Solve() calls: learned clauses, saved
// phases and VSIDS activities all survive, which is what makes a batch of
// near-identical queries (the engine's branch-negation rounds) cheap after
// the first one. The rules:
//
//   * Solve() always returns with the trail backtracked to decision
//     level 0 (the "reset-to-level-0 path"); after kSat the model is
//     snapshotted first, so ValueOf() stays valid until the next Solve().
//   * AddClause()/NewVar() are only legal at decision level 0. Calling
//     AddClause above level 0 would corrupt the watch/trail invariants
//     (watchers assume level-0 normalization), so it is enforced with a
//     hard check. Because Solve() restores level 0 before returning, any
//     AddClause between Solve() calls is legal.
//   * Solve(assumptions) decides the clause set under the given
//     assumption literals without making them permanent: kUnsat then
//     means "unsatisfiable together with the assumptions". Assert a unit
//     clause instead when a fact should persist.
//   * max_conflicts is a per-Solve() budget, not a lifetime budget, so a
//     warm solver gives every query in a batch the same headroom a cold
//     one would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sbce::solver {

/// Literal encoding: var*2 + sign (sign 1 = negated). Vars are 0-based.
using Lit = int32_t;

inline Lit MkLit(int var, bool negated = false) {
  return static_cast<Lit>(var) * 2 + (negated ? 1 : 0);
}
inline int LitVar(Lit l) { return l >> 1; }
inline bool LitNegated(Lit l) { return (l & 1) != 0; }
inline Lit Negate(Lit l) { return l ^ 1; }

enum class SatStatus { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  struct Options {
    uint64_t max_conflicts = 1'000'000;  // per Solve() call
    double var_decay = 0.95;
    double clause_decay = 0.999;
    /// Luby restart unit: restart round i allows restart_base * Luby(i)
    /// conflicts before backtracking to level 0.
    uint64_t restart_base = 100;
    /// Learnt-database reduction: when the number of learnt clauses
    /// reaches the (geometrically growing) limit at a restart boundary,
    /// the worst half (by LBD, then clause activity) is dropped.
    bool reduce_db = true;
    size_t reduce_base = 4000;  // learnt clauses before the first reduction
  };

  SatSolver() : SatSolver(Options{}) {}
  explicit SatSolver(const Options& options)
      : options_(options), reduce_limit_(options.reduce_base) {}

  /// Allocates a fresh variable; returns its index. Level 0 only.
  int NewVar();
  int NumVars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. An empty clause (or one falsified at level 0) makes the
  /// instance trivially UNSAT. Level 0 only (see the incremental contract
  /// above); Solve() always returns at level 0, so calls between solves
  /// are safe.
  void AddClause(std::vector<Lit> lits);

  /// Decides the clause set under `assumptions` (may be empty). Learned
  /// clauses, activities and saved phases persist across calls; the
  /// assumptions do not.
  SatStatus Solve(std::span<const Lit> assumptions);
  SatStatus Solve() { return Solve({}); }

  /// Model access after kSat. Values are snapshotted when kSat is
  /// returned and stay valid until the next Solve().
  bool ValueOf(int var) const { return model_[static_cast<size_t>(var)] == 1; }

  uint64_t conflicts() const { return conflicts_; }
  uint64_t decisions() const { return decisions_; }
  uint64_t propagations() const { return propagations_; }
  /// Conflicts spent inside the most recent Solve() call (the per-query
  /// cost a warm solver reports to callers).
  uint64_t last_solve_conflicts() const { return last_solve_conflicts_; }
  size_t clause_count() const { return clauses_.size(); }
  size_t learnt_count() const { return learnt_count_; }
  uint64_t db_reductions() const { return db_reductions_; }
  uint64_t learnts_removed() const { return learnts_removed_; }
  /// Sum of learnt-clause activities (observability hook: proves the
  /// bump/decay wiring is live without exposing per-clause state).
  double clause_activity_sum() const;

  /// Luby restart sequence 1 1 2 1 1 2 4 ... (exposed for tests).
  static uint64_t Luby(uint64_t i);

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0;
    uint32_t lbd = 0;  // literal-block distance at learn time
  };

  static constexpr int kUndef = -1;

  // lbool encoding in assigns_: 0 = unassigned, 1 = true, 2 = false.
  int LitValue(Lit l) const {
    const uint8_t a = assigns_[LitVar(l)];
    if (a == 0) return 0;
    return (a == 1) != LitNegated(l) ? 1 : 2;
  }

  void Enqueue(Lit l, int reason);
  int Propagate();              // returns conflicting clause index or -1
  void Analyze(int conflict, std::vector<Lit>* learnt, int* backtrack_level,
               uint32_t* lbd);
  void Backtrack(int level);
  Lit PickBranchLit();
  void BumpVar(int var);
  void BumpClause(int ci);
  void DecayActivities();
  void AttachClause(int ci);
  void ReduceDb();

  // Indexed binary max-heap over variables, ordered by (activity desc,
  // index asc) — the same total order the previous O(V) scan implied, so
  // decision sequences are unchanged.
  bool VarOrderBefore(int a, int b) const {
    return activity_[a] > activity_[b] ||
           (activity_[a] == activity_[b] && a < b);
  }
  void HeapSwap(size_t i, size_t j);
  void HeapUp(size_t i);
  void HeapDown(size_t i);
  void HeapInsert(int var);
  int HeapPopBest();  // kUndef when empty

  Options options_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  // per literal: clause indexes
  std::vector<uint8_t> assigns_;           // per var lbool
  std::vector<int> reason_;                // per var: clause index or kUndef
  std::vector<int> level_;                 // per var
  std::vector<double> activity_;
  std::vector<uint8_t> phase_;             // saved phase per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;             // decision level boundaries
  std::vector<int> heap_;                  // decision order heap (vars)
  std::vector<int> heap_pos_;              // per var: index into heap_ or -1
  std::vector<uint8_t> model_;             // assigns_ snapshot at last kSat
  size_t qhead_ = 0;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  bool unsat_ = false;

  uint64_t conflicts_ = 0;
  uint64_t decisions_ = 0;
  uint64_t propagations_ = 0;
  uint64_t last_solve_conflicts_ = 0;
  size_t learnt_count_ = 0;
  size_t reduce_limit_;
  uint64_t db_reductions_ = 0;
  uint64_t learnts_removed_ = 0;

  std::vector<uint8_t> seen_;              // scratch for Analyze
  std::vector<int> lbd_levels_;            // scratch for LBD computation
};

}  // namespace sbce::solver
