#include "src/solver/expr.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/solver/absdomain.h"
#include "src/support/bits.h"
#include "src/support/status.h"
#include "src/support/str.h"

namespace sbce::solver {

bool IsFpKind(Kind kind) {
  switch (kind) {
    case Kind::kFAdd:
    case Kind::kFSub:
    case Kind::kFMul:
    case Kind::kFDiv:
    case Kind::kFEq:
    case Kind::kFLt:
    case Kind::kFLe:
    case Kind::kFFromSInt:
    case Kind::kFToSInt:
      return true;
    default:
      return false;
  }
}

std::string_view KindName(Kind kind) {
  switch (kind) {
    case Kind::kConst: return "const";
    case Kind::kVar: return "var";
    case Kind::kNot: return "bvnot";
    case Kind::kNeg: return "bvneg";
    case Kind::kAdd: return "bvadd";
    case Kind::kSub: return "bvsub";
    case Kind::kMul: return "bvmul";
    case Kind::kUDiv: return "bvudiv";
    case Kind::kURem: return "bvurem";
    case Kind::kSDiv: return "bvsdiv";
    case Kind::kSRem: return "bvsrem";
    case Kind::kAnd: return "bvand";
    case Kind::kOr: return "bvor";
    case Kind::kXor: return "bvxor";
    case Kind::kShl: return "bvshl";
    case Kind::kLShr: return "bvlshr";
    case Kind::kAShr: return "bvashr";
    case Kind::kEq: return "=";
    case Kind::kUlt: return "bvult";
    case Kind::kSlt: return "bvslt";
    case Kind::kUle: return "bvule";
    case Kind::kSle: return "bvsle";
    case Kind::kIte: return "ite";
    case Kind::kConcat: return "concat";
    case Kind::kExtract: return "extract";
    case Kind::kZExt: return "zero_extend";
    case Kind::kSExt: return "sign_extend";
    case Kind::kFAdd: return "fp.add";
    case Kind::kFSub: return "fp.sub";
    case Kind::kFMul: return "fp.mul";
    case Kind::kFDiv: return "fp.div";
    case Kind::kFEq: return "fp.eq";
    case Kind::kFLt: return "fp.lt";
    case Kind::kFLe: return "fp.leq";
    case Kind::kFFromSInt: return "fp.from_sint";
    case Kind::kFToSInt: return "fp.to_sint";
  }
  return "?";
}

namespace {

uint64_t HashNode(const Expr& n) {
  uint64_t h = HashCombine(static_cast<uint64_t>(n.kind), n.width);
  h = HashCombine(h, n.p0);
  h = HashCombine(h, n.p1);
  h = HashCombine(h, n.cval);
  for (int i = 0; i < n.nargs; ++i) {
    h = HashCombine(h, n.args[i]->id);
  }
  if (n.kind == Kind::kVar) {
    h = HashCombine(h, Fnv1a(n.name.data(), n.name.size()));
  }
  return h;
}

bool SameNode(const Expr& a, const Expr& b) {
  if (a.kind != b.kind || a.width != b.width || a.nargs != b.nargs ||
      a.p0 != b.p0 || a.p1 != b.p1 || a.cval != b.cval) {
    return false;
  }
  for (int i = 0; i < a.nargs; ++i) {
    if (a.args[i] != b.args[i]) return false;
  }
  return a.kind != Kind::kVar || a.name == b.name;
}

}  // namespace

ExprPool::ExprPool() : abs_memo_(std::make_unique<AbsMemo>()) {}

ExprPool::~ExprPool() = default;

ExprRef ExprPool::Intern(Expr&& node) {
  node.hash = HashNode(node);
  auto& bucket = buckets_[node.hash];
  for (uint32_t id : bucket) {
    if (SameNode(*nodes_[id], node)) return nodes_[id].get();
  }
  node.id = static_cast<uint32_t>(nodes_.size());
  node.pool = this;
  nodes_.push_back(std::make_unique<Expr>(std::move(node)));
  bucket.push_back(nodes_.back()->id);
  return nodes_.back().get();
}

const std::vector<ExprRef>* ExprPool::CachedVars(ExprRef root) const {
  std::lock_guard<std::mutex> lock(vars_mu_);
  auto it = vars_memo_.find(root->id);
  return it == vars_memo_.end() ? nullptr : it->second.get();
}

const std::vector<ExprRef>& ExprPool::VarsOf(ExprRef root) const {
  SBCE_CHECK_MSG(root->pool == this, "VarsOf: root owned by another pool");
  {
    std::lock_guard<std::mutex> lock(vars_mu_);
    auto it = vars_memo_.find(root->id);
    if (it != vars_memo_.end()) return *it->second;
  }
  // Walk outside the lock. Sub-roots whose sets are already memoized (on
  // whichever pool owns them — session DAGs reference engine-pool leaves)
  // are merged without descending, so shared prefixes cost one walk total.
  std::vector<ExprRef> vars;
  std::unordered_set<ExprRef> seen;
  std::vector<ExprRef> stack{root};
  while (!stack.empty()) {
    ExprRef e = stack.back();
    stack.pop_back();
    if (!seen.insert(e).second) continue;
    if (e != root && e->pool != nullptr) {
      if (const std::vector<ExprRef>* cached = e->pool->CachedVars(e)) {
        for (ExprRef v : *cached) {
          if (seen.insert(v).second) vars.push_back(v);
        }
        continue;
      }
    }
    if (e->IsVar()) vars.push_back(e);
    for (int i = 0; i < e->nargs; ++i) stack.push_back(e->args[i]);
  }
  std::sort(vars.begin(), vars.end(),
            [](ExprRef a, ExprRef b) { return a->id < b->id; });
  std::lock_guard<std::mutex> lock(vars_mu_);
  auto [it, inserted] = vars_memo_.try_emplace(root->id);
  if (inserted) {
    it->second = std::make_unique<std::vector<ExprRef>>(std::move(vars));
  }
  return *it->second;
}

ExprRef ExprPool::Const(uint64_t value, unsigned width) {
  SBCE_CHECK_MSG(width >= 1 && width <= 64, "bad const width");
  Expr n;
  n.kind = Kind::kConst;
  n.width = static_cast<uint8_t>(width);
  n.cval = TruncToWidth(value, width);
  return Intern(std::move(n));
}

ExprRef ExprPool::Var(std::string_view name, unsigned width) {
  SBCE_CHECK_MSG(width >= 1 && width <= 64, "bad var width");
  Expr n;
  n.kind = Kind::kVar;
  n.width = static_cast<uint8_t>(width);
  n.name = std::string(name);
  return Intern(std::move(n));
}

ExprRef ExprPool::Unary(Kind kind, ExprRef a) {
  SBCE_CHECK(kind == Kind::kNot || kind == Kind::kNeg ||
             kind == Kind::kFFromSInt || kind == Kind::kFToSInt);
  if (a->IsConst() && (kind == Kind::kNot || kind == Kind::kNeg)) {
    const uint64_t v = kind == Kind::kNot ? ~a->cval : (~a->cval + 1);
    return Const(v, a->width);
  }
  // not(not(x)) = x ; neg(neg(x)) = x
  if ((kind == Kind::kNot || kind == Kind::kNeg) && a->kind == kind) {
    return a->args[0];
  }
  Expr n;
  n.kind = kind;
  n.width = a->width;
  n.nargs = 1;
  n.args[0] = a;
  return Intern(std::move(n));
}

ExprRef ExprPool::NonZero(ExprRef a) {
  if (a->width == 1) return a;
  return Ne(a, Const(0, a->width));
}

uint64_t FoldBinaryConst(Kind kind, uint64_t a, uint64_t b, unsigned w) {
  const uint64_t mask = w >= 64 ? ~uint64_t{0} : ((uint64_t{1} << w) - 1);
  const int64_t sa = AsSigned(a, w);
  const int64_t sb = AsSigned(b, w);
  switch (kind) {
    case Kind::kAdd: return (a + b) & mask;
    case Kind::kSub: return (a - b) & mask;
    case Kind::kMul: return (a * b) & mask;
    case Kind::kUDiv: return b == 0 ? mask : (a / b);
    case Kind::kURem: return b == 0 ? a : (a % b);
    case Kind::kSDiv: {
      if (b == 0) return sa < 0 ? 1 & mask : mask;  // SMT-LIB bvsdiv by 0
      if (sa == INT64_MIN && sb == -1) return a;    // overflow wraps
      return static_cast<uint64_t>(sa / sb) & mask;
    }
    case Kind::kSRem: {
      if (b == 0) return a;
      if (sa == INT64_MIN && sb == -1) return 0;
      return static_cast<uint64_t>(sa % sb) & mask;
    }
    case Kind::kAnd: return a & b;
    case Kind::kOr: return a | b;
    case Kind::kXor: return a ^ b;
    case Kind::kShl: return b >= w ? 0 : (a << b) & mask;
    case Kind::kLShr: return b >= w ? 0 : (a >> b);
    case Kind::kAShr:
      return b >= w ? (sa < 0 ? mask : 0)
                    : static_cast<uint64_t>(sa >> b) & mask;
    case Kind::kEq: return a == b;
    case Kind::kUlt: return a < b;
    case Kind::kSlt: return sa < sb;
    case Kind::kUle: return a <= b;
    case Kind::kSle: return sa <= sb;
    default:
      SBCE_CHECK_MSG(false, "FoldBinaryConst: unsupported kind");
      return 0;
  }
}

namespace {

bool IsCompare(Kind kind) {
  return kind == Kind::kEq || kind == Kind::kUlt || kind == Kind::kSlt ||
         kind == Kind::kUle || kind == Kind::kSle;
}

}  // namespace

ExprRef ExprPool::Binary(Kind kind, ExprRef a, ExprRef b) {
  SBCE_CHECK_MSG(a->width == b->width, "binary width mismatch");
  const unsigned w = a->width;
  const bool fp = IsFpKind(kind);
  if (!fp && a->IsConst() && b->IsConst()) {
    const uint64_t folded = FoldBinaryConst(kind, a->cval, b->cval, w);
    return Const(folded, IsCompare(kind) ? 1 : w);
  }
  // Cheap identities (keep the list small; the simplifier does the rest).
  if (!fp) {
    switch (kind) {
      case Kind::kAdd:
        if (a->IsConst(0)) return b;
        if (b->IsConst(0)) return a;
        break;
      case Kind::kSub:
        if (b->IsConst(0)) return a;
        if (a == b) return Const(0, w);
        break;
      case Kind::kMul:
        if (a->IsConst(1)) return b;
        if (b->IsConst(1)) return a;
        if (a->IsConst(0) || b->IsConst(0)) return Const(0, w);
        break;
      case Kind::kAnd:
        if (a == b) return a;
        if (a->IsConst(0) || b->IsConst(0)) return Const(0, w);
        if (a->IsConst(TruncToWidth(~uint64_t{0}, w))) return b;
        if (b->IsConst(TruncToWidth(~uint64_t{0}, w))) return a;
        break;
      case Kind::kOr:
        if (a == b) return a;
        if (a->IsConst(0)) return b;
        if (b->IsConst(0)) return a;
        break;
      case Kind::kXor:
        if (a == b) return Const(0, w);
        if (a->IsConst(0)) return b;
        if (b->IsConst(0)) return a;
        break;
      case Kind::kEq:
        if (a == b) return True();
        break;
      case Kind::kUlt:
        if (a == b) return False();
        break;
      case Kind::kShl:
      case Kind::kLShr:
      case Kind::kAShr:
        if (b->IsConst(0)) return a;
        break;
      default:
        break;
    }
  }
  Expr n;
  n.kind = kind;
  n.width = static_cast<uint8_t>(
      fp ? (kind == Kind::kFEq || kind == Kind::kFLt || kind == Kind::kFLe
                ? 1
                : 64)
         : (IsCompare(kind) ? 1 : w));
  n.nargs = 2;
  n.args[0] = a;
  n.args[1] = b;
  return Intern(std::move(n));
}

ExprRef ExprPool::Ite(ExprRef cond, ExprRef then_e, ExprRef else_e) {
  SBCE_CHECK_MSG(cond->width == 1, "ite condition must be 1-bit");
  SBCE_CHECK_MSG(then_e->width == else_e->width, "ite arm width mismatch");
  if (cond->IsConst()) return cond->cval ? then_e : else_e;
  if (then_e == else_e) return then_e;
  Expr n;
  n.kind = Kind::kIte;
  n.width = then_e->width;
  n.nargs = 3;
  n.args[0] = cond;
  n.args[1] = then_e;
  n.args[2] = else_e;
  return Intern(std::move(n));
}

ExprRef ExprPool::Concat(ExprRef hi, ExprRef lo) {
  const unsigned w = hi->width + lo->width;
  SBCE_CHECK_MSG(w <= 64, "concat exceeds 64 bits");
  if (hi->IsConst() && lo->IsConst()) {
    return Const((hi->cval << lo->width) | lo->cval, w);
  }
  Expr n;
  n.kind = Kind::kConcat;
  n.width = static_cast<uint8_t>(w);
  n.nargs = 2;
  n.args[0] = hi;
  n.args[1] = lo;
  return Intern(std::move(n));
}

ExprRef ExprPool::Extract(ExprRef a, unsigned hi, unsigned lo) {
  SBCE_CHECK_MSG(hi >= lo && hi < a->width, "bad extract bounds");
  const unsigned w = hi - lo + 1;
  if (w == a->width) return a;
  if (a->IsConst()) return Const(a->cval >> lo, w);
  // extract of zext/sext below the original width is the original bits.
  if ((a->kind == Kind::kZExt || a->kind == Kind::kSExt) &&
      hi < a->args[0]->width) {
    return Extract(a->args[0], hi, lo);
  }
  if (a->kind == Kind::kExtract) {
    return Extract(a->args[0], a->p1 + hi, a->p1 + lo);
  }
  Expr n;
  n.kind = Kind::kExtract;
  n.width = static_cast<uint8_t>(w);
  n.nargs = 1;
  n.args[0] = a;
  n.p0 = hi;
  n.p1 = lo;
  return Intern(std::move(n));
}

ExprRef ExprPool::ZExt(ExprRef a, unsigned width) {
  SBCE_CHECK_MSG(width >= a->width && width <= 64, "bad zext width");
  if (width == a->width) return a;
  if (a->IsConst()) return Const(a->cval, width);
  Expr n;
  n.kind = Kind::kZExt;
  n.width = static_cast<uint8_t>(width);
  n.nargs = 1;
  n.args[0] = a;
  return Intern(std::move(n));
}

ExprRef ExprPool::SExt(ExprRef a, unsigned width) {
  SBCE_CHECK_MSG(width >= a->width && width <= 64, "bad sext width");
  if (width == a->width) return a;
  if (a->IsConst()) return Const(SignExtend(a->cval, a->width), width);
  Expr n;
  n.kind = Kind::kSExt;
  n.width = static_cast<uint8_t>(width);
  n.nargs = 1;
  n.args[0] = a;
  return Intern(std::move(n));
}

std::string ToString(ExprRef e) {
  switch (e->kind) {
    case Kind::kConst:
      return StrFormat("#x%llx[%u]", static_cast<unsigned long long>(e->cval),
                       e->width);
    case Kind::kVar:
      return e->name;
    case Kind::kExtract:
      return StrFormat("((_ extract %u %u) %s)", e->p0, e->p1,
                       ToString(e->args[0]).c_str());
    case Kind::kZExt:
    case Kind::kSExt:
      return StrFormat("((_ %s %u) %s)", std::string(KindName(e->kind)).c_str(),
                       e->width, ToString(e->args[0]).c_str());
    default: {
      std::string out = "(";
      out += KindName(e->kind);
      for (int i = 0; i < e->nargs; ++i) {
        out += ' ';
        out += ToString(e->args[i]);
      }
      out += ')';
      return out;
    }
  }
}

namespace {

template <typename Fn>
void Visit(std::span<const ExprRef> roots, Fn&& fn) {
  std::unordered_set<ExprRef> seen;
  std::vector<ExprRef> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    ExprRef e = stack.back();
    stack.pop_back();
    if (!seen.insert(e).second) continue;
    fn(e);
    for (int i = 0; i < e->nargs; ++i) stack.push_back(e->args[i]);
  }
}

}  // namespace

std::vector<ExprRef> CollectVars(std::span<const ExprRef> roots) {
  if (roots.size() == 1 && roots[0]->pool != nullptr) {
    return roots[0]->pool->VarsOf(roots[0]);
  }
  std::vector<ExprRef> vars;
  std::unordered_set<ExprRef> seen;
  bool all_pooled = true;
  for (ExprRef root : roots) {
    if (root->pool == nullptr) {
      all_pooled = false;
      break;
    }
  }
  if (all_pooled) {
    for (ExprRef root : roots) {
      for (ExprRef v : root->pool->VarsOf(root)) {
        if (seen.insert(v).second) vars.push_back(v);
      }
    }
  } else {
    Visit(roots, [&](ExprRef e) {
      if (e->IsVar()) vars.push_back(e);
    });
  }
  std::sort(vars.begin(), vars.end(),
            [](ExprRef a, ExprRef b) { return a->id < b->id; });
  return vars;
}

ExprRef ImportInto(ExprPool* pool, ExprRef root) {
  // Iterative post-order rebuild (expression DAGs can be deep).
  std::unordered_map<ExprRef, ExprRef> memo;
  std::vector<std::pair<ExprRef, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [e, expanded] = stack.back();
    stack.pop_back();
    if (memo.count(e)) continue;
    if (!expanded) {
      stack.push_back({e, true});
      for (int i = 0; i < e->nargs; ++i) stack.push_back({e->args[i], false});
      continue;
    }
    ExprRef out;
    switch (e->kind) {
      case Kind::kConst:
        out = pool->Const(e->cval, e->width);
        break;
      case Kind::kVar:
        out = pool->Var(e->name, e->width);
        break;
      case Kind::kIte:
        out = pool->Ite(memo.at(e->args[0]), memo.at(e->args[1]),
                        memo.at(e->args[2]));
        break;
      case Kind::kConcat:
        out = pool->Concat(memo.at(e->args[0]), memo.at(e->args[1]));
        break;
      case Kind::kExtract:
        out = pool->Extract(memo.at(e->args[0]), e->p0, e->p1);
        break;
      case Kind::kZExt:
        out = pool->ZExt(memo.at(e->args[0]), e->width);
        break;
      case Kind::kSExt:
        out = pool->SExt(memo.at(e->args[0]), e->width);
        break;
      default:
        if (e->nargs == 1) {
          out = pool->Unary(e->kind, memo.at(e->args[0]));
        } else {
          SBCE_CHECK(e->nargs == 2);
          out = pool->Binary(e->kind, memo.at(e->args[0]),
                             memo.at(e->args[1]));
        }
        break;
    }
    memo.emplace(e, out);
  }
  return memo.at(root);
}

bool ContainsFp(std::span<const ExprRef> roots) {
  bool found = false;
  Visit(roots, [&](ExprRef e) {
    if (IsFpKind(e->kind)) found = true;
  });
  return found;
}

bool ContainsHardFp(std::span<const ExprRef> roots) {
  bool found = false;
  Visit(roots, [&](ExprRef e) {
    switch (e->kind) {
      case Kind::kFAdd:
      case Kind::kFSub:
      case Kind::kFMul:
      case Kind::kFDiv:
      case Kind::kFFromSInt:
      case Kind::kFToSInt:
        found = true;
        break;
      case Kind::kFEq:
      case Kind::kFLt:
      case Kind::kFLe:
        for (int i = 0; i < e->nargs; ++i) {
          if (!e->args[i]->IsVar() && !e->args[i]->IsConst()) found = true;
        }
        break;
      default:
        break;
    }
  });
  return found;
}

size_t DagSize(std::span<const ExprRef> roots) {
  size_t n = 0;
  Visit(roots, [&](ExprRef) { ++n; });
  return n;
}

}  // namespace sbce::solver
