#include "src/solver/presolve.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/solver/absdomain.h"
#include "src/solver/eval.h"
#include "src/support/bits.h"

namespace sbce::solver {

namespace {

uint64_t MaskOf(unsigned w) {
  return w >= 64 ? ~uint64_t{0} : ((uint64_t{1} << w) - 1);
}

int64_t MinS(unsigned w) { return AsSigned(uint64_t{1} << (w - 1), w); }
int64_t MaxS(unsigned w) { return static_cast<int64_t>(MaskOf(w) >> 1); }

bool SameAbs(const AbsValue& a, const AbsValue& b) {
  return a.bottom == b.bottom && a.known0 == b.known0 &&
         a.known1 == b.known1 && a.umin == b.umin && a.umax == b.umax &&
         a.smin == b.smin && a.smax == b.smax;
}

/// Backward refiner: pushes "this node's value lies in this set" facts
/// down the DAG, intersecting with the forward (context-free) values from
/// AbsOf. Refined values are scoped to one query — they hold only under
/// the assumption that every assertion is true — so they live in a local
/// map, never in the pool memo. All rules compute sound pre-image
/// over-approximations, so a derived empty set is a genuine refutation.
class Refiner {
 public:
  bool contradiction = false;
  bool changed = false;

  AbsValue ValueOf(ExprRef e) {
    auto it = refined_.find(e);
    return it != refined_.end() ? it->second : AbsOf(e);
  }

  bool OutOfBudget() const { return budget_ == 0; }

  void Refine(ExprRef e, const AbsValue& req, int depth) {
    if (contradiction || depth > 64 || budget_ == 0) return;
    --budget_;
    const AbsValue cur = ValueOf(e);
    const AbsValue met = AbsMeet(cur, req);
    if (met.bottom) {
      contradiction = true;
      return;
    }
    if (!SameAbs(met, cur)) {
      refined_[e] = met;
      changed = true;
    }
    Push(e, met, depth);
  }

 private:
  /// Requirement carrying only known-bit facts.
  static AbsValue BitsReq(unsigned w, uint64_t k0, uint64_t k1) {
    AbsValue r = AbsTop(w);
    r.known0 = k0 & MaskOf(w);
    r.known1 = k1 & MaskOf(w);
    return Normalize(r);
  }

  /// Requirement carrying only an unsigned bound.
  static AbsValue UBoundReq(unsigned w, uint64_t lo, uint64_t hi) {
    AbsValue r = AbsTop(w);
    r.umin = lo;
    r.umax = hi;
    return Normalize(r);
  }

  /// Requirement carrying only a signed bound.
  static AbsValue SBoundReq(unsigned w, int64_t lo, int64_t hi) {
    AbsValue r = AbsTop(w);
    r.smin = lo;
    r.smax = hi;
    return Normalize(r);
  }

  /// a != c where c is known: trim c off an interval endpoint.
  void ExcludeValue(ExprRef e, const AbsValue& v, uint64_t c, unsigned w,
                    int depth) {
    if (v.IsSingleton() && v.umin == c) {
      contradiction = true;
      return;
    }
    if (v.umin == c) {
      Refine(e, UBoundReq(w, c + 1, MaskOf(w)), depth + 1);
    } else if (v.umax == c) {
      Refine(e, UBoundReq(w, 0, c - 1), depth + 1);
    }
  }

  void Push(ExprRef e, const AbsValue& met, int depth) {
    const int d = depth + 1;
    switch (e->kind) {
      case Kind::kNot:  // involution: the pre-image is the image
        Refine(e->args[0], AbsUnaryOp(Kind::kNot, met), d);
        break;
      case Kind::kNeg:  // involution
        Refine(e->args[0], AbsUnaryOp(Kind::kNeg, met), d);
        break;
      case Kind::kEq: {
        const AbsValue va = ValueOf(e->args[0]);
        const AbsValue vb = ValueOf(e->args[1]);
        const unsigned w = e->args[0]->width;
        if (met.IsSingleton() && met.umin == 1) {
          const AbsValue m = AbsMeet(va, vb);
          if (m.bottom) {
            contradiction = true;
            return;
          }
          Refine(e->args[0], m, d);
          Refine(e->args[1], m, d);
        } else if (met.IsSingleton() && met.umin == 0) {
          if (vb.IsSingleton()) ExcludeValue(e->args[0], va, vb.umin, w, d);
          if (contradiction) return;
          if (va.IsSingleton()) ExcludeValue(e->args[1], vb, va.umin, w, d);
        }
        break;
      }
      case Kind::kUlt:
      case Kind::kUle: {
        if (!met.IsSingleton()) break;
        const AbsValue va = ValueOf(e->args[0]);
        const AbsValue vb = ValueOf(e->args[1]);
        const unsigned w = e->args[0]->width;
        const uint64_t mask = MaskOf(w);
        const bool strict = e->kind == Kind::kUlt;
        if (met.umin == 1) {  // a < b (or a <= b)
          const uint64_t hi = strict ? vb.umax - 1 : vb.umax;
          if (strict && vb.umax == 0) {
            contradiction = true;
            return;
          }
          Refine(e->args[0], UBoundReq(w, 0, hi), d);
          if (contradiction) return;
          const uint64_t lo = strict ? va.umin + 1 : va.umin;
          if (strict && va.umin == mask) {
            contradiction = true;
            return;
          }
          Refine(e->args[1], UBoundReq(w, lo, mask), d);
        } else {  // !(a < b): a >= b (or a > b for ule)
          const bool gt = !strict;  // negated ule is strict >
          if (gt && vb.umin == mask) {
            contradiction = true;
            return;
          }
          Refine(e->args[0], UBoundReq(w, vb.umin + (gt ? 1 : 0), mask), d);
          if (contradiction) return;
          if (gt && va.umax == 0) {
            contradiction = true;
            return;
          }
          Refine(e->args[1], UBoundReq(w, 0, va.umax - (gt ? 1 : 0)), d);
        }
        break;
      }
      case Kind::kSlt:
      case Kind::kSle: {
        if (!met.IsSingleton()) break;
        const AbsValue va = ValueOf(e->args[0]);
        const AbsValue vb = ValueOf(e->args[1]);
        const unsigned w = e->args[0]->width;
        const bool strict = e->kind == Kind::kSlt;
        if (met.umin == 1) {
          if (strict && vb.smax == MinS(w)) {
            contradiction = true;
            return;
          }
          Refine(e->args[0],
                 SBoundReq(w, MinS(w), vb.smax - (strict ? 1 : 0)), d);
          if (contradiction) return;
          if (strict && va.smin == MaxS(w)) {
            contradiction = true;
            return;
          }
          Refine(e->args[1],
                 SBoundReq(w, va.smin + (strict ? 1 : 0), MaxS(w)), d);
        } else {
          const bool gt = !strict;
          if (gt && vb.smin == MaxS(w)) {
            contradiction = true;
            return;
          }
          Refine(e->args[0],
                 SBoundReq(w, vb.smin + (gt ? 1 : 0), MaxS(w)), d);
          if (contradiction) return;
          if (gt && va.smax == MinS(w)) {
            contradiction = true;
            return;
          }
          Refine(e->args[1],
                 SBoundReq(w, MinS(w), va.smax - (gt ? 1 : 0)), d);
        }
        break;
      }
      case Kind::kAnd: {
        const unsigned w = e->width;
        const AbsValue va = ValueOf(e->args[0]);
        const AbsValue vb = ValueOf(e->args[1]);
        // Result bits known 1 force both operands; result bits known 0
        // where one operand is known 1 force the other to 0 there.
        if (met.known1 != 0) {
          Refine(e->args[0], BitsReq(w, 0, met.known1), d);
          if (contradiction) return;
          Refine(e->args[1], BitsReq(w, 0, met.known1), d);
          if (contradiction) return;
        }
        if ((met.known0 & vb.known1) != 0) {
          Refine(e->args[0], BitsReq(w, met.known0 & vb.known1, 0), d);
          if (contradiction) return;
        }
        if ((met.known0 & va.known1) != 0) {
          Refine(e->args[1], BitsReq(w, met.known0 & va.known1, 0), d);
        }
        break;
      }
      case Kind::kOr: {
        const unsigned w = e->width;
        const AbsValue va = ValueOf(e->args[0]);
        const AbsValue vb = ValueOf(e->args[1]);
        if (met.known0 != 0) {
          Refine(e->args[0], BitsReq(w, met.known0, 0), d);
          if (contradiction) return;
          Refine(e->args[1], BitsReq(w, met.known0, 0), d);
          if (contradiction) return;
        }
        if ((met.known1 & vb.known0) != 0) {
          Refine(e->args[0], BitsReq(w, 0, met.known1 & vb.known0), d);
          if (contradiction) return;
        }
        if ((met.known1 & va.known0) != 0) {
          Refine(e->args[1], BitsReq(w, 0, met.known1 & va.known0), d);
        }
        break;
      }
      case Kind::kXor: {
        const unsigned w = e->width;
        const AbsValue va = ValueOf(e->args[0]);
        const AbsValue vb = ValueOf(e->args[1]);
        // Bits where the result and one operand are both known determine
        // the other operand's bit.
        const uint64_t both_b = (met.known0 | met.known1) &
                                (vb.known0 | vb.known1);
        if (both_b != 0) {
          const uint64_t val = (met.known1 ^ vb.known1) & both_b;
          Refine(e->args[0], BitsReq(w, both_b & ~val, val), d);
          if (contradiction) return;
        }
        const uint64_t both_a = (met.known0 | met.known1) &
                                (va.known0 | va.known1);
        if (both_a != 0) {
          const uint64_t val = (met.known1 ^ va.known1) & both_a;
          Refine(e->args[1], BitsReq(w, both_a & ~val, val), d);
        }
        break;
      }
      case Kind::kAdd: {
        const AbsValue va = ValueOf(e->args[0]);
        const AbsValue vb = ValueOf(e->args[1]);
        // a = r - b when b is pinned (exact modular inverse), and vice
        // versa; the sub transfer over-approximates the pre-image soundly.
        if (vb.IsSingleton()) {
          Refine(e->args[0], AbsBinaryOp(Kind::kSub, met, vb), d);
          if (contradiction) return;
        }
        if (va.IsSingleton()) {
          Refine(e->args[1], AbsBinaryOp(Kind::kSub, met, va), d);
        }
        break;
      }
      case Kind::kSub: {
        const AbsValue va = ValueOf(e->args[0]);
        const AbsValue vb = ValueOf(e->args[1]);
        if (vb.IsSingleton()) {  // a = r + b
          Refine(e->args[0], AbsBinaryOp(Kind::kAdd, met, vb), d);
          if (contradiction) return;
        }
        if (va.IsSingleton()) {  // b = a - r
          Refine(e->args[1], AbsBinaryOp(Kind::kSub, va, met), d);
        }
        break;
      }
      case Kind::kIte: {
        const AbsValue vc = ValueOf(e->args[0]);
        if (vc.IsSingleton()) {
          Refine(e->args[vc.umin ? 1 : 2], met, d);
          break;
        }
        const bool then_dead = AbsMeet(met, ValueOf(e->args[1])).bottom;
        const bool else_dead = AbsMeet(met, ValueOf(e->args[2])).bottom;
        if (then_dead && else_dead) {
          contradiction = true;
          return;
        }
        if (then_dead) {  // the value can only come from the else arm
          Refine(e->args[0], AbsConst(0, 1), d);
          if (contradiction) return;
          Refine(e->args[2], met, d);
        } else if (else_dead) {
          Refine(e->args[0], AbsConst(1, 1), d);
          if (contradiction) return;
          Refine(e->args[1], met, d);
        }
        break;
      }
      case Kind::kZExt: {
        const unsigned wa = e->args[0]->width;
        AbsValue req = AbsTop(wa);
        req.known0 = met.known0 & MaskOf(wa);
        req.known1 = met.known1 & MaskOf(wa);
        req.umin = met.umin;  // <= MaskOf(wa): met meets the forward value
        req.umax = std::min(met.umax, MaskOf(wa));
        Refine(e->args[0], Normalize(req), d);
        break;
      }
      case Kind::kSExt: {
        const unsigned wa = e->args[0]->width;
        AbsValue req = AbsTop(wa);
        req.smin = std::max(met.smin, MinS(wa));
        req.smax = std::min(met.smax, MaxS(wa));
        const uint64_t low = MaskOf(wa) >> 1;
        req.known0 = met.known0 & low;
        req.known1 = met.known1 & low;
        // The result bit at the old sign position equals the operand's
        // sign bit.
        if (GetBit(met.known0, wa - 1)) {
          req.known0 |= uint64_t{1} << (wa - 1);
        } else if (GetBit(met.known1, wa - 1)) {
          req.known1 |= uint64_t{1} << (wa - 1);
        }
        Refine(e->args[0], Normalize(req), d);
        break;
      }
      case Kind::kConcat: {
        const unsigned wh = e->args[0]->width;
        const unsigned wl = e->args[1]->width;
        if (met.IsSingleton()) {
          Refine(e->args[0], AbsConst(met.umin >> wl, wh), d);
          if (contradiction) return;
          Refine(e->args[1], AbsConst(met.umin & MaskOf(wl), wl), d);
        } else {
          Refine(e->args[0],
                 BitsReq(wh, met.known0 >> wl, met.known1 >> wl), d);
          if (contradiction) return;
          Refine(e->args[1],
                 BitsReq(wl, met.known0 & MaskOf(wl),
                         met.known1 & MaskOf(wl)),
                 d);
        }
        break;
      }
      case Kind::kExtract: {
        const unsigned w = e->width;
        const unsigned lo = e->p1;
        Refine(e->args[0],
               BitsReq(e->args[0]->width, (met.known0 & MaskOf(w)) << lo,
                       (met.known1 & MaskOf(w)) << lo),
               d);
        break;
      }
      default:
        break;
    }
  }

  std::unordered_map<ExprRef, AbsValue> refined_;
  // Caps total Refine() calls per query: refinement on heavily shared
  // DAGs may revisit nodes through multiple parents, and soundness does
  // not depend on reaching a fixpoint.
  uint64_t budget_ = 20'000;
};

/// Bounded model scan over the refined variable ranges. The ranges
/// over-approximate the feasible set (every model of the assertions lies
/// inside them), so walking all assignments they span is exhaustive:
///   no satisfying assignment   -> exact refutation (kUnsat),
///   first satisfying assignment -> the canonical model (kSat). The scan
///   order (variables in CollectVars order, values ascending, first
///   variable fastest) defines the solver-wide canonical-model contract:
///   CheckSat / IncrementalSolver rewrite their CDCL models to the same
///   scan's first hit (CanonicalModel), so a pre-solver that answers from
///   the scan is byte-identical to the full path.
/// The cap scales with the query's DAG size so the scan stays cheaper
/// than one bit-blast: small circuits may span up to kEnumAssignments
/// assignments, big ones proportionally fewer (kEnumWork caps the product
/// of assignments x DAG nodes). The common engine shape — a prefix that
/// pins most input bytes plus a negated branch condition on one fresh
/// byte — spans at most 256 assignments and lands squarely inside.
constexpr uint64_t kEnumAssignments = 65'536;
constexpr uint64_t kEnumWork = 2'000'000;

/// One walk over the DAG reachable from `assertions`, feeding two gates:
///   - nodes: distinct node count, which sizes the enumeration budget
///     (kEnumWork / nodes assignments). Counted exactly up to node_cap;
///     past the cap the query is not enumerable anyway, so the walk stops.
///   - circuit: loose upper estimate of the SAT variables a bit-blast
///     would allocate — ~4x width per node for output bits plus adder /
///     comparator auxiliaries, ~4x width^2 for the multiplicative ops'
///     partial-product arrays, nothing for constants (they fold to
///     literals). Saturates once it exceeds circuit_cap.
struct DagSurvey {
  size_t nodes = 0;
  uint64_t circuit = 0;
};

DagSurvey SurveyDag(std::span<const ExprRef> assertions, size_t node_cap,
                    uint64_t circuit_cap) {
  DagSurvey out;
  std::vector<ExprRef> stack(assertions.begin(), assertions.end());
  std::unordered_map<ExprRef, bool> seen;
  while (!stack.empty()) {
    if (seen.size() >= node_cap && out.circuit > circuit_cap) break;
    ExprRef e = stack.back();
    stack.pop_back();
    if (!seen.emplace(e, true).second) continue;
    const uint64_t w = e->width;
    switch (e->kind) {
      case Kind::kConst:
        break;
      case Kind::kMul:
      case Kind::kUDiv:
      case Kind::kURem:
      case Kind::kSDiv:
      case Kind::kSRem:
        out.circuit += 4 * w * w;
        break;
      default:
        out.circuit += 4 * w;
        break;
    }
    for (uint8_t i = 0; i < e->nargs; ++i) stack.push_back(e->args[i]);
  }
  out.nodes = seen.size();
  return out;
}

struct EnumDomain {
  ExprRef var;
  std::vector<uint64_t> values;  // ascending, all within the refined range
};

/// Fills one domain per variable; false when the combined assignment count
/// exceeds `max_assignments` (or a range is too wide to enumerate an axis).
bool CollectEnumDomains(std::span<const ExprRef> vars, Refiner& refiner,
                        uint64_t max_assignments,
                        std::vector<EnumDomain>* domains) {
  uint64_t product = 1;
  for (ExprRef v : vars) {
    const AbsValue av = refiner.ValueOf(v);
    if (av.bottom || av.umax - av.umin >= max_assignments) return false;
    EnumDomain d{v, {}};
    for (uint64_t val = av.umin;; ++val) {
      if (av.Contains(val)) d.values.push_back(val);
      if (val == av.umax) break;
    }
    if (d.values.empty()) return false;
    product *= d.values.size();
    if (product > max_assignments) return false;
    domains->push_back(std::move(d));
  }
  return true;
}

/// Odometer walk over the domains, in the canonical scan order. Returns
/// the first satisfying assignment, or nullopt after an exhaustive scan
/// found none (an exact refutation).
std::optional<Assignment> FirstModel(std::span<const ExprRef> assertions,
                                     const std::vector<EnumDomain>& domains) {
  std::vector<size_t> idx(domains.size(), 0);
  Assignment probe;
  for (;;) {
    for (size_t i = 0; i < domains.size(); ++i) {
      probe[domains[i].var->name] =
          TruncToWidth(domains[i].values[idx[i]], domains[i].var->width);
    }
    if (AllSatisfied(assertions, probe)) return probe;
    size_t i = 0;
    while (i < domains.size() && ++idx[i] == domains[i].values.size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == domains.size()) return std::nullopt;
  }
}

/// Refinement + domain collection shared by Presolve and CanonicalModel.
/// Returns false when the query is out of scope (non-1-bit assertion or a
/// floating-point node). `refuted` reports a derived contradiction;
/// `enumerable` is set when the refined ranges span few enough assignments
/// to scan within the work budget (`domains` then holds one axis per
/// variable — empty for a variable-free query, which is trivially
/// enumerable).
bool AnalyzeQuery(std::span<const ExprRef> assertions, Refiner& refiner,
                  bool* refuted, bool* enumerable,
                  std::vector<EnumDomain>* domains) {
  *refuted = false;
  *enumerable = false;
  if (assertions.empty()) return false;
  for (ExprRef a : assertions) {
    if (a->width != 1) return false;
  }
  if (ContainsFp(assertions)) return false;

  // Forward pass (memoized per pool; shared nodes are analyzed once).
  for (ExprRef a : assertions) {
    const AbsValue v = AbsOf(a);
    if (v.bottom || v.umax == 0) {
      *refuted = true;
      return true;
    }
  }

  // Backward refinement: assume every assertion evaluates to 1 and push
  // the consequences down to the variables.
  const AbsValue one = AbsConst(1, 1);
  for (int round = 0; round < 4; ++round) {
    refiner.changed = false;
    for (ExprRef a : assertions) {
      refiner.Refine(a, one, 0);
      if (refiner.contradiction) {
        *refuted = true;
        return true;
      }
    }
    if (!refiner.changed || refiner.OutOfBudget()) break;
  }

  const std::vector<ExprRef> vars = CollectVars(assertions);
  // Exact node count up to kEnumWork (past that the budget below bottoms
  // out at one assignment per scan anyway). An under-count here would let
  // a huge DAG masquerade as cheap and blow the work cap, so no small cap.
  const DagSurvey survey = SurveyDag(assertions, kEnumWork, 0);
  const size_t nodes = std::max<size_t>(survey.nodes, 1);
  const uint64_t max_assignments =
      std::min(kEnumAssignments, kEnumWork / nodes);
  if (CollectEnumDomains(vars, refiner, max_assignments, domains)) {
    *enumerable = true;
  } else {
    domains->clear();
  }
  return true;
}

}  // namespace

bool PresolveCircuitFits(std::span<const ExprRef> assertions,
                         size_t max_sat_vars) {
  return SurveyDag(assertions, 0, max_sat_vars).circuit <= max_sat_vars;
}

PresolveVerdict Presolve(std::span<const ExprRef> assertions,
                         const SolverOptions& options) {
  PresolveVerdict out;
  // Out-of-scope queries (empty, non-1-bit, floating-point) are never
  // judged: the FP search path can return kUnknown but never kUnsat, so
  // an abstract refutation there would change its observable verdict.
  //
  // Neither are queries that could exhaust the caller's circuit budget:
  // the full path aborts the bit-blast with RESOURCE_EXHAUSTED (kUnknown)
  // BEFORE any unsat/sat answer, so even a sound refutation here would
  // diverge from the budget-limited tool profile it stands in for. This
  // gate must precede every definitive exit, refutation included.
  if (!PresolveCircuitFits(assertions, options.max_sat_vars)) return out;
  Refiner refiner;
  bool refuted = false;
  bool enumerable = false;
  std::vector<EnumDomain> domains;
  if (!AnalyzeQuery(assertions, refiner, &refuted, &enumerable, &domains)) {
    return out;
  }

  if (refuted) {
    out.definitive = true;
    out.result.status = SolveStatus::kUnsat;
    out.result.note = "presolve: abstract refutation";
    return out;
  }

  // Enumerable: the scan is exhaustive over an over-approximation of the
  // feasible set, so no model -> exact kUnsat, and the first model found
  // is exactly the canonical model CheckSat would return (it rewrites its
  // CDCL model through the same scan) -> definitive kSat.
  if (enumerable) {
    if (std::optional<Assignment> model = FirstModel(assertions, domains)) {
      out.definitive = true;
      out.result.status = SolveStatus::kSat;
      out.result.model = std::move(*model);
      out.result.note = "presolve: canonical model from range scan";
    } else {
      out.definitive = true;
      out.result.status = SolveStatus::kUnsat;
      out.result.note = "presolve: exhaustive range scan (no model)";
    }
    return out;
  }

  if (std::getenv("SBCE_PRESOLVE_DEBUG") != nullptr) {
    std::string widths;
    for (ExprRef v : CollectVars(assertions)) {
      const AbsValue av = refiner.ValueOf(v);
      widths += " " + std::to_string(v->width) + ":" +
                std::to_string(av.umax - av.umin);
    }
    std::fprintf(stderr, "[presolve-miss] asserts=%zu widths:%s\n",
                 assertions.size(), widths.c_str());
  }
  return out;
}

std::optional<Assignment> CanonicalModel(
    std::span<const ExprRef> assertions) {
  Refiner refiner;
  bool refuted = false;
  bool enumerable = false;
  std::vector<EnumDomain> domains;
  if (!AnalyzeQuery(assertions, refiner, &refuted, &enumerable, &domains)) {
    return std::nullopt;
  }
  if (refuted || !enumerable) return std::nullopt;
  return FirstModel(assertions, domains);
}

}  // namespace sbce::solver
