#include "src/solver/incremental.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/solver/eval.h"
#include "src/solver/simplify.h"
#include "src/support/status.h"

namespace sbce::solver {

IncrementalSolver::Session& IncrementalSolver::EnsureSession() {
  if (!session_) session_ = std::make_unique<Session>(options_);
  return *session_;
}

void IncrementalSolver::ResetSession() {
  session_.reset();
  ++stats_.session_resets;
}

SolveResult IncrementalSolver::Solve(std::span<const ExprRef> assertions) {
  for (ExprRef a : assertions) {
    SBCE_CHECK_MSG(a->width == 1, "assertion must be 1-bit");
  }

  // FP queries route to the search solver; a warm CNF session buys them
  // nothing.
  if (ContainsFp(assertions)) {
    ++stats_.cold_fallbacks;
    return CheckSat(assertions, options_);
  }

  SolveResult result;
  Session& s = EnsureSession();

  // Rebuild each assertion in the persistent session pool. Hash-consing
  // makes the shared prefix of consecutive queries pointer-identical
  // there, which is what lets the bit-blaster's structural cache skip
  // re-encoding it.
  std::vector<ExprRef> prepared;
  prepared.reserve(assertions.size());
  bool any_false = false;
  SimplifyOptions simp_opts;
  simp_opts.use_ranges = options_.presolve;
  simp_opts.range_rewrites = &result.presolve_rewrites;
  for (ExprRef a : assertions) {
    ExprRef p = options_.presimplify ? Simplify(&s.pool, a, simp_opts)
                                     : ImportInto(&s.pool, a);
    if (p->IsConst(0)) any_false = true;
    if (p->IsConst(1)) continue;  // tautology: nothing to encode
    prepared.push_back(p);
  }
  if (any_false) {
    result.status = SolveStatus::kUnsat;
    result.note = "constant-false assertion";
    return result;
  }
  if (prepared.empty()) {
    result.status = SolveStatus::kSat;
    CanonicalizeModel(assertions, &result);
    return result;
  }

  const int vars_before = s.sat.NumVars();
  const uint64_t pinned_before = s.blaster.known_bits_pinned();
  std::vector<Lit> assumptions;
  assumptions.reserve(prepared.size());
  for (ExprRef a : prepared) {
    auto it = s.guards.find(a);
    if (it == s.guards.end()) {
      const Lit g = MkLit(s.sat.NewVar());
      const Status st = s.blaster.AssertGuarded(g, a);
      if (!st.ok()) {
        // Circuit budget exhausted or unsupported node: this session can
        // no longer answer soundly (the query is half-encoded). Tear it
        // down and decide this query cold; the next query starts a fresh
        // session.
        ResetSession();
        ++stats_.cold_fallbacks;
        return CheckSat(assertions, options_);
      }
      it = s.guards.emplace(a, g).first;
    }
    // A query may repeat an assertion; assume its guard only once.
    if (std::find(assumptions.begin(), assumptions.end(), it->second) ==
        assumptions.end()) {
      assumptions.push_back(it->second);
    }
  }

  // Guards are never retired: a prefix assertion shared with the next
  // query keeps its guard, so clauses learned under it transfer. Unused
  // guards are simply left unassumed (the solver can set them false).
  const SatStatus st = s.sat.Solve(assumptions);
  ++stats_.solves;
  result.conflicts = s.sat.last_solve_conflicts();
  result.sat_vars = static_cast<size_t>(s.sat.NumVars() - vars_before);
  result.presolve_bits_pinned = s.blaster.known_bits_pinned() - pinned_before;

  switch (st) {
    case SatStatus::kSat: {
      result.status = SolveStatus::kSat;
      // The blaster extracts every variable the session has ever blasted;
      // restrict to this query's variables before validating.
      const Assignment full = s.blaster.ExtractAssignment();
      for (ExprRef v : CollectVars(prepared)) {
        if (auto it = full.find(v->name); it != full.end()) {
          result.model.emplace(it->first, it->second);
        }
      }
      SBCE_CHECK_MSG(AllSatisfied(prepared, result.model),
                     "incremental session returned an invalid model");
      // Same canonical-model contract as CheckSat, applied to the original
      // assertion vector so warm and cold paths agree byte-for-byte.
      CanonicalizeModel(assertions, &result);
      break;
    }
    case SatStatus::kUnsat:
      result.status = SolveStatus::kUnsat;
      break;
    case SatStatus::kUnknown:
      result.status = SolveStatus::kUnknown;
      result.note = "conflict budget exhausted";
      break;
  }
  return result;
}

}  // namespace sbce::solver
