#include "src/solver/fpsolver.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "src/support/bits.h"
#include "src/support/rng.h"

namespace sbce::solver {

namespace {

/// Harvests interesting concrete values from the constraint DAG: every
/// constant, its arithmetic neighbours, and (for 64-bit constants) the
/// ULP-neighbourhood of its double interpretation.
std::vector<uint64_t> HarvestCandidates(std::span<const ExprRef> roots) {
  std::vector<uint64_t> out = {
      0,
      1,
      static_cast<uint64_t>(-1),
      std::bit_cast<uint64_t>(0.0),
      std::bit_cast<uint64_t>(-0.0),
      std::bit_cast<uint64_t>(1.0),
      std::bit_cast<uint64_t>(-1.0),
      std::bit_cast<uint64_t>(0.5),
      std::bit_cast<uint64_t>(1e-20),
      std::bit_cast<uint64_t>(-1e-20),
      std::bit_cast<uint64_t>(5e-324),   // smallest denormal
      std::bit_cast<uint64_t>(1e308),
      std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity()),
  };
  std::unordered_set<ExprRef> seen;
  std::vector<ExprRef> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    ExprRef e = stack.back();
    stack.pop_back();
    if (!seen.insert(e).second) continue;
    for (int i = 0; i < e->nargs; ++i) stack.push_back(e->args[i]);
    if (!e->IsConst()) continue;
    const uint64_t c = e->cval;
    out.push_back(c);
    out.push_back(c + 1);
    out.push_back(c - 1);
    out.push_back(~c + 1);
    if (e->width == 64) {
      const double d = std::bit_cast<double>(c);
      if (std::isfinite(d)) {
        out.push_back(std::bit_cast<uint64_t>(std::nextafter(d, 1e308)));
        out.push_back(std::bit_cast<uint64_t>(std::nextafter(d, -1e308)));
        out.push_back(std::bit_cast<uint64_t>(-d));
        out.push_back(std::bit_cast<uint64_t>(d / 2));
        out.push_back(std::bit_cast<uint64_t>(d * 2));
      }
      // The constant may also be an *integer* that flows into fp.from_sint.
      const auto as_int = static_cast<double>(static_cast<int64_t>(c));
      out.push_back(std::bit_cast<uint64_t>(as_int));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t CountSatisfied(std::span<const ExprRef> assertions,
                      const Assignment& a) {
  size_t n = 0;
  for (ExprRef e : assertions) {
    if (Evaluate(e, a) != 0) ++n;
  }
  return n;
}

}  // namespace

FpSearchResult FpSearch(std::span<const ExprRef> assertions,
                        const FpSearchOptions& options) {
  FpSearchResult result;
  std::vector<ExprRef> vars = CollectVars(assertions);
  Assignment current;
  for (ExprRef v : vars) current[v->name] = 0;
  if (AllSatisfied(assertions, current)) {
    result.found = true;
    result.model = current;
    return result;
  }
  if (vars.empty()) return result;  // unsatisfied with no vars: hopeless

  const std::vector<uint64_t> candidates = HarvestCandidates(assertions);
  SplitMix64 rng(options.seed);

  // Phase 1: per-variable candidate sweep (other vars hold their current
  // values), repeated round-robin so assignments can co-adapt.
  size_t best_score = CountSatisfied(assertions, current);
  for (int round = 0; round < 3 && !result.found; ++round) {
    for (ExprRef v : vars) {
      uint64_t best_val = current[v->name];
      for (uint64_t cand : candidates) {
        if (++result.iterations > options.max_iterations) return result;
        current[v->name] = TruncToWidth(cand, v->width);
        const size_t score = CountSatisfied(assertions, current);
        if (score > best_score) {
          best_score = score;
          best_val = current[v->name];
          if (score == assertions.size()) {
            result.found = true;
            result.model = current;
            return result;
          }
        }
      }
      current[v->name] = best_val;
    }
  }

  // Phase 2: stochastic bit-level moves with hill climbing and random
  // restarts from harvested candidates.
  Assignment best = current;
  while (result.iterations < options.max_iterations) {
    ++result.iterations;
    ExprRef v = vars[rng.NextBelow(vars.size())];
    const uint64_t old = current[v->name];
    uint64_t next = old;
    switch (rng.NextBelow(6)) {
      case 0:  // flip a random bit
        next = old ^ (uint64_t{1} << rng.NextBelow(v->width));
        break;
      case 1:  // ULP step on the double interpretation
        if (v->width == 64) {
          const double d = std::bit_cast<double>(old);
          next = std::bit_cast<uint64_t>(
              std::nextafter(d, rng.NextBelow(2) ? 1e308 : -1e308));
        } else {
          next = old + 1;
        }
        break;
      case 2:  // small additive jitter
        next = old + rng.NextBelow(17) - 8;
        break;
      case 3:  // restart from a harvested candidate
        next = candidates[rng.NextBelow(candidates.size())];
        break;
      case 4:  // random full-width value
        next = rng.Next();
        break;
      case 5:  // negate (both integer and sign-bit senses covered over time)
        next = rng.NextBelow(2) ? (~old + 1) : (old ^ (uint64_t{1} << 63));
        break;
    }
    current[v->name] = TruncToWidth(next, v->width);
    const size_t score = CountSatisfied(assertions, current);
    if (score == assertions.size()) {
      result.found = true;
      result.model = current;
      return result;
    }
    if (score >= best_score) {
      best_score = score;
      best = current;
    } else if (rng.NextBelow(4) != 0) {
      // Mostly greedy: revert worsening moves 75% of the time.
      current[v->name] = old;
    }
  }
  return result;
}

}  // namespace sbce::solver
