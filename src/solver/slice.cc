#include "src/solver/slice.h"

#include <algorithm>
#include <unordered_map>

namespace sbce::solver {

namespace {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    // Always attach the larger index under the smaller one so every root
    // is the smallest member of its component — gives the deterministic
    // first-assertion ordering for free.
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<std::vector<ExprRef>> SliceByIndependence(
    std::span<const ExprRef> assertions) {
  const size_t n = assertions.size();
  UnionFind uf(n);
  // First assertion index seen for each variable (identity: exprs are
  // hash-consed, so the same variable is the same pointer).
  std::unordered_map<ExprRef, size_t> var_owner;
  for (size_t i = 0; i < n; ++i) {
    for (ExprRef v : CollectVars({&assertions[i], 1})) {
      auto [it, inserted] = var_owner.try_emplace(v, i);
      if (!inserted) uf.Union(it->second, i);
    }
  }

  // Emit components keyed by root (the smallest index in the component),
  // in ascending root order = first-appearance order.
  std::vector<std::vector<ExprRef>> groups;
  std::unordered_map<size_t, size_t> root_to_group;
  for (size_t i = 0; i < n; ++i) {
    const size_t root = uf.Find(i);
    auto [it, inserted] = root_to_group.try_emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(assertions[i]);
  }
  return groups;
}

}  // namespace sbce::solver
