#include "src/solver/solver.h"

#include "src/solver/bitblast.h"
#include "src/solver/fpsolver.h"
#include "src/solver/presolve.h"
#include "src/solver/sat.h"
#include "src/solver/simplify.h"

namespace sbce::solver {

void CanonicalizeModel(std::span<const ExprRef> raw_assertions,
                       SolveResult* result) {
  if (result->status != SolveStatus::kSat) return;
  // The canonical model is computed from the raw assertion vector — the
  // same input the pipeline pre-solver sees — never the simplified one,
  // whose variable set can differ (rewrites eliminate variables).
  if (std::optional<Assignment> canon = CanonicalModel(raw_assertions)) {
    SBCE_CHECK_MSG(AllSatisfied(raw_assertions, *canon),
                   "canonical model does not satisfy the query");
    result->model = std::move(*canon);
  }
}

SatSolver::Options ToSatOptions(const SolverOptions& options) {
  SatSolver::Options sat_opts;
  sat_opts.max_conflicts = options.max_conflicts;
  sat_opts.var_decay = options.var_decay;
  sat_opts.clause_decay = options.clause_decay;
  sat_opts.restart_base = options.restart_base;
  sat_opts.reduce_db = options.reduce_clause_db;
  return sat_opts;
}

SolveResult CheckSat(std::span<const ExprRef> raw_assertions,
                     const SolverOptions& options) {
  SolveResult result;

  for (ExprRef a : raw_assertions) {
    SBCE_CHECK_MSG(a->width == 1, "assertion must be 1-bit");
  }
  // Simplify before dispatch: smaller circuits, and trivial outcomes are
  // decided without touching the SAT core. The rewrite builds into a
  // call-local pool (expressions are immutable values, so rebuilding in a
  // different arena is sound); everything below only lives for this call,
  // and the returned model is plain name→value data. With presimplify off
  // (a portfolio alternate) the raw assertions are encoded directly; the
  // constant-false/empty fast paths still apply either way.
  ExprPool local_pool;
  SimplifyOptions simp_opts;
  simp_opts.use_ranges = options.presolve;
  simp_opts.range_rewrites = &result.presolve_rewrites;
  std::vector<ExprRef> assertions =
      options.presimplify
          ? SimplifyAll(&local_pool, raw_assertions, simp_opts)
          : std::vector<ExprRef>(raw_assertions.begin(), raw_assertions.end());
  bool any_false = false;
  for (ExprRef a : assertions) {
    if (a->IsConst(0)) any_false = true;
  }
  if (any_false) {
    result.status = SolveStatus::kUnsat;
    result.note = "constant-false assertion";
    return result;
  }
  if (assertions.empty()) {
    result.status = SolveStatus::kSat;
    // Simplification can discharge assertions that still mention
    // variables; the canonical model assigns them like any other path.
    CanonicalizeModel(raw_assertions, &result);
    return result;
  }

  if (ContainsFp(assertions)) {
    FpSearchOptions fp_opts;
    fp_opts.max_iterations = options.fp_iterations;
    fp_opts.seed = options.seed;
    const FpSearchResult fp = FpSearch(assertions, fp_opts);
    if (fp.found) {
      SBCE_CHECK_MSG(AllSatisfied(assertions, fp.model),
                     "FP search returned an invalid model");
      result.status = SolveStatus::kSat;
      result.model = fp.model;
      // No-op today (CanonicalModel skips FP queries) but keeps the
      // contract uniform if mixed queries ever reach this arm.
      CanonicalizeModel(raw_assertions, &result);
    } else {
      result.status = SolveStatus::kUnknown;
      result.note = "fp search budget exhausted";
    }
    return result;
  }

  SatSolver sat(ToSatOptions(options));
  BitBlaster::Options bb_opts;
  bb_opts.max_sat_vars = options.max_sat_vars;
  bb_opts.use_known_bits = options.presolve;
  BitBlaster blaster(&sat, bb_opts);
  for (ExprRef a : assertions) {
    const Status s = blaster.AssertTrue(a);
    if (!s.ok()) {
      result.status = SolveStatus::kUnknown;
      result.note = s.ToString();
      return result;
    }
  }
  const SatStatus st = sat.Solve();
  result.conflicts = sat.conflicts();
  result.sat_vars = static_cast<size_t>(sat.NumVars());
  result.presolve_bits_pinned = blaster.known_bits_pinned();
  switch (st) {
    case SatStatus::kSat: {
      result.status = SolveStatus::kSat;
      result.model = blaster.ExtractAssignment();
      SBCE_CHECK_MSG(AllSatisfied(assertions, result.model),
                     "bit-blaster returned an invalid model");
      CanonicalizeModel(raw_assertions, &result);
      break;
    }
    case SatStatus::kUnsat:
      result.status = SolveStatus::kUnsat;
      break;
    case SatStatus::kUnknown:
      result.status = SolveStatus::kUnknown;
      result.note = "conflict budget exhausted";
      break;
  }
  return result;
}

}  // namespace sbce::solver
