// Search-based floating-point constraint solving.
//
// Substitution note (see DESIGN.md): instead of bit-blasting IEEE-754
// circuits, FP constraints are solved by guided search over candidate bit
// patterns — constant harvesting from the constraint DAG, a special-values
// battery (±0, denormals, ULP neighbourhoods of harvested constants), and
// stochastic hill-climbing on the number of satisfied assertions. This is
// the approach of practical FP solvers like JFS, and it exercises the same
// engine code path the paper's fp_round bomb targets: the solver must find
// a *tiny positive* double absorbed by rounding. The search is incomplete:
// it can return kSat with a verified model or kUnknown, never kUnsat.
#pragma once

#include <cstdint>
#include <span>

#include "src/solver/eval.h"
#include "src/solver/expr.h"

namespace sbce::solver {

struct FpSearchOptions {
  uint64_t max_iterations = 200'000;
  uint64_t seed = 0x5bce;
};

struct FpSearchResult {
  bool found = false;
  Assignment model;
  uint64_t iterations = 0;
};

FpSearchResult FpSearch(std::span<const ExprRef> assertions,
                        const FpSearchOptions& options = FpSearchOptions());

}  // namespace sbce::solver
