#include "src/solver/eval.h"

#include <bit>
#include <cmath>

#include "src/support/bits.h"

namespace sbce::solver {

namespace {

class Evaluator {
 public:
  explicit Evaluator(const Assignment& assignment)
      : assignment_(assignment) {}

  uint64_t Eval(ExprRef e) {
    auto it = cache_.find(e);
    if (it != cache_.end()) return it->second;
    const uint64_t v = Compute(e);
    cache_.emplace(e, v);
    return v;
  }

 private:
  uint64_t Compute(ExprRef e) {
    switch (e->kind) {
      case Kind::kConst:
        return e->cval;
      case Kind::kVar: {
        auto it = assignment_.find(e->name);
        const uint64_t raw = it == assignment_.end() ? 0 : it->second;
        return TruncToWidth(raw, e->width);
      }
      case Kind::kNot:
        return TruncToWidth(~Eval(e->args[0]), e->width);
      case Kind::kNeg:
        return TruncToWidth(~Eval(e->args[0]) + 1, e->width);
      case Kind::kIte:
        return Eval(e->args[0]) ? Eval(e->args[1]) : Eval(e->args[2]);
      case Kind::kConcat:
        return (Eval(e->args[0]) << e->args[1]->width) | Eval(e->args[1]);
      case Kind::kExtract:
        return TruncToWidth(Eval(e->args[0]) >> e->p1, e->width);
      case Kind::kZExt:
        return Eval(e->args[0]);
      case Kind::kSExt:
        return TruncToWidth(SignExtend(Eval(e->args[0]), e->args[0]->width),
                            e->width);
      case Kind::kFAdd:
      case Kind::kFSub:
      case Kind::kFMul:
      case Kind::kFDiv: {
        const double a = std::bit_cast<double>(Eval(e->args[0]));
        const double b = std::bit_cast<double>(Eval(e->args[1]));
        double r = 0;
        switch (e->kind) {
          case Kind::kFAdd: r = a + b; break;
          case Kind::kFSub: r = a - b; break;
          case Kind::kFMul: r = a * b; break;
          case Kind::kFDiv: r = a / b; break;
          default: break;
        }
        return std::bit_cast<uint64_t>(r);
      }
      case Kind::kFEq:
      case Kind::kFLt:
      case Kind::kFLe: {
        const double a = std::bit_cast<double>(Eval(e->args[0]));
        const double b = std::bit_cast<double>(Eval(e->args[1]));
        switch (e->kind) {
          case Kind::kFEq: return a == b;
          case Kind::kFLt: return a < b;
          case Kind::kFLe: return a <= b;
          default: return 0;
        }
      }
      case Kind::kFFromSInt:
        return std::bit_cast<uint64_t>(
            static_cast<double>(static_cast<int64_t>(Eval(e->args[0]))));
      case Kind::kFToSInt: {
        const double d = std::bit_cast<double>(Eval(e->args[0]));
        if (!std::isfinite(d) || d < -9.2233720368547758e18 ||
            d > 9.2233720368547758e18) {
          return 0;
        }
        return static_cast<uint64_t>(static_cast<int64_t>(d));
      }
      default: {
        // All remaining binaries share FoldBinary-compatible semantics;
        // reuse it by routing through a small switch here.
        const uint64_t a = Eval(e->args[0]);
        const uint64_t b = Eval(e->args[1]);
        const unsigned w = e->args[0]->width;
        const uint64_t mask = TruncToWidth(~uint64_t{0}, w);
        const int64_t sa = AsSigned(a, w);
        const int64_t sb = AsSigned(b, w);
        switch (e->kind) {
          case Kind::kAdd: return (a + b) & mask;
          case Kind::kSub: return (a - b) & mask;
          case Kind::kMul: return (a * b) & mask;
          case Kind::kUDiv: return b == 0 ? mask : (a / b);
          case Kind::kURem: return b == 0 ? a : (a % b);
          case Kind::kSDiv: {
            if (b == 0) return sa < 0 ? 1 : mask;
            if (sa == INT64_MIN && sb == -1) return a;
            return static_cast<uint64_t>(sa / sb) & mask;
          }
          case Kind::kSRem: {
            if (b == 0) return a;
            if (sa == INT64_MIN && sb == -1) return 0;
            return static_cast<uint64_t>(sa % sb) & mask;
          }
          case Kind::kAnd: return a & b;
          case Kind::kOr: return a | b;
          case Kind::kXor: return a ^ b;
          case Kind::kShl: return b >= w ? 0 : (a << b) & mask;
          case Kind::kLShr: return b >= w ? 0 : (a >> b);
          case Kind::kAShr:
            return b >= w ? (sa < 0 ? mask : 0)
                          : (static_cast<uint64_t>(sa >> b) & mask);
          case Kind::kEq: return a == b;
          case Kind::kUlt: return a < b;
          case Kind::kSlt: return sa < sb;
          case Kind::kUle: return a <= b;
          case Kind::kSle: return sa <= sb;
          default:
            SBCE_CHECK_MSG(false, "Evaluate: unhandled kind");
            return 0;
        }
      }
    }
  }

  const Assignment& assignment_;
  std::unordered_map<ExprRef, uint64_t> cache_;
};

}  // namespace

uint64_t Evaluate(ExprRef e, const Assignment& assignment) {
  return Evaluator(assignment).Eval(e);
}

bool AllSatisfied(std::span<const ExprRef> assertions,
                  const Assignment& assignment) {
  Evaluator ev(assignment);
  for (ExprRef a : assertions) {
    if (ev.Eval(a) == 0) return false;
  }
  return true;
}

}  // namespace sbce::solver
