#include "src/solver/sat.h"

#include <algorithm>
#include <cmath>

#include "src/support/status.h"

namespace sbce::solver {

int SatSolver::NewVar() {
  SBCE_CHECK_MSG(trail_lim_.empty(), "NewVar above decision level 0");
  const int v = static_cast<int>(assigns_.size());
  assigns_.push_back(0);
  reason_.push_back(kUndef);
  level_.push_back(0);
  activity_.push_back(0);
  phase_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(-1);
  HeapInsert(v);
  return v;
}

void SatSolver::AddClause(std::vector<Lit> lits) {
  // Incremental contract: clauses may only be added at decision level 0.
  // Above level 0 the normalization below would consult assignments that
  // are not permanent and the new watches would not be backtrack-aware.
  SBCE_CHECK_MSG(trail_lim_.empty(), "AddClause above decision level 0");
  if (unsat_) return;
  // Normalize: drop duplicate literals and clauses satisfied at level 0;
  // drop literals false at level 0.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> out;
  for (Lit l : lits) {
    SBCE_CHECK_MSG(LitVar(l) < NumVars(), "literal for unknown var");
    // Tautology p ∨ ¬p (sorted adjacency).
    if (!out.empty() && out.back() == Negate(l)) return;
    const int v = LitValue(l);
    if (v == 1) return;          // already satisfied at level 0
    if (v == 2) continue;        // falsified at level 0: drop literal
    out.push_back(l);
  }
  if (out.empty()) {
    unsat_ = true;
    return;
  }
  if (out.size() == 1) {
    Enqueue(out[0], kUndef);
    if (Propagate() != -1) unsat_ = true;
    return;
  }
  Clause c;
  c.lits = std::move(out);
  clauses_.push_back(std::move(c));
  AttachClause(static_cast<int>(clauses_.size()) - 1);
}

void SatSolver::AttachClause(int ci) {
  const auto& lits = clauses_[ci].lits;
  watches_[Negate(lits[0])].push_back(ci);
  watches_[Negate(lits[1])].push_back(ci);
}

void SatSolver::Enqueue(Lit l, int reason) {
  const int var = LitVar(l);
  SBCE_CHECK(assigns_[var] == 0);
  assigns_[var] = LitNegated(l) ? 2 : 1;
  reason_[var] = reason;
  level_[var] = static_cast<int>(trail_lim_.size());
  phase_[var] = LitNegated(l) ? 0 : 1;
  trail_.push_back(l);
}

int SatSolver::Propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++propagations_;
    auto& watch_list = watches_[p];
    size_t keep = 0;
    for (size_t wi = 0; wi < watch_list.size(); ++wi) {
      const int ci = watch_list[wi];
      auto& lits = clauses_[ci].lits;
      // Ensure the falsified literal is lits[1].
      const Lit false_lit = Negate(p);
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      // If the first watch is true, the clause is satisfied.
      if (LitValue(lits[0]) == 1) {
        watch_list[keep++] = ci;
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (size_t k = 2; k < lits.size(); ++k) {
        if (LitValue(lits[k]) != 2) {
          std::swap(lits[1], lits[k]);
          watches_[Negate(lits[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // removed from this watch list
      // Clause is unit or conflicting.
      watch_list[keep++] = ci;
      if (LitValue(lits[0]) == 2) {
        // Conflict: restore untouched suffix of the watch list.
        for (size_t rest = wi + 1; rest < watch_list.size(); ++rest) {
          watch_list[keep++] = watch_list[rest];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
      Enqueue(lits[0], ci);
    }
    watch_list.resize(keep);
  }
  return -1;
}

void SatSolver::BumpVar(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > 1e100) {
    // Uniform rescale preserves the relative order, so heap positions
    // stay valid.
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[var] >= 0) HeapUp(static_cast<size_t>(heap_pos_[var]));
}

void SatSolver::BumpClause(int ci) {
  Clause& c = clauses_[ci];
  if (!c.learnt) return;
  c.activity += cla_inc_;
  if (c.activity > 1e20) {
    for (auto& cl : clauses_) {
      if (cl.learnt) cl.activity *= 1e-20;
    }
    cla_inc_ *= 1e-20;
  }
}

void SatSolver::DecayActivities() {
  var_inc_ /= options_.var_decay;
  cla_inc_ /= options_.clause_decay;
}

double SatSolver::clause_activity_sum() const {
  double sum = 0;
  for (const auto& c : clauses_) {
    if (c.learnt) sum += c.activity;
  }
  return sum;
}

void SatSolver::Analyze(int conflict, std::vector<Lit>* learnt,
                        int* backtrack_level, uint32_t* lbd) {
  learnt->clear();
  learnt->push_back(0);  // placeholder for the asserting literal
  const int current_level = static_cast<int>(trail_lim_.size());
  int counter = 0;
  Lit p = -1;
  size_t index = trail_.size();
  int ci = conflict;

  do {
    SBCE_CHECK(ci != kUndef);
    BumpClause(ci);
    const auto& lits = clauses_[ci].lits;
    for (size_t k = (p == -1 ? 0 : 1); k < lits.size(); ++k) {
      const Lit q = lits[k];
      const int v = LitVar(q);
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        BumpVar(v);
        if (level_[v] >= current_level) {
          ++counter;
        } else {
          learnt->push_back(q);
        }
      }
    }
    // Select next literal to look at.
    while (!seen_[LitVar(trail_[index - 1])]) --index;
    --index;
    p = trail_[index];
    ci = reason_[LitVar(p)];
    seen_[LitVar(p)] = 0;
    --counter;
  } while (counter > 0);
  (*learnt)[0] = Negate(p);

  // Find backtrack level: max level among the other literals.
  *backtrack_level = 0;
  size_t max_i = 1;
  for (size_t i = 1; i < learnt->size(); ++i) {
    const int lv = level_[LitVar((*learnt)[i])];
    if (lv > *backtrack_level) {
      *backtrack_level = lv;
      max_i = i;
    }
  }
  if (learnt->size() > 1) std::swap((*learnt)[1], (*learnt)[max_i]);

  // LBD = number of distinct decision levels among the learnt literals
  // (learnt[0] sits at the conflict level).
  lbd_levels_.clear();
  lbd_levels_.push_back(current_level);
  for (size_t i = 1; i < learnt->size(); ++i) {
    lbd_levels_.push_back(level_[LitVar((*learnt)[i])]);
  }
  std::sort(lbd_levels_.begin(), lbd_levels_.end());
  lbd_levels_.erase(std::unique(lbd_levels_.begin(), lbd_levels_.end()),
                    lbd_levels_.end());
  *lbd = static_cast<uint32_t>(lbd_levels_.size());

  for (size_t i = 1; i < learnt->size(); ++i) {
    seen_[LitVar((*learnt)[i])] = 0;
  }
}

void SatSolver::Backtrack(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) return;
  const size_t bound = trail_lim_[target_level];
  for (size_t i = trail_.size(); i > bound; --i) {
    const int var = LitVar(trail_[i - 1]);
    assigns_[var] = 0;
    reason_[var] = kUndef;
    HeapInsert(var);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

void SatSolver::HeapSwap(size_t i, size_t j) {
  std::swap(heap_[i], heap_[j]);
  heap_pos_[heap_[i]] = static_cast<int>(i);
  heap_pos_[heap_[j]] = static_cast<int>(j);
}

void SatSolver::HeapUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!VarOrderBefore(heap_[i], heap_[parent])) break;
    HeapSwap(i, parent);
    i = parent;
  }
}

void SatSolver::HeapDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    if (left >= n) break;
    const size_t right = left + 1;
    size_t best = left;
    if (right < n && VarOrderBefore(heap_[right], heap_[left])) best = right;
    if (!VarOrderBefore(heap_[best], heap_[i])) break;
    HeapSwap(i, best);
    i = best;
  }
}

void SatSolver::HeapInsert(int var) {
  if (heap_pos_[var] >= 0) return;  // already queued
  heap_pos_[var] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  HeapUp(heap_.size() - 1);
}

int SatSolver::HeapPopBest() {
  // Lazy deletion: assigned variables stay queued until popped here.
  while (!heap_.empty()) {
    const int var = heap_[0];
    HeapSwap(0, heap_.size() - 1);
    heap_.pop_back();
    heap_pos_[var] = -1;
    if (!heap_.empty()) HeapDown(0);
    if (assigns_[var] == 0) return var;
  }
  return kUndef;
}

Lit SatSolver::PickBranchLit() {
  const int best = HeapPopBest();
  if (best == kUndef) return -1;
  return MkLit(best, phase_[best] == 0);
}

uint64_t SatSolver::Luby(uint64_t x) {
  // Luby sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's recurrence).
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x %= size;
  }
  return uint64_t{1} << seq;
}

void SatSolver::ReduceDb() {
  // Called at a restart boundary (decision level 0). Every trail literal
  // is a level-0 fact whose reason is never consulted again (Analyze only
  // resolves on vars above level 0), so clause indices stored there can
  // be dropped before compaction instead of remapped.
  SBCE_CHECK(trail_lim_.empty());
  for (Lit l : trail_) reason_[LitVar(l)] = kUndef;

  // Candidates: learnt, longer than binary, not glue (lbd > 2). Sort the
  // worst first — high LBD, then low activity, then insertion order so
  // the pass is deterministic.
  std::vector<int> candidates;
  for (int ci = 0; ci < static_cast<int>(clauses_.size()); ++ci) {
    const Clause& c = clauses_[ci];
    if (c.learnt && c.lits.size() > 2 && c.lbd > 2) candidates.push_back(ci);
  }
  if (candidates.empty()) return;
  std::sort(candidates.begin(), candidates.end(), [this](int a, int b) {
    const Clause& ca = clauses_[a];
    const Clause& cb = clauses_[b];
    if (ca.lbd != cb.lbd) return ca.lbd > cb.lbd;
    if (ca.activity != cb.activity) return ca.activity < cb.activity;
    return a < b;
  });

  std::vector<uint8_t> remove(clauses_.size(), 0);
  const size_t drop = candidates.size() / 2;
  for (size_t i = 0; i < drop; ++i) remove[candidates[i]] = 1;
  if (drop == 0) return;

  // Compact the clause arena and rebuild the watch lists. Watches always
  // sit on lits[0]/lits[1] (Propagate maintains that), so re-attachment
  // reproduces the exact watch structure for the survivors.
  std::vector<Clause> kept;
  kept.reserve(clauses_.size() - drop);
  for (size_t ci = 0; ci < clauses_.size(); ++ci) {
    if (!remove[ci]) kept.push_back(std::move(clauses_[ci]));
  }
  clauses_ = std::move(kept);
  for (auto& wl : watches_) wl.clear();
  for (int ci = 0; ci < static_cast<int>(clauses_.size()); ++ci) {
    AttachClause(ci);
  }

  learnt_count_ -= drop;
  learnts_removed_ += drop;
  ++db_reductions_;
  reduce_limit_ += reduce_limit_ / 2;
}

SatStatus SatSolver::Solve(std::span<const Lit> assumptions) {
  last_solve_conflicts_ = 0;
  if (unsat_) return SatStatus::kUnsat;
  SBCE_CHECK_MSG(trail_lim_.empty(), "Solve entered above decision level 0");
  if (Propagate() != -1) {
    unsat_ = true;
    return SatStatus::kUnsat;
  }

  const uint64_t start_conflicts = conflicts_;
  uint64_t restart_round = 0;
  uint64_t conflicts_until_restart =
      options_.restart_base * Luby(restart_round);
  uint64_t conflicts_this_round = 0;
  std::vector<Lit> learnt;
  // Every exit path runs through here: snapshot per-call cost, then
  // restore level 0 so the solver is immediately reusable.
  const auto finish = [&](SatStatus status) {
    last_solve_conflicts_ = conflicts_ - start_conflicts;
    Backtrack(0);
    return status;
  };

  while (true) {
    const int conflict = Propagate();
    if (conflict != -1) {
      ++conflicts_;
      ++conflicts_this_round;
      if (trail_lim_.empty()) {
        // Conflict with no decisions or assumptions on the trail: the
        // clause set itself is unsatisfiable, permanently.
        unsat_ = true;
        return finish(SatStatus::kUnsat);
      }
      if (conflicts_ - start_conflicts >= options_.max_conflicts) {
        return finish(SatStatus::kUnknown);
      }
      int back_level = 0;
      uint32_t lbd = 0;
      Analyze(conflict, &learnt, &back_level, &lbd);
      Backtrack(back_level);
      if (learnt.size() == 1) {
        Enqueue(learnt[0], kUndef);
      } else {
        Clause c;
        c.lits = learnt;
        c.learnt = true;
        c.activity = cla_inc_;
        c.lbd = lbd;
        clauses_.push_back(std::move(c));
        ++learnt_count_;
        const int ci = static_cast<int>(clauses_.size()) - 1;
        AttachClause(ci);
        Enqueue(learnt[0], ci);
      }
      DecayActivities();
      continue;
    }
    if (conflicts_this_round >= conflicts_until_restart) {
      conflicts_this_round = 0;
      conflicts_until_restart =
          options_.restart_base * Luby(++restart_round);
      Backtrack(0);
      if (options_.reduce_db && learnt_count_ >= reduce_limit_) ReduceDb();
      continue;
    }
    // Place pending assumptions as decisions before free decisions.
    // Restarts drop them from the trail; they are replayed here.
    Lit next = -1;
    while (trail_lim_.size() < assumptions.size()) {
      const Lit a = assumptions[trail_lim_.size()];
      const int value = LitValue(a);
      if (value == 1) {
        // Already true: open a dummy level so the level→assumption
        // correspondence stays aligned.
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        continue;
      }
      if (value == 2) {
        // An assumption is falsified by the formula (plus earlier
        // assumptions): unsatisfiable under these assumptions, but the
        // clause set itself stays usable.
        return finish(SatStatus::kUnsat);
      }
      next = a;
      break;
    }
    if (next == -1) {
      next = PickBranchLit();
      if (next == -1) {
        // Total assignment: snapshot it before the exit path unwinds the
        // trail.
        model_.assign(assigns_.begin(), assigns_.end());
        return finish(SatStatus::kSat);
      }
    }
    ++decisions_;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    Enqueue(next, kUndef);
  }
}

}  // namespace sbce::solver
