#include "src/solver/sat.h"

#include <algorithm>
#include <cmath>

#include "src/support/status.h"

namespace sbce::solver {

int SatSolver::NewVar() {
  const int v = static_cast<int>(assigns_.size());
  assigns_.push_back(0);
  reason_.push_back(kUndef);
  level_.push_back(0);
  activity_.push_back(0);
  phase_.push_back(0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

void SatSolver::AddClause(std::vector<Lit> lits) {
  if (unsat_) return;
  // Normalize: drop duplicate literals and clauses satisfied at level 0;
  // drop literals false at level 0.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> out;
  for (Lit l : lits) {
    SBCE_CHECK_MSG(LitVar(l) < NumVars(), "literal for unknown var");
    // Tautology p ∨ ¬p (sorted adjacency).
    if (!out.empty() && out.back() == Negate(l)) return;
    const int v = LitValue(l);
    if (v == 1) return;          // already satisfied at level 0
    if (v == 2) continue;        // falsified at level 0: drop literal
    out.push_back(l);
  }
  if (out.empty()) {
    unsat_ = true;
    return;
  }
  if (out.size() == 1) {
    Enqueue(out[0], kUndef);
    if (Propagate() != -1) unsat_ = true;
    return;
  }
  Clause c;
  c.lits = std::move(out);
  clauses_.push_back(std::move(c));
  AttachClause(static_cast<int>(clauses_.size()) - 1);
}

void SatSolver::AttachClause(int ci) {
  const auto& lits = clauses_[ci].lits;
  watches_[Negate(lits[0])].push_back(ci);
  watches_[Negate(lits[1])].push_back(ci);
}

void SatSolver::Enqueue(Lit l, int reason) {
  const int var = LitVar(l);
  SBCE_CHECK(assigns_[var] == 0);
  assigns_[var] = LitNegated(l) ? 2 : 1;
  reason_[var] = reason;
  level_[var] = static_cast<int>(trail_lim_.size());
  phase_[var] = LitNegated(l) ? 0 : 1;
  trail_.push_back(l);
}

int SatSolver::Propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++propagations_;
    auto& watch_list = watches_[p];
    size_t keep = 0;
    for (size_t wi = 0; wi < watch_list.size(); ++wi) {
      const int ci = watch_list[wi];
      auto& lits = clauses_[ci].lits;
      // Ensure the falsified literal is lits[1].
      const Lit false_lit = Negate(p);
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      // If the first watch is true, the clause is satisfied.
      if (LitValue(lits[0]) == 1) {
        watch_list[keep++] = ci;
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (size_t k = 2; k < lits.size(); ++k) {
        if (LitValue(lits[k]) != 2) {
          std::swap(lits[1], lits[k]);
          watches_[Negate(lits[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // removed from this watch list
      // Clause is unit or conflicting.
      watch_list[keep++] = ci;
      if (LitValue(lits[0]) == 2) {
        // Conflict: restore untouched suffix of the watch list.
        for (size_t rest = wi + 1; rest < watch_list.size(); ++rest) {
          watch_list[keep++] = watch_list[rest];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
      Enqueue(lits[0], ci);
    }
    watch_list.resize(keep);
  }
  return -1;
}

void SatSolver::BumpVar(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
}

void SatSolver::DecayActivities() { var_inc_ /= options_.var_decay; }

void SatSolver::Analyze(int conflict, std::vector<Lit>* learnt,
                        int* backtrack_level) {
  learnt->clear();
  learnt->push_back(0);  // placeholder for the asserting literal
  const int current_level = static_cast<int>(trail_lim_.size());
  int counter = 0;
  Lit p = -1;
  size_t index = trail_.size();
  int ci = conflict;

  do {
    SBCE_CHECK(ci != kUndef);
    const auto& lits = clauses_[ci].lits;
    for (size_t k = (p == -1 ? 0 : 1); k < lits.size(); ++k) {
      const Lit q = lits[k];
      const int v = LitVar(q);
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        BumpVar(v);
        if (level_[v] >= current_level) {
          ++counter;
        } else {
          learnt->push_back(q);
        }
      }
    }
    // Select next literal to look at.
    while (!seen_[LitVar(trail_[index - 1])]) --index;
    --index;
    p = trail_[index];
    ci = reason_[LitVar(p)];
    seen_[LitVar(p)] = 0;
    --counter;
  } while (counter > 0);
  (*learnt)[0] = Negate(p);

  // Find backtrack level: max level among the other literals.
  *backtrack_level = 0;
  size_t max_i = 1;
  for (size_t i = 1; i < learnt->size(); ++i) {
    const int lv = level_[LitVar((*learnt)[i])];
    if (lv > *backtrack_level) {
      *backtrack_level = lv;
      max_i = i;
    }
  }
  if (learnt->size() > 1) std::swap((*learnt)[1], (*learnt)[max_i]);
  for (size_t i = 1; i < learnt->size(); ++i) {
    seen_[LitVar((*learnt)[i])] = 0;
  }
}

void SatSolver::Backtrack(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) return;
  const size_t bound = trail_lim_[target_level];
  for (size_t i = trail_.size(); i > bound; --i) {
    const int var = LitVar(trail_[i - 1]);
    assigns_[var] = 0;
    reason_[var] = kUndef;
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

Lit SatSolver::PickBranchLit() {
  int best = kUndef;
  double best_act = -1;
  for (int v = 0; v < NumVars(); ++v) {
    if (assigns_[v] == 0 && activity_[v] > best_act) {
      best = v;
      best_act = activity_[v];
    }
  }
  if (best == kUndef) return -1;
  return MkLit(best, phase_[best] == 0);
}

uint64_t SatSolver::Luby(uint64_t x) {
  // Luby sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's recurrence).
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x %= size;
  }
  return uint64_t{1} << seq;
}

SatStatus SatSolver::Solve() {
  if (unsat_) return SatStatus::kUnsat;
  if (Propagate() != -1) return SatStatus::kUnsat;

  uint64_t restart_round = 0;
  uint64_t conflicts_until_restart = 100 * Luby(restart_round);
  uint64_t conflicts_this_round = 0;
  std::vector<Lit> learnt;

  while (true) {
    const int conflict = Propagate();
    if (conflict != -1) {
      ++conflicts_;
      ++conflicts_this_round;
      if (trail_lim_.empty()) return SatStatus::kUnsat;
      if (conflicts_ >= options_.max_conflicts) return SatStatus::kUnknown;
      int back_level = 0;
      Analyze(conflict, &learnt, &back_level);
      Backtrack(back_level);
      if (learnt.size() == 1) {
        Enqueue(learnt[0], kUndef);
      } else {
        Clause c;
        c.lits = learnt;
        c.learnt = true;
        clauses_.push_back(std::move(c));
        const int ci = static_cast<int>(clauses_.size()) - 1;
        AttachClause(ci);
        Enqueue(learnt[0], ci);
      }
      DecayActivities();
      continue;
    }
    if (conflicts_this_round >= conflicts_until_restart) {
      conflicts_this_round = 0;
      conflicts_until_restart = 100 * Luby(++restart_round);
      Backtrack(0);
      continue;
    }
    const Lit next = PickBranchLit();
    if (next == -1) return SatStatus::kSat;
    ++decisions_;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    Enqueue(next, kUndef);
  }
}

}  // namespace sbce::solver
