// IncrementalSolver: a warm assumption-based solver session.
//
// The engine's branch-negation rounds produce batches of queries that
// share their entire path-constraint prefix and differ only in the final
// negated branch. CheckSat() stands up a cold SatSolver + BitBlaster per
// query, re-encoding the prefix every time. A session instead keeps one
// solver and one bit-blaster alive across the batch:
//
//   * assertions are simplified into a persistent session pool, so the
//     hash-consed prefix of query N+1 is pointer-identical to query N's
//     and the bit-blaster's structural cache reuses its circuitry;
//   * every distinct assertion gets its own guard literal g, added once
//     as the clause {¬g, root} and remembered for the whole session; a
//     query is decided with Solve(assumptions = the guards of its
//     assertions). Because the shared prefix keeps the *same* guards in
//     every query, clauses learned refuting or propagating the prefix
//     mention those guards and stay active for every later query — the
//     session reuses search, not just circuitry. The permanent clause set
//     (circuit definitions + guarded roots) is always satisfiable by
//     setting every guard false, so the solver never becomes permanently
//     UNSAT on behalf of one query;
//   * circuit-budget or unsupported-kind failures reset the session and
//     fall back to the cold path for that query, preserving CheckSat's
//     outcome contract.
//
// A session is single-threaded; the pipeline creates one per
// variable-connected task group (see pipeline.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "src/solver/bitblast.h"
#include "src/solver/expr.h"
#include "src/solver/sat.h"
#include "src/solver/solver.h"

namespace sbce::solver {

class IncrementalSolver {
 public:
  struct Stats {
    uint64_t solves = 0;          // queries answered by the warm session
    uint64_t cold_fallbacks = 0;  // queries rerouted to cold CheckSat
    uint64_t session_resets = 0;  // sessions torn down (budget/unsupported)
  };

  explicit IncrementalSolver(const SolverOptions& options)
      : options_(options) {}

  /// Decides the conjunction of `assertions` (each 1-bit), with the same
  /// outcome contract as CheckSat(): kSat models are evaluator-validated,
  /// kUnknown carries a budget note. `conflicts`/`sat_vars` report the
  /// *per-query* cost (conflicts spent in this Solve, variables added by
  /// this query's encoding).
  SolveResult Solve(std::span<const ExprRef> assertions);

  const Stats& stats() const { return stats_; }

 private:
  struct Session {
    explicit Session(const SolverOptions& options)
        : sat(ToSatOptions(options)),
          blaster(&sat,
                  BitBlaster::Options{options.max_sat_vars,
                                      options.presolve}) {}
    ExprPool pool;
    SatSolver sat;
    BitBlaster blaster;
    // Per-assertion guard literals, keyed by the hash-consed node in
    // `pool` — a repeated assertion reuses its guard (and its encoding).
    std::unordered_map<ExprRef, Lit> guards;
  };

  Session& EnsureSession();
  void ResetSession();

  SolverOptions options_;
  Stats stats_;
  std::unique_ptr<Session> session_;
};

}  // namespace sbce::solver
