// Bit-blaster: lowers bitvector expressions to CNF over a SatSolver.
//
// Every expression becomes a vector of literals (LSB first). Gates are
// Tseitin-encoded with structural caching, so shared DAG nodes share
// circuitry. Floating-point kinds are rejected — those route to the
// search-based FP solver instead (see fpsolver.h).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/solver/eval.h"
#include "src/solver/expr.h"
#include "src/solver/sat.h"

namespace sbce::solver {

class BitBlaster {
 public:
  struct Options {
    /// Hard cap on allocated SAT variables (circuit-size budget); blasting
    /// past it returns kResourceExhausted.
    size_t max_sat_vars = 2'000'000;
    /// Substitute constant literals for bits the known-bits/interval
    /// analysis (absdomain.h) proves, after each node is encoded. Known
    /// bits are context-free facts (they hold for every assignment), so
    /// the substitution preserves both satisfiability and models while
    /// letting downstream gates constant-fold away.
    bool use_known_bits = false;
  };

  BitBlaster(SatSolver* sat, Options options) : sat_(*sat), options_(options) {}
  explicit BitBlaster(SatSolver* sat) : BitBlaster(sat, Options{}) {}

  /// Asserts that 1-bit expression `e` is true.
  Status AssertTrue(ExprRef e);

  /// Lowers 1-bit expression `e` to a single literal without asserting it.
  /// The structural cache persists, so repeated calls over assertions that
  /// share a prefix encode the common circuitry exactly once — the basis
  /// for incremental sessions (see incremental.h).
  Result<Lit> BlastBit(ExprRef e);

  /// Asserts `guard → e` (clause {¬guard, root}). Solving under the
  /// assumption `guard` then enforces `e` for that call only; asserting
  /// the unit {¬guard} afterwards retires the assertion permanently.
  Status AssertGuarded(Lit guard, ExprRef e);

  /// After a kSat Solve(), reads back the values of all blasted variables.
  Assignment ExtractAssignment() const;

  size_t gate_count() const { return gates_; }
  /// Literals replaced by constants via Options::use_known_bits.
  uint64_t known_bits_pinned() const { return known_bits_pinned_; }

 private:
  using Bits = std::vector<Lit>;

  Lit TrueLit();
  Lit FalseLit() { return Negate(TrueLit()); }
  Lit FreshVar() { return MkLit(sat_.NewVar()); }

  bool IsTrue(Lit l) const { return l == true_lit_; }
  bool IsFalse(Lit l) const { return l == Negate(true_lit_); }
  bool IsConstLit(Lit l) const { return IsTrue(l) || IsFalse(l); }

  Lit MkAnd(Lit a, Lit b);
  Lit MkOr(Lit a, Lit b) { return Negate(MkAnd(Negate(a), Negate(b))); }
  Lit MkXor(Lit a, Lit b);
  Lit MkMux(Lit sel, Lit then_l, Lit else_l);
  Lit MkOrReduce(const Bits& bits);

  /// sum/carry of a full adder.
  std::pair<Lit, Lit> FullAdder(Lit a, Lit b, Lit c);
  /// Returns a+b (+cin) truncated to a.size(), and the carry out.
  std::pair<Bits, Lit> AddVec(const Bits& a, const Bits& b, Lit cin);
  Bits NegVec(const Bits& a);
  Bits MuxVec(Lit sel, const Bits& then_v, const Bits& else_v);
  Lit UltGate(const Bits& a, const Bits& b);   // a < b unsigned
  Lit SltGate(const Bits& a, const Bits& b);   // a < b signed
  Lit EqGate(const Bits& a, const Bits& b);
  Bits MulVec(const Bits& a, const Bits& b);
  /// Unsigned restoring division; returns {quotient, remainder} with
  /// SMT-LIB divide-by-zero semantics already applied.
  std::pair<Bits, Bits> UDivVec(const Bits& a, const Bits& b);
  enum class ShiftKind { kShl, kLShr, kAShr };
  Bits ShiftVec(const Bits& a, const Bits& amount, ShiftKind kind);

  Result<Bits> Blast(ExprRef e);

  SatSolver& sat_;
  Options options_;
  Lit true_lit_ = -1;
  size_t gates_ = 0;
  uint64_t known_bits_pinned_ = 0;
  std::unordered_map<ExprRef, Bits> cache_;
  std::unordered_map<uint64_t, Lit> and_cache_;
  std::unordered_map<uint64_t, Lit> xor_cache_;
  std::vector<std::pair<ExprRef, Bits>> var_bits_;  // for model extraction
};

}  // namespace sbce::solver
