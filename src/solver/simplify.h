// Expression simplification beyond the builders' constant folding.
//
// A bottom-up rewriting pass over the DAG. The builders in ExprPool already
// fold constants and trivial identities at construction time; this pass
// adds the rules that only pay off on *composed* expressions — solving
// equalities against constants, collapsing cast chains, boolean ITE
// patterns, and the ZExt-compare plumbing the trace executor generates for
// every branch condition. Simplification happens before bit-blasting, so
// smaller circuits reach the SAT core.
#pragma once

#include <span>
#include <vector>

#include "src/solver/expr.h"

namespace sbce::solver {

/// Returns a semantically equivalent (often smaller) expression built in
/// the same pool. Idempotent.
ExprRef Simplify(ExprPool* pool, ExprRef e);

/// Simplifies each assertion; drops literal-true entries. A literal-false
/// input is preserved (callers detect unsatisfiability from it).
std::vector<ExprRef> SimplifyAll(ExprPool* pool,
                                 std::span<const ExprRef> assertions);

}  // namespace sbce::solver
