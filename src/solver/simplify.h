// Expression simplification beyond the builders' constant folding.
//
// A bottom-up rewriting pass over the DAG. The builders in ExprPool already
// fold constants and trivial identities at construction time; this pass
// adds the rules that only pay off on *composed* expressions — solving
// equalities against constants, collapsing cast chains, boolean ITE
// patterns, and the ZExt-compare plumbing the trace executor generates for
// every branch condition. Simplification happens before bit-blasting, so
// smaller circuits reach the SAT core.
#pragma once

#include <span>
#include <vector>

#include "src/solver/expr.h"

namespace sbce::solver {

struct SimplifyOptions {
  // Enable the absdomain-backed rules: folding any node whose abstract
  // value is a single concrete value (which subsumes comparison folding
  // against disjoint intervals), kAnd/kOr absorption via known bits, and
  // cast-chain narrowing (sext -> zext / signed -> unsigned compares when
  // the sign bit is provably clear). All facts used are context-free, so
  // the rewrites are sound wherever a shared node appears.
  bool use_ranges = false;
  // When set, incremented once per range-rule rewrite applied.
  uint64_t* range_rewrites = nullptr;
};

/// Returns a semantically equivalent (often smaller) expression built in
/// the same pool. Idempotent.
ExprRef Simplify(ExprPool* pool, ExprRef e,
                 const SimplifyOptions& options = SimplifyOptions());

/// Simplifies each assertion; drops literal-true entries. A literal-false
/// input is preserved (callers detect unsatisfiability from it).
std::vector<ExprRef> SimplifyAll(ExprPool* pool,
                                 std::span<const ExprRef> assertions,
                                 const SimplifyOptions& options =
                                     SimplifyOptions());

}  // namespace sbce::solver
