#include "src/solver/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/solver/incremental.h"
#include "src/solver/presolve.h"
#include "src/solver/slice.h"

namespace sbce::solver {

namespace {

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min(hw, 8u);
}

bool IsDefinitive(const SolveResult& r) {
  return r.status == SolveStatus::kSat || r.status == SolveStatus::kUnsat;
}

/// Only conflict-budget exhaustion is worth racing: a different strategy
/// can finish inside the same budget, while circuit-budget and FP-search
/// failures would just fail again.
bool PortfolioEligible(const SolveResult& r) {
  return r.status == SolveStatus::kUnknown &&
         r.note == "conflict budget exhausted";
}

/// Restricts `model` to the variables reachable from `assertions`. Cached
/// models may carry assignments for unrelated variables; letting those
/// leak into a merged model could clash with another component's
/// assignment of the same name.
Assignment RestrictToVars(const Assignment& model,
                          std::span<const ExprRef> assertions) {
  Assignment out;
  for (ExprRef v : CollectVars(assertions)) {
    if (auto it = model.find(v->name); it != model.end()) {
      out.emplace(it->first, it->second);
    }
  }
  return out;
}

/// Debug-build safety net: re-decides a presolve verdict through the full
/// SAT path (pre-solver off) and checks agreement. A kUnknown reference
/// (budget exhausted) carries no verdict to compare against.
void CrossCheckPresolve(std::span<const ExprRef> assertions,
                        const SolveResult& abs, const SolverOptions& base) {
  SolverOptions full = base;
  full.presolve = false;
  full.presolve_cross_check = false;
  const SolveResult ref = CheckSat(assertions, full);
  if (ref.status == SolveStatus::kUnknown) return;
  SBCE_CHECK_MSG(ref.status == abs.status,
                 "presolve verdict disagrees with the SAT path");
  if (abs.status == SolveStatus::kSat) {
    // The SAT path rewrites its CDCL model through the same canonical scan
    // (CanonicalizeModel), so both sides must have selected one assignment.
    for (const auto& [name, value] : abs.model) {
      auto it = ref.model.find(name);
      SBCE_CHECK_MSG(it == ref.model.end() || it->second == value,
                     "presolve canonical model disagrees with the SAT path");
    }
  }
}

}  // namespace

std::vector<SolverOptions> DefaultPortfolio(const SolverOptions& base) {
  // Alternate 1: direct encoding (skip the algebraic simplifier), greedy
  // VSIDS decay and rapid restarts — favours shallow conflicts.
  SolverOptions aggressive = base;
  aggressive.presimplify = false;
  aggressive.var_decay = 0.85;
  aggressive.restart_base = 50;
  // Alternate 2: patient decay and long restart intervals — favours deep
  // learned-clause reuse.
  SolverOptions patient = base;
  patient.var_decay = 0.99;
  patient.restart_base = 300;
  return {aggressive, patient};
}

QueryPipeline::QueryPipeline(PipelineOptions options)
    : options_(options),
      threads_(ResolveThreads(options.threads)),
      cache_(options.shared_cache != nullptr
                 ? options.shared_cache
                 : std::make_shared<QueryCache>(options.cache)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

std::vector<SolveResult> QueryPipeline::SolveBatch(
    std::span<const Query> queries) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::ScopedSpan span = options_.tracer.Span(
      "solver.batch", {obs::Field::U("queries", queries.size())});
  const QueryCacheStats cache_before = cache_->stats();
  stats_.queries += queries.size();

  // One variable-disjoint component of one query.
  struct SubQuery {
    std::vector<ExprRef> assertions;
    QueryCache::Key key;
    std::optional<SolveResult> resolved;  // answered by cache or pre-solver
    bool presolved = false;  // resolved by the abstract pre-solver
    size_t task = 0;         // into `tasks` when unresolved
  };
  // A deduplicated unit of solve work (shared across the batch).
  struct Task {
    std::vector<ExprRef> assertions;
    QueryCache::Key key;
    SolveResult result;
  };

  std::vector<std::vector<SubQuery>> plan(queries.size());
  std::vector<Task> tasks;
  std::unordered_map<uint64_t, size_t> task_by_digest;
  // Definitive pre-solver verdicts, memoized by component digest: a batch
  // that restates the same component (the concolic prefix-reuse shape)
  // must not re-run refinement + the range scan per repeat.
  std::unordered_map<uint64_t, std::pair<QueryCache::Key, SolveResult>>
      presolved_by_digest;

  // --- Phase 1: slice, consult cache, dedup (serial, input order) -------
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<std::vector<ExprRef>> groups;
    if (options_.solver.slice_independent) {
      groups = SliceByIndependence(queries[qi]);
    } else if (!queries[qi].empty()) {
      groups.push_back(queries[qi]);
    }
    if (groups.size() > 1) ++stats_.sliced_queries;
    for (auto& group : groups) {
      SubQuery sq;
      sq.assertions = std::move(group);
      sq.key = QueryCache::Canonicalize(sq.assertions);
      if (options_.solver.cache_queries) {
        sq.resolved = cache_->Lookup(sq.key, sq.assertions);
      }
      if (!sq.resolved && options_.solver.presolve) {
        // Abstract pre-solve on the cache-missed component. A definitive
        // verdict skips the SAT core entirely; anything else falls through
        // to a normal task. Runs after slicing and the cache lookup, so
        // sliced_queries / cache counters are identical with it disabled.
        auto memo = presolved_by_digest.find(sq.key.digest);
        if (memo != presolved_by_digest.end() &&
            memo->second.first.hashes == sq.key.hashes) {
          ++stats_.presolve_definitive;
          if (memo->second.second.status == SolveStatus::kUnsat) {
            ++stats_.presolve_unsat;
          } else {
            ++stats_.presolve_sat;
          }
          sq.resolved = memo->second.second;
          sq.presolved = true;
        } else {
          PresolveVerdict pv = Presolve(sq.assertions, options_.solver);
          if (pv.definitive) {
            ++stats_.presolve_definitive;
            if (pv.result.status == SolveStatus::kUnsat) {
              ++stats_.presolve_unsat;
            } else {
              ++stats_.presolve_sat;
            }
            if (options_.solver.presolve_cross_check) {
              CrossCheckPresolve(sq.assertions, pv.result, options_.solver);
            }
            presolved_by_digest.emplace(sq.key.digest,
                                        std::make_pair(sq.key, pv.result));
            sq.resolved = std::move(pv.result);
            sq.presolved = true;
          }
        }
      }
      if (!sq.resolved) {
        auto [it, inserted] =
            task_by_digest.try_emplace(sq.key.digest, tasks.size());
        if (inserted || tasks[it->second].key.hashes != sq.key.hashes) {
          // New work — or a digest collision, which must not share a task.
          if (!inserted) it->second = tasks.size();
          Task task;
          task.assertions = sq.assertions;
          task.key = sq.key;
          tasks.push_back(std::move(task));
        }
        sq.task = it->second;
      }
      plan[qi].push_back(std::move(sq));
    }
  }

  // --- Phase 2: solve unresolved components (parallel, pure) ------------
  stats_.subqueries_solved += tasks.size();

  // Group tasks into sessions by variable connectivity. The partition is
  // a pure function of the batch (never of the schedule), so results stay
  // thread-count independent. Tasks sharing variables — a round's
  // branch-negation candidates sharing their whole path prefix — land in
  // one session and are solved serially by a warm IncrementalSolver;
  // isolated tasks take the cold path.
  std::vector<std::vector<size_t>> sessions;
  if (options_.solver.incremental_batch && !tasks.empty()) {
    std::vector<size_t> parent(tasks.size());
    for (size_t t = 0; t < tasks.size(); ++t) parent[t] = t;
    const auto find = [&](size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    std::unordered_map<std::string_view, size_t> var_owner;
    for (size_t t = 0; t < tasks.size(); ++t) {
      for (ExprRef v : CollectVars(tasks[t].assertions)) {
        auto [it, inserted] = var_owner.try_emplace(v->name, t);
        if (!inserted) parent[find(it->second)] = find(t);
      }
    }
    std::unordered_map<size_t, size_t> session_of_root;
    for (size_t t = 0; t < tasks.size(); ++t) {
      const size_t root = find(t);
      auto [it, inserted] = session_of_root.try_emplace(root, sessions.size());
      if (inserted) sessions.emplace_back();
      sessions[it->second].push_back(t);
    }
  } else {
    sessions.resize(tasks.size());
    for (size_t t = 0; t < tasks.size(); ++t) sessions[t].push_back(t);
  }

  std::vector<IncrementalSolver::Stats> session_stats(sessions.size());
  const auto solve_session = [&](size_t s) {
    const std::vector<size_t>& members = sessions[s];
    if (members.size() == 1) {
      // A warm session buys nothing for a lone component.
      const size_t t = members[0];
      tasks[t].result = CheckSat(tasks[t].assertions, options_.solver);
      return;
    }
    IncrementalSolver warm(options_.solver);
    for (const size_t t : members) {
      tasks[t].result = warm.Solve(tasks[t].assertions);
    }
    session_stats[s] = warm.stats();
  };
  if (pool_ && sessions.size() > 1) {
    pool_->ForEachIndex(sessions.size(), solve_session);
  } else {
    for (size_t s = 0; s < sessions.size(); ++s) solve_session(s);
  }
  for (size_t s = 0; s < sessions.size(); ++s) {
    if (sessions[s].size() > 1) ++stats_.incremental_sessions;
    stats_.incremental_solves += session_stats[s].solves;
    stats_.incremental_fallbacks += session_stats[s].cold_fallbacks;
  }

  // --- Phase 2b: portfolio race on budget-exhausted components ----------
  if (options_.solver.portfolio) {
    const std::vector<SolverOptions> alternates =
        options_.portfolio_configs.empty() ? DefaultPortfolio(options_.solver)
                                           : options_.portfolio_configs;
    std::vector<size_t> racing;
    for (size_t t = 0; t < tasks.size(); ++t) {
      if (PortfolioEligible(tasks[t].result)) racing.push_back(t);
    }
    const size_t k = alternates.size();
    if (!racing.empty() && k > 0) {
      struct Attempt {
        SolveResult result;
        bool ran = false;
      };
      std::vector<std::vector<Attempt>> attempts(
          racing.size(), std::vector<Attempt>(k));
      // Per racing task: lowest alternate index known definitive so far
      // (k = none). Only an early-skip hint — commitment below re-derives
      // the winner deterministically.
      std::vector<std::atomic<size_t>> first_definitive(racing.size());
      for (auto& f : first_definitive) f.store(k, std::memory_order_relaxed);

      // Adjacent work items are different configs of the same task, so
      // the pool genuinely races strategies against each other.
      const auto race = [&](size_t item) {
        const size_t ri = item / k;
        const size_t ci = item % k;
        if (first_definitive[ri].load(std::memory_order_acquire) < ci) {
          return;  // a strictly lower config already answered: skip
        }
        Attempt& attempt = attempts[ri][ci];
        attempt.result = CheckSat(tasks[racing[ri]].assertions,
                                  alternates[ci]);
        attempt.ran = true;
        if (IsDefinitive(attempt.result)) {
          size_t cur = first_definitive[ri].load(std::memory_order_relaxed);
          while (ci < cur && !first_definitive[ri].compare_exchange_weak(
                                 cur, ci, std::memory_order_release,
                                 std::memory_order_relaxed)) {
          }
        }
      };
      if (pool_ && racing.size() * k > 1) {
        pool_->ForEachIndex(racing.size() * k, race);
      } else {
        for (size_t item = 0; item < racing.size() * k; ++item) race(item);
      }

      // Commit serially. The winner is the lowest-indexed definitive
      // config; every config at or below it is guaranteed to have run
      // (a run is only skipped when a strictly lower one was definitive),
      // so both the winner and the conflict accounting are pure functions
      // of the batch.
      for (size_t ri = 0; ri < racing.size(); ++ri) {
        SolveResult& primary = tasks[racing[ri]].result;
        size_t winner = k;
        for (size_t ci = 0; ci < k; ++ci) {
          if (attempts[ri][ci].ran && IsDefinitive(attempts[ri][ci].result)) {
            winner = ci;
            break;
          }
        }
        const size_t charged = winner == k ? k : winner + 1;
        stats_.portfolio_runs += charged;
        uint64_t extra_conflicts = 0;
        for (size_t ci = 0; ci < charged; ++ci) {
          extra_conflicts += attempts[ri][ci].result.conflicts;
        }
        if (winner < k) {
          ++stats_.portfolio_rescues;
          SolveResult rescued = std::move(attempts[ri][winner].result);
          rescued.conflicts = primary.conflicts + extra_conflicts;
          primary = std::move(rescued);
        } else {
          primary.conflicts += extra_conflicts;
        }
      }
    }
  }

  for (const Task& task : tasks) {
    stats_.presolve_rewrites += task.result.presolve_rewrites;
    stats_.presolve_bits_pinned += task.result.presolve_bits_pinned;
  }

  // --- Phase 3: merge, validate, commit to cache (serial, input order) --
  std::vector<SolveResult> results(queries.size());
  std::unordered_set<uint64_t> committed;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SolveResult out;
    out.status = SolveStatus::kSat;
    bool unknown = false;
    Assignment merged;
    for (const SubQuery& sq : plan[qi]) {
      const SolveResult& r =
          sq.resolved ? *sq.resolved : tasks[sq.task].result;
      if ((!sq.resolved || sq.presolved) && options_.solver.cache_queries &&
          committed.insert(sq.key.digest).second) {
        // Pre-solver verdicts are cached like solved ones: a repeat of the
        // component replays the verdict instead of re-deriving it.
        cache_->Insert(sq.key, r);
      }
      out.conflicts += r.conflicts;
      out.sat_vars += r.sat_vars;
      switch (r.status) {
        case SolveStatus::kUnsat:
          // One impossible component sinks the conjunction.
          out.status = SolveStatus::kUnsat;
          out.note = r.note;
          break;
        case SolveStatus::kUnknown:
          if (!unknown) {
            unknown = true;
            if (out.status != SolveStatus::kUnsat) out.note = r.note;
          }
          break;
        case SolveStatus::kSat:
          for (const auto& [name, value] :
               RestrictToVars(r.model, sq.assertions)) {
            merged[name] = value;
          }
          break;
      }
    }
    if (out.status == SolveStatus::kSat && unknown) {
      out.status = SolveStatus::kUnknown;
    }
    if (out.status == SolveStatus::kSat) {
      SBCE_CHECK_MSG(AllSatisfied(queries[qi], merged),
                     "query pipeline merged an invalid model");
      out.model = std::move(merged);
    }
    results[qi] = std::move(out);
  }

  stats_.solver_micros += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (options_.tracer.enabled()) {
    const QueryCacheStats cache_after = cache_->stats();
    // Every field here is a pure function of the batch (see the phase-2
    // determinism notes), so traces stay bit-identical across --jobs.
    options_.tracer.Event(
        "solver.batch.done",
        {obs::Field::U("queries", queries.size()),
         obs::Field::U("solved", tasks.size()),
         obs::Field::U("cache_hits", cache_after.hits() - cache_before.hits()),
         obs::Field::U("cache_misses",
                       cache_after.misses - cache_before.misses)});
  }
  return results;
}

SolveResult QueryPipeline::Solve(std::span<const ExprRef> assertions) {
  const Query query(assertions.begin(), assertions.end());
  return SolveBatch({&query, 1}).front();
}

PipelineStats QueryPipeline::stats() const {
  PipelineStats s = stats_;
  const QueryCacheStats c = cache_->stats();
  s.cache_hits = c.hits();
  s.cache_misses = c.misses;
  return s;
}

}  // namespace sbce::solver
