#include "src/solver/pipeline.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/solver/slice.h"

namespace sbce::solver {

namespace {

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min(hw, 8u);
}

/// Restricts `model` to the variables reachable from `assertions`. Cached
/// models may carry assignments for unrelated variables; letting those
/// leak into a merged model could clash with another component's
/// assignment of the same name.
Assignment RestrictToVars(const Assignment& model,
                          std::span<const ExprRef> assertions) {
  Assignment out;
  for (ExprRef v : CollectVars(assertions)) {
    if (auto it = model.find(v->name); it != model.end()) {
      out.emplace(it->first, it->second);
    }
  }
  return out;
}

}  // namespace

QueryPipeline::QueryPipeline(PipelineOptions options)
    : options_(options),
      threads_(ResolveThreads(options.threads)),
      cache_(options.cache) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

std::vector<SolveResult> QueryPipeline::SolveBatch(
    std::span<const Query> queries) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::ScopedSpan span = options_.tracer.Span(
      "solver.batch", {obs::Field::U("queries", queries.size())});
  const QueryCacheStats cache_before = cache_.stats();
  stats_.queries += queries.size();

  // One variable-disjoint component of one query.
  struct SubQuery {
    std::vector<ExprRef> assertions;
    QueryCache::Key key;
    std::optional<SolveResult> resolved;  // answered by the cache
    size_t task = 0;                      // into `tasks` when unresolved
  };
  // A deduplicated unit of solve work (shared across the batch).
  struct Task {
    std::vector<ExprRef> assertions;
    QueryCache::Key key;
    SolveResult result;
  };

  std::vector<std::vector<SubQuery>> plan(queries.size());
  std::vector<Task> tasks;
  std::unordered_map<uint64_t, size_t> task_by_digest;

  // --- Phase 1: slice, consult cache, dedup (serial, input order) -------
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<std::vector<ExprRef>> groups;
    if (options_.solver.slice_independent) {
      groups = SliceByIndependence(queries[qi]);
    } else if (!queries[qi].empty()) {
      groups.push_back(queries[qi]);
    }
    if (groups.size() > 1) ++stats_.sliced_queries;
    for (auto& group : groups) {
      SubQuery sq;
      sq.assertions = std::move(group);
      sq.key = QueryCache::Canonicalize(sq.assertions);
      if (options_.solver.cache_queries) {
        sq.resolved = cache_.Lookup(sq.key, sq.assertions);
      }
      if (!sq.resolved) {
        auto [it, inserted] =
            task_by_digest.try_emplace(sq.key.digest, tasks.size());
        if (inserted || tasks[it->second].key.hashes != sq.key.hashes) {
          // New work — or a digest collision, which must not share a task.
          if (!inserted) it->second = tasks.size();
          Task task;
          task.assertions = sq.assertions;
          task.key = sq.key;
          tasks.push_back(std::move(task));
        }
        sq.task = it->second;
      }
      plan[qi].push_back(std::move(sq));
    }
  }

  // --- Phase 2: solve unresolved components (parallel, pure) ------------
  stats_.subqueries_solved += tasks.size();
  const auto solve_task = [&](size_t t) {
    tasks[t].result = CheckSat(tasks[t].assertions, options_.solver);
  };
  if (pool_ && tasks.size() > 1) {
    pool_->ForEachIndex(tasks.size(), solve_task);
  } else {
    for (size_t t = 0; t < tasks.size(); ++t) solve_task(t);
  }

  // --- Phase 3: merge, validate, commit to cache (serial, input order) --
  std::vector<SolveResult> results(queries.size());
  std::unordered_set<uint64_t> committed;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SolveResult out;
    out.status = SolveStatus::kSat;
    bool unknown = false;
    Assignment merged;
    for (const SubQuery& sq : plan[qi]) {
      const SolveResult& r =
          sq.resolved ? *sq.resolved : tasks[sq.task].result;
      if (!sq.resolved && options_.solver.cache_queries &&
          committed.insert(sq.key.digest).second) {
        cache_.Insert(sq.key, r);
      }
      out.conflicts += r.conflicts;
      out.sat_vars += r.sat_vars;
      switch (r.status) {
        case SolveStatus::kUnsat:
          // One impossible component sinks the conjunction.
          out.status = SolveStatus::kUnsat;
          out.note = r.note;
          break;
        case SolveStatus::kUnknown:
          if (!unknown) {
            unknown = true;
            if (out.status != SolveStatus::kUnsat) out.note = r.note;
          }
          break;
        case SolveStatus::kSat:
          for (const auto& [name, value] :
               RestrictToVars(r.model, sq.assertions)) {
            merged[name] = value;
          }
          break;
      }
    }
    if (out.status == SolveStatus::kSat && unknown) {
      out.status = SolveStatus::kUnknown;
    }
    if (out.status == SolveStatus::kSat) {
      SBCE_CHECK_MSG(AllSatisfied(queries[qi], merged),
                     "query pipeline merged an invalid model");
      out.model = std::move(merged);
    }
    results[qi] = std::move(out);
  }

  stats_.solver_micros += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (options_.tracer.enabled()) {
    const QueryCacheStats cache_after = cache_.stats();
    options_.tracer.Event(
        "solver.batch.done",
        {obs::Field::U("queries", queries.size()),
         obs::Field::U("solved", tasks.size()),
         obs::Field::U("cache_hits", cache_after.hits() - cache_before.hits()),
         obs::Field::U("cache_misses",
                       cache_after.misses - cache_before.misses)});
  }
  return results;
}

SolveResult QueryPipeline::Solve(std::span<const ExprRef> assertions) {
  const Query query(assertions.begin(), assertions.end());
  return SolveBatch({&query, 1}).front();
}

PipelineStats QueryPipeline::stats() const {
  PipelineStats s = stats_;
  const QueryCacheStats c = cache_.stats();
  s.cache_hits = c.hits();
  s.cache_misses = c.misses;
  return s;
}

}  // namespace sbce::solver
