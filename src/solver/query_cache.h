// Solver query cache (KLEE-style counterexample caching).
//
// A query is a conjunction of 1-bit assertions. Queries are canonicalized
// into a sorted, deduplicated set of *structural* hashes — pool-independent
// content hashes over the expression DAG — so the same constraint set
// produces the same key regardless of insertion order, duplication, or
// which ExprPool built the nodes. On top of the exact-match store the cache
// implements the two classic set-relation rules:
//
//   * unsat-subset: if a cached UNSAT assertion set is a subset of the new
//     query, the new query is UNSAT (adding conjuncts cannot fix it).
//   * model reuse: a cached SAT model for any earlier query may happen to
//     satisfy the new conjunction; it is re-validated with the concrete
//     evaluator before being returned, so the "never return an invalid
//     model" invariant of the solver facade is preserved. This also covers
//     the superset→subset rule (a model of a superset satisfies any subset)
//     without needing set-containment bookkeeping.
//
// Verdicts returned by Lookup are always sound: exact SAT hits are
// revalidated too (guarding against hash collisions), and UNKNOWN results
// are never cached (they are budget-dependent, not semantic).
//
// Thread safety: all public methods are mutex-guarded; the parallel
// dispatch pool may consult the cache concurrently. Lookup never mutates
// (no LRU reordering), so cache answers are a pure function of the
// insertion history — the property QueryPipeline relies on for
// deterministic parallel solving.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/solver/eval.h"
#include "src/solver/expr.h"
#include "src/solver/solver.h"

namespace sbce::solver {

/// Pool-independent content hash of an expression DAG: two structurally
/// identical expressions hash equal even when built in different pools.
uint64_t StructuralHash(ExprRef e);

struct QueryCacheStats {
  uint64_t exact_hits = 0;
  uint64_t subset_unsat_hits = 0;
  uint64_t model_reuse_hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;

  uint64_t hits() const {
    return exact_hits + subset_unsat_hits + model_reuse_hits;
  }
};

class QueryCache {
 public:
  struct Options {
    size_t max_entries = 8192;     // stop inserting beyond this
    size_t model_reuse_scan = 64;  // most-recent SAT models tried per miss
    /// Restrict Lookup to rule 1 (exact match). The service layer shares
    /// one cache across engines serving literally identical requests; an
    /// exact hit replays the verdict a previous identical computation
    /// produced, so warm results stay bit-identical to cold ones. The
    /// subset/model-reuse rules are sound but can return a *different*
    /// (still valid) model than the solver would have, which would steer
    /// a warm exploration off the cold path — so shared caches disable
    /// them.
    bool exact_only = false;
  };

  /// Canonical identity of an assertion set.
  struct Key {
    uint64_t digest = 0;           // hash of `hashes`
    std::vector<uint64_t> hashes;  // sorted, deduplicated per-assertion
  };

  QueryCache() = default;
  explicit QueryCache(Options options) : options_(options) {}

  static Key Canonicalize(std::span<const ExprRef> assertions);

  /// Returns a sound verdict for `assertions` if one can be derived from
  /// cached results, nullopt otherwise. A returned SAT result's model is
  /// guaranteed to satisfy `assertions` (evaluator-checked).
  std::optional<SolveResult> Lookup(const Key& key,
                                    std::span<const ExprRef> assertions);

  /// Records a definitive verdict. kUnknown results are ignored.
  void Insert(const Key& key, const SolveResult& result);

  QueryCacheStats stats() const;
  size_t size() const;
  /// Approximate heap footprint of the stored entries (hash vectors plus
  /// models), for the service layer's byte-budgeted admission policy.
  size_t ApproxBytes() const;

 private:
  struct Entry {
    std::vector<uint64_t> hashes;
    SolveStatus status = SolveStatus::kUnknown;
    Assignment model;  // kSat only
  };

  Options options_;
  mutable std::mutex mu_;
  QueryCacheStats stats_;
  std::unordered_map<uint64_t, Entry> entries_;  // digest → entry
  std::vector<uint64_t> unsat_digests_;          // insertion order
  std::vector<uint64_t> sat_digests_;            // insertion order
};

}  // namespace sbce::solver
