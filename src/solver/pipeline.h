// QueryPipeline: the batching layer between the concolic engine and the
// solver facade.
//
// A batch is a list of independent queries (each a conjunction of 1-bit
// assertions) whose answers the caller will consume *in input order* —
// e.g. one round's branch-negation candidates. The pipeline runs three
// strictly separated phases:
//
//   1. Plan (serial):   slice each query into variable-disjoint components
//                       (slice.h), canonicalize each component, consult
//                       the QueryCache, and deduplicate the remaining
//                       components across the whole batch.
//   2. Solve (parallel): unresolved components are grouped into
//                       variable-connected *sessions* (a union-find over
//                       shared variable names — a pure function of the
//                       batch, never of the schedule). A multi-member
//                       session is solved serially, in task order, by one
//                       warm IncrementalSolver so the shared constraint
//                       prefix is encoded once and learned clauses carry
//                       over; singleton sessions take the cold CheckSat
//                       path. Sessions are dispatched across the thread
//                       pool. A 2b sub-phase then races the portfolio
//                       alternates (see below) on any component that
//                       exhausted its conflict budget.
//   3. Commit (serial): in query order, merge component results, validate
//                       merged SAT models with the concrete evaluator, and
//                       insert fresh verdicts into the cache.
//
// Because cache lookups all happen in phase 1 and insertions all happen in
// phase 3 (both in deterministic input order), and phase 2 tasks are pure,
// the results are bit-identical for any thread count — the property the
// engine's "lowest candidate index wins" rule needs to keep exploration
// outcomes independent of scheduling.
//
// Portfolio determinism: alternates are indexed, and a component's answer
// is committed from the *lowest-indexed* configuration that returned a
// definitive (SAT/UNSAT) result — never from "whichever finished first".
// Each configuration run is a pure function of (assertions, config), and a
// run is only skipped when a strictly lower-indexed run already turned out
// definitive — so every configuration at or below the winning index is
// guaranteed to have run, and the winner (plus the conflict accounting,
// which only counts runs at or below the winner) is schedule-independent.
// Results of higher-indexed speculative runs are discarded unobserved.
//
// With `cache_queries`, `slice_independent`, `incremental_batch` and
// `portfolio` all false and threads == 1 the pipeline degenerates to
// calling CheckSat once per query, in order — the pre-pipeline serial
// behaviour (the --baseline contract).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/obs/trace_sink.h"
#include "src/solver/query_cache.h"
#include "src/solver/solver.h"
#include "src/support/thread_pool.h"

namespace sbce::solver {

struct PipelineOptions {
  SolverOptions solver;  // per-component budgets + cache/slice gates
  /// Total solver concurrency including the dispatching thread.
  /// 0 = auto (hardware concurrency capped at 8); 1 = fully serial.
  unsigned threads = 1;
  QueryCache::Options cache;
  /// External query cache shared across pipelines (the service layer's
  /// per-request-digest warm store). Null = pipeline-private cache built
  /// from `cache`. Shared caches should be exact_only (see
  /// QueryCache::Options) so warm results replay cold verdicts exactly.
  std::shared_ptr<QueryCache> shared_cache;
  /// Portfolio alternates raced (in index order) on components whose
  /// primary run exhausted its conflict budget. Empty = DefaultPortfolio
  /// derived from `solver`. Only consulted when solver.portfolio is true.
  std::vector<SolverOptions> portfolio_configs;
  /// Observability: each SolveBatch emits a "solver.batch" span carrying
  /// query/component/cache-delta fields. Empty tracer = no overhead.
  obs::Tracer tracer;
};

struct PipelineStats {
  uint64_t queries = 0;            // queries accepted
  uint64_t sliced_queries = 0;     // ...that split into >1 component
  uint64_t subqueries_solved = 0;  // solver calls actually issued
  uint64_t cache_hits = 0;         // component lookups answered from cache
  uint64_t cache_misses = 0;       // component lookups that missed
  uint64_t solver_micros = 0;      // wall-clock inside SolveBatch
  uint64_t incremental_solves = 0;     // components answered warm
  uint64_t incremental_fallbacks = 0;  // warm components rerouted cold
  uint64_t incremental_sessions = 0;   // warm sessions stood up
  uint64_t portfolio_runs = 0;     // alternate runs charged (deterministic)
  uint64_t portfolio_rescues = 0;  // kUnknown flipped definitive by 2b
  // Abstract pre-solver (presolve.h) counters. Perf-only: they never feed
  // the deterministic result JSON, so runs with the pre-solver on and off
  // stay byte-identical there.
  uint64_t presolve_definitive = 0;   // components decided without SAT
  uint64_t presolve_unsat = 0;        // ...of which abstract refutations
  uint64_t presolve_sat = 0;          // ...of which pinned models
  uint64_t presolve_rewrites = 0;     // range-rule rewrites applied
  uint64_t presolve_bits_pinned = 0;  // literals constant-folded by blaster
};

/// The built-in alternates: (1) direct encoding, aggressive decay and fast
/// restarts; (2) patient decay and long restarts. Budgets are inherited
/// from `base`.
std::vector<SolverOptions> DefaultPortfolio(const SolverOptions& base);

class QueryPipeline {
 public:
  using Query = std::vector<ExprRef>;

  explicit QueryPipeline(PipelineOptions options);

  /// Decides every query; results are returned in input order. Each SAT
  /// result's model satisfies its full original conjunction (validated
  /// with the evaluator, as the facade does).
  std::vector<SolveResult> SolveBatch(std::span<const Query> queries);

  /// Single-query convenience wrapper over SolveBatch.
  SolveResult Solve(std::span<const ExprRef> assertions);

  /// Aggregated counters (pipeline + cache), cumulative over the
  /// pipeline's lifetime.
  PipelineStats stats() const;

  QueryCache& cache() { return *cache_; }
  unsigned threads() const { return threads_; }

 private:
  PipelineOptions options_;
  unsigned threads_ = 1;  // resolved (auto applied)
  std::shared_ptr<QueryCache> cache_;  // private unless options.shared_cache
  PipelineStats stats_;
  std::unique_ptr<ThreadPool> pool_;  // only when threads_ > 1
};

}  // namespace sbce::solver
