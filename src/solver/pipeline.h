// QueryPipeline: the batching layer between the concolic engine and the
// solver facade.
//
// A batch is a list of independent queries (each a conjunction of 1-bit
// assertions) whose answers the caller will consume *in input order* —
// e.g. one round's branch-negation candidates. The pipeline runs three
// strictly separated phases:
//
//   1. Plan (serial):   slice each query into variable-disjoint components
//                       (slice.h), canonicalize each component, consult
//                       the QueryCache, and deduplicate the remaining
//                       components across the whole batch.
//   2. Solve (parallel): every unresolved component is an independent
//                       CheckSat call — a pure function of its assertion
//                       set — dispatched across the thread pool.
//   3. Commit (serial): in query order, merge component results, validate
//                       merged SAT models with the concrete evaluator, and
//                       insert fresh verdicts into the cache.
//
// Because cache lookups all happen in phase 1 and insertions all happen in
// phase 3 (both in deterministic input order), and phase 2 tasks are pure,
// the results are bit-identical for any thread count — the property the
// engine's "lowest candidate index wins" rule needs to keep exploration
// outcomes independent of scheduling.
//
// With `cache_queries` and `slice_independent` both false and threads == 1
// the pipeline degenerates to calling CheckSat once per query, in order —
// the pre-pipeline serial behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/obs/trace_sink.h"
#include "src/solver/query_cache.h"
#include "src/solver/solver.h"
#include "src/support/thread_pool.h"

namespace sbce::solver {

struct PipelineOptions {
  SolverOptions solver;  // per-component budgets + cache/slice gates
  /// Total solver concurrency including the dispatching thread.
  /// 0 = auto (hardware concurrency capped at 8); 1 = fully serial.
  unsigned threads = 1;
  QueryCache::Options cache;
  /// Observability: each SolveBatch emits a "solver.batch" span carrying
  /// query/component/cache-delta fields. Empty tracer = no overhead.
  obs::Tracer tracer;
};

struct PipelineStats {
  uint64_t queries = 0;            // queries accepted
  uint64_t sliced_queries = 0;     // ...that split into >1 component
  uint64_t subqueries_solved = 0;  // CheckSat calls actually issued
  uint64_t cache_hits = 0;         // component lookups answered from cache
  uint64_t cache_misses = 0;       // component lookups that missed
  uint64_t solver_micros = 0;      // wall-clock inside SolveBatch
};

class QueryPipeline {
 public:
  using Query = std::vector<ExprRef>;

  explicit QueryPipeline(PipelineOptions options);

  /// Decides every query; results are returned in input order. Each SAT
  /// result's model satisfies its full original conjunction (validated
  /// with the evaluator, as the facade does).
  std::vector<SolveResult> SolveBatch(std::span<const Query> queries);

  /// Single-query convenience wrapper over SolveBatch.
  SolveResult Solve(std::span<const ExprRef> assertions);

  /// Aggregated counters (pipeline + cache), cumulative over the
  /// pipeline's lifetime.
  PipelineStats stats() const;

  QueryCache& cache() { return cache_; }
  unsigned threads() const { return threads_; }

 private:
  PipelineOptions options_;
  unsigned threads_ = 1;  // resolved (auto applied)
  QueryCache cache_;
  PipelineStats stats_;
  std::unique_ptr<ThreadPool> pool_;  // only when threads_ > 1
};

}  // namespace sbce::solver
