// SmtSolver: the facade the symbolic executor talks to.
//
// Dispatch: pure-bitvector problems are bit-blasted to CNF and decided by
// the CDCL core (sound SAT/UNSAT within the conflict budget); problems
// containing floating-point nodes go to the incomplete search solver
// (SAT-with-model or UNKNOWN). Every SAT model is re-validated with the
// concrete evaluator before being returned — a model that does not
// evaluate true is an internal error, never returned to callers.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/solver/eval.h"
#include "src/solver/expr.h"
#include "src/solver/sat.h"

namespace sbce::solver {

enum class SolveStatus { kSat, kUnsat, kUnknown };

struct SolverOptions {
  uint64_t max_conflicts = 1'000'000;  // CDCL budget (per query)
  size_t max_sat_vars = 2'000'000;     // circuit budget
  uint64_t fp_iterations = 200'000;    // FP search budget
  uint64_t seed = 0x5bce;

  // CDCL strategy knobs, forwarded to SatSolver::Options. Portfolio
  // configurations vary these (see pipeline.h).
  double var_decay = 0.95;
  double clause_decay = 0.999;
  uint64_t restart_base = 100;        // Luby restart unit
  bool reduce_clause_db = true;       // learnt-DB reduction at restarts
  // Run the algebraic simplifier before encoding. Off = direct encoding
  // (a portfolio alternate: skips rewriting, trusts CDCL on raw circuits).
  bool presimplify = true;

  // Query-pipeline gates, honoured by solver::QueryPipeline (CheckSat
  // itself always decides exactly the conjunction it is given). Turning
  // them all off makes the pipeline equivalent to calling CheckSat per
  // query on a cold solver.
  bool cache_queries = true;      // reuse SAT models / UNSAT verdicts
  bool slice_independent = true;  // solve variable-disjoint parts apart
  bool incremental_batch = true;  // warm assumption-based solver sessions
  bool portfolio = true;          // race strategies on kUnknown queries

  // Known-bits + interval pre-solver (absdomain.h / presolve.h). Gates all
  // four integration layers: the pipeline's definitive pre-solve pass, the
  // simplifier's range-aware rules, the bit-blaster's constant-literal
  // substitution, and the engine's negation-planner drops. `--baseline`
  // and `--no-presolve` turn it off (service::ApplyBudgets is the single
  // source of truth for both).
  bool presolve = true;
  // Re-verify every definitive pre-solver verdict against the full
  // bit-blast + CDCL path. Defaults on in debug builds only (it doubles
  // the cost of pre-solved queries); tests may force it in any build.
#ifdef NDEBUG
  bool presolve_cross_check = false;
#else
  bool presolve_cross_check = true;
#endif
};

/// Maps the facade options onto the CDCL core's knobs (shared by the cold
/// path below and the incremental sessions in incremental.cc).
SatSolver::Options ToSatOptions(const SolverOptions& options);

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  Assignment model;       // populated when status == kSat
  uint64_t conflicts = 0; // CDCL conflicts spent
  size_t sat_vars = 0;    // circuit size (0 for FP search)
  std::string note;       // budget / dispatch diagnostics
  // Pre-solver work done while producing this result (perf counters).
  uint64_t presolve_rewrites = 0;     // range-aware simplifier rewrites
  uint64_t presolve_bits_pinned = 0;  // literals constant-folded by blaster
};

/// Decides the conjunction of `assertions` (each must be 1-bit wide).
SolveResult CheckSat(std::span<const ExprRef> assertions,
                     const SolverOptions& options = SolverOptions());

/// Rewrites a kSat result's model to the canonical model of `assertions`
/// (presolve.h) when one is computable within budget; no-op otherwise.
/// Unconditional in every solve path — NOT gated by SolverOptions::presolve
/// — so model selection is a pure function of the assertion vector and the
/// pre-solver's fast path stays observably invisible.
void CanonicalizeModel(std::span<const ExprRef> assertions,
                       SolveResult* result);

}  // namespace sbce::solver
