// Abstract pre-solver: decides queries without bit-blasting when the
// known-bits/interval domain (absdomain.h) suffices.
//
// Two definitive verdicts, both exact:
//   - kUnsat when a forward pass proves some assertion's abstract value
//     excludes 1, when backward refinement (pushing the "must be true"
//     requirement down through comparisons, boolean structure, casts and
//     invertible arithmetic) derives an empty set for any node, or when
//     an exhaustive scan of the refined variable ranges finds no model.
//   - kSat when that scan finds a model: the scan runs in the canonical
//     order (CanonicalModel below), and the full SAT path rewrites its
//     CDCL models through the same scan, so the returned model is
//     byte-identical to what CheckSat would produce.
// Anything else is non-definitive and falls through to the normal path.
//
// Queries containing floating-point nodes are never judged: the FP search
// solver can return kUnknown but never kUnsat, and a pre-solver kUnsat
// there would change observable verdicts versus the full path.
//
// Queries whose estimated circuit size exceeds the caller's max_sat_vars
// budget are never judged either: the full path would abort the bit-blast
// with RESOURCE_EXHAUSTED (kUnknown), and modeled-tool resource failures
// are load-bearing for the paper grids — a pre-solver that answered such
// a query would erase the very outcome the profile exists to reproduce.
#pragma once

#include <optional>
#include <span>

#include "src/solver/eval.h"
#include "src/solver/expr.h"
#include "src/solver/solver.h"

namespace sbce::solver {

struct PresolveVerdict {
  bool definitive = false;
  SolveResult result;  // status kSat (with model) or kUnsat when definitive
};

/// Attempts to decide the conjunction of `assertions` (1-bit each) purely
/// abstractly. Never returns kUnknown verdicts, and never returns ANY
/// verdict for a query the budget-limited full path could refuse: when
/// the circuit estimate exceeds `options.max_sat_vars` the pre-solver
/// declines (PresolveCircuitFits below), so a profile's RESOURCE_EXHAUSTED
/// outcome survives with the pre-solver on. Thread-safe.
PresolveVerdict Presolve(std::span<const ExprRef> assertions,
                         const SolverOptions& options = SolverOptions());

/// Loose upper estimate of the SAT variables a bit-blast of `assertions`
/// would allocate, compared against `max_sat_vars`. Deliberately coarse:
/// it only has to separate the paper-grid failure shape (a ~200k-node
/// crypto DAG under a 60k-150k profile budget) from the small per-branch
/// queries the engine emits; the debug cross-check and the grid identity
/// gates watch the remainder. False = the pre-solver must decline.
bool PresolveCircuitFits(std::span<const ExprRef> assertions,
                         size_t max_sat_vars);

/// The canonical model of `assertions`: the first satisfying assignment in
/// the canonical scan order — variables in CollectVars order, values
/// ascending within each refined range, first variable fastest. nullopt
/// when the query is out of scope (FP, non-1-bit), unsatisfiable, or the
/// refined ranges span too many assignments to scan within budget.
///
/// This is the solver-wide model-selection contract, NOT part of the
/// pre-solver feature gate: CheckSat and IncrementalSolver rewrite every
/// SAT model through it even with SolverOptions::presolve off, which is
/// what lets a pre-solver verdict (computed from the same scan) be
/// byte-identical to the full path's answer. A pure function of the
/// assertion vector. Thread-safe.
std::optional<Assignment> CanonicalModel(std::span<const ExprRef> assertions);

}  // namespace sbce::solver
