// Symbolic expression DAG over fixed-width bitvectors (1..64 bits).
//
// This is the solver's AST (the Z3-analogue substrate). Nodes are immutable
// and hash-consed in an ExprPool, so structural equality is pointer
// equality and DAG sharing is automatic. Booleans are 1-bit bitvectors.
//
// Floating point: FP operations work on 64-bit vectors holding IEEE-754
// double bits. They are evaluated concretely by the evaluator and solved by
// the search-based FP solver (see fpsolver.h); the bit-blaster rejects
// them. This mirrors how practical engines (and the paper's subjects)
// special-case FP rather than bit-blasting IEEE circuits.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/status.h"

namespace sbce::solver {

class AbsMemo;   // absdomain.h: per-pool abstract-value memo
class ExprPool;

enum class Kind : uint8_t {
  kConst,
  kVar,

  // Unary.
  kNot,   // bitwise complement
  kNeg,   // two's complement negation

  // Binary arithmetic / bitwise (operands same width).
  kAdd, kSub, kMul,
  kUDiv, kURem,   // SMT-LIB semantics: x/0 = all-ones, x%0 = x
  kSDiv, kSRem,
  kAnd, kOr, kXor,
  kShl, kLShr, kAShr,  // amount is the full-width second operand

  // Comparisons (1-bit result).
  kEq, kUlt, kSlt, kUle, kSle,

  // Structure.
  kIte,       // args: cond (1-bit), then, else
  kConcat,    // args: hi, lo; width = sum
  kExtract,   // p0 = hi bit, p1 = lo bit
  kZExt,      // width extended with zeros
  kSExt,      // width extended with sign

  // Floating point over 64-bit IEEE double payloads.
  kFAdd, kFSub, kFMul, kFDiv,   // 64-bit results
  kFEq, kFLt, kFLe,             // 1-bit results
  kFFromSInt,  // signed 64-bit int -> double bits
  kFToSInt,    // double bits -> truncated signed 64-bit int
};

struct Expr;
using ExprRef = const Expr*;

struct Expr {
  Kind kind;
  uint8_t width;        // result width in bits (1..64)
  uint8_t nargs = 0;
  uint32_t id = 0;      // dense id within the pool
  uint32_t p0 = 0;      // kExtract: hi bit
  uint32_t p1 = 0;      // kExtract: lo bit
  uint64_t cval = 0;    // kConst payload
  std::array<ExprRef, 3> args{};
  std::string name;     // kVar only
  uint64_t hash = 0;
  // Owning pool, set at intern time. Lets per-pool analyses (the
  // abstract-value memo, the variable-set memo) find their table from a
  // bare ExprRef even in mixed-pool DAGs, where a session pool's nodes
  // reference leaves owned by the engine pool.
  const ExprPool* pool = nullptr;

  bool IsConst() const { return kind == Kind::kConst; }
  bool IsConst(uint64_t v) const { return IsConst() && cval == v; }
  bool IsVar() const { return kind == Kind::kVar; }
};

/// True for kFAdd..kFToSInt.
bool IsFpKind(Kind kind);

/// Human-readable kind name ("add", "ult", ...).
std::string_view KindName(Kind kind);

/// Hash-consing arena. All ExprRefs are owned by (and valid for the life
/// of) the pool that created them.
class ExprPool {
 public:
  ExprPool();
  ~ExprPool();
  ExprPool(const ExprPool&) = delete;
  ExprPool& operator=(const ExprPool&) = delete;

  // --- Leaves -----------------------------------------------------------
  ExprRef Const(uint64_t value, unsigned width);
  ExprRef True() { return Const(1, 1); }
  ExprRef False() { return Const(0, 1); }
  ExprRef Var(std::string_view name, unsigned width);

  // --- Combinators (light constant folding happens here) ----------------
  ExprRef Unary(Kind kind, ExprRef a);
  ExprRef Binary(Kind kind, ExprRef a, ExprRef b);
  ExprRef Ite(ExprRef cond, ExprRef then_e, ExprRef else_e);
  ExprRef Concat(ExprRef hi, ExprRef lo);
  ExprRef Extract(ExprRef a, unsigned hi, unsigned lo);
  ExprRef ZExt(ExprRef a, unsigned width);
  ExprRef SExt(ExprRef a, unsigned width);

  // Convenience wrappers.
  ExprRef Add(ExprRef a, ExprRef b) { return Binary(Kind::kAdd, a, b); }
  ExprRef Sub(ExprRef a, ExprRef b) { return Binary(Kind::kSub, a, b); }
  ExprRef Mul(ExprRef a, ExprRef b) { return Binary(Kind::kMul, a, b); }
  ExprRef And(ExprRef a, ExprRef b) { return Binary(Kind::kAnd, a, b); }
  ExprRef Or(ExprRef a, ExprRef b) { return Binary(Kind::kOr, a, b); }
  ExprRef Xor(ExprRef a, ExprRef b) { return Binary(Kind::kXor, a, b); }
  ExprRef Eq(ExprRef a, ExprRef b) { return Binary(Kind::kEq, a, b); }
  ExprRef Ne(ExprRef a, ExprRef b) { return Not(Eq(a, b)); }
  ExprRef Ult(ExprRef a, ExprRef b) { return Binary(Kind::kUlt, a, b); }
  ExprRef Not(ExprRef a) { return Unary(Kind::kNot, a); }
  ExprRef Neg(ExprRef a) { return Unary(Kind::kNeg, a); }
  /// Boolean AND/OR for 1-bit expressions (same as bitwise at width 1).
  ExprRef BoolAnd(ExprRef a, ExprRef b) { return Binary(Kind::kAnd, a, b); }
  ExprRef BoolOr(ExprRef a, ExprRef b) { return Binary(Kind::kOr, a, b); }

  /// 1-bit → is-nonzero stays itself; wider → (a != 0).
  ExprRef NonZero(ExprRef a);

  size_t size() const { return nodes_.size(); }

  /// The pool's abstract-value memo (see absdomain.h). Entries are keyed
  /// by dense node id and only ever hold values for nodes owned by this
  /// pool. Thread-safe.
  AbsMemo& abs_memo() const { return *abs_memo_; }

  /// Distinct variables reachable from `root` (id order), memoized per
  /// root id so repeated queries over shared DAGs cost one walk total.
  /// `root` must be owned by this pool. The returned vector is immutable
  /// and lives as long as the pool. Thread-safe.
  const std::vector<ExprRef>& VarsOf(ExprRef root) const;

  /// Memo lookup only: the cached variable set for `root`, or nullptr if
  /// it has not been computed yet. Never walks the DAG. Thread-safe.
  const std::vector<ExprRef>* CachedVars(ExprRef root) const;

 private:
  ExprRef Intern(Expr&& node);

  std::vector<std::unique_ptr<Expr>> nodes_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;

  // Per-root variable sets (heap-stable so returned references survive
  // rehash; entries are immutable once published).
  mutable std::mutex vars_mu_;
  mutable std::unordered_map<uint32_t, std::unique_ptr<std::vector<ExprRef>>>
      vars_memo_;
  std::unique_ptr<AbsMemo> abs_memo_;
};

/// Renders `e` as an SMT-LIB-flavoured s-expression (for logs and tests).
std::string ToString(ExprRef e);

/// Collects the distinct variables reachable from `roots` in id order.
std::vector<ExprRef> CollectVars(std::span<const ExprRef> roots);

/// Rebuilds `root` (owned by any pool) inside `pool`. Semantics-preserving;
/// the combinators' light constant folding may shrink the result. Because
/// the target pool hash-conses, importing DAGs that share structure makes
/// the shared part pointer-identical there.
ExprRef ImportInto(ExprPool* pool, ExprRef root);

/// True if any node reachable from `roots` is a floating-point operation.
bool ContainsFp(std::span<const ExprRef> roots);

/// True if `roots` contain floating-point *arithmetic* (add/mul/div,
/// conversions) or FP comparisons over computed operands. FP comparisons
/// whose operands are plain variables/constants do not count: engines
/// without an FP theory still decide those by concretization.
bool ContainsHardFp(std::span<const ExprRef> roots);

/// Number of distinct nodes reachable from `roots`.
size_t DagSize(std::span<const ExprRef> roots);

/// Constant-folds one binary operation over `width`-bit operands with the
/// exact semantics the combinators and the evaluator use (SMT-LIB division
/// by zero, oversized shifts, wrapping overflow). Comparison kinds return
/// 0/1. Exposed so the abstract-domain transfer functions and their oracle
/// tests share the concrete semantics with the builders.
uint64_t FoldBinaryConst(Kind kind, uint64_t a, uint64_t b, unsigned width);

}  // namespace sbce::solver
