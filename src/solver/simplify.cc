#include "src/solver/simplify.h"

#include <unordered_map>

#include "src/solver/absdomain.h"
#include "src/support/bits.h"

namespace sbce::solver {

namespace {

class Simplifier {
 public:
  Simplifier(ExprPool& pool, const SimplifyOptions& options)
      : pool_(pool), options_(options) {}

  ExprRef Walk(ExprRef e) {
    if (auto it = cache_.find(e); it != cache_.end()) return it->second;
    // Rebuild children first (bottom-up).
    ExprRef out = Rebuild(e);
    // Then apply local rules until a fixpoint at this node.
    for (int guard = 0; guard < 8; ++guard) {
      ExprRef next = Rules(out);
      if (next == out) break;
      out = next;
    }
    cache_.emplace(e, out);
    return out;
  }

 private:
  ExprRef Rebuild(ExprRef e) {
    switch (e->nargs) {
      case 0:
        return e;
      case 1: {
        ExprRef a = Walk(e->args[0]);
        if (e->kind == Kind::kExtract) return pool_.Extract(a, e->p0, e->p1);
        if (e->kind == Kind::kZExt) return pool_.ZExt(a, e->width);
        if (e->kind == Kind::kSExt) return pool_.SExt(a, e->width);
        return pool_.Unary(e->kind, a);
      }
      case 2: {
        ExprRef a = Walk(e->args[0]);
        ExprRef b = Walk(e->args[1]);
        if (e->kind == Kind::kConcat) return pool_.Concat(a, b);
        return pool_.Binary(e->kind, a, b);
      }
      default:
        return pool_.Ite(Walk(e->args[0]), Walk(e->args[1]),
                         Walk(e->args[2]));
    }
  }

  /// One round of local rewrite rules; returns `e` when nothing applies.
  ExprRef Rules(ExprRef e) {
    const unsigned w = e->width;
    switch (e->kind) {
      case Kind::kEq: {
        ExprRef a = e->args[0];
        ExprRef b = e->args[1];
        if (!b->IsConst()) break;
        // (a op c1) == c2  →  a == c2 ⊙ c1 for invertible ops.
        if (a->kind == Kind::kAdd && a->args[1]->IsConst()) {
          return pool_.Eq(a->args[0],
                          pool_.Const(b->cval - a->args[1]->cval,
                                      a->width));
        }
        if (a->kind == Kind::kSub && a->args[1]->IsConst()) {
          return pool_.Eq(a->args[0],
                          pool_.Const(b->cval + a->args[1]->cval,
                                      a->width));
        }
        if (a->kind == Kind::kXor && a->args[1]->IsConst()) {
          return pool_.Eq(a->args[0],
                          pool_.Const(b->cval ^ a->args[1]->cval,
                                      a->width));
        }
        if (a->kind == Kind::kNot) {
          return pool_.Eq(a->args[0],
                          pool_.Const(~b->cval, a->width));
        }
        if (a->kind == Kind::kNeg) {
          return pool_.Eq(a->args[0],
                          pool_.Const(~b->cval + 1, a->width));
        }
        // zext(x) == c: either the high bits of c are zero (reduce to the
        // narrow compare) or the equality is impossible.
        if (a->kind == Kind::kZExt) {
          ExprRef inner = a->args[0];
          if (TruncToWidth(b->cval, inner->width) != b->cval) {
            return pool_.False();
          }
          return pool_.Eq(inner, pool_.Const(b->cval, inner->width));
        }
        // 1-bit equalities: x == 1 → x; x == 0 → ¬x.
        if (a->width == 1) {
          return b->cval ? a : pool_.Not(a);
        }
        // ite(c, t, f) == k where t/f are constants: pick the arm.
        if (a->kind == Kind::kIte && a->args[1]->IsConst() &&
            a->args[2]->IsConst()) {
          const bool then_hits = a->args[1]->cval == b->cval;
          const bool else_hits = a->args[2]->cval == b->cval;
          if (then_hits && else_hits) return pool_.True();
          if (then_hits) return a->args[0];
          if (else_hits) return pool_.Not(a->args[0]);
          return pool_.False();
        }
        break;
      }

      case Kind::kNot: {
        ExprRef a = e->args[0];
        // ¬(a == b) over 1-bit operands where b is const: flip.
        if (a->kind == Kind::kEq && a->args[1]->IsConst() &&
            a->args[0]->width == 1) {
          return pool_.Eq(a->args[0],
                          pool_.Const(a->args[1]->cval ^ 1, 1));
        }
        break;
      }

      case Kind::kAdd: {
        // (x + c1) + c2 → x + (c1+c2); normalize const to the right.
        ExprRef a = e->args[0];
        ExprRef b = e->args[1];
        if (a->IsConst() && !b->IsConst()) return pool_.Add(b, a);
        if (b->IsConst() && a->kind == Kind::kAdd &&
            a->args[1]->IsConst()) {
          return pool_.Add(a->args[0],
                           pool_.Const(a->args[1]->cval + b->cval, w));
        }
        break;
      }

      case Kind::kXor: {
        ExprRef a = e->args[0];
        ExprRef b = e->args[1];
        if (a->IsConst() && !b->IsConst()) return pool_.Xor(b, a);
        if (b->IsConst() && a->kind == Kind::kXor &&
            a->args[1]->IsConst()) {
          return pool_.Xor(a->args[0],
                           pool_.Const(a->args[1]->cval ^ b->cval, w));
        }
        break;
      }

      case Kind::kIte: {
        ExprRef c = e->args[0];
        ExprRef t = e->args[1];
        ExprRef f = e->args[2];
        if (w == 1 && t->IsConst() && f->IsConst()) {
          if (t->cval == 1 && f->cval == 0) return c;
          if (t->cval == 0 && f->cval == 1) return pool_.Not(c);
        }
        // ite(¬c, t, f) → ite(c, f, t)
        if (c->kind == Kind::kNot) return pool_.Ite(c->args[0], f, t);
        break;
      }

      case Kind::kZExt: {
        ExprRef a = e->args[0];
        if (a->kind == Kind::kZExt) return pool_.ZExt(a->args[0], w);
        break;
      }

      case Kind::kExtract: {
        ExprRef a = e->args[0];
        // extract from concat: land entirely in one side.
        if (a->kind == Kind::kConcat) {
          ExprRef lo = a->args[1];
          if (e->p0 < lo->width) return pool_.Extract(lo, e->p0, e->p1);
          if (e->p1 >= lo->width) {
            return pool_.Extract(a->args[0], e->p0 - lo->width,
                                 e->p1 - lo->width);
          }
        }
        break;
      }

      case Kind::kUlt:
      case Kind::kUle: {
        // zext(x) < c with c beyond x's range is trivially true; same-width
        // reductions.
        ExprRef a = e->args[0];
        ExprRef b = e->args[1];
        if (a->kind == Kind::kZExt && b->IsConst()) {
          ExprRef inner = a->args[0];
          const uint64_t max_inner =
              TruncToWidth(~uint64_t{0}, inner->width);
          if (b->cval > max_inner) return pool_.True();
          return pool_.Binary(e->kind, inner,
                              pool_.Const(b->cval, inner->width));
        }
        break;
      }

      default:
        break;
    }
    if (options_.use_ranges) {
      ExprRef next = RangeRules(e);
      if (next != e) {
        if (options_.range_rewrites != nullptr) ++*options_.range_rewrites;
        return next;
      }
    }
    return e;
  }

  /// Rules backed by the known-bits/interval analysis. All facts are
  /// context-free, so rewrites hold wherever a shared node appears.
  ExprRef RangeRules(ExprRef e) {
    if (e->IsConst() || e->IsVar() || IsFpKind(e->kind)) return e;
    const unsigned w = e->width;
    const uint64_t mask = TruncToWidth(~uint64_t{0}, w);
    // A node whose abstract value is a single concrete value is that
    // constant. This subsumes comparison folding against disjoint
    // intervals (the compare's abstract value becomes 0 or 1).
    const AbsValue av = AbsOf(e);
    if (av.IsSingleton()) return pool_.Const(av.SingletonValue(), w);
    switch (e->kind) {
      case Kind::kAnd: {
        const AbsValue a = AbsOf(e->args[0]);
        const AbsValue b = AbsOf(e->args[1]);
        // and(a,b) = b when every bit of b is known 0 or a's is known 1.
        if ((mask & ~b.known0 & ~a.known1) == 0) return e->args[1];
        if ((mask & ~a.known0 & ~b.known1) == 0) return e->args[0];
        break;
      }
      case Kind::kOr: {
        const AbsValue a = AbsOf(e->args[0]);
        const AbsValue b = AbsOf(e->args[1]);
        // or(a,b) = b when every bit a could set is already known 1 in b.
        if ((mask & ~b.known1 & ~a.known0) == 0) return e->args[1];
        if ((mask & ~a.known1 & ~b.known0) == 0) return e->args[0];
        break;
      }
      case Kind::kSExt: {
        // Sign bit provably clear: narrow the cast chain to zext (which
        // composes with the zext rules above).
        const AbsValue a = AbsOf(e->args[0]);
        if (GetBit(a.known0, e->args[0]->width - 1)) {
          return pool_.ZExt(e->args[0], w);
        }
        break;
      }
      case Kind::kSlt:
      case Kind::kSle: {
        // Both operands provably non-negative: the signed compare is the
        // unsigned one (which the zext narrowing rules understand).
        const unsigned wa = e->args[0]->width;
        const AbsValue a = AbsOf(e->args[0]);
        const AbsValue b = AbsOf(e->args[1]);
        if (GetBit(a.known0, wa - 1) && GetBit(b.known0, wa - 1)) {
          return pool_.Binary(
              e->kind == Kind::kSlt ? Kind::kUlt : Kind::kUle, e->args[0],
              e->args[1]);
        }
        break;
      }
      default:
        break;
    }
    return e;
  }

  ExprPool& pool_;
  const SimplifyOptions options_;
  std::unordered_map<ExprRef, ExprRef> cache_;
};

}  // namespace

ExprRef Simplify(ExprPool* pool, ExprRef e, const SimplifyOptions& options) {
  return Simplifier(*pool, options).Walk(e);
}

std::vector<ExprRef> SimplifyAll(ExprPool* pool,
                                 std::span<const ExprRef> assertions,
                                 const SimplifyOptions& options) {
  std::vector<ExprRef> out;
  Simplifier simp(*pool, options);
  for (ExprRef a : assertions) {
    ExprRef s = simp.Walk(a);
    if (s->IsConst(1)) continue;  // trivially true
    out.push_back(s);
  }
  return out;
}

}  // namespace sbce::solver
