// Constraint-independence slicing.
//
// Two assertions are dependent when they share a symbolic variable; the
// dependency relation's connected components can be solved separately and
// their models merged, because a conjunction over disjoint variable sets
// is satisfiable iff every component is (and a merged model assigns each
// variable from exactly one component). Slicing is the standard remedy for
// the path-constraint blowup the paper measures: each branch-negation
// query re-states the whole path prefix, but only the component touching
// the negated condition actually changes between queries — the rest are
// cache hits once a QueryCache sits in front of the solver.
#pragma once

#include <span>
#include <vector>

#include "src/solver/expr.h"

namespace sbce::solver {

/// Partitions `assertions` into connected components under the
/// shares-a-variable relation. Deterministic: components are ordered by
/// their first assertion's position, and assertions keep their relative
/// order inside each component. Variable-free assertions (constants) form
/// singleton components. The concatenation of all components is a
/// permutation of the input.
std::vector<std::vector<ExprRef>> SliceByIndependence(
    std::span<const ExprRef> assertions);

}  // namespace sbce::solver
