#include "src/solver/query_cache.h"

#include <algorithm>

#include "src/support/bits.h"

namespace sbce::solver {

namespace {

uint64_t StructuralHashRec(ExprRef e,
                           std::unordered_map<ExprRef, uint64_t>& memo) {
  if (auto it = memo.find(e); it != memo.end()) return it->second;
  // Seed with a constant so leaf hashes differ from raw payloads.
  uint64_t h = HashCombine(0x5bce5bce5bce5bceull,
                           static_cast<uint64_t>(e->kind));
  h = HashCombine(h, e->width);
  h = HashCombine(h, e->p0);
  h = HashCombine(h, e->p1);
  h = HashCombine(h, e->cval);
  if (e->kind == Kind::kVar) {
    h = HashCombine(h, Fnv1a(e->name.data(), e->name.size()));
  }
  for (int i = 0; i < e->nargs; ++i) {
    h = HashCombine(h, StructuralHashRec(e->args[i], memo));
  }
  memo.emplace(e, h);
  return h;
}

/// True iff sorted `small` is a subset of sorted `big` (both deduplicated).
bool SortedSubset(const std::vector<uint64_t>& small,
                  const std::vector<uint64_t>& big) {
  if (small.size() > big.size()) return false;
  size_t j = 0;
  for (uint64_t h : small) {
    while (j < big.size() && big[j] < h) ++j;
    if (j == big.size() || big[j] != h) return false;
    ++j;
  }
  return true;
}

}  // namespace

uint64_t StructuralHash(ExprRef e) {
  std::unordered_map<ExprRef, uint64_t> memo;
  return StructuralHashRec(e, memo);
}

QueryCache::Key QueryCache::Canonicalize(
    std::span<const ExprRef> assertions) {
  Key key;
  key.hashes.reserve(assertions.size());
  std::unordered_map<ExprRef, uint64_t> memo;  // shared across assertions
  for (ExprRef a : assertions) {
    key.hashes.push_back(StructuralHashRec(a, memo));
  }
  std::sort(key.hashes.begin(), key.hashes.end());
  key.hashes.erase(std::unique(key.hashes.begin(), key.hashes.end()),
                   key.hashes.end());
  key.digest = Fnv1a(key.hashes.data(), key.hashes.size() * sizeof(uint64_t));
  return key;
}

std::optional<SolveResult> QueryCache::Lookup(
    const Key& key, std::span<const ExprRef> assertions) {
  std::lock_guard<std::mutex> lk(mu_);

  // 1. Exact match.
  if (auto it = entries_.find(key.digest);
      it != entries_.end() && it->second.hashes == key.hashes) {
    const Entry& entry = it->second;
    if (entry.status == SolveStatus::kUnsat) {
      ++stats_.exact_hits;
      SolveResult r;
      r.status = SolveStatus::kUnsat;
      r.note = "query cache: exact unsat";
      return r;
    }
    // SAT: revalidate against the actual conjunction (digest collisions
    // are theoretically possible; an invalid model must never escape).
    if (AllSatisfied(assertions, entry.model)) {
      ++stats_.exact_hits;
      SolveResult r;
      r.status = SolveStatus::kSat;
      r.model = entry.model;
      r.note = "query cache: exact sat";
      return r;
    }
  }

  if (options_.exact_only) {
    ++stats_.misses;
    return std::nullopt;
  }

  // 2. A cached UNSAT set contained in this query makes it UNSAT.
  for (uint64_t digest : unsat_digests_) {
    const Entry& entry = entries_.find(digest)->second;
    if (SortedSubset(entry.hashes, key.hashes)) {
      ++stats_.subset_unsat_hits;
      SolveResult r;
      r.status = SolveStatus::kUnsat;
      r.note = "query cache: unsat-core subset";
      return r;
    }
  }

  // 3. Counterexample reuse: try recent models, newest first. Covers the
  // superset rule and incidental satisfaction alike; the evaluator is the
  // gatekeeper, so a stale model can only cost a few evaluations.
  const size_t scan = std::min(options_.model_reuse_scan, sat_digests_.size());
  for (size_t k = 0; k < scan; ++k) {
    const uint64_t digest = sat_digests_[sat_digests_.size() - 1 - k];
    const Entry& entry = entries_.find(digest)->second;
    if (AllSatisfied(assertions, entry.model)) {
      ++stats_.model_reuse_hits;
      SolveResult r;
      r.status = SolveStatus::kSat;
      r.model = entry.model;
      r.note = "query cache: model reuse";
      return r;
    }
  }

  ++stats_.misses;
  return std::nullopt;
}

void QueryCache::Insert(const Key& key, const SolveResult& result) {
  if (result.status == SolveStatus::kUnknown) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (entries_.size() >= options_.max_entries) return;
  auto [it, inserted] = entries_.try_emplace(key.digest);
  if (!inserted) return;  // already cached (or digest collision: keep first)
  it->second.hashes = key.hashes;
  it->second.status = result.status;
  if (result.status == SolveStatus::kSat) {
    it->second.model = result.model;
    sat_digests_.push_back(key.digest);
  } else {
    unsat_digests_.push_back(key.digest);
  }
  ++stats_.insertions;
}

QueryCacheStats QueryCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

size_t QueryCache::ApproxBytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t bytes = sizeof(QueryCache);
  for (const auto& [digest, entry] : entries_) {
    bytes += sizeof(digest) + sizeof(Entry);
    bytes += entry.hashes.size() * sizeof(uint64_t);
    for (const auto& [name, value] : entry.model) {
      bytes += name.size() + sizeof(value) + 2 * sizeof(void*);
    }
  }
  bytes += (unsat_digests_.size() + sat_digests_.size()) * sizeof(uint64_t);
  return bytes;
}

}  // namespace sbce::solver
