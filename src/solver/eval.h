// Concrete evaluation of expressions under a variable assignment.
//
// Used three ways: (1) model validation after a SAT result, (2) the
// objective function of the search-based FP solver, (3) sanity oracles in
// property tests (random assignments cross-check the bit-blaster).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>

#include "src/solver/expr.h"

namespace sbce::solver {

/// Variable assignment: name → 64-bit value (truncated to the var's width).
using Assignment = std::unordered_map<std::string, uint64_t>;

/// Evaluates `e` under `assignment`. Unassigned variables evaluate to 0.
/// The result carries the expression's width in its low bits.
uint64_t Evaluate(ExprRef e, const Assignment& assignment);

/// Evaluates all of `assertions`; true iff every one is satisfied (nonzero).
bool AllSatisfied(std::span<const ExprRef> assertions,
                  const Assignment& assignment);

}  // namespace sbce::solver
