#include "src/solver/absdomain.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <utility>

#include "src/support/bits.h"
#include "src/support/status.h"

namespace sbce::solver {

namespace {

uint64_t MaskOf(unsigned w) {
  return w >= 64 ? ~uint64_t{0} : ((uint64_t{1} << w) - 1);
}

uint64_t LowMask(uint64_t n) {
  return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

int64_t MinS(unsigned w) { return AsSigned(uint64_t{1} << (w - 1), w); }
int64_t MaxS(unsigned w) { return static_cast<int64_t>(MaskOf(w) >> 1); }

/// |s| as unsigned, safe for INT64_MIN.
uint64_t MagOf(int64_t s) {
  return s < 0 ? static_cast<uint64_t>(-(s + 1)) + 1 : static_cast<uint64_t>(s);
}

/// Signed bounds implied by an unsigned interval at width w. A contiguous
/// unsigned range maps to a contiguous signed range unless it straddles
/// the sign boundary, in which case it covers both extremes.
std::pair<int64_t, int64_t> SignedFromUnsigned(unsigned w, uint64_t umin,
                                               uint64_t umax) {
  const uint64_t half = uint64_t{1} << (w - 1);
  if (umax < half) {
    return {static_cast<int64_t>(umin), static_cast<int64_t>(umax)};
  }
  if (umin >= half) return {AsSigned(umin, w), AsSigned(umax, w)};
  return {MinS(w), MaxS(w)};
}

/// Unsigned bounds implied by a signed interval at width w.
std::pair<uint64_t, uint64_t> UnsignedFromSigned(unsigned w, int64_t smin,
                                                 int64_t smax) {
  if (smin >= 0) {
    return {static_cast<uint64_t>(smin), static_cast<uint64_t>(smax)};
  }
  if (smax < 0) {
    return {TruncToWidth(static_cast<uint64_t>(smin), w),
            TruncToWidth(static_cast<uint64_t>(smax), w)};
  }
  return {0, MaskOf(w)};
}

}  // namespace

bool AbsValue::Contains(uint64_t v) const {
  if (bottom) return false;
  if ((v & known0) != 0) return false;
  if ((v & known1) != known1) return false;
  if (v < umin || v > umax) return false;
  const int64_t s = AsSigned(v, width);
  return s >= smin && s <= smax;
}

AbsValue AbsTop(unsigned width) {
  AbsValue v;
  v.width = static_cast<uint8_t>(width);
  v.umax = MaskOf(width);
  v.smin = MinS(width);
  v.smax = MaxS(width);
  return v;
}

AbsValue AbsConst(uint64_t value, unsigned width) {
  AbsValue v;
  v.width = static_cast<uint8_t>(width);
  value = TruncToWidth(value, width);
  v.known1 = value;
  v.known0 = MaskOf(width) & ~value;
  v.umin = v.umax = value;
  v.smin = v.smax = AsSigned(value, width);
  return v;
}

AbsValue AbsBottom(unsigned width) {
  AbsValue v;
  v.width = static_cast<uint8_t>(width);
  v.bottom = true;
  v.umin = 1;  // inverted interval, for visibility in dumps
  v.umax = 0;
  return v;
}

AbsValue AbsURange(unsigned width, uint64_t lo, uint64_t hi) {
  AbsValue v = AbsTop(width);
  v.umin = lo;
  v.umax = hi;
  return Normalize(v);
}

AbsValue Normalize(AbsValue v) {
  const unsigned w = v.width;
  const uint64_t mask = MaskOf(w);
  if (v.bottom) return AbsBottom(w);
  v.known0 &= mask;
  v.known1 &= mask;
  v.umax = std::min(v.umax, mask);
  v.smin = std::max(v.smin, MinS(w));
  v.smax = std::min(v.smax, MaxS(w));
  // Each pass is monotone-tightening; three passes reach the fixpoint for
  // the chains that matter (bits -> unsigned -> signed and back).
  for (int round = 0; round < 3; ++round) {
    if ((v.known0 & v.known1) != 0 || v.umin > v.umax || v.smin > v.smax) {
      return AbsBottom(w);
    }
    // Bits -> unsigned bounds.
    v.umin = std::max(v.umin, v.known1);
    v.umax = std::min(v.umax, v.known1 | (mask & ~v.known0));
    if (v.umin > v.umax) return AbsBottom(w);
    // Unsigned bounds -> common-prefix bits.
    const uint64_t x = v.umin ^ v.umax;
    uint64_t prefix = mask;
    if (x != 0) {
      const unsigned bw = static_cast<unsigned>(std::bit_width(x));
      prefix = bw >= 64 ? 0 : (mask & ~LowMask(bw));
    }
    v.known1 |= v.umin & prefix;
    v.known0 |= ~v.umin & prefix & mask;
    // Unsigned <-> signed rotation.
    const auto [slo, shi] = SignedFromUnsigned(w, v.umin, v.umax);
    v.smin = std::max(v.smin, slo);
    v.smax = std::min(v.smax, shi);
    if (v.smin > v.smax) return AbsBottom(w);
    const auto [ulo, uhi] = UnsignedFromSigned(w, v.smin, v.smax);
    v.umin = std::max(v.umin, ulo);
    v.umax = std::min(v.umax, uhi);
  }
  if ((v.known0 & v.known1) != 0 || v.umin > v.umax || v.smin > v.smax) {
    return AbsBottom(w);
  }
  return v;
}

AbsValue AbsJoin(const AbsValue& a, const AbsValue& b) {
  SBCE_CHECK(a.width == b.width);
  if (a.bottom) return Normalize(b);
  if (b.bottom) return Normalize(a);
  AbsValue v;
  v.width = a.width;
  v.known0 = a.known0 & b.known0;
  v.known1 = a.known1 & b.known1;
  v.umin = std::min(a.umin, b.umin);
  v.umax = std::max(a.umax, b.umax);
  v.smin = std::min(a.smin, b.smin);
  v.smax = std::max(a.smax, b.smax);
  return Normalize(v);
}

AbsValue AbsMeet(const AbsValue& a, const AbsValue& b) {
  SBCE_CHECK(a.width == b.width);
  if (a.bottom || b.bottom) return AbsBottom(a.width);
  AbsValue v;
  v.width = a.width;
  v.known0 = a.known0 | b.known0;
  v.known1 = a.known1 | b.known1;
  v.umin = std::max(a.umin, b.umin);
  v.umax = std::min(a.umax, b.umax);
  v.smin = std::max(a.smin, b.smin);
  v.smax = std::min(a.smax, b.smax);
  return Normalize(v);
}

namespace {

AbsValue Abs1(bool known, bool value) {
  return known ? AbsConst(value ? 1 : 0, 1) : AbsTop(1);
}

/// Known bits of a+b (+1 if `sub`, which models a + ~b + 1): ripple the
/// carry from bit 0 upward while it stays determined. When a bit pair is
/// known-equal the carry-out is determined even if the carry-in is not.
void AddKnownBits(uint64_t a0, uint64_t a1, uint64_t b0, uint64_t b1,
                  unsigned w, bool sub, uint64_t* r0, uint64_t* r1) {
  if (sub) std::swap(b0, b1);  // ~b: known-0 and known-1 swap roles
  *r0 = *r1 = 0;
  bool carry_known = true;
  int carry = sub ? 1 : 0;
  for (unsigned i = 0; i < w; ++i) {
    const bool a_known = GetBit(a0 | a1, i);
    const bool b_known = GetBit(b0 | b1, i);
    const uint64_t bit = uint64_t{1} << i;
    if (carry_known && a_known && b_known) {
      const int s = (GetBit(a1, i) ? 1 : 0) + (GetBit(b1, i) ? 1 : 0) + carry;
      if (s & 1) {
        *r1 |= bit;
      } else {
        *r0 |= bit;
      }
      carry = s >> 1;
    } else {
      carry_known = false;
      if (a_known && b_known && GetBit(a1, i) == GetBit(b1, i)) {
        carry = GetBit(a1, i) ? 1 : 0;
        carry_known = true;
      }
    }
  }
}

AbsValue AbsAddSub(bool sub, const AbsValue& a, const AbsValue& b) {
  const unsigned w = a.width;
  const uint64_t mask = MaskOf(w);
  AbsValue r = AbsTop(w);
  AddKnownBits(a.known0, a.known1, b.known0, b.known1, w, sub, &r.known0,
               &r.known1);
  if (!sub) {
    const unsigned __int128 lo =
        static_cast<unsigned __int128>(a.umin) + b.umin;
    const unsigned __int128 hi =
        static_cast<unsigned __int128>(a.umax) + b.umax;
    if (hi <= mask) {
      r.umin = static_cast<uint64_t>(lo);
      r.umax = static_cast<uint64_t>(hi);
    } else if (lo > mask) {  // every sum wraps exactly once
      r.umin = static_cast<uint64_t>(lo - mask - 1);
      r.umax = static_cast<uint64_t>(hi - mask - 1);
    }
  } else {
    if (a.umin >= b.umax) {  // never wraps
      r.umin = a.umin - b.umax;
      r.umax = a.umax - b.umin;
    } else if (a.umax < b.umin) {  // always wraps exactly once
      r.umin = (a.umin - b.umax) & mask;
      r.umax = (a.umax - b.umin) & mask;
    }
  }
  const __int128 slo = static_cast<__int128>(a.smin) +
                       (sub ? -static_cast<__int128>(b.smax) : b.smin);
  const __int128 shi = static_cast<__int128>(a.smax) +
                       (sub ? -static_cast<__int128>(b.smin) : b.smax);
  if (slo >= MinS(w) && shi <= MaxS(w)) {
    r.smin = static_cast<int64_t>(slo);
    r.smax = static_cast<int64_t>(shi);
  }
  return Normalize(r);
}

AbsValue AbsMul(const AbsValue& a, const AbsValue& b) {
  const unsigned w = a.width;
  const uint64_t mask = MaskOf(w);
  AbsValue r = AbsTop(w);
  // Factors' provable trailing zeros add up in the product.
  const unsigned tz = std::min<unsigned>(
      w, static_cast<unsigned>(std::countr_one(a.known0)) +
             static_cast<unsigned>(std::countr_one(b.known0)));
  r.known0 = LowMask(tz);
  const unsigned __int128 uhi =
      static_cast<unsigned __int128>(a.umax) * b.umax;
  if (uhi <= mask) {
    r.umin = a.umin * b.umin;
    r.umax = static_cast<uint64_t>(uhi);
    // Products fit, so the bilinear corner bound is exact for signed too.
  }
  const __int128 c[4] = {
      static_cast<__int128>(a.smin) * b.smin,
      static_cast<__int128>(a.smin) * b.smax,
      static_cast<__int128>(a.smax) * b.smin,
      static_cast<__int128>(a.smax) * b.smax,
  };
  const __int128 slo = std::min({c[0], c[1], c[2], c[3]});
  const __int128 shi = std::max({c[0], c[1], c[2], c[3]});
  if (slo >= MinS(w) && shi <= MaxS(w)) {
    r.smin = static_cast<int64_t>(slo);
    r.smax = static_cast<int64_t>(shi);
  }
  return Normalize(r);
}

AbsValue AbsUDiv(const AbsValue& a, const AbsValue& b) {
  const unsigned w = a.width;
  const uint64_t mask = MaskOf(w);
  if (b.umax == 0) return AbsConst(mask, w);  // SMT-LIB: x/0 = all-ones
  AbsValue r = AbsTop(w);
  r.umin = a.umin / b.umax;
  r.umax = b.umin == 0 ? mask : a.umax / b.umin;  // join with the /0 case
  return Normalize(r);
}

AbsValue AbsURem(const AbsValue& a, const AbsValue& b) {
  const unsigned w = a.width;
  const uint64_t mask = MaskOf(w);
  if (b.umax == 0) return Normalize(a);            // x % 0 = x
  if (b.umin > 0 && a.umax < b.umin) return Normalize(a);  // a < b: exact
  AbsValue r = AbsTop(w);
  const uint64_t hi_nz = std::min(a.umax, b.umax - 1);
  if (b.umin == 0) {
    r.umax = std::max(hi_nz, a.umax);  // join [0, hi_nz] with the %0 = a case
  } else {
    r.umax = hi_nz;
    if (b.IsSingleton() && std::has_single_bit(b.umin)) {
      // x % 2^k keeps exactly the low k bits of x.
      const unsigned k = static_cast<unsigned>(std::countr_zero(b.umin));
      r.known0 = (mask & ~LowMask(k)) | (a.known0 & LowMask(k));
      r.known1 = a.known1 & LowMask(k);
    }
  }
  return Normalize(r);
}

AbsValue AbsSDiv(const AbsValue& a, const AbsValue& b) {
  const unsigned w = a.width;
  const uint64_t mask = MaskOf(w);
  if (b.umax == 0) {
    // SMT-LIB bvsdiv by zero: 1 for negative dividends, all-ones otherwise.
    if (a.smin >= 0) return AbsConst(mask, w);
    if (a.smax < 0) return AbsConst(1, w);
    return AbsURange(w, 1, mask);
  }
  if (b.umin == 0) return AbsTop(w);  // divisor may or may not be zero
  const bool b_pos = b.smin > 0;
  const bool b_neg = b.smax < 0;
  if (!b_pos && !b_neg) return AbsTop(w);  // divisor sign not fixed
  const bool b_may_neg1 = b.smin <= -1 && b.smax >= -1;
  if (a.smin == MinS(w) && b_may_neg1) return AbsTop(w);  // overflow wraps
  // Truncating division is monotone in each operand once the divisor sign
  // is fixed and overflow is excluded, so the box extremes are at corners.
  const uint64_t ac[2] = {TruncToWidth(static_cast<uint64_t>(a.smin), w),
                          TruncToWidth(static_cast<uint64_t>(a.smax), w)};
  const uint64_t bc[2] = {TruncToWidth(static_cast<uint64_t>(b.smin), w),
                          TruncToWidth(static_cast<uint64_t>(b.smax), w)};
  int64_t lo = INT64_MAX;
  int64_t hi = INT64_MIN;
  for (uint64_t av : ac) {
    for (uint64_t bv : bc) {
      const int64_t v = AsSigned(FoldBinaryConst(Kind::kSDiv, av, bv, w), w);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  AbsValue r = AbsTop(w);
  r.smin = lo;
  r.smax = hi;
  return Normalize(r);
}

AbsValue AbsSRem(const AbsValue& a, const AbsValue& b) {
  const unsigned w = a.width;
  if (b.umax == 0) return Normalize(a);  // x srem 0 = x
  // For nonzero divisors: |r| < |b|, |r| <= |a|, sign(r) in {sign(a), 0}.
  const uint64_t maxmag = std::max(MagOf(b.smin), MagOf(b.smax));
  const int64_t bound = static_cast<int64_t>(maxmag - 1);
  AbsValue r = AbsTop(w);
  r.smin = std::max(std::min(a.smin, int64_t{0}), -bound);
  r.smax = std::min(std::max(a.smax, int64_t{0}), bound);
  r = Normalize(r);
  if (b.umin == 0) r = AbsJoin(r, a);  // divisor may be zero: join with a
  return r;
}

AbsValue AbsShl(const AbsValue& a, const AbsValue& b) {
  const unsigned w = a.width;
  const uint64_t mask = MaskOf(w);
  if (b.umin >= w) return AbsConst(0, w);  // every amount is oversized
  AbsValue r = AbsTop(w);
  if (b.IsSingleton()) {
    const unsigned s = static_cast<unsigned>(b.umin);  // < w <= 64
    r.known0 = TruncToWidth(a.known0 << s, w) | LowMask(s);
    r.known1 = TruncToWidth(a.known1 << s, w);
    if ((static_cast<unsigned __int128>(a.umax) << s) <= mask) {
      r.umin = a.umin << s;
      r.umax = a.umax << s;
    }
  } else {
    // At least umin_b trailing zeros (oversized amounts give 0, which is
    // consistent), plus whatever the operand already had.
    const uint64_t tz = static_cast<uint64_t>(std::countr_one(a.known0)) +
                        b.umin;
    r.known0 = LowMask(std::min<uint64_t>(tz, w));
  }
  return Normalize(r);
}

AbsValue AbsLShr(const AbsValue& a, const AbsValue& b) {
  const unsigned w = a.width;
  const uint64_t mask = MaskOf(w);
  if (b.umin >= w) return AbsConst(0, w);
  AbsValue r = AbsTop(w);
  const unsigned s_lo = static_cast<unsigned>(b.umin);  // < w
  r.umax = a.umax >> s_lo;
  r.umin = b.umax >= w ? 0 : (a.umin >> b.umax);
  r.known0 = mask & ~(mask >> s_lo);  // top s_lo bits clear (0 if oversized)
  if (b.IsSingleton()) {
    r.known0 |= a.known0 >> s_lo;
    r.known1 = a.known1 >> s_lo;
  }
  return Normalize(r);
}

AbsValue AbsAShr(const AbsValue& a, const AbsValue& b) {
  const unsigned w = a.width;
  const uint64_t mask = MaskOf(w);
  AbsValue r = AbsTop(w);
  // Oversized amounts behave like shifting by w-1 (all sign bits), so the
  // effective amount is min(b, w-1) and stays monotone.
  const unsigned s_lo = static_cast<unsigned>(
      std::min<uint64_t>(b.umin, w - 1));
  const unsigned s_hi = static_cast<unsigned>(
      std::min<uint64_t>(b.umax, w - 1));
  int64_t lo = INT64_MAX;
  int64_t hi = INT64_MIN;
  for (int64_t av : {a.smin, a.smax}) {
    for (unsigned s : {s_lo, s_hi}) {
      const int64_t v = av >> s;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  r.smin = lo;
  r.smax = hi;
  if (GetBit(a.known0, w - 1)) {
    // Non-negative operand: behaves like a logical shift.
    r.known0 = mask & ~(mask >> s_lo);
    if (b.IsSingleton()) {
      r.known0 |= a.known0 >> s_lo;
      r.known1 = a.known1 >> s_lo;
    }
  } else if (GetBit(a.known1, w - 1)) {
    // Negative operand: the top bits fill with ones.
    r.known1 = mask & ~(mask >> s_lo);
    if (b.IsSingleton()) {
      r.known1 |= a.known1 >> s_lo;
      r.known0 = (a.known0 >> s_lo) & (mask >> s_lo);
    }
  }
  return Normalize(r);
}

AbsValue AbsBitwise(Kind kind, const AbsValue& a, const AbsValue& b) {
  const unsigned w = a.width;
  const uint64_t mask = MaskOf(w);
  AbsValue r = AbsTop(w);
  // Neither AND/OR/XOR can set a bit above the highest possibly-set bit.
  const uint64_t m = std::max(a.umax, b.umax);
  const uint64_t cap = m == 0 ? 0 : LowMask(std::bit_width(m));
  switch (kind) {
    case Kind::kAnd:
      r.known1 = a.known1 & b.known1;
      r.known0 = (a.known0 | b.known0) & mask;
      r.umax = std::min(a.umax, b.umax);
      break;
    case Kind::kOr:
      r.known1 = a.known1 | b.known1;
      r.known0 = a.known0 & b.known0;
      r.umin = std::max(a.umin, b.umin);
      r.umax = cap;
      break;
    case Kind::kXor:
      r.known1 = (a.known1 & b.known0) | (a.known0 & b.known1);
      r.known0 = ((a.known0 & b.known0) | (a.known1 & b.known1)) & mask;
      r.umax = cap;
      break;
    default:
      SBCE_CHECK(false);
  }
  return Normalize(r);
}

AbsValue AbsCompare(Kind kind, const AbsValue& a, const AbsValue& b) {
  switch (kind) {
    case Kind::kEq: {
      if (a.IsSingleton() && b.IsSingleton()) {
        return AbsConst(a.umin == b.umin ? 1 : 0, 1);
      }
      const bool disjoint =
          a.umax < b.umin || b.umax < a.umin || a.smax < b.smin ||
          b.smax < a.smin ||
          ((a.known1 & b.known0) | (a.known0 & b.known1)) != 0;
      return Abs1(disjoint, false);
    }
    case Kind::kUlt:
      if (a.umax < b.umin) return AbsConst(1, 1);
      if (a.umin >= b.umax) return AbsConst(0, 1);
      return AbsTop(1);
    case Kind::kUle:
      if (a.umax <= b.umin) return AbsConst(1, 1);
      if (a.umin > b.umax) return AbsConst(0, 1);
      return AbsTop(1);
    case Kind::kSlt:
      if (a.smax < b.smin) return AbsConst(1, 1);
      if (a.smin >= b.smax) return AbsConst(0, 1);
      return AbsTop(1);
    case Kind::kSle:
      if (a.smax <= b.smin) return AbsConst(1, 1);
      if (a.smin > b.smax) return AbsConst(0, 1);
      return AbsTop(1);
    default:
      SBCE_CHECK(false);
      return AbsTop(1);
  }
}

AbsValue AbsNot(const AbsValue& a) {
  const unsigned w = a.width;
  const uint64_t mask = MaskOf(w);
  AbsValue r = AbsTop(w);
  r.known0 = a.known1;
  r.known1 = a.known0;
  r.umin = mask - a.umax;
  r.umax = mask - a.umin;
  r.smin = ~a.smax;  // ~x = -x-1, overflow-free in two's complement
  r.smax = ~a.smin;
  return Normalize(r);
}

AbsValue AbsNeg(const AbsValue& a) {
  const unsigned w = a.width;
  if (a.IsZero()) return AbsConst(0, w);
  AbsValue r = AbsTop(w);
  if (a.umin > 0) {  // zero excluded: -[umin, umax] stays contiguous
    r.umin = TruncToWidth(~a.umax + 1, w);
    r.umax = TruncToWidth(~a.umin + 1, w);
  }
  if (a.smin > MinS(w)) {
    r.smin = -a.smax;
    r.smax = -a.smin;
  }
  // Negation preserves the trailing-zero count.
  r.known0 |= LowMask(std::min<uint64_t>(std::countr_one(a.known0), w));
  return Normalize(r);
}

AbsValue AbsConcatV(const AbsValue& hi, const AbsValue& lo, unsigned w) {
  const unsigned wl = lo.width;
  AbsValue r = AbsTop(w);
  r.known0 = (hi.known0 << wl) | lo.known0;
  r.known1 = (hi.known1 << wl) | lo.known1;
  r.umin = (hi.umin << wl) + lo.umin;
  r.umax = (hi.umax << wl) + lo.umax;
  return Normalize(r);
}

AbsValue AbsExtractV(const AbsValue& a, unsigned hi, unsigned lo) {
  const unsigned w = hi - lo + 1;
  AbsValue r = AbsTop(w);
  r.known0 = (a.known0 >> lo) & MaskOf(w);
  r.known1 = (a.known1 >> lo) & MaskOf(w);
  // The shifted interval is exact for >> lo; the low-w truncation is exact
  // when both ends land in the same 2^w block.
  const uint64_t slo = a.umin >> lo;
  const uint64_t shi = a.umax >> lo;
  if (w < 64 && (slo >> w) == (shi >> w)) {
    r.umin = slo & MaskOf(w);
    r.umax = shi & MaskOf(w);
  }
  return Normalize(r);
}

AbsValue AbsZExtV(const AbsValue& a, unsigned w) {
  const unsigned wa = a.width;
  AbsValue r = AbsTop(w);
  r.known0 = a.known0 | (MaskOf(w) & ~MaskOf(wa));
  r.known1 = a.known1;
  r.umin = a.umin;
  r.umax = a.umax;
  return Normalize(r);
}

AbsValue AbsSExtV(const AbsValue& a, unsigned w) {
  const unsigned wa = a.width;
  AbsValue r = AbsTop(w);
  r.smin = a.smin;
  r.smax = a.smax;
  // Bits below the sign position copy over; bits at and above it all equal
  // the sign bit, so they are known only when the sign is.
  const uint64_t low = MaskOf(wa) >> 1;
  r.known0 = a.known0 & low;
  r.known1 = a.known1 & low;
  if (GetBit(a.known0, wa - 1)) {
    r.known0 |= MaskOf(w) & ~low;
  } else if (GetBit(a.known1, wa - 1)) {
    r.known1 |= MaskOf(w) & ~low;
  }
  return Normalize(r);
}

}  // namespace

AbsValue AbsUnaryOp(Kind kind, const AbsValue& a) {
  if (a.bottom) return AbsBottom(a.width);
  switch (kind) {
    case Kind::kNot:
      return AbsNot(a);
    case Kind::kNeg:
      return AbsNeg(a);
    default:
      SBCE_CHECK_MSG(false, "AbsUnaryOp: unsupported kind");
      return AbsTop(a.width);
  }
}

AbsValue AbsBinaryOp(Kind kind, const AbsValue& a, const AbsValue& b) {
  switch (kind) {
    case Kind::kEq:
    case Kind::kUlt:
    case Kind::kSlt:
    case Kind::kUle:
    case Kind::kSle:
      if (a.bottom || b.bottom) return AbsBottom(1);
      return AbsCompare(kind, a, b);
    default:
      break;
  }
  if (a.bottom || b.bottom) return AbsBottom(a.width);
  switch (kind) {
    case Kind::kAdd:
      return AbsAddSub(false, a, b);
    case Kind::kSub:
      return AbsAddSub(true, a, b);
    case Kind::kMul:
      return AbsMul(a, b);
    case Kind::kUDiv:
      return AbsUDiv(a, b);
    case Kind::kURem:
      return AbsURem(a, b);
    case Kind::kSDiv:
      return AbsSDiv(a, b);
    case Kind::kSRem:
      return AbsSRem(a, b);
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kXor:
      return AbsBitwise(kind, a, b);
    case Kind::kShl:
      return AbsShl(a, b);
    case Kind::kLShr:
      return AbsLShr(a, b);
    case Kind::kAShr:
      return AbsAShr(a, b);
    default:
      SBCE_CHECK_MSG(false, "AbsBinaryOp: unsupported kind");
      return AbsTop(a.width);
  }
}

AbsValue AbsCompute(ExprRef e, std::span<const AbsValue> kids) {
  const unsigned w = e->width;
  for (const AbsValue& k : kids) {
    if (k.bottom) return AbsBottom(w);
  }
  if (IsFpKind(e->kind)) return AbsTop(w);
  switch (e->kind) {
    case Kind::kConst:
      return AbsConst(e->cval, w);
    case Kind::kVar:
      return AbsTop(w);
    case Kind::kNot:
    case Kind::kNeg:
      return AbsUnaryOp(e->kind, kids[0]);
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
    case Kind::kUDiv:
    case Kind::kURem:
    case Kind::kSDiv:
    case Kind::kSRem:
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kXor:
    case Kind::kShl:
    case Kind::kLShr:
    case Kind::kAShr:
    case Kind::kEq:
    case Kind::kUlt:
    case Kind::kSlt:
    case Kind::kUle:
    case Kind::kSle:
      return AbsBinaryOp(e->kind, kids[0], kids[1]);
    case Kind::kIte:
      if (kids[0].IsSingleton()) {
        return kids[0].umin ? kids[1] : kids[2];
      }
      return AbsJoin(kids[1], kids[2]);
    case Kind::kConcat:
      return AbsConcatV(kids[0], kids[1], w);
    case Kind::kExtract:
      return AbsExtractV(kids[0], e->p0, e->p1);
    case Kind::kZExt:
      return AbsZExtV(kids[0], w);
    case Kind::kSExt:
      return AbsSExtV(kids[0], w);
    default:
      return AbsTop(w);
  }
}

bool AbsMemo::TryGet(uint32_t id, AbsValue* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= ready_.size() || !ready_[id]) return false;
  *out = values_[id];
  return true;
}

void AbsMemo::Put(uint32_t id, const AbsValue& v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= ready_.size()) {
    ready_.resize(id + 1, false);
    values_.resize(id + 1);
  }
  if (!ready_[id]) {
    values_[id] = v;
    ready_[id] = true;
  }
}

AbsValue AbsOf(ExprRef root) {
  AbsValue cached;
  if (root->pool != nullptr &&
      root->pool->abs_memo().TryGet(root->id, &cached)) {
    return cached;
  }
  // Iterative post-order; results are published into each node's owning
  // pool's memo so shared DAG structure is analyzed once across queries.
  std::unordered_map<ExprRef, AbsValue> local;
  std::vector<std::pair<ExprRef, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [e, expanded] = stack.back();
    stack.pop_back();
    if (local.count(e)) continue;
    if (!expanded) {
      if (e->pool != nullptr && e->pool->abs_memo().TryGet(e->id, &cached)) {
        local.emplace(e, cached);
        continue;
      }
      stack.push_back({e, true});
      for (int i = 0; i < e->nargs; ++i) stack.push_back({e->args[i], false});
      continue;
    }
    AbsValue kids[3];
    for (int i = 0; i < e->nargs; ++i) kids[i] = local.at(e->args[i]);
    const AbsValue out =
        AbsCompute(e, std::span<const AbsValue>(kids, e->nargs));
    if (e->pool != nullptr) e->pool->abs_memo().Put(e->id, out);
    local.emplace(e, out);
  }
  return local.at(root);
}

}  // namespace sbce::solver
