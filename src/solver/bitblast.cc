#include "src/solver/bitblast.h"

#include <algorithm>

#include "src/solver/absdomain.h"
#include "src/support/bits.h"

namespace sbce::solver {

namespace {

/// Cache key for commutative binary gates.
uint64_t GateKey(Lit a, Lit b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace

Lit BitBlaster::TrueLit() {
  if (true_lit_ == -1) {
    true_lit_ = FreshVar();
    sat_.AddClause({true_lit_});
  }
  return true_lit_;
}

Lit BitBlaster::MkAnd(Lit a, Lit b) {
  if (IsFalse(a) || IsFalse(b)) return FalseLit();
  if (IsTrue(a)) return b;
  if (IsTrue(b)) return a;
  if (a == b) return a;
  if (a == Negate(b)) return FalseLit();
  const uint64_t key = GateKey(a, b);
  if (auto it = and_cache_.find(key); it != and_cache_.end()) {
    return it->second;
  }
  const Lit o = FreshVar();
  ++gates_;
  sat_.AddClause({Negate(o), a});
  sat_.AddClause({Negate(o), b});
  sat_.AddClause({Negate(a), Negate(b), o});
  and_cache_.emplace(key, o);
  return o;
}

Lit BitBlaster::MkXor(Lit a, Lit b) {
  if (IsFalse(a)) return b;
  if (IsFalse(b)) return a;
  if (IsTrue(a)) return Negate(b);
  if (IsTrue(b)) return Negate(a);
  if (a == b) return FalseLit();
  if (a == Negate(b)) return TrueLit();
  // Normalize polarity into the cache key: xor(a,b) = ¬xor(¬a,b).
  const uint64_t key = GateKey(a, b);
  if (auto it = xor_cache_.find(key); it != xor_cache_.end()) {
    return it->second;
  }
  const Lit o = FreshVar();
  ++gates_;
  sat_.AddClause({Negate(o), a, b});
  sat_.AddClause({Negate(o), Negate(a), Negate(b)});
  sat_.AddClause({o, Negate(a), b});
  sat_.AddClause({o, a, Negate(b)});
  xor_cache_.emplace(key, o);
  return o;
}

Lit BitBlaster::MkMux(Lit sel, Lit then_l, Lit else_l) {
  if (IsTrue(sel)) return then_l;
  if (IsFalse(sel)) return else_l;
  if (then_l == else_l) return then_l;
  // sel ? t : e  ==  (sel ∧ t) ∨ (¬sel ∧ e)
  return MkOr(MkAnd(sel, then_l), MkAnd(Negate(sel), else_l));
}

Lit BitBlaster::MkOrReduce(const Bits& bits) {
  Lit acc = FalseLit();
  for (Lit b : bits) acc = MkOr(acc, b);
  return acc;
}

std::pair<Lit, Lit> BitBlaster::FullAdder(Lit a, Lit b, Lit c) {
  const Lit ab = MkXor(a, b);
  const Lit sum = MkXor(ab, c);
  const Lit carry = MkOr(MkAnd(a, b), MkAnd(c, ab));
  return {sum, carry};
}

std::pair<BitBlaster::Bits, Lit> BitBlaster::AddVec(const Bits& a,
                                                    const Bits& b, Lit cin) {
  SBCE_CHECK(a.size() == b.size());
  Bits out(a.size());
  Lit carry = cin;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [sum, cout] = FullAdder(a[i], b[i], carry);
    out[i] = sum;
    carry = cout;
  }
  return {out, carry};
}

BitBlaster::Bits BitBlaster::NegVec(const Bits& a) {
  Bits na(a.size());
  for (size_t i = 0; i < a.size(); ++i) na[i] = Negate(a[i]);
  Bits zero(a.size(), FalseLit());
  return AddVec(na, zero, TrueLit()).first;
}

BitBlaster::Bits BitBlaster::MuxVec(Lit sel, const Bits& then_v,
                                    const Bits& else_v) {
  SBCE_CHECK(then_v.size() == else_v.size());
  Bits out(then_v.size());
  for (size_t i = 0; i < then_v.size(); ++i) {
    out[i] = MkMux(sel, then_v[i], else_v[i]);
  }
  return out;
}

Lit BitBlaster::UltGate(const Bits& a, const Bits& b) {
  // a < b  ⇔  no carry out of a + ~b + 1.
  Bits nb(b.size());
  for (size_t i = 0; i < b.size(); ++i) nb[i] = Negate(b[i]);
  return Negate(AddVec(a, nb, TrueLit()).second);
}

Lit BitBlaster::SltGate(const Bits& a, const Bits& b) {
  const Lit sa = a.back();
  const Lit sb = b.back();
  const Lit diff_sign = MkXor(sa, sb);
  // Different signs: a < b iff a is negative. Same sign: unsigned compare.
  return MkMux(diff_sign, sa, UltGate(a, b));
}

Lit BitBlaster::EqGate(const Bits& a, const Bits& b) {
  SBCE_CHECK(a.size() == b.size());
  Lit acc = TrueLit();
  for (size_t i = 0; i < a.size(); ++i) {
    acc = MkAnd(acc, Negate(MkXor(a[i], b[i])));
  }
  return acc;
}

BitBlaster::Bits BitBlaster::MulVec(const Bits& a, const Bits& b) {
  const size_t w = a.size();
  Bits acc(w, FalseLit());
  for (size_t i = 0; i < w; ++i) {
    // Partial product: (a << i) masked by b[i], truncated to w bits.
    if (IsFalse(b[i])) continue;
    Bits partial(w, FalseLit());
    for (size_t k = i; k < w; ++k) {
      partial[k] = MkAnd(a[k - i], b[i]);
    }
    acc = AddVec(acc, partial, FalseLit()).first;
  }
  return acc;
}

std::pair<BitBlaster::Bits, BitBlaster::Bits> BitBlaster::UDivVec(
    const Bits& a, const Bits& b) {
  const size_t w = a.size();
  // Restoring division over a (w+1)-bit remainder.
  Bits rem(w + 1, FalseLit());
  Bits bw(b);
  bw.push_back(FalseLit());  // b zero-extended to w+1
  Bits q(w, FalseLit());
  for (size_t step = 0; step < w; ++step) {
    const size_t i = w - 1 - step;
    // rem = (rem << 1) | a[i]
    for (size_t k = w; k > 0; --k) rem[k] = rem[k - 1];
    rem[0] = a[i];
    // ge = rem >= b  ⇔ ¬(rem < b)
    const Lit ge = Negate(UltGate(rem, bw));
    // rem = ge ? rem - b : rem
    Bits nb(w + 1);
    for (size_t k = 0; k <= w; ++k) nb[k] = Negate(bw[k]);
    Bits diff = AddVec(rem, nb, TrueLit()).first;
    rem = MuxVec(ge, diff, rem);
    q[i] = ge;
  }
  rem.resize(w);
  // SMT-LIB semantics for b == 0: quotient all-ones, remainder a.
  Bits bzero_bits(b);
  const Lit b_is_zero = Negate(MkOrReduce(bzero_bits));
  Bits all_ones(w, TrueLit());
  Bits q_final = MuxVec(b_is_zero, all_ones, q);
  Bits r_final = MuxVec(b_is_zero, a, rem);
  return {q_final, r_final};
}

BitBlaster::Bits BitBlaster::ShiftVec(const Bits& a, const Bits& amount,
                                      ShiftKind kind) {
  const size_t w = a.size();
  const Lit fill_base = kind == ShiftKind::kAShr ? a.back() : FalseLit();
  Bits cur(a);
  // Barrel stages for amount bits 0..ceil(log2(w)).
  size_t stage = 0;
  for (; (size_t{1} << stage) < w && stage < amount.size(); ++stage) {
    const size_t dist = size_t{1} << stage;
    const Lit sel = amount[stage];
    Bits shifted(w);
    for (size_t i = 0; i < w; ++i) {
      if (kind == ShiftKind::kShl) {
        shifted[i] = i >= dist ? cur[i - dist] : FalseLit();
      } else {
        shifted[i] = i + dist < w ? cur[i + dist] : fill_base;
      }
    }
    cur = MuxVec(sel, shifted, cur);
  }
  // Any higher amount bit set ⇒ shift of at least w: all fill.
  Bits high_bits(amount.begin() + std::min(amount.size(), stage),
                 amount.end());
  // Also handle non-power-of-two widths: amounts in [w, 2^stage) with only
  // low bits set. Compute amount >= w directly for exactness.
  Bits wconst(amount.size());
  for (size_t i = 0; i < amount.size(); ++i) {
    wconst[i] = ((w >> i) & 1) != 0 ? TrueLit() : FalseLit();
  }
  const Lit oversized = Negate(UltGate(amount, wconst));
  Bits fill(w, fill_base);
  return MuxVec(oversized, fill, cur);
}

Result<BitBlaster::Bits> BitBlaster::Blast(ExprRef e) {
  if (auto it = cache_.find(e); it != cache_.end()) return it->second;
  if (sat_.NumVars() > static_cast<int>(options_.max_sat_vars)) {
    return Status::Exhausted("bit-blasting circuit budget exceeded");
  }
  if (IsFpKind(e->kind)) {
    return Status::Unsupported("cannot bit-blast floating point");
  }

  Bits out;
  const unsigned w = e->width;
  switch (e->kind) {
    case Kind::kConst: {
      out.resize(w);
      for (unsigned i = 0; i < w; ++i) {
        out[i] = GetBit(e->cval, i) ? TrueLit() : FalseLit();
      }
      break;
    }
    case Kind::kVar: {
      out.resize(w);
      for (unsigned i = 0; i < w; ++i) out[i] = FreshVar();
      var_bits_.emplace_back(e, out);
      break;
    }
    case Kind::kNot: {
      auto a = Blast(e->args[0]);
      if (!a) return a.status();
      out = a.value();
      for (auto& l : out) l = Negate(l);
      break;
    }
    case Kind::kNeg: {
      auto a = Blast(e->args[0]);
      if (!a) return a.status();
      out = NegVec(a.value());
      break;
    }
    case Kind::kIte: {
      auto c = Blast(e->args[0]);
      auto t = Blast(e->args[1]);
      auto f = Blast(e->args[2]);
      if (!c) return c.status();
      if (!t) return t.status();
      if (!f) return f.status();
      out = MuxVec(c.value()[0], t.value(), f.value());
      break;
    }
    case Kind::kConcat: {
      auto hi = Blast(e->args[0]);
      auto lo = Blast(e->args[1]);
      if (!hi) return hi.status();
      if (!lo) return lo.status();
      out = lo.value();
      out.insert(out.end(), hi.value().begin(), hi.value().end());
      break;
    }
    case Kind::kExtract: {
      auto a = Blast(e->args[0]);
      if (!a) return a.status();
      out.assign(a.value().begin() + e->p1, a.value().begin() + e->p0 + 1);
      break;
    }
    case Kind::kZExt: {
      auto a = Blast(e->args[0]);
      if (!a) return a.status();
      out = a.value();
      out.resize(w, FalseLit());
      break;
    }
    case Kind::kSExt: {
      auto a = Blast(e->args[0]);
      if (!a) return a.status();
      out = a.value();
      out.resize(w, out.back());
      break;
    }
    default: {
      auto ar = Blast(e->args[0]);
      auto br = Blast(e->args[1]);
      if (!ar) return ar.status();
      if (!br) return br.status();
      const Bits& a = ar.value();
      const Bits& b = br.value();
      switch (e->kind) {
        case Kind::kAdd:
          out = AddVec(a, b, FalseLit()).first;
          break;
        case Kind::kSub: {
          Bits nb(b.size());
          for (size_t i = 0; i < b.size(); ++i) nb[i] = Negate(b[i]);
          out = AddVec(a, nb, TrueLit()).first;
          break;
        }
        case Kind::kMul:
          out = MulVec(a, b);
          break;
        case Kind::kUDiv:
          out = UDivVec(a, b).first;
          break;
        case Kind::kURem:
          out = UDivVec(a, b).second;
          break;
        case Kind::kSDiv: {
          const Lit sa = a.back();
          const Lit sb = b.back();
          Bits abs_a = MuxVec(sa, NegVec(a), a);
          Bits abs_b = MuxVec(sb, NegVec(b), b);
          Bits q = UDivVec(abs_a, abs_b).first;
          out = MuxVec(MkXor(sa, sb), NegVec(q), q);
          break;
        }
        case Kind::kSRem: {
          const Lit sa = a.back();
          const Lit sb = b.back();
          Bits abs_a = MuxVec(sa, NegVec(a), a);
          Bits abs_b = MuxVec(sb, NegVec(b), b);
          Bits r = UDivVec(abs_a, abs_b).second;
          out = MuxVec(sa, NegVec(r), r);
          break;
        }
        case Kind::kAnd:
          out.resize(w);
          for (unsigned i = 0; i < w; ++i) out[i] = MkAnd(a[i], b[i]);
          break;
        case Kind::kOr:
          out.resize(w);
          for (unsigned i = 0; i < w; ++i) out[i] = MkOr(a[i], b[i]);
          break;
        case Kind::kXor:
          out.resize(w);
          for (unsigned i = 0; i < w; ++i) out[i] = MkXor(a[i], b[i]);
          break;
        case Kind::kShl:
          out = ShiftVec(a, b, ShiftKind::kShl);
          break;
        case Kind::kLShr:
          out = ShiftVec(a, b, ShiftKind::kLShr);
          break;
        case Kind::kAShr:
          out = ShiftVec(a, b, ShiftKind::kAShr);
          break;
        case Kind::kEq:
          out = {EqGate(a, b)};
          break;
        case Kind::kUlt:
          out = {UltGate(a, b)};
          break;
        case Kind::kSlt:
          out = {SltGate(a, b)};
          break;
        case Kind::kUle:
          out = {Negate(UltGate(b, a))};
          break;
        case Kind::kSle:
          out = {Negate(SltGate(b, a))};
          break;
        default:
          return Status::Unsupported("bit-blast: unhandled kind");
      }
    }
  }
  SBCE_CHECK_MSG(out.size() == e->width, "blast width mismatch");
  // Pin literals the abstract analysis proves constant. Substitution (not
  // subtree skipping) keeps every variable blasted, so models stay
  // complete; the facts are context-free, so each concrete assignment
  // still evaluates every gate to the same value.
  if (options_.use_known_bits && e->kind != Kind::kConst &&
      e->kind != Kind::kVar) {
    const AbsValue av = AbsOf(e);
    if (!av.bottom) {
      for (unsigned i = 0; i < w; ++i) {
        if (IsConstLit(out[i])) continue;
        if (GetBit(av.known1, i)) {
          out[i] = TrueLit();
          ++known_bits_pinned_;
        } else if (GetBit(av.known0, i)) {
          out[i] = FalseLit();
          ++known_bits_pinned_;
        }
      }
    }
  }
  cache_.emplace(e, out);
  return out;
}

Result<Lit> BitBlaster::BlastBit(ExprRef e) {
  SBCE_CHECK_MSG(e->width == 1, "BlastBit takes 1-bit expressions");
  auto bits = Blast(e);
  if (!bits) return bits.status();
  return bits.value()[0];
}

Status BitBlaster::AssertTrue(ExprRef e) {
  auto root = BlastBit(e);
  if (!root) return root.status();
  sat_.AddClause({root.value()});
  return Status::Ok();
}

Status BitBlaster::AssertGuarded(Lit guard, ExprRef e) {
  auto root = BlastBit(e);
  if (!root) return root.status();
  sat_.AddClause({Negate(guard), root.value()});
  return Status::Ok();
}

Assignment BitBlaster::ExtractAssignment() const {
  Assignment out;
  for (const auto& [var, bits] : var_bits_) {
    uint64_t v = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
      const bool bit_true = IsConstLit(bits[i])
                                ? IsTrue(bits[i])
                                : (sat_.ValueOf(LitVar(bits[i])) !=
                                   LitNegated(bits[i]));
      if (bit_true) v |= uint64_t{1} << i;
    }
    out[var->name] = v;
  }
  return out;
}

}  // namespace sbce::solver
