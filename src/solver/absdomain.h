// Abstract domain over fixed-width bitvectors: known bits + intervals.
//
// Each expression node is mapped to an AbsValue combining three reduced
// constraints on the node's possible concrete values:
//   - a known-bits mask (bits provably 0 / provably 1 for every model),
//   - an unsigned interval [umin, umax],
//   - a signed interval [smin, smax].
// The concretization is the intersection: a width-w value v belongs to the
// abstract value iff it is consistent with all three. Normalize()
// cross-tightens the components (bits -> unsigned bounds, common interval
// prefix -> bits, unsigned <-> signed rotation) so transfer functions can
// read whichever component is convenient.
//
// All facts are context-free: they hold for every assignment to the
// variables, so they can be reused wherever a hash-consed node appears —
// which is what makes the per-pool memo (AbsMemo) sound. Floating-point
// nodes get Top of their width.
//
// The forward analysis feeds four consumers (DESIGN.md §5i): the pipeline
// pre-solver (presolve.h), the range-aware simplifier rules, the
// bit-blaster's constant-literal substitution, and the engine's negation
// planner.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "src/solver/expr.h"

namespace sbce::solver {

struct AbsValue {
  uint8_t width = 1;
  bool bottom = false;   // empty concretization (contradiction)
  uint64_t known0 = 0;   // bits provably 0 (within width)
  uint64_t known1 = 0;   // bits provably 1
  uint64_t umin = 0;     // unsigned interval, inclusive
  uint64_t umax = 0;
  int64_t smin = 0;      // signed interval, inclusive
  int64_t smax = 0;

  /// Exactly one concrete value.
  bool IsSingleton() const { return !bottom && umin == umax; }
  /// The single value; only meaningful when IsSingleton().
  uint64_t SingletonValue() const { return umin; }
  /// True if `v` (already truncated to width) is in the concretization.
  bool Contains(uint64_t v) const;
  /// True if the node is provably nonzero / provably zero.
  bool ExcludesZero() const { return !bottom && umin > 0; }
  bool IsZero() const { return IsSingleton() && umin == 0; }
};

/// Top / constant / interval constructors (all normalized).
AbsValue AbsTop(unsigned width);
AbsValue AbsConst(uint64_t value, unsigned width);
AbsValue AbsBottom(unsigned width);
AbsValue AbsURange(unsigned width, uint64_t lo, uint64_t hi);

/// Cross-tightens the three components until they agree; detects bottom.
AbsValue Normalize(AbsValue v);

/// Least upper bound (set union, then best abstraction).
AbsValue AbsJoin(const AbsValue& a, const AbsValue& b);

/// Greatest lower bound (intersection of the constraints).
AbsValue AbsMeet(const AbsValue& a, const AbsValue& b);

/// Transfer function for one node given its children's abstract values (in
/// argument order; empty for leaves). kConst is exact, kVar is Top, every
/// bitvector operator has a dedicated transfer, FP kinds return Top.
AbsValue AbsCompute(ExprRef e, std::span<const AbsValue> kids);

/// Transfer functions on bare values, for kinds that do not need node
/// parameters. Used by the backward refiner (presolve.cc) to run inverse
/// operations (e.g. the pre-image of x+c is computed with kSub). `kind`
/// must be kNot/kNeg (unary) or a bitvector binary/comparison kind.
AbsValue AbsUnaryOp(Kind kind, const AbsValue& a);
AbsValue AbsBinaryOp(Kind kind, const AbsValue& a, const AbsValue& b);

/// Abstract value of `e`, computed bottom-up over the DAG with results
/// memoized on each node's owning pool (AbsMemo below). Because all facts
/// are context-free, shared nodes are analyzed once across all queries
/// that use the same pool. Thread-safe; handles mixed-pool DAGs.
AbsValue AbsOf(ExprRef e);

/// Per-pool memo table keyed by dense Expr::id. Owned by ExprPool; entries
/// are only ever written for nodes the pool owns, and are immutable once
/// published.
class AbsMemo {
 public:
  /// Returns true and fills `out` if `id` has a published value.
  bool TryGet(uint32_t id, AbsValue* out) const;
  /// Publishes the value for `id` (first writer wins).
  void Put(uint32_t id, const AbsValue& v);

 private:
  mutable std::mutex mu_;
  std::vector<AbsValue> values_;
  std::vector<bool> ready_;
};

}  // namespace sbce::solver
