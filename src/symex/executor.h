// Trace-based symbolic executor.
//
// Walks a concrete instruction trace (the VM's TraceEvent stream) and
// rebuilds, in expression form, how input-derived data flowed through it:
// register/memory expressions, path constraints at symbolic branches,
// symbolic indirect-jump sites, and the diagnostics (Es0..Es3) raised when
// the configured mechanisms cannot express something. The paper's
// "instruction lifting" and "constraint extraction" stages both live here;
// "constraint solving" is src/solver.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/symex/config.h"
#include "src/symex/state.h"
#include "src/vm/trace_event.h"

namespace sbce::symex {

struct SymTraceResult {
  bool aborted = false;          // engine exception (paper outcome E)
  std::string abort_reason;
  size_t events_processed = 0;
  /// Instructions that touched symbolic data (Figure 3's metric).
  size_t symbolic_instr_count = 0;
  /// ...of which inside the library text region.
  size_t lib_symbolic_instr_count = 0;
  /// Path constraints raised inside the library region (Figure 3).
  size_t lib_constraint_count = 0;
  /// Names of fresh symbols invented for simulated syscalls / skipped
  /// library calls. A model that assigns these is only a Partial success.
  std::set<std::string> env_symbols;
};

class TraceExecutor {
 public:
  TraceExecutor(solver::ExprPool* pool, SymexConfig config)
      : state_(pool), config_(std::move(config)) {}

  /// Provides read access to the program's initial memory (binary image +
  /// argv block); used by the symbolic-array window expansion.
  void SetInitialByteReader(
      std::function<std::optional<uint8_t>(uint64_t)> reader) {
    initial_byte_ = std::move(reader);
  }

  /// Declares `bytes.size()` symbolic bytes starting at `addr`.
  void AddSymbolicBytes(uint64_t addr,
                        std::span<const solver::ExprRef> bytes);

  /// Walks a trace chunk. Uses (and mutates) the internal SymState; may be
  /// called repeatedly with consecutive chunks of one trace — the returned
  /// result and the recorded event indices are cumulative, exactly as if
  /// the concatenation had been walked in one call.
  ///
  /// The executor is copyable, and a copy taken between chunks is a
  /// checkpoint of the walk: resuming it with the remaining suffix yields
  /// the same state as walking the full trace (the engine's
  /// checkpoint-based re-exploration relies on this). After copying,
  /// re-install SetInitialByteReader and the diagnostics tracer — both
  /// capture context owned by the original round.
  SymTraceResult Execute(std::span<const vm::TraceEvent> events);

  SymState& state() { return state_; }
  const SymexConfig& config() const { return config_; }

 private:
  using ExprRef = solver::ExprRef;

  bool InLib(uint64_t pc) const { return pc >= config_.lib_text_base; }

  ExprRef GprOrNull(const vm::TraceEvent& ev, uint8_t reg) ;
  /// Materializes a possibly-null operand as an expression.
  ExprRef Materialize(ExprRef e, uint64_t concrete, unsigned width = 64);

  /// Reads `width` bytes at `addr` as an expression; null if all concrete.
  ExprRef LoadBytes(uint64_t addr, unsigned width, uint64_t concrete);
  void StoreBytes(uint64_t addr, unsigned width, ExprRef value,
                  uint64_t concrete);
  /// Best-effort concrete byte at `addr` during this walk (store overlay,
  /// then initial image). nullopt if unknown (e.g. syscall-written).
  std::optional<uint8_t> ConcreteByteAt(uint64_t addr) const;

  /// Symbolic-address load expansion (the symbolic-array mechanism).
  ExprRef ExpandWindowLoad(const vm::TraceEvent& ev, ExprRef addr_expr,
                           unsigned width);

  void HandleAlu(const vm::TraceEvent& ev, SymRegs& regs);
  void HandleMemory(const vm::TraceEvent& ev, SymRegs& regs);
  void HandleBranch(const vm::TraceEvent& ev, SymRegs& regs);
  void HandleTrap(const vm::TraceEvent& ev, SymRegs& regs);
  void HandleSyscall(const vm::TraceEvent& ev, SymRegs& regs);
  void HandleFp(const vm::TraceEvent& ev, SymRegs& regs);

  void NoteSymbolicInstr(const vm::TraceEvent& ev);
  void DropSymbolic(ExprRef dropped, const vm::TraceEvent& ev,
                    const char* why);

  SymState state_;
  SymexConfig config_;
  std::function<std::optional<uint8_t>(uint64_t)> initial_byte_;
  std::unordered_map<uint64_t, uint8_t> store_overlay_;
  SymTraceResult result_;

  // Library-skip bookkeeping (LibMode::kSkipUnconstrained), per thread key.
  std::unordered_map<uint64_t, uint64_t> skip_until_;  // thread → return pc

  uint32_t root_pid_ = 0;
  uint32_t root_tid_ = 1;
  /// Root pid/tid latch from the first chunk's first event; later chunks
  /// (which may open mid-schedule on another thread) must not re-latch.
  bool root_latched_ = false;

  /// Registered trap handler per pid (observed from settrap syscalls).
  std::unordered_map<uint32_t, uint64_t> trap_handler_;
  /// Constraint-occurrence counter per pc (loop-iteration disambiguation).
  std::unordered_map<uint64_t, uint32_t> occurrence_;

  uint32_t NextOccurrence(uint64_t pc) { return occurrence_[pc]++; }
};

}  // namespace sbce::symex
