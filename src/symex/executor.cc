#include "src/symex/executor.h"

#include "src/lift/lifter.h"
#include "src/support/str.h"
#include "src/vm/syscalls.h"

namespace sbce::symex {

using isa::Opcode;
using solver::ExprRef;
using solver::Kind;
using vm::TraceEvent;

namespace {

uint64_t ThreadKey(const TraceEvent& ev) {
  return (static_cast<uint64_t>(ev.pid) << 32) | ev.tid;
}

uint64_t MemKey(uint32_t pid, uint64_t addr) {
  // Address spaces are per process; qualify byte addresses by pid.
  return (static_cast<uint64_t>(pid) << 48) ^ addr;
}

}  // namespace

void TraceExecutor::AddSymbolicBytes(uint64_t addr,
                                     std::span<const ExprRef> bytes) {
  for (size_t i = 0; i < bytes.size(); ++i) {
    // Initial regions belong to the root process; pid qualification happens
    // lazily in Execute once the root pid is known (prefix 0 here, fixed up
    // by using pid 0 as "root alias" — see RootMemKey).
    state_.SetMemByte(addr + i, bytes[i]);
  }
  state_.NoteSymbolicSeen();
}

ExprRef TraceExecutor::GprOrNull(const TraceEvent& ev, uint8_t reg) {
  return state_.Regs(ev.pid, ev.tid).gpr[reg];
}

ExprRef TraceExecutor::Materialize(ExprRef e, uint64_t concrete,
                                   unsigned width) {
  return e != nullptr ? e : state_.pool().Const(concrete, width);
}

std::optional<uint8_t> TraceExecutor::ConcreteByteAt(uint64_t addr) const {
  if (auto it = store_overlay_.find(addr); it != store_overlay_.end()) {
    return it->second;
  }
  if (initial_byte_) return initial_byte_(addr);
  return std::nullopt;
}

ExprRef TraceExecutor::LoadBytes(uint64_t addr, unsigned width,
                                 uint64_t concrete) {
  bool any_symbolic = false;
  for (unsigned i = 0; i < width; ++i) {
    if (state_.MemByte(addr + i) != nullptr) {
      any_symbolic = true;
      break;
    }
  }
  if (!any_symbolic) return nullptr;
  auto& pool = state_.pool();
  ExprRef out = nullptr;  // assembled high→low via Concat
  for (unsigned i = width; i > 0; --i) {
    ExprRef byte = state_.MemByte(addr + i - 1);
    if (byte == nullptr) {
      byte = pool.Const((concrete >> (8 * (i - 1))) & 0xff, 8);
    }
    out = out == nullptr ? byte : pool.Concat(out, byte);
  }
  return out;
}

void TraceExecutor::StoreBytes(uint64_t addr, unsigned width, ExprRef value,
                               uint64_t concrete) {
  auto& pool = state_.pool();
  for (unsigned i = 0; i < width; ++i) {
    store_overlay_[addr + i] =
        static_cast<uint8_t>((concrete >> (8 * i)) & 0xff);
    if (value == nullptr) {
      state_.SetMemByte(addr + i, nullptr);
    } else {
      state_.SetMemByte(addr + i,
                        pool.Extract(value, 8 * i + 7, 8 * i));
    }
  }
}

void TraceExecutor::NoteSymbolicInstr(const TraceEvent& ev) {
  ++result_.symbolic_instr_count;
  if (InLib(ev.pc)) ++result_.lib_symbolic_instr_count;
  state_.NoteSymbolicSeen();
}

void TraceExecutor::DropSymbolic(ExprRef dropped, const TraceEvent& ev,
                                 const char* why) {
  if (dropped == nullptr) return;
  state_.diag().Raise(ErrorStage::kEs2, why, ev.pc);
}

ExprRef TraceExecutor::ExpandWindowLoad(const TraceEvent& ev,
                                        ExprRef addr_expr, unsigned width) {
  auto& pool = state_.pool();
  const uint64_t obs = ev.mem_addr;
  const uint64_t lo = obs >= config_.addr_window ? obs - config_.addr_window
                                                 : 0;
  const uint64_t hi = obs + config_.addr_window;
  // Default arm: the concretely observed value.
  ExprRef out = pool.Const(ev.mem_value, width * 8);
  for (uint64_t a = lo; a <= hi; a += 1) {
    if (a == obs) continue;
    // Assemble the candidate value at address a (symbolic bytes win over
    // the concrete overlay/image; unknown bytes disqualify the candidate).
    ExprRef cand = nullptr;
    bool known = true;
    for (unsigned i = width; i > 0; --i) {
      ExprRef byte = state_.MemByte(a + i - 1);
      if (byte == nullptr) {
        auto cv = ConcreteByteAt(a + i - 1);
        if (!cv.has_value()) {
          known = false;
          break;
        }
        byte = pool.Const(*cv, 8);
      }
      cand = cand == nullptr ? byte : pool.Concat(cand, byte);
    }
    if (!known) continue;
    out = pool.Ite(pool.Eq(addr_expr, pool.Const(a, 64)), cand, out);
  }
  return out;
}

void TraceExecutor::HandleAlu(const TraceEvent& ev, SymRegs& regs) {
  auto& pool = state_.pool();
  const auto& in = ev.instr;
  ExprRef a = regs.gpr[in.rs1];
  ExprRef b = regs.gpr[in.rs2];
  const int64_t imm = static_cast<int64_t>(in.imm);

  auto bin = [&](Kind kind, bool use_imm) -> ExprRef {
    if (a == nullptr && (use_imm || b == nullptr)) return nullptr;
    ExprRef lhs = Materialize(a, ev.rs1_val);
    ExprRef rhs = use_imm
                      ? pool.Const(static_cast<uint64_t>(imm), 64)
                      : Materialize(b, ev.rs2_val);
    // The VM masks shift amounts to 6 bits; mirror that in expressions.
    if (kind == Kind::kShl || kind == Kind::kLShr || kind == Kind::kAShr) {
      rhs = pool.And(rhs, pool.Const(63, 64));
    }
    return pool.Binary(kind, lhs, rhs);
  };
  auto cmp = [&](Kind kind, bool use_imm) -> ExprRef {
    ExprRef c = bin(kind, use_imm);
    return c == nullptr ? nullptr : pool.ZExt(c, 64);
  };

  ExprRef out = nullptr;
  bool writes_rd = true;
  switch (in.op) {
    case Opcode::kMov: out = a; break;
    case Opcode::kMovI:
    case Opcode::kLea:
      out = nullptr;
      break;
    case Opcode::kMovHi: {
      ExprRef old = regs.gpr[in.rd];
      if (old == nullptr) {
        out = nullptr;
      } else {
        // Keep the (symbolic) low 32 bits, overwrite the high 32.
        out = pool.Concat(
            pool.Const(static_cast<uint32_t>(in.imm), 32),
            pool.Extract(old, 31, 0));
      }
      break;
    }
    case Opcode::kAdd: out = bin(Kind::kAdd, false); break;
    case Opcode::kAddI: out = bin(Kind::kAdd, true); break;
    case Opcode::kSub: out = bin(Kind::kSub, false); break;
    case Opcode::kSubI: out = bin(Kind::kSub, true); break;
    case Opcode::kMul: out = bin(Kind::kMul, false); break;
    case Opcode::kMulI: out = bin(Kind::kMul, true); break;
    case Opcode::kAnd: out = bin(Kind::kAnd, false); break;
    case Opcode::kAndI: out = bin(Kind::kAnd, true); break;
    case Opcode::kOr: out = bin(Kind::kOr, false); break;
    case Opcode::kOrI: out = bin(Kind::kOr, true); break;
    case Opcode::kXor: out = bin(Kind::kXor, false); break;
    case Opcode::kXorI: out = bin(Kind::kXor, true); break;
    case Opcode::kShl: out = bin(Kind::kShl, false); break;
    case Opcode::kShlI: out = bin(Kind::kShl, true); break;
    case Opcode::kShr: out = bin(Kind::kLShr, false); break;
    case Opcode::kShrI: out = bin(Kind::kLShr, true); break;
    case Opcode::kSar: out = bin(Kind::kAShr, false); break;
    case Opcode::kSarI: out = bin(Kind::kAShr, true); break;
    case Opcode::kNot:
      out = a == nullptr ? nullptr : pool.Not(a);
      break;
    case Opcode::kNeg:
      out = a == nullptr ? nullptr : pool.Neg(a);
      break;
    case Opcode::kCmpEq: out = cmp(Kind::kEq, false); break;
    case Opcode::kCmpEqI: out = cmp(Kind::kEq, true); break;
    case Opcode::kCmpNe:
    case Opcode::kCmpNeI: {
      ExprRef c = bin(Kind::kEq, in.op == Opcode::kCmpNeI);
      out = c == nullptr ? nullptr : pool.ZExt(pool.Not(c), 64);
      break;
    }
    case Opcode::kCmpLtU: out = cmp(Kind::kUlt, false); break;
    case Opcode::kCmpLtUI: out = cmp(Kind::kUlt, true); break;
    case Opcode::kCmpLtS: out = cmp(Kind::kSlt, false); break;
    case Opcode::kCmpLtSI: out = cmp(Kind::kSlt, true); break;
    case Opcode::kCmpLeU: out = cmp(Kind::kUle, false); break;
    case Opcode::kCmpLeS: out = cmp(Kind::kSle, false); break;
    case Opcode::kUDiv: out = bin(Kind::kUDiv, false); break;
    case Opcode::kSDiv: out = bin(Kind::kSDiv, false); break;
    case Opcode::kURem: out = bin(Kind::kURem, false); break;
    case Opcode::kSRem: out = bin(Kind::kSRem, false); break;
    default:
      writes_rd = false;
      break;
  }
  if (writes_rd) {
    if (out != nullptr) NoteSymbolicInstr(ev);
    regs.gpr[in.rd] = out;
  }
}

void TraceExecutor::HandleMemory(const TraceEvent& ev, SymRegs& regs) {
  auto& pool = state_.pool();
  const auto& in = ev.instr;
  const auto& info = isa::GetOpcodeInfo(in.op);
  const unsigned width = info.mem_width;

  switch (in.op) {
    case Opcode::kLd1:
    case Opcode::kLd2:
    case Opcode::kLd4:
    case Opcode::kLd8:
    case Opcode::kLdS1:
    case Opcode::kLdS2:
    case Opcode::kLdS4:
    case Opcode::kLdX1:
    case Opcode::kLdX8: {
      const bool indexed = in.op == Opcode::kLdX1 || in.op == Opcode::kLdX8;
      ExprRef base = regs.gpr[in.rs1];
      ExprRef index = indexed ? regs.gpr[in.rs2] : nullptr;
      const bool addr_symbolic = base != nullptr || index != nullptr;
      ExprRef value = nullptr;
      if (addr_symbolic) {
        NoteSymbolicInstr(ev);
        ExprRef addr_expr =
            indexed ? pool.Add(Materialize(base, ev.rs1_val),
                               Materialize(index, ev.rs2_val))
                    : pool.Add(Materialize(base, ev.rs1_val),
                               pool.Const(static_cast<uint64_t>(
                                              static_cast<int64_t>(in.imm)),
                                          64));
        if (config_.addr_policy == SymAddrPolicy::kConcretize) {
          state_.diag().Raise(
              ErrorStage::kEs3,
              "symbolic memory address concretized (no array model)",
              ev.pc);
          value = LoadBytes(ev.mem_addr, width, ev.mem_value);
        } else {
          // This load sits one deref deeper than the deepest symbolic-
          // address load feeding its address expression; the window model
          // covers chains up to max_deref_depth levels (1 = plain
          // symbolic index, Angr's model; the ideal profile goes to 8).
          const unsigned depth = state_.MaxDerefDepth(addr_expr) + 1;
          if (depth > config_.max_deref_depth) {
            state_.diag().Raise(
                ErrorStage::kEs3,
                "nested symbolic deref exceeds memory-model depth", ev.pc);
            value = LoadBytes(ev.mem_addr, width, ev.mem_value);
          } else {
            value = ExpandWindowLoad(ev, addr_expr, width);
            state_.MarkDerefResult(value, depth);
          }
        }
      } else {
        value = LoadBytes(ev.mem_addr, width, ev.mem_value);
      }
      if (value != nullptr) {
        NoteSymbolicInstr(ev);
        if (value->width < 64) {
          const bool sign = in.op == Opcode::kLdS1 ||
                            in.op == Opcode::kLdS2 || in.op == Opcode::kLdS4;
          value = sign ? pool.SExt(value, 64) : pool.ZExt(value, 64);
        }
      }
      regs.gpr[in.rd] = value;
      break;
    }

    case Opcode::kSt1:
    case Opcode::kSt2:
    case Opcode::kSt4:
    case Opcode::kSt8:
    case Opcode::kStX1:
    case Opcode::kStX8: {
      const bool indexed = in.op == Opcode::kStX1 || in.op == Opcode::kStX8;
      ExprRef base = regs.gpr[in.rs1];
      ExprRef index = indexed ? regs.gpr[in.rs2] : nullptr;
      if (base != nullptr || index != nullptr) {
        // All studied tools concretize store addresses; note it and go on.
        NoteSymbolicInstr(ev);
      }
      ExprRef value = regs.gpr[in.rd];
      if (value != nullptr) {
        NoteSymbolicInstr(ev);
        if (width < 8) value = pool.Extract(value, width * 8 - 1, 0);
      }
      StoreBytes(ev.mem_addr, width, value, ev.mem_value);
      break;
    }

    case Opcode::kPush: {
      ExprRef v = regs.gpr[in.rs1];
      if (v != nullptr) NoteSymbolicInstr(ev);
      StoreBytes(ev.mem_addr, 8, v, ev.mem_value);
      break;
    }
    case Opcode::kPop: {
      ExprRef v = LoadBytes(ev.mem_addr, 8, ev.mem_value);
      if (v != nullptr) NoteSymbolicInstr(ev);
      regs.gpr[in.rd] = v;
      break;
    }
    case Opcode::kCall:
    case Opcode::kCallR:
      // Return address pushed is concrete.
      StoreBytes(ev.mem_addr, 8, nullptr, ev.mem_value);
      break;
    case Opcode::kRet:
      break;

    case Opcode::kFLd: {
      ExprRef v = LoadBytes(ev.mem_addr, 8, ev.mem_value);
      if (v != nullptr) NoteSymbolicInstr(ev);
      regs.fpr[in.rd] = v;
      break;
    }
    case Opcode::kFSt: {
      ExprRef v = regs.fpr[in.rd];
      if (v != nullptr) NoteSymbolicInstr(ev);
      StoreBytes(ev.mem_addr, 8, v, ev.mem_value);
      break;
    }
    default:
      break;
  }
}

void TraceExecutor::HandleBranch(const TraceEvent& ev, SymRegs& regs) {
  auto& pool = state_.pool();
  const auto& in = ev.instr;
  if (in.op == Opcode::kBz || in.op == Opcode::kBnz) {
    ExprRef reg = regs.gpr[in.rs1];
    if (reg == nullptr) return;
    NoteSymbolicInstr(ev);
    ExprRef zero = pool.Eq(reg, pool.Const(0, 64));
    const bool went_zero_side = (in.op == Opcode::kBz) == ev.branch_taken;
    ExprRef cond = went_zero_side ? zero : pool.Not(zero);
    const bool in_lib = InLib(ev.pc);
    if (in_lib) ++result_.lib_constraint_count;
    const uint64_t fallthrough = ev.pc + isa::kInstrBytes;
    const uint64_t target =
        fallthrough + static_cast<uint64_t>(static_cast<int64_t>(in.imm));
    const uint64_t negated_successor =
        ev.branch_taken ? fallthrough : target;
    PathConstraint pc_rec;
    pc_rec.cond = cond;
    pc_rec.pc = ev.pc;
    pc_rec.event_index = result_.events_processed;
    pc_rec.in_lib = in_lib;
    pc_rec.negated_successor = negated_successor;
    pc_rec.occurrence = NextOccurrence(ev.pc);
    state_.path().push_back(pc_rec);
    return;
  }
  if (in.op == Opcode::kJmpR || in.op == Opcode::kCallR) {
    ExprRef target = regs.gpr[in.rs1];
    if (target == nullptr) return;
    NoteSymbolicInstr(ev);
    switch (config_.jump_policy) {
      case SymJumpPolicy::kUnmodeled:
        state_.diag().Raise(ErrorStage::kEs3,
                            "symbolic jump target not modeled", ev.pc);
        break;
      case SymJumpPolicy::kBuggyResolve:
        // Angr's resolver gives up when the target came through its
        // symbolic-memory map (jump tables indexed by symbolic offsets).
        if (state_.MaxDerefDepth(target) > 0) {
          state_.diag().Raise(
              ErrorStage::kEs3,
              "cannot model jump targets drawn from symbolic memory",
              ev.pc);
          break;
        }
        state_.jumps().push_back(
            {target, ev.next_pc, ev.pc, result_.events_processed});
        break;
      case SymJumpPolicy::kSolveTargets:
        state_.jumps().push_back(
            {target, ev.next_pc, ev.pc, result_.events_processed});
        break;
    }
  }
}

void TraceExecutor::HandleTrap(const TraceEvent& ev, SymRegs& regs) {
  auto& pool = state_.pool();
  const auto& in = ev.instr;
  // The guarding expression whose value decided trap vs no-trap.
  ExprRef guard = nullptr;
  Kind cmp = Kind::kEq;
  uint64_t concrete = 0;
  switch (in.op) {
    case Opcode::kUDiv:
    case Opcode::kSDiv:
    case Opcode::kURem:
    case Opcode::kSRem:
      guard = regs.gpr[in.rs2];
      concrete = ev.rs2_val;
      cmp = Kind::kEq;  // trap iff divisor == 0
      break;
    case Opcode::kTrapZ:
      guard = regs.gpr[in.rs1];
      concrete = ev.rs1_val;
      cmp = Kind::kEq;  // trap iff value == 0
      break;
    case Opcode::kTrapNeg:
      guard = regs.gpr[in.rs1];
      concrete = ev.rs1_val;
      cmp = Kind::kSlt;  // trap iff value < 0
      break;
    default:
      return;
  }
  if (guard == nullptr) return;  // concrete guard: nothing symbolic here
  NoteSymbolicInstr(ev);
  switch (config_.trap_model) {
    case TrapModel::kFollowTrace: {
      ExprRef trap_cond =
          cmp == Kind::kEq
              ? pool.Eq(guard, pool.Const(0, 64))
              : pool.Binary(Kind::kSlt, guard, pool.Const(0, 64));
      ExprRef cond = ev.trapped ? trap_cond : pool.Not(trap_cond);
      (void)concrete;
      PathConstraint pc_rec;
      pc_rec.cond = cond;
      pc_rec.pc = ev.pc;
      pc_rec.event_index = result_.events_processed;
      pc_rec.in_lib = InLib(ev.pc);
      // Negating a no-trap path enters the handler; negating a trapping
      // path resumes at the next instruction.
      pc_rec.negated_successor =
          ev.trapped ? ev.pc + isa::kInstrBytes : trap_handler_[ev.pid];
      pc_rec.occurrence = NextOccurrence(ev.pc);
      state_.path().push_back(pc_rec);
      break;
    }
    case TrapModel::kLiftFailure:
      state_.diag().Raise(ErrorStage::kEs1,
                          "trap semantics not liftable: " +
                              lift::RenderIl(ev),
                          ev.pc);
      break;
    case TrapModel::kEmulationAbort:
      result_.aborted = true;
      result_.abort_reason =
          "emulator cannot vector trap state with symbolic guard";
      break;
    case TrapModel::kMisModeled:
      state_.diag().Raise(ErrorStage::kEs2,
                          "trap successor state dropped (mis-modeled)",
                          ev.pc);
      break;
  }
}

void TraceExecutor::HandleFp(const TraceEvent& ev, SymRegs& regs) {
  auto& pool = state_.pool();
  const auto& in = ev.instr;
  auto fsrc = [&](uint8_t reg, uint64_t bits) {
    return Materialize(regs.fpr[reg], bits);
  };
  const bool any_symbolic =
      (in.op == Opcode::kCvtIF || in.op == Opcode::kMovGF
           ? regs.gpr[in.rs1] != nullptr
           : regs.fpr[in.rs1] != nullptr) ||
      (isa::GetOpcodeInfo(in.op).form == isa::OperandForm::kRdRsRs &&
       regs.fpr[in.rs2] != nullptr);
  if (!any_symbolic) {
    // Concrete FP: clear destination.
    switch (in.op) {
      case Opcode::kFCmpEq:
      case Opcode::kFCmpLt:
      case Opcode::kFCmpLe:
      case Opcode::kCvtFI:
      case Opcode::kMovFG:
        regs.gpr[in.rd] = nullptr;
        break;
      default:
        regs.fpr[in.rd] = nullptr;
        break;
    }
    return;
  }
  NoteSymbolicInstr(ev);
  switch (in.op) {
    case Opcode::kFAdd:
      regs.fpr[in.rd] = pool.Binary(Kind::kFAdd, fsrc(in.rs1, ev.rs1_val),
                                    fsrc(in.rs2, ev.rs2_val));
      break;
    case Opcode::kFSub:
      regs.fpr[in.rd] = pool.Binary(Kind::kFSub, fsrc(in.rs1, ev.rs1_val),
                                    fsrc(in.rs2, ev.rs2_val));
      break;
    case Opcode::kFMul:
      regs.fpr[in.rd] = pool.Binary(Kind::kFMul, fsrc(in.rs1, ev.rs1_val),
                                    fsrc(in.rs2, ev.rs2_val));
      break;
    case Opcode::kFDiv:
      regs.fpr[in.rd] = pool.Binary(Kind::kFDiv, fsrc(in.rs1, ev.rs1_val),
                                    fsrc(in.rs2, ev.rs2_val));
      break;
    case Opcode::kFCmpEq:
    case Opcode::kFCmpLt:
    case Opcode::kFCmpLe: {
      const Kind k = in.op == Opcode::kFCmpEq
                         ? Kind::kFEq
                         : in.op == Opcode::kFCmpLt ? Kind::kFLt : Kind::kFLe;
      regs.gpr[in.rd] = pool.ZExt(
          pool.Binary(k, fsrc(in.rs1, ev.rs1_val), fsrc(in.rs2, ev.rs2_val)),
          64);
      break;
    }
    case Opcode::kCvtIF:
      regs.fpr[in.rd] = pool.Unary(
          Kind::kFFromSInt, Materialize(regs.gpr[in.rs1], ev.rs1_val));
      break;
    case Opcode::kCvtFI:
      regs.gpr[in.rd] =
          pool.Unary(Kind::kFToSInt, fsrc(in.rs1, ev.rs1_val));
      break;
    case Opcode::kFMov:
      regs.fpr[in.rd] = regs.fpr[in.rs1];
      break;
    case Opcode::kMovGF:
      regs.fpr[in.rd] = regs.gpr[in.rs1];
      break;
    case Opcode::kMovFG:
      regs.gpr[in.rd] = regs.fpr[in.rs1];
      break;
    default:
      break;
  }
}

void TraceExecutor::HandleSyscall(const TraceEvent& ev, SymRegs& regs) {
  auto& pool = state_.pool();
  const int32_t num = ev.sys_num;

  if (num == vm::kSysSetTrap) trap_handler_[ev.pid] = ev.sys_args[0];

  if (config_.abort_on_file_write && num == vm::kSysOpen &&
      (ev.sys_args[1] & 1) != 0) {
    result_.aborted = true;
    result_.abort_reason = "file creation unsupported in environment model";
    return;
  }

  if (config_.aborting_syscalls.count(num) != 0) {
    result_.aborted = true;
    result_.abort_reason =
        StrFormat("unsupported syscall %d in environment model", num);
    return;
  }

  // Bytes leaving the process.
  bool name_symbolic = false;  // a symbolic *selector* (file name, key)
  if (ev.sys_in_len > 0 && ev.channel != vm::kChannelNone) {
    bool any_symbolic = false;
    std::vector<ExprRef> bytes(ev.sys_in_len);
    for (uint32_t i = 0; i < ev.sys_in_len; ++i) {
      bytes[i] = state_.MemByte(ev.sys_in_addr + i);
      if (bytes[i] != nullptr) any_symbolic = true;
    }
    const bool pipe_chan = (ev.channel >> 60) == 0x9;
    const bool tracked =
        config_.track_channels || (pipe_chan && config_.track_pipe_channels);
    if (num == vm::kSysOpen || num == vm::kSysEchoLoad ||
        num == vm::kSysUnlink) {
      // The symbolic bytes *name* an environment object rather than flow
      // through it — the contextual-symbolic-value challenge.
      if (any_symbolic) {
        name_symbolic = true;
        NoteSymbolicInstr(ev);
        state_.diag().Raise(
            config_.contextual_error_stage == ErrorStageHint::kEs3
                ? ErrorStage::kEs3
                : ErrorStage::kEs2,
            "symbolic value names an environment object", ev.pc);
      }
    } else if (any_symbolic) {
      NoteSymbolicInstr(ev);
      if (tracked) {
        state_.Channel(ev.channel) = bytes;
      } else {
        state_.diag().Raise(ErrorStage::kEs2,
                            "symbolic data escaped through an untracked "
                            "channel",
                            ev.pc);
      }
    }
  }

  // Special case: the echo/TLS stores carry their value in a register.
  if (num == vm::kSysEchoStore || num == vm::kSysTlsStore) {
    ExprRef value = regs.gpr[2];
    if (value != nullptr) {
      NoteSymbolicInstr(ev);
      if (config_.track_channels) {
        std::vector<ExprRef> bytes(8);
        for (unsigned i = 0; i < 8; ++i) {
          bytes[i] = pool.Extract(value, 8 * i + 7, 8 * i);
        }
        state_.Channel(ev.channel) = bytes;
      } else {
        state_.diag().Raise(ErrorStage::kEs2,
                            "symbolic data escaped through an untracked "
                            "channel",
                            ev.pc);
      }
    }
  }

  // Bytes entering the process.
  if (ev.sys_out_len > 0) {
    const bool pipe_chan = (ev.channel >> 60) == 0x9;
    const bool tracked =
        config_.track_channels || (pipe_chan && config_.track_pipe_channels);
    const bool have = state_.ChannelKnown(ev.channel);
    for (uint32_t i = 0; i < ev.sys_out_len; ++i) {
      ExprRef byte = nullptr;
      if (tracked && have) {
        const auto& chan = state_.Channel(ev.channel);
        if (i < chan.size()) byte = chan[i];
      }
      state_.SetMemByte(ev.sys_out_addr + i, byte);
      store_overlay_.erase(ev.sys_out_addr + i);  // content unknown
      if (byte != nullptr) NoteSymbolicInstr(ev);
    }
  }

  // Return value. A simulated syscall with a *symbolic selector* is beyond
  // the SimProcedure: it concretizes the name and the propagation is lost
  // (no unconstrained return, contextual diag already raised above).
  ExprRef ret = nullptr;
  if (config_.syscall_model == SyscallModel::kSimulateUnconstrained &&
      config_.unconstrained_syscalls.count(num) != 0 && !name_symbolic) {
    ret = state_.FreshSymbol(StrFormat("sysenv%d", num), 64);
    result_.env_symbols.insert(ret->name);
    NoteSymbolicInstr(ev);
  } else if ((num == vm::kSysEchoLoad || num == vm::kSysTlsLoad) &&
             config_.track_channels &&
             state_.ChannelKnown(ev.channel)) {
    const auto& chan = state_.Channel(ev.channel);
    ExprRef v = nullptr;
    for (unsigned i = 8; i > 0; --i) {
      ExprRef byte = i - 1 < chan.size() ? chan[i - 1] : nullptr;
      if (byte == nullptr) {
        byte = pool.Const((ev.sys_ret >> (8 * (i - 1))) & 0xff, 8);
      }
      v = v == nullptr ? byte : pool.Concat(v, byte);
    }
    ret = v;
    if (ret != nullptr) NoteSymbolicInstr(ev);
  }
  regs.gpr[0] = ret;

  // Fork: the child inherits the parent's symbolic registers and memory.
  if (num == vm::kSysFork && ev.sys_ret != 0) {
    const auto child_pid = static_cast<uint32_t>(ev.sys_ret);
    SymRegs child = regs;
    child.gpr[0] = nullptr;  // child sees concrete 0
    state_.Regs(child_pid, 1) = child;
    // Memory is pid-qualified lazily; both share this map in our model —
    // sound here because fork in the bombs happens before address reuse
    // diverges. (Documented simplification.)
  }
}

SymTraceResult TraceExecutor::Execute(std::span<const TraceEvent> events) {
  if (!root_latched_ && !events.empty()) {
    root_pid_ = events.front().pid;
    root_tid_ = events.front().tid;
    root_latched_ = true;
  }

  for (const TraceEvent& ev : events) {
    if (result_.aborted) break;
    ++result_.events_processed;
    const auto& info = isa::GetOpcodeInfo(ev.instr.op);
    SymRegs& regs = state_.Regs(ev.pid, ev.tid);

    // Library skipping (Angr-NoLib).
    if (config_.lib_mode == LibMode::kSkipUnconstrained) {
      const uint64_t tk = ThreadKey(ev);
      auto it = skip_until_.find(tk);
      if (it != skip_until_.end()) {
        if (ev.pc == it->second && !InLib(ev.pc)) {
          skip_until_.erase(it);
          // The skipped external call returns unconstrained symbols in
          // both return registers (integer r0 and floating-point f0).
          ExprRef sym = state_.FreshSymbol("extenv", 64);
          regs.gpr[0] = sym;
          result_.env_symbols.insert(sym->name);
          ExprRef fsym = state_.FreshSymbol("extenvf", 64);
          regs.fpr[0] = fsym;
          result_.env_symbols.insert(fsym->name);
        } else {
          // Still inside the library. Memory the skipped code writes is
          // unconstrained from the engine's point of view (the library
          // never "ran" in its model).
          if (isa::GetOpcodeInfo(ev.instr.op).is_store &&
              ev.instr.op != Opcode::kCall && ev.instr.op != Opcode::kCallR) {
            const unsigned width = isa::GetOpcodeInfo(ev.instr.op).mem_width;
            ExprRef sym =
                state_.FreshSymbol("extenvm", width * 8);
            result_.env_symbols.insert(sym->name);
            StoreBytes(ev.mem_addr, width, sym, ev.mem_value);
          }
          continue;
        }
      }
      if ((ev.instr.op == Opcode::kCall || ev.instr.op == Opcode::kCallR) &&
          !InLib(ev.pc) && InLib(ev.next_pc)) {
        skip_until_[tk] = ev.pc + isa::kInstrBytes;
        continue;
      }
      if (InLib(ev.pc)) continue;  // stray library instruction
    }

    // Cross-thread / cross-process isolation failures.
    const bool foreign_process = ev.pid != root_pid_;
    const bool foreign_thread = !foreign_process && ev.tid != root_tid_;
    if ((foreign_process && !config_.cross_process) ||
        (foreign_thread && !config_.cross_thread)) {
      // The engine does not model this execution context: any symbolic
      // data it would propagate is silently lost. Detect loss for the
      // diagnostic, then clear destinations.
      bool had_symbolic = false;
      SymRegs& fregs = state_.Regs(ev.pid, ev.tid);
      if (fregs.gpr[ev.instr.rs1] != nullptr ||
          fregs.gpr[ev.instr.rs2] != nullptr ||
          fregs.gpr[ev.instr.rd] != nullptr) {
        had_symbolic = true;
      }
      if (info.is_load || info.is_store) {
        for (unsigned i = 0; i < info.mem_width; ++i) {
          if (state_.MemByte(ev.mem_addr + i) != nullptr) {
            had_symbolic = true;
          }
        }
      }
      if (had_symbolic) {
        state_.diag().Raise(
            ErrorStage::kEs2,
            foreign_process
                ? "symbolic data crossed an unmodeled process boundary"
                : "symbolic data crossed an unmodeled thread boundary",
            ev.pc);
      }
      // Clear whatever this event wrote.
      if (info.is_store) {
        StoreBytes(ev.mem_addr, info.mem_width, nullptr, ev.mem_value);
      }
      fregs.gpr[ev.instr.rd] = nullptr;
      continue;
    }

    // Aborting opcodes (Angr's emulator dying on FP under loaded libs).
    if (config_.aborting_opcodes.count(ev.instr.op) != 0) {
      bool symbolic_involved =
          regs.gpr[ev.instr.rs1] != nullptr ||
          regs.gpr[ev.instr.rs2] != nullptr ||
          regs.fpr[ev.instr.rs1 % isa::kNumFpr] != nullptr ||
          regs.fpr[ev.instr.rs2 % isa::kNumFpr] != nullptr;
      if (symbolic_involved) {
        result_.aborted = true;
        result_.abort_reason =
            "emulation failure on " +
            std::string(isa::GetOpcodeInfo(ev.instr.op).mnemonic);
        break;
      }
    }

    // Unsupported lifting (Es1).
    if (config_.unsupported_opcodes.count(ev.instr.op) != 0) {
      bool symbolic_involved = regs.gpr[ev.instr.rs1] != nullptr ||
                               regs.gpr[ev.instr.rs2] != nullptr ||
                               regs.gpr[ev.instr.rd] != nullptr ||
                               regs.fpr[ev.instr.rs1 % isa::kNumFpr] !=
                                   nullptr ||
                               regs.fpr[ev.instr.rs2 % isa::kNumFpr] !=
                                   nullptr;
      if (info.is_load) {
        for (unsigned i = 0; i < info.mem_width; ++i) {
          if (state_.MemByte(ev.mem_addr + i) != nullptr) {
            symbolic_involved = true;
          }
        }
      }
      if (symbolic_involved) {
        state_.diag().Raise(ErrorStage::kEs1,
                            "unsupported instruction: " + lift::RenderIl(ev),
                            ev.pc);
        // The tool loses the data here: clear destinations.
        if (info.is_fp) {
          regs.fpr[ev.instr.rd % isa::kNumFpr] = nullptr;
        }
        regs.gpr[ev.instr.rd] = nullptr;
        continue;
      }
    }

    // Traps first (they may abort); then dispatch by family.
    if (info.can_trap) {
      HandleTrap(ev, regs);
      if (result_.aborted) break;
      if (ev.trapped) continue;  // rd not written on the trapping path
      if (ev.instr.op == Opcode::kTrapZ || ev.instr.op == Opcode::kTrapNeg) {
        continue;
      }
    }

    if (ev.instr.op == Opcode::kSys) {
      HandleSyscall(ev, regs);
      continue;
    }
    if (info.is_fp) {
      HandleMemory(ev, regs);  // fld/fst
      if (ev.instr.op != Opcode::kFLd && ev.instr.op != Opcode::kFSt) {
        HandleFp(ev, regs);
      }
      continue;
    }
    if (info.is_branch || ev.instr.op == Opcode::kJmpR ||
        ev.instr.op == Opcode::kCallR) {
      HandleBranch(ev, regs);
      if (ev.instr.op == Opcode::kCallR || ev.instr.op == Opcode::kCall) {
        HandleMemory(ev, regs);  // return-address push
      }
      continue;
    }
    if (info.is_load || info.is_store) {
      HandleMemory(ev, regs);
      continue;
    }
    HandleAlu(ev, regs);
  }
  return result_;
}

}  // namespace sbce::symex
