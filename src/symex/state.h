// Symbolic machine state threaded through a trace walk.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/obs/trace_sink.h"
#include "src/solver/expr.h"

namespace sbce::symex {

/// The paper's four symbolic-reasoning error stages plus engine aborts.
enum class ErrorStage : uint8_t {
  kEs0 = 0,  // symbolic variable declaration
  kEs1,      // instruction tracing / lifting
  kEs2,      // data propagation
  kEs3,      // constraint modeling
};

struct Diagnostic {
  ErrorStage stage;
  std::string detail;
  uint64_t pc = 0;
};

/// Stage label as printed in the paper's grid ("Es0".."Es3").
std::string_view ErrorStageLabel(ErrorStage stage);

struct Diagnostics {
  std::vector<Diagnostic> entries;
  /// When a sink is installed, every Raise is mirrored as a "symex.diag"
  /// event (stage, pc, detail). Empty tracer = zero overhead.
  obs::Tracer tracer;
  void Raise(ErrorStage stage, std::string detail, uint64_t pc = 0) {
    tracer.Event("symex.diag", {obs::Field::S("stage", ErrorStageLabel(stage)),
                                obs::Field::U("pc", pc),
                                obs::Field::S("detail", detail)});
    entries.push_back({stage, std::move(detail), pc});
  }
  bool Has(ErrorStage stage) const {
    for (const auto& d : entries) {
      if (d.stage == stage) return true;
    }
    return false;
  }
};

/// One recorded conditional along the walked path.
struct PathConstraint {
  solver::ExprRef cond = nullptr;  // 1-bit, true along the observed path
  uint64_t pc = 0;
  size_t event_index = 0;
  bool in_lib = false;             // raised inside the library text region
  /// Where control would go if the condition were negated (fallthrough /
  /// branch target / trap handler); 0 when unknown. Drives directed search.
  uint64_t negated_successor = 0;
  /// How many times this pc had produced constraints before this one
  /// (distinguishes loop iterations when deduplicating negations).
  uint32_t occurrence = 0;
};

/// A symbolic indirect-jump site (the symbolic-jump challenge).
struct SymbolicJump {
  solver::ExprRef target = nullptr;  // 64-bit target expression
  uint64_t observed_target = 0;
  uint64_t pc = 0;
  size_t event_index = 0;
};

/// Per-(pid,tid) register file of expressions; null slot = concrete (take
/// the traced value).
struct SymRegs {
  std::array<solver::ExprRef, 16> gpr{};
  std::array<solver::ExprRef, 8> fpr{};
};

class SymState {
 public:
  explicit SymState(solver::ExprPool* pool) : pool_(*pool) {}

  solver::ExprPool& pool() { return pool_; }

  SymRegs& Regs(uint32_t pid, uint32_t tid) {
    return regs_[(static_cast<uint64_t>(pid) << 32) | tid];
  }

  /// Symbolic byte at `addr`, or null if memory there is concrete.
  solver::ExprRef MemByte(uint64_t addr) const {
    auto it = mem_.find(addr);
    return it == mem_.end() ? nullptr : it->second;
  }
  void SetMemByte(uint64_t addr, solver::ExprRef e) {
    if (e == nullptr) {
      mem_.erase(addr);
    } else {
      mem_[addr] = e;
    }
  }
  size_t SymbolicByteCount() const { return mem_.size(); }

  // --- Deref-depth tracking for the symbolic-array policy ---------------
  /// Marks `e` as the result of a symbolic-address load whose address
  /// sat `depth - 1` nested derefs deep (a plain symbolic index is 1).
  void MarkDerefResult(solver::ExprRef e, unsigned depth = 1) {
    deref_results_[e] = std::max(deref_results_[e], depth);
  }
  /// Deepest deref nesting reachable from `e` (0 = no node of `e` was
  /// produced by a symbolic-address load). A load indexed by `e` sits at
  /// MaxDerefDepth(e) + 1 — the executor compares that against
  /// Config::max_deref_depth to decide whether the memory model still
  /// covers the chain.
  unsigned MaxDerefDepth(solver::ExprRef e) const;

  // --- Covert channels ---------------------------------------------------
  /// Bytes most recently written into a channel (file/pipe/echo), as
  /// expressions; nullptr entries are concrete bytes.
  std::vector<solver::ExprRef>& Channel(uint64_t id) { return channels_[id]; }
  bool ChannelKnown(uint64_t id) const { return channels_.count(id) != 0; }

  std::vector<PathConstraint>& path() { return path_; }
  const std::vector<PathConstraint>& path() const { return path_; }

  std::vector<SymbolicJump>& jumps() { return jumps_; }

  Diagnostics& diag() { return diag_; }
  const Diagnostics& diag() const { return diag_; }

  /// Allocates a fresh unconstrained symbol (for simulated syscalls and
  /// skipped library calls).
  solver::ExprRef FreshSymbol(std::string_view prefix, unsigned width);

  /// True once any input-derived expression exists anywhere in the state.
  bool AnySymbolicSeen() const { return any_symbolic_seen_; }
  void NoteSymbolicSeen() { any_symbolic_seen_ = true; }

 private:
  solver::ExprPool& pool_;
  std::unordered_map<uint64_t, SymRegs> regs_;
  std::unordered_map<uint64_t, solver::ExprRef> mem_;
  std::unordered_map<solver::ExprRef, unsigned> deref_results_;
  std::unordered_map<uint64_t, std::vector<solver::ExprRef>> channels_;
  std::vector<PathConstraint> path_;
  std::vector<SymbolicJump> jumps_;
  Diagnostics diag_;
  uint64_t fresh_counter_ = 0;
  bool any_symbolic_seen_ = false;
};

}  // namespace sbce::symex
