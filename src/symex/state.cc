#include "src/symex/state.h"

#include <algorithm>

#include "src/support/str.h"

namespace sbce::symex {

std::string_view ErrorStageLabel(ErrorStage stage) {
  switch (stage) {
    case ErrorStage::kEs0: return "Es0";
    case ErrorStage::kEs1: return "Es1";
    case ErrorStage::kEs2: return "Es2";
    case ErrorStage::kEs3: return "Es3";
  }
  return "?";
}

unsigned SymState::MaxDerefDepth(solver::ExprRef e) const {
  if (deref_results_.empty()) return 0;
  unsigned depth = 0;
  std::vector<solver::ExprRef> stack = {e};
  std::unordered_set<solver::ExprRef> seen;
  while (!stack.empty()) {
    solver::ExprRef cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    if (auto it = deref_results_.find(cur); it != deref_results_.end()) {
      depth = std::max(depth, it->second);
      // Deref results subsume their operands' depths; no need to descend.
      continue;
    }
    for (int i = 0; i < cur->nargs; ++i) stack.push_back(cur->args[i]);
  }
  return depth;
}

solver::ExprRef SymState::FreshSymbol(std::string_view prefix,
                                      unsigned width) {
  NoteSymbolicSeen();
  return pool_.Var(
      StrFormat("%.*s_%llu", static_cast<int>(prefix.size()), prefix.data(),
                static_cast<unsigned long long>(fresh_counter_++)),
      width);
}

}  // namespace sbce::symex
