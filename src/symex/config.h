// Mechanism configuration for the symbolic executor.
//
// Every knob here is a *mechanism* a real concolic engine either has or
// lacks; the tool profiles in src/tools assemble combinations of them to
// model BAP, Triton, Angr and Angr-NoLib. Failures in the paper's grid
// emerge from running the pipeline under these configurations.
#pragma once

#include <cstdint>
#include <set>

#include "src/isa/opcode.h"

namespace sbce::symex {

/// Mirror of symex::ErrorStage usable before state.h is included.
enum class ErrorStageHint : uint8_t { kEs2, kEs3 };

/// What to do when a load's address expression is symbolic.
enum class SymAddrPolicy : uint8_t {
  /// Use the concretely observed address; flag Es3 if the value feeds a
  /// branch (BAP/Triton have no symbolic-memory model).
  kConcretize,
  /// Angr-style memory map: expand to an ITE chain over a window around
  /// the observed address, up to max_deref_depth nested derefs.
  kExpandWindow,
};

/// What to do with an indirect jump whose target is symbolic.
enum class SymJumpPolicy : uint8_t {
  kUnmodeled,     // no mechanism: flag Es3, follow the concrete target
  kBuggyResolve,  // attempts to solve for targets but mis-applies the
                  // instruction base (modeled Angr data-propagation bug →
                  // generates a wrong input, Es2 at validation)
  kSolveTargets,  // sound: constrain target == desired address (ideal)
};

/// How syscall return values enter the symbolic state.
enum class SyscallModel : uint8_t {
  /// Returns are the concrete traced values (pure concolic: BAP/Triton).
  kConcreteTrace,
  /// Simulation: selected syscalls return fresh unconstrained symbols
  /// (Angr's SimProcedures) — enables P/false-positive outcomes.
  kSimulateUnconstrained,
};

/// How code in the library text region is handled.
enum class LibMode : uint8_t {
  kTrace,              // lift/execute library instructions like any other
  kSkipUnconstrained,  // skip them; calls into the region return a fresh
                       // unconstrained symbol (Angr-NoLib)
};

/// How hardware traps (divide-by-zero, trapz/trapneg) are modeled.
enum class TrapModel : uint8_t {
  kFollowTrace,   // handler instructions are in the trace; just follow them
                  // and add the trap-guard constraint (BAP-style, sound)
  kLiftFailure,   // the lifter cannot express the trap: Es1 (Triton)
  kEmulationAbort,// emulator cannot vector the trap: engine exception → E
  kMisModeled,    // continues past the trap without the guard constraint:
                  // propagation silently wrong → Es2 at validation
};

struct SymexConfig {
  SymAddrPolicy addr_policy = SymAddrPolicy::kConcretize;
  /// ± window (bytes) for kExpandWindow ITE expansion.
  unsigned addr_window = 96;
  /// Max nested symbolic-deref chain depth for kExpandWindow (Angr solves
  /// one-level symbolic arrays, not two-level).
  unsigned max_deref_depth = 1;

  SymJumpPolicy jump_policy = SymJumpPolicy::kUnmodeled;
  SyscallModel syscall_model = SyscallModel::kConcreteTrace;
  LibMode lib_mode = LibMode::kTrace;
  TrapModel trap_model = TrapModel::kFollowTrace;

  /// Track symbolic data across covert channels (files, pipes, the echo
  /// store). No real tool in the study does; the ideal engine can.
  bool track_channels = false;
  /// Propagate symbolic data through events of non-root threads/processes.
  bool cross_thread = true;
  bool cross_process = false;

  /// Opcodes this tool's lifter cannot express. Reaching one with symbolic
  /// operands raises Es1 (e.g., Triton lacks cvtsi2sd/ucomisd analogues).
  std::set<isa::Opcode> unsupported_opcodes;

  /// Opcodes whose symbolic execution aborts the engine outright (Angr's
  /// emulator dying on FP paths with loaded libraries → outcome E).
  std::set<isa::Opcode> aborting_opcodes;

  /// Error stage reported when a symbolic value names an environment
  /// object (file name, syscall selector). BAP/Angr report this as lost
  /// propagation (Es2); Triton's SSA modeling surfaces it as a constraint
  /// gap (Es3).
  ErrorStageHint contextual_error_stage = ErrorStageHint::kEs2;

  /// Track symbolic data through pipes specifically (Angr-NoLib's pipe
  /// SimProcedure works without loaded libraries; nobody tracks files).
  bool track_pipe_channels = false;

  /// Abort (outcome E) when the program creates a file — Angr's simulated
  /// filesystem in the studied version choked on write-mode opens.
  bool abort_on_file_write = false;

  /// Syscalls whose mere occurrence aborts the engine (unsupported
  /// environment modeling → the paper's E outcomes), e.g. the web fetch
  /// under Angr's loader.
  std::set<int32_t> aborting_syscalls;

  /// Under kSimulateUnconstrained: syscalls whose return value becomes a
  /// fresh unconstrained symbol.
  std::set<int32_t> unconstrained_syscalls;

  /// First address of the guest library text region ("shared library").
  uint64_t lib_text_base = 0x40000;
};

/// Which program inputs are declared symbolic before execution (the
/// paper's "symbolic variable declaration" stage, Es0 when wrong).
struct SymbolicSources {
  bool argv = true;
  /// 0: each argv[i] contributes exactly strlen(seed) symbolic bytes with
  /// a concrete NUL terminator (fixed length — BAP/Triton).
  /// N>0: a window of N symbolic bytes per argument; the guest-visible
  /// length is free up to N (Angr's fixed-bit-width trick).
  unsigned argv_max_len = 0;
  bool time = false;
  bool web = false;
  bool stdin_bytes = false;
};

}  // namespace sbce::symex
