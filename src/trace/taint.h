// Forward dynamic taint analysis over a trace.
//
// The paper's conceptual framework (§III.B) filters the instruction trace
// with taint analysis before lifting: only instructions whose operands
// depend on symbolic sources matter for constraint extraction. This module
// is that filter as a standalone, boolean-precision engine — it answers
// "which instructions, branches and jumps touched input-derived data"
// without building expressions. The symbolic executor re-derives the same
// propagation at expression precision; tests cross-check the two.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/vm/trace_event.h"

namespace sbce::trace {

struct TaintConfig {
  /// Propagate through file/pipe/echo channels (write tainted → channel
  /// tainted → reads from it tainted).
  bool track_channels = true;
  /// Propagate through events of non-root threads / processes.
  bool cross_thread = true;
  bool cross_process = true;
};

struct TaintReport {
  /// Events whose executed instruction consumed or produced tainted data.
  size_t tainted_instructions = 0;
  /// Event sequence numbers of conditional branches on tainted registers.
  std::vector<uint64_t> tainted_branches;
  /// ...and of indirect jumps through tainted registers.
  std::vector<uint64_t> tainted_jumps;
  /// ...and of memory accesses whose *address* was tainted.
  std::vector<uint64_t> tainted_addresses;
  /// Channels that received tainted bytes.
  std::unordered_set<vm::ChannelId> tainted_channels;
  size_t events_processed = 0;
};

class TaintEngine {
 public:
  explicit TaintEngine(TaintConfig config = TaintConfig())
      : config_(config) {}

  /// Declares `len` bytes at `addr` as a taint source (e.g. argv bytes).
  void MarkMemory(uint64_t addr, size_t len);

  void ProcessEvent(const vm::TraceEvent& event);

  /// Convenience: processes a whole trace.
  void ProcessTrace(const std::vector<vm::TraceEvent>& events) {
    for (const auto& ev : events) ProcessEvent(ev);
  }

  const TaintReport& report() const { return report_; }

  bool RegTainted(uint32_t pid, uint32_t tid, uint8_t reg) const;
  bool FprTainted(uint32_t pid, uint32_t tid, uint8_t reg) const;
  bool MemTainted(uint64_t addr) const { return mem_.count(addr) != 0; }

 private:
  struct RegFile {
    uint32_t gpr = 0;  // bitmask over 16 registers
    uint8_t fpr = 0;   // bitmask over 8 registers
  };

  static uint64_t ThreadKey(uint32_t pid, uint32_t tid) {
    return (static_cast<uint64_t>(pid) << 32) | tid;
  }

  RegFile& Regs(uint32_t pid, uint32_t tid) {
    return regs_[ThreadKey(pid, tid)];
  }

  void SetMem(uint64_t addr, unsigned width, bool tainted);
  bool AnyMem(uint64_t addr, unsigned width) const;
  void HandleSyscall(const vm::TraceEvent& ev, RegFile& regs);

  TaintConfig config_;
  std::unordered_map<uint64_t, RegFile> regs_;
  std::unordered_set<uint64_t> mem_;
  TaintReport report_;
  uint32_t root_pid_ = 0;
  uint32_t root_tid_ = 0;
  bool root_known_ = false;
};

}  // namespace sbce::trace
