#include "src/trace/taint.h"

#include "src/isa/opcode.h"
#include "src/vm/syscalls.h"

namespace sbce::trace {

using isa::Opcode;
using isa::OperandForm;

void TaintEngine::MarkMemory(uint64_t addr, size_t len) {
  for (size_t i = 0; i < len; ++i) mem_.insert(addr + i);
}

bool TaintEngine::RegTainted(uint32_t pid, uint32_t tid, uint8_t reg) const {
  auto it = regs_.find(ThreadKey(pid, tid));
  return it != regs_.end() && (it->second.gpr >> reg) & 1u;
}

bool TaintEngine::FprTainted(uint32_t pid, uint32_t tid, uint8_t reg) const {
  auto it = regs_.find(ThreadKey(pid, tid));
  return it != regs_.end() && (it->second.fpr >> reg) & 1u;
}

void TaintEngine::SetMem(uint64_t addr, unsigned width, bool tainted) {
  for (unsigned i = 0; i < width; ++i) {
    if (tainted) {
      mem_.insert(addr + i);
    } else {
      mem_.erase(addr + i);
    }
  }
}

bool TaintEngine::AnyMem(uint64_t addr, unsigned width) const {
  for (unsigned i = 0; i < width; ++i) {
    if (mem_.count(addr + i) != 0) return true;
  }
  return false;
}

void TaintEngine::HandleSyscall(const vm::TraceEvent& ev, RegFile& regs) {
  bool touched = false;
  // Bytes leaving the process.
  if (ev.sys_in_len > 0 && AnyMem(ev.sys_in_addr, ev.sys_in_len)) {
    touched = true;
    if (config_.track_channels && ev.channel != vm::kChannelNone) {
      report_.tainted_channels.insert(ev.channel);
    }
  }
  // Register-carried channel value (echo/tls store).
  if ((ev.sys_num == vm::kSysEchoStore || ev.sys_num == vm::kSysTlsStore) &&
      ((regs.gpr >> 2) & 1u)) {
    touched = true;
    if (config_.track_channels) report_.tainted_channels.insert(ev.channel);
  }
  // Bytes entering the process.
  const bool channel_tainted =
      config_.track_channels &&
      report_.tainted_channels.count(ev.channel) != 0;
  if (ev.sys_out_len > 0) {
    SetMem(ev.sys_out_addr, ev.sys_out_len, channel_tainted);
    if (channel_tainted) touched = true;
  }
  // Return value: tainted only for loads from tainted channels.
  const bool ret_tainted =
      (ev.sys_num == vm::kSysEchoLoad || ev.sys_num == vm::kSysTlsLoad) &&
      channel_tainted;
  regs.gpr = (regs.gpr & ~1u) | (ret_tainted ? 1u : 0u);
  if (ret_tainted) touched = true;
  if (touched) ++report_.tainted_instructions;
}

void TaintEngine::ProcessEvent(const vm::TraceEvent& ev) {
  ++report_.events_processed;
  if (!root_known_) {
    root_pid_ = ev.pid;
    root_tid_ = ev.tid;
    root_known_ = true;
  }
  const bool foreign_process = ev.pid != root_pid_;
  const bool foreign_thread = !foreign_process && ev.tid != root_tid_;
  const bool dropped = (foreign_process && !config_.cross_process) ||
                       (foreign_thread && !config_.cross_thread);

  RegFile& regs = Regs(ev.pid, ev.tid);
  const auto& in = ev.instr;
  const auto& info = isa::GetOpcodeInfo(in.op);

  auto gpr = [&](uint8_t r) { return ((regs.gpr >> r) & 1u) != 0; };
  auto fpr = [&](uint8_t r) { return ((regs.fpr >> r) & 1u) != 0; };
  auto set_gpr = [&](uint8_t r, bool t) {
    regs.gpr = t ? (regs.gpr | (1u << r)) : (regs.gpr & ~(1u << r));
  };
  auto set_fpr = [&](uint8_t r, bool t) {
    regs.fpr = static_cast<uint8_t>(t ? (regs.fpr | (1u << r))
                                      : (regs.fpr & ~(1u << r)));
  };

  if (in.op == Opcode::kSys) {
    if (dropped) {
      // The analysis does not model this context: whatever it moved is
      // untracked; clear the return register.
      set_gpr(0, false);
      return;
    }
    // Fork: the child's register taint mirrors the parent's.
    if (ev.sys_num == vm::kSysFork && ev.sys_ret != 0) {
      RegFile child = regs;
      child.gpr &= ~1u;  // r0 becomes the concrete 0
      regs_[ThreadKey(static_cast<uint32_t>(ev.sys_ret), 1)] = child;
    }
    HandleSyscall(ev, regs);
    return;
  }

  // Gather source taint for this instruction.
  bool src = false;
  switch (info.form) {
    case OperandForm::kRdRsRs:
      src = info.is_fp ? (fpr(in.rs1) || fpr(in.rs2))
                       : (gpr(in.rs1) || gpr(in.rs2));
      break;
    case OperandForm::kRdRs:
      if (in.op == Opcode::kCvtIF || in.op == Opcode::kMovGF) {
        src = gpr(in.rs1);
      } else if (in.op == Opcode::kCvtFI || in.op == Opcode::kMovFG) {
        src = fpr(in.rs1);
      } else {
        src = info.is_fp ? fpr(in.rs1) : gpr(in.rs1);
      }
      break;
    case OperandForm::kRdRsImm:
    case OperandForm::kRsImm:
    case OperandForm::kRs:
      src = gpr(in.rs1);
      break;
    case OperandForm::kMem:
    case OperandForm::kMemX:
      src = gpr(in.rs1) || (info.form == OperandForm::kMemX && gpr(in.rs2));
      break;
    default:
      break;
  }

  bool touched = false;

  // Tainted addresses (the symbolic-array signal).
  if ((info.is_load || info.is_store) && src &&
      info.form != OperandForm::kNone) {
    report_.tainted_addresses.push_back(ev.seq);
    touched = true;
  }

  switch (in.op) {
    // Branches and jumps on tainted data.
    case Opcode::kBz:
    case Opcode::kBnz:
      if (gpr(in.rs1)) {
        report_.tainted_branches.push_back(ev.seq);
        touched = true;
      }
      break;
    case Opcode::kJmpR:
      if (gpr(in.rs1)) {
        report_.tainted_jumps.push_back(ev.seq);
        touched = true;
      }
      break;
    case Opcode::kCallR:
      if (gpr(in.rs1)) {
        report_.tainted_jumps.push_back(ev.seq);
        touched = true;
      }
      SetMem(ev.mem_addr, 8, false);  // pushed return address is clean
      break;

    // Loads: destination taint = loaded bytes ∪ address taint.
    case Opcode::kLd1:
    case Opcode::kLd2:
    case Opcode::kLd4:
    case Opcode::kLd8:
    case Opcode::kLdS1:
    case Opcode::kLdS2:
    case Opcode::kLdS4:
    case Opcode::kLdX1:
    case Opcode::kLdX8:
    case Opcode::kPop: {
      const bool t = AnyMem(ev.mem_addr, info.mem_width) || src;
      if (dropped) {
        set_gpr(in.rd, false);
      } else {
        set_gpr(in.rd, t);
        touched |= t;
      }
      break;
    }
    case Opcode::kFLd: {
      const bool t = AnyMem(ev.mem_addr, info.mem_width);
      set_fpr(in.rd, !dropped && t);
      touched |= t && !dropped;
      break;
    }

    // Stores: memory taint = value register taint.
    case Opcode::kSt1:
    case Opcode::kSt2:
    case Opcode::kSt4:
    case Opcode::kSt8:
    case Opcode::kStX1:
    case Opcode::kStX8: {
      const bool t = !dropped && gpr(in.rd);
      SetMem(ev.mem_addr, info.mem_width, t);
      touched |= t;
      break;
    }
    case Opcode::kPush: {
      const bool t = !dropped && gpr(in.rs1);
      SetMem(ev.mem_addr, 8, t);
      touched |= t;
      break;
    }
    case Opcode::kFSt: {
      const bool t = !dropped && fpr(in.rd);
      SetMem(ev.mem_addr, 8, t);
      touched |= t;
      break;
    }
    case Opcode::kCall:
      SetMem(ev.mem_addr, 8, false);  // return address is clean
      break;

    // FP compares and cross-bank moves write GPRs.
    case Opcode::kFCmpEq:
    case Opcode::kFCmpLt:
    case Opcode::kFCmpLe:
    case Opcode::kCvtFI:
    case Opcode::kMovFG:
      set_gpr(in.rd, !dropped && src);
      touched |= src && !dropped;
      break;
    case Opcode::kCvtIF:
    case Opcode::kMovGF:
    case Opcode::kFMov:
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFDiv:
      set_fpr(in.rd, !dropped && src);
      touched |= src && !dropped;
      break;

    // Plain ALU writes.
    default: {
      const bool writes_rd =
          info.form == OperandForm::kRd || info.form == OperandForm::kRdRs ||
          info.form == OperandForm::kRdImm ||
          info.form == OperandForm::kRdRsRs ||
          info.form == OperandForm::kRdRsImm;
      if (writes_rd) {
        const bool immediate_only = info.form == OperandForm::kRdImm &&
                                    in.op != Opcode::kMovHi;
        bool t = src && !immediate_only;
        if (in.op == Opcode::kMovHi) t = gpr(in.rd);
        set_gpr(in.rd, !dropped && t);
        touched |= t && !dropped;
      }
      break;
    }
  }

  if (touched) ++report_.tainted_instructions;
}

}  // namespace sbce::trace
