// Parametric logic-bomb generator (ROADMAP item 1): grows Table II from a
// fixed 22-bomb dataset into a scalable capability surface.
//
// A CorpusSpec names a deterministic seed plus parameter sweeps over base
// challenge families (array-depth-N, loop-bound-K, syscall-chain-M,
// jump-table-N) and two-stage compositions of any two base families. The
// generator emits complete BombSpecs — SBVM assembly composed from the
// same fragments the hand-written dataset uses, plus the concrete
// ground-truth trigger input derived *at generation time* by inverting
// the emitted tables/constraints. One negative (infeasible) variant is
// generated per family×parameter as a false-positive probe.
//
// Verify-before-admit contract: every generated cell is assembled and
// concretely executed before admission — the seed input must run clean
// without detonating, the derived witness must detonate (or provably not,
// for negatives), and two-stage cells additionally prove each
// single-stage partial input does NOT detonate. A cell failing the gate
// fails Generate() outright: it means the generator itself is wrong.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/bombs/bombs.h"
#include "src/support/status.h"

namespace sbce::corpus {

/// Base parametric challenge families (order is generation order).
enum class Family : uint8_t {
  kArrayDepth,    // digit chained through N permutation tables
  kLoopBound,     // strlen(argv[1]) == K
  kSyscallChain,  // byte round-tripped through M echo-syscall hops
  kJumpTable,     // indirect jump through an N-slot address table
  kTwoStage,      // composition of two distinct base families
};

std::string_view FamilyName(Family f);

/// One family's parameter sweep. The parameter means: depth N, bound K,
/// hop count M, table size N — and for kTwoStage, `param % 6` selects the
/// unordered pair of base families and `param / 6` the inner scale.
struct FamilySweep {
  Family family;
  std::vector<int> params;
};

inline constexpr uint64_t kDefaultSeed = 0x5bce2017;

struct CorpusSpec {
  uint64_t seed = kDefaultSeed;
  std::vector<FamilySweep> sweeps;  // empty == DefaultSweeps()
  bool negatives = true;            // one infeasible variant per cell
};

/// The full default sweep set (36 positives + 36 negatives = 72 cells).
std::vector<FamilySweep> DefaultSweeps();

/// A small one-param-per-family corpus for scripts/check.sh smoke runs.
CorpusSpec SmokeSpec();

struct CorpusCell {
  bombs::BombSpec spec;  // complete, with machine-checkable ground truth
  Family family = Family::kArrayDepth;
  int param = 0;
  bool negative = false;
  /// Two-stage positives only: one input per stage that satisfies *only*
  /// that stage. Verified at generation time to NOT detonate — the joint
  /// witness (spec.witness_argv) is the only trigger.
  std::vector<std::vector<std::string>> partial_inputs;
};

struct Corpus {
  uint64_t seed = 0;
  std::vector<CorpusCell> cells;
  /// FNV-1a over every cell's id, serialized image and ground truth, in
  /// order — equal digests mean byte-identical corpora.
  uint64_t digest = 0;

  const CorpusCell* Find(std::string_view id) const;
};

/// Deterministic generation: the same CorpusSpec always produces
/// byte-identical sources, images and ground truths (pure function of
/// spec.seed — no wall clock, no global randomness). Every cell passes
/// the verify-before-admit gate (bombs::VerifyGroundTruth plus the
/// partial-input checks) or generation fails.
Result<Corpus> Generate(const CorpusSpec& spec);

/// Process-wide registry backing the service's corpus-cell addressing
/// mode: lazily generates (and caches) the default-shape corpus for
/// `seed`. Returns nullptr only if generation fails.
std::shared_ptr<const Corpus> SharedCorpus(uint64_t seed);

}  // namespace sbce::corpus
