#include "src/corpus/corpus.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>

#include "src/guestlib/guestlib.h"
#include "src/support/bits.h"
#include "src/support/str.h"
#include "src/vm/machine.h"

namespace sbce::corpus {

namespace {

// Same suffix as the hand-written dataset: the bomb block and clean exit.
constexpr std::string_view kBombTail = R"(
  bomb:
    sys 16
  exit:
    movi r1, 0
    sys 0
)";

// SplitMix64: the corpus must be a pure function of CorpusSpec.seed, so
// all table contents, magic bytes and slot choices come from this.
struct SplitMix {
  uint64_t s;
  uint64_t Next() {
    s += 0x9e3779b97f4a7c15ull;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  int Range(int n) { return n > 0 ? static_cast<int>(Next() % n) : 0; }
};

// One challenge fragment. Contract: on entry r9 holds the argv[1]
// pointer; the code falls through iff its guard passes and branches to
// `exit` otherwise; r9 is preserved (scratch: r0..r7, r10). `witness`
// maps argv[1] byte index -> the character that passes the guard; `decoy`
// maps the same indexes to in-bounds characters that fail it (used for
// seed inputs and two-stage partial inputs). A loop-bound stage instead
// sets `required_len`.
struct StageCode {
  std::string text;
  std::string data;
  std::map<size_t, char> witness;
  std::map<size_t, char> decoy;
  std::optional<size_t> required_len;
};

StageCode ArrStage(const std::string& p, int depth, size_t byte_index,
                   SplitMix& rng, bool negative) {
  StageCode s;
  // depth-1 permutation tables over 0..9 chained into a final value
  // table holding the magic byte at exactly one slot (no slot at all for
  // the negative variant, so `v == magic` is infeasible).
  std::vector<std::array<int, 10>> perms(depth > 1 ? depth - 1 : 0);
  for (auto& perm : perms) {
    for (int i = 0; i < 10; ++i) perm[i] = i;
    for (int i = 9; i > 0; --i) std::swap(perm[i], perm[rng.Range(i + 1)]);
  }
  const int magic = 0x20 + rng.Range(60);  // < 100, so fillers never match
  // Invert the chain (digit -> perms... -> slot), rejecting witness digit
  // 0: a solver enumerating the `digit < 10` bounds guard lands on '0'
  // first, and a witness there would let a tool trip the bomb without
  // ever modeling the table chain.
  int slot = rng.Range(10);
  int digit = 0;
  for (int attempt = 0; attempt < 10 && digit == 0; ++attempt) {
    digit = slot;
    for (int k = static_cast<int>(perms.size()) - 1; k >= 0; --k) {
      for (int i = 0; i < 10; ++i) {
        if (perms[k][i] == digit) {
          digit = i;
          break;
        }
      }
    }
    if (digit == 0) slot = (slot + 1) % 10;
  }
  s.witness[byte_index] = static_cast<char>('0' + digit);
  s.decoy[byte_index] = static_cast<char>('0' + (digit + 1) % 10);

  s.text += StrFormat("  ld1 r10, [r9+%d]\n", static_cast<int>(byte_index));
  s.text += "  subi r10, r10, '0'\n";
  s.text += "  cmpltui r7, r10, 10\n";
  s.text += "  bz r7, exit\n";
  for (size_t k = 0; k < perms.size(); ++k) {
    s.text += StrFormat("  lea r6, %st%d\n", p.c_str(), static_cast<int>(k));
    s.text += "  ldx1 r10, [r6+r10]\n";
    s.data += StrFormat("%st%d: .byte ", p.c_str(), static_cast<int>(k));
    for (int i = 0; i < 10; ++i) {
      s.data += StrFormat("%s%d", i ? ", " : "", perms[k][i]);
    }
    s.data += "\n";
  }
  s.text += StrFormat("  lea r6, %stf\n", p.c_str());
  s.text += "  ldx1 r10, [r6+r10]\n";
  s.text += StrFormat("  cmpeqi r7, r10, %d\n", magic);
  s.text += "  bz r7, exit\n";
  s.data += StrFormat("%stf: .byte ", p.c_str());
  for (int i = 0; i < 10; ++i) {
    const int v = (!negative && i == slot) ? magic : 100 + i;
    s.data += StrFormat("%s%d", i ? ", " : "", v);
  }
  s.data += "\n";
  return s;
}

StageCode LoopStage(const std::string& p, int bound, bool negative) {
  StageCode s;
  s.required_len = static_cast<size_t>(bound);
  s.text += "  movi r10, 0\n";
  s.text += StrFormat("%slen_loop:\n", p.c_str());
  s.text += "  ldx1 r4, [r9+r10]\n";
  s.text += StrFormat("  bz r4, %slen_done\n", p.c_str());
  s.text += "  addi r10, r10, 1\n";
  s.text += StrFormat("  jmp %slen_loop\n", p.c_str());
  s.text += StrFormat("%slen_done:\n", p.c_str());
  s.text += StrFormat("  cmpeqi r5, r10, %d\n", bound);
  s.text += "  bz r5, exit\n";
  if (negative) {
    // byte0 == 'x' AND byte0 == 'y': infeasible for every input.
    s.text += "  ld1 r4, [r9+0]\n";
    s.text += "  cmpeqi r5, r4, 'x'\n";
    s.text += "  bz r5, exit\n";
    s.text += "  cmpeqi r5, r4, 'y'\n";
    s.text += "  bz r5, exit\n";
  }
  return s;
}

StageCode ChainStage(const std::string& p, int hops, size_t byte_index,
                     SplitMix& rng, bool negative) {
  StageCode s;
  int sum = 0;
  s.text += StrFormat("  ld1 r10, [r9+%d]\n", static_cast<int>(byte_index));
  for (int i = 0; i < hops; ++i) {
    const int inc = 1 + rng.Range(3);
    sum += inc;
    s.text += StrFormat("  lea r1, %skey%d\n", p.c_str(), i);
    s.text += "  mov r2, r10\n";
    s.text += "  sys 18\n";  // echo_store(key_i, v)
    s.text += StrFormat("  lea r1, %skey%d\n", p.c_str(), i);
    s.text += "  sys 19\n";  // echo_load(key_i) -> r0
    s.text += "  mov r10, r0\n";
    s.text += StrFormat("  addi r10, r10, %d\n", inc);
    s.data += StrFormat("%skey%d: .asciz \"%sk%d\"\n", p.c_str(), i, p.c_str(), i);
  }
  const int digit = rng.Range(10);
  // argv bytes are <= 255, so a target above 255+sum is infeasible.
  const int target = negative ? 256 + sum + rng.Range(16) : '0' + digit + sum;
  s.witness[byte_index] = static_cast<char>('0' + digit);
  s.decoy[byte_index] = static_cast<char>('0' + (digit + 1) % 10);
  s.text += StrFormat("  cmpeqi r5, r10, %d\n", target);
  s.text += "  bz r5, exit\n";
  return s;
}

StageCode JtabStage(const std::string& p, int slots, size_t byte_index,
                    SplitMix& rng, bool negative) {
  StageCode s;
  // Never place the pass slot at 0: a solver that negates the bounds
  // guard gets the minimal in-range model '0', which would resolve the
  // table without the engine ever modeling the indirect jump.
  const int slot = slots > 1 ? 1 + rng.Range(slots - 1) : 0;
  s.witness[byte_index] = static_cast<char>('0' + slot);
  s.decoy[byte_index] = static_cast<char>('0' + (slot + 1) % slots);
  s.text += StrFormat("  ld1 r10, [r9+%d]\n", static_cast<int>(byte_index));
  s.text += "  subi r10, r10, '0'\n";
  s.text += StrFormat("  cmpltui r5, r10, %d\n", slots);
  s.text += "  bz r5, exit\n";
  s.text += "  muli r10, r10, 8\n";
  s.text += StrFormat("  lea r6, %sjt\n", p.c_str());
  s.text += "  ldx8 r5, [r6+r10]\n";
  s.text += "  jmpr r5\n";
  s.text += StrFormat("%spass:\n", p.c_str());
  s.data += StrFormat("%sjt: .quad ", p.c_str());
  for (int i = 0; i < slots; ++i) {
    const bool pass = !negative && i == slot;
    s.data += StrFormat("%s%s", i ? ", " : "",
                        pass ? StrFormat("%spass", p.c_str()).c_str() : "exit");
  }
  s.data += "\n";
  return s;
}

StageCode EmitStage(Family f, const std::string& p, int param,
                    size_t byte_index, SplitMix& rng, bool negative) {
  switch (f) {
    case Family::kArrayDepth: return ArrStage(p, param, byte_index, rng, negative);
    case Family::kLoopBound: return LoopStage(p, param, negative);
    case Family::kSyscallChain: return ChainStage(p, param, byte_index, rng, negative);
    case Family::kJumpTable: return JtabStage(p, param, byte_index, rng, negative);
    case Family::kTwoStage: break;
  }
  SBCE_CHECK(false && "two-stage is composed, not emitted directly");
  return {};
}

std::string ComposeSource(const std::vector<StageCode>& stages) {
  std::string text = ".entry main\nmain:\n  ld8 r9, [r2+8]\n";
  std::string data;
  for (const auto& s : stages) {
    text += s.text;
    data += s.data;
  }
  text += kBombTail;
  if (!data.empty()) text += ".data\n" + data;
  return text + guestlib::EmitGuestLib();
}

// Fill constrained bytes, pad with 'A' to the loop bound (or the highest
// constrained byte), so the joint witness satisfies every stage at once.
// Seeds (use_witness=false) with a loop-bound stage are one byte long —
// *shorter* than K, like svd_argvlen's seed, so a tool whose argv window
// is pinned to the seed length cannot reach the bound.
std::string InputString(const std::vector<StageCode>& stages,
                        bool use_witness, bool pass_len) {
  std::map<size_t, char> bytes;
  std::optional<size_t> len;
  for (const auto& s : stages) {
    for (const auto& [i, c] : use_witness ? s.witness : s.decoy) bytes[i] = c;
    if (s.required_len) len = s.required_len;
  }
  size_t n = 1;
  if (!bytes.empty()) n = std::max(n, bytes.rbegin()->first + 1);
  if (len) n = pass_len ? *len : 1;
  std::string out(n, 'A');
  for (const auto& [i, c] : bytes) {
    if (i < n) out[i] = c;
  }
  return out;
}

// Table II outcome prediction per paper-tool profile for a base family.
std::array<std::string, 4> BaseExpected(Family f, int param) {
  switch (f) {
    case Family::kArrayDepth:
      // Depth 1 fits Angr's one-level symbolic-deref model (arr_one row);
      // deeper chains defeat every paper tool (arr_two row).
      return param <= 1 ? std::array<std::string, 4>{"Es3", "Es3", "OK", "OK"}
                        : std::array<std::string, 4>{"Es3", "Es3", "Es3", "Es3"};
    case Family::kLoopBound:
      return {"Es2", "Es0", "OK", "OK"};  // svd_argvlen row
    case Family::kSyscallChain:
      return {"Es2", "Es2", "P", "P"};  // csp_syscall row
    case Family::kJumpTable:
      return {"Es3", "Es3", "Es3", "Es3"};  // jmp_table row
    case Family::kTwoStage: break;
  }
  SBCE_CHECK(false && "two-stage expectations are composed");
  return {};
}

// Two-stage prediction: stages gate left to right. A tool that cannot
// get past stage A — whether it hard-fails (Es*) or only ever produces
// unvalidated claims (P) — never executes stage B concretely, so the
// first non-OK stage label wins.
std::array<std::string, 4> ComposeExpected(
    const std::array<std::string, 4>& a, const std::array<std::string, 4>& b) {
  std::array<std::string, 4> out;
  for (size_t t = 0; t < out.size(); ++t) {
    out[t] = a[t] != "OK" ? a[t] : b[t];
  }
  return out;
}

constexpr Family kPairs[6][2] = {
    {Family::kArrayDepth, Family::kLoopBound},
    {Family::kArrayDepth, Family::kSyscallChain},
    {Family::kArrayDepth, Family::kJumpTable},
    {Family::kLoopBound, Family::kSyscallChain},
    {Family::kLoopBound, Family::kJumpTable},
    {Family::kSyscallChain, Family::kJumpTable},
};

// Inner parameter for a base family used inside a two-stage composition:
// scale 0 is the small variant, scale 1 the large one.
int InnerParam(Family f, int scale) {
  switch (f) {
    case Family::kArrayDepth: return 2 + 2 * scale;
    case Family::kLoopBound: return 5 + 3 * scale;
    case Family::kSyscallChain: return 2 + 2 * scale;
    case Family::kJumpTable: return 4 + 3 * scale;
    case Family::kTwoStage: break;
  }
  SBCE_CHECK(false && "two-stage cannot nest");
  return 0;
}

std::string ShortName(Family f) {
  switch (f) {
    case Family::kArrayDepth: return "arr";
    case Family::kLoopBound: return "loop";
    case Family::kSyscallChain: return "chain";
    case Family::kJumpTable: return "jtab";
    case Family::kTwoStage: return "two";
  }
  return "?";
}

bombs::Category BaseCategory(Family f) {
  switch (f) {
    case Family::kArrayDepth: return bombs::Category::kSymbolicArray;
    case Family::kLoopBound: return bombs::Category::kSymbolicDeclaration;
    case Family::kSyscallChain: return bombs::Category::kCovertPropagation;
    case Family::kJumpTable: return bombs::Category::kSymbolicJump;
    case Family::kTwoStage: return bombs::Category::kTwoStage;
  }
  return bombs::Category::kDemo;
}

CorpusCell BuildCell(Family family, int param, bool negative, uint64_t seed) {
  CorpusCell cell;
  cell.family = family;
  cell.param = param;
  cell.negative = negative;

  SplitMix rng{seed ^ (static_cast<uint64_t>(family) << 32) ^
               (static_cast<uint64_t>(param) << 8) ^
               static_cast<uint64_t>(negative)};

  std::vector<StageCode> stages;
  std::array<std::string, 4> expected;
  if (family == Family::kTwoStage) {
    const auto& pair = kPairs[param % 6];
    const int scale = param / 6;
    const int pa = InnerParam(pair[0], scale);
    const int pb = InnerParam(pair[1], scale);
    // Byte indexes 0,1 go to the byte-guard stages in order; the loop
    // stage constrains length instead and never consumes a byte.
    size_t next_byte = 0;
    const size_t ba = pair[0] == Family::kLoopBound ? 0 : next_byte++;
    const size_t bb = pair[1] == Family::kLoopBound ? 0 : next_byte++;
    // The negative variant corrupts stage B only: stage A stays
    // satisfiable, the composition is still infeasible.
    stages.push_back(EmitStage(pair[0], "s0_", pa, ba, rng, false));
    stages.push_back(EmitStage(pair[1], "s1_", pb, bb, rng, negative));
    expected = ComposeExpected(BaseExpected(pair[0], pa), BaseExpected(pair[1], pb));
  } else {
    stages.push_back(EmitStage(family, "s0_", param, 0, rng, negative));
    expected = BaseExpected(family, param);
  }

  bombs::BombSpec& b = cell.spec;
  b.id = StrFormat("gen_%s_%02d%s", ShortName(family).c_str(), param,
                   negative ? "_neg" : "");
  b.category = negative ? bombs::Category::kNegative : BaseCategory(family);
  b.challenge = StrFormat("%s, parameter %d%s",
                          std::string(FamilyName(family)).c_str(), param,
                          negative ? " (infeasible variant)" : "");
  b.source = ComposeSource(stages);
  b.seed_argv = {"prog", InputString(stages, /*use_witness=*/false,
                                     /*pass_len=*/false)};
  if (!negative) {
    b.witness_argv = {"prog", InputString(stages, /*use_witness=*/true,
                                          /*pass_len=*/true)};
    b.argv_can_trigger = true;
  }
  b.expected = negative ? std::array<std::string, 4>{"-", "-", "-", "-"}
                        : expected;
  b.expected_ideal = negative ? "unreachable" : "OK";

  if (family == Family::kTwoStage && !negative) {
    // Per-stage partial inputs: stage i's witness bytes with the other
    // stage's decoys (and the wrong length whenever the other stage is
    // the loop bound). Each satisfies exactly one stage.
    for (size_t i = 0; i < stages.size(); ++i) {
      std::map<size_t, char> bytes;
      std::optional<size_t> len;
      bool pass_len = true;
      for (size_t j = 0; j < stages.size(); ++j) {
        const auto& src = j == i ? stages[j].witness : stages[j].decoy;
        for (const auto& [idx, c] : src) bytes[idx] = c;
        if (stages[j].required_len) {
          len = stages[j].required_len;
          pass_len = j == i;
        }
      }
      size_t n = 1;
      if (!bytes.empty()) n = std::max(n, bytes.rbegin()->first + 1);
      if (len) n = pass_len ? *len : *len + 1;
      std::string input(n, 'A');
      for (const auto& [idx, c] : bytes) {
        if (idx < n) input[idx] = c;
      }
      cell.partial_inputs.push_back({"prog", input});
    }
  }
  return cell;
}

}  // namespace

std::string_view FamilyName(Family f) {
  switch (f) {
    case Family::kArrayDepth: return "array-depth";
    case Family::kLoopBound: return "loop-bound";
    case Family::kSyscallChain: return "syscall-chain";
    case Family::kJumpTable: return "jump-table";
    case Family::kTwoStage: return "two-stage";
  }
  return "?";
}

std::vector<FamilySweep> DefaultSweeps() {
  return {
      {Family::kArrayDepth, {1, 2, 3, 4, 5, 6}},
      {Family::kLoopBound, {2, 4, 6, 8, 10, 12}},
      {Family::kSyscallChain, {1, 2, 3, 4, 5, 6}},
      {Family::kJumpTable, {2, 3, 4, 6, 8, 10}},
      {Family::kTwoStage, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}},
  };
}

CorpusSpec SmokeSpec() {
  CorpusSpec spec;
  spec.sweeps = {
      {Family::kArrayDepth, {2}},  {Family::kLoopBound, {4}},
      {Family::kSyscallChain, {2}}, {Family::kJumpTable, {4}},
      {Family::kTwoStage, {2}},
  };
  return spec;
}

const CorpusCell* Corpus::Find(std::string_view id) const {
  for (const auto& cell : cells) {
    if (cell.spec.id == id) return &cell;
  }
  return nullptr;
}

Result<Corpus> Generate(const CorpusSpec& spec) {
  Corpus out;
  out.seed = spec.seed;
  uint64_t digest = Fnv1a("sbce-corpus", 11);
  const auto sweeps = spec.sweeps.empty() ? DefaultSweeps() : spec.sweeps;
  for (const auto& sweep : sweeps) {
    for (const int param : sweep.params) {
      for (const bool negative : {false, true}) {
        if (negative && !spec.negatives) continue;
        CorpusCell cell = BuildCell(sweep.family, param, negative, spec.seed);

        // Verify-before-admit: assemble + concretely execute seed and
        // ground truth; a failure is a generator bug, not a bad cell.
        if (Status st = bombs::VerifyGroundTruth(cell.spec); !st.ok()) {
          return Status::Internal(StrFormat(
              "corpus cell %s failed admission: %s", cell.spec.id.c_str(),
              st.ToString().c_str()));
        }
        const auto image = bombs::BuildBomb(cell.spec);
        for (const auto& argv : cell.partial_inputs) {
          vm::Machine machine(image, argv, cell.spec.experiment_devices);
          const auto run = machine.Run();
          if (run.faulted || run.bomb_triggered) {
            return Status::Internal(StrFormat(
                "corpus cell %s: partial input \"%s\" must not detonate",
                cell.spec.id.c_str(), argv.back().c_str()));
          }
        }

        const auto bytes = image.Serialize();
        digest = Fnv1a(cell.spec.id.data(), cell.spec.id.size(), digest);
        digest = Fnv1a(bytes.data(), bytes.size(), digest);
        const bombs::GroundTruth truth = bombs::GroundTruthFor(cell.spec);
        for (const auto& arg : truth.argv) {
          digest = Fnv1a(arg.data(), arg.size(), digest);
        }
        const char trig = truth.expect_trigger ? 1 : 0;
        digest = Fnv1a(&trig, 1, digest);
        out.cells.push_back(std::move(cell));
      }
    }
  }
  out.digest = digest;
  return out;
}

std::shared_ptr<const Corpus> SharedCorpus(uint64_t seed) {
  static std::mutex mu;
  static auto* cache =
      new std::map<uint64_t, std::shared_ptr<const Corpus>>();
  std::scoped_lock lock(mu);
  auto it = cache->find(seed);
  if (it != cache->end()) return it->second;
  CorpusSpec spec;
  spec.seed = seed;
  Result<Corpus> generated = Generate(spec);
  std::shared_ptr<const Corpus> shared;
  if (generated.ok()) {
    shared = std::make_shared<const Corpus>(std::move(generated).value());
  }
  (*cache)[seed] = shared;
  return shared;
}

}  // namespace sbce::corpus
