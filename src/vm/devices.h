// Injectable environment devices.
//
// Everything a guest can observe besides argv and the filesystem comes from
// here, so experiments are reproducible and ground-truth environments can
// be constructed for validation runs (e.g. "run at the magic time").
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace sbce::vm {

struct Devices {
  /// Virtual wall clock (seconds). SYS_TIME returns time_seconds;
  /// SYS_SLEEP advances it.
  uint64_t time_seconds = 1'700'000'000;

  /// Pid of the root process; children get consecutive pids.
  uint64_t first_pid = 4242;

  /// Document returned by SYS_WEBGET ("remote server" contents).
  std::string web_document = "HTTP/1.0 200 OK\n\nhello world\n";

  /// Seed for the guest-visible rand() LCG before any SYS_SRAND.
  uint64_t initial_rand_seed = 1;

  /// Key/value store backing the SYS_ECHO_* covert syscall channel.
  std::map<std::string, uint64_t> echo_store;
};

/// The libc-style LCG used by SYS_RAND (glibc TYPE_0 constants), so that
/// seed→sequence relationships are well-defined and checkable.
inline uint64_t LcgNext(uint64_t* state) {
  *state = (*state * 1103515245u + 12345u) & 0x7fffffffu;
  return *state;
}

}  // namespace sbce::vm
