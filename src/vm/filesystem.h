// In-memory filesystem shared by all processes of a Machine.
//
// Stands in for the host disk in the covert-propagation and contextual
// bombs: programs write argv-derived bytes into files and read them back,
// and bombs test for the existence of specific paths.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace sbce::vm {

class SimFilesystem {
 public:
  bool Exists(const std::string& path) const {
    return files_.count(path) != 0;
  }

  /// Creates or replaces a file.
  void Put(const std::string& path, std::vector<uint8_t> bytes) {
    files_[path] = std::move(bytes);
  }
  void PutString(const std::string& path, const std::string& text) {
    files_[path] = std::vector<uint8_t>(text.begin(), text.end());
  }

  Result<std::vector<uint8_t>> Get(const std::string& path) const {
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound(path);
    return it->second;
  }

  /// Appends to (creating if needed) a file; used by write fds.
  void Append(const std::string& path, const uint8_t* data, size_t n) {
    auto& f = files_[path];
    f.insert(f.end(), data, data + n);
  }

  void Truncate(const std::string& path) { files_[path].clear(); }

  bool Remove(const std::string& path) { return files_.erase(path) > 0; }

  size_t FileCount() const { return files_.size(); }

 private:
  std::map<std::string, std::vector<uint8_t>> files_;
};

}  // namespace sbce::vm
