// Sparse paged guest memory.
//
// Reads of never-written pages return zeroes; writes allocate pages on
// demand. SBVM does not model page permissions — the challenges in the
// study do not depend on segfaults, and keeping loads total simplifies the
// symbolic memory model.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "src/support/status.h"

namespace sbce::vm {

class Memory {
 public:
  static constexpr unsigned kPageBits = 12;
  static constexpr uint64_t kPageSize = uint64_t{1} << kPageBits;

  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;
  Memory(Memory&&) = default;
  Memory& operator=(Memory&&) = default;

  /// Deep copy for fork().
  Memory Clone() const;

  uint8_t ReadU8(uint64_t addr) const;
  uint16_t ReadU16(uint64_t addr) const;
  uint32_t ReadU32(uint64_t addr) const;
  uint64_t ReadU64(uint64_t addr) const;
  /// Reads `width` bytes (1/2/4/8) little-endian, zero-extended.
  uint64_t ReadUnit(uint64_t addr, unsigned width) const;

  void WriteU8(uint64_t addr, uint8_t v);
  void WriteU16(uint64_t addr, uint16_t v);
  void WriteU32(uint64_t addr, uint32_t v);
  void WriteU64(uint64_t addr, uint64_t v);
  void WriteUnit(uint64_t addr, unsigned width, uint64_t v);

  void ReadBytes(uint64_t addr, std::span<uint8_t> out) const;
  void WriteBytes(uint64_t addr, std::span<const uint8_t> in);

  /// Reads a NUL-terminated string of at most `max_len` bytes.
  Result<std::string> ReadCString(uint64_t addr, size_t max_len = 4096) const;

  size_t PageCount() const { return pages_.size(); }

 private:
  using Page = std::array<uint8_t, kPageSize>;

  const Page* FindPage(uint64_t addr) const;
  Page& EnsurePage(uint64_t addr);

  std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace sbce::vm
