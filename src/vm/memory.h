// Sparse paged guest memory with copy-on-write cloning.
//
// Reads of never-written pages return zeroes; writes allocate pages on
// demand. SBVM does not model page permissions — the challenges in the
// study do not depend on segfaults, and keeping loads total simplifies the
// symbolic memory model.
//
// Pages are refcounted: Clone() shares every page and only the write path
// breaks the sharing (EnsurePage copies a page the moment a second owner
// writes to it). This makes fork() and Machine::Snapshot() O(pages) in
// refcount bumps rather than bytes copied; the copies actually performed
// are counted in `cow_pages_copied` (shared across a clone lineage).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/status.h"

namespace sbce::vm {

class Memory {
 public:
  static constexpr unsigned kPageBits = 12;
  static constexpr uint64_t kPageSize = uint64_t{1} << kPageBits;

  Memory() : cow_copies_(std::make_shared<uint64_t>(0)) {}
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;
  Memory(Memory&&) = default;
  Memory& operator=(Memory&&) = default;

  /// Copy for fork() and snapshots: O(1) per page (the pages are shared
  /// until one side writes).
  Memory Clone() const;

  uint8_t ReadU8(uint64_t addr) const;
  uint16_t ReadU16(uint64_t addr) const;
  uint32_t ReadU32(uint64_t addr) const;
  uint64_t ReadU64(uint64_t addr) const;
  /// Reads `width` bytes (1/2/4/8) little-endian, zero-extended.
  uint64_t ReadUnit(uint64_t addr, unsigned width) const;

  void WriteU8(uint64_t addr, uint8_t v);
  void WriteU16(uint64_t addr, uint16_t v);
  void WriteU32(uint64_t addr, uint32_t v);
  void WriteU64(uint64_t addr, uint64_t v);
  void WriteUnit(uint64_t addr, unsigned width, uint64_t v);

  void ReadBytes(uint64_t addr, std::span<uint8_t> out) const;
  void WriteBytes(uint64_t addr, std::span<const uint8_t> in);

  /// Reads a NUL-terminated string of at most `max_len` bytes.
  Result<std::string> ReadCString(uint64_t addr, size_t max_len = 4096) const;

  size_t PageCount() const { return pages_.size(); }

  /// Pages physically copied by copy-on-write breaks, cumulative across
  /// this memory and everything cloned from it (the counter is shared by
  /// the whole clone lineage).
  uint64_t CowPagesCopied() const { return *cow_copies_; }

  /// Registers [lo, hi) as the code range: any later write into it marks
  /// the containing page dirty, which the interpreter's decode cache
  /// checks before trusting a predecoded instruction (self-modifying code
  /// then falls back to raw decode, preserving pre-cache semantics). Call
  /// after the image is loaded — loading itself must not mark. Cloned
  /// memories (fork) inherit both the range and the dirty marks.
  void SetCodeWatch(uint64_t lo, uint64_t hi);

  /// True when any byte of [addr, addr+len) lies in a dirty code page.
  /// Always false outside the watched range or before any write hits it.
  bool CodeDirty(uint64_t addr, unsigned len) const {
    if (!any_code_dirty_) return false;
    const uint64_t first = addr > watch_lo_ ? addr : watch_lo_;
    const uint64_t last = addr + len - 1;
    for (uint64_t page = first >> kPageBits; page <= (last >> kPageBits);
         ++page) {
      const uint64_t index = page - (watch_lo_ >> kPageBits);
      if (index < dirty_code_pages_.size() && dirty_code_pages_[index] != 0) {
        return true;
      }
    }
    return false;
  }

  /// Registers [lo, hi) as the input block (the argv bytes): from now on
  /// every guest read of a byte in it marks that byte *consumed* (unless
  /// the guest had already overwritten it) and every guest write marks it
  /// *overwritten*. Checkpoint reuse keys off these masks: a snapshot may
  /// be resumed under a different input iff no differing byte was consumed
  /// before the snapshot, and a differing byte may be patched iff the
  /// guest had not overwritten it. Call after setup writes (they must not
  /// mark); cloned/snapshot memories inherit the range and both masks.
  void SetInputWatch(uint64_t lo, uint64_t hi);

  /// True when the guest read `addr` while it still held input bytes.
  bool InputConsumed(uint64_t addr) const {
    return addr - input_lo_ < input_span_ &&
           input_consumed_[addr - input_lo_] != 0;
  }
  /// True when the guest overwrote `addr` with its own value.
  bool InputOverwritten(uint64_t addr) const {
    return addr - input_lo_ < input_span_ &&
           input_written_[addr - input_lo_] != 0;
  }

  /// Rebinds one input byte to a new value without touching the
  /// consumed/overwritten bookkeeping (the masks keep describing the
  /// recorded prefix execution, which never saw this byte).
  void RebindInputByte(uint64_t addr, uint8_t v);

 private:
  using Page = std::array<uint8_t, kPageSize>;

  const Page* FindPage(uint64_t addr) const;
  Page& EnsurePage(uint64_t addr);
  void MarkCodeDirty(uint64_t addr);

  std::unordered_map<uint64_t, std::shared_ptr<Page>> pages_;
  /// CoW copies performed, shared across the clone lineage (see
  /// CowPagesCopied).
  std::shared_ptr<uint64_t> cow_copies_;
  // Code-watch state. watch_span_ == 0 (the default) disables the single
  // range test on the write path.
  uint64_t watch_lo_ = 0;
  uint64_t watch_span_ = 0;
  bool any_code_dirty_ = false;
  std::vector<uint8_t> dirty_code_pages_;  // one flag per watched page
  // Input-watch state. input_span_ == 0 (the default) disables the range
  // test on both access paths. The masks are per byte of the watched
  // range; `input_consumed_` is mutable because marking happens on the
  // (const) read path.
  uint64_t input_lo_ = 0;
  uint64_t input_span_ = 0;
  mutable std::vector<uint8_t> input_consumed_;
  std::vector<uint8_t> input_written_;
};

}  // namespace sbce::vm
