// Sparse paged guest memory.
//
// Reads of never-written pages return zeroes; writes allocate pages on
// demand. SBVM does not model page permissions — the challenges in the
// study do not depend on segfaults, and keeping loads total simplifies the
// symbolic memory model.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/status.h"

namespace sbce::vm {

class Memory {
 public:
  static constexpr unsigned kPageBits = 12;
  static constexpr uint64_t kPageSize = uint64_t{1} << kPageBits;

  Memory() = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;
  Memory(Memory&&) = default;
  Memory& operator=(Memory&&) = default;

  /// Deep copy for fork().
  Memory Clone() const;

  uint8_t ReadU8(uint64_t addr) const;
  uint16_t ReadU16(uint64_t addr) const;
  uint32_t ReadU32(uint64_t addr) const;
  uint64_t ReadU64(uint64_t addr) const;
  /// Reads `width` bytes (1/2/4/8) little-endian, zero-extended.
  uint64_t ReadUnit(uint64_t addr, unsigned width) const;

  void WriteU8(uint64_t addr, uint8_t v);
  void WriteU16(uint64_t addr, uint16_t v);
  void WriteU32(uint64_t addr, uint32_t v);
  void WriteU64(uint64_t addr, uint64_t v);
  void WriteUnit(uint64_t addr, unsigned width, uint64_t v);

  void ReadBytes(uint64_t addr, std::span<uint8_t> out) const;
  void WriteBytes(uint64_t addr, std::span<const uint8_t> in);

  /// Reads a NUL-terminated string of at most `max_len` bytes.
  Result<std::string> ReadCString(uint64_t addr, size_t max_len = 4096) const;

  size_t PageCount() const { return pages_.size(); }

  /// Registers [lo, hi) as the code range: any later write into it marks
  /// the containing page dirty, which the interpreter's decode cache
  /// checks before trusting a predecoded instruction (self-modifying code
  /// then falls back to raw decode, preserving pre-cache semantics). Call
  /// after the image is loaded — loading itself must not mark. Cloned
  /// memories (fork) inherit both the range and the dirty marks.
  void SetCodeWatch(uint64_t lo, uint64_t hi);

  /// True when any byte of [addr, addr+len) lies in a dirty code page.
  /// Always false outside the watched range or before any write hits it.
  bool CodeDirty(uint64_t addr, unsigned len) const {
    if (!any_code_dirty_) return false;
    const uint64_t first = addr > watch_lo_ ? addr : watch_lo_;
    const uint64_t last = addr + len - 1;
    for (uint64_t page = first >> kPageBits; page <= (last >> kPageBits);
         ++page) {
      const uint64_t index = page - (watch_lo_ >> kPageBits);
      if (index < dirty_code_pages_.size() && dirty_code_pages_[index] != 0) {
        return true;
      }
    }
    return false;
  }

 private:
  using Page = std::array<uint8_t, kPageSize>;

  const Page* FindPage(uint64_t addr) const;
  Page& EnsurePage(uint64_t addr);
  void MarkCodeDirty(uint64_t addr);

  std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
  // Code-watch state. watch_span_ == 0 (the default) disables the single
  // range test on the write path.
  uint64_t watch_lo_ = 0;
  uint64_t watch_span_ = 0;
  bool any_code_dirty_ = false;
  std::vector<uint8_t> dirty_code_pages_;  // one flag per watched page
};

}  // namespace sbce::vm
