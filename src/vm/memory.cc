#include "src/vm/memory.h"

#include <cstring>

namespace sbce::vm {

Memory Memory::Clone() const {
  Memory copy;
  copy.pages_ = pages_;  // shares every page; writes break the sharing
  copy.cow_copies_ = cow_copies_;
  copy.watch_lo_ = watch_lo_;
  copy.watch_span_ = watch_span_;
  copy.any_code_dirty_ = any_code_dirty_;
  copy.dirty_code_pages_ = dirty_code_pages_;
  copy.input_lo_ = input_lo_;
  copy.input_span_ = input_span_;
  copy.input_consumed_ = input_consumed_;
  copy.input_written_ = input_written_;
  return copy;
}

void Memory::SetCodeWatch(uint64_t lo, uint64_t hi) {
  watch_lo_ = lo;
  watch_span_ = hi > lo ? hi - lo : 0;
  any_code_dirty_ = false;
  dirty_code_pages_.assign(
      watch_span_ == 0 ? 0 : ((hi - 1) >> kPageBits) - (lo >> kPageBits) + 1,
      0);
}

void Memory::SetInputWatch(uint64_t lo, uint64_t hi) {
  input_lo_ = lo;
  input_span_ = hi > lo ? hi - lo : 0;
  input_consumed_.assign(input_span_, 0);
  input_written_.assign(input_span_, 0);
}

void Memory::RebindInputByte(uint64_t addr, uint8_t v) {
  EnsurePage(addr)[addr & (kPageSize - 1)] = v;
}

void Memory::MarkCodeDirty(uint64_t addr) {
  dirty_code_pages_[(addr >> kPageBits) - (watch_lo_ >> kPageBits)] = 1;
  any_code_dirty_ = true;
}

const Memory::Page* Memory::FindPage(uint64_t addr) const {
  auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : it->second.get();
}

Memory::Page& Memory::EnsurePage(uint64_t addr) {
  auto& slot = pages_[addr >> kPageBits];
  if (!slot) {
    slot = std::make_shared<Page>(Page{});
  } else if (slot.use_count() > 1) {
    // Copy-on-write break: another clone still references this page.
    // (Machines are single-threaded per clone lineage, so the use_count
    // test cannot race.)
    slot = std::make_shared<Page>(*slot);
    ++*cow_copies_;
  }
  return *slot;
}

uint8_t Memory::ReadU8(uint64_t addr) const {
  if (addr - input_lo_ < input_span_) [[unlikely]] {
    if (input_written_[addr - input_lo_] == 0) {
      input_consumed_[addr - input_lo_] = 1;
    }
  }
  const Page* p = FindPage(addr);
  return p ? (*p)[addr & (kPageSize - 1)] : 0;
}

void Memory::WriteU8(uint64_t addr, uint8_t v) {
  if (addr - watch_lo_ < watch_span_) [[unlikely]] {
    MarkCodeDirty(addr);
  }
  if (addr - input_lo_ < input_span_) [[unlikely]] {
    input_written_[addr - input_lo_] = 1;
  }
  EnsurePage(addr)[addr & (kPageSize - 1)] = v;
}

uint64_t Memory::ReadUnit(uint64_t addr, unsigned width) const {
  uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(ReadU8(addr + i)) << (8 * i);
  }
  return v;
}

void Memory::WriteUnit(uint64_t addr, unsigned width, uint64_t v) {
  for (unsigned i = 0; i < width; ++i) {
    WriteU8(addr + i, static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t Memory::ReadU16(uint64_t addr) const {
  return static_cast<uint16_t>(ReadUnit(addr, 2));
}
uint32_t Memory::ReadU32(uint64_t addr) const {
  return static_cast<uint32_t>(ReadUnit(addr, 4));
}
uint64_t Memory::ReadU64(uint64_t addr) const { return ReadUnit(addr, 8); }

void Memory::WriteU16(uint64_t addr, uint16_t v) { WriteUnit(addr, 2, v); }
void Memory::WriteU32(uint64_t addr, uint32_t v) { WriteUnit(addr, 4, v); }
void Memory::WriteU64(uint64_t addr, uint64_t v) { WriteUnit(addr, 8, v); }

void Memory::ReadBytes(uint64_t addr, std::span<uint8_t> out) const {
  for (size_t i = 0; i < out.size(); ++i) out[i] = ReadU8(addr + i);
}

void Memory::WriteBytes(uint64_t addr, std::span<const uint8_t> in) {
  for (size_t i = 0; i < in.size(); ++i) WriteU8(addr + i, in[i]);
}

Result<std::string> Memory::ReadCString(uint64_t addr, size_t max_len) const {
  std::string out;
  for (size_t i = 0; i < max_len; ++i) {
    const uint8_t c = ReadU8(addr + i);
    if (c == 0) return out;
    out.push_back(static_cast<char>(c));
  }
  return Status::OutOfRange("unterminated guest string");
}

}  // namespace sbce::vm
