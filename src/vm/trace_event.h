// Per-instruction trace record emitted by the VM's trace hook.
//
// This is the SBVM analogue of an Intel Pin instruction stream: decoded
// instruction plus the concrete operand values observed at execution time.
// The taint engine and the trace lifter consume these records.
#pragma once

#include <array>
#include <cstdint>

#include "src/isa/instruction.h"

namespace sbce::vm {

/// Identifies a covert data channel a syscall touched (file contents, pipe,
/// echo store, stdin, web). 0 means none.
using ChannelId = uint64_t;

inline constexpr ChannelId kChannelNone = 0;
inline constexpr ChannelId kChannelStdin = 0xfeed0001;
inline constexpr ChannelId kChannelWeb = 0xfeed0002;

struct TraceEvent {
  uint32_t pid = 0;
  uint32_t tid = 0;
  uint64_t seq = 0;  // global sequence number across all threads
  uint64_t pc = 0;
  isa::Instruction instr;

  // Concrete source operand values (FP operands as raw IEEE-754 bits).
  uint64_t rs1_val = 0;
  uint64_t rs2_val = 0;
  uint64_t rd_old = 0;
  // Value produced into rd (if the instruction writes a register).
  uint64_t rd_new = 0;

  // Effective address and value for memory-touching instructions
  // (ld/st/ldx/stx/push/pop/call/ret/fld/fst).
  uint64_t mem_addr = 0;
  uint64_t mem_value = 0;

  bool branch_taken = false;
  uint64_t next_pc = 0;

  bool trapped = false;
  uint64_t trap_cause = 0;

  // Syscall details (instr.op == kSys).
  int32_t sys_num = -1;
  std::array<uint64_t, 5> sys_args{};
  uint64_t sys_ret = 0;
  // Guest buffer the syscall consumed (bytes leaving the process) and
  // produced (bytes entering the process); used for covert-flow taint.
  uint64_t sys_in_addr = 0;
  uint32_t sys_in_len = 0;
  uint64_t sys_out_addr = 0;
  uint32_t sys_out_len = 0;
  ChannelId channel = kChannelNone;
};

}  // namespace sbce::vm
