// SBVM syscall ABI.
//
// Number in the SYS instruction immediate; arguments in r1..r5; result in
// r0. Negative results signal errors (returned as two's complement).
#pragma once

#include <cstdint>

namespace sbce::vm {

enum Syscall : int32_t {
  kSysExit = 0,          // exit(code)
  kSysWrite = 1,         // write(fd, buf, len) -> written
  kSysRead = 2,          // read(fd, buf, len) -> nread (0 = EOF)
  kSysOpen = 3,          // open(path, flags) -> fd | -1; flags 0=r, 1=w
  kSysClose = 4,         // close(fd)
  kSysTime = 5,          // time() -> seconds
  kSysSrand = 6,         // srand(seed)
  kSysRand = 7,          // rand() -> [0, 2^31)
  kSysGetPid = 8,        // getpid()
  kSysFork = 9,          // fork() -> 0 in child, child pid in parent
  kSysPipe = 10,         // pipe(ptr) -> 0; mem[ptr]=read fd, mem[ptr+8]=write fd
  kSysThreadCreate = 11, // thread_create(entry, arg) -> tid
  kSysThreadJoin = 12,   // thread_join(tid)
  kSysYield = 13,        // yield()
  kSysSetTrap = 14,      // settrap(handler_addr)
  kSysWebGet = 15,       // webget(buf, len) -> bytes copied
  kSysBomb = 16,         // BOMB — marks the logic bomb as triggered
  kSysUnlink = 17,       // unlink(path) -> 0 | -1
  kSysEchoStore = 18,    // echo_store(key_ptr, value)
  kSysEchoLoad = 19,     // echo_load(key_ptr) -> value
  kSysSleep = 20,        // sleep(seconds): advances virtual time
  kSysTlsStore = 21,     // tls_store(key_ptr, value) — runtime TLS slot
  kSysTlsLoad = 22,      // tls_load(key_ptr) -> value
};

enum TrapCause : uint64_t {
  kTrapDivZero = 1,
  kTrapExplicitZero = 2,  // trapz fired
  kTrapExplicitNeg = 3,   // trapneg fired
};

inline constexpr int kFdStdin = 0;
inline constexpr int kFdStdout = 1;
inline constexpr int kFdStderr = 2;

}  // namespace sbce::vm
