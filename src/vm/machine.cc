#include "src/vm/machine.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "src/support/bits.h"
#include "src/support/str.h"
#include "src/vm/syscalls.h"

namespace sbce::vm {

using isa::Instruction;
using isa::Opcode;
using isa::OpcodeInfo;

namespace {

/// Deep copy of a process: memory via CoW clone, threads/fds by value.
std::unique_ptr<Process> CloneProcess(const Process& src) {
  auto copy = std::make_unique<Process>();
  copy->pid = src.pid;
  copy->mem = src.mem.Clone();
  copy->threads.reserve(src.threads.size());
  for (const auto& t : src.threads) {
    copy->threads.push_back(std::make_unique<Thread>(*t));
  }
  copy->fds = src.fds;
  copy->next_fd = src.next_fd;
  copy->next_tid = src.next_tid;
  copy->trap_handler = src.trap_handler;
  copy->rand_state = src.rand_state;
  copy->alive = src.alive;
  copy->exit_code = src.exit_code;
  return copy;
}

}  // namespace

Machine::Machine(const isa::BinaryImage& image, std::vector<std::string> argv,
                 Devices devices)
    : Machine(image, std::move(argv), devices, Options()) {}

Machine::Machine(const isa::BinaryImage& image, std::vector<std::string> argv)
    : Machine(image, std::move(argv), Devices(), Options()) {}

Machine::Machine(const isa::BinaryImage& image, std::vector<std::string> argv,
                 Devices devices, Options options)
    : argv_(std::move(argv)), devices_(devices), options_(options) {
  auto proc = std::make_unique<Process>();
  proc->pid = static_cast<uint32_t>(devices_.first_pid);
  proc->rand_state = devices_.initial_rand_seed & 0x7fffffffu;
  processes_.push_back(std::move(proc));
  LoadImage(image);
  if (options_.decode_cache) {
    text_ = options_.predecoded ? options_.predecoded
                                : isa::Predecode(image);
    if (text_->hi() > text_->lo()) {
      // After LoadImage: loading the text must not mark it dirty.
      processes_.front()->mem.SetCodeWatch(text_->lo(), text_->hi());
    }
  }
  SetupRootProcess(image.entry());
}

void Machine::LoadImage(const isa::BinaryImage& image) {
  Process& proc = *processes_.front();
  for (const auto& section : image.sections()) {
    proc.mem.WriteBytes(section.vaddr, section.data);
  }
}

MachineSnapshot Machine::Snapshot() const {
  MachineSnapshot snap;
  snap.processes.reserve(processes_.size());
  for (const auto& p : processes_) {
    snap.processes.push_back(CloneProcess(*p));
  }
  snap.pipes = pipes_;
  snap.next_pipe_id = next_pipe_id_;
  snap.next_pid_offset = next_pid_offset_;
  snap.fs = fs_;
  snap.devices = devices_;
  snap.stdin_data = stdin_data_;
  snap.stdin_pos = stdin_pos_;
  snap.seq = seq_;
  snap.result = result_;
  return snap;
}

void Machine::Restore(const MachineSnapshot& snapshot) {
  processes_.clear();
  processes_.reserve(snapshot.processes.size());
  for (const auto& p : snapshot.processes) {
    processes_.push_back(CloneProcess(*p));
  }
  pipes_ = snapshot.pipes;
  next_pipe_id_ = snapshot.next_pipe_id;
  next_pid_offset_ = snapshot.next_pid_offset;
  fs_ = snapshot.fs;
  devices_ = snapshot.devices;
  stdin_data_ = snapshot.stdin_data;
  stdin_pos_ = snapshot.stdin_pos;
  seq_ = snapshot.seq;
  result_ = snapshot.result;
  // A snapshot of a budget-stopped machine is resumable under this
  // machine's own (possibly larger) budget.
  result_.budget_exhausted = false;
  stop_ = false;
  last_checkpoint_instr_ = result_.instructions;
}

std::pair<uint64_t, uint64_t> Machine::ArgvBlockSpan() const {
  const uint64_t lo = options_.argv_base;
  if (argv_.empty()) return {lo, lo};
  const size_t last = argv_.size() - 1;
  return {lo, ArgvStringAddr(last) + argv_[last].size() + 1};
}

void Machine::WatchArgvBlock() {
  const auto [lo, hi] = ArgvBlockSpan();
  processes_.front()->mem.SetInputWatch(lo, hi);
}

uint64_t Machine::ArgvStringAddr(size_t i) const {
  SBCE_CHECK(i < argv_.size());
  // Pointer array first, then the string bytes packed one after another.
  uint64_t addr = options_.argv_base + 8 * argv_.size();
  for (size_t k = 0; k < i; ++k) addr += argv_[k].size() + 1;
  return addr;
}

void Machine::SetupRootProcess(uint64_t entry) {
  Process& proc = *processes_.front();
  // Write argv strings + pointer array.
  for (size_t i = 0; i < argv_.size(); ++i) {
    const uint64_t str_addr = ArgvStringAddr(i);
    proc.mem.WriteBytes(
        str_addr,
        std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(argv_[i].data()),
            argv_[i].size()));
    proc.mem.WriteU8(str_addr + argv_[i].size(), 0);
    proc.mem.WriteU64(options_.argv_base + 8 * i, str_addr);
  }
  auto thread = std::make_unique<Thread>();
  thread->tid = proc.next_tid++;
  thread->cpu.pc = entry;
  thread->cpu.r[isa::kRegSp] = options_.stack_top;
  thread->cpu.r[isa::kRegArg1] = argv_.size();
  thread->cpu.r[isa::kRegArg1 + 1] = options_.argv_base;
  proc.threads.push_back(std::move(thread));
}

Process* Machine::FindProcess(uint32_t pid) {
  for (auto& p : processes_) {
    if (p->pid == pid) return p.get();
  }
  return nullptr;
}

bool Machine::AnyRunnable() const {
  for (const auto& p : processes_) {
    if (!p->alive) continue;
    for (const auto& t : p->threads) {
      if (t->state == ThreadState::kRunnable) return true;
    }
  }
  return false;
}

void Machine::UnblockJoinWaiters(Process& proc, uint32_t tid) {
  for (auto& t : proc.threads) {
    if (t->state == ThreadState::kBlockedJoin && t->wait_arg == tid) {
      t->state = ThreadState::kRunnable;
    }
  }
}

void Machine::WakePipeReaders(int pipe_id) {
  for (auto& p : processes_) {
    if (!p->alive) continue;
    for (auto& t : p->threads) {
      if (t->state != ThreadState::kBlockedRead) continue;
      auto it = p->fds.find(static_cast<int>(t->wait_arg));
      if (it != p->fds.end() && it->second.kind == OpenFile::Kind::kPipe &&
          it->second.pipe_id == pipe_id) {
        t->state = ThreadState::kRunnable;
      }
    }
  }
}

void Machine::Fault(std::string reason) {
  tracer_.Event("vm.fault", {obs::Field::S("reason", reason)});
  result_.faulted = true;
  result_.fault_reason = std::move(reason);
  stop_ = true;
}

RunResult Machine::Run() {
  // Deterministic round-robin over (process, thread) pairs.
  while (!stop_) {
    // Checkpoints only at sweep boundaries (never mid-quantum, so the
    // restored scheduler replays the identical interleave) and only before
    // the first fork (children would hold stale input copies).
    if (checkpoint_hook_ && checkpoint_gap_ > 0 &&
        processes_.size() == 1 &&
        result_.instructions - last_checkpoint_instr_ >= checkpoint_gap_) {
      last_checkpoint_instr_ = result_.instructions;
      checkpoint_gap_ = checkpoint_hook_(
          std::make_shared<const MachineSnapshot>(Snapshot()));
    }
    if (result_.instructions >= options_.max_instructions) {
      result_.budget_exhausted = true;
      tracer_.Event("vm.budget_exhausted",
                    {obs::Field::U("instructions", result_.instructions)});
      break;
    }
    if (!AnyRunnable()) {
      // Either everything exited or we deadlocked.
      bool pending = false;
      for (const auto& p : processes_) {
        if (!p->alive) continue;
        for (const auto& t : p->threads) {
          if (t->state != ThreadState::kDone) pending = true;
        }
      }
      if (pending) Fault("deadlock: no runnable threads");
      break;
    }
    // Snapshot the schedulable set; fork/thread-create during the sweep
    // will be picked up next sweep, keeping the interleave deterministic.
    std::vector<std::pair<uint32_t, uint32_t>> slots;
    for (const auto& p : processes_) {
      if (!p->alive) continue;
      for (const auto& t : p->threads) {
        if (t->state == ThreadState::kRunnable) slots.emplace_back(p->pid, t->tid);
      }
    }
    for (const auto& [pid, tid] : slots) {
      if (stop_) break;
      Process* proc = FindProcess(pid);
      if (proc == nullptr || !proc->alive) continue;
      Thread* thread = nullptr;
      for (auto& t : proc->threads) {
        if (t->tid == tid) thread = t.get();
      }
      if (thread == nullptr || thread->state != ThreadState::kRunnable) {
        continue;
      }
      for (uint32_t q = 0; q < options_.quantum; ++q) {
        if (result_.instructions >= options_.max_instructions) {
          result_.budget_exhausted = true;
          tracer_.Event("vm.budget_exhausted",
                        {obs::Field::U("instructions", result_.instructions)});
          stop_ = true;
          break;
        }
        StepOutcome out = Step(*proc, *thread);
        if (out.advanced) ++result_.instructions;
        if (out.reschedule || stop_) break;
      }
    }
  }
  if (tracer_.enabled()) {
    tracer_.Counter("vm.instructions", result_.instructions);
    tracer_.Event("vm.run.done",
                  {obs::Field::U("instructions", result_.instructions),
                   obs::Field::U("exited", result_.exited ? 1 : 0),
                   obs::Field::U("bomb", result_.bomb_triggered ? 1 : 0),
                   obs::Field::U("faulted", result_.faulted ? 1 : 0)});
  }
  return result_;
}

Machine::StepOutcome Machine::Step(Process& proc, Thread& thread) {
  // Fast path: fetch the predecoded instruction by pc. Falls back to raw
  // decode when the pc is outside the (clean) cached text — including
  // after a store dirtied the code page — so semantics match the
  // uncached interpreter exactly, fault messages included.
  const Instruction* fetched =
      text_ != nullptr ? text_->Lookup(thread.cpu.pc) : nullptr;
  if (fetched != nullptr &&
      proc.mem.CodeDirty(thread.cpu.pc, isa::kInstrBytes)) {
    fetched = nullptr;
  }
  Instruction raw_decoded;
  if (fetched == nullptr) {
    uint8_t raw[isa::kInstrBytes];
    proc.mem.ReadBytes(thread.cpu.pc, raw);
    auto decoded = isa::Decode(raw);
    if (!decoded) {
      Fault(StrFormat("invalid instruction at 0x%llx: %s",
                      static_cast<unsigned long long>(thread.cpu.pc),
                      decoded.status().message().c_str()));
      return {};
    }
    raw_decoded = decoded.value();
    fetched = &raw_decoded;
    ++result_.decode_cache_misses;
  } else {
    ++result_.decode_cache_hits;
  }
  const Instruction& in = *fetched;
  const OpcodeInfo& info = isa::GetOpcodeInfo(in.op);
  auto& r = thread.cpu.r;
  auto& f = thread.cpu.f;
  const uint64_t pc = thread.cpu.pc;
  const uint64_t next = pc + isa::kInstrBytes;
  const int64_t imm = static_cast<int64_t>(in.imm);

  TraceEvent ev;
  ev.pid = proc.pid;
  ev.tid = thread.tid;
  ev.seq = seq_++;
  ev.pc = pc;
  ev.instr = in;
  ev.next_pc = next;

  StepOutcome out;
  out.advanced = true;

  auto set_rd = [&](uint64_t v) {
    ev.rd_old = r[in.rd];
    r[in.rd] = v;
    ev.rd_new = v;
  };
  auto set_fd = [&](double v) {
    ev.rd_old = std::bit_cast<uint64_t>(f[in.rd]);
    f[in.rd] = v;
    ev.rd_new = std::bit_cast<uint64_t>(v);
  };
  auto finish = [&] {
    thread.cpu.pc = ev.next_pc;
    if (trace_hook_) trace_hook_(ev);
  };

  switch (in.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      thread.state = ThreadState::kDone;
      UnblockJoinWaiters(proc, thread.tid);
      out.reschedule = true;
      break;

    case Opcode::kMov:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1]);
      break;
    case Opcode::kMovI:
      set_rd(static_cast<uint64_t>(imm));
      break;
    case Opcode::kMovHi:
      set_rd((r[in.rd] & 0xffffffffull) |
             (static_cast<uint64_t>(static_cast<uint32_t>(in.imm)) << 32));
      break;

    case Opcode::kAdd:
      ev.rs1_val = r[in.rs1];
      ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] + r[in.rs2]);
      break;
    case Opcode::kAddI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] + static_cast<uint64_t>(imm));
      break;
    case Opcode::kSub:
      ev.rs1_val = r[in.rs1];
      ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] - r[in.rs2]);
      break;
    case Opcode::kSubI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] - static_cast<uint64_t>(imm));
      break;
    case Opcode::kMul:
      ev.rs1_val = r[in.rs1];
      ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] * r[in.rs2]);
      break;
    case Opcode::kMulI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] * static_cast<uint64_t>(imm));
      break;

    case Opcode::kUDiv:
    case Opcode::kSDiv:
    case Opcode::kURem:
    case Opcode::kSRem: {
      ev.rs1_val = r[in.rs1];
      ev.rs2_val = r[in.rs2];
      if (r[in.rs2] == 0) {
        RaiseTrap(proc, thread, kTrapDivZero, ev);
        if (!stop_) finish();
        return out;
      }
      uint64_t v = 0;
      const uint64_t a = r[in.rs1];
      const uint64_t b = r[in.rs2];
      const auto sa = static_cast<int64_t>(a);
      const auto sb = static_cast<int64_t>(b);
      const bool overflow = sa == INT64_MIN && sb == -1;
      switch (in.op) {
        case Opcode::kUDiv: v = a / b; break;
        case Opcode::kSDiv:
          v = overflow ? static_cast<uint64_t>(INT64_MIN)
                       : static_cast<uint64_t>(sa / sb);
          break;
        case Opcode::kURem: v = a % b; break;
        case Opcode::kSRem:
          v = overflow ? 0 : static_cast<uint64_t>(sa % sb);
          break;
        default: break;
      }
      set_rd(v);
      break;
    }

    case Opcode::kAnd:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] & r[in.rs2]);
      break;
    case Opcode::kAndI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] & static_cast<uint64_t>(imm));
      break;
    case Opcode::kOr:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] | r[in.rs2]);
      break;
    case Opcode::kOrI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] | static_cast<uint64_t>(imm));
      break;
    case Opcode::kXor:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] ^ r[in.rs2]);
      break;
    case Opcode::kXorI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] ^ static_cast<uint64_t>(imm));
      break;
    case Opcode::kShl:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] << (r[in.rs2] & 63));
      break;
    case Opcode::kShlI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] << (imm & 63));
      break;
    case Opcode::kShr:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] >> (r[in.rs2] & 63));
      break;
    case Opcode::kShrI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] >> (imm & 63));
      break;
    case Opcode::kSar:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(static_cast<uint64_t>(static_cast<int64_t>(r[in.rs1]) >>
                                   (r[in.rs2] & 63)));
      break;
    case Opcode::kSarI:
      ev.rs1_val = r[in.rs1];
      set_rd(static_cast<uint64_t>(static_cast<int64_t>(r[in.rs1]) >>
                                   (imm & 63)));
      break;
    case Opcode::kNot:
      ev.rs1_val = r[in.rs1];
      set_rd(~r[in.rs1]);
      break;
    case Opcode::kNeg:
      ev.rs1_val = r[in.rs1];
      set_rd(~r[in.rs1] + 1);
      break;

    case Opcode::kCmpEq:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] == r[in.rs2] ? 1 : 0);
      break;
    case Opcode::kCmpEqI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] == static_cast<uint64_t>(imm) ? 1 : 0);
      break;
    case Opcode::kCmpNe:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] != r[in.rs2] ? 1 : 0);
      break;
    case Opcode::kCmpNeI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] != static_cast<uint64_t>(imm) ? 1 : 0);
      break;
    case Opcode::kCmpLtU:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] < r[in.rs2] ? 1 : 0);
      break;
    case Opcode::kCmpLtUI:
      ev.rs1_val = r[in.rs1];
      set_rd(r[in.rs1] < static_cast<uint64_t>(imm) ? 1 : 0);
      break;
    case Opcode::kCmpLtS:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(static_cast<int64_t>(r[in.rs1]) < static_cast<int64_t>(r[in.rs2])
                 ? 1 : 0);
      break;
    case Opcode::kCmpLtSI:
      ev.rs1_val = r[in.rs1];
      set_rd(static_cast<int64_t>(r[in.rs1]) < imm ? 1 : 0);
      break;
    case Opcode::kCmpLeU:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(r[in.rs1] <= r[in.rs2] ? 1 : 0);
      break;
    case Opcode::kCmpLeS:
      ev.rs1_val = r[in.rs1]; ev.rs2_val = r[in.rs2];
      set_rd(static_cast<int64_t>(r[in.rs1]) <=
                     static_cast<int64_t>(r[in.rs2])
                 ? 1 : 0);
      break;

    case Opcode::kBz:
    case Opcode::kBnz: {
      ev.rs1_val = r[in.rs1];
      const bool taken = (in.op == Opcode::kBz) == (r[in.rs1] == 0);
      ev.branch_taken = taken;
      if (taken) ev.next_pc = next + imm;
      break;
    }
    case Opcode::kJmp:
      ev.next_pc = next + imm;
      break;
    case Opcode::kJmpR:
      ev.rs1_val = r[in.rs1];
      ev.next_pc = r[in.rs1];
      break;
    case Opcode::kCall:
    case Opcode::kCallR: {
      r[isa::kRegSp] -= 8;
      proc.mem.WriteU64(r[isa::kRegSp], next);
      ev.mem_addr = r[isa::kRegSp];
      ev.mem_value = next;
      if (in.op == Opcode::kCall) {
        ev.next_pc = next + imm;
      } else {
        ev.rs1_val = r[in.rs1];
        ev.next_pc = r[in.rs1];
      }
      break;
    }
    case Opcode::kRet: {
      const uint64_t ret_addr = proc.mem.ReadU64(r[isa::kRegSp]);
      ev.mem_addr = r[isa::kRegSp];
      ev.mem_value = ret_addr;
      r[isa::kRegSp] += 8;
      ev.next_pc = ret_addr;
      break;
    }

    case Opcode::kLd1:
    case Opcode::kLd2:
    case Opcode::kLd4:
    case Opcode::kLd8:
    case Opcode::kLdS1:
    case Opcode::kLdS2:
    case Opcode::kLdS4: {
      ev.rs1_val = r[in.rs1];
      const uint64_t addr = r[in.rs1] + static_cast<uint64_t>(imm);
      uint64_t v = proc.mem.ReadUnit(addr, info.mem_width);
      if (in.op == Opcode::kLdS1 || in.op == Opcode::kLdS2 ||
          in.op == Opcode::kLdS4) {
        v = SignExtend(v, info.mem_width * 8);
      }
      ev.mem_addr = addr;
      ev.mem_value = v;
      set_rd(v);
      break;
    }
    case Opcode::kSt1:
    case Opcode::kSt2:
    case Opcode::kSt4:
    case Opcode::kSt8: {
      ev.rs1_val = r[in.rs1];
      const uint64_t addr = r[in.rs1] + static_cast<uint64_t>(imm);
      const uint64_t v = TruncToWidth(r[in.rd], info.mem_width * 8);
      proc.mem.WriteUnit(addr, info.mem_width, v);
      ev.mem_addr = addr;
      ev.mem_value = v;
      ev.rd_new = r[in.rd];  // value register (unchanged)
      break;
    }
    case Opcode::kLdX1:
    case Opcode::kLdX8: {
      ev.rs1_val = r[in.rs1];
      ev.rs2_val = r[in.rs2];
      const uint64_t addr = r[in.rs1] + r[in.rs2];
      const uint64_t v = proc.mem.ReadUnit(addr, info.mem_width);
      ev.mem_addr = addr;
      ev.mem_value = v;
      set_rd(v);
      break;
    }
    case Opcode::kStX1:
    case Opcode::kStX8: {
      ev.rs1_val = r[in.rs1];
      ev.rs2_val = r[in.rs2];
      const uint64_t addr = r[in.rs1] + r[in.rs2];
      const uint64_t v = TruncToWidth(r[in.rd], info.mem_width * 8);
      proc.mem.WriteUnit(addr, info.mem_width, v);
      ev.mem_addr = addr;
      ev.mem_value = v;
      ev.rd_new = r[in.rd];
      break;
    }

    case Opcode::kPush:
      ev.rs1_val = r[in.rs1];
      r[isa::kRegSp] -= 8;
      proc.mem.WriteU64(r[isa::kRegSp], r[in.rs1]);
      ev.mem_addr = r[isa::kRegSp];
      ev.mem_value = r[in.rs1];
      break;
    case Opcode::kPop: {
      const uint64_t v = proc.mem.ReadU64(r[isa::kRegSp]);
      ev.mem_addr = r[isa::kRegSp];
      ev.mem_value = v;
      r[isa::kRegSp] += 8;
      set_rd(v);
      break;
    }
    case Opcode::kLea:
      set_rd(next + static_cast<uint64_t>(imm));
      break;

    case Opcode::kTrapZ:
      ev.rs1_val = r[in.rs1];
      if (r[in.rs1] == 0) {
        RaiseTrap(proc, thread, kTrapExplicitZero, ev);
      }
      break;
    case Opcode::kTrapNeg:
      ev.rs1_val = r[in.rs1];
      if (static_cast<int64_t>(r[in.rs1]) < 0) {
        RaiseTrap(proc, thread, kTrapExplicitNeg, ev);
      }
      break;

    case Opcode::kSys:
      DoSyscall(proc, thread, in.imm, ev);
      if (thread.state == ThreadState::kBlockedRead ||
          thread.state == ThreadState::kBlockedJoin) {
        // The attempt blocked: rewind (retry when woken), don't count the
        // instruction, and don't emit a trace event for the failed try.
        out.reschedule = true;
        out.advanced = false;
        if (!stop_) thread.cpu.pc = ev.next_pc;
        return out;
      }
      if (thread.state != ThreadState::kRunnable || in.imm == kSysYield) {
        out.reschedule = true;
      }
      break;

    case Opcode::kFAdd:
      ev.rs1_val = std::bit_cast<uint64_t>(f[in.rs1]);
      ev.rs2_val = std::bit_cast<uint64_t>(f[in.rs2]);
      set_fd(f[in.rs1] + f[in.rs2]);
      break;
    case Opcode::kFSub:
      ev.rs1_val = std::bit_cast<uint64_t>(f[in.rs1]);
      ev.rs2_val = std::bit_cast<uint64_t>(f[in.rs2]);
      set_fd(f[in.rs1] - f[in.rs2]);
      break;
    case Opcode::kFMul:
      ev.rs1_val = std::bit_cast<uint64_t>(f[in.rs1]);
      ev.rs2_val = std::bit_cast<uint64_t>(f[in.rs2]);
      set_fd(f[in.rs1] * f[in.rs2]);
      break;
    case Opcode::kFDiv:
      ev.rs1_val = std::bit_cast<uint64_t>(f[in.rs1]);
      ev.rs2_val = std::bit_cast<uint64_t>(f[in.rs2]);
      set_fd(f[in.rs1] / f[in.rs2]);
      break;
    case Opcode::kFCmpEq:
      ev.rs1_val = std::bit_cast<uint64_t>(f[in.rs1]);
      ev.rs2_val = std::bit_cast<uint64_t>(f[in.rs2]);
      set_rd(f[in.rs1] == f[in.rs2] ? 1 : 0);
      break;
    case Opcode::kFCmpLt:
      ev.rs1_val = std::bit_cast<uint64_t>(f[in.rs1]);
      ev.rs2_val = std::bit_cast<uint64_t>(f[in.rs2]);
      set_rd(f[in.rs1] < f[in.rs2] ? 1 : 0);
      break;
    case Opcode::kFCmpLe:
      ev.rs1_val = std::bit_cast<uint64_t>(f[in.rs1]);
      ev.rs2_val = std::bit_cast<uint64_t>(f[in.rs2]);
      set_rd(f[in.rs1] <= f[in.rs2] ? 1 : 0);
      break;
    case Opcode::kCvtIF:
      ev.rs1_val = r[in.rs1];
      set_fd(static_cast<double>(static_cast<int64_t>(r[in.rs1])));
      break;
    case Opcode::kCvtFI: {
      ev.rs1_val = std::bit_cast<uint64_t>(f[in.rs1]);
      const double d = f[in.rs1];
      int64_t v = 0;
      if (std::isfinite(d) && d >= -9.2233720368547758e18 &&
          d <= 9.2233720368547758e18) {
        v = static_cast<int64_t>(d);
      }
      set_rd(static_cast<uint64_t>(v));
      break;
    }
    case Opcode::kFMov:
      ev.rs1_val = std::bit_cast<uint64_t>(f[in.rs1]);
      set_fd(f[in.rs1]);
      break;
    case Opcode::kFLd: {
      ev.rs1_val = r[in.rs1];
      const uint64_t addr = r[in.rs1] + static_cast<uint64_t>(imm);
      const uint64_t bits = proc.mem.ReadU64(addr);
      ev.mem_addr = addr;
      ev.mem_value = bits;
      set_fd(std::bit_cast<double>(bits));
      break;
    }
    case Opcode::kFSt: {
      ev.rs1_val = r[in.rs1];
      const uint64_t addr = r[in.rs1] + static_cast<uint64_t>(imm);
      const uint64_t bits = std::bit_cast<uint64_t>(f[in.rd]);
      proc.mem.WriteU64(addr, bits);
      ev.mem_addr = addr;
      ev.mem_value = bits;
      break;
    }
    case Opcode::kMovGF:
      ev.rs1_val = r[in.rs1];
      set_fd(std::bit_cast<double>(r[in.rs1]));
      break;
    case Opcode::kMovFG:
      ev.rs1_val = std::bit_cast<uint64_t>(f[in.rs1]);
      set_rd(std::bit_cast<uint64_t>(f[in.rs1]));
      break;

    case Opcode::kOpcodeCount:
      Fault("decoded kOpcodeCount");
      return out;
  }

  if (result_.faulted) return out;
  finish();
  return out;
}

void Machine::RaiseTrap(Process& proc, Thread& thread, uint64_t cause,
                        TraceEvent& ev) {
  tracer_.Event("vm.trap", {obs::Field::U("cause", cause),
                            obs::Field::U("pc", ev.pc),
                            obs::Field::U("pid", proc.pid)});
  ev.trapped = true;
  ev.trap_cause = cause;
  if (proc.trap_handler == 0) {
    Fault(StrFormat("unhandled trap %llu at pc 0x%llx",
                    static_cast<unsigned long long>(cause),
                    static_cast<unsigned long long>(ev.pc)));
    return;
  }
  // Push the pc of the *next* instruction so a handler can resume, place
  // the cause in r11 and vector to the handler.
  auto& r = thread.cpu.r;
  r[isa::kRegSp] -= 8;
  proc.mem.WriteU64(r[isa::kRegSp], ev.pc + isa::kInstrBytes);
  r[isa::kRegTrapCause] = cause;
  ev.next_pc = proc.trap_handler;
}

void Machine::DoSyscall(Process& proc, Thread& thread, int32_t num,
                        TraceEvent& ev) {
  tracer_.Event("vm.syscall", {obs::Field::I("num", num),
                               obs::Field::U("pc", ev.pc),
                               obs::Field::U("pid", proc.pid),
                               obs::Field::U("tid", thread.tid)});
  auto& r = thread.cpu.r;
  ev.sys_num = num;
  for (int i = 0; i < 5; ++i) ev.sys_args[i] = r[1 + i];
  auto ret = [&](uint64_t v) {
    ev.rd_old = r[0];
    r[0] = v;
    ev.sys_ret = v;
    ev.rd_new = v;
  };

  switch (num) {
    case kSysExit: {
      proc.exit_code = static_cast<int>(r[1]);
      proc.alive = false;
      for (auto& t : proc.threads) t->state = ThreadState::kDone;
      // Closing this process's pipe ends may unblock readers elsewhere.
      for (auto& [fd, of] : proc.fds) {
        if (of.kind == OpenFile::Kind::kPipe) {
          auto it = pipes_.find(of.pipe_id);
          if (it != pipes_.end()) {
            if (of.pipe_write_end) {
              if (--it->second.writers <= 0) WakePipeReaders(of.pipe_id);
            } else {
              --it->second.readers;
            }
          }
        }
      }
      if (&proc == processes_.front().get()) {
        result_.exited = true;
        result_.exit_code = proc.exit_code;
        stop_ = true;
      }
      break;
    }
    case kSysWrite: {
      const int fd = static_cast<int>(r[1]);
      const uint64_t buf = r[2];
      const uint64_t len = r[3] > (1 << 20) ? (1 << 20) : r[3];
      std::vector<uint8_t> bytes(len);
      proc.mem.ReadBytes(buf, bytes);
      ev.sys_in_addr = buf;
      ev.sys_in_len = static_cast<uint32_t>(len);
      if (fd == kFdStdout || fd == kFdStderr) {
        result_.stdout_text.append(bytes.begin(), bytes.end());
        ret(len);
        break;
      }
      auto it = proc.fds.find(fd);
      if (it == proc.fds.end()) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      if (it->second.kind == OpenFile::Kind::kPipe) {
        auto pit = pipes_.find(it->second.pipe_id);
        if (pit == pipes_.end() || !it->second.pipe_write_end) {
          ret(static_cast<uint64_t>(-1));
          break;
        }
        pit->second.buf.insert(pit->second.buf.end(), bytes.begin(),
                               bytes.end());
        ev.channel = 0x9000000000000000ull |
                     static_cast<uint64_t>(it->second.pipe_id);
        WakePipeReaders(it->second.pipe_id);
        ret(len);
        break;
      }
      if (!it->second.writable) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      fs_.Append(it->second.path, bytes.data(), bytes.size());
      ev.channel = Fnv1a(it->second.path.data(), it->second.path.size());
      ret(len);
      break;
    }
    case kSysRead: {
      const int fd = static_cast<int>(r[1]);
      const uint64_t buf = r[2];
      const uint64_t len = r[3] > (1 << 20) ? (1 << 20) : r[3];
      if (fd == kFdStdin) {
        const size_t avail = stdin_data_.size() - stdin_pos_;
        const size_t n = std::min<size_t>(len, avail);
        proc.mem.WriteBytes(
            buf, std::span<const uint8_t>(
                     reinterpret_cast<const uint8_t*>(stdin_data_.data()) +
                         stdin_pos_,
                     n));
        stdin_pos_ += n;
        ev.sys_out_addr = buf;
        ev.sys_out_len = static_cast<uint32_t>(n);
        ev.channel = kChannelStdin;
        ret(n);
        break;
      }
      auto it = proc.fds.find(fd);
      if (it == proc.fds.end()) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      if (it->second.kind == OpenFile::Kind::kPipe) {
        auto pit = pipes_.find(it->second.pipe_id);
        if (pit == pipes_.end() || it->second.pipe_write_end) {
          ret(static_cast<uint64_t>(-1));
          break;
        }
        PipeState& pipe = pit->second;
        if (pipe.buf.empty()) {
          if (pipe.writers > 0) {
            // Block and retry this instruction when data arrives.
            thread.state = ThreadState::kBlockedRead;
            thread.wait_arg = static_cast<uint64_t>(fd);
            ev.next_pc = ev.pc;  // re-execute
            return;
          }
          ret(0);  // EOF
          break;
        }
        const size_t n = std::min<size_t>(len, pipe.buf.size());
        for (size_t i = 0; i < n; ++i) {
          proc.mem.WriteU8(buf + i, pipe.buf.front());
          pipe.buf.pop_front();
        }
        ev.sys_out_addr = buf;
        ev.sys_out_len = static_cast<uint32_t>(n);
        ev.channel = 0x9000000000000000ull |
                     static_cast<uint64_t>(it->second.pipe_id);
        ret(n);
        break;
      }
      auto contents = fs_.Get(it->second.path);
      if (!contents) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      const auto& data = contents.value();
      const size_t avail =
          it->second.pos >= data.size() ? 0 : data.size() - it->second.pos;
      const size_t n = std::min<size_t>(len, avail);
      proc.mem.WriteBytes(
          buf, std::span<const uint8_t>(data.data() + it->second.pos, n));
      it->second.pos += n;
      ev.sys_out_addr = buf;
      ev.sys_out_len = static_cast<uint32_t>(n);
      ev.channel = Fnv1a(it->second.path.data(), it->second.path.size());
      ret(n);
      break;
    }
    case kSysOpen: {
      auto path = proc.mem.ReadCString(r[1]);
      if (!path) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      ev.sys_in_addr = r[1];
      ev.sys_in_len = static_cast<uint32_t>(path.value().size() + 1);
      ev.channel = Fnv1a(path.value().data(), path.value().size());
      const bool write = (r[2] & 1) != 0;
      if (!write && !fs_.Exists(path.value())) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      if (write) fs_.Truncate(path.value());
      OpenFile of;
      of.kind = OpenFile::Kind::kFile;
      of.path = path.value();
      of.writable = write;
      const int fd = proc.next_fd++;
      proc.fds[fd] = of;
      ret(static_cast<uint64_t>(fd));
      break;
    }
    case kSysClose: {
      const int fd = static_cast<int>(r[1]);
      auto it = proc.fds.find(fd);
      if (it == proc.fds.end()) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      if (it->second.kind == OpenFile::Kind::kPipe) {
        auto pit = pipes_.find(it->second.pipe_id);
        if (pit != pipes_.end()) {
          if (it->second.pipe_write_end) {
            if (--pit->second.writers <= 0) {
              WakePipeReaders(it->second.pipe_id);
            }
          } else {
            --pit->second.readers;
          }
        }
      }
      proc.fds.erase(it);
      ret(0);
      break;
    }
    case kSysTime:
      ret(devices_.time_seconds);
      break;
    case kSysSrand:
      proc.rand_state = r[1] & 0x7fffffffu;
      ret(0);
      break;
    case kSysRand:
      ret(LcgNext(&proc.rand_state));
      break;
    case kSysGetPid:
      ret(proc.pid);
      break;
    case kSysFork: {
      auto child = std::make_unique<Process>();
      child->pid = static_cast<uint32_t>(devices_.first_pid) +
                   next_pid_offset_++;
      child->mem = proc.mem.Clone();
      child->fds = proc.fds;
      child->next_fd = proc.next_fd;
      child->trap_handler = proc.trap_handler;
      child->rand_state = proc.rand_state;
      for (auto& [fd, of] : child->fds) {
        if (of.kind == OpenFile::Kind::kPipe) {
          auto pit = pipes_.find(of.pipe_id);
          if (pit != pipes_.end()) {
            if (of.pipe_write_end) ++pit->second.writers;
            else ++pit->second.readers;
          }
        }
      }
      auto t = std::make_unique<Thread>();
      t->tid = child->next_tid++;
      t->cpu = thread.cpu;
      t->cpu.pc = ev.pc + isa::kInstrBytes;
      t->cpu.r[0] = 0;  // child sees 0
      child->threads.push_back(std::move(t));
      const uint32_t child_pid = child->pid;
      processes_.push_back(std::move(child));
      ret(child_pid);
      break;
    }
    case kSysPipe: {
      PipeState pipe;
      pipe.readers = 1;
      pipe.writers = 1;
      const int id = next_pipe_id_++;
      pipes_[id] = pipe;
      OpenFile rd;
      rd.kind = OpenFile::Kind::kPipe;
      rd.pipe_id = id;
      rd.pipe_write_end = false;
      OpenFile wr = rd;
      wr.pipe_write_end = true;
      const int rfd = proc.next_fd++;
      const int wfd = proc.next_fd++;
      proc.fds[rfd] = rd;
      proc.fds[wfd] = wr;
      proc.mem.WriteU64(r[1], static_cast<uint64_t>(rfd));
      proc.mem.WriteU64(r[1] + 8, static_cast<uint64_t>(wfd));
      ev.sys_out_addr = r[1];
      ev.sys_out_len = 16;
      ret(0);
      break;
    }
    case kSysThreadCreate: {
      auto t = std::make_unique<Thread>();
      t->tid = proc.next_tid++;
      t->cpu.pc = r[1];
      t->cpu.r[isa::kRegArg1] = r[2];
      t->cpu.r[isa::kRegSp] =
          options_.stack_top - options_.stack_size * t->tid;
      const uint32_t tid = t->tid;
      proc.threads.push_back(std::move(t));
      ret(tid);
      break;
    }
    case kSysThreadJoin: {
      const uint32_t tid = static_cast<uint32_t>(r[1]);
      bool done = true;
      bool found = false;
      for (const auto& t : proc.threads) {
        if (t->tid == tid) {
          found = true;
          done = t->state == ThreadState::kDone;
        }
      }
      if (!found) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      if (!done) {
        thread.state = ThreadState::kBlockedJoin;
        thread.wait_arg = tid;
        ev.next_pc = ev.pc;  // retry join when woken
        return;
      }
      ret(0);
      break;
    }
    case kSysYield:
      thread.state = ThreadState::kRunnable;  // slice ends via reschedule
      ret(0);
      break;
    case kSysSetTrap:
      proc.trap_handler = r[1];
      ret(0);
      break;
    case kSysWebGet: {
      const uint64_t buf = r[1];
      const uint64_t len = r[2];
      const size_t n = std::min<size_t>(len, devices_.web_document.size());
      proc.mem.WriteBytes(
          buf, std::span<const uint8_t>(
                   reinterpret_cast<const uint8_t*>(
                       devices_.web_document.data()),
                   n));
      ev.sys_out_addr = buf;
      ev.sys_out_len = static_cast<uint32_t>(n);
      ev.channel = kChannelWeb;
      ret(n);
      break;
    }
    case kSysBomb:
      result_.bomb_triggered = true;
      ret(0);
      break;
    case kSysUnlink: {
      auto path = proc.mem.ReadCString(r[1]);
      if (!path || !fs_.Remove(path.value())) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      ev.sys_in_addr = r[1];
      ev.sys_in_len = static_cast<uint32_t>(path.value().size() + 1);
      ret(0);
      break;
    }
    case kSysEchoStore:
    case kSysTlsStore: {
      auto key = proc.mem.ReadCString(r[1]);
      if (!key) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      const uint64_t salt = num == kSysEchoStore ? 0xec40 : 0x7150;
      devices_.echo_store[key.value()] = r[2];
      ev.sys_in_addr = r[1];
      ev.sys_in_len = static_cast<uint32_t>(key.value().size() + 1);
      ev.channel = Fnv1a(key.value().data(), key.value().size(), salt);
      ret(0);
      break;
    }
    case kSysEchoLoad:
    case kSysTlsLoad: {
      auto key = proc.mem.ReadCString(r[1]);
      if (!key) {
        ret(static_cast<uint64_t>(-1));
        break;
      }
      const uint64_t salt = num == kSysEchoLoad ? 0xec40 : 0x7150;
      auto it = devices_.echo_store.find(key.value());
      ev.sys_in_addr = r[1];
      ev.sys_in_len = static_cast<uint32_t>(key.value().size() + 1);
      ev.channel = Fnv1a(key.value().data(), key.value().size(), salt);
      ret(it == devices_.echo_store.end() ? 0 : it->second);
      break;
    }
    case kSysSleep:
      devices_.time_seconds += r[1];
      ret(0);
      break;
    default:
      Fault(StrFormat("unknown syscall %d at pc 0x%llx", num,
                      static_cast<unsigned long long>(ev.pc)));
      break;
  }

}

}  // namespace sbce::vm
