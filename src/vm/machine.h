// The SBVM machine: processes, threads, deterministic scheduler, syscalls.
//
// A Machine owns everything a run needs — guest memory per process, an
// in-memory filesystem, injectable devices — so constructing two machines
// with the same inputs yields byte-identical traces. This determinism is
// what makes the paper's experiments reproducible here without real
// hardware.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/isa/image.h"
#include "src/isa/predecode.h"
#include "src/obs/trace_sink.h"
#include "src/vm/devices.h"
#include "src/vm/filesystem.h"
#include "src/vm/memory.h"
#include "src/vm/trace_event.h"

namespace sbce::vm {

struct CpuState {
  std::array<uint64_t, 16> r{};
  std::array<double, 8> f{};
  uint64_t pc = 0;
};

enum class ThreadState : uint8_t {
  kRunnable,
  kBlockedJoin,   // waiting for thread `wait_arg` to finish
  kBlockedRead,   // waiting for data on fd `wait_arg`
  kDone,
};

struct Thread {
  uint32_t tid = 0;
  CpuState cpu;
  ThreadState state = ThreadState::kRunnable;
  uint64_t wait_arg = 0;
};

struct OpenFile {
  enum class Kind : uint8_t { kFile, kPipe, kStdio };
  Kind kind = Kind::kFile;
  std::string path;     // kFile
  bool writable = false;
  size_t pos = 0;       // kFile read cursor
  int pipe_id = -1;     // kPipe
  bool pipe_write_end = false;
  int stdio_fd = -1;    // kStdio
};

struct Process {
  uint32_t pid = 0;
  Memory mem;
  std::vector<std::unique_ptr<Thread>> threads;
  std::map<int, OpenFile> fds;
  int next_fd = 3;
  uint32_t next_tid = 1;
  uint64_t trap_handler = 0;
  uint64_t rand_state = 1;
  bool alive = true;
  int exit_code = 0;
};

struct RunResult {
  bool exited = false;          // root process called exit
  int exit_code = 0;
  bool bomb_triggered = false;  // SYS_BOMB observed anywhere
  bool faulted = false;
  std::string fault_reason;
  bool budget_exhausted = false;
  uint64_t instructions = 0;
  std::string stdout_text;
  // Decode-cache effectiveness: fetches served from the predecoded text
  // vs. raw byte decodes (cache disabled, pc outside text, dirty code
  // page, misaligned pc, or an undecodable slot).
  uint64_t decode_cache_hits = 0;
  uint64_t decode_cache_misses = 0;
};

/// An anonymous pipe's kernel-side state (buffer + open end counts).
struct PipeState {
  std::deque<uint8_t> buf;
  int readers = 0;
  int writers = 0;
};

/// Everything a Run() mutates, captured at a scheduler sweep boundary:
/// per-process memory (CoW-shared pages, register files, fds, decode-cache
/// dirty bits), pipes, the filesystem, devices, the stdin cursor, the
/// global trace sequence number and the partial RunResult. Restoring it
/// into a machine built from the same image resumes execution
/// bit-identically to the run that took the snapshot.
struct MachineSnapshot {
  std::vector<std::unique_ptr<Process>> processes;
  std::map<int, PipeState> pipes;
  int next_pipe_id = 1;
  uint32_t next_pid_offset = 1;
  SimFilesystem fs;
  Devices devices;
  std::string stdin_data;
  size_t stdin_pos = 0;
  uint64_t seq = 0;
  RunResult result;

  MachineSnapshot() = default;
  MachineSnapshot(const MachineSnapshot&) = delete;
  MachineSnapshot& operator=(const MachineSnapshot&) = delete;
  MachineSnapshot(MachineSnapshot&&) = default;
  MachineSnapshot& operator=(MachineSnapshot&&) = default;
};

class Machine {
 public:
  struct Options {
    uint64_t max_instructions = 20'000'000;
    uint32_t quantum = 48;              // instructions per scheduling slice
    uint64_t stack_top = 0x7ff0'0000;   // stacks grow down from here
    uint64_t stack_size = 0x1'0000;     // per-thread stack reservation
    uint64_t argv_base = 0x7fe0'0000;   // argv block location
    /// Serve instruction fetches from a predecoded text store instead of
    /// re-decoding raw bytes every step. Stores into the text range
    /// invalidate the affected page (see Memory::SetCodeWatch), so
    /// self-modifying code behaves exactly as with the cache off.
    bool decode_cache = true;
    /// Prebuilt store to share across machines running the same image
    /// (fork children within one machine always share). Must have been
    /// built from the image passed to the constructor; when null the
    /// machine predecodes the image itself.
    std::shared_ptr<const isa::PredecodedText> predecoded;
  };

  /// Loads `image`, sets up argv (r1 = argc, r2 = argv pointer array) and a
  /// single root thread at the image entry point.
  Machine(const isa::BinaryImage& image, std::vector<std::string> argv,
          Devices devices, Options options);
  Machine(const isa::BinaryImage& image, std::vector<std::string> argv,
          Devices devices);
  Machine(const isa::BinaryImage& image, std::vector<std::string> argv);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  SimFilesystem& fs() { return fs_; }
  const SimFilesystem& fs() const { return fs_; }
  Devices& devices() { return devices_; }

  void SetStdin(std::string data) { stdin_data_ = std::move(data); }

  /// Hook invoked after every executed instruction. Must not mutate the
  /// machine.
  void set_trace_hook(std::function<void(const TraceEvent&)> hook) {
    trace_hook_ = std::move(hook);
  }

  /// Observability sink for coarse machine events (syscalls, traps,
  /// faults, budget trips, run summary). Unlike the per-instruction trace
  /// hook this is off the interpreter hot path: with no sink installed
  /// the only cost is a pointer test at those (rare) sites.
  void set_tracer(obs::Tracer tracer) { tracer_ = tracer; }

  /// Runs to completion (root exit), fault, deadlock, or budget exhaustion.
  /// Resumable: after Restore() a second Run() continues from the restored
  /// state exactly as the recording run would have.
  RunResult Run();

  /// Captures the machine's entire mutable state. O(pages) in refcount
  /// bumps (memory pages are CoW-shared with the snapshot). Only
  /// meaningful between runs or from the checkpoint hook — never while an
  /// instruction is in flight.
  MachineSnapshot Snapshot() const;

  /// Replaces the machine's mutable state with `snapshot` (taken from a
  /// machine built from the same image with the same options). The
  /// machine's own argv/stdin setup is discarded: execution resumes the
  /// recorded run, including its RunResult counters. Use RebindInputByte
  /// to patch input bytes the recorded prefix never consumed.
  void Restore(const MachineSnapshot& snapshot);

  /// Called at scheduler sweep boundaries while the machine has a single
  /// process, whenever at least the requested instruction gap has elapsed
  /// since the previous checkpoint. Returns the minimum gap before the
  /// next snapshot (0 disables further checkpoints this run).
  using CheckpointHook =
      std::function<uint64_t(std::shared_ptr<const MachineSnapshot>)>;
  void set_checkpoint_hook(uint64_t first_gap, CheckpointHook hook) {
    checkpoint_gap_ = first_gap;
    checkpoint_hook_ = std::move(hook);
  }

  /// Arms Memory::SetInputWatch over the root argv block (pointer array +
  /// string bytes), so checkpoint reuse can tell which input bytes the
  /// recorded prefix consumed or overwrote. Call before Run.
  void WatchArgvBlock();

  /// Span of the root argv block, [lo, hi).
  std::pair<uint64_t, uint64_t> ArgvBlockSpan() const;

  /// Patches one byte of the root argv block after a Restore (no
  /// consumed/overwritten bookkeeping; see Memory::RebindInputByte).
  void RebindInputByte(uint64_t addr, uint8_t v) {
    processes_.front()->mem.RebindInputByte(addr, v);
  }

  /// Pages physically copied by CoW breaks across this machine's clone
  /// lineage (fork children, snapshots, restores).
  uint64_t CowPagesCopied() const {
    return processes_.front()->mem.CowPagesCopied();
  }

  size_t ProcessCount() const { return processes_.size(); }

  /// Guest address where the bytes of argv[i] were placed.
  uint64_t ArgvStringAddr(size_t i) const;

  const Process& root() const { return *processes_.front(); }
  const std::vector<std::string>& argv() const { return argv_; }

 private:
  struct StepOutcome {
    bool advanced = false;      // an instruction retired
    bool reschedule = false;    // blocked / exited / yielded
  };

  void LoadImage(const isa::BinaryImage& image);
  void SetupRootProcess(uint64_t entry);

  Process* FindProcess(uint32_t pid);
  bool AnyRunnable() const;
  void UnblockJoinWaiters(Process& proc, uint32_t tid);
  void WakePipeReaders(int pipe_id);

  StepOutcome Step(Process& proc, Thread& thread);
  void DoSyscall(Process& proc, Thread& thread, int32_t num,
                 TraceEvent& ev);
  /// Raises a trap: vectors to the registered handler or faults.
  void RaiseTrap(Process& proc, Thread& thread, uint64_t cause,
                 TraceEvent& ev);
  void Fault(std::string reason);

  std::vector<std::string> argv_;
  Devices devices_;
  Options options_;
  SimFilesystem fs_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::map<int, PipeState> pipes_;
  int next_pipe_id_ = 1;
  uint32_t next_pid_offset_ = 1;

  /// Immutable decoded text shared by every process of this machine (and,
  /// when Options::predecoded is supplied, by sibling machines). Null when
  /// the decode cache is off.
  std::shared_ptr<const isa::PredecodedText> text_;

  std::function<void(const TraceEvent&)> trace_hook_;
  obs::Tracer tracer_;
  std::string stdin_data_;
  size_t stdin_pos_ = 0;

  RunResult result_;
  bool stop_ = false;
  uint64_t seq_ = 0;

  // Checkpoint-hook state (see set_checkpoint_hook).
  CheckpointHook checkpoint_hook_;
  uint64_t checkpoint_gap_ = 0;
  uint64_t last_checkpoint_instr_ = 0;
};

}  // namespace sbce::vm
