// Experiment runner: bombs × tool profiles → outcome grid (Table II).
#pragma once

#include <string>
#include <vector>

#include "src/bombs/bombs.h"
#include "src/tools/classify.h"
#include "src/tools/profiles.h"

namespace sbce::tools {

struct CellResult {
  std::string bomb_id;
  std::string tool;
  Outcome outcome = Outcome::kE;
  std::string expected;  // paper label ("-" when not part of Table II)
  bool matches_paper = false;
  core::EngineResult engine;
};

/// Runs one tool on one bomb (exploration, claims, validation).
CellResult RunCell(const bombs::BombSpec& bomb, const ToolProfile& tool);

struct GridResult {
  std::vector<CellResult> cells;  // bomb-major, tool-minor order
  int matches = 0;
  int total = 0;
};

/// The full Table II experiment: 22 bombs × 4 tools.
GridResult RunTableTwo(const std::vector<ToolProfile>& tools);

/// Renders the grid in the paper's layout (includes the solver stats
/// footer table below the grid).
std::string RenderTableTwo(const GridResult& grid,
                           const std::vector<ToolProfile>& tools);

/// Renders the per-tool query-pipeline summary (queries, cache hit rate,
/// sliced queries, solver wall-clock) aggregated over the grid.
std::string RenderSolverStats(const GridResult& grid,
                              const std::vector<ToolProfile>& tools);

}  // namespace sbce::tools
