// Experiment runner: bombs × tool profiles → outcome grid (Table II).
//
// Per-cell analysis happens in the unified analysis API —
// service::AnalysisRequest / service::Analyze in src/service/api.h; the
// old RunCell/ExploreImage shims are gone. This layer owns the grid-level
// machinery (cell lists, RunGrid dispatch, rendering, JSON export): it is
// the Table II reporting surface, not an analysis entry point.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/bombs/bombs.h"
#include "src/corpus/corpus.h"
#include "src/obs/json.h"
#include "src/obs/trace_sink.h"
#include "src/tools/classify.h"
#include "src/tools/profiles.h"

namespace sbce::tools {

/// Per-run knobs for RunGrid/RunTableTwo, applied uniformly to every
/// cell. A struct instead of positional parameters so new toggles
/// (sinks, budget overrides, pipeline modes) don't ripple through every
/// call site; the fields map 1:1 onto service::AnalysisRequest's
/// budgets/modes.
struct RunOptions {
  /// Observability sink threaded through the engine, VM, symbolic
  /// executor and query pipeline (not owned; may be null).
  obs::TraceSink* trace_sink = nullptr;
  /// Disable the query pipeline's cache/slicing/incremental-session/
  /// portfolio/parallel dispatch — the pre-pipeline serial behaviour
  /// (`table2_tool_grid --baseline`). The grid must come out identical
  /// either way.
  bool baseline_pipeline = false;
  // Budget overrides (engine defaults from the tool profile when unset).
  std::optional<uint64_t> max_rounds;
  std::optional<uint64_t> max_solver_queries;
  std::optional<unsigned> solver_threads;
  /// Disable checkpoint-based re-exploration (`--no-checkpoints`): every
  /// round runs from scratch. Grid/JSON/trace output must come out
  /// identical either way; only wall-clock and checkpoint.* counters move.
  bool no_checkpoints = false;
  /// Disable the abstract pre-solver (`--no-presolve`): no pipeline
  /// pre-solve, range-aware rewrites, known-bits constant literals or
  /// engine negation dropping. Grid/JSON output must come out identical
  /// either way; only wall-clock and presolve_* counters move.
  bool no_presolve = false;
};

struct CellResult {
  std::string bomb_id;
  std::string tool;
  Outcome outcome = Outcome::kE;
  std::string expected;  // paper label ("-" when not part of Table II)
  bool matches_paper = false;
  /// Failure provenance: present exactly when outcome != kOk.
  std::optional<obs::Attribution> attribution;
  core::EngineResult engine;
};

/// One (bomb, tool) pairing of a grid run. `bomb` points into the static
/// dataset or a generated corpus the caller keeps alive for the run; the
/// profile is copied so callers can tweak it per cell.
struct CellSpec {
  const bombs::BombSpec* bomb = nullptr;
  ToolProfile tool;
};

/// The Table II cell list: every dataset bomb crossed with `tools`,
/// bomb-major, tool-minor (the paper's layout).
std::vector<CellSpec> TableTwoCells(const std::vector<ToolProfile>& tools);

/// The same layout over a generated corpus (src/corpus): every admitted
/// cell crossed with `tools`, cell-major, tool-minor. The returned specs
/// point into `corpus` — keep it alive for the duration of the grid run.
std::vector<CellSpec> CorpusCells(const corpus::Corpus& corpus,
                                  const std::vector<ToolProfile>& tools);

struct GridResult {
  std::vector<CellResult> cells;  // bomb-major, tool-minor order
  int matches = 0;
  int total = 0;
};

/// Runs every cell, `jobs`-wide (0 = hardware concurrency, 1 = serial;
/// each cell is fully independent: its own machine, expression pool and
/// engine). The output is deterministic and identical for every `jobs`
/// value: cells land in `cells` in spec order, match totals are counted
/// in spec order, and when `options.trace_sink` is set each cell traces
/// into a private buffer that is replayed into the sink in spec order
/// after all cells finish — so even the trace stream is byte-equal to a
/// serial run's (modulo wall-clock duration fields).
GridResult RunGrid(const std::vector<CellSpec>& cells,
                   const RunOptions& options = {}, unsigned jobs = 1);

/// The full Table II experiment: 22 bombs × 4 tools (serial; use
/// RunGrid(TableTwoCells(tools), options, jobs) for parallel runs).
GridResult RunTableTwo(const std::vector<ToolProfile>& tools,
                       const RunOptions& options = {});

/// Renders the grid in the paper's layout (includes the solver stats
/// footer and the per-cell failure attributions below the grid).
std::string RenderTableTwo(const GridResult& grid,
                           const std::vector<ToolProfile>& tools);

/// Renders the per-tool query-pipeline summary (queries, cache hit rate,
/// sliced queries, solver wall-clock) aggregated over the grid.
std::string RenderSolverStats(const GridResult& grid,
                              const std::vector<ToolProfile>& tools);

/// Renders one row per non-✓ cell: bomb, tool, outcome, attributed stage,
/// triggering pc and reason.
std::string RenderAttributions(const GridResult& grid);

/// Machine-readable grid export: cells with outcomes, paper labels and
/// attribution records, plus the match totals.
obs::JsonValue GridToJson(const GridResult& grid);

/// Inverse of GridToJson (engine results are not round-tripped — only the
/// reporting surface: outcomes, labels, attributions, totals). nullopt if
/// `v` is not a grid object.
std::optional<GridResult> GridFromJson(const obs::JsonValue& v);

}  // namespace sbce::tools
