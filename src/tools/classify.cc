#include "src/tools/classify.h"

#include "src/support/str.h"

namespace sbce::tools {

using symex::ErrorStage;

std::string_view OutcomeLabel(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: return "OK";
    case Outcome::kEs0: return "Es0";
    case Outcome::kEs1: return "Es1";
    case Outcome::kEs2: return "Es2";
    case Outcome::kEs3: return "Es3";
    case Outcome::kE: return "E";
    case Outcome::kP: return "P";
  }
  return "?";
}

Outcome Classify(const core::EngineResult& r) {
  if (r.aborted) return Outcome::kE;
  if (r.validated) return Outcome::kOk;
  if (r.claimed) {
    return Any(r.provenance & core::ClaimProvenance::kSysEnv) ? Outcome::kP
                                                              : Outcome::kEs2;
  }
  if (!r.any_symbolic_seen) return Outcome::kEs0;
  if (r.diag.Has(ErrorStage::kEs1)) return Outcome::kEs1;
  if (r.diag.Has(ErrorStage::kEs3)) return Outcome::kEs3;
  if (r.diag.Has(ErrorStage::kEs2)) return Outcome::kEs2;
  return Outcome::kEs0;
}

namespace {

/// First diagnostic of `stage`, or nullptr.
const symex::Diagnostic* FirstDiag(const core::EngineResult& r,
                                   ErrorStage stage) {
  for (const auto& d : r.diag.entries) {
    if (d.stage == stage) return &d;
  }
  return nullptr;
}

std::string ProvenanceText(core::ClaimProvenance p) {
  std::string out;
  if (Any(p & core::ClaimProvenance::kSysEnv)) out += "sys-env";
  if (Any(p & core::ClaimProvenance::kLibEnv)) {
    if (!out.empty()) out += "+";
    out += "lib-env";
  }
  return out.empty() ? "none" : out;
}

/// Attribution from the first diagnostic of the stage the classifier
/// picked; falls back to a stage-level reason when (unusually) no
/// diagnostic of that stage exists.
obs::Attribution FromDiag(const core::EngineResult& r, ErrorStage stage,
                          std::string_view gloss) {
  obs::Attribution a;
  a.stage.assign(symex::ErrorStageLabel(stage));
  a.detail.assign(gloss);
  if (const symex::Diagnostic* d = FirstDiag(r, stage)) {
    a.pc = d->pc;
    a.reason = d->detail;
  } else {
    a.reason.assign(gloss);
  }
  return a;
}

}  // namespace

std::optional<obs::Attribution> Attribute(Outcome outcome,
                                          const core::EngineResult& r) {
  obs::Attribution a;
  switch (outcome) {
    case Outcome::kOk:
      return std::nullopt;

    case Outcome::kE:
      a.stage = "E";
      a.reason = r.abort_reason.empty() ? "engine aborted" : r.abort_reason;
      a.detail = "abnormal engine exit";
      return a;

    case Outcome::kP:
      a.stage = "P";
      a.reason = StrFormat(
          "claim satisfiable only under simulated environment symbols "
          "(provenance: %s); concrete validation did not reach the target",
          ProvenanceText(r.provenance).c_str());
      a.detail = "partial success";
      return a;

    case Outcome::kEs0:
      a.stage = "Es0";
      a.reason = r.any_symbolic_seen
                     ? "exploration exhausted with only well-modeled "
                       "constraints: the symbolic input declaration missed "
                       "the bytes that gate the target"
                     : "no symbolic data was ever observed: the input "
                       "source was not declared symbolic";
      a.detail = "symbolic variable declaration failure";
      return a;

    case Outcome::kEs1:
      return FromDiag(r, ErrorStage::kEs1,
                      "instruction tracing / lifting failure");

    case Outcome::kEs2:
      // A wrong generated input (failed validation) is attributed to the
      // claim itself; otherwise to the first propagation-loss diagnostic.
      if (r.claimed && !r.validated) {
        const symex::Diagnostic* d = FirstDiag(r, ErrorStage::kEs2);
        a.stage = "Es2";
        a.pc = d != nullptr ? d->pc : 0;
        a.reason =
            "generated test case failed concrete validation (wrong data "
            "propagation along the claimed path)";
        if (d != nullptr) a.detail = d->detail;
        return a;
      }
      return FromDiag(r, ErrorStage::kEs2, "data propagation failure");

    case Outcome::kEs3:
      return FromDiag(r, ErrorStage::kEs3, "constraint modeling failure");
  }
  return std::nullopt;
}

}  // namespace sbce::tools
