#include "src/tools/classify.h"

namespace sbce::tools {

using symex::ErrorStage;

std::string_view OutcomeLabel(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: return "OK";
    case Outcome::kEs0: return "Es0";
    case Outcome::kEs1: return "Es1";
    case Outcome::kEs2: return "Es2";
    case Outcome::kEs3: return "Es3";
    case Outcome::kE: return "E";
    case Outcome::kP: return "P";
  }
  return "?";
}

Outcome Classify(const core::EngineResult& r) {
  if (r.aborted) return Outcome::kE;
  if (r.validated) return Outcome::kOk;
  if (r.claimed) {
    return r.used_sys_env ? Outcome::kP : Outcome::kEs2;
  }
  if (!r.any_symbolic_seen) return Outcome::kEs0;
  if (r.diag.Has(ErrorStage::kEs1)) return Outcome::kEs1;
  if (r.diag.Has(ErrorStage::kEs3)) return Outcome::kEs3;
  if (r.diag.Has(ErrorStage::kEs2)) return Outcome::kEs2;
  return Outcome::kEs0;
}

}  // namespace sbce::tools
