#include "src/tools/runner.h"

#include <memory>

#include "src/report/table.h"
#include "src/support/str.h"
#include "src/vm/machine.h"

namespace sbce::tools {

CellResult RunCell(const bombs::BombSpec& bomb, const ToolProfile& tool) {
  CellResult cell;
  cell.bomb_id = bomb.id;
  cell.tool = tool.name;

  const isa::BinaryImage image = bombs::BuildBomb(bomb);
  const uint64_t target = bombs::BombAddress(image);

  core::ConcolicEngine engine(
      image,
      [&bomb, &image](const std::vector<std::string>& argv) {
        auto machine = std::make_unique<vm::Machine>(
            image, argv, bomb.experiment_devices);
        for (const auto& [path, contents] : bomb.files) {
          machine->fs().PutString(path, contents);
        }
        return machine;
      },
      tool.engine);
  cell.engine = engine.Explore(bomb.seed_argv, target);
  cell.outcome = Classify(cell.engine);

  int tool_index = -1;
  if (tool.name == "BAP") tool_index = bombs::kBap;
  if (tool.name == "Triton") tool_index = bombs::kTriton;
  if (tool.name == "Angr") tool_index = bombs::kAngr;
  if (tool.name == "Angr-NoLib") tool_index = bombs::kAngrNoLib;
  cell.expected =
      tool_index >= 0 ? bomb.expected[tool_index] : bomb.expected_ideal;
  cell.matches_paper =
      cell.expected == std::string(OutcomeLabel(cell.outcome));
  return cell;
}

GridResult RunTableTwo(const std::vector<ToolProfile>& tools) {
  GridResult grid;
  for (const bombs::BombSpec* bomb : bombs::TableTwoBombs()) {
    for (const ToolProfile& tool : tools) {
      CellResult cell = RunCell(*bomb, tool);
      if (cell.expected != "-") {
        ++grid.total;
        if (cell.matches_paper) ++grid.matches;
      }
      grid.cells.push_back(std::move(cell));
    }
  }
  return grid;
}

std::string RenderTableTwo(const GridResult& grid,
                           const std::vector<ToolProfile>& tools) {
  report::AsciiTable table;
  std::vector<std::string> header = {"Category", "Sample Case"};
  for (const auto& tool : tools) {
    header.push_back(tool.name);
    header.push_back("paper");
  }
  table.SetHeader(header);

  const auto bombs_list = bombs::TableTwoBombs();
  bombs::Category last_category = bombs::Category::kDemo;
  size_t cell_index = 0;
  for (const bombs::BombSpec* bomb : bombs_list) {
    if (bomb->category != last_category) {
      table.AddSeparator();
      last_category = bomb->category;
    }
    std::vector<std::string> row = {std::string(CategoryName(bomb->category)),
                                    bomb->challenge};
    for (size_t t = 0; t < tools.size(); ++t) {
      const CellResult& cell = grid.cells[cell_index++];
      std::string label(OutcomeLabel(cell.outcome));
      if (!cell.matches_paper) label += " *";
      row.push_back(label);
      row.push_back(cell.expected);
    }
    table.AddRow(std::move(row));
  }

  std::string out = table.Render();
  out += StrFormat("cells matching the paper: %d / %d\n", grid.matches,
                   grid.total);
  // Success counts per tool (paper: Angr 4, BAP 2, Triton 1).
  for (size_t t = 0; t < tools.size(); ++t) {
    int solved = 0;
    for (size_t i = t; i < grid.cells.size(); i += tools.size()) {
      if (grid.cells[i].outcome == Outcome::kOk) ++solved;
    }
    out += StrFormat("%s solved: %d\n", tools[t].name.c_str(), solved);
  }
  out += "\n";
  out += RenderSolverStats(grid, tools);
  return out;
}

std::string RenderSolverStats(const GridResult& grid,
                              const std::vector<ToolProfile>& tools) {
  report::AsciiTable table;
  table.SetTitle("query pipeline, per tool (hits/misses are per "
                 "independence-sliced component)");
  table.SetHeader({"Tool", "queries", "cache hits", "cache misses", "hit %",
                   "sliced", "solver ms"});
  for (size_t t = 0; t < tools.size(); ++t) {
    uint64_t queries = 0, hits = 0, misses = 0, sliced = 0, micros = 0;
    for (size_t i = t; i < grid.cells.size(); i += tools.size()) {
      const core::EngineResult& r = grid.cells[i].engine;
      queries += r.solver_queries;
      hits += r.solver_cache_hits;
      misses += r.solver_cache_misses;
      sliced += r.sliced_queries;
      micros += r.solver_micros;
    }
    const uint64_t lookups = hits + misses;
    const double hit_pct =
        lookups == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                 static_cast<double>(lookups);
    const auto u64 = [](uint64_t v) {
      return StrFormat("%llu", static_cast<unsigned long long>(v));
    };
    table.AddRow({tools[t].name, u64(queries), u64(hits), u64(misses),
                  StrFormat("%.1f", hit_pct), u64(sliced),
                  StrFormat("%.1f", static_cast<double>(micros) / 1000.0)});
  }
  return table.Render();
}

}  // namespace sbce::tools
