#include "src/tools/runner.h"

#include <memory>
#include <thread>
#include <utility>

#include "src/obs/buffer_sink.h"
#include "src/report/table.h"
#include "src/service/api.h"
#include "src/support/str.h"
#include "src/support/thread_pool.h"

namespace sbce::tools {

namespace {

/// Translates the legacy per-run knobs into an AnalysisRequest's budget
/// and mode fields (everything downstream goes through
/// service::ApplyBudgets — the single override path).
void FoldOptions(const RunOptions& options, service::AnalysisRequest* req) {
  req->budgets.max_rounds = options.max_rounds;
  req->budgets.max_solver_queries = options.max_solver_queries;
  req->budgets.solver_threads = options.solver_threads;
  req->baseline_pipeline = options.baseline_pipeline;
  req->no_checkpoints = options.no_checkpoints;
  req->no_presolve = options.no_presolve;
}

/// One grid cell through the unified API, wrapped in the cell.begin /
/// cell.done grid trace events.
CellResult RunOneCell(const bombs::BombSpec& bomb, const ToolProfile& tool,
                      const RunOptions& options) {
  obs::Tracer tracer(options.trace_sink);
  tracer.Event("cell.begin", {obs::Field::S("bomb", bomb.id),
                              obs::Field::S("tool", tool.name)});

  service::AnalysisRequest request;
  request.local_bomb = &bomb;
  request.bomb = bomb.id;
  request.profile = tool.name;
  // Callers tweak profiles per cell (the ablation benches), so the spec's
  // engine config is authoritative — the name is only the reporting label
  // and the Table II expected-column key.
  request.custom_engine = tool.engine;
  FoldOptions(options, &request);

  service::AnalyzeEnv env;
  env.trace_sink = options.trace_sink;
  service::AnalysisResult res = service::Analyze(request, env);

  CellResult cell;
  cell.bomb_id = bomb.id;
  cell.tool = tool.name;
  cell.outcome = res.outcome;
  cell.expected = res.expected;
  cell.matches_paper = res.matches_paper;
  cell.attribution = std::move(res.attribution);
  cell.engine = std::move(res.engine);

  if (tracer.enabled()) {
    tracer.Event("cell.done",
                 {obs::Field::S("bomb", bomb.id),
                  obs::Field::S("tool", tool.name),
                  obs::Field::S("outcome", OutcomeLabel(cell.outcome)),
                  obs::Field::S("expected", cell.expected),
                  obs::Field::U("wall_micros",
                                cell.engine.metrics.explore_micros),
                  obs::Field::U("decode_cache_hits",
                                cell.engine.metrics.decode_cache_hits)});
  }
  return cell;
}

}  // namespace

std::vector<CellSpec> TableTwoCells(const std::vector<ToolProfile>& tools) {
  std::vector<CellSpec> cells;
  for (const bombs::BombSpec* bomb : bombs::TableTwoBombs()) {
    for (const ToolProfile& tool : tools) {
      cells.push_back({bomb, tool});
    }
  }
  return cells;
}

std::vector<CellSpec> CorpusCells(const corpus::Corpus& corpus,
                                  const std::vector<ToolProfile>& tools) {
  std::vector<CellSpec> cells;
  for (const corpus::CorpusCell& cell : corpus.cells) {
    for (const ToolProfile& tool : tools) {
      cells.push_back({&cell.spec, tool});
    }
  }
  return cells;
}

GridResult RunGrid(const std::vector<CellSpec>& cells,
                   const RunOptions& options, unsigned jobs) {
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) jobs = 1;
  }

  GridResult grid;
  grid.cells.resize(cells.size());
  // With a sink installed, each cell traces into a private buffer so
  // concurrent cells cannot interleave records; the buffers are replayed
  // into the real sink in spec order below.
  std::vector<obs::BufferSink> buffers(
      options.trace_sink != nullptr ? cells.size() : 0);

  ThreadPool pool(jobs);
  pool.ForEachIndex(cells.size(), [&](size_t i) {
    RunOptions cell_options = options;
    if (options.trace_sink != nullptr) cell_options.trace_sink = &buffers[i];
    // Cell-level parallelism subsumes intra-cell solver dispatch: running
    // each cell's solver serially avoids jobs × solver_threads
    // oversubscription. Safe because engine results are bit-identical for
    // every solver_threads value (solver::QueryPipeline's contract).
    if (jobs > 1 && !options.solver_threads) cell_options.solver_threads = 1;
    grid.cells[i] = RunOneCell(*cells[i].bomb, cells[i].tool, cell_options);
  });

  // Commit in spec order: totals, then the trace stream.
  for (size_t i = 0; i < cells.size(); ++i) {
    if (grid.cells[i].expected != "-") {
      ++grid.total;
      if (grid.cells[i].matches_paper) ++grid.matches;
    }
    if (options.trace_sink != nullptr) buffers[i].Replay(*options.trace_sink);
  }
  return grid;
}

GridResult RunTableTwo(const std::vector<ToolProfile>& tools,
                       const RunOptions& options) {
  return RunGrid(TableTwoCells(tools), options, 1);
}

std::string RenderTableTwo(const GridResult& grid,
                           const std::vector<ToolProfile>& tools) {
  report::AsciiTable table;
  std::vector<std::string> header = {"Category", "Sample Case"};
  for (const auto& tool : tools) {
    header.push_back(tool.name);
    header.push_back("paper");
  }
  table.SetHeader(header);

  const auto bombs_list = bombs::TableTwoBombs();
  bombs::Category last_category = bombs::Category::kDemo;
  size_t cell_index = 0;
  for (const bombs::BombSpec* bomb : bombs_list) {
    if (bomb->category != last_category) {
      table.AddSeparator();
      last_category = bomb->category;
    }
    std::vector<std::string> row = {std::string(CategoryName(bomb->category)),
                                    bomb->challenge};
    for (size_t t = 0; t < tools.size(); ++t) {
      const CellResult& cell = grid.cells[cell_index++];
      std::string label(OutcomeLabel(cell.outcome));
      if (!cell.matches_paper) label += " *";
      row.push_back(label);
      row.push_back(cell.expected);
    }
    table.AddRow(std::move(row));
  }

  std::string out = table.Render();
  out += StrFormat("cells matching the paper: %d / %d\n", grid.matches,
                   grid.total);
  // Success counts per tool (paper: Angr 4, BAP 2, Triton 1).
  for (size_t t = 0; t < tools.size(); ++t) {
    int solved = 0;
    for (size_t i = t; i < grid.cells.size(); i += tools.size()) {
      if (grid.cells[i].outcome == Outcome::kOk) ++solved;
    }
    out += StrFormat("%s solved: %d\n", tools[t].name.c_str(), solved);
  }
  out += "\n";
  out += RenderSolverStats(grid, tools);
  out += "\n";
  out += RenderAttributions(grid);
  return out;
}

std::string RenderSolverStats(const GridResult& grid,
                              const std::vector<ToolProfile>& tools) {
  report::AsciiTable table;
  table.SetTitle("query pipeline, per tool (hits/misses are per "
                 "independence-sliced component)");
  table.SetHeader({"Tool", "queries", "cache hits", "cache misses", "hit %",
                   "sliced", "solver ms"});
  for (size_t t = 0; t < tools.size(); ++t) {
    uint64_t queries = 0, hits = 0, misses = 0, sliced = 0, micros = 0;
    for (size_t i = t; i < grid.cells.size(); i += tools.size()) {
      const core::EngineMetrics& m = grid.cells[i].engine.metrics;
      queries += m.solver_queries;
      hits += m.solver_cache_hits;
      misses += m.solver_cache_misses;
      sliced += m.sliced_queries;
      micros += m.solver_micros;
    }
    const uint64_t lookups = hits + misses;
    const double hit_pct =
        lookups == 0 ? 0.0 : 100.0 * static_cast<double>(hits) /
                                 static_cast<double>(lookups);
    const auto u64 = [](uint64_t v) {
      return StrFormat("%llu", static_cast<unsigned long long>(v));
    };
    table.AddRow({tools[t].name, u64(queries), u64(hits), u64(misses),
                  StrFormat("%.1f", hit_pct), u64(sliced),
                  StrFormat("%.1f", static_cast<double>(micros) / 1000.0)});
  }
  return table.Render();
}

std::string RenderAttributions(const GridResult& grid) {
  report::AsciiTable table;
  table.SetTitle("failure attribution, per non-✓ cell "
                 "(stage / triggering pc / reason)");
  table.SetHeader({"Bomb", "Tool", "Stage", "pc", "Reason"});
  for (const CellResult& cell : grid.cells) {
    if (!cell.attribution) continue;
    const obs::Attribution& a = *cell.attribution;
    // Long reasons wreck the grid; clip for the ASCII rendering (the JSON
    // export keeps them whole).
    std::string reason = a.reason;
    constexpr size_t kMaxReason = 64;
    if (reason.size() > kMaxReason) {
      reason.resize(kMaxReason - 3);
      reason += "...";
    }
    table.AddRow({cell.bomb_id, cell.tool, a.stage,
                  a.pc == 0 ? std::string("-")
                            : StrFormat("0x%llx",
                                        static_cast<unsigned long long>(a.pc)),
                  reason});
  }
  return table.Render();
}

obs::JsonValue GridToJson(const GridResult& grid) {
  obs::JsonValue v = obs::JsonValue::Object();
  v.Set("matches", obs::JsonValue::I64(grid.matches));
  v.Set("total", obs::JsonValue::I64(grid.total));
  obs::JsonValue cells = obs::JsonValue::Array();
  for (const CellResult& cell : grid.cells) {
    obs::JsonValue c = obs::JsonValue::Object();
    c.Set("bomb", obs::JsonValue::Str(cell.bomb_id));
    c.Set("tool", obs::JsonValue::Str(cell.tool));
    c.Set("outcome", obs::JsonValue::Str(OutcomeLabel(cell.outcome)));
    c.Set("expected", obs::JsonValue::Str(cell.expected));
    c.Set("matches_paper", obs::JsonValue::Bool(cell.matches_paper));
    if (cell.attribution) {
      c.Set("attribution", obs::AttributionToJson(*cell.attribution));
    }
    cells.items.push_back(std::move(c));
  }
  v.Set("cells", std::move(cells));
  return v;
}

std::optional<GridResult> GridFromJson(const obs::JsonValue& v) {
  const obs::JsonValue* cells = v.Find("cells");
  if (cells == nullptr || cells->kind != obs::JsonValue::Kind::kArray) {
    return std::nullopt;
  }
  GridResult grid;
  if (const obs::JsonValue* m = v.Find("matches")) {
    grid.matches = static_cast<int>(m->AsI64());
  }
  if (const obs::JsonValue* t = v.Find("total")) {
    grid.total = static_cast<int>(t->AsI64());
  }
  for (const obs::JsonValue& c : cells->items) {
    CellResult cell;
    if (const obs::JsonValue* b = c.Find("bomb")) {
      cell.bomb_id.assign(b->AsString());
    }
    if (const obs::JsonValue* t = c.Find("tool")) {
      cell.tool.assign(t->AsString());
    }
    const obs::JsonValue* outcome = c.Find("outcome");
    if (outcome == nullptr) return std::nullopt;
    bool found = false;
    for (Outcome o : {Outcome::kOk, Outcome::kEs0, Outcome::kEs1,
                      Outcome::kEs2, Outcome::kEs3, Outcome::kE,
                      Outcome::kP}) {
      if (outcome->AsString() == OutcomeLabel(o)) {
        cell.outcome = o;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
    if (const obs::JsonValue* e = c.Find("expected")) {
      cell.expected.assign(e->AsString());
    }
    if (const obs::JsonValue* m = c.Find("matches_paper")) {
      cell.matches_paper = m->AsBool();
    }
    if (const obs::JsonValue* a = c.Find("attribution")) {
      cell.attribution = obs::AttributionFromJson(*a);
      if (!cell.attribution) return std::nullopt;
    }
    grid.cells.push_back(std::move(cell));
  }
  return grid;
}

}  // namespace sbce::tools
