// Tool capability profiles: BAP, Triton, Angr, Angr-NoLib — plus the
// reference ("ideal") engine.
//
// Each profile is a configuration of genuine engine mechanisms (symbolic-
// memory policy, jump policy, lifter gaps, syscall/environment modeling,
// budgets and what exceeding them does). Running the same pipeline under
// these configurations reproduces the failure modes the paper observed;
// see DESIGN.md for the mechanism-to-cell mapping.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/engine.h"

namespace sbce::tools {

struct ToolProfile {
  std::string name;
  core::EngineConfig engine;
};

/// BAP: pure trace-based concolic executor. Traces through libraries and
/// traps; no symbolic memory or jump model; cannot lift push/pop of
/// symbolic data; emits best-effort (wrong) answers when exploration or
/// the circuit budget runs out.
ToolProfile Bap();

/// Triton: Pin-based SSA tracer. No FP lifting, no trap lifting, taint
/// lost across threads/processes, no symbolic memory or jump model; dies
/// when the solver budget blows.
ToolProfile Triton();

/// Angr (libraries loaded): VEX-style lifting of everything, one-level
/// symbolic memory map, buggy jump resolution, simulated syscalls
/// (unconstrained returns -> P outcomes), emulator aborts on trapping
/// states, FP paths and unsupported environment syscalls.
ToolProfile Angr();

/// Angr with dynamic libraries unloaded: library calls return fresh
/// unconstrained symbols; pipes work (SimProcedures); no FP theory in the
/// solver configuration.
ToolProfile AngrNoLib();

/// The reference engine this library provides: every mechanism enabled.
ToolProfile Ideal();

/// The four studied tools in Table II column order.
std::vector<ToolProfile> PaperTools();

/// Profile lookup by display name ("BAP", "Triton", "Angr", "Angr-NoLib",
/// "Ideal"); nullopt for anything else.
std::optional<ToolProfile> ProfileByName(std::string_view name);

}  // namespace sbce::tools
