#include "src/tools/profiles.h"

#include "src/lift/lifter.h"
#include "src/vm/syscalls.h"

namespace sbce::tools {

using core::BudgetOutcome;
using symex::ErrorStageHint;
using symex::LibMode;
using symex::SymAddrPolicy;
using symex::SymJumpPolicy;
using symex::SyscallModel;
using symex::TrapModel;

namespace {

core::EngineConfig BaseEngine() {
  core::EngineConfig cfg;
  cfg.sources.argv = true;
  cfg.budgets.max_rounds = 48;
  cfg.budgets.max_trace_events = 800'000;
  cfg.budgets.max_vm_instructions = 6'000'000;
  cfg.budgets.max_solver_queries = 160;
  return cfg;
}

}  // namespace

ToolProfile Bap() {
  ToolProfile t;
  t.name = "BAP";
  t.engine = BaseEngine();
  auto& e = t.engine;
  e.sources.argv_max_len = 0;  // fixed-length argv model
  e.symex.addr_policy = SymAddrPolicy::kConcretize;
  e.symex.jump_policy = SymJumpPolicy::kUnmodeled;
  e.symex.syscall_model = SyscallModel::kConcreteTrace;
  e.symex.lib_mode = LibMode::kTrace;
  e.symex.trap_model = TrapModel::kFollowTrace;  // Pin traces trap handlers
  e.symex.cross_thread = true;   // Pin's linear multi-thread trace
  e.symex.cross_process = false;
  e.symex.contextual_error_stage = ErrorStageHint::kEs2;
  // Lifter gaps: symbolic data through push/pop, and all FP.
  e.symex.unsupported_opcodes = lift::FloatingPointOpcodes();
  e.symex.unsupported_opcodes.insert(isa::Opcode::kPush);
  e.symex.unsupported_opcodes.insert(isa::Opcode::kPop);
  e.claims_on_exhausted_exploration = true;  // "outputs values that trigger
                                             // the current control flow"
  e.on_conflict_budget = BudgetOutcome::kAbort;
  e.on_circuit_budget = BudgetOutcome::kClaimBest;
  e.budgets.solver.max_conflicts = 2'000;
  e.budgets.solver.max_sat_vars = 60'000;
  e.solver_supports_fp = false;
  return t;
}

ToolProfile Triton() {
  ToolProfile t;
  t.name = "Triton";
  t.engine = BaseEngine();
  auto& e = t.engine;
  e.sources.argv_max_len = 0;
  e.symex.addr_policy = SymAddrPolicy::kConcretize;
  e.symex.jump_policy = SymJumpPolicy::kUnmodeled;
  e.symex.syscall_model = SyscallModel::kConcreteTrace;
  e.symex.lib_mode = LibMode::kTrace;
  e.symex.trap_model = TrapModel::kLiftFailure;  // cannot lift trap states
  e.symex.cross_thread = false;  // per-thread taint contexts not modeled
  e.symex.cross_process = false;
  e.symex.contextual_error_stage = ErrorStageHint::kEs3;
  e.symex.unsupported_opcodes = lift::FloatingPointOpcodes();
  e.on_conflict_budget = BudgetOutcome::kAbort;
  e.on_circuit_budget = BudgetOutcome::kClaimBest;
  e.budgets.solver.max_conflicts = 2'000;
  e.budgets.solver.max_sat_vars = 150'000;
  e.solver_supports_fp = false;
  return t;
}

ToolProfile Angr() {
  ToolProfile t;
  t.name = "Angr";
  t.engine = BaseEngine();
  auto& e = t.engine;
  e.sources.argv_max_len = 16;  // fixed-bit-width symbolic argv
  e.symex.addr_policy = SymAddrPolicy::kExpandWindow;
  e.symex.addr_window = 96;
  e.symex.max_deref_depth = 1;  // one-level symbolic arrays only
  e.symex.jump_policy = SymJumpPolicy::kBuggyResolve;
  e.symex.syscall_model = SyscallModel::kSimulateUnconstrained;
  e.symex.unconstrained_syscalls = {vm::kSysGetPid, vm::kSysEchoLoad};
  e.symex.aborting_syscalls = {vm::kSysWebGet};
  e.symex.abort_on_file_write = true;
  e.symex.lib_mode = LibMode::kTrace;  // libraries loaded and lifted
  e.symex.trap_model = TrapModel::kEmulationAbort;
  e.symex.aborting_opcodes = lift::FloatingPointOpcodes();
  e.symex.cross_thread = false;
  e.symex.cross_process = false;
  e.symex.contextual_error_stage = ErrorStageHint::kEs2;
  e.on_conflict_budget = BudgetOutcome::kAbort;
  e.on_circuit_budget = BudgetOutcome::kClaimBest;
  e.budgets.solver.max_conflicts = 2'000;
  e.budgets.solver.max_sat_vars = 150'000;
  e.solver_supports_fp = true;  // unreachable: FP paths abort earlier
  return t;
}

ToolProfile AngrNoLib() {
  ToolProfile t;
  t.name = "Angr-NoLib";
  t.engine = BaseEngine();
  auto& e = t.engine;
  e.sources.argv_max_len = 16;
  e.symex.addr_policy = SymAddrPolicy::kExpandWindow;
  e.symex.addr_window = 96;
  e.symex.max_deref_depth = 1;
  e.symex.jump_policy = SymJumpPolicy::kBuggyResolve;
  e.symex.syscall_model = SyscallModel::kSimulateUnconstrained;
  e.symex.unconstrained_syscalls = {vm::kSysGetPid, vm::kSysEchoLoad};
  e.symex.aborting_syscalls = {vm::kSysWebGet};
  e.symex.abort_on_file_write = false;  // no simulated fs to choke on
  e.symex.lib_mode = LibMode::kSkipUnconstrained;
  e.symex.trap_model = TrapModel::kMisModeled;
  e.symex.cross_thread = false;
  e.symex.cross_process = true;        // fork SimProcedure works
  e.symex.track_pipe_channels = true;  // pipe SimProcedure works
  e.symex.contextual_error_stage = ErrorStageHint::kEs2;
  e.on_conflict_budget = BudgetOutcome::kAbort;
  e.on_circuit_budget = BudgetOutcome::kClaimBest;
  e.budgets.solver.max_conflicts = 2'000;
  e.budgets.solver.max_sat_vars = 150'000;
  e.solver_supports_fp = false;  // no FP theory configured
  return t;
}

ToolProfile Ideal() {
  ToolProfile t;
  t.name = "Ideal";
  t.engine = BaseEngine();
  auto& e = t.engine;
  e.sources.argv_max_len = 20;
  e.symex.addr_policy = SymAddrPolicy::kExpandWindow;
  e.symex.addr_window = 300;
  e.symex.max_deref_depth = 8;
  e.symex.jump_policy = SymJumpPolicy::kSolveTargets;
  e.symex.syscall_model = SyscallModel::kConcreteTrace;
  e.symex.lib_mode = LibMode::kTrace;
  e.symex.trap_model = TrapModel::kFollowTrace;
  e.symex.track_channels = true;
  e.symex.track_pipe_channels = true;
  e.symex.cross_thread = true;
  e.symex.cross_process = true;
  e.on_conflict_budget = BudgetOutcome::kAbort;
  e.on_circuit_budget = BudgetOutcome::kAbort;
  e.budgets.solver.max_conflicts = 100'000;
  e.budgets.solver.max_sat_vars = 2'000'000;
  e.solver_supports_fp = true;
  return t;
}

std::vector<ToolProfile> PaperTools() {
  return {Bap(), Triton(), Angr(), AngrNoLib()};
}

std::optional<ToolProfile> ProfileByName(std::string_view name) {
  if (name == "BAP") return Bap();
  if (name == "Triton") return Triton();
  if (name == "Angr") return Angr();
  if (name == "Angr-NoLib") return AngrNoLib();
  if (name == "Ideal") return Ideal();
  return std::nullopt;
}

}  // namespace sbce::tools
