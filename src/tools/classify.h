// Maps an EngineResult onto the paper's outcome taxonomy, and derives the
// machine-readable failure attribution each non-✓ grid cell carries.
#pragma once

#include <optional>
#include <string_view>

#include "src/core/engine.h"
#include "src/obs/attribution.h"

namespace sbce::tools {

/// Paper Table II cell values.
enum class Outcome : uint8_t {
  kOk,   // correct triggering input generated and validated
  kEs0,  // symbolic variable declaration failure
  kEs1,  // instruction tracing / lifting failure
  kEs2,  // data propagation failure (includes wrong generated inputs)
  kEs3,  // constraint modeling failure
  kE,    // abnormal exit (resource exhaustion / engine exception)
  kP,    // partial success: reachable only under simulated syscalls
};

std::string_view OutcomeLabel(Outcome outcome);

/// Classification precedence mirrors how the paper labels results:
///   1. Engine aborts are E regardless of anything else.
///   2. A validated triggering input is a success.
///   3. A claim that fails validation is P when it leaned on simulated
///      syscall environments, otherwise Es2 (a wrong test case).
///   4. Otherwise the earliest failing pipeline stage wins: nothing
///      symbolic observed at all -> Es0; lifting gaps -> Es1; constraint
///      modeling gaps -> Es3; propagation losses -> Es2; and an exhausted
///      exploration with only well-modeled constraints means the inputs
///      were insufficiently declared -> Es0.
Outcome Classify(const core::EngineResult& result);

/// The attribution pass: derives the {stage, pc, reason} provenance
/// record for a non-✓ outcome (nullopt for kOk). `outcome` must be
/// Classify(result) — the record names the same stage the cell shows and
/// points at the diagnostic/claim/abort that produced it.
std::optional<obs::Attribution> Attribute(Outcome outcome,
                                          const core::EngineResult& result);

}  // namespace sbce::tools
