// Result/Status types for expected, recoverable failures.
//
// Convention (per Core Guidelines E.*): functions that can fail for reasons
// the caller is expected to handle (parse errors, missing files, solver
// budget exhaustion) return sbce::Result<T>; programmer errors are asserted
// via SBCE_CHECK and abort.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace sbce {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnsupported,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
};

/// A status: either OK or an error code plus a human-readable message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Invalid(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Exhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Precondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: a value or an error Status. Move-friendly, no exceptions.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("empty result");
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);

}  // namespace sbce

#define SBCE_CHECK(expr)                                      \
  do {                                                        \
    if (!(expr)) {                                            \
      ::sbce::CheckFailed(__FILE__, __LINE__, #expr, "");     \
    }                                                         \
  } while (0)

#define SBCE_CHECK_MSG(expr, msg)                             \
  do {                                                        \
    if (!(expr)) {                                            \
      ::sbce::CheckFailed(__FILE__, __LINE__, #expr, (msg));  \
    }                                                         \
  } while (0)
