// Fork-join worker pool over std::jthread.
//
// Built for the solver's parallel query dispatch: a single orchestrator
// thread repeatedly scatters a batch of independent, chunky tasks
// (bit-blast + CDCL runs) and gathers every result before acting on any of
// them. The pool therefore exposes exactly one primitive — ForEachIndex —
// instead of a general future-returning submit: the calling thread
// participates in the work, indices are handed out through a shared atomic
// counter (dynamic load balancing for uneven solve times), and the call
// returns only when every index has completed.
//
// Determinism note: the pool schedules *work*, never *results*. Callers
// that need reproducible outcomes must make each task a pure function of
// its index and commit results by index order afterwards (see
// solver::QueryPipeline).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sbce {

class ThreadPool {
 public:
  /// `threads` is the total desired concurrency including the calling
  /// thread; the pool spawns `threads - 1` workers. 0 and 1 both mean
  /// "no workers" (ForEachIndex then runs inline, fully serial).
  explicit ThreadPool(unsigned threads) {
    const unsigned workers = threads > 1 ? threads - 1 : 0;
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      workers_.emplace_back(
          [this](std::stop_token st) { WorkerLoop(st); });
    }
  }

  ~ThreadPool() {
    for (auto& w : workers_) w.request_stop();
    cv_.notify_all();
    // std::jthread joins on destruction.
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread).
  unsigned concurrency() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(0), fn(1), ..., fn(n-1) across the pool and the calling
  /// thread; blocks until all n calls have returned. fn must be safe to
  /// call concurrently for distinct indices.
  void ForEachIndex(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    // One scatter at a time; concurrent callers queue up here.
    std::lock_guard<std::mutex> region_lock(region_mu_);
    Region region;
    region.fn = &fn;
    region.n = n;
    {
      std::lock_guard<std::mutex> lk(mu_);
      region_ = &region;
      ++generation_;
    }
    cv_.notify_all();
    RunRegion(region);
    // Every worker checks in to each generation (even if it arrives after
    // the indices ran out), so `region` may not leave the stack until all
    // of them are done with the pointer.
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] {
        return region.finished.load(std::memory_order_acquire) ==
               workers_.size() + 1;
      });
      region_ = nullptr;
    }
  }

 private:
  struct Region {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> finished{0};
  };

  void RunRegion(Region& region) {
    size_t i;
    while ((i = region.next.fetch_add(1, std::memory_order_relaxed)) <
           region.n) {
      (*region.fn)(i);
    }
    {
      // The check-in must happen under mu_: the orchestrator tests the
      // counter under the same mutex, so incrementing outside it could
      // slip between its predicate check and its wait (lost wakeup).
      std::lock_guard<std::mutex> lk(mu_);
      region.finished.fetch_add(1, std::memory_order_acq_rel);
    }
    done_cv_.notify_all();
  }

  void WorkerLoop(std::stop_token st) {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    while (!st.stop_requested()) {
      cv_.wait(lk, st, [&] { return generation_ != seen; });
      if (st.stop_requested()) return;
      seen = generation_;
      Region* region = region_;
      lk.unlock();
      RunRegion(*region);
      lk.lock();
    }
  }

  std::mutex region_mu_;  // serializes ForEachIndex callers
  std::mutex mu_;
  std::condition_variable_any cv_;
  std::condition_variable_any done_cv_;
  uint64_t generation_ = 0;
  Region* region_ = nullptr;
  std::vector<std::jthread> workers_;  // last member: destroyed first
};

}  // namespace sbce
