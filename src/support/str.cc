#include "src/support/str.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace sbce {

std::vector<std::string_view> SplitAny(std::string_view s,
                                       std::string_view seps) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || seps.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<int64_t> ParseIntLiteral(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::Invalid("empty integer literal");
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    s.remove_prefix(1);
    if (s.empty()) return Status::Invalid("lone '-'");
  }
  // Character literal.
  if (s.size() >= 3 && s.front() == '\'' && s.back() == '\'') {
    std::string_view body = s.substr(1, s.size() - 2);
    char c = 0;
    if (body.size() == 1) {
      c = body[0];
    } else if (body.size() == 2 && body[0] == '\\') {
      switch (body[1]) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case '0': c = '\0'; break;
        case '\\': c = '\\'; break;
        case '\'': c = '\''; break;
        default:
          return Status::Invalid("bad escape in char literal");
      }
    } else {
      return Status::Invalid("bad char literal");
    }
    int64_t v = static_cast<unsigned char>(c);
    return neg ? -v : v;
  }
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    s.remove_prefix(2);
  }
  if (s.empty()) return Status::Invalid("empty digits");
  uint64_t acc = 0;
  for (char ch : s) {
    int digit;
    if (ch >= '0' && ch <= '9') {
      digit = ch - '0';
    } else if (ch >= 'a' && ch <= 'f') {
      digit = ch - 'a' + 10;
    } else if (ch >= 'A' && ch <= 'F') {
      digit = ch - 'A' + 10;
    } else if (ch == '_') {
      continue;  // digit separators allowed
    } else {
      return Status::Invalid("bad digit in integer literal");
    }
    if (digit >= base) return Status::Invalid("digit out of range for base");
    acc = acc * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
  }
  int64_t v = static_cast<int64_t>(acc);
  return neg ? -v : v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(static_cast<size_t>(n > 0 ? n : 0), '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string PadLeft(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

}  // namespace sbce
