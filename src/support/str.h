// String helpers for the assembler and report renderers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"

namespace sbce {

/// Splits on any character in `seps`, dropping empty pieces.
std::vector<std::string_view> SplitAny(std::string_view s,
                                       std::string_view seps);

/// Strips leading/trailing whitespace.
std::string_view Trim(std::string_view s);

/// Parses a signed integer literal: decimal, 0x-hex, 0b-binary, or a
/// character literal like 'a'. Accepts a leading '-'.
Result<int64_t> ParseIntLiteral(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Left/right pads `s` with spaces to `width` columns.
std::string PadRight(std::string s, size_t width);
std::string PadLeft(std::string s, size_t width);

}  // namespace sbce
