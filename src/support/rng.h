// Deterministic RNG (SplitMix64) used by the FP search solver, the guest
// rand() device and test data generators. std::mt19937 is avoided so that
// sequences are identical across standard libraries.
#pragma once

#include <cstdint>

namespace sbce {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextUnit() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  void Reseed(uint64_t seed) { state_ = seed; }

 private:
  uint64_t state_;
};

}  // namespace sbce
