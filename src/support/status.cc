#include "src/support/status.h"

namespace sbce {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "SBCE_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace sbce
