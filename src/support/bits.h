// Small bit-manipulation helpers shared by the VM, lifter and solver.
#pragma once

#include <cstdint>

namespace sbce {

/// Truncates `v` to the low `width` bits (width in [1,64]).
inline uint64_t TruncToWidth(uint64_t v, unsigned width) {
  return width >= 64 ? v : (v & ((uint64_t{1} << width) - 1));
}

/// Sign-extends the low `width` bits of `v` to 64 bits.
inline uint64_t SignExtend(uint64_t v, unsigned width) {
  if (width >= 64) return v;
  const uint64_t m = uint64_t{1} << (width - 1);
  v = TruncToWidth(v, width);
  return (v ^ m) - m;
}

/// Interprets the low `width` bits of `v` as signed.
inline int64_t AsSigned(uint64_t v, unsigned width) {
  return static_cast<int64_t>(SignExtend(v, width));
}

/// Returns bit `i` of `v`.
inline bool GetBit(uint64_t v, unsigned i) { return (v >> i) & 1u; }

/// 64-bit FNV-1a over a byte range; used for hash-consing keys.
inline uint64_t Fnv1a(const void* data, size_t n, uint64_t seed = 1469598103934665603ull) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Boost-style hash combiner.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

}  // namespace sbce
