#include "src/isa/instruction.h"

#include "src/support/str.h"

namespace sbce::isa {

namespace {

bool RegOk(uint8_t r, bool fp) {
  return r < (fp ? kNumFpr : kNumGpr);
}

/// True if the register fields used by `form` are in range.
bool ValidateRegs(const Instruction& in, const OpcodeInfo& info) {
  const bool fp = info.is_fp;
  switch (info.form) {
    case OperandForm::kNone:
    case OperandForm::kImm:
      return true;
    case OperandForm::kRd:
      return RegOk(in.rd, fp);
    case OperandForm::kRs:
      return RegOk(in.rs1, fp);
    case OperandForm::kRdRs: {
      // Cross-bank moves: cvtif/movgf write FP and read GPR; cvtfi/movfg
      // do the opposite.
      if (in.op == Opcode::kCvtIF || in.op == Opcode::kMovGF) {
        return RegOk(in.rd, /*fp=*/true) && RegOk(in.rs1, /*fp=*/false);
      }
      if (in.op == Opcode::kCvtFI || in.op == Opcode::kMovFG) {
        return RegOk(in.rd, /*fp=*/false) && RegOk(in.rs1, /*fp=*/true);
      }
      return RegOk(in.rd, fp) && RegOk(in.rs1, fp);
    }
    case OperandForm::kRdImm:
      return RegOk(in.rd, fp);
    case OperandForm::kRdRsRs: {
      // FP compares write a GPR.
      const bool rd_fp = fp && in.op != Opcode::kFCmpEq &&
                         in.op != Opcode::kFCmpLt && in.op != Opcode::kFCmpLe;
      return RegOk(in.rd, rd_fp) && RegOk(in.rs1, fp) && RegOk(in.rs2, fp);
    }
    case OperandForm::kRdRsImm:
    case OperandForm::kRsImm:
      return RegOk(in.rd, fp) && RegOk(in.rs1, fp);
    case OperandForm::kMem:
      // rd may be FP (fld/fst) but the base rs1 is always a GPR.
      return RegOk(in.rd, fp) && RegOk(in.rs1, /*fp=*/false);
    case OperandForm::kMemX:
      return RegOk(in.rd, fp) && RegOk(in.rs1, false) && RegOk(in.rs2, false);
  }
  return false;
}

}  // namespace

void Encode(const Instruction& instr, std::span<uint8_t, kInstrBytes> out) {
  out[0] = static_cast<uint8_t>(instr.op);
  out[1] = instr.rd;
  out[2] = instr.rs1;
  out[3] = instr.rs2;
  const auto u = static_cast<uint32_t>(instr.imm);
  out[4] = static_cast<uint8_t>(u);
  out[5] = static_cast<uint8_t>(u >> 8);
  out[6] = static_cast<uint8_t>(u >> 16);
  out[7] = static_cast<uint8_t>(u >> 24);
}

Result<Instruction> Decode(std::span<const uint8_t> bytes) {
  if (bytes.size() < kInstrBytes) {
    return Status::OutOfRange("truncated instruction");
  }
  if (bytes[0] >= static_cast<uint8_t>(Opcode::kOpcodeCount)) {
    return Status::Invalid(
        StrFormat("unknown opcode byte 0x%02x", bytes[0]));
  }
  Instruction in;
  in.op = static_cast<Opcode>(bytes[0]);
  in.rd = bytes[1];
  in.rs1 = bytes[2];
  in.rs2 = bytes[3];
  const uint32_t u = static_cast<uint32_t>(bytes[4]) |
                     (static_cast<uint32_t>(bytes[5]) << 8) |
                     (static_cast<uint32_t>(bytes[6]) << 16) |
                     (static_cast<uint32_t>(bytes[7]) << 24);
  in.imm = static_cast<int32_t>(u);
  if (!ValidateRegs(in, GetOpcodeInfo(in.op))) {
    return Status::Invalid(StrFormat(
        "register index out of range in %s",
        std::string(GetOpcodeInfo(in.op).mnemonic).c_str()));
  }
  return in;
}

std::string Disassemble(const Instruction& in, uint64_t pc) {
  const OpcodeInfo& info = GetOpcodeInfo(in.op);
  const std::string m(info.mnemonic);
  const char* rp = info.is_fp ? "f" : "r";
  const uint64_t next = pc + kInstrBytes;
  switch (info.form) {
    case OperandForm::kNone:
      return m;
    case OperandForm::kRd:
      return StrFormat("%s %s%u", m.c_str(), rp, in.rd);
    case OperandForm::kRs:
      return StrFormat("%s %s%u", m.c_str(),
                       in.op == Opcode::kJmpR || in.op == Opcode::kCallR ||
                               in.op == Opcode::kPush ||
                               in.op == Opcode::kTrapZ ||
                               in.op == Opcode::kTrapNeg
                           ? "r"
                           : rp,
                       in.rs1);
    case OperandForm::kRdRs: {
      const char* dp = rp;
      const char* sp = rp;
      if (in.op == Opcode::kCvtIF || in.op == Opcode::kMovGF) {
        dp = "f"; sp = "r";
      } else if (in.op == Opcode::kCvtFI || in.op == Opcode::kMovFG) {
        dp = "r"; sp = "f";
      }
      return StrFormat("%s %s%u, %s%u", m.c_str(), dp, in.rd, sp, in.rs1);
    }
    case OperandForm::kRdImm:
      if (in.op == Opcode::kLea) {
        return StrFormat("%s r%u, 0x%llx", m.c_str(), in.rd,
                         static_cast<unsigned long long>(
                             next + static_cast<int64_t>(in.imm)));
      }
      return StrFormat("%s %s%u, %d", m.c_str(), rp, in.rd, in.imm);
    case OperandForm::kRdRsRs: {
      const char* dp =
          (in.op == Opcode::kFCmpEq || in.op == Opcode::kFCmpLt ||
           in.op == Opcode::kFCmpLe)
              ? "r"
              : rp;
      return StrFormat("%s %s%u, %s%u, %s%u", m.c_str(), dp, in.rd, rp,
                       in.rs1, rp, in.rs2);
    }
    case OperandForm::kRdRsImm:
      return StrFormat("%s %s%u, %s%u, %d", m.c_str(), rp, in.rd, rp, in.rs1,
                       in.imm);
    case OperandForm::kRsImm:
      return StrFormat("%s r%u, 0x%llx", m.c_str(), in.rs1,
                       static_cast<unsigned long long>(
                           next + static_cast<int64_t>(in.imm)));
    case OperandForm::kImm:
      if (in.op == Opcode::kJmp || in.op == Opcode::kCall) {
        return StrFormat("%s 0x%llx", m.c_str(),
                         static_cast<unsigned long long>(
                             next + static_cast<int64_t>(in.imm)));
      }
      return StrFormat("%s %d", m.c_str(), in.imm);
    case OperandForm::kMem:
      return StrFormat("%s %s%u, [r%u%+d]", m.c_str(), rp, in.rd, in.rs1,
                       in.imm);
    case OperandForm::kMemX:
      return StrFormat("%s %s%u, [r%u+r%u]", m.c_str(), rp, in.rd, in.rs1,
                       in.rs2);
  }
  return m;
}

}  // namespace sbce::isa
