// SBVM instruction set.
//
// SBVM is a 64-bit RISC-style virtual ISA designed to preserve the
// binary-level properties the paper's challenges depend on: byte-encoded
// images without type info, flat memory, indirect jumps, traps and syscalls.
//
// Encoding: fixed 8 bytes per instruction:
//   byte 0: opcode
//   byte 1: rd   (destination register, or value register for stores)
//   byte 2: rs1
//   byte 3: rs2
//   bytes 4..7: imm32 (little-endian, sign semantics per opcode)
//
// Registers: 16 GPRs r0..r15. ABI: r0 = return value, r1..r5 = arguments,
// r11 = trap cause, r13 = lr alias unused (CALL pushes pc), r14 = bp,
// r15 = sp. 8 FP registers f0..f7 hold IEEE-754 doubles.
#pragma once

#include <cstdint>
#include <string_view>

namespace sbce::isa {

inline constexpr int kNumGpr = 16;
inline constexpr int kNumFpr = 8;
inline constexpr int kRegRet = 0;
inline constexpr int kRegArg1 = 1;
inline constexpr int kRegTrapCause = 11;
inline constexpr int kRegBp = 14;
inline constexpr int kRegSp = 15;
inline constexpr unsigned kInstrBytes = 8;

enum class Opcode : uint8_t {
  kNop = 0,
  kHalt,

  // Data movement.
  kMov,     // rd = rs1
  kMovI,    // rd = sext(imm32)
  kMovHi,   // rd = (rd & 0xffffffff) | (imm32 << 32)

  // Integer arithmetic (register forms use rs1, rs2; imm forms rs1, imm).
  kAdd, kAddI,
  kSub, kSubI,
  kMul, kMulI,
  kUDiv, kSDiv,   // trap on divide-by-zero
  kURem, kSRem,   // trap on divide-by-zero

  // Bitwise / shifts.
  kAnd, kAndI,
  kOr, kOrI,
  kXor, kXorI,
  kShl, kShlI,
  kShr, kShrI,   // logical right
  kSar, kSarI,   // arithmetic right
  kNot,          // rd = ~rs1
  kNeg,          // rd = -rs1

  // Comparisons: rd = (rs1 OP rs2) ? 1 : 0.
  kCmpEq, kCmpEqI,
  kCmpNe, kCmpNeI,
  kCmpLtU, kCmpLtUI,
  kCmpLtS, kCmpLtSI,
  kCmpLeU,
  kCmpLeS,

  // Control flow. Branch targets: imm32 = signed byte offset from the
  // *next* instruction. kJmpR/kCallR take an absolute address in rs1.
  kBz,      // if rs1 == 0 jump
  kBnz,     // if rs1 != 0 jump
  kJmp,
  kJmpR,    // indirect jump — the symbolic-jump challenge lives here
  kCall,    // push return address, jump
  kCallR,
  kRet,     // pop return address, jump

  // Memory. Address = rs1 + sext(imm32); loads zero-extend unless kLdS*.
  kLd1, kLd2, kLd4, kLd8,
  kLdS1, kLdS2, kLdS4,
  kSt1, kSt2, kSt4, kSt8,   // mem[rs1+imm] = rd (rd is the VALUE register)
  kLdX1, kLdX8,             // rd = mem[rs1 + rs2]
  kStX1, kStX8,             // mem[rs1 + rs2] = rd

  kPush,    // sp -= 8; mem[sp] = rs1
  kPop,     // rd = mem[sp]; sp += 8
  kLea,     // rd = pc_next + sext(imm32)   (pc-relative address formation)

  // Traps: jump to the handler registered via SYS_SETTRAP with the cause
  // in r11; halt with a fault if no handler is installed.
  kTrapZ,    // trap if rs1 == 0   (cause kTrapExplicitZero)
  kTrapNeg,  // trap if rs1 < 0    (cause kTrapExplicitNeg)

  kSys,      // syscall; number = imm32, args r1..r5, result r0

  // Floating point (doubles). rd/rs1/rs2 index f-registers except where a
  // GPR is noted.
  kFAdd, kFSub, kFMul, kFDiv,
  kFCmpEq,   // GPR rd = (f[rs1] == f[rs2])
  kFCmpLt,   // GPR rd = (f[rs1] <  f[rs2])
  kFCmpLe,   // GPR rd = (f[rs1] <= f[rs2])
  kCvtIF,    // f[rd] = double(int64(r[rs1]))   — cvtsi2sd analogue
  kCvtFI,    // r[rd] = int64(trunc(f[rs1]))
  kFMov,     // f[rd] = f[rs1]
  kFLd,      // f[rd] = bits(mem64[r[rs1] + imm])
  kFSt,      // mem64[r[rs1] + imm] = bits(f[rd])
  kMovGF,    // f[rd] = bits(r[rs1])
  kMovFG,    // r[rd] = bits(f[rs1])

  kOpcodeCount,
};

/// Operand shape of an instruction, used by the assembler, disassembler and
/// the trace/taint machinery.
enum class OperandForm : uint8_t {
  kNone,        // op
  kRd,          // op rd
  kRs,          // op rs1
  kRdRs,        // op rd, rs1
  kRdImm,       // op rd, imm
  kRdRsRs,      // op rd, rs1, rs2
  kRdRsImm,     // op rd, rs1, imm
  kRsImm,       // op rs1, imm (branches: reg + label)
  kImm,         // op imm (jmp/call label, sys)
  kMem,         // op rd, [rs1 + imm]  (loads/stores/fld/fst)
  kMemX,        // op rd, [rs1 + rs2]
};

struct OpcodeInfo {
  std::string_view mnemonic;
  OperandForm form;
  bool is_branch;     // conditional branch
  bool is_jump;       // unconditional control transfer
  bool is_load;
  bool is_store;
  bool is_fp;
  bool can_trap;
  uint8_t mem_width;  // bytes accessed, 0 if none
};

/// Metadata for `op`; aborts on out-of-range values.
const OpcodeInfo& GetOpcodeInfo(Opcode op);

/// Mnemonic → opcode lookup; returns kOpcodeCount when unknown.
Opcode OpcodeFromMnemonic(std::string_view mnemonic);

}  // namespace sbce::isa
