#include "src/isa/assembler.h"

#include <cctype>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/isa/instruction.h"
#include "src/support/str.h"

namespace sbce::isa {

namespace {

enum class SectionKind : uint8_t { kText = 0, kData = 1, kLibText = 2, kLibData = 3 };

constexpr bool IsTextKind(SectionKind k) {
  return k == SectionKind::kText || k == SectionKind::kLibText;
}

struct PendingInstr {
  Instruction instr;
  std::string imm_label;   // unresolved label used as immediate (may be "")
  bool label_relative = false;  // pc-relative (branch/jmp/call/lea)
  uint64_t vaddr = 0;
  SectionKind section = SectionKind::kText;
  int line = 0;
};

struct PendingQuad {
  size_t offset;         // into data buffer of its section
  SectionKind section;
  std::string label;
  int line = 0;
};

struct Ctx {
  AssembleOptions options;
  std::array<std::vector<uint8_t>, 4> bufs;  // indexed by SectionKind
  std::map<std::string, uint64_t, std::less<>> labels;
  std::map<std::string, int64_t, std::less<>> equs;
  std::vector<PendingInstr> instrs;
  std::vector<PendingQuad> quad_fixups;
  SectionKind current = SectionKind::kText;
  std::string entry_label;
  int line = 0;

  std::vector<uint8_t>& buf() { return BufOf(current); }
  std::vector<uint8_t>& BufOf(SectionKind k) {
    return bufs[static_cast<size_t>(k)];
  }
  uint64_t base() const { return BaseOf(current); }
  uint64_t BaseOf(SectionKind k) const {
    switch (k) {
      case SectionKind::kText: return options.text_base;
      case SectionKind::kData: return options.data_base;
      case SectionKind::kLibText: return options.lib_text_base;
      case SectionKind::kLibData: return options.lib_data_base;
    }
    return 0;
  }
  uint64_t* BasePtrOf(SectionKind k) {
    switch (k) {
      case SectionKind::kText: return &options.text_base;
      case SectionKind::kData: return &options.data_base;
      case SectionKind::kLibText: return &options.lib_text_base;
      case SectionKind::kLibData: return &options.lib_data_base;
    }
    return nullptr;
  }
  uint64_t here() {
    return base() + buf().size();
  }
  Status Err(const std::string& msg) const {
    return Status::Invalid(StrFormat("line %d: %s", line, msg.c_str()));
  }
};

/// Parses a register token like "r4" or "f2"; `fp` selects the bank.
Result<uint8_t> ParseReg(Ctx& ctx, std::string_view tok, bool fp) {
  tok = Trim(tok);
  const char want = fp ? 'f' : 'r';
  // Accept the ABI aliases sp/bp for GPRs.
  if (!fp && tok == "sp") return static_cast<uint8_t>(kRegSp);
  if (!fp && tok == "bp") return static_cast<uint8_t>(kRegBp);
  if (tok.size() < 2 || (tok[0] != want)) {
    return ctx.Err(StrFormat("expected %c-register, got '%.*s'", want,
                             static_cast<int>(tok.size()), tok.data()));
  }
  auto n = ParseIntLiteral(tok.substr(1));
  const int limit = fp ? kNumFpr : kNumGpr;
  if (!n || n.value() < 0 || n.value() >= limit) {
    return ctx.Err("bad register index");
  }
  return static_cast<uint8_t>(n.value());
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool IsLabelToken(std::string_view tok) {
  if (tok.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(tok[0])) || tok[0] == '-' ||
      tok[0] == '\'') {
    return false;
  }
  for (char c : tok) {
    if (!IsIdentChar(c)) return false;
  }
  return true;
}

/// Parses an immediate token: int literal or .equ constant. Labels are
/// handled by the caller (they need fixups).
Result<int64_t> ParseImm(Ctx& ctx, std::string_view tok) {
  tok = Trim(tok);
  if (auto it = ctx.equs.find(tok); it != ctx.equs.end()) return it->second;
  auto v = ParseIntLiteral(tok);
  if (!v) return ctx.Err(StrFormat("bad immediate '%.*s'",
                                   static_cast<int>(tok.size()), tok.data()));
  return v.value();
}

/// Splits "ld8 r3, [r15+16]" style memory operands: returns base reg token
/// and offset token (offset may itself be a register for indexed forms).
Result<std::pair<std::string_view, std::string_view>> SplitMemOperand(
    Ctx& ctx, std::string_view tok) {
  tok = Trim(tok);
  if (tok.size() < 4 || tok.front() != '[' || tok.back() != ']') {
    return ctx.Err("expected memory operand like [r1+8]");
  }
  std::string_view body = tok.substr(1, tok.size() - 2);
  // Find the +/- splitting base from offset; '-' may start the offset.
  size_t split = std::string_view::npos;
  for (size_t i = 1; i < body.size(); ++i) {
    if (body[i] == '+' || body[i] == '-') {
      split = i;
      break;
    }
  }
  if (split == std::string_view::npos) {
    return std::pair<std::string_view, std::string_view>{Trim(body), "0"};
  }
  std::string_view base = Trim(body.substr(0, split));
  std::string_view off = body[split] == '+' ? Trim(body.substr(split + 1))
                                            : Trim(body.substr(split));
  return std::pair<std::string_view, std::string_view>{base, off};
}

Status EmitInstr(Ctx& ctx, Opcode op, std::string_view rest) {
  if (!IsTextKind(ctx.current)) {
    return ctx.Err("instruction outside a text section");
  }
  const OpcodeInfo& info = GetOpcodeInfo(op);
  Instruction in;
  in.op = op;
  std::string imm_label;
  bool label_relative = false;

  // Comma-split operands (memory brackets contain no commas by syntax).
  std::vector<std::string_view> ops;
  {
    size_t start = 0;
    for (size_t i = 0; i <= rest.size(); ++i) {
      if (i == rest.size() || rest[i] == ',') {
        auto piece = Trim(rest.substr(start, i - start));
        if (!piece.empty()) ops.push_back(piece);
        start = i + 1;
      }
    }
  }

  auto need = [&](size_t n) -> Status {
    if (ops.size() != n) {
      return ctx.Err(StrFormat("%s expects %zu operand(s), got %zu",
                               std::string(info.mnemonic).c_str(), n,
                               ops.size()));
    }
    return Status::Ok();
  };

  const bool fp = info.is_fp;
  switch (info.form) {
    case OperandForm::kNone: {
      if (auto s = need(0); !s.ok()) return s;
      break;
    }
    case OperandForm::kRd: {
      if (auto s = need(1); !s.ok()) return s;
      auto r = ParseReg(ctx, ops[0], fp);
      if (!r) return r.status();
      in.rd = r.value();
      break;
    }
    case OperandForm::kRs: {
      if (auto s = need(1); !s.ok()) return s;
      // jmpr/callr/push/trap* take GPRs even though mnemonics are not FP.
      auto r = ParseReg(ctx, ops[0], /*fp=*/false);
      if (!r) return r.status();
      in.rs1 = r.value();
      break;
    }
    case OperandForm::kRdRs: {
      if (auto s = need(2); !s.ok()) return s;
      bool rd_fp = fp;
      bool rs_fp = fp;
      if (op == Opcode::kCvtIF || op == Opcode::kMovGF) {
        rd_fp = true;
        rs_fp = false;
      } else if (op == Opcode::kCvtFI || op == Opcode::kMovFG) {
        rd_fp = false;
        rs_fp = true;
      }
      auto rd = ParseReg(ctx, ops[0], rd_fp);
      auto rs = ParseReg(ctx, ops[1], rs_fp);
      if (!rd) return rd.status();
      if (!rs) return rs.status();
      in.rd = rd.value();
      in.rs1 = rs.value();
      break;
    }
    case OperandForm::kRdImm: {
      if (auto s = need(2); !s.ok()) return s;
      auto rd = ParseReg(ctx, ops[0], op == Opcode::kLea ? false : fp);
      if (!rd) return rd.status();
      in.rd = rd.value();
      if (IsLabelToken(ops[1]) && !ctx.equs.count(std::string(ops[1]))) {
        imm_label = std::string(ops[1]);
        label_relative = (op == Opcode::kLea);
      } else {
        auto v = ParseImm(ctx, ops[1]);
        if (!v) return v.status();
        if (v.value() < INT32_MIN || v.value() > static_cast<int64_t>(UINT32_MAX)) {
          return ctx.Err("immediate out of 32-bit range");
        }
        in.imm = static_cast<int32_t>(v.value());
      }
      break;
    }
    case OperandForm::kRdRsRs: {
      if (auto s = need(3); !s.ok()) return s;
      const bool rd_fp = fp && op != Opcode::kFCmpEq &&
                         op != Opcode::kFCmpLt && op != Opcode::kFCmpLe;
      auto rd = ParseReg(ctx, ops[0], rd_fp);
      auto r1 = ParseReg(ctx, ops[1], fp);
      auto r2 = ParseReg(ctx, ops[2], fp);
      if (!rd) return rd.status();
      if (!r1) return r1.status();
      if (!r2) return r2.status();
      in.rd = rd.value();
      in.rs1 = r1.value();
      in.rs2 = r2.value();
      break;
    }
    case OperandForm::kRdRsImm: {
      if (auto s = need(3); !s.ok()) return s;
      auto rd = ParseReg(ctx, ops[0], fp);
      auto r1 = ParseReg(ctx, ops[1], fp);
      if (!rd) return rd.status();
      if (!r1) return r1.status();
      auto v = ParseImm(ctx, ops[2]);
      if (!v) return v.status();
      in.rd = rd.value();
      in.rs1 = r1.value();
      in.imm = static_cast<int32_t>(v.value());
      break;
    }
    case OperandForm::kRsImm: {  // branches: reg, label-or-imm
      if (auto s = need(2); !s.ok()) return s;
      auto r1 = ParseReg(ctx, ops[0], false);
      if (!r1) return r1.status();
      in.rs1 = r1.value();
      if (IsLabelToken(ops[1])) {
        imm_label = std::string(ops[1]);
        label_relative = true;
      } else {
        auto v = ParseImm(ctx, ops[1]);
        if (!v) return v.status();
        in.imm = static_cast<int32_t>(v.value());
      }
      break;
    }
    case OperandForm::kImm: {
      if (auto s = need(1); !s.ok()) return s;
      if ((op == Opcode::kJmp || op == Opcode::kCall) &&
          IsLabelToken(ops[0])) {
        imm_label = std::string(ops[0]);
        label_relative = true;
      } else {
        auto v = ParseImm(ctx, ops[0]);
        if (!v) return v.status();
        in.imm = static_cast<int32_t>(v.value());
      }
      break;
    }
    case OperandForm::kMem: {
      if (auto s = need(2); !s.ok()) return s;
      auto rd = ParseReg(ctx, ops[0], fp);
      if (!rd) return rd.status();
      in.rd = rd.value();
      auto mem = SplitMemOperand(ctx, ops[1]);
      if (!mem) return mem.status();
      auto base = ParseReg(ctx, mem.value().first, false);
      if (!base) return base.status();
      in.rs1 = base.value();
      auto off = ParseImm(ctx, mem.value().second);
      if (!off) return off.status();
      in.imm = static_cast<int32_t>(off.value());
      break;
    }
    case OperandForm::kMemX: {
      if (auto s = need(2); !s.ok()) return s;
      auto rd = ParseReg(ctx, ops[0], fp);
      if (!rd) return rd.status();
      in.rd = rd.value();
      auto mem = SplitMemOperand(ctx, ops[1]);
      if (!mem) return mem.status();
      auto base = ParseReg(ctx, mem.value().first, false);
      auto idx = ParseReg(ctx, mem.value().second, false);
      if (!base) return base.status();
      if (!idx) return idx.status();
      in.rs1 = base.value();
      in.rs2 = idx.value();
      break;
    }
  }

  PendingInstr pi;
  pi.instr = in;
  pi.imm_label = std::move(imm_label);
  pi.label_relative = label_relative;
  pi.vaddr = ctx.here();
  pi.section = ctx.current;
  pi.line = ctx.line;
  ctx.instrs.push_back(std::move(pi));
  ctx.buf().insert(ctx.buf().end(), kInstrBytes, 0);  // patched in pass 2
  return Status::Ok();
}

Status EmitData(Ctx& ctx, unsigned width, std::string_view rest) {
  std::vector<std::string_view> vals;
  size_t start = 0;
  for (size_t i = 0; i <= rest.size(); ++i) {
    if (i == rest.size() || rest[i] == ',') {
      auto piece = Trim(rest.substr(start, i - start));
      if (!piece.empty()) vals.push_back(piece);
      start = i + 1;
    }
  }
  if (vals.empty()) return ctx.Err("data directive needs values");
  for (auto tok : vals) {
    if (width == 8 && IsLabelToken(tok) && !ctx.equs.count(std::string(tok))) {
      ctx.quad_fixups.push_back(
          {ctx.buf().size(), ctx.current, std::string(tok), ctx.line});
      ctx.buf().insert(ctx.buf().end(), 8, 0);
      continue;
    }
    auto v = ParseImm(ctx, tok);
    if (!v) return v.status();
    uint64_t u = static_cast<uint64_t>(v.value());
    for (unsigned i = 0; i < width; ++i) {
      ctx.buf().push_back(static_cast<uint8_t>(u >> (8 * i)));
    }
  }
  return Status::Ok();
}

Status EmitAsciz(Ctx& ctx, std::string_view rest) {
  rest = Trim(rest);
  if (rest.size() < 2 || rest.front() != '"' || rest.back() != '"') {
    return ctx.Err(".asciz needs a quoted string");
  }
  std::string_view body = rest.substr(1, rest.size() - 2);
  for (size_t i = 0; i < body.size(); ++i) {
    char c = body[i];
    if (c == '\\' && i + 1 < body.size()) {
      ++i;
      switch (body[i]) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case '0': c = '\0'; break;
        case '\\': c = '\\'; break;
        case '"': c = '"'; break;
        default:
          return ctx.Err("bad escape in .asciz");
      }
    }
    ctx.buf().push_back(static_cast<uint8_t>(c));
  }
  ctx.buf().push_back(0);
  return Status::Ok();
}

Status HandleDirective(Ctx& ctx, std::string_view word,
                       std::string_view rest) {
  if (word == ".text" || word == ".data" || word == ".ltext" ||
      word == ".ldata") {
    ctx.current = word == ".text"    ? SectionKind::kText
                  : word == ".data"  ? SectionKind::kData
                  : word == ".ltext" ? SectionKind::kLibText
                                     : SectionKind::kLibData;
    rest = Trim(rest);
    if (!rest.empty()) {
      auto v = ParseImm(ctx, rest);
      if (!v) return v.status();
      if (!ctx.buf().empty()) {
        return ctx.Err("cannot rebase a non-empty section");
      }
      *ctx.BasePtrOf(ctx.current) = static_cast<uint64_t>(v.value());
    }
    return Status::Ok();
  }
  if (word == ".entry") {
    ctx.entry_label = std::string(Trim(rest));
    if (ctx.entry_label.empty()) return ctx.Err(".entry needs a label");
    return Status::Ok();
  }
  if (word == ".equ") {
    auto comma = rest.find(',');
    if (comma == std::string_view::npos) {
      return ctx.Err(".equ NAME, value");
    }
    std::string name(Trim(rest.substr(0, comma)));
    auto v = ParseImm(ctx, rest.substr(comma + 1));
    if (!v) return v.status();
    ctx.equs[name] = v.value();
    return Status::Ok();
  }
  if (word == ".byte") return EmitData(ctx, 1, rest);
  if (word == ".half") return EmitData(ctx, 2, rest);
  if (word == ".word") return EmitData(ctx, 4, rest);
  if (word == ".quad") return EmitData(ctx, 8, rest);
  if (word == ".asciz") return EmitAsciz(ctx, rest);
  if (word == ".space") {
    auto v = ParseImm(ctx, rest);
    if (!v) return v.status();
    if (v.value() < 0 || v.value() > (1 << 24)) {
      return ctx.Err("bad .space size");
    }
    ctx.buf().insert(ctx.buf().end(), static_cast<size_t>(v.value()), 0);
    return Status::Ok();
  }
  if (word == ".align") {
    auto v = ParseImm(ctx, rest);
    if (!v) return v.status();
    const auto align = static_cast<uint64_t>(v.value());
    if (align == 0 || (align & (align - 1)) != 0) {
      return ctx.Err(".align must be a power of two");
    }
    while (ctx.here() % align != 0) ctx.buf().push_back(0);
    return Status::Ok();
  }
  return ctx.Err(StrFormat("unknown directive '%.*s'",
                           static_cast<int>(word.size()), word.data()));
}

}  // namespace

Result<BinaryImage> Assemble(std::string_view source,
                             const AssembleOptions& options) {
  Ctx ctx;
  ctx.options = options;

  // Single structural pass: emit bytes, record label addresses as we reach
  // them, and remember instructions whose immediates reference labels.
  size_t pos = 0;
  int line_no = 0;
  while (pos <= source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    std::string_view line = source.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    ctx.line = line_no;

    // Strip comments ( ; or # ) — but not inside quotes.
    bool in_quote = false;
    size_t cut = line.size();
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) {
        in_quote = !in_quote;
      } else if (!in_quote && (line[i] == ';' || line[i] == '#')) {
        cut = i;
        break;
      }
    }
    line = Trim(line.substr(0, cut));
    if (line.empty()) {
      if (pos > source.size()) break;
      continue;
    }

    // Labels (possibly several on a line, e.g. "a: b: movi r0, 1").
    while (true) {
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) break;
      std::string_view head = Trim(line.substr(0, colon));
      if (!IsLabelToken(head)) break;  // e.g. mem operand has no ':'
      if (ctx.labels.count(std::string(head))) {
        return ctx.Err(StrFormat("duplicate label '%.*s'",
                                 static_cast<int>(head.size()), head.data()));
      }
      ctx.labels[std::string(head)] = ctx.here();
      line = Trim(line.substr(colon + 1));
      if (line.empty()) break;
    }
    if (line.empty()) {
      if (pos > source.size()) break;
      continue;
    }

    // Directive or instruction.
    size_t sp = 0;
    while (sp < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[sp]))) {
      ++sp;
    }
    std::string_view word = line.substr(0, sp);
    std::string_view rest = sp < line.size() ? line.substr(sp + 1) : "";
    if (word.front() == '.') {
      if (auto s = HandleDirective(ctx, word, rest); !s.ok()) return s;
    } else {
      Opcode op = OpcodeFromMnemonic(word);
      if (op == Opcode::kOpcodeCount) {
        return ctx.Err(StrFormat("unknown mnemonic '%.*s'",
                                 static_cast<int>(word.size()), word.data()));
      }
      if (auto s = EmitInstr(ctx, op, rest); !s.ok()) return s;
    }
    if (pos > source.size()) break;
  }

  // Pass 2: resolve label immediates and patch the text buffer.
  for (auto& pi : ctx.instrs) {
    if (!pi.imm_label.empty()) {
      auto it = ctx.labels.find(pi.imm_label);
      if (it == ctx.labels.end()) {
        return Status::Invalid(StrFormat("line %d: undefined label '%s'",
                                         pi.line, pi.imm_label.c_str()));
      }
      int64_t value;
      if (pi.label_relative) {
        value = static_cast<int64_t>(it->second) -
                static_cast<int64_t>(pi.vaddr + kInstrBytes);
      } else {
        value = static_cast<int64_t>(it->second);
      }
      if (value < INT32_MIN || value > INT32_MAX) {
        return Status::Invalid(
            StrFormat("line %d: label immediate out of range", pi.line));
      }
      pi.instr.imm = static_cast<int32_t>(value);
    }
    const size_t off = pi.vaddr - ctx.BaseOf(pi.section);
    Encode(pi.instr,
           std::span<uint8_t, kInstrBytes>(
               ctx.BufOf(pi.section).data() + off, kInstrBytes));
  }
  for (const auto& fix : ctx.quad_fixups) {
    auto it = ctx.labels.find(fix.label);
    if (it == ctx.labels.end()) {
      return Status::Invalid(StrFormat("line %d: undefined label '%s'",
                                       fix.line, fix.label.c_str()));
    }
    auto& buf = ctx.BufOf(fix.section);
    uint64_t v = it->second;
    for (unsigned i = 0; i < 8; ++i) {
      buf[fix.offset + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

  BinaryImage img;
  const struct {
    SectionKind kind;
    const char* name;
    uint32_t flags;
  } kSections[] = {
      {SectionKind::kText, ".text", kSectionExec},
      {SectionKind::kLibText, ".ltext", kSectionExec},
      {SectionKind::kData, ".data", kSectionWrite},
      {SectionKind::kLibData, ".ldata", kSectionWrite},
  };
  for (const auto& sec : kSections) {
    auto& buf = ctx.BufOf(sec.kind);
    if (buf.empty()) continue;
    img.AddSection({sec.name, ctx.BaseOf(sec.kind), sec.flags,
                    std::move(buf)});
  }
  for (const auto& [name, addr] : ctx.labels) img.AddSymbol(name, addr);

  if (!ctx.entry_label.empty()) {
    auto it = ctx.labels.find(ctx.entry_label);
    if (it == ctx.labels.end()) {
      return Status::Invalid(
          StrFormat("undefined .entry label '%s'", ctx.entry_label.c_str()));
    }
    img.set_entry(it->second);
  } else {
    img.set_entry(options.text_base);
  }
  return img;
}

}  // namespace sbce::isa
