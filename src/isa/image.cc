#include "src/isa/image.h"

#include <cstring>
#include <span>

namespace sbce::isa {

namespace {

constexpr char kMagic[4] = {'S', 'B', 'X', '1'};

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool Take(void* out, size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool TakeU32(uint32_t* v) {
    uint8_t b[4];
    if (!Take(b, 4)) return false;
    *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
    return true;
  }

  bool TakeU64(uint64_t* v) {
    uint32_t lo, hi;
    if (!TakeU32(&lo) || !TakeU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

size_t BinaryImage::TotalBytes() const {
  size_t n = 0;
  for (const auto& s : sections_) n += s.data.size();
  return n;
}

std::optional<uint64_t> BinaryImage::FindSymbol(std::string_view name) const {
  for (const auto& [sym, addr] : symbols_) {
    if (sym == name) return addr;
  }
  return std::nullopt;
}

std::vector<uint8_t> BinaryImage::Serialize() const {
  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  PutU64(out, entry_);
  PutU32(out, static_cast<uint32_t>(sections_.size()));
  for (const auto& s : sections_) {
    PutU32(out, static_cast<uint32_t>(s.name.size()));
    out.insert(out.end(), s.name.begin(), s.name.end());
    PutU64(out, s.vaddr);
    PutU32(out, s.flags);
    PutU32(out, static_cast<uint32_t>(s.data.size()));
    out.insert(out.end(), s.data.begin(), s.data.end());
  }
  return out;
}

Result<BinaryImage> BinaryImage::Deserialize(std::span<const uint8_t> bytes) {
  Reader r(bytes);
  char magic[4];
  if (!r.Take(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Invalid("bad SBX magic");
  }
  BinaryImage img;
  uint64_t entry;
  uint32_t nsec;
  if (!r.TakeU64(&entry) || !r.TakeU32(&nsec)) {
    return Status::Invalid("truncated SBX header");
  }
  if (nsec > 1024) return Status::Invalid("unreasonable section count");
  img.set_entry(entry);
  for (uint32_t i = 0; i < nsec; ++i) {
    uint32_t name_len;
    if (!r.TakeU32(&name_len) || name_len > 4096) {
      return Status::Invalid("bad section name length");
    }
    Section s;
    s.name.resize(name_len);
    uint32_t size;
    if (!r.Take(s.name.data(), name_len) || !r.TakeU64(&s.vaddr) ||
        !r.TakeU32(&s.flags) || !r.TakeU32(&size)) {
      return Status::Invalid("truncated section header");
    }
    s.data.resize(size);
    if (!r.Take(s.data.data(), size)) {
      return Status::Invalid("truncated section payload");
    }
    img.AddSection(std::move(s));
  }
  return img;
}

}  // namespace sbce::isa
