// SBX binary image: the on-disk/in-memory "binary" format the tools analyze.
//
// Layout of the serialized form:
//   magic "SBX1" | u64 entry | u32 nsections |
//   per section: u32 name_len | name bytes | u64 vaddr | u32 flags |
//                u32 size | data bytes
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/support/status.h"

namespace sbce::isa {

enum SectionFlags : uint32_t {
  kSectionExec = 1u << 0,
  kSectionWrite = 1u << 1,
};

struct Section {
  std::string name;
  uint64_t vaddr = 0;
  uint32_t flags = 0;
  std::vector<uint8_t> data;
};

/// A loadable binary. Also carries the symbol table the assembler produced;
/// symbols are *not* serialized (stripped binary), mirroring the paper's
/// setting, but are kept in-memory for tests and ground-truth bookkeeping.
class BinaryImage {
 public:
  uint64_t entry() const { return entry_; }
  void set_entry(uint64_t e) { entry_ = e; }

  const std::vector<Section>& sections() const { return sections_; }
  void AddSection(Section s) { sections_.push_back(std::move(s)); }

  /// Total bytes across all section payloads ("binary size" for §V.A).
  size_t TotalBytes() const;

  /// In-memory symbol table (label → vaddr). Not serialized.
  void AddSymbol(const std::string& name, uint64_t vaddr) {
    symbols_.emplace_back(name, vaddr);
  }
  std::optional<uint64_t> FindSymbol(std::string_view name) const;
  const std::vector<std::pair<std::string, uint64_t>>& symbols() const {
    return symbols_;
  }

  /// Serializes to the SBX wire format (symbols stripped).
  std::vector<uint8_t> Serialize() const;
  static Result<BinaryImage> Deserialize(std::span<const uint8_t> bytes);

 private:
  uint64_t entry_ = 0;
  std::vector<Section> sections_;
  std::vector<std::pair<std::string, uint64_t>> symbols_;
};

}  // namespace sbce::isa
