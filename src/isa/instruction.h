// Decoded instruction representation plus the 8-byte codec.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "src/isa/opcode.h"
#include "src/support/status.h"

namespace sbce::isa {

struct Instruction {
  Opcode op = Opcode::kNop;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Encodes `instr` into exactly kInstrBytes bytes at `out`.
void Encode(const Instruction& instr, std::span<uint8_t, kInstrBytes> out);

/// Decodes one instruction. Fails on unknown opcodes or register indexes
/// out of range for the operand form.
Result<Instruction> Decode(std::span<const uint8_t> bytes);

/// Renders `instr` at `pc` (pc is needed to print absolute branch targets).
std::string Disassemble(const Instruction& instr, uint64_t pc);

}  // namespace sbce::isa
