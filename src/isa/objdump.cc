#include "src/isa/objdump.h"

#include <map>

#include "src/isa/instruction.h"
#include "src/support/str.h"

namespace sbce::isa {

namespace {

std::map<uint64_t, std::string> SymbolsByAddress(const BinaryImage& image) {
  std::map<uint64_t, std::string> out;
  for (const auto& [name, addr] : image.symbols()) {
    auto [it, inserted] = out.emplace(addr, name);
    if (!inserted) it->second += "," + name;
  }
  return out;
}

}  // namespace

std::string DisassembleSection(const Section& section,
                               const BinaryImage& image, bool use_symbols) {
  const auto symbols =
      use_symbols ? SymbolsByAddress(image)
                  : std::map<uint64_t, std::string>{};
  std::string out;
  for (size_t off = 0; off + kInstrBytes <= section.data.size();
       off += kInstrBytes) {
    const uint64_t pc = section.vaddr + off;
    if (auto it = symbols.find(pc); it != symbols.end()) {
      out += StrFormat("\n%s:\n", it->second.c_str());
    }
    auto decoded = Decode(
        std::span<const uint8_t>(section.data.data() + off, kInstrBytes));
    if (decoded.ok()) {
      out += StrFormat("  0x%06llx:  %s\n",
                       static_cast<unsigned long long>(pc),
                       Disassemble(decoded.value(), pc).c_str());
    } else {
      out += StrFormat("  0x%06llx:  .byte", static_cast<unsigned long long>(pc));
      for (unsigned i = 0; i < kInstrBytes; ++i) {
        out += StrFormat(" %02x", section.data[off + i]);
      }
      out += "   ; (not an instruction)\n";
    }
  }
  return out;
}

std::string Objdump(const BinaryImage& image, const ObjdumpOptions& options) {
  std::string out = StrFormat(
      "SBX image: entry 0x%llx, %zu section(s), %zu byte(s) total\n\n",
      static_cast<unsigned long long>(image.entry()),
      image.sections().size(), image.TotalBytes());
  for (const auto& section : image.sections()) {
    out += StrFormat("section %-8s vaddr 0x%06llx  size %6zu  [%s%s]\n",
                     section.name.c_str(),
                     static_cast<unsigned long long>(section.vaddr),
                     section.data.size(),
                     (section.flags & kSectionExec) ? "X" : "-",
                     (section.flags & kSectionWrite) ? "W" : "-");
  }
  for (const auto& section : image.sections()) {
    if ((section.flags & kSectionExec) != 0 && options.disassemble_text) {
      out += StrFormat("\nDisassembly of %s:\n", section.name.c_str());
      out += DisassembleSection(section, image, options.use_symbols);
    } else if (options.dump_data) {
      out += StrFormat("\nContents of %s:\n", section.name.c_str());
      const size_t limit =
          options.max_data_bytes == 0
              ? section.data.size()
              : std::min(section.data.size(), options.max_data_bytes);
      for (size_t off = 0; off < limit; off += 16) {
        out += StrFormat("  0x%06llx: ",
                         static_cast<unsigned long long>(section.vaddr + off));
        std::string ascii;
        for (size_t i = off; i < off + 16 && i < limit; ++i) {
          out += StrFormat("%02x ", section.data[i]);
          const char c = static_cast<char>(section.data[i]);
          ascii += (c >= 0x20 && c < 0x7f) ? c : '.';
        }
        out += " |" + ascii + "|\n";
      }
      if (limit < section.data.size()) {
        out += StrFormat("  ... %zu more byte(s)\n",
                         section.data.size() - limit);
      }
    }
  }
  return out;
}

}  // namespace sbce::isa
