#include "src/isa/opcode.h"

#include <array>
#include <unordered_map>

#include "src/support/status.h"

namespace sbce::isa {

namespace {

constexpr OpcodeInfo Info(std::string_view mnem, OperandForm form,
                          bool branch = false, bool jump = false,
                          bool load = false, bool store = false,
                          bool fp = false, bool trap = false,
                          uint8_t width = 0) {
  return OpcodeInfo{mnem, form, branch, jump, load, store, fp, trap, width};
}

const std::array<OpcodeInfo, static_cast<size_t>(Opcode::kOpcodeCount)>
    kInfoTable = {{
        /* kNop    */ Info("nop", OperandForm::kNone),
        /* kHalt   */ Info("halt", OperandForm::kNone),
        /* kMov    */ Info("mov", OperandForm::kRdRs),
        /* kMovI   */ Info("movi", OperandForm::kRdImm),
        /* kMovHi  */ Info("movhi", OperandForm::kRdImm),
        /* kAdd    */ Info("add", OperandForm::kRdRsRs),
        /* kAddI   */ Info("addi", OperandForm::kRdRsImm),
        /* kSub    */ Info("sub", OperandForm::kRdRsRs),
        /* kSubI   */ Info("subi", OperandForm::kRdRsImm),
        /* kMul    */ Info("mul", OperandForm::kRdRsRs),
        /* kMulI   */ Info("muli", OperandForm::kRdRsImm),
        /* kUDiv   */ Info("udiv", OperandForm::kRdRsRs, false, false, false,
                           false, false, /*trap=*/true),
        /* kSDiv   */ Info("sdiv", OperandForm::kRdRsRs, false, false, false,
                           false, false, /*trap=*/true),
        /* kURem   */ Info("urem", OperandForm::kRdRsRs, false, false, false,
                           false, false, /*trap=*/true),
        /* kSRem   */ Info("srem", OperandForm::kRdRsRs, false, false, false,
                           false, false, /*trap=*/true),
        /* kAnd    */ Info("and", OperandForm::kRdRsRs),
        /* kAndI   */ Info("andi", OperandForm::kRdRsImm),
        /* kOr     */ Info("or", OperandForm::kRdRsRs),
        /* kOrI    */ Info("ori", OperandForm::kRdRsImm),
        /* kXor    */ Info("xor", OperandForm::kRdRsRs),
        /* kXorI   */ Info("xori", OperandForm::kRdRsImm),
        /* kShl    */ Info("shl", OperandForm::kRdRsRs),
        /* kShlI   */ Info("shli", OperandForm::kRdRsImm),
        /* kShr    */ Info("shr", OperandForm::kRdRsRs),
        /* kShrI   */ Info("shri", OperandForm::kRdRsImm),
        /* kSar    */ Info("sar", OperandForm::kRdRsRs),
        /* kSarI   */ Info("sari", OperandForm::kRdRsImm),
        /* kNot    */ Info("not", OperandForm::kRdRs),
        /* kNeg    */ Info("neg", OperandForm::kRdRs),
        /* kCmpEq  */ Info("cmpeq", OperandForm::kRdRsRs),
        /* kCmpEqI */ Info("cmpeqi", OperandForm::kRdRsImm),
        /* kCmpNe  */ Info("cmpne", OperandForm::kRdRsRs),
        /* kCmpNeI */ Info("cmpnei", OperandForm::kRdRsImm),
        /* kCmpLtU */ Info("cmpltu", OperandForm::kRdRsRs),
        /* kCmpLtUI*/ Info("cmpltui", OperandForm::kRdRsImm),
        /* kCmpLtS */ Info("cmplts", OperandForm::kRdRsRs),
        /* kCmpLtSI*/ Info("cmpltsi", OperandForm::kRdRsImm),
        /* kCmpLeU */ Info("cmpleu", OperandForm::kRdRsRs),
        /* kCmpLeS */ Info("cmples", OperandForm::kRdRsRs),
        /* kBz     */ Info("bz", OperandForm::kRsImm, /*branch=*/true),
        /* kBnz    */ Info("bnz", OperandForm::kRsImm, /*branch=*/true),
        /* kJmp    */ Info("jmp", OperandForm::kImm, false, /*jump=*/true),
        /* kJmpR   */ Info("jmpr", OperandForm::kRs, false, /*jump=*/true),
        /* kCall   */ Info("call", OperandForm::kImm, false, /*jump=*/true,
                           false, /*store=*/true, false, false, 8),
        /* kCallR  */ Info("callr", OperandForm::kRs, false, /*jump=*/true,
                           false, /*store=*/true, false, false, 8),
        /* kRet    */ Info("ret", OperandForm::kNone, false, /*jump=*/true,
                           /*load=*/true, false, false, false, 8),
        /* kLd1    */ Info("ld1", OperandForm::kMem, false, false,
                           /*load=*/true, false, false, false, 1),
        /* kLd2    */ Info("ld2", OperandForm::kMem, false, false, true,
                           false, false, false, 2),
        /* kLd4    */ Info("ld4", OperandForm::kMem, false, false, true,
                           false, false, false, 4),
        /* kLd8    */ Info("ld8", OperandForm::kMem, false, false, true,
                           false, false, false, 8),
        /* kLdS1   */ Info("lds1", OperandForm::kMem, false, false, true,
                           false, false, false, 1),
        /* kLdS2   */ Info("lds2", OperandForm::kMem, false, false, true,
                           false, false, false, 2),
        /* kLdS4   */ Info("lds4", OperandForm::kMem, false, false, true,
                           false, false, false, 4),
        /* kSt1    */ Info("st1", OperandForm::kMem, false, false, false,
                           /*store=*/true, false, false, 1),
        /* kSt2    */ Info("st2", OperandForm::kMem, false, false, false,
                           true, false, false, 2),
        /* kSt4    */ Info("st4", OperandForm::kMem, false, false, false,
                           true, false, false, 4),
        /* kSt8    */ Info("st8", OperandForm::kMem, false, false, false,
                           true, false, false, 8),
        /* kLdX1   */ Info("ldx1", OperandForm::kMemX, false, false, true,
                           false, false, false, 1),
        /* kLdX8   */ Info("ldx8", OperandForm::kMemX, false, false, true,
                           false, false, false, 8),
        /* kStX1   */ Info("stx1", OperandForm::kMemX, false, false, false,
                           true, false, false, 1),
        /* kStX8   */ Info("stx8", OperandForm::kMemX, false, false, false,
                           true, false, false, 8),
        /* kPush   */ Info("push", OperandForm::kRs, false, false, false,
                           /*store=*/true, false, false, 8),
        /* kPop    */ Info("pop", OperandForm::kRd, false, false,
                           /*load=*/true, false, false, false, 8),
        /* kLea    */ Info("lea", OperandForm::kRdImm),
        /* kTrapZ  */ Info("trapz", OperandForm::kRs, false, false, false,
                           false, false, /*trap=*/true),
        /* kTrapNeg*/ Info("trapneg", OperandForm::kRs, false, false, false,
                           false, false, /*trap=*/true),
        /* kSys    */ Info("sys", OperandForm::kImm),
        /* kFAdd   */ Info("fadd", OperandForm::kRdRsRs, false, false, false,
                           false, /*fp=*/true),
        /* kFSub   */ Info("fsub", OperandForm::kRdRsRs, false, false, false,
                           false, true),
        /* kFMul   */ Info("fmul", OperandForm::kRdRsRs, false, false, false,
                           false, true),
        /* kFDiv   */ Info("fdiv", OperandForm::kRdRsRs, false, false, false,
                           false, true),
        /* kFCmpEq */ Info("fcmpeq", OperandForm::kRdRsRs, false, false,
                           false, false, true),
        /* kFCmpLt */ Info("fcmplt", OperandForm::kRdRsRs, false, false,
                           false, false, true),
        /* kFCmpLe */ Info("fcmple", OperandForm::kRdRsRs, false, false,
                           false, false, true),
        /* kCvtIF  */ Info("cvtif", OperandForm::kRdRs, false, false, false,
                           false, true),
        /* kCvtFI  */ Info("cvtfi", OperandForm::kRdRs, false, false, false,
                           false, true),
        /* kFMov   */ Info("fmov", OperandForm::kRdRs, false, false, false,
                           false, true),
        /* kFLd    */ Info("fld", OperandForm::kMem, false, false,
                           /*load=*/true, false, /*fp=*/true, false, 8),
        /* kFSt    */ Info("fst", OperandForm::kMem, false, false, false,
                           /*store=*/true, /*fp=*/true, false, 8),
        /* kMovGF  */ Info("movgf", OperandForm::kRdRs, false, false, false,
                           false, true),
        /* kMovFG  */ Info("movfg", OperandForm::kRdRs, false, false, false,
                           false, true),
    }};

}  // namespace

const OpcodeInfo& GetOpcodeInfo(Opcode op) {
  const auto idx = static_cast<size_t>(op);
  SBCE_CHECK_MSG(idx < kInfoTable.size(), "opcode out of range");
  return kInfoTable[idx];
}

Opcode OpcodeFromMnemonic(std::string_view mnemonic) {
  static const auto* kMap = [] {
    auto* m = new std::unordered_map<std::string_view, Opcode>();
    for (size_t i = 0; i < kInfoTable.size(); ++i) {
      (*m)[kInfoTable[i].mnemonic] = static_cast<Opcode>(i);
    }
    return m;
  }();
  auto it = kMap->find(mnemonic);
  return it == kMap->end() ? Opcode::kOpcodeCount : it->second;
}

}  // namespace sbce::isa
