// Predecoded text: every executable section of an image decoded once into
// a flat, immutable instruction store the interpreter can index by pc.
//
// The VM's hot loop previously re-decoded the raw 8-byte word on every
// executed instruction (8 paged-memory byte reads + operand validation per
// step). A PredecodedText is built once per image, shared read-only across
// machines, processes and threads (fork children keep pointing at it), and
// turns the fetch into a bounds check plus an array index. Slots whose
// bytes do not decode (data interleaved in text) stay invalid and fall
// back to the raw-decode slow path, which reproduces the exact fault
// message byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/isa/image.h"
#include "src/isa/instruction.h"

namespace sbce::isa {

class PredecodedText {
 public:
  /// One executable section, decoded slot-per-instruction.
  struct Segment {
    uint64_t base = 0;   // section vaddr
    uint64_t span = 0;   // section size in bytes
    std::vector<Instruction> instrs;  // span / kInstrBytes slots
    std::vector<uint8_t> valid;       // 1 = slot decoded cleanly
  };

  /// The decoded instruction at `pc`, or nullptr when `pc` is outside
  /// every executable segment, misaligned, or the slot failed to decode —
  /// callers must then take the raw-decode path against guest memory.
  const Instruction* Lookup(uint64_t pc) const {
    for (const Segment& seg : segments_) {
      const uint64_t off = pc - seg.base;
      if (off < seg.span) {
        if (off % kInstrBytes != 0) return nullptr;
        const uint64_t slot = off / kInstrBytes;
        return seg.valid[slot] != 0 ? &seg.instrs[slot] : nullptr;
      }
    }
    return nullptr;
  }

  bool Contains(uint64_t addr) const {
    for (const Segment& seg : segments_) {
      if (addr - seg.base < seg.span) return true;
    }
    return false;
  }

  /// Lowest / one-past-highest executable address. A single [lo, hi)
  /// range over all segments, for write-watch registration; the gap
  /// between segments (if any) is harmless to watch since dirty marks
  /// only widen the slow path.
  uint64_t lo() const { return lo_; }
  uint64_t hi() const { return hi_; }

  const std::vector<Segment>& segments() const { return segments_; }
  /// Total decoded (valid) slots across segments.
  size_t valid_count() const;
  /// Approximate heap footprint of the store (instruction slots + valid
  /// bitmap), for the service layer's byte-budgeted admission policy.
  size_t ApproxBytes() const;

 private:
  friend std::shared_ptr<const PredecodedText> Predecode(
      const BinaryImage& image);

  std::vector<Segment> segments_;
  uint64_t lo_ = 0;
  uint64_t hi_ = 0;
};

/// Decodes every kSectionExec section of `image`. The result is immutable
/// and safe to share across machines on any thread; returns an empty store
/// (Lookup always nullptr) when the image has no executable section.
std::shared_ptr<const PredecodedText> Predecode(const BinaryImage& image);

}  // namespace sbce::isa
