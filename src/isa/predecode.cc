#include "src/isa/predecode.h"

#include <algorithm>
#include <span>

namespace sbce::isa {

size_t PredecodedText::valid_count() const {
  size_t n = 0;
  for (const Segment& seg : segments_) {
    n += static_cast<size_t>(
        std::count(seg.valid.begin(), seg.valid.end(), uint8_t{1}));
  }
  return n;
}

size_t PredecodedText::ApproxBytes() const {
  size_t bytes = sizeof(PredecodedText);
  for (const Segment& seg : segments_) {
    bytes += sizeof(Segment);
    bytes += seg.instrs.size() * sizeof(Instruction);
    bytes += seg.valid.size();
  }
  return bytes;
}

std::shared_ptr<const PredecodedText> Predecode(const BinaryImage& image) {
  auto text = std::make_shared<PredecodedText>();
  bool first = true;
  for (const Section& section : image.sections()) {
    if ((section.flags & kSectionExec) == 0) continue;
    PredecodedText::Segment seg;
    seg.base = section.vaddr;
    seg.span = section.data.size();
    const size_t slots = section.data.size() / kInstrBytes;
    seg.instrs.resize(slots);
    seg.valid.assign(slots, 0);
    for (size_t i = 0; i < slots; ++i) {
      auto decoded = Decode(std::span<const uint8_t>(
          section.data.data() + i * kInstrBytes, kInstrBytes));
      if (decoded) {
        seg.instrs[i] = decoded.value();
        seg.valid[i] = 1;
      }
    }
    const uint64_t end = seg.base + seg.span;
    if (first) {
      text->lo_ = seg.base;
      text->hi_ = end;
      first = false;
    } else {
      text->lo_ = std::min(text->lo_, seg.base);
      text->hi_ = std::max(text->hi_, end);
    }
    text->segments_.push_back(std::move(seg));
  }
  return text;
}

}  // namespace sbce::isa
