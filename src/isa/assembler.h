// Two-pass assembler for SBVM assembly.
//
// Syntax overview (one statement per line, ';' or '#' starts a comment):
//
//   .text [vaddr]        switch to the text section (default vaddr 0x1000)
//   .data [vaddr]        switch to the data section (default vaddr 0x100000)
//   .ltext [vaddr]       library text section (default 0x40000)
//   .ldata [vaddr]       library data section (default 0x60000)
//   .entry <label>       program entry point
//   .equ NAME, <int>     define an assembly-time constant
//   .byte / .half / .word / .quad  v1, v2, ...   (ints or labels for .quad)
//   .asciz "text"        NUL-terminated string (supports \n \t \0 \\ \")
//   .space N             N zero bytes
//   .align N             pad with zeros to an N-byte boundary
//   label:               define a label at the current location
//
//   mnemonic operands    e.g.  addi r1, r2, 10
//                              ld8 r3, [r15+16]
//                              ldx8 r3, [r1+r2]
//                              bz r1, else_branch
//                              movi r1, some_label   (absolute address)
//
// Branch/call/lea label operands are encoded pc-relative; movi/.quad label
// operands are absolute. All text vaddrs must fit in 31 bits so absolute
// addresses survive the sign-extended 32-bit immediate.
#pragma once

#include <cstdint>
#include <string_view>

#include "src/isa/image.h"
#include "src/support/status.h"

namespace sbce::isa {

struct AssembleOptions {
  uint64_t text_base = 0x1000;
  uint64_t data_base = 0x100000;
  /// "Shared library" sections (.ltext / .ldata directives). Addresses at
  /// or above lib_text_base are treated as library code by the tool
  /// profiles (dynamic-library loading / skipping behaviours).
  uint64_t lib_text_base = 0x40000;
  uint64_t lib_data_base = 0x60000;
};

/// Assembles `source` into a loadable image. On error, the Status message
/// contains the 1-based line number.
Result<BinaryImage> Assemble(std::string_view source,
                             const AssembleOptions& options = {});

}  // namespace sbce::isa
