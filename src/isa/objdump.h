// objdump-style rendering of SBX images: section listing, disassembly of
// executable sections, hex dumps of data sections.
#pragma once

#include <string>

#include "src/isa/image.h"

namespace sbce::isa {

struct ObjdumpOptions {
  bool disassemble_text = true;
  bool dump_data = true;
  size_t max_data_bytes = 256;  // per section, 0 = unlimited
  /// Annotate addresses with symbol names when the image carries symbols.
  bool use_symbols = true;
};

/// Renders the whole image (headers, sections, disassembly).
std::string Objdump(const BinaryImage& image,
                    const ObjdumpOptions& options = ObjdumpOptions());

/// Disassembles one executable section, one instruction per line:
///   "0x1008:  addi r1, r1, 1".
std::string DisassembleSection(const Section& section,
                               const BinaryImage& image,
                               bool use_symbols = true);

}  // namespace sbce::isa
