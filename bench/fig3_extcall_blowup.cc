// Reproduces Figure 3: the constraint blowup an external call (printf)
// adds to a trivial guard.
//
// The paper's program is `if (x >= 0x32) bomb` with an optional printf of
// x: without the call, five instructions propagate the symbolic value and
// any x >= 0x32 solves it; with the call enabled, dozens more instructions
// (including conditional ones inside printf) join the constraint system.
#include <cstdio>

#include "src/service/api.h"

namespace {

std::string Printable(const std::string& s) {
  std::string out;
  for (unsigned char c : s) {
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", c);
      out += buf;
    }
  }
  return out;
}

void Report(const char* label, const sbce::core::EngineResult& result) {
  std::printf("%-22s symbolic instrs: %4zu | constraints: %2zu "
              "(in library: %2zu) | rounds: %llu | solved input: %s\n",
              label, result.seed_symbolic_instrs, result.seed_constraints,
              result.seed_lib_constraints,
              static_cast<unsigned long long>(result.metrics.rounds),
              result.validated ? Printable(result.claimed_argv[1]).c_str()
                               : "(none)");
}

}  // namespace

int main() {
  using namespace sbce;
  std::printf("=== Figure 3: extra constraints from an external call ===\n\n");
  // The paper ran this case with BAP.
  const auto analyze = [](const char* bomb) {
    service::AnalysisRequest request;
    request.bomb = bomb;
    request.profile = "BAP";
    return service::Analyze(request);
  };
  auto cell_off = analyze("fig3_noprint");
  auto cell_on = analyze("fig3_print");

  Report("printf commented out:", cell_off.engine);
  Report("printf enabled:", cell_on.engine);

  const double factor =
      cell_off.engine.seed_symbolic_instrs == 0
          ? 0.0
          : static_cast<double>(cell_on.engine.seed_symbolic_instrs) /
                static_cast<double>(cell_off.engine.seed_symbolic_instrs);
  std::printf("\nsymbolic-instruction growth factor: %.1fx "
              "(paper: 5 -> 66 instructions, ~13x)\n",
              factor);
  std::printf("library-code constraints added by the call: %zu "
              "(paper: 'including some conditional instructions')\n",
              cell_on.engine.seed_lib_constraints);
  return 0;
}
