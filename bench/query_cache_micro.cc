// Query pipeline macro-benchmark: the concolic prefix-reuse workload.
//
// Each branch-negation query restates the whole path prefix and flips one
// condition — the blowup pattern §IV measures on crypto/loop-heavy bombs.
// The workload builds `kGroups` variable-disjoint prefix constraints (one
// nontrivial 16-bit multiplication equation per variable group) and then
// issues queries that re-assert every prefix constraint plus one changed
// conjunct. The seed path re-bit-blasts the entire conjunction per query;
// the pipeline slices it, solves only the changed component, and answers
// the rest from the cache.
//
// Emits BENCH_query_pipeline.json (cache hit rate, wall times, speedups)
// and a human-readable summary on stdout. Acceptance: the pipeline is
// >= 2x faster than the seed serial path on this workload.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_env.h"
#include "src/solver/pipeline.h"
#include "src/solver/solver.h"
#include "src/support/status.h"

namespace {

using namespace sbce;
using namespace sbce::solver;

constexpr int kGroups = 24;
constexpr int kQueries = 48;

// One variable group's prefix constraint: x*x == k (mod 2^16), x < 200 —
// a genuinely solver-bound component (multiplier circuit + CDCL search).
std::vector<ExprRef> GroupPrefix(ExprPool& pool, int g) {
  ExprRef x = pool.Var("x" + std::to_string(g), 16);
  return {pool.Eq(pool.Mul(x, x), pool.Const(1521 + 17 * g, 16)),
          pool.Ult(x, pool.Const(200, 16))};
}

// Query i: the full prefix plus one negated branch condition touching
// only group (i % kGroups) — the concolic per-candidate query shape.
std::vector<QueryPipeline::Query> BuildWorkload(ExprPool& pool) {
  std::vector<QueryPipeline::Query> queries;
  std::vector<ExprRef> prefix;
  for (int g = 0; g < kGroups; ++g) {
    const auto part = GroupPrefix(pool, g);
    prefix.insert(prefix.end(), part.begin(), part.end());
  }
  for (int i = 0; i < kQueries; ++i) {
    QueryPipeline::Query q = prefix;
    ExprRef x = pool.Var("x" + std::to_string(i % kGroups), 16);
    // Negated branch: x != (i / kGroups)'th small constant.
    q.push_back(pool.Ne(x, pool.Const(1 + i / kGroups, 16)));
    queries.push_back(std::move(q));
  }
  return queries;
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  ExprPool pool;
  const auto queries = BuildWorkload(pool);
  std::printf("=== query pipeline benchmark: %d groups, %d queries ===\n",
              kGroups, kQueries);

  // --- Seed path: CheckSat on the full conjunction, per query, serial ---
  std::vector<SolveStatus> seed_status;
  const auto t_seed = std::chrono::steady_clock::now();
  for (const auto& q : queries) seed_status.push_back(CheckSat(q).status);
  const double seed_ms = MillisSince(t_seed);

  // The engine submits one round's candidates per SolveBatch call, with
  // the cache persisting across rounds — replicate that: rounds of 8.
  constexpr size_t kRound = 8;
  const auto run_rounds = [&](QueryPipeline& pipeline) {
    std::vector<SolveResult> results;
    for (size_t start = 0; start < queries.size(); start += kRound) {
      const size_t n = std::min(kRound, queries.size() - start);
      auto part = pipeline.SolveBatch({queries.data() + start, n});
      for (auto& r : part) results.push_back(std::move(r));
    }
    return results;
  };

  // --- Pipeline, serial dispatch (cache + slicing only) -----------------
  PipelineOptions serial_opts;
  serial_opts.threads = 1;
  QueryPipeline serial(serial_opts);
  const auto t_serial = std::chrono::steady_clock::now();
  const auto serial_results = run_rounds(serial);
  const double pipe_serial_ms = MillisSince(t_serial);

  // --- Pipeline, parallel dispatch --------------------------------------
  PipelineOptions par_opts;
  par_opts.threads = 0;  // auto
  QueryPipeline parallel(par_opts);
  const auto t_par = std::chrono::steady_clock::now();
  const auto par_results = run_rounds(parallel);
  const double pipe_par_ms = MillisSince(t_par);

  // Cross-check: all three paths must agree on every verdict.
  for (size_t i = 0; i < queries.size(); ++i) {
    SBCE_CHECK_MSG(serial_results[i].status == seed_status[i] &&
                       par_results[i].status == seed_status[i],
                   "pipeline verdict diverged from seed CheckSat");
  }

  const PipelineStats stats = serial.stats();
  const uint64_t lookups = stats.cache_hits + stats.cache_misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.cache_hits) /
                         static_cast<double>(lookups);
  const double speedup_serial = seed_ms / pipe_serial_ms;
  const double speedup_parallel = seed_ms / pipe_par_ms;

  std::printf("seed serial      : %8.1f ms\n", seed_ms);
  std::printf("pipeline (1 thr) : %8.1f ms  (%.2fx, hit rate %.1f%%)\n",
              pipe_serial_ms, speedup_serial, 100.0 * hit_rate);
  std::printf("pipeline (%d thr) : %8.1f ms  (%.2fx)\n",
              parallel.threads(), pipe_par_ms, speedup_parallel);
  std::printf("subqueries solved: %llu of %llu lookups\n",
              static_cast<unsigned long long>(stats.subqueries_solved),
              static_cast<unsigned long long>(lookups));

  std::FILE* json = std::fopen("BENCH_query_pipeline.json", "w");
  SBCE_CHECK_MSG(json != nullptr, "cannot write BENCH_query_pipeline.json");
  std::fprintf(json,
               "{\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"build_preset\": \"%s\",\n"
               "  \"groups\": %d,\n"
               "  \"queries\": %d,\n"
               "  \"seed_serial_ms\": %.3f,\n"
               "  \"pipeline_serial_ms\": %.3f,\n"
               "  \"pipeline_parallel_ms\": %.3f,\n"
               "  \"pipeline_parallel_threads\": %u,\n"
               "  \"cache_hit_rate\": %.4f,\n"
               "  \"subqueries_solved\": %llu,\n"
               "  \"speedup_pipeline_serial\": %.3f,\n"
               "  \"speedup_pipeline_parallel\": %.3f\n"
               "}\n",
               bench::HardwareConcurrency(), bench::BuildPreset(),
               kGroups, kQueries, seed_ms, pipe_serial_ms, pipe_par_ms,
               parallel.threads(), hit_rate,
               static_cast<unsigned long long>(stats.subqueries_solved),
               speedup_serial, speedup_parallel);
  std::fclose(json);
  std::printf("wrote BENCH_query_pipeline.json\n");

  return speedup_serial >= 2.0 ? 0 : 1;
}
