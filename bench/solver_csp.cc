// CSP-style hard-instance suite for the CDCL core.
//
// The 22 logic bombs mostly produce small, easy queries; gains on the
// incremental/portfolio path need to be measured on instances that
// actually stress search. Following the constraint-problem benchmarking
// direction of arXiv:2001.07914, three generator families over the
// bitvector expression language:
//
//   coloring   — random graph k-coloring (mixed SAT/UNSAT; UNSAT forced
//                by embedding a (k+1)-clique in half the instances)
//   subsetsum  — subset-sum over random 16-bit weights hitting a target
//                built from a hidden subset (always SAT, search-heavy)
//   queens     — N-queens with row variables and arithmetic diagonal
//                constraints (SAT for N >= 4)
//
// All instances are generated with SplitMix64 from fixed seeds — the
// suite is fully deterministic.
//
// Usage:
//   solver_csp           full suite: times the default (incremental +
//                        portfolio) configuration against the baseline
//                        per-query path, writes BENCH_solver_csp.json,
//                        exits 0 when every definitive verdict agrees
//   solver_csp --smoke   small instances, no artifact — the CI/check.sh
//                        cross-check gate (exit 1 on any disagreement)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_env.h"
#include "src/solver/pipeline.h"
#include "src/solver/solver.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace {

using namespace sbce;
using namespace sbce::solver;

struct Instance {
  std::string name;
  QueryPipeline::Query assertions;
};

// Random graph k-coloring. Colors are 8-bit vars c_i < k; every sampled
// edge demands c_u != c_v. Odd-indexed instances embed a (k+1)-clique on
// the first k+1 vertices, making them provably uncolorable.
Instance Coloring(ExprPool& pool, int nodes, int k, bool force_unsat,
                  uint64_t seed, int index) {
  SplitMix64 rng(seed);
  Instance inst;
  inst.name = "coloring_n" + std::to_string(nodes) + "_k" +
              std::to_string(k) + (force_unsat ? "_clique" : "") + "_" +
              std::to_string(index);
  std::vector<ExprRef> color(nodes);
  const std::string prefix = "c" + std::to_string(index) + "_";
  for (int i = 0; i < nodes; ++i) {
    color[i] = pool.Var(prefix + std::to_string(i), 8);
    inst.assertions.push_back(
        pool.Ult(color[i], pool.Const(static_cast<uint64_t>(k), 8)));
  }
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      const bool clique_edge = force_unsat && u <= k && v <= k;
      if (clique_edge || rng.NextUnit() < 0.35) {
        inst.assertions.push_back(pool.Ne(color[u], color[v]));
      }
    }
  }
  return inst;
}

// Subset-sum: pick bits b_i, demand sum(b_i ? w_i : 0) == target where
// the target is the sum of a hidden random subset — SAT by construction,
// but the solver has to find *some* subset.
Instance SubsetSum(ExprPool& pool, int items, uint64_t seed, int index) {
  SplitMix64 rng(seed);
  Instance inst;
  inst.name = "subsetsum_n" + std::to_string(items) + "_" +
              std::to_string(index);
  ExprRef sum = pool.Const(0, 32);
  uint64_t target = 0;
  const std::string prefix = "b" + std::to_string(index) + "_";
  for (int i = 0; i < items; ++i) {
    const uint64_t w = 1 + rng.NextBelow(0xFFFF);
    if (rng.NextUnit() < 0.5) target += w;
    ExprRef bit = pool.Var(prefix + std::to_string(i), 1);
    sum = pool.Add(sum, pool.Ite(bit, pool.Const(w, 32), pool.Const(0, 32)));
  }
  inst.assertions.push_back(
      pool.Eq(sum, pool.Const(target & 0xFFFFFFFFull, 32)));
  return inst;
}

// N-queens: q_i is the column of the queen in row i. Distinct columns and
// arithmetic no-shared-diagonal constraints (values stay far below the
// 16-bit wraparound, so plain adds are exact).
Instance Queens(ExprPool& pool, int n, int index) {
  Instance inst;
  inst.name = "queens_n" + std::to_string(n) + "_" + std::to_string(index);
  std::vector<ExprRef> q(n);
  const std::string prefix = "q" + std::to_string(index) + "_";
  for (int i = 0; i < n; ++i) {
    q[i] = pool.Var(prefix + std::to_string(i), 16);
    inst.assertions.push_back(
        pool.Ult(q[i], pool.Const(static_cast<uint64_t>(n), 16)));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const uint64_t d = static_cast<uint64_t>(j - i);
      inst.assertions.push_back(pool.Ne(q[i], q[j]));
      inst.assertions.push_back(
          pool.Ne(pool.Add(q[i], pool.Const(d, 16)), q[j]));
      inst.assertions.push_back(
          pool.Ne(pool.Add(q[j], pool.Const(d, 16)), q[i]));
    }
  }
  return inst;
}

std::vector<Instance> BuildSuite(ExprPool& pool, bool smoke) {
  std::vector<Instance> suite;
  const int coloring_nodes = smoke ? 10 : 24;
  const int coloring_count = smoke ? 2 : 6;
  for (int i = 0; i < coloring_count; ++i) {
    suite.push_back(Coloring(pool, coloring_nodes, 3, (i % 2) == 1,
                             0x5bce0 + i, i));
  }
  const int subset_items = smoke ? 12 : 24;
  const int subset_count = smoke ? 2 : 4;
  for (int i = 0; i < subset_count; ++i) {
    suite.push_back(SubsetSum(pool, subset_items, 0x5bce00 + i, i));
  }
  const int queens_n = smoke ? 6 : 8;
  const int queens_count = smoke ? 1 : 2;
  for (int i = 0; i < queens_count; ++i) {
    suite.push_back(Queens(pool, queens_n + i, i));
  }
  return suite;
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

const char* StatusName(SolveStatus s) {
  switch (s) {
    case SolveStatus::kSat: return "sat";
    case SolveStatus::kUnsat: return "unsat";
    case SolveStatus::kUnknown: return "unknown";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  ExprPool pool;
  const std::vector<Instance> suite = BuildSuite(pool, smoke);

  std::vector<QueryPipeline::Query> batch;
  for (const Instance& inst : suite) batch.push_back(inst.assertions);

  // Baseline: the per-query cold path (every pipeline gate off).
  PipelineOptions base_opts;
  base_opts.threads = 1;
  base_opts.solver.cache_queries = false;
  base_opts.solver.slice_independent = false;
  base_opts.solver.incremental_batch = false;
  base_opts.solver.portfolio = false;
  QueryPipeline baseline(base_opts);
  const auto t_base = std::chrono::steady_clock::now();
  const auto base_results = baseline.SolveBatch(batch);
  const double base_ms = MillisSince(t_base);

  // Default: incremental sessions + portfolio.
  PipelineOptions def_opts;
  def_opts.threads = 1;
  QueryPipeline def(def_opts);
  const auto t_def = std::chrono::steady_clock::now();
  const auto def_results = def.SolveBatch(batch);
  const double def_ms = MillisSince(t_def);

  std::printf("=== solver_csp%s: %zu instances ===\n",
              smoke ? " (smoke)" : "", suite.size());
  bool ok = true;
  for (size_t i = 0; i < suite.size(); ++i) {
    const SolveStatus a = base_results[i].status;
    const SolveStatus b = def_results[i].status;
    // Definitive verdicts must agree; a portfolio rescue may upgrade a
    // baseline kUnknown to a definitive answer, never contradict one.
    const bool agree =
        a == b || a == SolveStatus::kUnknown || b == SolveStatus::kUnknown;
    if (!agree) ok = false;
    std::printf("%-28s baseline=%-7s default=%-7s%s\n",
                suite[i].name.c_str(), StatusName(a), StatusName(b),
                agree ? "" : "  << DISAGREE");
  }
  std::printf("baseline: %8.1f ms\ndefault : %8.1f ms  (%.2fx)\n",
              base_ms, def_ms, base_ms / def_ms);
  if (!ok) {
    std::printf("FAIL: definitive verdicts disagree\n");
    return 1;
  }

  if (!smoke) {
    std::FILE* json = std::fopen("BENCH_solver_csp.json", "w");
    SBCE_CHECK_MSG(json != nullptr, "cannot write BENCH_solver_csp.json");
    std::fprintf(json,
                 "{\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"build_preset\": \"%s\",\n"
                 "  \"instances\": %zu,\n"
                 "  \"baseline_ms\": %.3f,\n"
                 "  \"default_ms\": %.3f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"results\": [\n",
                 bench::HardwareConcurrency(), bench::BuildPreset(),
                 suite.size(), base_ms, def_ms, base_ms / def_ms);
    for (size_t i = 0; i < suite.size(); ++i) {
      std::fprintf(json,
                   "    {\"name\": \"%s\", \"baseline\": \"%s\", "
                   "\"default\": \"%s\", \"conflicts\": %llu}%s\n",
                   suite[i].name.c_str(), StatusName(base_results[i].status),
                   StatusName(def_results[i].status),
                   static_cast<unsigned long long>(def_results[i].conflicts),
                   i + 1 == suite.size() ? "" : ",");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_solver_csp.json\n");
  }
  return 0;
}
