// Environment stamp shared by every BENCH_*.json emitter: numbers are
// meaningless without knowing how many cores the container exposed and
// which build preset produced the binary (a tsan build is ~10x a release
// build; comparing artifacts across presets is a classic footgun).
#pragma once

#include <thread>

#include "src/obs/json.h"

namespace sbce::bench {

inline unsigned HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

/// Build preset baked in by bench/CMakeLists.txt ("release", "tsan",
/// "asan", or the lower-cased CMAKE_BUILD_TYPE for ad-hoc configures).
inline const char* BuildPreset() {
#ifdef SBCE_BUILD_PRESET
  return SBCE_BUILD_PRESET;
#else
  return "unknown";
#endif
}

/// Adds the mandatory environment fields to a bench artifact document.
inline void StampEnv(obs::JsonValue& doc) {
  doc.Set("hardware_concurrency",
          obs::JsonValue::U64(HardwareConcurrency()));
  doc.Set("build_preset", obs::JsonValue::Str(BuildPreset()));
}

}  // namespace sbce::bench
