// VM substrate microbenchmarks: interpreter throughput with and without
// tracing, assembler throughput, guest crypto runtime.
#include <benchmark/benchmark.h>

#include "src/guestlib/guestlib.h"
#include "src/isa/assembler.h"
#include "src/isa/predecode.h"
#include "src/vm/machine.h"

namespace {

using namespace sbce;

const isa::BinaryImage& LoopImage() {
  static const auto* kImage = [] {
    auto img = isa::Assemble(R"(
      .entry main
      main:
        movi r1, 0
        movi r2, 200000
      loop:
        addi r1, r1, 3
        xori r1, r1, 0x55
        subi r2, r2, 1
        bnz r2, loop
        movi r1, 0
        sys 0
    )");
    SBCE_CHECK(img.ok());
    return new isa::BinaryImage(std::move(img).value());
  }();
  return *kImage;
}

void BM_VmInterpreterLoop(benchmark::State& state) {
  for (auto _ : state) {
    vm::Machine m(LoopImage(), {"prog"});
    auto r = m.Run();
    benchmark::DoNotOptimize(r.instructions);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(r.instructions));
  }
}
BENCHMARK(BM_VmInterpreterLoop);

// The pre-decode-cache interpreter: every step re-fetches 8 bytes from
// paged memory and re-decodes them. The gap to BM_VmInterpreterLoop is
// the decode cache's whole contribution.
void BM_VmInterpreterLoopNoCache(benchmark::State& state) {
  vm::Machine::Options options;
  options.decode_cache = false;
  for (auto _ : state) {
    vm::Machine m(LoopImage(), {"prog"}, vm::Devices(), options);
    auto r = m.Run();
    benchmark::DoNotOptimize(r.instructions);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(r.instructions));
  }
}
BENCHMARK(BM_VmInterpreterLoopNoCache);

// Machine construction with a shared predecoded text (the per-cell
// sharing the grid runner does): predecode cost is paid once, outside
// the loop.
void BM_VmInterpreterLoopSharedPredecode(benchmark::State& state) {
  vm::Machine::Options options;
  options.predecoded = isa::Predecode(LoopImage());
  for (auto _ : state) {
    vm::Machine m(LoopImage(), {"prog"}, vm::Devices(), options);
    auto r = m.Run();
    benchmark::DoNotOptimize(r.instructions);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(r.instructions));
  }
}
BENCHMARK(BM_VmInterpreterLoopSharedPredecode);

void BM_VmInterpreterLoopTraced(benchmark::State& state) {
  for (auto _ : state) {
    vm::Machine m(LoopImage(), {"prog"});
    uint64_t count = 0;
    m.set_trace_hook([&](const vm::TraceEvent&) { ++count; });
    auto r = m.Run();
    benchmark::DoNotOptimize(count);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(r.instructions));
  }
}
BENCHMARK(BM_VmInterpreterLoopTraced);

// Snapshot cost mid-run: O(pages-touched) shallow page-table copies, not
// O(address-space) deep copies. The machine below has the text page, the
// argv page and a stack page mapped — each Snapshot() clones page tables
// and CPU state only; guest bytes stay CoW-shared.
void BM_MachineClone(benchmark::State& state) {
  vm::Machine::Options options;
  options.max_instructions = 100'000;  // stop mid-loop, state is hot
  vm::Machine m(LoopImage(), {"prog"}, vm::Devices(), options);
  auto r = m.Run();
  SBCE_CHECK(r.budget_exhausted);
  for (auto _ : state) {
    vm::MachineSnapshot snap = m.Snapshot();
    benchmark::DoNotOptimize(snap.processes.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineClone);

// Restore cost: rebuild a fresh machine from a mid-run snapshot. Pages
// stay shared with the snapshot until the resumed run writes them, so
// this prices exactly what every checkpoint resume in the engine pays.
void BM_SnapshotRestore(benchmark::State& state) {
  vm::Machine::Options options;
  options.max_instructions = 100'000;
  vm::Machine src(LoopImage(), {"prog"}, vm::Devices(), options);
  auto r = src.Run();
  SBCE_CHECK(r.budget_exhausted);
  const vm::MachineSnapshot snap = src.Snapshot();
  for (auto _ : state) {
    vm::Machine m(LoopImage(), {"prog"});
    m.Restore(snap);
    benchmark::DoNotOptimize(m.ProcessCount());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotRestore);

void BM_AssembleGuestLib(benchmark::State& state) {
  const std::string src = ".entry main\nmain:\n  halt\n" +
                          guestlib::EmitGuestLib();
  for (auto _ : state) {
    auto img = isa::Assemble(src);
    benchmark::DoNotOptimize(img.ok());
  }
}
BENCHMARK(BM_AssembleGuestLib);

void BM_GuestSha1(benchmark::State& state) {
  auto img = isa::Assemble(R"(
    .entry main
    main:
      lea r1, msg
      movi r2, 16
      lea r3, out
      call gl_sha1
      movi r1, 0
      sys 0
    .data
    msg: .asciz "benchmark input!"
    out: .space 20
  )" + guestlib::EmitGuestLib());
  SBCE_CHECK(img.ok());
  for (auto _ : state) {
    vm::Machine m(img.value(), {"prog"});
    benchmark::DoNotOptimize(m.Run().instructions);
  }
}
BENCHMARK(BM_GuestSha1);

void BM_GuestAes128(benchmark::State& state) {
  auto img = isa::Assemble(R"(
    .entry main
    main:
      lea r1, key
      lea r2, pt
      lea r3, ct
      call gl_aes128
      movi r1, 0
      sys 0
    .data
    key: .asciz "0123456789abcde"
    pt:  .asciz "fedcba987654321"
    ct:  .space 16
  )" + guestlib::EmitGuestLib());
  SBCE_CHECK(img.ok());
  for (auto _ : state) {
    vm::Machine m(img.value(), {"prog"});
    benchmark::DoNotOptimize(m.Run().instructions);
  }
}
BENCHMARK(BM_GuestAes128);

}  // namespace

BENCHMARK_MAIN();
