// Grid wall-clock: the full Table II grid timed at --jobs 1 and --jobs
// <hardware concurrency>, the headline number for the parallel runner.
//
// Results are checked for identity across worker counts (the runner's
// determinism contract) before the timings are reported, so a speedup can
// never come from a divergent computation.
//
// Flags:
//   --jobs A,B,...  worker counts to time (default "1,<hw>"; 0 = hw)
//   --quick         time a 6-cell subset instead of the full 88-cell grid
//   --json          print the machine-readable results to stdout instead
//                   of the ASCII table
//
// Every run also writes BENCH_grid_parallel.json to the working directory
// (same shape as the --json output).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "src/obs/json.h"
#include "src/tools/runner.h"

int main(int argc, char** argv) {
  using namespace sbce;
  bool quick = false;
  bool json = false;
  std::vector<unsigned> jobs_list;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        jobs_list.push_back(
            static_cast<unsigned>(std::strtoul(p, &end, 10)));
        p = (end != nullptr && *end == ',') ? end + 1 : end;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (jobs_list.empty()) {
    jobs_list = {1, hw};
  }
  for (unsigned& j : jobs_list) {
    if (j == 0) j = hw;
  }

  const auto tools = tools::PaperTools();
  auto cells = tools::TableTwoCells(tools);
  if (quick) {
    cells.resize(6);
  }

  tools::RunOptions options;
  struct Timing {
    unsigned jobs = 0;
    double seconds = 0;
  };
  std::vector<Timing> timings;
  std::string reference;
  bool identical = true;
  for (unsigned jobs : jobs_list) {
    if (!json) {
      std::fprintf(stderr, "running %zu cells at --jobs %u...\n",
                   cells.size(), jobs);
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto grid = tools::RunGrid(cells, options, jobs);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    timings.push_back({jobs, secs});
    const auto fingerprint = obs::Dump(tools::GridToJson(grid));
    if (reference.empty()) {
      reference = fingerprint;
    } else if (fingerprint != reference) {
      identical = false;
    }
  }

  obs::JsonValue doc = obs::JsonValue::Object();
  {
    doc.Set("bench", obs::JsonValue::Str("grid_wallclock"));
    doc.Set("cells", obs::JsonValue::U64(cells.size()));
    bench::StampEnv(doc);
    doc.Set("outputs_identical", obs::JsonValue::Bool(identical));
    obs::JsonValue runs = obs::JsonValue::Array();
    for (const auto& t : timings) {
      obs::JsonValue run = obs::JsonValue::Object();
      run.Set("jobs", obs::JsonValue::U64(t.jobs));
      run.Set("seconds", obs::JsonValue::Double(t.seconds));
      runs.items.push_back(std::move(run));
    }
    doc.Set("runs", std::move(runs));
  }
  if (std::FILE* f = std::fopen("BENCH_grid_parallel.json", "w")) {
    std::fprintf(f, "%s\n", obs::Dump(doc).c_str());
    std::fclose(f);
  }
  if (json) {
    std::printf("%s\n", obs::Dump(doc).c_str());
    return identical ? 0 : 1;
  }

  std::printf("=== Grid wall-clock (%zu cells, hw=%u) ===\n", cells.size(),
              hw);
  std::printf("%8s  %10s  %8s\n", "jobs", "seconds", "speedup");
  const double base = timings.empty() ? 0.0 : timings.front().seconds;
  for (const auto& t : timings) {
    std::printf("%8u  %10.2f  %7.2fx\n", t.jobs, t.seconds,
                t.seconds > 0 ? base / t.seconds : 0.0);
  }
  std::printf("outputs identical across worker counts: %s\n",
              identical ? "yes" : "NO (determinism bug)");
  return identical ? 0 : 1;
}
