// Concolic exploration throughput: rounds and solver queries needed to
// cover programs with growing branch counts (the generational-search
// behaviour underlying every Table II run).
#include <cstdio>
#include <string>

#include "src/isa/assembler.h"
#include "src/report/table.h"
#include "src/service/api.h"

namespace {

using namespace sbce;

// A chain of `n` byte-equality guards: the bomb triggers only when all
// match, so full coverage requires solving each guard in sequence.
std::string ChainProgram(int n) {
  std::string src = R"(
    .entry main
    main:
      ld8 r9, [r2+8]
  )";
  for (int i = 0; i < n; ++i) {
    src += "  ld1 r4, [r9+" + std::to_string(i) + "]\n";
    src += "  cmpeqi r5, r4, " + std::to_string('A' + i) + "\n";
    src += "  bz r5, exit\n";
  }
  src += R"(
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
  )";
  return src;
}

}  // namespace

int main() {
  std::printf("=== Concolic coverage: guard chains of growing depth ===\n\n");
  report::AsciiTable table;
  table.SetHeader({"guards", "solved", "rounds", "solver queries",
                   "trace events"});
  for (int n : {1, 2, 4, 8, 12, 16}) {
    auto img = isa::Assemble(ChainProgram(n));
    SBCE_CHECK(img.ok());
    const auto image = std::move(img).value();
    std::string seed(static_cast<size_t>(n), 'x');
    service::AnalysisRequest request;
    request.local_image = &image;
    request.seed_argv = {"prog", seed};
    request.target_pc = *image.FindSymbol("bomb");
    request.profile = "Ideal";
    auto result = service::Analyze(request).engine;
    table.AddRow({std::to_string(n), result.validated ? "yes" : "no",
                  std::to_string(result.metrics.rounds),
                  std::to_string(result.metrics.solver_queries),
                  std::to_string(result.metrics.total_events)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nRounds grow linearly with guard depth: each round flips "
              "the next\nunexplored branch (generational search).\n");
  return 0;
}
