// Abstract pre-solver micro/macro benchmark (known bits + intervals).
//
// Two workloads, both run with the pre-solver on and off:
//
//   1. A synthetic pipeline batch mixing abstractly-refutable queries
//      (interval/known-bit contradictions the pre-solver kills without
//      touching the SAT core), pinnable equalities (definitive kSat with
//      a unique model) and genuinely solver-bound multiplication
//      equations. Measures the per-batch wall-clock delta and the
//      definitive rate on the misses.
//
//   2. The query_cache_micro prefix-reuse workload (kGroups disjoint
//      prefix constraints, each query re-asserting the prefix plus one
//      negated branch), measuring how the pre-solver interacts with
//      slicing + caching on the concolic query shape.
//
//   3. The parametric corpus grid (sbce_corpus's 72 cells x 5 profiles =
//      360 grid cells; --smoke shrinks it) through tools::RunGrid — the
//      same workload bench/corpus_scaling drives — aggregating the
//      engine-level presolve counters. This is the acceptance workload:
//      >= 25% of cache-missing pipeline components must be decided
//      definitively without the SAT core.
//
// Verdicts are cross-checked on/off before any timing is reported, and
// the grid JSON export must be byte-identical on/off (the pre-solver is
// perf-only). Emits BENCH_presolve.json.
//
// Flags:
//   --smoke    one corpus parameter per family (fast CI variant)
//   --seed N   corpus seed (default corpus::kDefaultSeed)
//   --jobs N   grid worker count (0 = hardware; default 0)
//   --json     machine-readable results on stdout too
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_env.h"
#include "src/corpus/corpus.h"
#include "src/obs/json.h"
#include "src/solver/pipeline.h"
#include "src/solver/solver.h"
#include "src/support/status.h"
#include "src/tools/profiles.h"
#include "src/tools/runner.h"

namespace {

using namespace sbce;
using namespace sbce::solver;

constexpr int kMicroQueries = 96;

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// The synthetic batch: index mod 3 picks the query shape.
//   0: abstract refutation — zext(x8) compared above its range.
//   1: pinnable — x + c == k under a tight bound (unique model).
//   2: solver-bound — x*x == k (mod 2^16), opaque to the domain.
std::vector<QueryPipeline::Query> MicroWorkload(ExprPool& pool) {
  std::vector<QueryPipeline::Query> queries;
  for (int i = 0; i < kMicroQueries; ++i) {
    const std::string name = "m" + std::to_string(i);
    QueryPipeline::Query q;
    switch (i % 3) {
      case 0: {
        ExprRef x = pool.Var(name, 8);
        q.push_back(pool.Ult(pool.Const(300 + i, 16),
                             pool.ZExt(x, 16)));
        break;
      }
      case 1: {
        ExprRef x = pool.Var(name, 16);
        q.push_back(pool.Ult(x, pool.Const(256, 16)));
        q.push_back(pool.Eq(pool.Add(x, pool.Const(100, 16)),
                            pool.Const(141 + (i % 50), 16)));
        break;
      }
      default: {
        ExprRef x = pool.Var(name, 16);
        q.push_back(pool.Eq(pool.Mul(x, x), pool.Const(1521 + 17 * i, 16)));
        q.push_back(pool.Ult(x, pool.Const(200, 16)));
        break;
      }
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

// The bench/query_cache_micro workload: kGroups variable-disjoint prefix
// constraints (x*x == k under a tight bound), each query re-asserting the
// whole prefix plus one negated branch condition.
constexpr int kPrefixGroups = 24;
constexpr int kPrefixQueries = 48;

std::vector<QueryPipeline::Query> PrefixWorkload(ExprPool& pool) {
  std::vector<QueryPipeline::Query> queries;
  std::vector<ExprRef> prefix;
  for (int g = 0; g < kPrefixGroups; ++g) {
    ExprRef x = pool.Var("p" + std::to_string(g), 16);
    prefix.push_back(pool.Eq(pool.Mul(x, x), pool.Const(1521 + 17 * g, 16)));
    prefix.push_back(pool.Ult(x, pool.Const(200, 16)));
  }
  for (int i = 0; i < kPrefixQueries; ++i) {
    QueryPipeline::Query q = prefix;
    ExprRef x = pool.Var("p" + std::to_string(i % kPrefixGroups), 16);
    q.push_back(pool.Ne(x, pool.Const(1 + i / kPrefixGroups, 16)));
    queries.push_back(std::move(q));
  }
  return queries;
}

struct MicroRun {
  double ms = 0.0;
  PipelineStats stats;
  std::vector<SolveStatus> verdicts;
};

MicroRun RunMicro(const std::vector<QueryPipeline::Query>& queries,
                  bool presolve) {
  PipelineOptions opts;
  opts.threads = 1;
  opts.solver.presolve = presolve;
  QueryPipeline pipeline(opts);
  MicroRun run;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = pipeline.SolveBatch(queries);
  run.ms = MillisSince(t0);
  for (const auto& r : results) run.verdicts.push_back(r.status);
  run.stats = pipeline.stats();
  return run;
}

struct GridRun {
  double ms = 0.0;
  std::string json;  // deterministic grid export (identity check)
  uint64_t presolve_definitive = 0;
  uint64_t presolve_unsat = 0;
  uint64_t presolve_sat = 0;
  uint64_t presolve_rewrites = 0;
  uint64_t presolve_bits_pinned = 0;
  uint64_t presolve_dropped = 0;
  uint64_t cache_misses = 0;
  uint64_t solver_queries = 0;
};

GridRun RunCorpusGrid(const corpus::Corpus& corpus,
                      const std::vector<tools::ToolProfile>& profiles,
                      unsigned jobs, bool presolve) {
  tools::RunOptions options;
  options.no_presolve = !presolve;
  const auto cells = tools::CorpusCells(corpus, profiles);
  GridRun run;
  const auto t0 = std::chrono::steady_clock::now();
  const auto grid = tools::RunGrid(cells, options, jobs);
  run.ms = MillisSince(t0);
  run.json = obs::Dump(tools::GridToJson(grid));
  for (const auto& cell : grid.cells) {
    const core::EngineMetrics& m = cell.engine.metrics;
    run.presolve_definitive += m.presolve_definitive;
    run.presolve_unsat += m.presolve_unsat;
    run.presolve_sat += m.presolve_sat;
    run.presolve_rewrites += m.presolve_rewrites;
    run.presolve_bits_pinned += m.presolve_bits_pinned;
    run.presolve_dropped += m.presolve_dropped_negations;
    run.cache_misses += m.solver_cache_misses;
    run.solver_queries += m.solver_queries;
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sbce;
  uint64_t seed = corpus::kDefaultSeed;
  bool smoke = false;
  bool json_out = false;
  unsigned jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_out = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("=== abstract pre-solver benchmark ===\n");

  // --- Workload 1: synthetic pipeline batch ----------------------------
  ExprPool pool;
  const auto queries = MicroWorkload(pool);
  const MicroRun off = RunMicro(queries, /*presolve=*/false);
  const MicroRun on = RunMicro(queries, /*presolve=*/true);
  SBCE_CHECK_MSG(on.verdicts == off.verdicts,
                 "pre-solver changed a micro-batch verdict");
  const double micro_rate =
      on.stats.cache_misses == 0
          ? 0.0
          : static_cast<double>(on.stats.presolve_definitive) /
                static_cast<double>(on.stats.cache_misses);
  std::printf("micro batch (%d queries, serial):\n", kMicroQueries);
  std::printf("  presolve off : %8.1f ms\n", off.ms);
  std::printf("  presolve on  : %8.1f ms  (%.2fx, definitive %llu/%llu = "
              "%.1f%%)\n",
              on.ms, off.ms / on.ms,
              static_cast<unsigned long long>(on.stats.presolve_definitive),
              static_cast<unsigned long long>(on.stats.cache_misses),
              100.0 * micro_rate);

  // --- Workload 2: query_cache_micro's prefix-reuse batch --------------
  ExprPool prefix_pool;
  const auto prefix_queries = PrefixWorkload(prefix_pool);
  const MicroRun prefix_off = RunMicro(prefix_queries, /*presolve=*/false);
  const MicroRun prefix_on = RunMicro(prefix_queries, /*presolve=*/true);
  SBCE_CHECK_MSG(prefix_on.verdicts == prefix_off.verdicts,
                 "pre-solver changed a prefix-batch verdict");
  std::printf("prefix reuse (query_cache_micro workload, %d queries):\n",
              kPrefixQueries);
  std::printf("  presolve off : %8.1f ms\n", prefix_off.ms);
  std::printf("  presolve on  : %8.1f ms  (%.2fx, definitive %llu/%llu)\n",
              prefix_on.ms, prefix_off.ms / prefix_on.ms,
              static_cast<unsigned long long>(
                  prefix_on.stats.presolve_definitive),
              static_cast<unsigned long long>(prefix_on.stats.cache_misses));

  // --- Workload 3: the corpus grid (corpus_scaling workload) -----------
  corpus::CorpusSpec spec = smoke ? corpus::SmokeSpec() : corpus::CorpusSpec{};
  spec.seed = seed;
  auto generated = corpus::Generate(spec);
  if (!generated.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const corpus::Corpus corpus = std::move(generated).value();
  std::vector<tools::ToolProfile> profiles;
  for (const char* name : {"BAP", "Triton", "Angr", "Angr-NoLib", "Ideal"}) {
    auto profile = tools::ProfileByName(name);
    SBCE_CHECK_MSG(profile.has_value(), "missing built-in profile");
    profiles.push_back(std::move(*profile));
  }
  const size_t grid_cells = corpus.cells.size() * profiles.size();
  std::printf("corpus grid (%zu cells x %zu profiles = %zu, --jobs %u):\n",
              corpus.cells.size(), profiles.size(), grid_cells, jobs);

  const GridRun grid_off = RunCorpusGrid(corpus, profiles, jobs, false);
  const GridRun grid_on = RunCorpusGrid(corpus, profiles, jobs, true);
  SBCE_CHECK_MSG(grid_on.json == grid_off.json,
                 "grid export differs with the pre-solver on vs off");
  const double grid_rate =
      grid_on.cache_misses == 0
          ? 0.0
          : static_cast<double>(grid_on.presolve_definitive) /
                static_cast<double>(grid_on.cache_misses);
  std::printf("  presolve off : %8.1f ms\n", grid_off.ms);
  std::printf("  presolve on  : %8.1f ms  (%.2fx)\n", grid_on.ms,
              grid_off.ms / grid_on.ms);
  std::printf("  definitive   : %llu of %llu missing components (%.1f%%), "
              "unsat %llu / sat %llu\n",
              static_cast<unsigned long long>(grid_on.presolve_definitive),
              static_cast<unsigned long long>(grid_on.cache_misses),
              100.0 * grid_rate,
              static_cast<unsigned long long>(grid_on.presolve_unsat),
              static_cast<unsigned long long>(grid_on.presolve_sat));
  std::printf("  rewrites %llu, bits pinned %llu, negations dropped %llu\n",
              static_cast<unsigned long long>(grid_on.presolve_rewrites),
              static_cast<unsigned long long>(grid_on.presolve_bits_pinned),
              static_cast<unsigned long long>(grid_on.presolve_dropped));
  std::printf("  grid export byte-identical on/off: yes\n");

  obs::JsonValue doc = obs::JsonValue::Object();
  bench::StampEnv(doc);
  doc.Set("micro_queries", obs::JsonValue::U64(kMicroQueries));
  doc.Set("micro_off_ms", obs::JsonValue::Double(off.ms));
  doc.Set("micro_on_ms", obs::JsonValue::Double(on.ms));
  doc.Set("micro_definitive_rate", obs::JsonValue::Double(micro_rate));
  doc.Set("prefix_queries", obs::JsonValue::U64(kPrefixQueries));
  doc.Set("prefix_off_ms", obs::JsonValue::Double(prefix_off.ms));
  doc.Set("prefix_on_ms", obs::JsonValue::Double(prefix_on.ms));
  doc.Set("prefix_speedup",
          obs::JsonValue::Double(prefix_on.ms == 0.0
                                     ? 0.0
                                     : prefix_off.ms / prefix_on.ms));
  doc.Set("grid_cells", obs::JsonValue::U64(grid_cells));
  doc.Set("grid_jobs", obs::JsonValue::U64(jobs));
  doc.Set("grid_off_ms", obs::JsonValue::Double(grid_off.ms));
  doc.Set("grid_on_ms", obs::JsonValue::Double(grid_on.ms));
  doc.Set("grid_speedup", obs::JsonValue::Double(
                              grid_on.ms == 0.0 ? 0.0
                                                : grid_off.ms / grid_on.ms));
  doc.Set("grid_definitive", obs::JsonValue::U64(grid_on.presolve_definitive));
  doc.Set("grid_cache_misses", obs::JsonValue::U64(grid_on.cache_misses));
  doc.Set("grid_definitive_rate", obs::JsonValue::Double(grid_rate));
  doc.Set("grid_presolve_unsat", obs::JsonValue::U64(grid_on.presolve_unsat));
  doc.Set("grid_presolve_sat", obs::JsonValue::U64(grid_on.presolve_sat));
  doc.Set("grid_presolve_rewrites",
          obs::JsonValue::U64(grid_on.presolve_rewrites));
  doc.Set("grid_presolve_bits_pinned",
          obs::JsonValue::U64(grid_on.presolve_bits_pinned));
  doc.Set("grid_dropped_negations",
          obs::JsonValue::U64(grid_on.presolve_dropped));
  doc.Set("grid_identical_on_off", obs::JsonValue::Bool(true));
  const std::string dumped = obs::Dump(doc);
  std::FILE* f = std::fopen("BENCH_presolve.json", "w");
  SBCE_CHECK_MSG(f != nullptr, "cannot write BENCH_presolve.json");
  std::fprintf(f, "%s\n", dumped.c_str());
  std::fclose(f);
  std::printf("wrote BENCH_presolve.json\n");
  if (json_out) std::printf("%s\n", dumped.c_str());

  // Acceptance: >= 25% of cache-missing components decided without the
  // SAT core on the full corpus grid (advisory under --smoke).
  const bool ok = grid_rate >= 0.25;
  if (!ok) {
    std::fprintf(stderr, "definitive rate %.1f%% below the 25%% bar\n",
                 100.0 * grid_rate);
  }
  return (ok || smoke) ? 0 : 1;
}
