// Service load generator: throughput and latency of the analysis daemon
// under concurrent client sessions.
//
// Starts an in-process sbce_serve daemon on a private socket, then:
//
//   1. cold phase  — one client sends each distinct request once, so the
//      warm stores (image, predecoded text, solver verdicts) are built
//      exactly once and the cold latency is measured;
//   2. load phase  — N concurrent sessions (own connection each) send the
//      same request mix repeatedly; every response's deterministic JSON
//      must be byte-identical to the cold run's (the service determinism
//      contract under real concurrency).
//
// Reports requests/sec and p50/p99 latency, the cold-vs-warm latency
// ratio, and the daemon's decode-cache hit counter (must be > 0: the warm
// path is actually serving from shared state, not rebuilding). Writes
// BENCH_service_load.json.
//
// Flags:
//   --sessions N   concurrent client sessions in the load phase
//                  (default 100)
//   --requests N   requests per session (default 4)
//   --jobs N       daemon analysis concurrency (0 = auto, default)
//   --json         print the artifact JSON to stdout instead of the table
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "src/obs/json.h"
#include "src/service/api.h"
#include "src/service/client.h"
#include "src/service/daemon.h"
#include "src/support/status.h"
#include "src/support/str.h"

namespace {

using namespace sbce;
using Clock = std::chrono::steady_clock;

struct MixEntry {
  const char* bomb;
  const char* profile;
};

// Cheap cells with distinct profiles over a shared image, so the load
// phase exercises both the per-image stores (shared across the mix) and
// the per-request query/segment stores.
constexpr MixEntry kMix[] = {
    {"fig3_noprint", "BAP"},
    {"fig3_noprint", "Ideal"},
};

service::AnalysisRequest MakeRequest(const MixEntry& m) {
  service::AnalysisRequest request;
  request.bomb = m.bomb;
  request.profile = m.profile;
  request.want_path_condition = true;
  return request;
}

std::string DeterministicJson(const obs::JsonValue& wire_doc) {
  auto result = service::ResultFromJson(wire_doc);
  SBCE_CHECK_MSG(result.ok(), result.status().ToString());
  return obs::Dump(
      service::ResultToJson(result.value(), /*deterministic_only=*/true));
}

double Micros(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             t1 - t0)
      .count();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

uint64_t CounterFromStats(const obs::JsonValue& stats, const char* name) {
  const auto* warm = stats.Find("warm");
  if (warm == nullptr) return 0;
  const auto* counters = warm->Find("counters");
  if (counters == nullptr) return 0;
  const auto* c = counters->Find(name);
  return c != nullptr ? c->AsU64() : 0;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned sessions = 100;
  unsigned requests = 4;
  unsigned jobs = 0;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (sessions == 0) sessions = 1;
  if (requests == 0) requests = 1;

  const std::string socket_path =
      StrFormat("/tmp/sbce_load_%d.sock", static_cast<int>(getpid()));
  service::Daemon::Options options;
  options.socket_path = socket_path;
  options.jobs = jobs;
  service::Daemon daemon(options);
  Status started = daemon.Start();
  SBCE_CHECK_MSG(started.ok(), started.ToString());

  constexpr size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);

  // Cold phase: build the warm stores once per distinct request and
  // capture the reference deterministic documents.
  std::vector<double> cold_us;
  std::vector<std::string> reference(kMixSize);
  {
    auto client_or = service::Client::Connect(socket_path);
    SBCE_CHECK_MSG(client_or.ok(), client_or.status().ToString());
    auto client = std::move(client_or).value();
    for (size_t m = 0; m < kMixSize; ++m) {
      const auto t0 = Clock::now();
      auto doc = client.AnalyzeJson(MakeRequest(kMix[m]));
      const auto t1 = Clock::now();
      SBCE_CHECK_MSG(doc.ok(), doc.status().ToString());
      cold_us.push_back(Micros(t0, t1));
      reference[m] = DeterministicJson(doc.value());
    }
  }

  // Load phase: concurrent sessions, one connection each, every response
  // diffed against the cold reference.
  std::vector<double> warm_us;
  std::mutex merge_mu;
  bool all_identical = true;
  const auto load_t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (unsigned s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        auto client_or = service::Client::Connect(socket_path);
        SBCE_CHECK_MSG(client_or.ok(), client_or.status().ToString());
        auto client = std::move(client_or).value();
        std::vector<double> local_us;
        bool local_identical = true;
        for (unsigned r = 0; r < requests; ++r) {
          const size_t m = (s + r) % kMixSize;
          const auto t0 = Clock::now();
          auto doc = client.AnalyzeJson(MakeRequest(kMix[m]));
          const auto t1 = Clock::now();
          SBCE_CHECK_MSG(doc.ok(), doc.status().ToString());
          local_us.push_back(Micros(t0, t1));
          local_identical =
              local_identical && DeterministicJson(doc.value()) == reference[m];
        }
        std::lock_guard<std::mutex> lk(merge_mu);
        warm_us.insert(warm_us.end(), local_us.begin(), local_us.end());
        all_identical = all_identical && local_identical;
      });
    }
    for (auto& t : threads) t.join();
  }
  const double load_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                load_t0)
          .count();

  uint64_t decode_hits = 0;
  uint64_t query_hits = 0;
  {
    auto client_or = service::Client::Connect(socket_path);
    SBCE_CHECK_MSG(client_or.ok(), client_or.status().ToString());
    auto client = std::move(client_or).value();
    auto stats = client.Stats();
    SBCE_CHECK_MSG(stats.ok(), stats.status().ToString());
    decode_hits = CounterFromStats(stats.value(), "service.decode_cache.hits");
    query_hits = CounterFromStats(stats.value(), "service.query_store.hits");
    Status shutdown = client.Shutdown();
    SBCE_CHECK_MSG(shutdown.ok(), shutdown.ToString());
  }
  daemon.Wait();

  std::sort(cold_us.begin(), cold_us.end());
  std::sort(warm_us.begin(), warm_us.end());
  const uint64_t total = static_cast<uint64_t>(warm_us.size());
  const double rps = load_seconds > 0 ? total / load_seconds : 0;
  double cold_mean = 0;
  for (double v : cold_us) cold_mean += v;
  cold_mean = cold_us.empty() ? 0 : cold_mean / cold_us.size();
  double warm_mean = 0;
  for (double v : warm_us) warm_mean += v;
  warm_mean = warm_us.empty() ? 0 : warm_mean / warm_us.size();
  const bool warm_path_hit = decode_hits > 0;

  obs::JsonValue doc = obs::JsonValue::Object();
  doc.Set("bench", obs::JsonValue::Str("service_load"));
  bench::StampEnv(doc);
  doc.Set("sessions", obs::JsonValue::U64(sessions));
  doc.Set("requests_per_session", obs::JsonValue::U64(requests));
  doc.Set("daemon_jobs", obs::JsonValue::U64(jobs));
  doc.Set("total_requests", obs::JsonValue::U64(total));
  doc.Set("load_seconds", obs::JsonValue::Double(load_seconds));
  doc.Set("requests_per_second", obs::JsonValue::Double(rps));
  doc.Set("cold_mean_us", obs::JsonValue::Double(cold_mean));
  doc.Set("warm_mean_us", obs::JsonValue::Double(warm_mean));
  doc.Set("warm_p50_us", obs::JsonValue::Double(Percentile(warm_us, 0.50)));
  doc.Set("warm_p99_us", obs::JsonValue::Double(Percentile(warm_us, 0.99)));
  doc.Set("cold_over_warm",
          obs::JsonValue::Double(warm_mean > 0 ? cold_mean / warm_mean : 0));
  doc.Set("decode_cache_hits", obs::JsonValue::U64(decode_hits));
  doc.Set("query_store_hits", obs::JsonValue::U64(query_hits));
  doc.Set("warm_path_served", obs::JsonValue::Bool(warm_path_hit));
  doc.Set("deterministic_identical", obs::JsonValue::Bool(all_identical));

  if (std::FILE* f = std::fopen("BENCH_service_load.json", "w")) {
    std::fprintf(f, "%s\n", obs::Dump(doc).c_str());
    std::fclose(f);
  }
  const bool pass = all_identical && warm_path_hit;
  if (json) {
    std::printf("%s\n", obs::Dump(doc).c_str());
    return pass ? 0 : 1;
  }

  std::printf("=== Service load: %u sessions x %u requests ===\n", sessions,
              requests);
  std::printf("throughput:      %8.1f requests/sec (%llu in %.3fs)\n", rps,
              static_cast<unsigned long long>(total), load_seconds);
  std::printf("warm latency:    p50 %8.0f us   p99 %8.0f us\n",
              Percentile(warm_us, 0.50), Percentile(warm_us, 0.99));
  std::printf("cold latency:    mean %7.0f us  (%.2fx warm mean)\n", cold_mean,
              warm_mean > 0 ? cold_mean / warm_mean : 0.0);
  std::printf("warm stores:     decode hits %llu, query hits %llu%s\n",
              static_cast<unsigned long long>(decode_hits),
              static_cast<unsigned long long>(query_hits),
              warm_path_hit ? "" : "  (NO WARM HITS — bug)");
  std::printf("determinism:     %s\n",
              all_identical ? "all responses byte-identical to cold run"
                            : "MISMATCH (determinism bug)");
  return pass ? 0 : 1;
}
