// Reproduces the paper's §V.C false-positive probe: a negative bomb
// guarded by pow(x, 2) == -1 (constant false). Angr with unloaded
// libraries invents an unconstrained return value for pow and claims the
// bomb reachable; a sound engine does not.
#include <cstdio>

#include "src/bombs/bombs.h"
#include "src/service/api.h"

int main() {
  using namespace sbce;
  std::printf("=== Negative bomb: pow(x,2) == -1 (infeasible path) ===\n\n");
  for (const char* tool : {"Angr-NoLib", "Ideal"}) {
    service::AnalysisRequest request;
    request.bomb = "neg_pow";
    request.profile = tool;
    const auto r = service::Analyze(request).engine;
    std::printf("%-11s claimed reachable: %-3s  validated: %-3s  ->  %s\n",
                tool, r.claimed ? "yes" : "no",
                r.validated ? "yes" : "no",
                r.claimed && !r.validated
                    ? "FALSE POSITIVE (the paper's Angr behaviour)"
                    : (!r.claimed ? "correctly not reported reachable"
                                  : "unexpected"));
  }
  std::printf("\npaper: 'Angr aggressively assigns return values to the pow"
              "\nfunction, and thinks the bomb path can be triggered.'\n");
  return 0;
}
