// Corpus scaling: generates the parametric bomb corpus, times
// generation (including verify-before-admit concrete runs) and the full
// grid at --jobs 1 and --jobs <hardware concurrency>, and rolls the
// outcomes up per family x parameter.
//
// Flags:
//   --seed N        corpus seed (default corpus::kDefaultSeed)
//   --smoke         one parameter per family
//   --jobs A,B,...  worker counts to time (default "1,<hw>"; 0 = hw)
//   --json          machine-readable results to stdout
//
// Every run writes BENCH_corpus_scaling.json to the working directory
// (same shape as the --json output). Grid exports are checked for
// identity across worker counts before any timing is reported.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.h"
#include "src/corpus/corpus.h"
#include "src/obs/json.h"
#include "src/report/scaling.h"
#include "src/tools/profiles.h"
#include "src/tools/runner.h"

int main(int argc, char** argv) {
  using namespace sbce;
  uint64_t seed = corpus::kDefaultSeed;
  bool smoke = false;
  bool json = false;
  std::vector<unsigned> jobs_list;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        jobs_list.push_back(
            static_cast<unsigned>(std::strtoul(p, &end, 10)));
        p = (end != nullptr && *end == ',') ? end + 1 : end;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (jobs_list.empty()) jobs_list = {1, hw};
  for (unsigned& j : jobs_list) {
    if (j == 0) j = hw;
  }

  corpus::CorpusSpec spec = smoke ? corpus::SmokeSpec() : corpus::CorpusSpec{};
  spec.seed = seed;
  const auto g0 = std::chrono::steady_clock::now();
  auto generated = corpus::Generate(spec);
  const auto g1 = std::chrono::steady_clock::now();
  if (!generated.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const corpus::Corpus corpus = std::move(generated).value();
  const double gen_secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(g1 - g0)
          .count();

  const auto cells = tools::CorpusCells(corpus, tools::PaperTools());
  tools::RunOptions options;
  struct Timing {
    unsigned jobs = 0;
    double seconds = 0;
  };
  std::vector<Timing> timings;
  std::string reference;
  bool identical = true;
  tools::GridResult grid;
  for (unsigned jobs : jobs_list) {
    if (!json) {
      std::fprintf(stderr, "running %zu grid cells at --jobs %u...\n",
                   cells.size(), jobs);
    }
    const auto t0 = std::chrono::steady_clock::now();
    grid = tools::RunGrid(cells, options, jobs);
    const auto t1 = std::chrono::steady_clock::now();
    timings.push_back(
        {jobs,
         std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
             .count()});
    const auto fingerprint = obs::Dump(tools::GridToJson(grid));
    if (reference.empty()) {
      reference = fingerprint;
    } else if (fingerprint != reference) {
      identical = false;
    }
  }
  const auto report = report::BuildScalingReport(corpus, grid);

  obs::JsonValue doc = obs::JsonValue::Object();
  {
    doc.Set("bench", obs::JsonValue::Str("corpus_scaling"));
    doc.Set("corpus_seed", obs::JsonValue::U64(corpus.seed));
    doc.Set("corpus_digest", obs::JsonValue::U64(corpus.digest));
    doc.Set("corpus_cells", obs::JsonValue::U64(corpus.cells.size()));
    doc.Set("grid_cells", obs::JsonValue::U64(cells.size()));
    bench::StampEnv(doc);
    doc.Set("generation_seconds", obs::JsonValue::Double(gen_secs));
    doc.Set("outputs_identical", obs::JsonValue::Bool(identical));
    obs::JsonValue runs = obs::JsonValue::Array();
    for (const auto& t : timings) {
      obs::JsonValue run = obs::JsonValue::Object();
      run.Set("jobs", obs::JsonValue::U64(t.jobs));
      run.Set("seconds", obs::JsonValue::Double(t.seconds));
      runs.items.push_back(std::move(run));
    }
    doc.Set("runs", std::move(runs));
    doc.Set("scaling", report::ScalingToJson(report));
  }
  if (std::FILE* f = std::fopen("BENCH_corpus_scaling.json", "w")) {
    std::fprintf(f, "%s\n", obs::Dump(doc).c_str());
    std::fclose(f);
  }
  if (json) {
    std::printf("%s\n", obs::Dump(doc).c_str());
    return identical ? 0 : 1;
  }

  std::printf("=== Corpus scaling (%zu bombs, %zu grid cells, hw=%u) ===\n",
              corpus.cells.size(), cells.size(), hw);
  std::printf("generation + admission: %.2fs\n", gen_secs);
  std::printf("%8s  %10s  %8s\n", "jobs", "seconds", "speedup");
  const double base = timings.empty() ? 0.0 : timings.front().seconds;
  for (const auto& t : timings) {
    std::printf("%8u  %10.2f  %7.2fx\n", t.jobs, t.seconds,
                t.seconds > 0 ? base / t.seconds : 0.0);
  }
  std::printf("outputs identical across worker counts: %s\n\n",
              identical ? "yes" : "NO (determinism bug)");
  std::printf("%s", report::RenderScalingReport(report).c_str());
  return identical ? 0 : 1;
}
