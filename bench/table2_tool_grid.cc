// Reproduces Table II: the 22-bomb × 4-tool outcome grid.
//
// Prints every cell (our observed outcome next to the paper's label), the
// per-tool success counts (paper: Angr 4 across both configurations,
// BAP 2, Triton 1), the match rate, and the per-cell failure attributions
// (stage + pc + reason). This is the headline experiment.
//
// Flags:
//   --baseline      run with the query pipeline's optimizations disabled
//                   (cache, slicing, incremental sessions, portfolio,
//                   parallel dispatch)
//                   (no cache, no slicing, serial dispatch); the grid must
//                   come out identical either way.
//   --json          emit the grid as a single JSON document on stdout
//                   (cells, paper labels, attribution records) instead of
//                   the ASCII tables.
//   --trace FILE    stream observability records (engine rounds, claims,
//                   VM syscalls/faults, solver batches, diagnostics) to
//                   FILE as JSON lines.
//   --jobs N        run N cells concurrently (0 = hardware concurrency;
//                   default 1). Every output — grid, --json, --trace — is
//                   identical for every N: cells are independent and
//                   results/traces commit in (bomb, tool) order.
//   --no-checkpoints  disable checkpoint-based re-exploration (every
//                   round runs from scratch). Output is identical either
//                   way; only wall-clock moves.
//   --no-presolve   disable the abstract pre-solver (known bits +
//                   intervals). Output is identical either way; only
//                   wall-clock and presolve_* perf counters move.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "src/obs/jsonl.h"
#include "src/tools/runner.h"

int main(int argc, char** argv) {
  using namespace sbce;
  tools::RunOptions options;
  bool json = false;
  unsigned jobs = 1;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0) {
      options.baseline_pipeline = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-checkpoints") == 0) {
      options.no_checkpoints = true;
    } else if (std::strcmp(argv[i], "--no-presolve") == 0) {
      options.no_presolve = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  std::ofstream trace_file;
  std::unique_ptr<obs::JsonlSink> sink;
  if (trace_path != nullptr) {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open trace file: %s\n", trace_path);
      return 2;
    }
    sink = std::make_unique<obs::JsonlSink>(&trace_file);
    options.trace_sink = sink.get();
  }

  const auto tools = tools::PaperTools();
  if (!json) {
    if (options.baseline_pipeline) {
      std::printf("(baseline mode: query cache, slicing, incremental "
                  "sessions, portfolio and parallel dispatch disabled)\n");
    }
    std::printf(
        "=== Table II: concolic tools vs the logic-bomb dataset ===\n");
    std::printf("running %zu bombs x %zu tools (heavy solver cells take a "
                "while)...\n\n",
                bombs::TableTwoBombs().size(), tools.size());
  }
  // Every cell routes through the unified analysis API (RunGrid →
  // service::Analyze); the grid stays byte-identical to the pre-service
  // runner at every --jobs and with --baseline.
  auto grid = tools::RunGrid(tools::TableTwoCells(tools), options, jobs);

  if (json) {
    std::printf("%s\n", obs::Dump(tools::GridToJson(grid)).c_str());
    return 0;
  }

  std::printf("%s\n", tools::RenderTableTwo(grid, tools).c_str());

  // The paper's headline: distinct bombs solved by Angr across both
  // configurations.
  int angr_distinct = 0;
  const auto bombs_list = bombs::TableTwoBombs();
  for (size_t b = 0; b < bombs_list.size(); ++b) {
    const auto& angr = grid.cells[b * tools.size() + 2];
    const auto& nolib = grid.cells[b * tools.size() + 3];
    if (angr.outcome == tools::Outcome::kOk ||
        nolib.outcome == tools::Outcome::kOk) {
      ++angr_distinct;
    }
  }
  std::printf("Angr distinct bombs solved (either configuration): %d "
              "(paper: 4)\n",
              angr_distinct);
  if (sink != nullptr) {
    std::printf("observability trace: %llu records -> %s\n",
                static_cast<unsigned long long>(sink->records()), trace_path);
  }
  return 0;
}
