// Reproduces Table II: the 22-bomb × 4-tool outcome grid.
//
// Prints every cell (our observed outcome next to the paper's label), the
// per-tool success counts (paper: Angr 4 across both configurations,
// BAP 2, Triton 1), and the match rate. This is the headline experiment.
#include <cstdio>
#include <cstring>

#include "src/tools/runner.h"

int main(int argc, char** argv) {
  using namespace sbce;
  // --baseline: run with the query pipeline's optimizations disabled
  // (no cache, no slicing, serial dispatch). The grid must come out
  // identical either way — diff the two outputs to check.
  bool baseline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0) baseline = true;
  }
  auto tools = tools::PaperTools();
  if (baseline) {
    for (auto& tool : tools) {
      tool.engine.budgets.solver.cache_queries = false;
      tool.engine.budgets.solver.slice_independent = false;
      tool.engine.budgets.solver_threads = 1;
    }
    std::printf("(baseline mode: query cache, slicing and parallel "
                "dispatch disabled)\n");
  }
  std::printf("=== Table II: concolic tools vs the logic-bomb dataset ===\n");
  std::printf("running %zu bombs x %zu tools (heavy solver cells take a "
              "while)...\n\n",
              bombs::TableTwoBombs().size(), tools.size());
  auto grid = tools::RunTableTwo(tools);
  std::printf("%s\n", tools::RenderTableTwo(grid, tools).c_str());

  // The paper's headline: distinct bombs solved by Angr across both
  // configurations.
  int angr_distinct = 0;
  const auto bombs_list = bombs::TableTwoBombs();
  for (size_t b = 0; b < bombs_list.size(); ++b) {
    const auto& angr = grid.cells[b * tools.size() + 2];
    const auto& nolib = grid.cells[b * tools.size() + 3];
    if (angr.outcome == tools::Outcome::kOk ||
        nolib.outcome == tools::Outcome::kOk) {
      ++angr_distinct;
    }
  }
  std::printf("Angr distinct bombs solved (either configuration): %d "
              "(paper: 4)\n",
              angr_distinct);
  return 0;
}
