// Reproduces Table I: which symbolic-reasoning error stages each challenge
// can incur. Derived from the dataset's Table II labels (the stages the
// paper observed across tools for that challenge), so this binary also
// cross-checks dataset metadata consistency.
#include <cstdio>
#include <map>
#include <set>

#include "src/bombs/bombs.h"
#include "src/report/table.h"

int main() {
  using namespace sbce;
  // Paper Table I ground truth per challenge category.
  const std::map<bombs::Category, std::set<std::string>> paper = {
      {bombs::Category::kSymbolicDeclaration, {"Es0", "Es1", "Es2", "Es3"}},
      {bombs::Category::kCovertPropagation, {"Es2", "Es3"}},
      {bombs::Category::kParallel, {"Es2", "Es3"}},
      {bombs::Category::kSymbolicArray, {"Es3"}},
      {bombs::Category::kContextual, {"Es3"}},
      {bombs::Category::kSymbolicJump, {"Es3"}},
      {bombs::Category::kFloatingPoint, {"Es3"}},
  };

  // Observed: stages appearing in the dataset's expected outcomes.
  std::map<bombs::Category, std::set<std::string>> observed;
  for (const bombs::BombSpec* bomb : bombs::TableTwoBombs()) {
    for (const auto& label : bomb->expected) {
      if (label.size() >= 3 && label.substr(0, 2) == "Es") {
        observed[bomb->category].insert(label);
      }
    }
  }

  report::AsciiTable table;
  table.SetHeader({"Challenge", "Es0", "Es1", "Es2", "Es3",
                   "stages seen in our grid"});
  for (const auto& [category, stages] : paper) {
    std::vector<std::string> row;
    row.push_back(std::string(bombs::CategoryName(category)));
    for (const char* stage : {"Es0", "Es1", "Es2", "Es3"}) {
      row.push_back(stages.count(stage) ? "x" : "-");
    }
    std::string seen;
    for (const auto& s : observed[category]) {
      if (!seen.empty()) seen += ",";
      seen += s;
    }
    row.push_back(seen);
    table.AddRow(std::move(row));
  }
  std::printf("=== Table I: challenges and the error stages they incur ===\n");
  std::printf("('x' = the paper marks the stage as possible; last column = "
              "stages our dataset's Table II labels actually exhibit)\n\n");
  std::printf("%s", table.Render().c_str());
  std::printf("\nNote: Table I marks the *possible* stages; any observed\n"
              "stage must be a subset of or adjacent to the marked ones\n"
              "(earlier-stage failures propagate into later stages).\n");
  return 0;
}
