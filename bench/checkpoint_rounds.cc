// Checkpoint-based re-exploration: rounds-vs-wallclock on a deep-prefix
// bomb family.
//
// Each family member runs a ~120k-instruction input-independent prefix
// (the kind of delay/initialization loop the paper's timing bombs use)
// before a chain of K byte-equality guards, so solving it takes K+1
// concolic rounds and every round after the first re-executes the same
// prefix. With checkpoints the engine resumes each round from the deepest
// snapshot recorded before the changed byte is consumed, paying only the
// short suffix; without, every round starts from scratch. Both runs must
// agree bit-for-bit on the recovered input — the speedup is only reported
// after that check passes.
//
// Writes BENCH_checkpoint.json (per-K rounds/wallclock/speedup curve plus
// the environment stamp) and prints an ASCII table.
//
// Flags:
//   --json   print the artifact JSON to stdout instead of the table
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_env.h"
#include "src/isa/assembler.h"
#include "src/obs/json.h"
#include "src/support/status.h"
#include "src/support/str.h"
#include "src/service/api.h"

namespace {

using namespace sbce;

/// K chained guards behind a 120k-instruction delay loop: bomb iff
/// argv[1][i] == 'A' + i for every i < K.
std::string FamilyMember(int k) {
  std::string src = R"(
  .entry main
  main:
    movi r6, 60000
  delay:
    subi r6, r6, 1
    bnz r6, delay
    ld8 r3, [r2+8]
)";
  for (int i = 0; i < k; ++i) {
    src += StrFormat(
        "    ld1 r4, [r3+%d]\n"
        "    cmpeqi r5, r4, %d\n"
        "    bz r5, exit\n",
        i, 'A' + i);
  }
  src += R"(  bomb:
    sys 16
  exit:
    movi r1, 0
    sys 0
)";
  return src;
}

core::EngineConfig FamilyConfig() {
  core::EngineConfig cfg;
  cfg.symex.addr_policy = symex::SymAddrPolicy::kExpandWindow;
  cfg.symex.jump_policy = symex::SymJumpPolicy::kSolveTargets;
  cfg.sources.argv_max_len = 0;  // symbolic bytes = seed string length
  return cfg;
}

struct Row {
  int guards = 0;
  uint64_t rounds = 0;
  uint64_t hits = 0;
  uint64_t pages_copied = 0;
  double seconds_on = 0;
  double seconds_off = 0;
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<Row> rows;
  for (int k : {2, 4, 6, 8}) {
    auto img = isa::Assemble(FamilyMember(k));
    SBCE_CHECK_MSG(img.ok(), img.status().ToString());
    const isa::BinaryImage image = std::move(img).value();
    const auto target = image.FindSymbol("bomb");
    SBCE_CHECK(target.has_value());
    const std::vector<std::string> seed = {"prog", std::string(k, 'z')};

    auto timed = [&](bool no_checkpoints, double* seconds) {
      service::AnalysisRequest request;
      request.local_image = &image;
      request.seed_argv = seed;
      request.target_pc = *target;
      request.custom_engine = FamilyConfig();
      request.no_checkpoints = no_checkpoints;
      const auto t0 = std::chrono::steady_clock::now();
      auto result = service::Analyze(request).engine;
      *seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
      return result;
    };

    Row row;
    row.guards = k;
    const auto on = timed(false, &row.seconds_on);
    const auto off = timed(true, &row.seconds_off);
    row.rounds = on.metrics.rounds;
    row.hits = on.metrics.checkpoint_hits;
    row.pages_copied = on.metrics.checkpoint_pages_copied;
    row.identical = on.validated && off.validated &&
                    on.claimed_argv == off.claimed_argv &&
                    on.explored_inputs == off.explored_inputs &&
                    on.metrics.rounds == off.metrics.rounds;
    rows.push_back(row);
  }

  double total_on = 0;
  double total_off = 0;
  bool all_identical = true;
  for (const auto& r : rows) {
    total_on += r.seconds_on;
    total_off += r.seconds_off;
    all_identical = all_identical && r.identical;
  }
  const double speedup = total_on > 0 ? total_off / total_on : 0;

  obs::JsonValue doc = obs::JsonValue::Object();
  doc.Set("bench", obs::JsonValue::Str("checkpoint_rounds"));
  bench::StampEnv(doc);
  doc.Set("outputs_identical", obs::JsonValue::Bool(all_identical));
  doc.Set("overall_speedup", obs::JsonValue::Double(speedup));
  obs::JsonValue runs = obs::JsonValue::Array();
  for (const auto& r : rows) {
    obs::JsonValue run = obs::JsonValue::Object();
    run.Set("guards", obs::JsonValue::U64(static_cast<uint64_t>(r.guards)));
    run.Set("rounds", obs::JsonValue::U64(r.rounds));
    run.Set("checkpoint_hits", obs::JsonValue::U64(r.hits));
    run.Set("pages_copied", obs::JsonValue::U64(r.pages_copied));
    run.Set("seconds_checkpoints", obs::JsonValue::Double(r.seconds_on));
    run.Set("seconds_scratch", obs::JsonValue::Double(r.seconds_off));
    run.Set("speedup",
            obs::JsonValue::Double(
                r.seconds_on > 0 ? r.seconds_off / r.seconds_on : 0));
    runs.items.push_back(std::move(run));
  }
  doc.Set("runs", std::move(runs));

  if (std::FILE* f = std::fopen("BENCH_checkpoint.json", "w")) {
    std::fprintf(f, "%s\n", obs::Dump(doc).c_str());
    std::fclose(f);
  }
  if (json) {
    std::printf("%s\n", obs::Dump(doc).c_str());
    return all_identical ? 0 : 1;
  }

  std::printf("=== Checkpoint re-exploration: rounds vs wall-clock ===\n");
  std::printf("%6s  %6s  %5s  %12s  %12s  %8s\n", "guards", "rounds", "hits",
              "ckpt (s)", "scratch (s)", "speedup");
  for (const auto& r : rows) {
    std::printf("%6d  %6llu  %5llu  %12.3f  %12.3f  %7.2fx\n", r.guards,
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.hits), r.seconds_on,
                r.seconds_off,
                r.seconds_on > 0 ? r.seconds_off / r.seconds_on : 0.0);
  }
  std::printf("overall: %.2fx, outputs identical: %s\n", speedup,
              all_identical ? "yes" : "NO (determinism bug)");
  return all_identical ? 0 : 1;
}
