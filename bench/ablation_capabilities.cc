// Ablation: which single mechanism buys which Table II cell.
//
// Starting from the Angr profile, toggle one capability at a time and
// report the outcome change on the bomb that capability targets. This
// substantiates DESIGN.md's mechanism-to-cell mapping: each success in the
// grid is attributable to one engine feature, not tuning.
#include <cstdio>

#include "src/service/api.h"
#include "src/tools/profiles.h"

int main() {
  using namespace sbce;
  using tools::Outcome;
  using tools::OutcomeLabel;

  struct Ablation {
    const char* bomb;
    const char* capability;
    void (*disable)(core::EngineConfig&);
  };
  const Ablation ablations[] = {
      {"arr_one", "symbolic memory map (ExpandWindow -> Concretize)",
       [](core::EngineConfig& e) {
         e.symex.addr_policy = symex::SymAddrPolicy::kConcretize;
       }},
      {"svd_argvlen", "variable-length argv window (16 -> fixed)",
       [](core::EngineConfig& e) { e.sources.argv_max_len = 0; }},
      {"csp_stack", "push/pop lifting (add to unsupported set)",
       [](core::EngineConfig& e) {
         e.symex.unsupported_opcodes.insert(isa::Opcode::kPush);
         e.symex.unsupported_opcodes.insert(isa::Opcode::kPop);
       }},
      {"svd_syscall", "syscall simulation (Simulate -> ConcreteTrace)",
       [](core::EngineConfig& e) {
         e.symex.syscall_model = symex::SyscallModel::kConcreteTrace;
       }},
      {"jmp_direct", "jump resolution (BuggyResolve -> Unmodeled)",
       [](core::EngineConfig& e) {
         e.symex.jump_policy = symex::SymJumpPolicy::kUnmodeled;
       }},
  };

  std::printf("=== Ablation: single-capability toggles on the Angr profile "
              "===\n\n");
  std::printf("%-12s %-52s %-8s %-8s\n", "bomb", "capability disabled",
              "with", "without");
  for (const auto& ab : ablations) {
    service::AnalysisRequest with;
    with.bomb = ab.bomb;
    with.profile = "Angr";
    auto with_cell = service::Analyze(with);

    // The ablated configuration is the custom-engine escape hatch: a
    // mutated profile has no name the service could resolve.
    service::AnalysisRequest without;
    without.bomb = ab.bomb;
    without.profile = "Angr~";  // so expectations don't apply
    auto ablated = tools::Angr().engine;
    ab.disable(ablated);
    without.custom_engine = std::move(ablated);
    auto without_cell = service::Analyze(without);

    std::printf("%-12s %-52s %-8s %-8s\n", ab.bomb, ab.capability,
                std::string(OutcomeLabel(with_cell.outcome)).c_str(),
                std::string(OutcomeLabel(without_cell.outcome)).c_str());
  }
  std::printf("\nEach row shows the cell the capability is responsible for "
              "degrading when removed.\n");
  return 0;
}
