// Incremental-session macro-benchmark: the batch-solve workload the
// warm CDCL sessions were built for.
//
// One engine round on a deep path produces a batch of branch-negation
// queries that all restate the same path-constraint prefix and differ
// only in the final conjunct. Unlike the query_cache_micro workload, the
// prefix here is one variable-CONNECTED chain — independence slicing
// cannot split it, and every query pins a different value into the chain
// so neither the exact- nor the model-reuse cache rule can answer it.
// That is exactly the case PR 6's pipeline still solved cold, re-encoding
// the full prefix circuit per query; the incremental session encodes it
// once and decides each query under an assumption literal.
//
// Modes compared (all solving the identical batch):
//   cold      — CheckSat per query (the pre-pipeline seed path)
//   pr6       — pipeline with cache + slicing, incremental/portfolio off
//   warm      — pipeline with incremental sessions + portfolio (default)
//
// Emits BENCH_solver_incremental.json (bench_env-stamped). Acceptance:
// warm >= 5x over the pr6 baseline on batch wall-clock.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_env.h"
#include "src/solver/pipeline.h"
#include "src/solver/solver.h"
#include "src/support/status.h"

namespace {

using namespace sbce;
using namespace sbce::solver;

constexpr int kChain = 24;    // prefix links (one 16-bit multiplier each)
constexpr int kQueries = 48;  // branch-negation candidates in the batch

// Path prefix: a connected chain x_{g+1} == x_g * x_g + c_g (mod 2^16).
// Every constraint shares a variable with the next, so the whole batch is
// one slice component and one session group.
std::vector<ExprRef> BuildPrefix(ExprPool& pool) {
  std::vector<ExprRef> prefix;
  for (int g = 0; g + 1 < kChain; ++g) {
    ExprRef cur = pool.Var("x" + std::to_string(g), 16);
    ExprRef next = pool.Var("x" + std::to_string(g + 1), 16);
    prefix.push_back(pool.Eq(
        next, pool.Add(pool.Mul(cur, cur), pool.Const(17 * g + 3, 16))));
  }
  // A hard multiplicative pin on the head of the chain (x0 = 39 is the
  // only root of 1521 below 200). Cold runs repeat this CDCL search for
  // every query; the warm session keeps the prefix assertions' guard
  // literals alive across queries, so the clauses learned cracking it
  // once answer it for the rest of the batch.
  ExprRef x0 = pool.Var("x0", 16);
  prefix.push_back(pool.Eq(pool.Mul(x0, x0), pool.Const(1521, 16)));
  prefix.push_back(pool.Ult(x0, pool.Const(200, 16)));
  return prefix;
}

// Query i: the full prefix plus a conjunct pinning x0's low byte to a
// value no earlier query used. With x0 forced to 39 by the prefix, query
// 39 is SAT and the rest are UNSAT — the realistic branch-negation mix
// (most negated branches are infeasible). Distinct suffixes defeat the
// cache's exact rule, distinct full sets defeat the unsat-subset rule.
std::vector<QueryPipeline::Query> BuildWorkload(ExprPool& pool) {
  const std::vector<ExprRef> prefix = BuildPrefix(pool);
  std::vector<QueryPipeline::Query> queries;
  ExprRef x0 = pool.Var("x0", 16);
  for (int i = 0; i < kQueries; ++i) {
    QueryPipeline::Query q = prefix;
    q.push_back(pool.Eq(pool.And(x0, pool.Const(0xFF, 16)),
                        pool.Const(static_cast<uint64_t>(i), 16)));
    queries.push_back(std::move(q));
  }
  return queries;
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  ExprPool pool;
  const auto queries = BuildWorkload(pool);
  std::printf("=== incremental solver benchmark: chain %d, %d queries ===\n",
              kChain, kQueries);

  // --- Cold seed path: CheckSat per query ------------------------------
  std::vector<SolveStatus> cold_status;
  const auto t_cold = std::chrono::steady_clock::now();
  for (const auto& q : queries) cold_status.push_back(CheckSat(q).status);
  const double cold_ms = MillisSince(t_cold);

  // --- PR 6 pipeline: cache + slicing, no warm sessions ----------------
  PipelineOptions pr6_opts;
  pr6_opts.threads = 1;
  pr6_opts.solver.incremental_batch = false;
  pr6_opts.solver.portfolio = false;
  QueryPipeline pr6(pr6_opts);
  const auto t_pr6 = std::chrono::steady_clock::now();
  const auto pr6_results = pr6.SolveBatch(queries);
  const double pr6_ms = MillisSince(t_pr6);

  // --- Incremental sessions + portfolio (current default) --------------
  PipelineOptions warm_opts;
  warm_opts.threads = 1;
  QueryPipeline warm(warm_opts);
  const auto t_warm = std::chrono::steady_clock::now();
  const auto warm_results = warm.SolveBatch(queries);
  const double warm_ms = MillisSince(t_warm);

  for (size_t i = 0; i < queries.size(); ++i) {
    SBCE_CHECK_MSG(pr6_results[i].status == cold_status[i] &&
                       warm_results[i].status == cold_status[i],
                   "incremental pipeline verdict diverged from cold path");
  }

  const PipelineStats stats = warm.stats();
  const double speedup_pr6 = pr6_ms / warm_ms;
  const double speedup_cold = cold_ms / warm_ms;

  std::printf("cold per-query    : %8.1f ms\n", cold_ms);
  std::printf("pr6 pipeline      : %8.1f ms\n", pr6_ms);
  std::printf("warm incremental  : %8.1f ms  (%.2fx vs pr6, %.2fx vs cold)\n",
              warm_ms, speedup_pr6, speedup_cold);
  std::printf("sessions %llu, warm solves %llu, fallbacks %llu\n",
              static_cast<unsigned long long>(stats.incremental_sessions),
              static_cast<unsigned long long>(stats.incremental_solves),
              static_cast<unsigned long long>(stats.incremental_fallbacks));

  std::FILE* json = std::fopen("BENCH_solver_incremental.json", "w");
  SBCE_CHECK_MSG(json != nullptr,
                 "cannot write BENCH_solver_incremental.json");
  std::fprintf(json,
               "{\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"build_preset\": \"%s\",\n"
               "  \"chain\": %d,\n"
               "  \"queries\": %d,\n"
               "  \"cold_ms\": %.3f,\n"
               "  \"pr6_pipeline_ms\": %.3f,\n"
               "  \"incremental_ms\": %.3f,\n"
               "  \"incremental_sessions\": %llu,\n"
               "  \"incremental_solves\": %llu,\n"
               "  \"speedup_vs_pr6\": %.3f,\n"
               "  \"speedup_vs_cold\": %.3f\n"
               "}\n",
               bench::HardwareConcurrency(), bench::BuildPreset(), kChain,
               kQueries, cold_ms, pr6_ms, warm_ms,
               static_cast<unsigned long long>(stats.incremental_sessions),
               static_cast<unsigned long long>(stats.incremental_solves),
               speedup_pr6, speedup_cold);
  std::fclose(json);
  std::printf("wrote BENCH_solver_incremental.json\n");

  return speedup_pr6 >= 5.0 ? 0 : 1;
}
