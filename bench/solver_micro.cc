// Solver substrate microbenchmarks (google-benchmark): CDCL on structured
// instances, bit-blasting throughput, end-to-end CheckSat latency for the
// constraint shapes the bombs produce.
#include <benchmark/benchmark.h>

#include "src/solver/bitblast.h"
#include "src/solver/pipeline.h"
#include "src/solver/sat.h"
#include "src/solver/solver.h"
#include "src/support/rng.h"

namespace {

using namespace sbce::solver;

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SatSolver s;
    std::vector<std::vector<int>> p(holes + 1, std::vector<int>(holes));
    for (auto& row : p) {
      for (auto& v : row) v = s.NewVar();
    }
    for (int i = 0; i <= holes; ++i) {
      std::vector<Lit> clause;
      for (int h = 0; h < holes; ++h) clause.push_back(MkLit(p[i][h]));
      s.AddClause(clause);
    }
    for (int h = 0; h < holes; ++h) {
      for (int i = 0; i <= holes; ++i) {
        for (int j = i + 1; j <= holes; ++j) {
          s.AddClause({MkLit(p[i][h], true), MkLit(p[j][h], true)});
        }
      }
    }
    benchmark::DoNotOptimize(s.Solve());
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7);

void BM_SatManyDecisions(benchmark::State& state) {
  // Decision-dominated instance: a chain of implications that never
  // conflicts, so Solve() is V decisions back to back. This is the
  // workload where the old O(V) PickBranchLit scan cost O(V^2) per solve
  // and the indexed activity heap costs O(V log V).
  const int vars = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SatSolver s;
    std::vector<int> v(vars);
    for (auto& x : v) x = s.NewVar();
    for (int i = 0; i + 1 < vars; ++i) {
      s.AddClause({MkLit(v[i], true), MkLit(v[i + 1])});
    }
    benchmark::DoNotOptimize(s.Solve());
    state.counters["decisions"] = static_cast<double>(s.decisions());
  }
}
BENCHMARK(BM_SatManyDecisions)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_BlastMul(benchmark::State& state) {
  const unsigned width = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    ExprPool pool;
    SatSolver sat;
    BitBlaster bb(&sat);
    ExprRef x = pool.Var("x", width);
    ExprRef y = pool.Var("y", width);
    auto status = bb.AssertTrue(
        pool.Eq(pool.Mul(x, y), pool.Const(12345, width)));
    benchmark::DoNotOptimize(status.ok());
    state.counters["sat_vars"] =
        static_cast<double>(sat.NumVars());
  }
}
BENCHMARK(BM_BlastMul)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CheckSatLinear(benchmark::State& state) {
  // The shape most bombs produce: byte equalities over argv.
  for (auto _ : state) {
    ExprPool pool;
    std::vector<ExprRef> as;
    for (int i = 0; i < 8; ++i) {
      ExprRef b = pool.Var("b" + std::to_string(i), 8);
      as.push_back(pool.Eq(pool.Add(b, pool.Const(i, 8)),
                           pool.Const(0x41 + 2 * i, 8)));
    }
    benchmark::DoNotOptimize(CheckSat(as).status);
  }
}
BENCHMARK(BM_CheckSatLinear);

void BM_CheckSatQuadratic(benchmark::State& state) {
  // One round of the rand mixing step: the hard-constraint shape.
  const unsigned rounds = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    ExprPool pool;
    ExprRef x = pool.Var("x", 64);
    ExprRef v = x;
    for (unsigned r = 0; r < rounds; ++r) {
      v = pool.Xor(v, pool.Binary(Kind::kLShr, v, pool.Const(13, 64)));
      ExprRef odd = pool.Or(pool.Binary(Kind::kLShr, v, pool.Const(7, 64)),
                            pool.Const(1, 64));
      v = pool.And(pool.Add(pool.Mul(v, odd), pool.Const(12345, 64)),
                   pool.Const(0x7fffffff, 64));
    }
    std::vector<ExprRef> as = {pool.Eq(v, pool.Const(987654321, 64))};
    SolverOptions opts;
    opts.max_conflicts = 200;  // bounded probe, not a full solve
    benchmark::DoNotOptimize(CheckSat(as, opts).status);
  }
}
BENCHMARK(BM_CheckSatQuadratic)->Arg(1)->Arg(2)->Arg(4);

void BM_PipelineParallelDispatch(benchmark::State& state) {
  // A round's worth of independent branch-negation queries pushed through
  // the pipeline's dispatch pool. Cache off so every iteration measures
  // raw parallel solve throughput; scaling over Arg = thread count.
  const unsigned threads = static_cast<unsigned>(state.range(0));
  ExprPool pool;
  std::vector<QueryPipeline::Query> batch;
  for (int q = 0; q < 16; ++q) {
    ExprRef x = pool.Var("x" + std::to_string(q), 16);
    batch.push_back({pool.Eq(pool.Mul(x, x),
                             pool.Const(1521 + 17 * q, 16)),
                     pool.Ult(x, pool.Const(200, 16))});
  }
  for (auto _ : state) {
    PipelineOptions opts;
    opts.solver.cache_queries = false;
    opts.threads = threads;
    QueryPipeline pipeline(opts);
    benchmark::DoNotOptimize(pipeline.SolveBatch(batch).size());
  }
}
BENCHMARK(BM_PipelineParallelDispatch)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FpSearchRounding(benchmark::State& state) {
  // The fp_round bomb's condition: find a tiny positive double absorbed
  // by 1024.0 + x.
  for (auto _ : state) {
    ExprPool pool;
    ExprRef x = pool.Var("x", 64);
    const uint64_t k1024 = 0x4090000000000000ull;
    std::vector<ExprRef> as = {
        pool.Binary(Kind::kFEq,
                    pool.Binary(Kind::kFAdd, pool.Const(k1024, 64), x),
                    pool.Const(k1024, 64)),
        pool.Binary(Kind::kFLt, pool.Const(0, 64), x),
    };
    benchmark::DoNotOptimize(CheckSat(as).status);
  }
}
BENCHMARK(BM_FpSearchRounding);

}  // namespace

BENCHMARK_MAIN();
