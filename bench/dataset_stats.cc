// Dataset statistics (§V.A): bomb count per challenge, binary sizes.
// The paper's binaries span 10K-25K bytes with a 14K median; ours bundle
// the guest library into every image, so the shape (small, tightly
// clustered) is the comparable property.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "src/bombs/bombs.h"
#include "src/report/table.h"

int main() {
  using namespace sbce;
  std::map<bombs::Category, int> per_category;
  std::vector<size_t> sizes;
  report::AsciiTable table;
  table.SetHeader({"bomb", "category", "binary bytes", "text instrs"});
  for (const bombs::BombSpec* bomb : bombs::TableTwoBombs()) {
    auto image = bombs::BuildBomb(*bomb);
    const size_t size = image.Serialize().size();
    sizes.push_back(size);
    ++per_category[bomb->category];
    size_t text_bytes = 0;
    for (const auto& s : image.sections()) {
      if (s.flags & isa::kSectionExec) text_bytes += s.data.size();
    }
    table.AddRow({bomb->id, std::string(CategoryName(bomb->category)),
                  std::to_string(size), std::to_string(text_bytes / 8)});
  }
  std::printf("=== Dataset statistics (paper section V.A) ===\n\n%s\n",
              table.Render().c_str());

  std::sort(sizes.begin(), sizes.end());
  std::printf("bombs: %zu (paper: 22)\n", sizes.size());
  std::printf("binary sizes: min %zu, median %zu, max %zu bytes\n",
              sizes.front(), sizes[sizes.size() / 2], sizes.back());
  std::printf("paper band: 10K-25K bytes, median 14K "
              "(x86_64 ELF vs our SBX images)\n\n");
  std::printf("bombs per challenge:\n");
  for (const auto& [category, count] : per_category) {
    std::printf("  %-30s %d\n",
                std::string(CategoryName(category)).c_str(), count);
  }
  return 0;
}
