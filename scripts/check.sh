#!/usr/bin/env bash
# Tier-1 verification: configure + build + run the test suite under a
# CMake preset.
#
# Usage: check.sh [--preset NAME] [--tests REGEX] [--service-smoke]
#                  [--corpus-smoke] [NAME]
#   --preset NAME     preset to configure/build/test (release, tsan, asan)
#   --tests REGEX     only run ctest cases matching REGEX (default: all)
#   --service-smoke   after the tests, start the analysis daemon, send three
#                     requests (one a repeat, which must come back
#                     byte-identical from the warm stores) and cross-check
#                     the outcomes against table2_tool_grid
#   --corpus-smoke    after the tests, generate the smoke corpus, run it
#                     through the grid at --jobs 1 and --jobs 8 (documents
#                     must be byte-identical, also with --no-presolve) and
#                     assert every positive cell solves under Ideal with no
#                     negative ever OK
#   NAME              positional preset, kept for back-compat with CI and
#                     muscle memory (check.sh tsan)
set -euo pipefail

preset="release"
tests_regex=""
service_smoke=0
corpus_smoke=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset)
      [[ $# -ge 2 ]] || { echo "check.sh: --preset needs a value" >&2; exit 2; }
      preset="$2"
      shift 2
      ;;
    --tests)
      [[ $# -ge 2 ]] || { echo "check.sh: --tests needs a value" >&2; exit 2; }
      tests_regex="$2"
      shift 2
      ;;
    --service-smoke)
      service_smoke=1
      shift
      ;;
    --corpus-smoke)
      corpus_smoke=1
      shift
      ;;
    -h|--help)
      grep '^#' "$0" | sed 's/^# \{0,1\}//' | tail -n +2
      exit 0
      ;;
    -*)
      echo "check.sh: unknown flag: $1" >&2
      exit 2
      ;;
    *)
      preset="$1"
      shift
      ;;
  esac
done

cd "$(dirname "$0")/.."

cmake --preset "$preset"
cmake --build --preset "$preset"
if [[ -n "$tests_regex" ]]; then
  ctest --preset "$preset" -R "$tests_regex"
else
  ctest --preset "$preset"
fi

# CSP hard-instance cross-check: the incremental/portfolio default path
# must agree with the baseline per-query path on search-heavy instances.
if [[ "$preset" == "release" && -z "$tests_regex" ]]; then
  build/bench/solver_csp --smoke
fi

# Corpus smoke: the generated-bomb pipeline end to end. The --json
# document must be byte-identical across worker counts, every positive
# cell must solve under the Ideal profile, and no tool may ever claim a
# validated trigger for a negative (infeasible) cell.
if [[ "$corpus_smoke" == 1 ]]; then
  case "$preset" in
    tsan) bdir="build-tsan" ;;
    asan) bdir="build-asan" ;;
    *)    bdir="build" ;;
  esac
  echo "== corpus smoke: sbce_corpus determinism + ground-truth gates =="
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "$tmpdir"' EXIT
  "$bdir/cli/sbce_corpus" --smoke --json --jobs 1 > "$tmpdir/c1.json"
  "$bdir/cli/sbce_corpus" --smoke --json --jobs 8 > "$tmpdir/c8.json"
  cmp "$tmpdir/c1.json" "$tmpdir/c8.json" \
    || { echo "check.sh: corpus grid diverged across --jobs" >&2; exit 1; }
  # The abstract pre-solver is perf-only: the grid document must not
  # change when it is disabled.
  "$bdir/cli/sbce_corpus" --smoke --json --jobs 1 --no-presolve \
    > "$tmpdir/cnp.json"
  cmp "$tmpdir/c1.json" "$tmpdir/cnp.json" \
    || { echo "check.sh: corpus grid changed under --no-presolve" >&2; exit 1; }
  python3 - "$tmpdir/c1.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
scaling = doc["scaling"]
ok = True
if scaling["false_positives"] != 0:
    print(f"FAIL: {scaling['false_positives']} negative cell(s) came back OK")
    ok = False
ideal_unsolved = [
    f"{r['family']}/{r['param']}"
    for r in scaling["rows"]
    if r["tool"] == "Ideal" and r["solved"] != r["positives"]
]
if ideal_unsolved:
    print(f"FAIL: Ideal left positives unsolved: {ideal_unsolved}")
    ok = False
if ok:
    print(f"corpus smoke: {doc['corpus_cells']} cells, "
          f"{scaling['expected_matches']}/{scaling['positives']} expected, "
          "0 negative false positives, Ideal solved every positive")
sys.exit(0 if ok else 1)
PY
fi

# Service smoke: daemon outcomes must agree with the grid runner, and a
# repeat request (served from the warm stores) must be byte-identical on
# the deterministic document.
if [[ "$service_smoke" == 1 ]]; then
  case "$preset" in
    tsan) bdir="build-tsan" ;;
    asan) bdir="build-asan" ;;
    *)    bdir="build" ;;
  esac
  echo "== service smoke: sbce_serve/sbce_client vs table2_tool_grid =="
  tmpdir="$(mktemp -d)"
  serve_pid=""
  cleanup() {
    [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
  }
  trap cleanup EXIT
  sock="$tmpdir/sbce.sock"
  "$bdir/cli/sbce_serve" --socket "$sock" &
  serve_pid=$!
  for _ in $(seq 1 100); do [[ -S "$sock" ]] && break; sleep 0.1; done
  [[ -S "$sock" ]] || { echo "check.sh: daemon did not come up" >&2; exit 1; }

  "$bdir/cli/sbce_client" --socket "$sock" --bomb arr_one --profile Angr \
    --deterministic > "$tmpdir/r1.json"
  "$bdir/cli/sbce_client" --socket "$sock" --bomb arr_one --profile Angr \
    --deterministic > "$tmpdir/r2.json"
  "$bdir/cli/sbce_client" --socket "$sock" --bomb svd_argvlen --profile Angr \
    --deterministic > "$tmpdir/r3.json"
  diff "$tmpdir/r1.json" "$tmpdir/r2.json" \
    || { echo "check.sh: warm repeat diverged from cold run" >&2; exit 1; }
  "$bdir/cli/sbce_client" --socket "$sock" --shutdown > /dev/null
  wait "$serve_pid"
  serve_pid=""

  "$bdir/bench/table2_tool_grid" --json --jobs 0 > "$tmpdir/grid.json"
  python3 - "$tmpdir" <<'PY'
import json, pathlib, sys
tmp = pathlib.Path(sys.argv[1])
grid = json.load(open(tmp / "grid.json"))
cells = {(c["bomb"], c["tool"]): c for c in grid["cells"]}
ok = True
for name, bomb, tool in [("r1", "arr_one", "Angr"),
                         ("r3", "svd_argvlen", "Angr")]:
    r = json.load(open(tmp / f"{name}.json"))
    c = cells[(bomb, tool)]
    for k in ("outcome", "expected", "matches_paper"):
        if r[k] != c[k]:
            print(f"MISMATCH {bomb}/{tool} {k}: service={r[k]} grid={c[k]}")
            ok = False
if ok:
    print("service smoke: daemon outcomes match table2_tool_grid")
sys.exit(0 if ok else 1)
PY
fi
