#!/usr/bin/env bash
# Tier-1 verification: configure + build + run the full test suite under
# the release preset. Pass a different preset name (tsan, asan) as $1 to
# run the same pipeline under a sanitizer.
set -euo pipefail

preset="${1:-release}"
cd "$(dirname "$0")/.."

cmake --preset "$preset"
cmake --build --preset "$preset"
ctest --preset "$preset"
