#!/usr/bin/env bash
# Tier-1 verification: configure + build + run the test suite under a
# CMake preset.
#
# Usage: check.sh [--preset NAME] [--tests REGEX] [NAME]
#   --preset NAME   preset to configure/build/test (release, tsan, asan)
#   --tests REGEX   only run ctest cases matching REGEX (default: all)
#   NAME            positional preset, kept for back-compat with CI and
#                   muscle memory (check.sh tsan)
set -euo pipefail

preset="release"
tests_regex=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset)
      [[ $# -ge 2 ]] || { echo "check.sh: --preset needs a value" >&2; exit 2; }
      preset="$2"
      shift 2
      ;;
    --tests)
      [[ $# -ge 2 ]] || { echo "check.sh: --tests needs a value" >&2; exit 2; }
      tests_regex="$2"
      shift 2
      ;;
    -h|--help)
      grep '^#' "$0" | sed 's/^# \{0,1\}//' | tail -n +2
      exit 0
      ;;
    -*)
      echo "check.sh: unknown flag: $1" >&2
      exit 2
      ;;
    *)
      preset="$1"
      shift
      ;;
  esac
done

cd "$(dirname "$0")/.."

cmake --preset "$preset"
cmake --build --preset "$preset"
if [[ -n "$tests_regex" ]]; then
  ctest --preset "$preset" -R "$tests_regex"
else
  ctest --preset "$preset"
fi

# CSP hard-instance cross-check: the incremental/portfolio default path
# must agree with the baseline per-query path on search-heavy instances.
if [[ "$preset" == "release" && -z "$tests_regex" ]]; then
  build/bench/solver_csp --smoke
fi
