// Taint engine tests: propagation rules, channel tracking, thread and
// process boundaries, and cross-checks against the symbolic executor.
#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/solver/expr.h"
#include "src/symex/executor.h"
#include "src/trace/taint.h"
#include "src/vm/machine.h"

namespace sbce::trace {
namespace {

struct TracedRun {
  std::vector<vm::TraceEvent> events;
  std::unique_ptr<vm::Machine> machine;
  uint64_t argv1_addr = 0;
};

TracedRun RunTraced(std::string_view src,
                    std::vector<std::string> argv = {"prog", "AB"}) {
  auto img = isa::Assemble(src);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  TracedRun run;
  run.machine = std::make_unique<vm::Machine>(img.value(), argv);
  run.argv1_addr = run.machine->ArgvStringAddr(1);
  run.machine->set_trace_hook(
      [&run](const vm::TraceEvent& ev) { run.events.push_back(ev); });
  run.machine->Run();
  return run;
}

TEST(Taint, PropagatesThroughAlu) {
  auto run = RunTraced(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]     ; tainted
      addi r4, r4, 1     ; still tainted
      movi r5, 9         ; clean
      add r6, r4, r5     ; tainted (one source)
      mul r7, r5, r5     ; clean
      movi r1, 0
      sys 0
  )");
  TaintEngine taint;
  taint.MarkMemory(run.argv1_addr, 2);
  taint.ProcessTrace(run.events);
  EXPECT_TRUE(taint.RegTainted(run.events[0].pid, 1, 4));
  EXPECT_TRUE(taint.RegTainted(run.events[0].pid, 1, 6));
  EXPECT_FALSE(taint.RegTainted(run.events[0].pid, 1, 5));
  EXPECT_FALSE(taint.RegTainted(run.events[0].pid, 1, 7));
}

TEST(Taint, OverwritingCleansRegistersAndMemory) {
  auto run = RunTraced(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]     ; tainted
      lea r6, cell
      st1 r4, [r6+0]     ; memory tainted
      movi r4, 0         ; r4 cleaned
      movi r0, 5
      st1 r0, [r6+0]     ; memory cleaned
      movi r1, 0
      sys 0
    .data
    cell: .space 8
  )");
  TaintEngine taint;
  taint.MarkMemory(run.argv1_addr, 2);
  taint.ProcessTrace(run.events);
  EXPECT_FALSE(taint.RegTainted(run.events[0].pid, 1, 4));
  EXPECT_FALSE(taint.MemTainted(0x100000));
}

TEST(Taint, BranchesOnTaintedDataAreReported) {
  auto run = RunTraced(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      bz r4, skip        ; tainted branch
      movi r5, 0
      bz r5, skip        ; clean branch
    skip:
      movi r1, 0
      sys 0
  )");
  TaintEngine taint;
  taint.MarkMemory(run.argv1_addr, 2);
  taint.ProcessTrace(run.events);
  EXPECT_EQ(taint.report().tainted_branches.size(), 1u);
}

TEST(Taint, SymbolicAddressesAreReported) {
  auto run = RunTraced(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      subi r4, r4, '0'
      lea r6, table
      ldx1 r5, [r6+r4]   ; tainted address
      movi r1, 0
      sys 0
    .data
    table: .byte 1,2,3,4,5,6,7,8,9,10
  )",
                       {"prog", "3"});
  TaintEngine taint;
  taint.MarkMemory(run.argv1_addr, 1);
  taint.ProcessTrace(run.events);
  EXPECT_EQ(taint.report().tainted_addresses.size(), 1u);
}

TEST(Taint, CovertChannelTrackedWhenEnabled) {
  constexpr std::string_view kEcho = R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      lea r1, key
      mov r2, r4
      sys 18            ; echo_store(key, tainted)
      lea r1, key
      sys 19            ; echo_load -> r0
      bz r0, skip
    skip:
      movi r1, 0
      sys 0
    .data
    key: .asciz "k"
  )";
  auto run = RunTraced(kEcho);
  TaintEngine tracked{TaintConfig{.track_channels = true}};
  tracked.MarkMemory(run.argv1_addr, 2);
  tracked.ProcessTrace(run.events);
  EXPECT_EQ(tracked.report().tainted_branches.size(), 1u);
  EXPECT_FALSE(tracked.report().tainted_channels.empty());

  auto run2 = RunTraced(kEcho);
  TaintEngine untracked{TaintConfig{.track_channels = false}};
  untracked.MarkMemory(run2.argv1_addr, 2);
  untracked.ProcessTrace(run2.events);
  EXPECT_TRUE(untracked.report().tainted_branches.empty());
}

TEST(Taint, ThreadBoundaryConfigurable) {
  constexpr std::string_view kThreaded = R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      lea r6, cell
      st8 r4, [r6+0]
      movi r1, worker
      movi r2, 0
      sys 11
      mov r1, r0
      sys 12
      lea r6, cell
      ld8 r5, [r6+0]
      bz r5, skip
    skip:
      movi r1, 0
      sys 0
    worker:
      lea r6, cell
      ld8 r5, [r6+0]
      addi r5, r5, 1
      st8 r5, [r6+0]
      halt
    .data
    cell: .quad 0
  )";
  auto run = RunTraced(kThreaded);
  TaintEngine cross{TaintConfig{.cross_thread = true}};
  cross.MarkMemory(run.argv1_addr, 2);
  cross.ProcessTrace(run.events);
  EXPECT_EQ(cross.report().tainted_branches.size(), 1u);

  auto run2 = RunTraced(kThreaded);
  TaintEngine isolated{TaintConfig{.cross_thread = false}};
  isolated.MarkMemory(run2.argv1_addr, 2);
  isolated.ProcessTrace(run2.events);
  // The worker's store of the tainted value is untracked: taint dies.
  EXPECT_TRUE(isolated.report().tainted_branches.empty());
}

// Cross-check: the taint engine and the symbolic executor must agree on
// which branches are input-dependent.
TEST(Taint, AgreesWithSymbolicExecutorOnBranches) {
  constexpr std::string_view kProgram = R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      addi r4, r4, 2
      cmpeqi r5, r4, 100
      bz r5, next        ; symbolic/tainted
    next:
      movi r6, 1
      bnz r6, last       ; concrete/clean
    last:
      push r4
      pop r7
      bz r7, done        ; symbolic through the stack
    done:
      movi r1, 0
      sys 0
  )";
  auto run = RunTraced(kProgram);

  TaintEngine taint;
  taint.MarkMemory(run.argv1_addr, 2);
  taint.ProcessTrace(run.events);

  solver::ExprPool pool;
  symex::TraceExecutor exec(&pool, symex::SymexConfig{});
  std::vector<solver::ExprRef> bytes = {pool.Var("b0", 8),
                                        pool.Var("b1", 8)};
  exec.AddSymbolicBytes(run.argv1_addr, bytes);
  exec.Execute(run.events);

  EXPECT_EQ(taint.report().tainted_branches.size(),
            exec.state().path().size());
}

}  // namespace
}  // namespace sbce::trace
