// Direct CNF-level tests for the CDCL substrate: unit propagation,
// first-UIP learning, the Luby restart schedule, per-call conflict
// budgets, phase saving, clause-DB reduction, and the incremental
// contract (assumption-based solving, learned-clause persistence,
// solver reuse determinism). Everything else in the tree exercises the
// SAT core only through the bit-blaster; these pin the substrate itself.
#include <gtest/gtest.h>

#include <vector>

#include "src/solver/sat.h"

namespace sbce::solver {
namespace {

// Pigeonhole principle instance: `pigeons` pigeons into `pigeons - 1`
// holes — UNSAT, and resolution-hard enough to force real search. Each
// clause is emitted through `add` so callers can guard the encoding.
template <typename AddClauseFn>
void EncodePigeonhole(SatSolver& s, int pigeons, AddClauseFn add) {
  const int holes = pigeons - 1;
  std::vector<std::vector<int>> p(pigeons, std::vector<int>(holes));
  for (auto& row : p) {
    for (auto& v : row) v = s.NewVar();
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(MkLit(p[i][h]));
    add(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i < pigeons; ++i) {
      for (int j = i + 1; j < pigeons; ++j) {
        add(std::vector<Lit>{MkLit(p[i][h], true), MkLit(p[j][h], true)});
      }
    }
  }
}

void AddPigeonhole(SatSolver& s, int pigeons) {
  EncodePigeonhole(s, pigeons,
                   [&](std::vector<Lit> c) { s.AddClause(std::move(c)); });
}

TEST(SatTest, UnitPropagationChain) {
  SatSolver s;
  std::vector<int> v(12);
  for (auto& x : v) x = s.NewVar();
  for (size_t i = 0; i + 1 < v.size(); ++i) {
    s.AddClause({MkLit(v[i], true), MkLit(v[i + 1])});  // v_i -> v_{i+1}
  }
  s.AddClause({MkLit(v[0])});
  EXPECT_EQ(s.Solve(), SatStatus::kSat);
  for (int x : v) EXPECT_TRUE(s.ValueOf(x));
  // The chain is decided at level 0 by propagation alone.
  EXPECT_EQ(s.decisions(), 0u);
  EXPECT_EQ(s.conflicts(), 0u);
}

TEST(SatTest, FirstUipLearningRefutesPigeonhole) {
  SatSolver s;
  AddPigeonhole(s, 4);
  EXPECT_EQ(s.Solve(), SatStatus::kUnsat);
  // Refutation requires learning (the instance has no unit clauses).
  EXPECT_GT(s.conflicts(), 0u);
  // ...and the learnt-clause activity plumbing is live.
  EXPECT_GT(s.clause_activity_sum(), 0.0);
}

TEST(SatTest, LubySchedule) {
  const uint64_t expect[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (uint64_t i = 0; i < std::size(expect); ++i) {
    EXPECT_EQ(SatSolver::Luby(i), expect[i]) << "i=" << i;
  }
}

TEST(SatTest, ConflictBudgetIsPerSolveCall) {
  SatSolver::Options opts;
  opts.max_conflicts = 10;
  SatSolver s(opts);
  AddPigeonhole(s, 8);  // far more than 10 conflicts to refute
  EXPECT_EQ(s.Solve(), SatStatus::kUnknown);
  const uint64_t first = s.conflicts();
  EXPECT_GE(first, 10u);
  // The budget is per call, not lifetime: a second Solve gets fresh
  // headroom instead of returning kUnknown instantly.
  EXPECT_EQ(s.Solve(), SatStatus::kUnknown);
  EXPECT_GE(s.last_solve_conflicts(), 10u);
  EXPECT_GT(s.conflicts(), first);
}

TEST(SatTest, PhaseSavingMakesResolveFree) {
  SatSolver s;
  // A satisfiable pigeonhole variant: 5 pigeons, 5 holes.
  const int n = 5;
  std::vector<std::vector<int>> p(n, std::vector<int>(n));
  for (auto& row : p) {
    for (auto& v : row) v = s.NewVar();
  }
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < n; ++h) clause.push_back(MkLit(p[i][h]));
    s.AddClause(clause);
  }
  for (int h = 0; h < n; ++h) {
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        s.AddClause({MkLit(p[i][h], true), MkLit(p[j][h], true)});
      }
    }
  }
  ASSERT_EQ(s.Solve(), SatStatus::kSat);
  std::vector<bool> model;
  for (int i = 0; i < s.NumVars(); ++i) model.push_back(s.ValueOf(i));

  // Saved phases steer the second solve straight back to the same model
  // without a single conflict.
  ASSERT_EQ(s.Solve(), SatStatus::kSat);
  EXPECT_EQ(s.last_solve_conflicts(), 0u);
  for (int i = 0; i < s.NumVars(); ++i) {
    EXPECT_EQ(s.ValueOf(i), model[i]) << "var " << i;
  }
}

TEST(SatTest, AddClauseBetweenSolvesRefines) {
  SatSolver s;
  const int x = s.NewVar();
  const int y = s.NewVar();
  s.AddClause({MkLit(x), MkLit(y)});
  ASSERT_EQ(s.Solve(), SatStatus::kSat);
  // Forbid the value the model gave x; the solver must flip to a model
  // where the other disjunct carries the clause.
  const bool x_was = s.ValueOf(x);
  s.AddClause({MkLit(x, x_was)});
  ASSERT_EQ(s.Solve(), SatStatus::kSat);
  EXPECT_EQ(s.ValueOf(x), !x_was);
  EXPECT_TRUE(s.ValueOf(y) || s.ValueOf(x));
  // Contradict the remaining option: now unsatisfiable, permanently.
  s.AddClause({MkLit(y, true)});
  s.AddClause({MkLit(x, !x_was)});
  EXPECT_EQ(s.Solve(), SatStatus::kUnsat);
  EXPECT_EQ(s.Solve(), SatStatus::kUnsat);
}

TEST(SatTest, ClauseDbReductionKeepsAnswersSound) {
  SatSolver::Options opts;
  opts.reduce_base = 16;  // reduce early and often
  SatSolver reduced(opts);
  AddPigeonhole(reduced, 7);
  EXPECT_EQ(reduced.Solve(), SatStatus::kUnsat);
  EXPECT_GT(reduced.db_reductions(), 0u);
  EXPECT_GT(reduced.learnts_removed(), 0u);

  // Same instance without reduction agrees, and reduction actually kept
  // the learnt set smaller.
  SatSolver::Options keep_all;
  keep_all.reduce_db = false;
  SatSolver full(keep_all);
  AddPigeonhole(full, 7);
  EXPECT_EQ(full.Solve(), SatStatus::kUnsat);
  EXPECT_EQ(full.db_reductions(), 0u);
  EXPECT_LT(reduced.learnt_count(), full.learnt_count());
}

// --- Incremental contract ------------------------------------------------

TEST(SatIncremental, AssumptionsDecideWithoutPersisting) {
  SatSolver s;
  const int x = s.NewVar();
  const int y = s.NewVar();
  s.AddClause({MkLit(x), MkLit(y)});

  // Both disjuncts assumed false: UNSAT under assumptions...
  const Lit both_false[] = {MkLit(x, true), MkLit(y, true)};
  EXPECT_EQ(s.Solve(both_false), SatStatus::kUnsat);
  // ...but the clause set itself is still satisfiable afterwards.
  EXPECT_EQ(s.Solve(), SatStatus::kSat);

  // A one-sided assumption forces the other disjunct.
  const Lit x_false[] = {MkLit(x, true)};
  ASSERT_EQ(s.Solve(x_false), SatStatus::kSat);
  EXPECT_FALSE(s.ValueOf(x));
  EXPECT_TRUE(s.ValueOf(y));

  // The assumption does not leak into later calls.
  const Lit y_false[] = {MkLit(y, true)};
  ASSERT_EQ(s.Solve(y_false), SatStatus::kSat);
  EXPECT_TRUE(s.ValueOf(x));
  EXPECT_FALSE(s.ValueOf(y));
}

TEST(SatIncremental, FalsifiedAssumptionIsNotPermanent) {
  SatSolver s;
  const int x = s.NewVar();
  s.AddClause({MkLit(x)});  // x is a level-0 fact
  const Lit not_x[] = {MkLit(x, true)};
  EXPECT_EQ(s.Solve(not_x), SatStatus::kUnsat);
  ASSERT_EQ(s.Solve(), SatStatus::kSat);
  EXPECT_TRUE(s.ValueOf(x));
}

TEST(SatIncremental, LearnedClausesSurviveAcrossSolves) {
  // Pigeonhole clauses guarded by g ({¬g, clause...}): UNSAT only under
  // the assumption g, so the refutation can be asked for repeatedly.
  SatSolver s;
  const Lit g = MkLit(s.NewVar());
  EncodePigeonhole(s, 6, [&](std::vector<Lit> c) {
    c.push_back(Negate(g));
    s.AddClause(std::move(c));
  });
  const Lit assume[] = {g};
  ASSERT_EQ(s.Solve(assume), SatStatus::kUnsat);
  const uint64_t first = s.last_solve_conflicts();
  ASSERT_EQ(s.Solve(assume), SatStatus::kUnsat);
  const uint64_t second = s.last_solve_conflicts();
  EXPECT_GT(first, 0u);
  // The clauses learned refuting it the first time make the re-proof
  // strictly cheaper — the point of keeping the solver warm.
  EXPECT_LT(second, first);
}

TEST(SatIncremental, ReuseIsDeterministic) {
  // Two fresh solvers fed the identical clause/solve sequence must agree
  // on every status, every model bit, and every conflict count.
  const auto drive = [](SatSolver& s, std::vector<uint64_t>& conflicts,
                        std::vector<bool>& bits) {
    const Lit g = MkLit(s.NewVar());
    EncodePigeonhole(s, 5, [&](std::vector<Lit> c) {
      c.push_back(Negate(g));
      s.AddClause(std::move(c));
    });
    const Lit assume[] = {g};
    EXPECT_EQ(s.Solve(assume), SatStatus::kUnsat);
    conflicts.push_back(s.last_solve_conflicts());
    // Retire the guard and satisfy what remains.
    s.AddClause({Negate(g)});
    EXPECT_EQ(s.Solve(), SatStatus::kSat);
    conflicts.push_back(s.last_solve_conflicts());
    for (int v = 0; v < s.NumVars(); ++v) bits.push_back(s.ValueOf(v));
  };
  SatSolver a, b;
  std::vector<uint64_t> ca, cb;
  std::vector<bool> ma, mb;
  drive(a, ca, ma);
  drive(b, cb, mb);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(ma, mb);
  EXPECT_EQ(a.decisions(), b.decisions());
  EXPECT_EQ(a.propagations(), b.propagations());
}

TEST(SatIncremental, RepeatedBudgetedSolvesEventuallyRefute) {
  // With a tiny per-call budget each call times out, but learned clauses
  // accumulate across calls until the refutation lands — the warm-session
  // behaviour the engine's repeated branch-negation queries rely on.
  SatSolver::Options opts;
  opts.max_conflicts = 30;
  SatSolver s(opts);
  AddPigeonhole(s, 6);
  SatStatus st = SatStatus::kUnknown;
  int calls = 0;
  while (st == SatStatus::kUnknown && calls < 200) {
    st = s.Solve();
    ++calls;
  }
  EXPECT_EQ(st, SatStatus::kUnsat);
  EXPECT_GT(calls, 1);  // genuinely needed more than one budget window
}

}  // namespace
}  // namespace sbce::solver
