// Parametric corpus generator: determinism (same CorpusSpec ->
// byte-identical images + ground truth), verify-before-admit, negative
// variants never trigger, and two-stage compositions trigger only on the
// joint input.
#include <gtest/gtest.h>

#include <set>

#include "src/bombs/bombs.h"
#include "src/corpus/corpus.h"
#include "src/vm/machine.h"

namespace sbce::corpus {
namespace {

vm::RunResult RunConcrete(const bombs::BombSpec& spec,
                          std::vector<std::string> argv) {
  auto image = bombs::BuildBomb(spec);
  vm::Machine machine(image, std::move(argv), spec.experiment_devices);
  return machine.Run();
}

const Corpus& DefaultCorpus() {
  static const auto* kCorpus = [] {
    auto result = Generate(CorpusSpec{});
    SBCE_CHECK_MSG(result.ok(), result.status().ToString());
    return new Corpus(std::move(result).value());
  }();
  return *kCorpus;
}

TEST(CorpusGenerate, DefaultCorpusShape) {
  const Corpus& corpus = DefaultCorpus();
  // 5 families x 6/6/6/6/12 params, each with a negative variant.
  EXPECT_EQ(corpus.cells.size(), 72u);
  size_t negatives = 0;
  std::set<std::string> ids;
  for (const auto& cell : corpus.cells) {
    negatives += cell.negative;
    EXPECT_TRUE(ids.insert(cell.spec.id).second) << cell.spec.id;
    // Generated ids must not shadow the hand-written dataset.
    EXPECT_EQ(bombs::FindBomb(cell.spec.id), nullptr) << cell.spec.id;
  }
  EXPECT_EQ(negatives, 36u);
  EXPECT_NE(corpus.digest, 0u);
}

TEST(CorpusGenerate, EveryFamilyPresent) {
  const Corpus& corpus = DefaultCorpus();
  std::set<Family> families;
  for (const auto& cell : corpus.cells) families.insert(cell.family);
  EXPECT_EQ(families.size(), 5u);
}

TEST(CorpusGenerate, DeterministicAcrossRuns) {
  const Corpus& corpus = DefaultCorpus();
  auto again = Generate(CorpusSpec{});
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again.value().cells.size(), corpus.cells.size());
  EXPECT_EQ(again.value().digest, corpus.digest);
  for (size_t i = 0; i < corpus.cells.size(); ++i) {
    const auto& a = corpus.cells[i];
    const auto& b = again.value().cells[i];
    EXPECT_EQ(a.spec.id, b.spec.id);
    EXPECT_EQ(a.spec.source, b.spec.source);
    EXPECT_EQ(bombs::BuildBomb(a.spec).Serialize(),
              bombs::BuildBomb(b.spec).Serialize())
        << a.spec.id;
    EXPECT_EQ(a.spec.witness_argv, b.spec.witness_argv) << a.spec.id;
  }
}

TEST(CorpusGenerate, SeedChangesDigest) {
  CorpusSpec other = SmokeSpec();
  auto a = Generate(other);
  other.seed ^= 0xdeadbeef;
  auto b = Generate(other);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_NE(a.value().digest, b.value().digest);
}

TEST(CorpusGenerate, SmokeSpecIsSmall) {
  auto corpus = Generate(SmokeSpec());
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus.value().cells.size(), 10u);  // 5 cells + 5 negatives
}

TEST(CorpusGenerate, GroundTruthVerifiedOnAdmission) {
  // Generate() already gates on VerifyGroundTruth; spot-check the
  // contract holds for the admitted specs too.
  for (const auto& cell : DefaultCorpus().cells) {
    const Status st = bombs::VerifyGroundTruth(cell.spec);
    EXPECT_TRUE(st.ok()) << cell.spec.id << ": " << st.ToString();
  }
}

TEST(CorpusGenerate, NegativeVariantsNeverTrigger) {
  for (const auto& cell : DefaultCorpus().cells) {
    if (!cell.negative) continue;
    EXPECT_FALSE(cell.spec.argv_can_trigger);
    EXPECT_TRUE(cell.spec.witness_argv.empty());
    // Sweep digits and a few lengths: the guard must be infeasible, not
    // merely unhit by the seed.
    for (char c = '0'; c <= '9'; ++c) {
      for (size_t len : {size_t{1}, size_t{4}, size_t{12}}) {
        auto run = RunConcrete(cell.spec,
                               {"prog", std::string(len, c)});
        EXPECT_FALSE(run.bomb_triggered)
            << cell.spec.id << " input " << std::string(len, c);
      }
    }
  }
}

TEST(CorpusGenerate, TwoStageTriggersOnlyOnJointInput) {
  size_t two_stage = 0;
  for (const auto& cell : DefaultCorpus().cells) {
    if (cell.family != Family::kTwoStage || cell.negative) continue;
    ++two_stage;
    ASSERT_EQ(cell.partial_inputs.size(), 2u) << cell.spec.id;
    auto joint = RunConcrete(cell.spec, cell.spec.witness_argv);
    EXPECT_TRUE(joint.bomb_triggered) << cell.spec.id;
    for (const auto& partial : cell.partial_inputs) {
      auto run = RunConcrete(cell.spec, partial);
      EXPECT_FALSE(run.faulted) << cell.spec.id;
      EXPECT_FALSE(run.bomb_triggered)
          << cell.spec.id << " partial " << partial.back();
    }
  }
  EXPECT_EQ(two_stage, 12u);
}

TEST(CorpusGenerate, SharedCorpusCachesBySeed) {
  auto a = SharedCorpus(kDefaultSeed);
  auto b = SharedCorpus(kDefaultSeed);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->cells.size(), 72u);
}

}  // namespace
}  // namespace sbce::corpus
