// Engine edge cases: input bookkeeping, round budgets, claim/validation
// interplay, model decoding.
#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/isa/assembler.h"
#include "src/tools/profiles.h"
#include "src/vm/machine.h"

namespace sbce::core {
namespace {

struct Prog {
  isa::BinaryImage image;
  uint64_t bomb = 0;
};

Prog Build(std::string_view src) {
  auto img = isa::Assemble(src);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  auto bomb = img.value().FindSymbol("bomb");
  SBCE_CHECK(bomb.has_value());
  return {std::move(img).value(), *bomb};
}

EngineResult Explore(const Prog& prog, std::vector<std::string> seed,
                     EngineConfig cfg) {
  ConcolicEngine engine(
      prog.image,
      [&prog](const std::vector<std::string>& argv) {
        return std::make_unique<vm::Machine>(prog.image, argv);
      },
      cfg);
  return engine.Explore(seed, prog.bomb);
}

constexpr std::string_view kTwoGuards = R"(
  .entry main
  main:
    ld8 r3, [r2+8]
    ld1 r4, [r3+0]
    cmpeqi r5, r4, 'x'
    bz r5, exit
    ld1 r4, [r3+1]
    cmpeqi r5, r4, 'y'
    bz r5, exit
  bomb:
    sys 16
  exit:
    movi r1, 0
    sys 0
)";

TEST(EngineEdge, ExploredInputsAreRecordedInOrder) {
  auto prog = Build(kTwoGuards);
  auto result = Explore(prog, {"prog", "ab"}, tools::Ideal().engine);
  ASSERT_TRUE(result.validated);
  ASSERT_GE(result.explored_inputs.size(), 2u);
  EXPECT_EQ(result.explored_inputs.front()[1], "ab");  // seed first
  // The last recorded input is the validated one.
  EXPECT_EQ(result.explored_inputs.back(), result.claimed_argv);
  // No duplicates.
  std::set<std::vector<std::string>> unique(result.explored_inputs.begin(),
                                            result.explored_inputs.end());
  EXPECT_EQ(unique.size(), result.explored_inputs.size());
}

TEST(EngineEdge, RoundBudgetStopsExploration) {
  auto prog = Build(kTwoGuards);
  auto cfg = tools::Ideal().engine;
  cfg.budgets.max_rounds = 1;  // seed only: cannot reach the bomb
  auto result = Explore(prog, {"prog", "ab"}, cfg);
  EXPECT_FALSE(result.validated);
  EXPECT_EQ(result.metrics.rounds, 1u);
}

TEST(EngineEdge, SolverQueryBudgetIsHonored) {
  auto prog = Build(kTwoGuards);
  auto cfg = tools::Ideal().engine;
  cfg.budgets.max_solver_queries = 0;
  auto result = Explore(prog, {"prog", "ab"}, cfg);
  EXPECT_FALSE(result.validated);
  EXPECT_EQ(result.metrics.solver_queries, 0u);
}

TEST(EngineEdge, SeedThatAlreadyTriggersValidatesImmediately) {
  auto prog = Build(kTwoGuards);
  auto result = Explore(prog, {"prog", "xy"}, tools::Ideal().engine);
  EXPECT_TRUE(result.validated);
  EXPECT_EQ(result.metrics.rounds, 1u);
  EXPECT_EQ(result.claimed_argv[1], "xy");
}

TEST(EngineEdge, FixedLengthModelCannotGrowInputs) {
  // Bomb requires byte 3 to be set; seed is 2 bytes; fixed-length argv
  // models can never see byte 3.
  auto prog = Build(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+3]
      cmpeqi r5, r4, 'Z'
      bz r5, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
  )");
  auto cfg = tools::Ideal().engine;
  cfg.sources.argv_max_len = 0;
  auto fixed = Explore(prog, {"prog", "ab"}, cfg);
  EXPECT_FALSE(fixed.validated);
  auto window = Explore(prog, {"prog", "ab"}, tools::Ideal().engine);
  EXPECT_TRUE(window.validated);
  EXPECT_EQ(window.claimed_argv[1][3], 'Z');
}

TEST(EngineEdge, NulByteInModelTruncatesDecodedInput) {
  // The guard wants byte0 == 0, which a C-string argv cannot express; the
  // engine must not loop forever on the undecodable model.
  auto prog = Build(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      bz r4, bomb_path
      jmp exit
    bomb_path:
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
  )");
  auto result = Explore(prog, {"prog", "a"}, tools::Ideal().engine);
  // byte0==0 means empty argv[1]; reading byte 0 of "" gives NUL — which
  // actually does trigger. Either way the engine must terminate quickly.
  EXPECT_LE(result.metrics.rounds, 4u);
  EXPECT_TRUE(result.validated);
  EXPECT_EQ(result.claimed_argv[1], "");
}

TEST(EngineEdge, DiagnosticsAccumulateAcrossRounds) {
  // An Es3-raising array access executes on every path, and the bomb
  // needs two separate guards flipped — so by the time it detonates the
  // concretization diagnostic has been raised in multiple rounds.
  auto prog = Build(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      lea r6, table
      ldx1 r5, [r6+r4]
      ld1 r4, [r3+1]
      cmpeqi r5, r4, 'k'
      bz r5, exit
      ld1 r4, [r3+2]
      cmpeqi r5, r4, 'q'
      bz r5, exit
    bomb:
      sys 16
    exit:
      movi r1, 0
      sys 0
    .data
    table: .space 300
  )");
  auto cfg = tools::Ideal().engine;
  cfg.symex.addr_policy = symex::SymAddrPolicy::kConcretize;
  auto result = Explore(prog, {"prog", "abc"}, cfg);
  EXPECT_TRUE(result.validated);
  EXPECT_TRUE(result.diag.Has(symex::ErrorStage::kEs3));
  EXPECT_GE(result.diag.entries.size(), 2u);  // raised in ≥2 rounds
}

}  // namespace
}  // namespace sbce::core
