// Engine-level parallel-dispatch determinism: exploring the same bomb with
// solver_threads=1 and solver_threads=8 must produce identical results —
// same claims, same generated inputs, same round/query counts. This is the
// engine-facing guarantee behind solver::QueryPipeline's three-phase
// design (plan serial, solve parallel, commit serial in input order).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/bombs/bombs.h"
#include "src/core/engine.h"
#include "src/tools/profiles.h"
#include "src/vm/machine.h"

namespace sbce::core {
namespace {

const bombs::BombSpec& FindBomb(const std::string& id) {
  for (const bombs::BombSpec* bomb : bombs::TableTwoBombs()) {
    if (bomb->id == id) return *bomb;
  }
  SBCE_CHECK_MSG(false, "unknown bomb id: " + id);
  __builtin_unreachable();
}

EngineResult ExploreBomb(const bombs::BombSpec& bomb, unsigned threads) {
  const isa::BinaryImage image = bombs::BuildBomb(bomb);
  EngineConfig cfg = tools::Ideal().engine;
  cfg.budgets.solver_threads = threads;
  ConcolicEngine engine(
      image,
      [&bomb, &image](const std::vector<std::string>& argv) {
        auto machine = std::make_unique<vm::Machine>(
            image, argv, bomb.experiment_devices);
        for (const auto& [path, contents] : bomb.files) {
          machine->fs().PutString(path, contents);
        }
        return machine;
      },
      cfg);
  return engine.Explore(bomb.seed_argv, bombs::BombAddress(image));
}

void ExpectIdentical(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.claimed, b.claimed);
  EXPECT_EQ(a.claimed_argv, b.claimed_argv);
  EXPECT_EQ(a.validated, b.validated);
  EXPECT_EQ(a.provenance, b.provenance);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.abort_reason, b.abort_reason);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.solver_queries, b.metrics.solver_queries);
  EXPECT_EQ(a.explored_inputs, b.explored_inputs);
  // Cache behaviour is part of the determinism contract too: the hit
  // pattern depends only on the (identical) query sequence.
  EXPECT_EQ(a.metrics.solver_cache_hits, b.metrics.solver_cache_hits);
  EXPECT_EQ(a.metrics.solver_cache_misses, b.metrics.solver_cache_misses);
  EXPECT_EQ(a.metrics.sliced_queries, b.metrics.sliced_queries);
}

class ParallelDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelDeterminism, OneVsEightSolverThreads) {
  const bombs::BombSpec& bomb = FindBomb(GetParam());
  const EngineResult serial = ExploreBomb(bomb, 1);
  const EngineResult parallel = ExploreBomb(bomb, 8);
  ExpectIdentical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Bombs, ParallelDeterminism,
    ::testing::Values("svd_argvlen", "csp_stack", "arr_one"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

}  // namespace
}  // namespace sbce::core
