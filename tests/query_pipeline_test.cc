// Query pipeline tests: independence slicer, structural hashing, the
// query cache's three hit rules (exact, unsat-subset, model reuse) with
// stale-model rejection, the fork-join pool, and the pipeline itself —
// including the property that cached/sliced/parallel answers agree with a
// fresh CheckSat on randomized assertion sets.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/solver/eval.h"
#include "src/solver/pipeline.h"
#include "src/solver/query_cache.h"
#include "src/solver/slice.h"
#include "src/solver/solver.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace sbce::solver {
namespace {

// --- Independence slicer -------------------------------------------------

TEST(Slice, DisjointVariableSetsSplit) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef y = pool.Var("y", 8);
  std::vector<ExprRef> as = {
      pool.Ult(x, pool.Const(5, 8)),
      pool.Eq(y, pool.Const(3, 8)),
      pool.Ult(pool.Const(1, 8), x),
  };
  auto groups = SliceByIndependence(as);
  ASSERT_EQ(groups.size(), 2u);
  // Components ordered by first appearance; members keep relative order.
  EXPECT_EQ(groups[0], (std::vector<ExprRef>{as[0], as[2]}));
  EXPECT_EQ(groups[1], (std::vector<ExprRef>{as[1]}));
}

TEST(Slice, SharedVariableBridgesComponents) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef y = pool.Var("y", 8);
  ExprRef z = pool.Var("z", 8);
  // {x}, {y}, then {x,y} fuses everything; {z} stays apart.
  std::vector<ExprRef> as = {
      pool.Ult(x, pool.Const(9, 8)),
      pool.Ult(y, pool.Const(9, 8)),
      pool.Eq(pool.Add(x, y), pool.Const(7, 8)),
      pool.Eq(z, pool.Const(1, 8)),
  };
  auto groups = SliceByIndependence(as);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 3u);
  EXPECT_EQ(groups[1], (std::vector<ExprRef>{as[3]}));
}

TEST(Slice, ConstantAssertionsAreSingletons) {
  ExprPool pool;
  // A non-foldable 1-bit expression with no variables is impossible to
  // build through the folding pool, so use True() directly: it must form
  // its own component and not glue anything together.
  std::vector<ExprRef> as = {
      pool.True(),
      pool.Ult(pool.Var("x", 8), pool.Const(4, 8)),
  };
  auto groups = SliceByIndependence(as);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<ExprRef>{as[0]}));
}

// --- Structural hashing --------------------------------------------------

TEST(StructuralHashing, PoolIndependent) {
  ExprPool a, b;
  ExprRef ea = a.Eq(a.Add(a.Var("x", 16), a.Const(3, 16)), a.Const(9, 16));
  ExprRef eb = b.Eq(b.Add(b.Var("x", 16), b.Const(3, 16)), b.Const(9, 16));
  EXPECT_NE(ea, eb);  // different pools, different nodes...
  EXPECT_EQ(StructuralHash(ea), StructuralHash(eb));  // ...same content
  ExprRef other = b.Eq(b.Add(b.Var("x", 16), b.Const(4, 16)),
                       b.Const(9, 16));
  EXPECT_NE(StructuralHash(eb), StructuralHash(other));
}

TEST(StructuralHashing, KeyIgnoresOrderAndDuplicates) {
  ExprPool pool;
  ExprRef p = pool.Ult(pool.Var("x", 8), pool.Const(5, 8));
  ExprRef q = pool.Eq(pool.Var("y", 8), pool.Const(2, 8));
  std::vector<ExprRef> fwd = {p, q};
  std::vector<ExprRef> rev = {q, p, q};  // reordered + duplicated
  const auto k1 = QueryCache::Canonicalize(fwd);
  const auto k2 = QueryCache::Canonicalize(rev);
  EXPECT_EQ(k1.digest, k2.digest);
  EXPECT_EQ(k1.hashes, k2.hashes);
}

// --- Query cache ---------------------------------------------------------

TEST(QueryCacheTest, ExactHitsSatAndUnsat) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  QueryCache cache;

  std::vector<ExprRef> sat_q = {pool.Eq(x, pool.Const(3, 8))};
  SolveResult sat;
  sat.status = SolveStatus::kSat;
  sat.model = {{"x", 3}};
  cache.Insert(QueryCache::Canonicalize(sat_q), sat);

  std::vector<ExprRef> unsat_q = {pool.Ult(x, pool.Const(2, 8)),
                                  pool.Ult(pool.Const(5, 8), x)};
  SolveResult unsat;
  unsat.status = SolveStatus::kUnsat;
  cache.Insert(QueryCache::Canonicalize(unsat_q), unsat);

  auto hit = cache.Lookup(QueryCache::Canonicalize(sat_q), sat_q);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, SolveStatus::kSat);
  EXPECT_EQ(hit->model.at("x"), 3u);

  auto uhit = cache.Lookup(QueryCache::Canonicalize(unsat_q), unsat_q);
  ASSERT_TRUE(uhit.has_value());
  EXPECT_EQ(uhit->status, SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().exact_hits, 2u);
}

TEST(QueryCacheTest, UnsatSubsetRule) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef y = pool.Var("y", 8);
  QueryCache cache;

  std::vector<ExprRef> core = {pool.Ult(x, pool.Const(2, 8)),
                               pool.Ult(pool.Const(5, 8), x)};
  SolveResult unsat;
  unsat.status = SolveStatus::kUnsat;
  cache.Insert(QueryCache::Canonicalize(core), unsat);

  // Superset of a known-UNSAT set: more conjuncts cannot fix it.
  std::vector<ExprRef> superset = {pool.Eq(y, pool.Const(1, 8)), core[0],
                                   core[1]};
  auto hit = cache.Lookup(QueryCache::Canonicalize(superset), superset);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().subset_unsat_hits, 1u);
}

TEST(QueryCacheTest, ModelReuseValidatesBeforeReturning) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef y = pool.Var("y", 8);
  QueryCache cache;

  std::vector<ExprRef> q = {pool.Eq(x, pool.Const(3, 8))};
  SolveResult sat;
  sat.status = SolveStatus::kSat;
  sat.model = {{"x", 3}};
  cache.Insert(QueryCache::Canonicalize(q), sat);

  // The cached model {x:3} happens to satisfy a *different* query.
  std::vector<ExprRef> weaker = {pool.Ult(x, pool.Const(10, 8))};
  auto hit = cache.Lookup(QueryCache::Canonicalize(weaker), weaker);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, SolveStatus::kSat);
  EXPECT_EQ(cache.stats().model_reuse_hits, 1u);

  // Stale-model rejection: {x:3} does NOT satisfy y == 2 (unassigned vars
  // evaluate to 0), so the cache must miss, not return an invalid model.
  std::vector<ExprRef> stale = {q[0], pool.Eq(y, pool.Const(2, 8))};
  auto miss = cache.Lookup(QueryCache::Canonicalize(stale), stale);
  EXPECT_FALSE(miss.has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(QueryCacheTest, UnknownVerdictsAreNeverCached) {
  ExprPool pool;
  std::vector<ExprRef> q = {pool.Ult(pool.Var("x", 8), pool.Const(4, 8))};
  QueryCache cache;
  SolveResult unknown;
  unknown.status = SolveStatus::kUnknown;
  cache.Insert(QueryCache::Canonicalize(q), unknown);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(QueryCache::Canonicalize(q), q).has_value());
}

// --- Thread pool ---------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.concurrency(), 8u);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ForEachIndex(kN, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossRegions) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ForEachIndex(17, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 17u * 50u);
}

TEST(ThreadPoolTest, SerialFallbackRunsInline) {
  ThreadPool pool(1);
  size_t sum = 0;  // no synchronization: must run on this thread
  pool.ForEachIndex(5, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 10u);
}

// --- Pipeline ------------------------------------------------------------

TEST(Pipeline, DegeneratesToCheckSatWhenGatesOff) {
  PipelineOptions opts;
  opts.solver.cache_queries = false;
  opts.solver.slice_independent = false;
  opts.threads = 1;
  QueryPipeline pipeline(opts);

  ExprPool pool;
  ExprRef x = pool.Var("x", 32);
  std::vector<ExprRef> as = {
      pool.Eq(pool.Add(x, pool.Const(3, 32)), pool.Const(10, 32))};
  auto res = pipeline.Solve(as);
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(res.model.at("x"), 7u);
  EXPECT_EQ(pipeline.stats().cache_hits, 0u);
  EXPECT_EQ(pipeline.stats().cache_misses, 0u);
}

TEST(Pipeline, SlicedComponentsMergeIntoOneModel) {
  PipelineOptions opts;
  QueryPipeline pipeline(opts);
  ExprPool pool;
  ExprRef x = pool.Var("x", 16);
  ExprRef y = pool.Var("y", 16);
  std::vector<ExprRef> as = {
      pool.Eq(pool.Mul(x, x), pool.Const(1521, 16)),
      pool.Ult(x, pool.Const(200, 16)),
      pool.Eq(pool.Add(y, pool.Const(1, 16)), pool.Const(0, 16)),
  };
  auto res = pipeline.Solve(as);
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_TRUE(AllSatisfied(as, res.model));
  EXPECT_EQ(res.model.at("y"), 0xFFFFu);
  EXPECT_EQ(pipeline.stats().sliced_queries, 1u);
}

TEST(Pipeline, RepeatQueryIsACacheHit) {
  PipelineOptions opts;
  QueryPipeline pipeline(opts);
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  std::vector<ExprRef> as = {pool.Ult(x, pool.Const(2, 8)),
                             pool.Ult(pool.Const(5, 8), x)};
  EXPECT_EQ(pipeline.Solve(as).status, SolveStatus::kUnsat);
  const uint64_t solved_before = pipeline.stats().subqueries_solved;
  EXPECT_EQ(pipeline.Solve(as).status, SolveStatus::kUnsat);
  EXPECT_EQ(pipeline.stats().subqueries_solved, solved_before);
  EXPECT_GE(pipeline.stats().cache_hits, 1u);
}

// Builds a randomized batch of queries over a small variable set: mixes
// satisfiable component shapes, contradictions, duplicates, and queries
// sharing sub-conjunctions (the realistic prefix-reuse pattern).
std::vector<QueryPipeline::Query> RandomBatch(ExprPool& pool,
                                              SplitMix64& rng,
                                              size_t num_queries) {
  ExprRef vars[4] = {pool.Var("a", 8), pool.Var("b", 8), pool.Var("c", 8),
                     pool.Var("d", 8)};
  auto atom = [&]() -> ExprRef {
    ExprRef v = vars[rng.NextBelow(4)];
    ExprRef k = pool.Const(rng.NextBelow(256), 8);
    switch (rng.NextBelow(4)) {
      case 0: return pool.Ult(v, k);
      case 1: return pool.Ult(k, v);
      case 2: return pool.Eq(v, k);
      default:
        return pool.Eq(pool.Add(v, vars[rng.NextBelow(4)]), k);
    }
  };
  std::vector<QueryPipeline::Query> batch(num_queries);
  for (auto& q : batch) {
    const size_t len = 1 + rng.NextBelow(5);
    for (size_t i = 0; i < len; ++i) q.push_back(atom());
  }
  return batch;
}

// Property: for random assertion sets, the full pipeline (cache + slicing)
// returns the same status as a fresh CheckSat, and every SAT model
// satisfies the whole conjunction.
class PipelineVsFacade : public ::testing::TestWithParam<int> {};

TEST_P(PipelineVsFacade, CachedEqualsFresh) {
  SplitMix64 rng(GetParam() * 7919 + 1);
  ExprPool pool;
  const auto batch = RandomBatch(pool, rng, 24);

  PipelineOptions opts;
  opts.threads = 1;
  QueryPipeline pipeline(opts);
  const auto results = pipeline.SolveBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto fresh = CheckSat(batch[i]);
    EXPECT_EQ(results[i].status, fresh.status) << "query " << i;
    if (results[i].status == SolveStatus::kSat) {
      EXPECT_TRUE(AllSatisfied(batch[i], results[i].model)) << "query " << i;
    }
  }
  // Re-solving the same batch must be answered entirely from the cache.
  const uint64_t solved = pipeline.stats().subqueries_solved;
  const auto again = pipeline.SolveBatch(batch);
  EXPECT_EQ(pipeline.stats().subqueries_solved, solved);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(again[i].status, results[i].status);
    EXPECT_EQ(again[i].model, results[i].model);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineVsFacade, ::testing::Range(0, 10));

// Determinism: the same batch solved with 1 thread and with 8 threads
// yields bit-identical results (status, model, note).
class PipelineThreadDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(PipelineThreadDeterminism, OneVsEightThreads) {
  SplitMix64 rng(GetParam() * 104729 + 3);
  ExprPool pool;
  const auto batch = RandomBatch(pool, rng, 32);

  PipelineOptions serial;
  serial.threads = 1;
  PipelineOptions parallel;
  parallel.threads = 8;
  QueryPipeline p1(serial), p8(parallel);
  const auto r1 = p1.SolveBatch(batch);
  const auto r8 = p8.SolveBatch(batch);
  ASSERT_EQ(r1.size(), r8.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].status, r8[i].status) << "query " << i;
    EXPECT_EQ(r1[i].model, r8[i].model) << "query " << i;
    EXPECT_EQ(r1[i].note, r8[i].note) << "query " << i;
  }
  EXPECT_EQ(p1.stats().subqueries_solved, p8.stats().subqueries_solved);
  EXPECT_EQ(p1.stats().cache_hits, p8.stats().cache_hits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineThreadDeterminism,
                         ::testing::Range(0, 6));

// --- Incremental sessions ------------------------------------------------

// Prefix-chain batch: every query restates the same variable-connected
// prefix and pins a distinct value into it — the branch-negation pattern
// the warm sessions target. One slice component, no cache hits possible.
std::vector<QueryPipeline::Query> PrefixChainBatch(ExprPool& pool,
                                                   int links,
                                                   int num_queries) {
  std::vector<ExprRef> prefix;
  for (int g = 0; g + 1 < links; ++g) {
    ExprRef cur = pool.Var("p" + std::to_string(g), 16);
    ExprRef next = pool.Var("p" + std::to_string(g + 1), 16);
    prefix.push_back(pool.Eq(
        next, pool.Add(pool.Mul(cur, cur), pool.Const(13 * g + 1, 16))));
  }
  ExprRef head = pool.Var("p0", 16);
  std::vector<QueryPipeline::Query> batch;
  for (int i = 0; i < num_queries; ++i) {
    QueryPipeline::Query q = prefix;
    q.push_back(pool.Eq(pool.And(head, pool.Const(0xF, 16)),
                        pool.Const(static_cast<uint64_t>(i % 16), 16)));
    batch.push_back(std::move(q));
  }
  return batch;
}

TEST(IncrementalPipeline, WarmSessionsMatchFacade) {
  ExprPool pool;
  const auto batch = PrefixChainBatch(pool, 8, 12);
  PipelineOptions opts;
  opts.threads = 1;
  QueryPipeline pipeline(opts);
  const auto results = pipeline.SolveBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto fresh = CheckSat(batch[i]);
    EXPECT_EQ(results[i].status, fresh.status) << "query " << i;
    if (results[i].status == SolveStatus::kSat) {
      EXPECT_TRUE(AllSatisfied(batch[i], results[i].model)) << "query " << i;
    }
  }
  // The whole batch shares variables: one session, every query solved
  // warm, nothing fell back to the cold path.
  EXPECT_EQ(pipeline.stats().incremental_sessions, 1u);
  EXPECT_EQ(pipeline.stats().incremental_solves, batch.size());
  EXPECT_EQ(pipeline.stats().incremental_fallbacks, 0u);
}

TEST(IncrementalPipeline, MixedBatchGroupsByVariableOverlap) {
  // Two disjoint prefix families plus a singleton → two multi-member
  // sessions and one cold singleton, regardless of thread count.
  ExprPool pool;
  auto batch = PrefixChainBatch(pool, 6, 6);
  ExprRef z = pool.Var("z_lone", 8);
  for (int i = 0; i < 6; ++i) {
    QueryPipeline::Query q;
    ExprRef a = pool.Var("m" + std::to_string(0), 16);
    ExprRef b = pool.Var("m" + std::to_string(1), 16);
    q.push_back(pool.Eq(pool.Add(a, b), pool.Const(100 + i, 16)));
    q.push_back(pool.Ult(a, pool.Const(50 + i, 16)));
    batch.push_back(std::move(q));
  }
  batch.push_back({pool.Eq(z, pool.Const(7, 8))});

  PipelineOptions opts;
  opts.threads = 1;
  QueryPipeline pipeline(opts);
  const auto results = pipeline.SolveBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i].status, CheckSat(batch[i]).status) << "query " << i;
  }
  EXPECT_EQ(pipeline.stats().incremental_sessions, 2u);
}

TEST(IncrementalPipeline, CircuitBudgetFallsBackToColdPath) {
  // A sat-variable budget too small for the session circuit: the session
  // resets and every member is answered by the cold per-query path, with
  // verdicts unchanged.
  ExprPool pool;
  const auto batch = PrefixChainBatch(pool, 8, 6);
  PipelineOptions tiny;
  tiny.threads = 1;
  tiny.solver.max_sat_vars = 64;
  QueryPipeline pipeline(tiny);
  const auto results = pipeline.SolveBatch(batch);

  PipelineOptions cold_opts;
  cold_opts.threads = 1;
  cold_opts.solver.max_sat_vars = 64;
  cold_opts.solver.incremental_batch = false;
  cold_opts.solver.portfolio = false;
  QueryPipeline cold(cold_opts);
  const auto cold_results = cold.SolveBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i].status, cold_results[i].status) << "query " << i;
    EXPECT_EQ(results[i].note, cold_results[i].note) << "query " << i;
  }
  EXPECT_GE(pipeline.stats().incremental_fallbacks, 1u);
}

class IncrementalThreadDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalThreadDeterminism, OneVsEightThreads) {
  // Same contract as PipelineThreadDeterminism, but on session-heavy
  // batches: prefix chains mixed with random queries so multi-member
  // sessions, singletons, and cache interactions all occur.
  SplitMix64 rng(GetParam() * 52361 + 11);
  ExprPool pool;
  auto batch = PrefixChainBatch(pool, 6, 10);
  for (auto& q : RandomBatch(pool, rng, 16)) batch.push_back(std::move(q));

  PipelineOptions serial;
  serial.threads = 1;
  PipelineOptions parallel;
  parallel.threads = 8;
  QueryPipeline p1(serial), p8(parallel);
  const auto r1 = p1.SolveBatch(batch);
  const auto r8 = p8.SolveBatch(batch);
  ASSERT_EQ(r1.size(), r8.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].status, r8[i].status) << "query " << i;
    EXPECT_EQ(r1[i].model, r8[i].model) << "query " << i;
    EXPECT_EQ(r1[i].note, r8[i].note) << "query " << i;
    EXPECT_EQ(r1[i].conflicts, r8[i].conflicts) << "query " << i;
  }
  EXPECT_EQ(p1.stats().incremental_sessions, p8.stats().incremental_sessions);
  EXPECT_EQ(p1.stats().incremental_solves, p8.stats().incremental_solves);
  EXPECT_EQ(p1.stats().portfolio_runs, p8.stats().portfolio_runs);
  EXPECT_EQ(p1.stats().portfolio_rescues, p8.stats().portfolio_rescues);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalThreadDeterminism,
                         ::testing::Range(0, 4));

// --- Portfolio -----------------------------------------------------------

// A multiplication inversion the primary config cannot crack in one
// conflict: with max_conflicts=1 the first pass returns kUnknown with the
// budget-exhausted note, which is exactly the portfolio trigger.
std::vector<ExprRef> HardSatQuery(ExprPool& pool, const std::string& name) {
  ExprRef x = pool.Var(name, 16);
  return {pool.Eq(pool.Mul(x, x), pool.Const(1521, 16)),
          pool.Ult(x, pool.Const(200, 16))};
}

TEST(PortfolioTest, RescuesBudgetExhaustedQueries) {
  ExprPool pool;
  PipelineOptions opts;
  opts.threads = 1;
  opts.solver.cache_queries = false;
  // Disable the pre-solve pass: HardSatQuery has an enumerable range, and a
  // definitive verdict would keep the starved primary from ever running.
  opts.solver.presolve = false;
  opts.solver.max_conflicts = 1;  // primary always exhausts its budget
  SolverOptions patient = opts.solver;
  patient.max_conflicts = 1'000'000;
  opts.portfolio_configs = {patient};
  QueryPipeline pipeline(opts);

  const auto res = pipeline.Solve(HardSatQuery(pool, "x"));
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(res.model.at("x"), 39u);
  EXPECT_EQ(pipeline.stats().portfolio_rescues, 1u);
  EXPECT_GE(pipeline.stats().portfolio_runs, 1u);
  // Rescue accounting: the committed conflicts include the failed primary
  // attempt plus the winning alternate.
  EXPECT_GT(res.conflicts, 0u);
}

TEST(PortfolioTest, NoRescueLeavesPrimaryAnswerUntouched) {
  // Alternates as starved as the primary: every config exhausts, the
  // original kUnknown note is preserved, and runs are still charged.
  ExprPool pool;
  PipelineOptions opts;
  opts.threads = 1;
  opts.solver.cache_queries = false;
  opts.solver.presolve = false;  // see RescuesBudgetExhaustedQueries
  opts.solver.max_conflicts = 1;
  SolverOptions also_starved = opts.solver;
  opts.portfolio_configs = {also_starved};
  QueryPipeline pipeline(opts);

  const auto res = pipeline.Solve(HardSatQuery(pool, "x"));
  EXPECT_EQ(res.status, SolveStatus::kUnknown);
  EXPECT_EQ(res.note, "conflict budget exhausted");
  EXPECT_EQ(pipeline.stats().portfolio_rescues, 0u);
  EXPECT_EQ(pipeline.stats().portfolio_runs, 1u);
}

TEST(PortfolioTest, DisabledGateNeverRuns) {
  ExprPool pool;
  PipelineOptions opts;
  opts.threads = 1;
  opts.solver.cache_queries = false;
  opts.solver.presolve = false;  // see RescuesBudgetExhaustedQueries
  opts.solver.max_conflicts = 1;
  opts.solver.portfolio = false;
  QueryPipeline pipeline(opts);
  const auto res = pipeline.Solve(HardSatQuery(pool, "x"));
  EXPECT_EQ(res.status, SolveStatus::kUnknown);
  EXPECT_EQ(pipeline.stats().portfolio_runs, 0u);
  EXPECT_EQ(pipeline.stats().portfolio_rescues, 0u);
}

class PortfolioThreadDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(PortfolioThreadDeterminism, OneVsEightThreads) {
  // Many racing queries, two alternates, 1 vs 8 threads: the committed
  // result and the charged-run accounting must not depend on which config
  // finished first on the wall clock.
  ExprPool pool;
  std::vector<QueryPipeline::Query> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(HardSatQuery(pool, "v" + std::to_string(i)));
  }
  PipelineOptions opts;
  opts.solver.cache_queries = false;
  opts.solver.presolve = false;  // see RescuesBudgetExhaustedQueries
  opts.solver.slice_independent = (GetParam() % 2) == 0;
  opts.solver.max_conflicts = 1;
  SolverOptions still_starved = opts.solver;
  SolverOptions patient = opts.solver;
  patient.max_conflicts = 1'000'000;
  opts.portfolio_configs = {still_starved, patient};

  PipelineOptions serial = opts;
  serial.threads = 1;
  PipelineOptions parallel = opts;
  parallel.threads = 8;
  QueryPipeline p1(serial), p8(parallel);
  const auto r1 = p1.SolveBatch(batch);
  const auto r8 = p8.SolveBatch(batch);
  ASSERT_EQ(r1.size(), r8.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].status, SolveStatus::kSat) << "query " << i;
    EXPECT_EQ(r1[i].status, r8[i].status) << "query " << i;
    EXPECT_EQ(r1[i].model, r8[i].model) << "query " << i;
    EXPECT_EQ(r1[i].conflicts, r8[i].conflicts) << "query " << i;
  }
  EXPECT_EQ(p1.stats().portfolio_runs, p8.stats().portfolio_runs);
  EXPECT_EQ(p1.stats().portfolio_rescues, p8.stats().portfolio_rescues);
  EXPECT_EQ(p1.stats().portfolio_rescues, batch.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortfolioThreadDeterminism,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace sbce::solver
