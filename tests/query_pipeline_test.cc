// Query pipeline tests: independence slicer, structural hashing, the
// query cache's three hit rules (exact, unsat-subset, model reuse) with
// stale-model rejection, the fork-join pool, and the pipeline itself —
// including the property that cached/sliced/parallel answers agree with a
// fresh CheckSat on randomized assertion sets.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/solver/eval.h"
#include "src/solver/pipeline.h"
#include "src/solver/query_cache.h"
#include "src/solver/slice.h"
#include "src/solver/solver.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace sbce::solver {
namespace {

// --- Independence slicer -------------------------------------------------

TEST(Slice, DisjointVariableSetsSplit) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef y = pool.Var("y", 8);
  std::vector<ExprRef> as = {
      pool.Ult(x, pool.Const(5, 8)),
      pool.Eq(y, pool.Const(3, 8)),
      pool.Ult(pool.Const(1, 8), x),
  };
  auto groups = SliceByIndependence(as);
  ASSERT_EQ(groups.size(), 2u);
  // Components ordered by first appearance; members keep relative order.
  EXPECT_EQ(groups[0], (std::vector<ExprRef>{as[0], as[2]}));
  EXPECT_EQ(groups[1], (std::vector<ExprRef>{as[1]}));
}

TEST(Slice, SharedVariableBridgesComponents) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef y = pool.Var("y", 8);
  ExprRef z = pool.Var("z", 8);
  // {x}, {y}, then {x,y} fuses everything; {z} stays apart.
  std::vector<ExprRef> as = {
      pool.Ult(x, pool.Const(9, 8)),
      pool.Ult(y, pool.Const(9, 8)),
      pool.Eq(pool.Add(x, y), pool.Const(7, 8)),
      pool.Eq(z, pool.Const(1, 8)),
  };
  auto groups = SliceByIndependence(as);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 3u);
  EXPECT_EQ(groups[1], (std::vector<ExprRef>{as[3]}));
}

TEST(Slice, ConstantAssertionsAreSingletons) {
  ExprPool pool;
  // A non-foldable 1-bit expression with no variables is impossible to
  // build through the folding pool, so use True() directly: it must form
  // its own component and not glue anything together.
  std::vector<ExprRef> as = {
      pool.True(),
      pool.Ult(pool.Var("x", 8), pool.Const(4, 8)),
  };
  auto groups = SliceByIndependence(as);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<ExprRef>{as[0]}));
}

// --- Structural hashing --------------------------------------------------

TEST(StructuralHashing, PoolIndependent) {
  ExprPool a, b;
  ExprRef ea = a.Eq(a.Add(a.Var("x", 16), a.Const(3, 16)), a.Const(9, 16));
  ExprRef eb = b.Eq(b.Add(b.Var("x", 16), b.Const(3, 16)), b.Const(9, 16));
  EXPECT_NE(ea, eb);  // different pools, different nodes...
  EXPECT_EQ(StructuralHash(ea), StructuralHash(eb));  // ...same content
  ExprRef other = b.Eq(b.Add(b.Var("x", 16), b.Const(4, 16)),
                       b.Const(9, 16));
  EXPECT_NE(StructuralHash(eb), StructuralHash(other));
}

TEST(StructuralHashing, KeyIgnoresOrderAndDuplicates) {
  ExprPool pool;
  ExprRef p = pool.Ult(pool.Var("x", 8), pool.Const(5, 8));
  ExprRef q = pool.Eq(pool.Var("y", 8), pool.Const(2, 8));
  std::vector<ExprRef> fwd = {p, q};
  std::vector<ExprRef> rev = {q, p, q};  // reordered + duplicated
  const auto k1 = QueryCache::Canonicalize(fwd);
  const auto k2 = QueryCache::Canonicalize(rev);
  EXPECT_EQ(k1.digest, k2.digest);
  EXPECT_EQ(k1.hashes, k2.hashes);
}

// --- Query cache ---------------------------------------------------------

TEST(QueryCacheTest, ExactHitsSatAndUnsat) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  QueryCache cache;

  std::vector<ExprRef> sat_q = {pool.Eq(x, pool.Const(3, 8))};
  SolveResult sat;
  sat.status = SolveStatus::kSat;
  sat.model = {{"x", 3}};
  cache.Insert(QueryCache::Canonicalize(sat_q), sat);

  std::vector<ExprRef> unsat_q = {pool.Ult(x, pool.Const(2, 8)),
                                  pool.Ult(pool.Const(5, 8), x)};
  SolveResult unsat;
  unsat.status = SolveStatus::kUnsat;
  cache.Insert(QueryCache::Canonicalize(unsat_q), unsat);

  auto hit = cache.Lookup(QueryCache::Canonicalize(sat_q), sat_q);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, SolveStatus::kSat);
  EXPECT_EQ(hit->model.at("x"), 3u);

  auto uhit = cache.Lookup(QueryCache::Canonicalize(unsat_q), unsat_q);
  ASSERT_TRUE(uhit.has_value());
  EXPECT_EQ(uhit->status, SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().exact_hits, 2u);
}

TEST(QueryCacheTest, UnsatSubsetRule) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef y = pool.Var("y", 8);
  QueryCache cache;

  std::vector<ExprRef> core = {pool.Ult(x, pool.Const(2, 8)),
                               pool.Ult(pool.Const(5, 8), x)};
  SolveResult unsat;
  unsat.status = SolveStatus::kUnsat;
  cache.Insert(QueryCache::Canonicalize(core), unsat);

  // Superset of a known-UNSAT set: more conjuncts cannot fix it.
  std::vector<ExprRef> superset = {pool.Eq(y, pool.Const(1, 8)), core[0],
                                   core[1]};
  auto hit = cache.Lookup(QueryCache::Canonicalize(superset), superset);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().subset_unsat_hits, 1u);
}

TEST(QueryCacheTest, ModelReuseValidatesBeforeReturning) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef y = pool.Var("y", 8);
  QueryCache cache;

  std::vector<ExprRef> q = {pool.Eq(x, pool.Const(3, 8))};
  SolveResult sat;
  sat.status = SolveStatus::kSat;
  sat.model = {{"x", 3}};
  cache.Insert(QueryCache::Canonicalize(q), sat);

  // The cached model {x:3} happens to satisfy a *different* query.
  std::vector<ExprRef> weaker = {pool.Ult(x, pool.Const(10, 8))};
  auto hit = cache.Lookup(QueryCache::Canonicalize(weaker), weaker);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status, SolveStatus::kSat);
  EXPECT_EQ(cache.stats().model_reuse_hits, 1u);

  // Stale-model rejection: {x:3} does NOT satisfy y == 2 (unassigned vars
  // evaluate to 0), so the cache must miss, not return an invalid model.
  std::vector<ExprRef> stale = {q[0], pool.Eq(y, pool.Const(2, 8))};
  auto miss = cache.Lookup(QueryCache::Canonicalize(stale), stale);
  EXPECT_FALSE(miss.has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(QueryCacheTest, UnknownVerdictsAreNeverCached) {
  ExprPool pool;
  std::vector<ExprRef> q = {pool.Ult(pool.Var("x", 8), pool.Const(4, 8))};
  QueryCache cache;
  SolveResult unknown;
  unknown.status = SolveStatus::kUnknown;
  cache.Insert(QueryCache::Canonicalize(q), unknown);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(QueryCache::Canonicalize(q), q).has_value());
}

// --- Thread pool ---------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.concurrency(), 8u);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ForEachIndex(kN, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossRegions) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ForEachIndex(17, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 17u * 50u);
}

TEST(ThreadPoolTest, SerialFallbackRunsInline) {
  ThreadPool pool(1);
  size_t sum = 0;  // no synchronization: must run on this thread
  pool.ForEachIndex(5, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 10u);
}

// --- Pipeline ------------------------------------------------------------

TEST(Pipeline, DegeneratesToCheckSatWhenGatesOff) {
  PipelineOptions opts;
  opts.solver.cache_queries = false;
  opts.solver.slice_independent = false;
  opts.threads = 1;
  QueryPipeline pipeline(opts);

  ExprPool pool;
  ExprRef x = pool.Var("x", 32);
  std::vector<ExprRef> as = {
      pool.Eq(pool.Add(x, pool.Const(3, 32)), pool.Const(10, 32))};
  auto res = pipeline.Solve(as);
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_EQ(res.model.at("x"), 7u);
  EXPECT_EQ(pipeline.stats().cache_hits, 0u);
  EXPECT_EQ(pipeline.stats().cache_misses, 0u);
}

TEST(Pipeline, SlicedComponentsMergeIntoOneModel) {
  PipelineOptions opts;
  QueryPipeline pipeline(opts);
  ExprPool pool;
  ExprRef x = pool.Var("x", 16);
  ExprRef y = pool.Var("y", 16);
  std::vector<ExprRef> as = {
      pool.Eq(pool.Mul(x, x), pool.Const(1521, 16)),
      pool.Ult(x, pool.Const(200, 16)),
      pool.Eq(pool.Add(y, pool.Const(1, 16)), pool.Const(0, 16)),
  };
  auto res = pipeline.Solve(as);
  ASSERT_EQ(res.status, SolveStatus::kSat);
  EXPECT_TRUE(AllSatisfied(as, res.model));
  EXPECT_EQ(res.model.at("y"), 0xFFFFu);
  EXPECT_EQ(pipeline.stats().sliced_queries, 1u);
}

TEST(Pipeline, RepeatQueryIsACacheHit) {
  PipelineOptions opts;
  QueryPipeline pipeline(opts);
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  std::vector<ExprRef> as = {pool.Ult(x, pool.Const(2, 8)),
                             pool.Ult(pool.Const(5, 8), x)};
  EXPECT_EQ(pipeline.Solve(as).status, SolveStatus::kUnsat);
  const uint64_t solved_before = pipeline.stats().subqueries_solved;
  EXPECT_EQ(pipeline.Solve(as).status, SolveStatus::kUnsat);
  EXPECT_EQ(pipeline.stats().subqueries_solved, solved_before);
  EXPECT_GE(pipeline.stats().cache_hits, 1u);
}

// Builds a randomized batch of queries over a small variable set: mixes
// satisfiable component shapes, contradictions, duplicates, and queries
// sharing sub-conjunctions (the realistic prefix-reuse pattern).
std::vector<QueryPipeline::Query> RandomBatch(ExprPool& pool,
                                              SplitMix64& rng,
                                              size_t num_queries) {
  ExprRef vars[4] = {pool.Var("a", 8), pool.Var("b", 8), pool.Var("c", 8),
                     pool.Var("d", 8)};
  auto atom = [&]() -> ExprRef {
    ExprRef v = vars[rng.NextBelow(4)];
    ExprRef k = pool.Const(rng.NextBelow(256), 8);
    switch (rng.NextBelow(4)) {
      case 0: return pool.Ult(v, k);
      case 1: return pool.Ult(k, v);
      case 2: return pool.Eq(v, k);
      default:
        return pool.Eq(pool.Add(v, vars[rng.NextBelow(4)]), k);
    }
  };
  std::vector<QueryPipeline::Query> batch(num_queries);
  for (auto& q : batch) {
    const size_t len = 1 + rng.NextBelow(5);
    for (size_t i = 0; i < len; ++i) q.push_back(atom());
  }
  return batch;
}

// Property: for random assertion sets, the full pipeline (cache + slicing)
// returns the same status as a fresh CheckSat, and every SAT model
// satisfies the whole conjunction.
class PipelineVsFacade : public ::testing::TestWithParam<int> {};

TEST_P(PipelineVsFacade, CachedEqualsFresh) {
  SplitMix64 rng(GetParam() * 7919 + 1);
  ExprPool pool;
  const auto batch = RandomBatch(pool, rng, 24);

  PipelineOptions opts;
  opts.threads = 1;
  QueryPipeline pipeline(opts);
  const auto results = pipeline.SolveBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto fresh = CheckSat(batch[i]);
    EXPECT_EQ(results[i].status, fresh.status) << "query " << i;
    if (results[i].status == SolveStatus::kSat) {
      EXPECT_TRUE(AllSatisfied(batch[i], results[i].model)) << "query " << i;
    }
  }
  // Re-solving the same batch must be answered entirely from the cache.
  const uint64_t solved = pipeline.stats().subqueries_solved;
  const auto again = pipeline.SolveBatch(batch);
  EXPECT_EQ(pipeline.stats().subqueries_solved, solved);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(again[i].status, results[i].status);
    EXPECT_EQ(again[i].model, results[i].model);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineVsFacade, ::testing::Range(0, 10));

// Determinism: the same batch solved with 1 thread and with 8 threads
// yields bit-identical results (status, model, note).
class PipelineThreadDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(PipelineThreadDeterminism, OneVsEightThreads) {
  SplitMix64 rng(GetParam() * 104729 + 3);
  ExprPool pool;
  const auto batch = RandomBatch(pool, rng, 32);

  PipelineOptions serial;
  serial.threads = 1;
  PipelineOptions parallel;
  parallel.threads = 8;
  QueryPipeline p1(serial), p8(parallel);
  const auto r1 = p1.SolveBatch(batch);
  const auto r8 = p8.SolveBatch(batch);
  ASSERT_EQ(r1.size(), r8.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].status, r8[i].status) << "query " << i;
    EXPECT_EQ(r1[i].model, r8[i].model) << "query " << i;
    EXPECT_EQ(r1[i].note, r8[i].note) << "query " << i;
  }
  EXPECT_EQ(p1.stats().subqueries_solved, p8.stats().subqueries_solved);
  EXPECT_EQ(p1.stats().cache_hits, p8.stats().cache_hits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineThreadDeterminism,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace sbce::solver
