// Decode-cache semantics: predecode-vs-raw-decode equivalence over the
// whole opcode table, store-into-text invalidation (self-modifying code),
// fault-message parity between the cached and uncached fetch paths, fork
// sharing with per-process dirty tracking, and hit/miss accounting.
#include <gtest/gtest.h>

#include <span>
#include <string_view>

#include "src/isa/assembler.h"
#include "src/isa/instruction.h"
#include "src/isa/predecode.h"
#include "src/vm/machine.h"

namespace sbce {
namespace {

isa::BinaryImage MustAssemble(std::string_view src) {
  auto img = isa::Assemble(src);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  return std::move(img).value();
}

vm::RunResult RunImage(const isa::BinaryImage& img, bool decode_cache,
                       std::vector<std::string> argv = {"prog"}) {
  vm::Machine::Options options;
  options.decode_cache = decode_cache;
  vm::Machine m(img, std::move(argv), vm::Devices(), options);
  return m.Run();
}

/// The cache must be invisible: every observable field matches, only the
/// hit/miss split may differ.
void ExpectSameBehaviour(const vm::RunResult& on, const vm::RunResult& off) {
  EXPECT_EQ(on.exited, off.exited);
  EXPECT_EQ(on.exit_code, off.exit_code);
  EXPECT_EQ(on.bomb_triggered, off.bomb_triggered);
  EXPECT_EQ(on.faulted, off.faulted);
  EXPECT_EQ(on.fault_reason, off.fault_reason);
  EXPECT_EQ(on.budget_exhausted, off.budget_exhausted);
  EXPECT_EQ(on.instructions, off.instructions);
  EXPECT_EQ(on.stdout_text, off.stdout_text);
}

TEST(Predecode, MatchesRawDecodeOverWholeOpcodeTable) {
  // One slot per opcode with operands valid for every form (register
  // indexes 1..3 are in range for both banks), plus two undecodable
  // slots: an unknown opcode byte and an FP register out of range.
  isa::Section text;
  text.name = ".text";
  text.vaddr = 0x1000;
  text.flags = isa::kSectionExec;
  auto append = [&text](const isa::Instruction& in) {
    uint8_t buf[isa::kInstrBytes];
    isa::Encode(in, std::span<uint8_t, isa::kInstrBytes>(buf));
    text.data.insert(text.data.end(), buf, buf + isa::kInstrBytes);
  };
  const auto n_opcodes = static_cast<unsigned>(isa::Opcode::kOpcodeCount);
  for (unsigned op = 0; op < n_opcodes; ++op) {
    isa::Instruction in;
    in.op = static_cast<isa::Opcode>(op);
    in.rd = 1;
    in.rs1 = 2;
    in.rs2 = 3;
    in.imm = 0x40;
    append(in);
  }
  text.data.insert(text.data.end(), {0xFF, 0, 0, 0, 0, 0, 0, 0});
  isa::Instruction bad;
  bad.op = isa::Opcode::kFAdd;
  bad.rd = 12;  // f12 does not exist
  append(bad);

  isa::BinaryImage img;
  img.set_entry(0x1000);
  img.AddSection(text);

  const auto pre = isa::Predecode(img);
  ASSERT_NE(pre, nullptr);
  EXPECT_EQ(pre->valid_count(), n_opcodes);

  const auto& data = img.sections()[0].data;
  for (size_t off = 0; off < data.size(); off += isa::kInstrBytes) {
    const auto raw =
        isa::Decode(std::span(data).subspan(off, isa::kInstrBytes));
    const isa::Instruction* cached = pre->Lookup(0x1000 + off);
    if (raw.ok()) {
      ASSERT_NE(cached, nullptr) << "slot " << off / isa::kInstrBytes;
      EXPECT_EQ(*cached, raw.value()) << "slot " << off / isa::kInstrBytes;
    } else {
      EXPECT_EQ(cached, nullptr) << "slot " << off / isa::kInstrBytes;
    }
    // Misaligned pcs never hit the cache.
    EXPECT_EQ(pre->Lookup(0x1000 + off + 3), nullptr);
  }
  // Outside the text range in both directions.
  EXPECT_EQ(pre->Lookup(0x1000 + data.size()), nullptr);
  EXPECT_EQ(pre->Lookup(0x0ff8), nullptr);
  EXPECT_TRUE(pre->Contains(0x1000));
  EXPECT_FALSE(pre->Contains(0x1000 + data.size()));
}

TEST(DecodeCache, StoreIntoTextInvalidates) {
  // Self-modifying code: copy the encoded `movi r1, 7` over the
  // `movi r1, 11` at `patch` before falling through to it. Without
  // write-to-code invalidation the cached machine would exit 11.
  const auto img = MustAssemble(R"(
    .entry main
    main:
      lea r3, template
      ld8 r4, [r3+0]
      lea r5, patch
      st8 r4, [r5+0]
    patch:
      movi r1, 11
      sys 0
    template:
      movi r1, 7
  )");
  const auto on = RunImage(img, /*decode_cache=*/true);
  const auto off = RunImage(img, /*decode_cache=*/false);
  EXPECT_TRUE(on.exited);
  EXPECT_EQ(on.exit_code, 7);
  ExpectSameBehaviour(on, off);
  // The dirtied page forced the patched instruction onto the raw path.
  EXPECT_GT(on.decode_cache_hits, 0u);
  EXPECT_GT(on.decode_cache_misses, 0u);
}

TEST(DecodeCache, FaultMessageIdenticalOnUndecodableJump) {
  // Jump into .data after planting an unknown opcode byte there: the pc
  // is outside every exec segment, so the fetch takes the raw path and
  // must fault with the same message the uncached interpreter produces.
  const auto img = MustAssemble(R"(
    .entry main
    main:
      movi r4, 0xFF
      lea r3, blob
      st1 r4, [r3+0]
      jmpr r3
    .data
    blob: .space 8
  )");
  const auto on = RunImage(img, /*decode_cache=*/true);
  const auto off = RunImage(img, /*decode_cache=*/false);
  EXPECT_TRUE(on.faulted);
  EXPECT_NE(on.fault_reason.find("opcode"), std::string::npos)
      << on.fault_reason;
  ExpectSameBehaviour(on, off);
}

TEST(DecodeCache, MisalignedJumpIdentical) {
  // A pc in the middle of an instruction misses the cache (slots are
  // 8-byte aligned); whatever the straddling bytes decode to, cached and
  // uncached runs must agree byte-for-byte.
  const auto img = MustAssemble(R"(
    .entry main
    main:
      lea r3, target
      addi r3, r3, 4
      jmpr r3
    target:
      movi r1, 5
      sys 0
  )");
  const auto on = RunImage(img, /*decode_cache=*/true);
  const auto off = RunImage(img, /*decode_cache=*/false);
  ExpectSameBehaviour(on, off);
}

TEST(DecodeCache, ForkChildPatchDoesNotLeakToParent) {
  // The predecoded text is shared across fork, but dirty-code tracking is
  // per-process memory state: the child patches `patchsite` (sees 7), the
  // parent's copy stays pristine (sees 11). Exit = child*16 + parent.
  const auto img = MustAssemble(R"(
    .entry main
    main:
      lea r1, fdbuf
      sys 10          ; pipe
      sys 9           ; fork
      bnz r0, parent
      ; child: patch own text, run it, ship the result through the pipe
      lea r3, template
      ld8 r4, [r3+0]
      lea r5, patchsite
      st8 r4, [r5+0]
      call patchsite
      lea r2, cell
      st8 r0, [r2+0]
      lea r4, fdbuf
      ld8 r1, [r4+8]
      movi r3, 8
      sys 1           ; write(wfd, cell, 8)
      movi r1, 0
      sys 0
    parent:
      lea r4, fdbuf
      ld8 r1, [r4+0]
      lea r2, cell2
      movi r3, 8
      sys 2           ; read blocks until the child writes
      call patchsite
      lea r4, cell2
      ld8 r6, [r4+0]
      muli r6, r6, 16
      add r1, r6, r0
      sys 0
    patchsite:
      movi r0, 11
      ret
    template:
      movi r0, 7
    .data
    fdbuf: .space 16
    cell:  .space 8
    cell2: .space 8
  )");
  const auto on = RunImage(img, /*decode_cache=*/true);
  const auto off = RunImage(img, /*decode_cache=*/false);
  EXPECT_TRUE(on.exited);
  EXPECT_FALSE(on.faulted) << on.fault_reason;
  EXPECT_EQ(on.exit_code, 7 * 16 + 11);
  ExpectSameBehaviour(on, off);
}

TEST(DecodeCache, HitMissAccounting) {
  const auto img = MustAssemble(R"(
    .entry main
    main:
      movi r2, 1000
    loop:
      subi r2, r2, 1
      bnz r2, loop
      movi r1, 0
      sys 0
  )");
  const auto on = RunImage(img, /*decode_cache=*/true);
  EXPECT_TRUE(on.exited);
  // Straight-line code with no stores into text: every fetch hits.
  EXPECT_EQ(on.decode_cache_hits, on.instructions);
  EXPECT_EQ(on.decode_cache_misses, 0u);

  const auto off = RunImage(img, /*decode_cache=*/false);
  EXPECT_EQ(off.decode_cache_hits, 0u);
  EXPECT_EQ(off.decode_cache_misses, off.instructions);
  ExpectSameBehaviour(on, off);
}

TEST(DecodeCache, SharedPredecodeAcrossMachines) {
  const auto img = MustAssemble(R"(
    .entry main
    main:
      movi r1, 9
      sys 0
  )");
  const auto shared = isa::Predecode(img);
  vm::Machine::Options options;
  options.predecoded = shared;
  vm::Machine a(img, {"prog"}, vm::Devices(), options);
  vm::Machine b(img, {"prog"}, vm::Devices(), options);
  const auto ra = a.Run();
  const auto rb = b.Run();
  EXPECT_EQ(ra.exit_code, 9);
  ExpectSameBehaviour(ra, rb);
  EXPECT_EQ(ra.decode_cache_hits, ra.instructions);
}

}  // namespace
}  // namespace sbce
