// Direct symbolic-executor tests: expression-level propagation, policies,
// diagnostics — below the engine, above the VM.
#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/solver/eval.h"
#include "src/solver/solver.h"
#include "src/symex/executor.h"
#include "src/vm/machine.h"

namespace sbce::symex {
namespace {

struct Walked {
  std::vector<vm::TraceEvent> events;
  uint64_t argv1 = 0;
  uint32_t pid = 0;
};

Walked RunWalk(std::string_view src, std::vector<std::string> argv) {
  auto img = isa::Assemble(src);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  vm::Machine machine(img.value(), argv);
  Walked w;
  w.argv1 = machine.ArgvStringAddr(1);
  machine.set_trace_hook(
      [&w](const vm::TraceEvent& ev) { w.events.push_back(ev); });
  machine.Run();
  w.pid = w.events.front().pid;
  return w;
}

TEST(Executor, RegisterExpressionsFollowDataflow) {
  auto w = RunWalk(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      addi r4, r4, 10
      muli r4, r4, 3
      movi r1, 0
      sys 0
  )",
               {"prog", "A"});
  solver::ExprPool pool;
  TraceExecutor exec(&pool, SymexConfig{});
  std::vector<solver::ExprRef> bytes = {pool.Var("b", 8)};
  exec.AddSymbolicBytes(w.argv1, bytes);
  exec.Execute(w.events);
  solver::ExprRef r4 = exec.state().Regs(w.pid, 1).gpr[4];
  ASSERT_NE(r4, nullptr);
  // (b + 10) * 3 with b = 'A' = 65 → 225.
  EXPECT_EQ(solver::Evaluate(r4, {{"b", 'A'}}), 225u);
  EXPECT_EQ(solver::Evaluate(r4, {{"b", 0}}), 30u);
}

TEST(Executor, ConcreteWritesClearSymbolicState) {
  auto w = RunWalk(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      movi r4, 7          ; overwrite kills the expression
      movi r1, 0
      sys 0
  )",
               {"prog", "A"});
  solver::ExprPool pool;
  TraceExecutor exec(&pool, SymexConfig{});
  std::vector<solver::ExprRef> bytes = {pool.Var("b", 8)};
  exec.AddSymbolicBytes(w.argv1, bytes);
  exec.Execute(w.events);
  EXPECT_EQ(exec.state().Regs(w.pid, 1).gpr[4], nullptr);
}

TEST(Executor, MixedWidthMemoryRoundTrip) {
  // Store a symbolic byte into the middle of a concrete word, reload the
  // whole word: expression must mix symbolic and concrete bytes.
  auto w = RunWalk(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      lea r6, cell
      st1 r4, [r6+1]      ; overwrite byte 1 of 0x11223344
      ld4 r5, [r6+0]
      movi r1, 0
      sys 0
    .data
    cell: .word 0x11223344
  )",
               {"prog", "A"});
  solver::ExprPool pool;
  TraceExecutor exec(&pool, SymexConfig{});
  std::vector<solver::ExprRef> bytes = {pool.Var("b", 8)};
  exec.AddSymbolicBytes(w.argv1, bytes);
  exec.Execute(w.events);
  solver::ExprRef r5 = exec.state().Regs(w.pid, 1).gpr[5];
  ASSERT_NE(r5, nullptr);
  EXPECT_EQ(solver::Evaluate(r5, {{"b", 0xAB}}), 0x1122AB44u);
}

TEST(Executor, PathConstraintsHoldOnObservedPath) {
  auto w = RunWalk(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      cmpltui r5, r4, 0x50
      bnz r5, low
      movi r6, 1
    low:
      movi r1, 0
      sys 0
  )",
               {"prog", "A"});  // 'A' = 0x41 < 0x50: branch taken
  solver::ExprPool pool;
  TraceExecutor exec(&pool, SymexConfig{});
  std::vector<solver::ExprRef> bytes = {pool.Var("b", 8)};
  exec.AddSymbolicBytes(w.argv1, bytes);
  exec.Execute(w.events);
  const auto& path = exec.state().path();
  ASSERT_EQ(path.size(), 1u);
  // The recorded condition must be true under the observed input and
  // false under one that flips the branch.
  EXPECT_EQ(solver::Evaluate(path[0].cond, {{"b", 'A'}}), 1u);
  EXPECT_EQ(solver::Evaluate(path[0].cond, {{"b", 0x60}}), 0u);
  // And the negated-direction successor is the fallthrough.
  EXPECT_EQ(path[0].negated_successor, path[0].pc + isa::kInstrBytes);
}

TEST(Executor, WindowExpansionCoversNeighbours) {
  auto w = RunWalk(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      subi r4, r4, '0'
      lea r6, table
      ldx1 r5, [r6+r4]
      movi r1, 0
      sys 0
    .data
    table: .byte 10, 20, 30, 40, 50
  )",
               {"prog", "1"});
  solver::ExprPool pool;
  SymexConfig cfg;
  cfg.addr_policy = SymAddrPolicy::kExpandWindow;
  cfg.addr_window = 16;
  TraceExecutor exec(&pool, cfg);
  exec.SetInitialByteReader([&](uint64_t addr) -> std::optional<uint8_t> {
    // Table lives at 0x100000 in .data.
    static const uint8_t kTable[5] = {10, 20, 30, 40, 50};
    if (addr >= 0x100000 && addr < 0x100005) {
      return kTable[addr - 0x100000];
    }
    return 0;
  });
  std::vector<solver::ExprRef> bytes = {pool.Var("b", 8)};
  exec.AddSymbolicBytes(w.argv1, bytes);
  exec.Execute(w.events);
  solver::ExprRef r5 = exec.state().Regs(w.pid, 1).gpr[5];
  ASSERT_NE(r5, nullptr);
  // The ITE expansion must produce the right element for each index.
  EXPECT_EQ(solver::Evaluate(r5, {{"b", '0'}}), 10u);
  EXPECT_EQ(solver::Evaluate(r5, {{"b", '1'}}), 20u);
  EXPECT_EQ(solver::Evaluate(r5, {{"b", '4'}}), 50u);
}

TEST(Executor, ConcretizePolicyRaisesEs3OnSymbolicLoad) {
  auto w = RunWalk(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r4, [r3+0]
      lea r6, table
      ldx1 r5, [r6+r4]
      movi r1, 0
      sys 0
    .data
    table: .space 128
  )",
               {"prog", "1"});
  solver::ExprPool pool;
  TraceExecutor exec(&pool, SymexConfig{});  // default: concretize
  std::vector<solver::ExprRef> bytes = {pool.Var("b", 8)};
  exec.AddSymbolicBytes(w.argv1, bytes);
  exec.Execute(w.events);
  EXPECT_TRUE(exec.state().diag().Has(ErrorStage::kEs1) == false);
  EXPECT_TRUE(exec.state().diag().Has(ErrorStage::kEs3));
}

TEST(Executor, AbortingSyscallProducesEngineException) {
  auto w = RunWalk(R"(
    .entry main
    main:
      lea r1, buf
      movi r2, 8
      sys 15
      movi r1, 0
      sys 0
    .data
    buf: .space 8
  )",
               {"prog", "x"});
  solver::ExprPool pool;
  SymexConfig cfg;
  cfg.aborting_syscalls = {15};
  TraceExecutor exec(&pool, cfg);
  auto result = exec.Execute(w.events);
  EXPECT_TRUE(result.aborted);
  EXPECT_NE(result.abort_reason.find("syscall 15"), std::string::npos);
}

TEST(Executor, SimulatedSyscallReturnsFreshEnvSymbol) {
  auto w = RunWalk(R"(
    .entry main
    main:
      sys 8               ; getpid
      cmpeqi r5, r0, 3
      bz r5, skip
    skip:
      movi r1, 0
      sys 0
  )",
               {"prog", "x"});
  solver::ExprPool pool;
  SymexConfig cfg;
  cfg.syscall_model = SyscallModel::kSimulateUnconstrained;
  cfg.unconstrained_syscalls = {8};
  TraceExecutor exec(&pool, cfg);
  auto result = exec.Execute(w.events);
  EXPECT_EQ(result.env_symbols.size(), 1u);
  EXPECT_EQ(exec.state().path().size(), 1u);  // env-dependent branch
}

TEST(Executor, LibSkipInventsReturnValues) {
  auto w = RunWalk(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r1, [r3+0]
      call helper          ; library function: r0 = r1 * 2
      cmpeqi r5, r0, 10
      bz r5, skip
    skip:
      movi r1, 0
      sys 0
    .ltext
    helper:
      add r0, r1, r1
      ret
  )",
               {"prog", "A"});
  solver::ExprPool pool;
  SymexConfig cfg;
  cfg.lib_mode = LibMode::kSkipUnconstrained;
  TraceExecutor exec(&pool, cfg);
  std::vector<solver::ExprRef> bytes = {pool.Var("b", 8)};
  exec.AddSymbolicBytes(w.argv1, bytes);
  auto result = exec.Execute(w.events);
  // The helper's dataflow is gone; an extenv symbol replaced it.
  ASSERT_EQ(exec.state().path().size(), 1u);
  bool uses_extenv = false;
  for (auto* v : solver::CollectVars({&exec.state().path()[0].cond, 1})) {
    if (v->name.rfind("extenv", 0) == 0) uses_extenv = true;
  }
  EXPECT_TRUE(uses_extenv);
  EXPECT_FALSE(result.env_symbols.empty());
}

TEST(Executor, TraceVersusLibConstraintAccounting) {
  auto w = RunWalk(R"(
    .entry main
    main:
      ld8 r3, [r2+8]
      ld1 r1, [r3+0]
      call helper
      movi r1, 0
      sys 0
    .ltext
    helper:                ; a symbolic branch inside the library
      cmpltui r5, r1, 10
      bz r5, helper_done
      addi r1, r1, 1
    helper_done:
      ret
  )",
               {"prog", "A"});
  solver::ExprPool pool;
  TraceExecutor exec(&pool, SymexConfig{});
  std::vector<solver::ExprRef> bytes = {pool.Var("b", 8)};
  exec.AddSymbolicBytes(w.argv1, bytes);
  auto result = exec.Execute(w.events);
  EXPECT_EQ(result.lib_constraint_count, 1u);
  ASSERT_EQ(exec.state().path().size(), 1u);
  EXPECT_TRUE(exec.state().path()[0].in_lib);
}

}  // namespace
}  // namespace sbce::symex
