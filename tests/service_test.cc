// The analysis service: request/result codec, wire framing, warm-cache
// policy, and the daemon end-to-end over a real socket.
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/isa/assembler.h"
#include "src/obs/json.h"
#include "src/service/api.h"
#include "src/service/client.h"
#include "src/service/daemon.h"
#include "src/service/warm_cache.h"
#include "src/service/wire.h"
#include "src/support/str.h"

namespace sbce {
namespace {

// One symbolic guard: bomb iff argv[1][0] == 'A'.
constexpr char kGuardProgram[] = R"(
  .entry main
  main:
    ld8 r3, [r2+8]
    ld1 r4, [r3+0]
    cmpeqi r5, r4, 65
    bz r5, exit
  bomb:
    sys 16
  exit:
    movi r1, 0
    sys 0
)";

isa::BinaryImage GuardImage() {
  auto img = isa::Assemble(kGuardProgram);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  return std::move(img).value();
}

service::AnalysisRequest BombRequest(const char* bomb, const char* profile) {
  service::AnalysisRequest request;
  request.bomb = bomb;
  request.profile = profile;
  return request;
}

std::string DeterministicJson(const service::AnalysisResult& result) {
  return obs::Dump(service::ResultToJson(result, /*deterministic_only=*/true));
}

std::string TestSocketPath(const char* tag) {
  return StrFormat("/tmp/sbce_test_%s_%d.sock", tag,
                   static_cast<int>(getpid()));
}

// --- ServiceApi --------------------------------------------------------

TEST(ServiceApi, RequestJsonRoundTrip) {
  service::AnalysisRequest request;
  request.bomb = "arr_one";
  request.image = {0xde, 0xad, 0xbe, 0xef};
  request.seed_argv = {"prog", "xyz"};
  request.target_pc = 0x1234;
  request.profile = "Angr";
  request.budgets.max_rounds = 7;
  request.budgets.max_solver_queries = 99;
  request.budgets.solver_threads = 3;
  request.baseline_pipeline = true;
  request.no_checkpoints = true;
  request.want_path_condition = true;
  request.want_trace = true;

  auto parsed = service::RequestFromJson(service::RequestToJson(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const service::AnalysisRequest& r = parsed.value();
  EXPECT_EQ(r.bomb, request.bomb);
  EXPECT_EQ(r.image, request.image);
  EXPECT_EQ(r.seed_argv, request.seed_argv);
  EXPECT_EQ(r.target_pc, request.target_pc);
  EXPECT_EQ(r.profile, request.profile);
  EXPECT_EQ(r.budgets.max_rounds, request.budgets.max_rounds);
  EXPECT_EQ(r.budgets.max_solver_queries, request.budgets.max_solver_queries);
  EXPECT_EQ(r.budgets.solver_threads, request.budgets.solver_threads);
  EXPECT_EQ(r.baseline_pipeline, request.baseline_pipeline);
  EXPECT_EQ(r.no_checkpoints, request.no_checkpoints);
  EXPECT_EQ(r.want_path_condition, request.want_path_condition);
  EXPECT_EQ(r.want_trace, request.want_trace);
  // The codec is canonical: re-serializing the parse is byte-identical.
  EXPECT_EQ(obs::Dump(service::RequestToJson(r)),
            obs::Dump(service::RequestToJson(request)));
}

TEST(ServiceApi, RequestFromJsonRejectsGarbage) {
  EXPECT_FALSE(service::RequestFromJson(obs::JsonValue::Str("nope")).ok());
  obs::JsonValue bad_version = obs::JsonValue::Object();
  bad_version.Set("v", obs::JsonValue::U64(99));
  EXPECT_FALSE(service::RequestFromJson(bad_version).ok());
  obs::JsonValue bad_hex = obs::JsonValue::Object();
  bad_hex.Set("v", obs::JsonValue::U64(1));
  bad_hex.Set("image", obs::JsonValue::Str("zz"));
  EXPECT_FALSE(service::RequestFromJson(bad_hex).ok());
}

TEST(ServiceApi, RequestDigestIdentity) {
  const auto a = BombRequest("arr_one", "Angr");
  auto b = a;
  EXPECT_NE(service::RequestDigest(a), 0u);
  EXPECT_EQ(service::RequestDigest(a), service::RequestDigest(b));

  // The analysis-changing fields move the digest...
  b.budgets.max_rounds = 5;
  EXPECT_NE(service::RequestDigest(a), service::RequestDigest(b));
  b = a;
  b.baseline_pipeline = true;
  EXPECT_NE(service::RequestDigest(a), service::RequestDigest(b));
  b = a;
  b.profile = "BAP";
  EXPECT_NE(service::RequestDigest(a), service::RequestDigest(b));

  // ...the output-shape flags do not (same analysis, more reporting).
  b = a;
  b.want_path_condition = true;
  b.want_trace = true;
  EXPECT_EQ(service::RequestDigest(a), service::RequestDigest(b));
}

TEST(ServiceApi, RequestDigestUnshareable) {
  auto custom = BombRequest("arr_one", "Angr");
  custom.custom_engine = core::EngineConfig{};
  EXPECT_EQ(service::RequestDigest(custom), 0u);

  service::AnalysisRequest no_target;
  EXPECT_EQ(service::RequestDigest(no_target), 0u);
}

TEST(ServiceApi, LocalImageDigestMatchesWireImage) {
  const isa::BinaryImage image = GuardImage();
  service::AnalysisRequest local;
  local.local_image = &image;
  local.seed_argv = {"prog", "z"};
  local.target_pc = *image.FindSymbol("bomb");

  service::AnalysisRequest wire = local;
  wire.local_image = nullptr;
  wire.image = image.Serialize();

  EXPECT_NE(service::RequestDigest(local), 0u);
  EXPECT_EQ(service::RequestDigest(local), service::RequestDigest(wire));
}

TEST(ServiceApi, ApplyBudgetsIsTheOneOverridePath) {
  service::AnalysisRequest request;
  request.budgets.max_rounds = 3;
  request.budgets.max_solver_queries = 44;
  request.budgets.solver_threads = 2;
  core::EngineConfig config;
  service::ApplyBudgets(request, &config);
  EXPECT_EQ(config.budgets.max_rounds, 3u);
  EXPECT_EQ(config.budgets.max_solver_queries, 44u);
  EXPECT_EQ(config.budgets.solver_threads, 2u);

  service::AnalysisRequest baseline;
  baseline.baseline_pipeline = true;
  baseline.no_checkpoints = true;
  core::EngineConfig base;
  service::ApplyBudgets(baseline, &base);
  EXPECT_FALSE(base.budgets.solver.cache_queries);
  EXPECT_FALSE(base.budgets.solver.slice_independent);
  EXPECT_FALSE(base.budgets.solver.incremental_batch);
  EXPECT_FALSE(base.budgets.solver.portfolio);
  EXPECT_EQ(base.budgets.solver_threads, 1u);
  EXPECT_FALSE(base.checkpoints);
}

TEST(ServiceApi, AnalyzeRejectsBadRequests) {
  auto unknown_profile = BombRequest("arr_one", "NoSuchTool");
  auto r1 = service::Analyze(unknown_profile);
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("unknown profile"), std::string::npos);

  auto unknown_bomb = BombRequest("no_such_bomb", "Angr");
  auto r2 = service::Analyze(unknown_bomb);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("unknown bomb"), std::string::npos);

  service::AnalysisRequest no_target;
  auto r3 = service::Analyze(no_target);
  EXPECT_FALSE(r3.ok);
  EXPECT_NE(r3.error.find("no target"), std::string::npos);
}

TEST(ServiceApi, ResultJsonRoundTrip) {
  auto result = service::Analyze(BombRequest("fig3_noprint", "BAP"));
  ASSERT_TRUE(result.ok) << result.error;

  const obs::JsonValue full =
      service::ResultToJson(result, /*deterministic_only=*/false);
  EXPECT_NE(full.Find("perf"), nullptr);
  const obs::JsonValue det =
      service::ResultToJson(result, /*deterministic_only=*/true);
  EXPECT_EQ(det.Find("perf"), nullptr);

  auto parsed = service::ResultFromJson(full);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // The deterministic projection survives the round trip byte-for-byte.
  EXPECT_EQ(DeterministicJson(parsed.value()), obs::Dump(det));
  EXPECT_EQ(parsed.value().outcome, result.outcome);
  EXPECT_EQ(parsed.value().expected, result.expected);
  EXPECT_EQ(parsed.value().engine.claimed, result.engine.claimed);
}

TEST(ServiceApi, PathConditionServedColdAndWarm) {
  service::WarmCache warm;
  service::AnalyzeEnv env;
  env.warm = &warm;
  auto request = BombRequest("fig3_noprint", "Ideal");
  request.want_path_condition = true;

  auto cold = service::Analyze(request, env);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.path_condition.empty());

  auto warm_run = service::Analyze(request, env);
  ASSERT_TRUE(warm_run.ok) << warm_run.error;
  EXPECT_TRUE(warm_run.served_warm);
  EXPECT_EQ(warm_run.path_condition, cold.path_condition);
  EXPECT_EQ(DeterministicJson(warm_run), DeterministicJson(cold));
}

// --- ServiceWire -------------------------------------------------------

TEST(ServiceWire, FrameRoundTripByteAtATime) {
  obs::JsonValue doc = service::MakeEnvelope("ping", 42);
  const std::string bytes = service::EncodeFrame(doc);
  service::FrameReader reader;
  for (char c : bytes) {
    reader.Feed(&c, 1);
  }
  auto frame = reader.Next();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(obs::Dump(*frame.value()), obs::Dump(doc));
  auto empty = reader.Next();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty.value().has_value());
}

TEST(ServiceWire, MultipleFramesOneFeed) {
  std::string bytes;
  service::AppendFrame(service::MakeEnvelope("ping", 1), &bytes);
  service::AppendFrame(service::MakeEnvelope("stats", 2), &bytes);
  service::FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  auto first = reader.Next();
  ASSERT_TRUE(first.ok() && first.value().has_value());
  EXPECT_EQ(service::EnvelopeId(*first.value()), 1u);
  auto second = reader.Next();
  ASSERT_TRUE(second.ok() && second.value().has_value());
  EXPECT_EQ(service::EnvelopeId(*second.value()), 2u);
}

TEST(ServiceWire, PoisonOnGarbagePayloadIsSticky) {
  const std::string payload = "this is not json";
  std::string bytes;
  const uint32_t n = static_cast<uint32_t>(payload.size());
  bytes.append(reinterpret_cast<const char*>(&n), 4);
  bytes.append(payload);
  service::FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  EXPECT_FALSE(reader.Next().ok());
  // Even a valid frame afterwards cannot unpoison the stream.
  const std::string good = service::EncodeFrame(service::MakeEnvelope("x", 1));
  reader.Feed(good.data(), good.size());
  EXPECT_FALSE(reader.Next().ok());
}

TEST(ServiceWire, PoisonOnOversizedFrame) {
  service::FrameReader reader(/*max_frame_bytes=*/16);
  const uint32_t huge = 1u << 20;
  reader.Feed(&huge, 4);
  EXPECT_FALSE(reader.Next().ok());
}

TEST(ServiceWire, EnvelopeValidation) {
  obs::JsonValue good = service::MakeEnvelope("analyze", 9);
  auto type = service::EnvelopeType(good);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(type.value(), "analyze");
  EXPECT_EQ(service::EnvelopeId(good), 9u);

  obs::JsonValue wrong_version = obs::JsonValue::Object();
  wrong_version.Set("v", obs::JsonValue::U64(2));
  wrong_version.Set("type", obs::JsonValue::Str("analyze"));
  EXPECT_FALSE(service::EnvelopeType(wrong_version).ok());

  obs::JsonValue no_type = obs::JsonValue::Object();
  no_type.Set("v", obs::JsonValue::U64(service::kWireVersion));
  EXPECT_FALSE(service::EnvelopeType(no_type).ok());
  EXPECT_EQ(service::EnvelopeId(no_type), 0u);
}

// --- ServiceWarmCache --------------------------------------------------

TEST(ServiceWarmCache, ImageStoreHitsAndMisses) {
  service::WarmCache warm;
  int builds = 0;
  const auto build = [&]() {
    ++builds;
    return GuardImage();
  };
  auto first = warm.AcquireImage(1, build);
  auto second = warm.AcquireImage(1, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(warm.metrics().Value("service.image_cache.misses"), 1u);
  EXPECT_EQ(warm.metrics().Value("service.image_cache.hits"), 1u);
}

TEST(ServiceWarmCache, DecodeStoreSharesPredecodedText) {
  service::WarmCache warm;
  const isa::BinaryImage image = GuardImage();
  auto a = warm.AcquireDecode(7, image);
  auto b = warm.AcquireDecode(7, image);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(warm.metrics().Value("service.decode_cache.hits"), 1u);
}

TEST(ServiceWarmCache, EvictionKeepsInFlightStateAlive) {
  service::WarmCache::Options tiny;
  tiny.image_budget_bytes = 1;  // every admission evicts everything else
  service::WarmCache warm(tiny);
  auto first = warm.AcquireImage(1, [] { return GuardImage(); });
  auto second = warm.AcquireImage(2, [] { return GuardImage(); });
  EXPECT_GE(warm.metrics().Value("service.image_cache.evictions"), 1u);
  // Evicted state stays usable by holders (shared_ptr semantics)...
  EXPECT_TRUE(first->FindSymbol("bomb").has_value());
  // ...and re-acquiring it is a miss that rebuilds.
  int rebuilds = 0;
  auto again = warm.AcquireImage(1, [&] {
    ++rebuilds;
    return GuardImage();
  });
  EXPECT_EQ(rebuilds, 1);
  EXPECT_EQ(warm.metrics().Value("service.image_cache.misses"), 3u);
}

TEST(ServiceWarmCache, QueryStoreSharedPerDigest) {
  service::WarmCache warm;
  auto a = warm.AcquireQueryStore(11);
  auto b = warm.AcquireQueryStore(11);
  auto c = warm.AcquireQueryStore(12);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
}

TEST(ServiceWarmCache, SegmentFirstWriterWins) {
  service::WarmCache warm;
  auto first = std::make_shared<service::ExprSegment>();
  auto second = std::make_shared<service::ExprSegment>();
  warm.StoreSegment(5, first);
  warm.StoreSegment(5, second);
  EXPECT_EQ(warm.FindSegment(5).get(), first.get());
  EXPECT_EQ(warm.FindSegment(6), nullptr);
}

// --- ServiceDaemon (end-to-end over a real socket) ---------------------

TEST(ServiceDaemon, PingStatsShutdown) {
  const std::string path = TestSocketPath("ping");
  service::Daemon::Options options;
  options.socket_path = path;
  service::Daemon daemon(options);
  ASSERT_TRUE(daemon.Start().ok());

  auto client_or = service::Client::Connect(path);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();
  EXPECT_TRUE(client.Ping().ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().Find("warm"), nullptr);
  EXPECT_TRUE(client.Shutdown().ok());
  daemon.Wait();
}

TEST(ServiceDaemon, RepeatRequestServedWarmAndByteIdentical) {
  const std::string path = TestSocketPath("warm");
  service::Daemon::Options options;
  options.socket_path = path;
  service::Daemon daemon(options);
  ASSERT_TRUE(daemon.Start().ok());
  {
    auto client_or = service::Client::Connect(path);
    ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
    auto client = std::move(client_or).value();

    const auto request = BombRequest("fig3_noprint", "BAP");
    auto cold = client.AnalyzeJson(request);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    auto warm = client.AnalyzeJson(request);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();

    auto cold_res = service::ResultFromJson(cold.value());
    auto warm_res = service::ResultFromJson(warm.value());
    ASSERT_TRUE(cold_res.ok() && warm_res.ok());
    EXPECT_EQ(DeterministicJson(cold_res.value()),
              DeterministicJson(warm_res.value()));
    EXPECT_FALSE(cold_res.value().served_warm);
    EXPECT_TRUE(warm_res.value().served_warm);

    auto stats = client.Stats();
    ASSERT_TRUE(stats.ok());
    const auto* counters = stats.value().Find("warm")->Find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GE(counters->Find("service.decode_cache.hits")->AsU64(), 1u);
    EXPECT_TRUE(client.Shutdown().ok());
  }
  daemon.Wait();
}

TEST(ServiceDaemon, WantTraceStreamsRecordsInline) {
  const std::string path = TestSocketPath("trace");
  service::Daemon::Options options;
  options.socket_path = path;
  service::Daemon daemon(options);
  ASSERT_TRUE(daemon.Start().ok());
  {
    auto client_or = service::Client::Connect(path);
    ASSERT_TRUE(client_or.ok());
    auto client = std::move(client_or).value();
    auto request = BombRequest("fig3_noprint", "Ideal");
    request.want_trace = true;
    auto result = client.Analyze(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().ok) << result.value().error;
    EXPECT_FALSE(result.value().trace_jsonl.empty());
    EXPECT_TRUE(client.Shutdown().ok());
  }
  daemon.Wait();
}

TEST(ServiceDaemon, BadRequestsGetErrorFramesNotHangs) {
  const std::string path = TestSocketPath("err");
  service::Daemon::Options options;
  options.socket_path = path;
  service::Daemon daemon(options);
  ASSERT_TRUE(daemon.Start().ok());
  {
    auto client_or = service::Client::Connect(path);
    ASSERT_TRUE(client_or.ok());
    auto client = std::move(client_or).value();

    // Unknown frame type → error response with the id echoed.
    auto bogus = client.Call(service::MakeEnvelope("bogus", 77));
    EXPECT_FALSE(bogus.ok());

    // A fresh connection still works (the error did not kill the daemon);
    // a request-level failure comes back as ok=false, not a dead socket.
    auto client2_or = service::Client::Connect(path);
    ASSERT_TRUE(client2_or.ok());
    auto client2 = std::move(client2_or).value();
    auto res = client2.Analyze(BombRequest("no_such_bomb", "Angr"));
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_FALSE(res.value().ok);
    EXPECT_TRUE(client2.Shutdown().ok());
  }
  daemon.Wait();
}

}  // namespace
}  // namespace sbce
