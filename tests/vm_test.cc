// End-to-end VM tests: assemble small programs and check their observable
// behaviour (exit codes, stdout, filesystem effects, traps, concurrency).
#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/vm/machine.h"
#include "src/vm/syscalls.h"

namespace sbce::vm {
namespace {

isa::BinaryImage MustAssemble(std::string_view src) {
  auto img = isa::Assemble(src);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  return std::move(img).value();
}

RunResult RunProgram(std::string_view src,
                     std::vector<std::string> argv = {"prog"},
                     Devices devices = Devices()) {
  auto img = MustAssemble(src);
  Machine m(img, std::move(argv), devices);
  return m.Run();
}

TEST(MachineBasics, ExitCodePropagates) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, 42
      sys 0          ; exit(42)
  )");
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 42);
  EXPECT_FALSE(r.bomb_triggered);
}

TEST(MachineBasics, ArithmeticWorks) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, 6
      movi r2, 7
      mul r3, r1, r2
      subi r3, r3, 2
      ; exit(40)
      mov r1, r3
      sys 0
  )");
  EXPECT_EQ(r.exit_code, 40);
}

TEST(MachineBasics, SixtyFourBitConstants) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, 0x89abcdef
      movhi r1, 0x01234567
      shri r2, r1, 32
      ; exit(high word == 0x01234567)
      cmpeqi r3, r2, 0x01234567
      mov r1, r3
      sys 0
  )");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(MachineBasics, LoopsAndBranches) {
  // Sum 1..10 = 55.
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, 0      ; acc
      movi r2, 1      ; i
    loop:
      add r1, r1, r2
      addi r2, r2, 1
      cmpltui r3, r2, 11
      bnz r3, loop
      sys 0
  )");
  EXPECT_EQ(r.exit_code, 55);
}

TEST(MachineBasics, MemoryAndData) {
  auto r = RunProgram(R"(
    .entry main
    main:
      lea r4, table
      ld8 r1, [r4+16]   ; third entry
      sys 0
    .data
    table: .quad 10, 20, 30, 40
  )");
  // lea is pc-relative into .data? table lives in .data; lea computes
  // next_pc + offset which the assembler resolved against the label's
  // absolute address, so this works across sections.
  EXPECT_EQ(r.exit_code, 30);
}

TEST(MachineBasics, IndexedLoadStore) {
  auto r = RunProgram(R"(
    .entry main
    main:
      lea r4, buf
      movi r5, 3
      movi r6, 77
      mov r0, r6
      stx1 r0, [r4+r5]
      ldx1 r1, [r4+r5]
      sys 0
    .data
    buf: .space 8
  )");
  EXPECT_EQ(r.exit_code, 77);
}

TEST(MachineBasics, StackPushPop) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, 123
      push r1
      movi r1, 0
      pop r2
      mov r1, r2
      sys 0
  )");
  EXPECT_EQ(r.exit_code, 123);
}

TEST(MachineBasics, CallRet) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, 5
      call double_it
      sys 0
    double_it:
      add r1, r1, r1
      ret
  )");
  EXPECT_EQ(r.exit_code, 10);
}

TEST(MachineBasics, IndirectJump) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r3, target
      jmpr r3
      movi r1, 1    ; skipped
      sys 0
    target:
      movi r1, 9
      sys 0
  )");
  EXPECT_EQ(r.exit_code, 9);
}

TEST(MachineBasics, ArgvVisibleToGuest) {
  // exit(first byte of argv[1]).
  auto r = RunProgram(R"(
    .entry main
    main:
      ld8 r3, [r2+8]   ; argv[1] pointer
      ld1 r1, [r3+0]
      sys 0
  )",
                      {"prog", "Hello"});
  EXPECT_EQ(r.exit_code, 'H');
}

TEST(MachineBasics, StdoutCapture) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, 1
      lea r2, msg
      movi r3, 3
      sys 1         ; write(1, msg, 3)
      movi r1, 0
      sys 0
    .data
    msg: .asciz "hi\n"
  )");
  EXPECT_EQ(r.stdout_text, "hi\n");
}

TEST(MachineBasics, HaltWithoutExitFinishesThread) {
  auto r = RunProgram(R"(
    .entry main
    main:
      halt
  )");
  EXPECT_FALSE(r.exited);
  EXPECT_FALSE(r.faulted);
}

TEST(MachineBasics, BudgetExhaustion) {
  auto img = MustAssemble(R"(
    .entry main
    main:
      jmp main
  )");
  Machine::Options opts;
  opts.max_instructions = 1000;
  Machine m(img, {"prog"}, Devices(), opts);
  auto r = m.Run();
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_GE(r.instructions, 1000u);
}

TEST(MachineBasics, InvalidInstructionFaults) {
  auto r = RunProgram(R"(
    .entry main
    main:
      jmp nowhere_land
    nowhere_land:
      .equ dummy, 0
      halt
  )");
  EXPECT_FALSE(r.faulted);  // sanity: label on halt is fine
  // Jumping into zeroed memory decodes as nop (opcode 0) forever — budget
  // will stop it; jumping to a bad opcode faults:
  auto r2 = RunProgram(R"(
    .entry main
    main:
      movi r3, 0x100000
      jmpr r3
    .data
    junk: .byte 0xfe, 1, 2, 3, 4, 5, 6, 7
  )");
  EXPECT_TRUE(r2.faulted);
}

TEST(Syscalls, TimeComesFromDevices) {
  Devices dev;
  dev.time_seconds = 777;
  auto r = RunProgram(R"(
    .entry main
    main:
      sys 5
      mov r1, r0
      sys 0
  )",
                      {"prog"}, dev);
  EXPECT_EQ(r.exit_code, 777);
}

TEST(Syscalls, RandIsSeededLcg) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, 99
      sys 6        ; srand(99)
      sys 7        ; rand()
      mov r1, r0
      sys 0
  )");
  uint64_t state = 99;
  const uint64_t expected = LcgNext(&state);
  EXPECT_EQ(static_cast<uint64_t>(r.exit_code & 0xff),
            expected & 0xff);  // exit code truncates; compare low byte
}

TEST(Syscalls, FileWriteThenReadBack) {
  auto r = RunProgram(R"(
    .entry main
    main:
      ; fd = open("f.txt", write)
      lea r1, path
      movi r2, 1
      sys 3
      mov r8, r0
      ; write(fd, payload, 4)
      mov r1, r8
      lea r2, payload
      movi r3, 4
      sys 1
      ; close(fd)
      mov r1, r8
      sys 4
      ; fd = open("f.txt", read)
      lea r1, path
      movi r2, 0
      sys 3
      mov r8, r0
      ; read(fd, buf, 4)
      mov r1, r8
      lea r2, buf
      movi r3, 4
      sys 2
      ; exit(buf[2])
      lea r4, buf
      ld1 r1, [r4+2]
      sys 0
    .data
    path:    .asciz "f.txt"
    payload: .byte 9, 8, 7, 6
    buf:     .space 8
  )");
  EXPECT_EQ(r.exit_code, 7);
}

TEST(Syscalls, OpenMissingFileFails) {
  auto r = RunProgram(R"(
    .entry main
    main:
      lea r1, path
      movi r2, 0
      sys 3
      ; exit(fd == -1)
      cmpeqi r1, r0, -1
      sys 0
    .data
    path: .asciz "no_such_file"
  )");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Syscalls, WebGetReturnsDeviceDocument) {
  Devices dev;
  dev.web_document = "KEY";
  auto r = RunProgram(R"(
    .entry main
    main:
      lea r1, buf
      movi r2, 16
      sys 15
      lea r4, buf
      ld1 r1, [r4+1]
      sys 0
    .data
    buf: .space 16
  )",
                      {"prog"}, dev);
  EXPECT_EQ(r.exit_code, 'E');
}

TEST(Syscalls, EchoStoreLoadRoundTrip) {
  auto r = RunProgram(R"(
    .entry main
    main:
      lea r1, key
      movi r2, 31337
      sys 18        ; echo_store
      lea r1, key
      sys 19        ; echo_load
      ; exit(loaded & 0xff)
      andi r1, r0, 0xff
      sys 0
    .data
    key: .asciz "stash"
  )");
  EXPECT_EQ(r.exit_code, 31337 & 0xff);
}

TEST(Syscalls, BombSyscallSetsFlag) {
  auto r = RunProgram(R"(
    .entry main
    main:
      sys 16
      movi r1, 0
      sys 0
  )");
  EXPECT_TRUE(r.bomb_triggered);
}

TEST(Traps, DivZeroWithoutHandlerFaults) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, 10
      movi r2, 0
      udiv r3, r1, r2
      sys 0
  )");
  EXPECT_TRUE(r.faulted);
}

TEST(Traps, DivZeroVectorsToHandler) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, handler
      sys 14          ; settrap
      movi r1, 10
      movi r2, 0
      udiv r3, r1, r2
      movi r1, 0      ; not reached before handler
      sys 0
    handler:
      ; exit(trap cause)
      mov r1, r11
      sys 0
  )");
  EXPECT_FALSE(r.faulted);
  EXPECT_EQ(r.exit_code, static_cast<int>(kTrapDivZero));
}

TEST(Traps, TrapZFiresOnlyOnZero) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, handler
      sys 14
      movi r4, 5
      trapz r4        ; no trap
      movi r4, 0
      trapz r4        ; traps
      movi r1, 1
      sys 0
    handler:
      movi r1, 33
      sys 0
  )");
  EXPECT_EQ(r.exit_code, 33);
}

TEST(Threads, WorkerThreadModifiesSharedMemory) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, worker
      movi r2, 0
      sys 11          ; tid = thread_create(worker, 0)
      mov r1, r0
      sys 12          ; join(tid)
      lea r4, cell
      ld8 r1, [r4+0]
      sys 0
    worker:
      lea r4, cell
      movi r0, 58
      st8 r0, [r4+0]
      halt
    .data
    cell: .quad 0
  )");
  EXPECT_FALSE(r.faulted) << r.fault_reason;
  EXPECT_EQ(r.exit_code, 58);
}

TEST(Threads, JoinOnFinishedThreadReturnsImmediately) {
  auto r = RunProgram(R"(
    .entry main
    main:
      movi r1, worker
      movi r2, 0
      sys 11
      mov r8, r0
      ; burn some cycles so the worker is done
      movi r3, 500
    spin:
      subi r3, r3, 1
      bnz r3, spin
      mov r1, r8
      sys 12
      movi r1, 7
      sys 0
    worker:
      halt
  )");
  EXPECT_EQ(r.exit_code, 7);
}

TEST(Processes, ForkReturnsZeroInChild) {
  // Parent exits with 1, child writes to a file the parent never does.
  auto r = RunProgram(R"(
    .entry main
    main:
      sys 9          ; fork
      bnz r0, parent
      ; child: create marker file then exit
      lea r1, path
      movi r2, 1
      sys 3
      movi r1, 0
      sys 0
    parent:
      movi r3, 2000  ; let the child run
    spin:
      subi r3, r3, 1
      bnz r3, spin
      movi r1, 1
      sys 0
    .data
    path: .asciz "marker"
  )");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Processes, ForkPipeRoundTrip) {
  auto r = RunProgram(R"(
    .entry main
    main:
      lea r1, fdbuf
      sys 10         ; pipe
      sys 9          ; fork
      bnz r0, parent
      ; child: write x^0x5A into the pipe
      lea r4, fdbuf
      ld8 r1, [r4+8]  ; write fd
      movi r0, 0x13
      xori r0, r0, 0x5A
      lea r2, cell
      st8 r0, [r2+0]
      movi r3, 8
      sys 1           ; write(wfd, cell, 8)
      movi r1, 0
      sys 0
    parent:
      lea r4, fdbuf
      ld8 r1, [r4+0]  ; read fd
      lea r2, cell2
      movi r3, 8
      sys 2           ; read blocks until the child writes
      lea r4, cell2
      ld8 r1, [r4+0]
      sys 0
    .data
    fdbuf: .space 16
    cell:  .space 8
    cell2: .space 8
  )");
  EXPECT_FALSE(r.faulted) << r.fault_reason;
  EXPECT_EQ(r.exit_code, 0x13 ^ 0x5A);
}

TEST(Processes, ReadFromDeadPipeGivesEof) {
  auto r = RunProgram(R"(
    .entry main
    main:
      lea r1, fdbuf
      sys 10
      ; close the write end without writing
      lea r4, fdbuf
      ld8 r1, [r4+8]
      sys 4
      ; read -> 0 (EOF)
      ld8 r1, [r4+0]
      lea r2, buf
      movi r3, 8
      sys 2
      cmpeqi r1, r0, 0
      sys 0
    .data
    fdbuf: .space 16
    buf:   .space 8
  )");
  EXPECT_FALSE(r.faulted) << r.fault_reason;
  EXPECT_EQ(r.exit_code, 1);
}

TEST(FloatingPoint, BasicArithmetic) {
  // (1.5 + 2.5) * 2.0 == 8.0 -> exit(8)
  auto r = RunProgram(R"(
    .entry main
    main:
      lea r4, consts
      fld f0, [r4+0]
      fld f1, [r4+8]
      fld f2, [r4+16]
      fadd f3, f0, f1
      fmul f3, f3, f2
      cvtfi r1, f3
      sys 0
    .data
    consts: .quad 0x3FF8000000000000, 0x4004000000000000, 0x4000000000000000
  )");
  EXPECT_EQ(r.exit_code, 8);
}

TEST(FloatingPoint, RoundingAbsorption) {
  // 1024.0 + 1e-20 == 1024.0 over doubles — the fp_round bomb's premise.
  auto r = RunProgram(R"(
    .entry main
    main:
      lea r4, consts
      fld f0, [r4+0]   ; 1024.0
      fld f1, [r4+8]   ; tiny
      fadd f2, f0, f1
      fcmpeq r1, f2, f0
      sys 0
    .data
    consts: .quad 0x4090000000000000, 0x3B046D5FDE2BD906
  )");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Trace, HookSeesEveryRetiredInstruction) {
  auto img = MustAssemble(R"(
    .entry main
    main:
      movi r1, 3
      addi r1, r1, 4
      sys 0
  )");
  Machine m(img, {"prog"});
  std::vector<TraceEvent> events;
  m.set_trace_hook([&](const TraceEvent& ev) { events.push_back(ev); });
  auto r = m.Run();
  EXPECT_EQ(r.exit_code, 7);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].instr.op, isa::Opcode::kMovI);
  EXPECT_EQ(events[1].rd_new, 7u);
  EXPECT_EQ(events[2].sys_num, 0);
  // Sequence numbers are strictly increasing.
  EXPECT_LT(events[0].seq, events[1].seq);
}

TEST(Trace, BranchEventsRecordDirection) {
  auto img = MustAssemble(R"(
    .entry main
    main:
      movi r1, 0
      bz r1, taken
      movi r1, 1
    taken:
      sys 0
  )");
  Machine m(img, {"prog"});
  std::vector<TraceEvent> events;
  m.set_trace_hook([&](const TraceEvent& ev) { events.push_back(ev); });
  m.Run();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[1].instr.op, isa::Opcode::kBz);
  EXPECT_TRUE(events[1].branch_taken);
}

}  // namespace
}  // namespace sbce::vm
