// CFG reachability tests: the directed-search substrate.
#include <gtest/gtest.h>

#include "src/core/cfg.h"
#include "src/isa/assembler.h"

namespace sbce::core {
namespace {

isa::BinaryImage Build(std::string_view src) {
  auto img = isa::Assemble(src);
  SBCE_CHECK_MSG(img.ok(), img.status().ToString());
  return std::move(img).value();
}

TEST(Cfg, FallthroughReaches) {
  auto img = Build(R"(
    .entry main
    main:
      movi r1, 1
      addi r1, r1, 1
    target:
      halt
  )");
  CfgReachability cfg(img, *img.FindSymbol("target"));
  EXPECT_TRUE(cfg.Reaches(*img.FindSymbol("main")));
}

TEST(Cfg, HaltBlocksReachability) {
  auto img = Build(R"(
    .entry main
    main:
      halt
    after:
      nop
    target:
      halt
  )");
  CfgReachability cfg(img, *img.FindSymbol("target"));
  // `after` falls through to target; `main` halts before it.
  EXPECT_TRUE(cfg.Reaches(*img.FindSymbol("after")));
  EXPECT_FALSE(cfg.Reaches(*img.FindSymbol("main")));
}

TEST(Cfg, BothBranchDirectionsAreEdges) {
  auto img = Build(R"(
    .entry main
    main:
      bz r1, target
      halt
    unreachable_block:
      halt
    target:
      halt
  )");
  CfgReachability cfg(img, *img.FindSymbol("target"));
  EXPECT_TRUE(cfg.Reaches(*img.FindSymbol("main")));
  EXPECT_FALSE(cfg.Reaches(*img.FindSymbol("unreachable_block")));
}

TEST(Cfg, BackwardJumpLoops) {
  auto img = Build(R"(
    .entry main
    main:
      addi r1, r1, 1
      bnz r2, main
    target:
      halt
  )");
  CfgReachability cfg(img, *img.FindSymbol("target"));
  EXPECT_TRUE(cfg.Reaches(*img.FindSymbol("main")));
}

TEST(Cfg, IndirectJumpIsConservative) {
  auto img = Build(R"(
    .entry main
    main:
      jmpr r3
    isolated:
      halt
    target:
      halt
  )");
  CfgReachability cfg(img, *img.FindSymbol("target"));
  EXPECT_TRUE(cfg.has_indirect_jumps());
  // With an indirect jump anywhere, everything conservatively reaches.
  EXPECT_TRUE(cfg.Reaches(*img.FindSymbol("isolated")));
}

TEST(Cfg, StraightLineStopsAtConditionals) {
  auto img = Build(R"(
    .entry main
    main:
      movi r1, 1
      addi r1, r1, 1
    mid:
      bz r1, target
      nop
    target:
      halt
  )");
  CfgReachability cfg(img, *img.FindSymbol("target"));
  const uint64_t main_pc = *img.FindSymbol("main");
  const uint64_t mid = *img.FindSymbol("mid");
  const uint64_t target = *img.FindSymbol("target");
  // Anything before the conditional is not straight-line (a further
  // choice intervenes)...
  EXPECT_FALSE(cfg.StraightLineReaches(main_pc, target));
  EXPECT_FALSE(cfg.StraightLineReaches(mid, target));
  // ...but the fallthrough after it is.
  EXPECT_TRUE(cfg.StraightLineReaches(mid + isa::kInstrBytes, target));
  EXPECT_TRUE(cfg.StraightLineReaches(target, target));
}

TEST(Cfg, StraightLineFollowsUnconditionalJumps) {
  auto img = Build(R"(
    .entry main
    main:
      jmp hop
    filler:
      halt
    hop:
      jmp target
    filler2:
      halt
    target:
      halt
  )");
  CfgReachability cfg(img, *img.FindSymbol("target"));
  EXPECT_TRUE(
      cfg.StraightLineReaches(*img.FindSymbol("main"),
                              *img.FindSymbol("target")));
  EXPECT_FALSE(
      cfg.StraightLineReaches(*img.FindSymbol("filler"),
                              *img.FindSymbol("target")));
}

}  // namespace
}  // namespace sbce::core
