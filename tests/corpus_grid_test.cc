// Generated-corpus grid determinism and the service corpus-cell
// addressing mode: the ISSUE-level contract is that a 200+-cell
// generated corpus comes out of RunGrid byte-identical for every
// --jobs value, end to end through the unified analysis API.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/obs/json.h"
#include "src/report/scaling.h"
#include "src/service/api.h"
#include "src/tools/profiles.h"
#include "src/tools/runner.h"

namespace sbce {
namespace {

const corpus::Corpus& DefaultCorpus() {
  static const auto corpus = [] {
    auto generated = corpus::Generate(corpus::CorpusSpec{});
    SBCE_CHECK_MSG(generated.ok(), generated.status().ToString());
    return std::move(generated).value();
  }();
  return corpus;
}

/// Timing-free fingerprint: grid export plus the rolled-up scaling
/// report, both of which exclude wall-clock fields by design.
std::string Fingerprint(const corpus::Corpus& corpus,
                        const tools::GridResult& grid) {
  return obs::Dump(tools::GridToJson(grid)) +
         obs::Dump(report::ScalingToJson(
             report::BuildScalingReport(corpus, grid)));
}

TEST(CorpusParallel, FullCorpusByteIdenticalAcrossJobs) {
  // 72 generated cells x 3 profiles = 216 grid cells, past the 200-cell
  // acceptance floor.
  const auto& corpus = DefaultCorpus();
  const std::vector<tools::ToolProfile> profiles = {
      tools::Bap(), tools::Angr(), tools::Ideal()};
  const auto cells = tools::CorpusCells(corpus, profiles);
  ASSERT_GE(cells.size(), 200u);
  tools::RunOptions options;
  const auto serial = tools::RunGrid(cells, options, 1);
  ASSERT_EQ(serial.cells.size(), cells.size());
  const std::string want = Fingerprint(corpus, serial);
  EXPECT_EQ(Fingerprint(corpus, tools::RunGrid(cells, options, 8)), want);
}

TEST(CorpusParallel, SmokeCorpusIdenticalAcrossJobCountsAndRepeats) {
  auto generated = corpus::Generate(corpus::SmokeSpec());
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  const corpus::Corpus corpus = std::move(generated).value();
  const auto cells = tools::CorpusCells(corpus, tools::PaperTools());
  tools::RunOptions options;
  const std::string want = Fingerprint(corpus, tools::RunGrid(cells, options, 1));
  for (unsigned jobs : {2u, 8u, 0u}) {  // 0 = hardware concurrency
    EXPECT_EQ(Fingerprint(corpus, tools::RunGrid(cells, options, jobs)), want)
        << "jobs=" << jobs;
  }
  EXPECT_EQ(Fingerprint(corpus, tools::RunGrid(cells, options, 8)), want);
}

TEST(CorpusParallel, CorpusCellsLayoutIsCellMajor) {
  const auto& corpus = DefaultCorpus();
  const std::vector<tools::ToolProfile> profiles = {tools::Bap(),
                                                    tools::Ideal()};
  const auto cells = tools::CorpusCells(corpus, profiles);
  ASSERT_EQ(cells.size(), corpus.cells.size() * profiles.size());
  for (size_t c = 0; c < corpus.cells.size(); ++c) {
    for (size_t t = 0; t < profiles.size(); ++t) {
      const auto& cell = cells[c * profiles.size() + t];
      EXPECT_EQ(cell.bomb, &corpus.cells[c].spec);
      EXPECT_EQ(cell.tool.name, profiles[t].name);
    }
  }
}

TEST(ServiceCorpus, RequestJsonRoundTripCarriesCorpusFields) {
  service::AnalysisRequest request;
  request.corpus_cell = "gen_arr_02";
  request.corpus_seed = 1234;
  request.profile = "Angr";
  auto parsed = service::RequestFromJson(service::RequestToJson(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().corpus_cell, "gen_arr_02");
  EXPECT_EQ(parsed.value().corpus_seed, 1234u);
  EXPECT_EQ(parsed.value().profile, "Angr");
}

TEST(ServiceCorpus, RequestDigestDistinguishesCellsAndSeeds) {
  service::AnalysisRequest a;
  a.corpus_cell = "gen_arr_02";
  service::AnalysisRequest b = a;
  EXPECT_NE(service::RequestDigest(a), 0u);
  EXPECT_EQ(service::RequestDigest(a), service::RequestDigest(b));
  b.corpus_cell = "gen_jtab_04";
  EXPECT_NE(service::RequestDigest(a), service::RequestDigest(b));
  b = a;
  b.corpus_seed = 99;
  EXPECT_NE(service::RequestDigest(a), service::RequestDigest(b));
}

TEST(ServiceCorpus, AnalyzeRejectsUnknownCell) {
  service::AnalysisRequest request;
  request.corpus_cell = "gen_bogus_99";
  const auto result = service::Analyze(request);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown corpus cell"), std::string::npos)
      << result.error;
}

TEST(ServiceCorpus, AnalyzeSolvesPositiveCellUnderIdeal) {
  service::AnalysisRequest request;
  request.corpus_cell = "gen_arr_02";
  request.profile = "Ideal";
  const auto result = service::Analyze(request);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.outcome, tools::Outcome::kOk);
  EXPECT_TRUE(result.engine.validated);
  // Same request twice: byte-identical deterministic result export.
  const auto again = service::Analyze(request);
  EXPECT_EQ(obs::Dump(service::ResultToJson(result, true)),
            obs::Dump(service::ResultToJson(again, true)));
}

TEST(ServiceCorpus, AnalyzeNeverTripsNegativeCell) {
  service::AnalysisRequest request;
  request.corpus_cell = "gen_arr_02_neg";
  request.profile = "Ideal";
  const auto result = service::Analyze(request);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(result.outcome, tools::Outcome::kOk);
  EXPECT_FALSE(result.engine.validated);
}

}  // namespace
}  // namespace sbce
