// Simplifier tests: targeted rewrite rules plus a property sweep checking
// semantic equivalence on randomly generated expressions.
#include <gtest/gtest.h>

#include "src/solver/eval.h"
#include "src/solver/simplify.h"
#include "src/support/bits.h"
#include "src/support/rng.h"

namespace sbce::solver {
namespace {

TEST(Simplify, SolvesEqualityAgainstAdd) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 32);
  // (x + 5) == 12  →  x == 7
  ExprRef e = Simplify(
      &pool, pool.Eq(pool.Add(x, pool.Const(5, 32)), pool.Const(12, 32)));
  EXPECT_EQ(ToString(e), "(= x #x7[32])");
}

TEST(Simplify, SolvesEqualityAgainstXorAndNot) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  ExprRef e1 = Simplify(
      &pool, pool.Eq(pool.Xor(x, pool.Const(0xF0, 8)), pool.Const(0x0F, 8)));
  EXPECT_EQ(ToString(e1), "(= x #xff[8])");
  ExprRef e2 =
      Simplify(&pool, pool.Eq(pool.Not(x), pool.Const(0, 8)));
  EXPECT_EQ(ToString(e2), "(= x #xff[8])");
}

TEST(Simplify, ImpossibleZextEqualityBecomesFalse) {
  ExprPool pool;
  ExprRef b = pool.Var("b", 8);
  // zext8→64(b) == 0x1234 is impossible.
  ExprRef e = Simplify(
      &pool, pool.Eq(pool.ZExt(b, 64), pool.Const(0x1234, 64)));
  EXPECT_TRUE(e->IsConst(0));
}

TEST(Simplify, ZextEqualityNarrows) {
  ExprPool pool;
  ExprRef b = pool.Var("b", 8);
  ExprRef e = Simplify(
      &pool, pool.Eq(pool.ZExt(b, 64), pool.Const(0x41, 64)));
  EXPECT_EQ(ToString(e), "(= b #x41[8])");
}

TEST(Simplify, BranchConditionPlumbingCollapses) {
  // The executor generates ¬(zext(cmp) == 0) for taken bnz branches; that
  // should shrink to the bare comparison.
  ExprPool pool;
  ExprRef x = pool.Var("x", 64);
  ExprRef cmp = pool.Binary(Kind::kUlt, x, pool.Const(10, 64));
  ExprRef branch =
      pool.Not(pool.Eq(pool.ZExt(cmp, 64), pool.Const(0, 64)));
  ExprRef e = Simplify(&pool, branch);
  EXPECT_EQ(e, cmp);
}

TEST(Simplify, AddChainsFold) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 16);
  ExprRef e = Simplify(
      &pool,
      pool.Add(pool.Add(pool.Add(x, pool.Const(1, 16)), pool.Const(2, 16)),
               pool.Const(3, 16)));
  EXPECT_EQ(ToString(e), "(bvadd x #x6[16])");
}

TEST(Simplify, BooleanIteCollapses) {
  ExprPool pool;
  ExprRef c = pool.Var("c", 1);
  EXPECT_EQ(Simplify(&pool, pool.Ite(c, pool.True(), pool.False())), c);
  EXPECT_EQ(ToString(Simplify(&pool, pool.Ite(c, pool.False(), pool.True()))),
            "(bvnot c)");
}

TEST(Simplify, IteAgainstConstantArms) {
  ExprPool pool;
  ExprRef c = pool.Var("c", 1);
  ExprRef ite = pool.Ite(c, pool.Const(7, 32), pool.Const(9, 32));
  EXPECT_EQ(Simplify(&pool, pool.Eq(ite, pool.Const(7, 32))), c);
  EXPECT_TRUE(
      Simplify(&pool, pool.Eq(ite, pool.Const(8, 32)))->IsConst(0));
}

TEST(Simplify, SimplifyAllDropsTrivialTruths) {
  ExprPool pool;
  ExprRef x = pool.Var("x", 8);
  std::vector<ExprRef> as = {
      pool.True(),
      pool.Eq(x, x),  // folds to true at build time already
      pool.Ult(x, pool.Const(200, 8)),
  };
  auto out = SimplifyAll(&pool, as);
  EXPECT_EQ(out.size(), 1u);
}

// --- Property sweep: random expressions keep their semantics ------------

class RandomExprEquivalence : public ::testing::TestWithParam<int> {};

ExprRef RandomExpr(ExprPool& pool, SplitMix64& rng, int depth,
                   unsigned width) {
  if (depth == 0 || rng.NextBelow(4) == 0) {
    if (rng.NextBelow(2) == 0) {
      return pool.Var("v" + std::to_string(rng.NextBelow(3)), width);
    }
    return pool.Const(rng.Next(), width);
  }
  const Kind kinds[] = {Kind::kAdd, Kind::kSub,  Kind::kMul, Kind::kAnd,
                        Kind::kOr,  Kind::kXor,  Kind::kShl, Kind::kLShr,
                        Kind::kNot, Kind::kNeg,  Kind::kEq,  Kind::kUlt,
                        Kind::kIte, Kind::kZExt, Kind::kSExt};
  const Kind k = kinds[rng.NextBelow(std::size(kinds))];
  switch (k) {
    case Kind::kNot:
    case Kind::kNeg:
      return pool.Unary(k, RandomExpr(pool, rng, depth - 1, width));
    case Kind::kEq:
    case Kind::kUlt: {
      ExprRef a = RandomExpr(pool, rng, depth - 1, width);
      ExprRef b = RandomExpr(pool, rng, depth - 1, width);
      // Comparisons return 1-bit; widen back so composition stays typed.
      return pool.ZExt(pool.Binary(k, a, b), width);
    }
    case Kind::kIte: {
      ExprRef c = pool.NonZero(RandomExpr(pool, rng, depth - 1, width));
      return pool.Ite(c, RandomExpr(pool, rng, depth - 1, width),
                      RandomExpr(pool, rng, depth - 1, width));
    }
    case Kind::kZExt:
    case Kind::kSExt: {
      if (width < 2) return pool.Const(rng.Next(), width);
      const unsigned inner = 1 + static_cast<unsigned>(
                                     rng.NextBelow(width - 1));
      ExprRef a = RandomExpr(pool, rng, depth - 1, inner);
      return k == Kind::kZExt ? pool.ZExt(a, width) : pool.SExt(a, width);
    }
    default:
      return pool.Binary(k, RandomExpr(pool, rng, depth - 1, width),
                         RandomExpr(pool, rng, depth - 1, width));
  }
}

TEST_P(RandomExprEquivalence, SimplifiedEvaluatesIdentically) {
  SplitMix64 rng(GetParam() * 1713 + 5);
  ExprPool pool;
  const unsigned width = 1 + static_cast<unsigned>(rng.NextBelow(32));
  ExprRef original = RandomExpr(pool, rng, 4, width);
  ExprRef simplified = Simplify(&pool, original);
  for (int trial = 0; trial < 16; ++trial) {
    Assignment a{{"v0", rng.Next()}, {"v1", rng.Next()}, {"v2", rng.Next()}};
    ASSERT_EQ(Evaluate(original, a), Evaluate(simplified, a))
        << "width=" << width << "\n  orig: " << ToString(original)
        << "\n  simp: " << ToString(simplified);
  }
  // Idempotence.
  EXPECT_EQ(Simplify(&pool, simplified), simplified);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprEquivalence,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace sbce::solver
