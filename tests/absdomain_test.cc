// Abstract-domain tests: exhaustive small-width soundness oracles proving
// every transfer function over-approximates the concrete semantics
// (FoldBinaryConst / the evaluator, including the SMT-LIB division-by-zero
// cases), plus lattice-operation units and a randomized whole-DAG sweep
// checking AbsOf against concrete evaluation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/solver/absdomain.h"
#include "src/solver/eval.h"
#include "src/support/bits.h"
#include "src/support/rng.h"

namespace sbce::solver {
namespace {

constexpr Kind kBinaryKinds[] = {
    Kind::kAdd,  Kind::kSub,  Kind::kMul,  Kind::kUDiv, Kind::kURem,
    Kind::kSDiv, Kind::kSRem, Kind::kAnd,  Kind::kOr,   Kind::kXor,
    Kind::kShl,  Kind::kLShr, Kind::kAShr, Kind::kEq,   Kind::kUlt,
    Kind::kSlt,  Kind::kUle,  Kind::kSle};

bool IsCompareKind(Kind k) {
  return k == Kind::kEq || k == Kind::kUlt || k == Kind::kSlt ||
         k == Kind::kUle || k == Kind::kSle;
}

std::string Describe(const AbsValue& v) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "w=%u bottom=%d known0=%llx known1=%llx u=[%llu,%llu] "
                "s=[%lld,%lld]",
                v.width, v.bottom, (unsigned long long)v.known0,
                (unsigned long long)v.known1, (unsigned long long)v.umin,
                (unsigned long long)v.umax, (long long)v.smin,
                (long long)v.smax);
  return buf;
}

/// Soundness of one binary transfer: every concrete (a, b) drawn from the
/// two abstract inputs must land inside the abstract output.
void CheckBinarySound(Kind kind, const AbsValue& va,
                      const std::vector<uint64_t>& as, const AbsValue& vb,
                      const std::vector<uint64_t>& bs, unsigned w) {
  const AbsValue out = AbsBinaryOp(kind, va, vb);
  const unsigned wout = IsCompareKind(kind) ? 1 : w;
  ASSERT_EQ(out.width, wout);
  for (uint64_t a : as) {
    for (uint64_t b : bs) {
      const uint64_t r = FoldBinaryConst(kind, a, b, w);
      ASSERT_TRUE(out.Contains(r))
          << KindName(kind) << " a=" << a << " b=" << b << " r=" << r
          << "\n  va:  " << Describe(va) << "\n  vb:  " << Describe(vb)
          << "\n  out: " << Describe(out);
    }
  }
}

// --- Exhaustive interval oracle ------------------------------------------

/// All unsigned intervals at width w, with the concrete values they
/// contain.
std::vector<std::pair<AbsValue, std::vector<uint64_t>>> AllIntervals(
    unsigned w) {
  const uint64_t top = TruncToWidth(~uint64_t{0}, w);
  std::vector<std::pair<AbsValue, std::vector<uint64_t>>> out;
  for (uint64_t lo = 0; lo <= top; ++lo) {
    for (uint64_t hi = lo; hi <= top; ++hi) {
      std::vector<uint64_t> members;
      for (uint64_t v = lo; v <= hi; ++v) members.push_back(v);
      out.emplace_back(AbsURange(w, lo, hi), std::move(members));
    }
  }
  return out;
}

class IntervalOracle : public ::testing::TestWithParam<unsigned> {};

TEST_P(IntervalOracle, EveryBinaryTransferIsSound) {
  const unsigned w = GetParam();
  const auto intervals = AllIntervals(w);
  for (const auto& [va, as] : intervals) {
    for (const auto& [vb, bs] : intervals) {
      for (Kind kind : kBinaryKinds) {
        CheckBinarySound(kind, va, as, vb, bs, w);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, IntervalOracle, ::testing::Values(1u, 2u, 3u));

// Width 4, exhaustive intervals, restricted to the transfers with the
// hairiest corner cases (division, remainder, shifts — including the
// SMT-LIB x/0 semantics, which the zero-containing intervals exercise).
TEST(IntervalOracleW4, DivRemShiftTransfersAreSound) {
  const auto intervals = AllIntervals(4);
  constexpr Kind kinds[] = {Kind::kUDiv, Kind::kURem, Kind::kSDiv,
                            Kind::kSRem, Kind::kShl,  Kind::kLShr,
                            Kind::kAShr};
  for (const auto& [va, as] : intervals) {
    for (const auto& [vb, bs] : intervals) {
      for (Kind kind : kinds) CheckBinarySound(kind, va, as, vb, bs, 4);
    }
  }
}

// --- Exhaustive known-bits oracle ----------------------------------------

/// All 27 consistent known-bits triples at width 3 (each bit is known-0,
/// known-1 or unknown), with their concrete members.
std::vector<std::pair<AbsValue, std::vector<uint64_t>>> AllKnownBits3() {
  std::vector<std::pair<AbsValue, std::vector<uint64_t>>> out;
  for (int b0 = 0; b0 < 3; ++b0) {
    for (int b1 = 0; b1 < 3; ++b1) {
      for (int b2 = 0; b2 < 3; ++b2) {
        const int state[3] = {b0, b1, b2};
        AbsValue v = AbsTop(3);
        for (unsigned i = 0; i < 3; ++i) {
          if (state[i] == 0) v.known0 |= uint64_t{1} << i;
          if (state[i] == 1) v.known1 |= uint64_t{1} << i;
        }
        v = Normalize(v);
        std::vector<uint64_t> members;
        for (uint64_t c = 0; c < 8; ++c) {
          bool ok = true;
          for (unsigned i = 0; i < 3; ++i) {
            const bool bit = (c >> i) & 1;
            if (state[i] == 0 && bit) ok = false;
            if (state[i] == 1 && !bit) ok = false;
          }
          if (ok) members.push_back(c);
        }
        out.emplace_back(v, std::move(members));
      }
    }
  }
  return out;
}

TEST(KnownBitsOracle, EveryBinaryTransferIsSoundAtWidth3) {
  const auto inputs = AllKnownBits3();
  for (const auto& [va, as] : inputs) {
    for (const auto& [vb, bs] : inputs) {
      for (Kind kind : kBinaryKinds) {
        CheckBinarySound(kind, va, as, vb, bs, 3);
      }
    }
  }
}

// Mixed interval × known-bits inputs at width 3: meet an interval with a
// bit constraint on each side, collect the exact member set, and check
// every transfer. This exercises the cross-tightening paths Normalize
// applies when both components carry information.
TEST(MixedOracle, IntervalMeetBitsTransfersAreSoundAtWidth3) {
  const auto intervals = AllIntervals(3);
  const auto bits = AllKnownBits3();
  // Sample every (interval, bits) meet as an abstract input.
  std::vector<std::pair<AbsValue, std::vector<uint64_t>>> inputs;
  for (const auto& [iv, im] : intervals) {
    for (const auto& [bv, bm] : bits) {
      const AbsValue met = AbsMeet(iv, bv);
      std::vector<uint64_t> members;
      for (uint64_t v : im) {
        for (uint64_t b : bm) {
          if (v == b) members.push_back(v);
        }
      }
      // Bottom detection is allowed to be incomplete, so an empty member
      // set only means there is nothing to check against.
      if (members.empty()) continue;
      for (uint64_t v : members) {
        ASSERT_TRUE(met.Contains(v))
            << "meet lost member " << v << "\n  iv:  " << Describe(iv)
            << "\n  bv:  " << Describe(bv) << "\n  met: " << Describe(met);
      }
      inputs.emplace_back(met, std::move(members));
    }
  }
  // The full cross product is too large; stride through it
  // deterministically.
  constexpr Kind kinds[] = {Kind::kAdd, Kind::kMul,  Kind::kUDiv,
                            Kind::kAnd, Kind::kOr,   Kind::kXor,
                            Kind::kShl, Kind::kAShr, Kind::kSlt};
  for (size_t i = 0; i < inputs.size(); i += 7) {
    for (size_t j = 0; j < inputs.size(); j += 11) {
      for (Kind kind : kinds) {
        CheckBinarySound(kind, inputs[i].first, inputs[i].second,
                         inputs[j].first, inputs[j].second, 3);
      }
    }
  }
}

// Width 6, deterministically sampled interval pairs: catches scaling bugs
// (shift amounts, sign boundaries) the tiny widths cannot reach.
TEST(SampledOracle, Width6TransfersAreSound) {
  SplitMix64 rng(0xabcdef12345678ull);
  constexpr unsigned w = 6;
  for (int round = 0; round < 400; ++round) {
    uint64_t alo = rng.NextBelow(64), ahi = rng.NextBelow(64);
    uint64_t blo = rng.NextBelow(64), bhi = rng.NextBelow(64);
    if (alo > ahi) std::swap(alo, ahi);
    if (blo > bhi) std::swap(blo, bhi);
    const AbsValue va = AbsURange(w, alo, ahi);
    const AbsValue vb = AbsURange(w, blo, bhi);
    std::vector<uint64_t> as, bs;
    for (uint64_t v = alo; v <= ahi; ++v) as.push_back(v);
    for (uint64_t v = blo; v <= bhi; ++v) bs.push_back(v);
    for (Kind kind : kBinaryKinds) CheckBinarySound(kind, va, as, vb, bs, w);
  }
}

// --- Division by zero (explicit SMT-LIB semantics) ------------------------

TEST(DivByZero, TransfersMatchSmtLibSemantics) {
  const AbsValue zero = AbsConst(0, 8);
  const AbsValue any = AbsTop(8);
  // x udiv 0 = all-ones for every x: the transfer must be that singleton.
  const AbsValue udiv = AbsBinaryOp(Kind::kUDiv, any, zero);
  EXPECT_TRUE(udiv.IsSingleton());
  EXPECT_EQ(udiv.SingletonValue(), 0xffu);
  // x urem 0 = x: identity, so a constrained x stays constrained.
  const AbsValue urem =
      AbsBinaryOp(Kind::kURem, AbsURange(8, 10, 20), zero);
  EXPECT_EQ(urem.umin, 10u);
  EXPECT_EQ(urem.umax, 20u);
  // x sdiv 0 = (x < 0 ? 1 : -1); x srem 0 = x. Oracle-checked too; here we
  // pin the exact singleton outcomes for fixed signs.
  const AbsValue sdiv_pos =
      AbsBinaryOp(Kind::kSDiv, AbsURange(8, 1, 5), zero);
  EXPECT_TRUE(sdiv_pos.IsSingleton());
  EXPECT_EQ(sdiv_pos.SingletonValue(), 0xffu);  // -1
  const AbsValue srem = AbsBinaryOp(Kind::kSRem, AbsConst(0xf0, 8), zero);
  EXPECT_TRUE(srem.IsSingleton());
  EXPECT_EQ(srem.SingletonValue(), 0xf0u);
}

// --- Lattice units --------------------------------------------------------

TEST(Lattice, JoinContainsBothSides) {
  const AbsValue j = AbsJoin(AbsConst(3, 8), AbsConst(12, 8));
  EXPECT_TRUE(j.Contains(3));
  EXPECT_TRUE(j.Contains(12));
  EXPECT_FALSE(j.bottom);
}

TEST(Lattice, MeetOfDisjointIntervalsIsBottom) {
  const AbsValue m = AbsMeet(AbsURange(8, 0, 4), AbsURange(8, 9, 12));
  EXPECT_TRUE(m.bottom);
}

TEST(Lattice, NormalizeTightensBitsFromInterval) {
  // [12, 13] = 0b110x: the common prefix pins bits 1..7.
  AbsValue v = AbsURange(8, 12, 13);
  EXPECT_EQ(v.known1 & 0xfe, 0x0cu);
  EXPECT_EQ(v.known0 & 0xfe, 0xf2u);
}

TEST(Lattice, NormalizeTightensIntervalFromBits) {
  AbsValue v = AbsTop(8);
  v.known1 = 0x80;  // sign bit set
  v = Normalize(v);
  EXPECT_GE(v.umin, 0x80u);
  EXPECT_LT(v.smax, 0);  // signed range rotated negative
}

// --- Whole-DAG sweep: AbsOf vs the evaluator ------------------------------

ExprRef RandomAbsExpr(ExprPool& pool, SplitMix64& rng, int depth,
                      unsigned width) {
  if (depth == 0 || rng.NextBelow(4) == 0) {
    if (rng.NextBelow(2) == 0) {
      return pool.Var("v" + std::to_string(rng.NextBelow(3)), width);
    }
    return pool.Const(rng.Next(), width);
  }
  const Kind kinds[] = {Kind::kAdd,  Kind::kSub,     Kind::kMul,
                        Kind::kUDiv, Kind::kURem,    Kind::kSDiv,
                        Kind::kSRem, Kind::kAnd,     Kind::kOr,
                        Kind::kXor,  Kind::kShl,     Kind::kLShr,
                        Kind::kAShr, Kind::kNot,     Kind::kNeg,
                        Kind::kEq,   Kind::kUlt,     Kind::kSlt,
                        Kind::kIte,  Kind::kZExt,    Kind::kSExt,
                        Kind::kConcat, Kind::kExtract};
  const Kind k = kinds[rng.NextBelow(std::size(kinds))];
  switch (k) {
    case Kind::kNot:
    case Kind::kNeg:
      return pool.Unary(k, RandomAbsExpr(pool, rng, depth - 1, width));
    case Kind::kEq:
    case Kind::kUlt:
    case Kind::kSlt: {
      ExprRef a = RandomAbsExpr(pool, rng, depth - 1, width);
      ExprRef b = RandomAbsExpr(pool, rng, depth - 1, width);
      return pool.ZExt(pool.Binary(k, a, b), width);
    }
    case Kind::kIte: {
      ExprRef c = pool.NonZero(RandomAbsExpr(pool, rng, depth - 1, width));
      return pool.Ite(c, RandomAbsExpr(pool, rng, depth - 1, width),
                      RandomAbsExpr(pool, rng, depth - 1, width));
    }
    case Kind::kZExt:
    case Kind::kSExt: {
      if (width < 2) return pool.Const(rng.Next(), width);
      const unsigned inner =
          1 + static_cast<unsigned>(rng.NextBelow(width - 1));
      ExprRef a = RandomAbsExpr(pool, rng, depth - 1, inner);
      return k == Kind::kZExt ? pool.ZExt(a, width) : pool.SExt(a, width);
    }
    case Kind::kConcat: {
      if (width < 2) return pool.Const(rng.Next(), width);
      const unsigned lo = 1 + static_cast<unsigned>(rng.NextBelow(width - 1));
      return pool.Concat(RandomAbsExpr(pool, rng, depth - 1, width - lo),
                         RandomAbsExpr(pool, rng, depth - 1, lo));
    }
    case Kind::kExtract: {
      const unsigned outer = width + static_cast<unsigned>(rng.NextBelow(4));
      ExprRef a = RandomAbsExpr(pool, rng, depth - 1, outer);
      const unsigned lo = static_cast<unsigned>(rng.NextBelow(outer - width + 1));
      return pool.Extract(a, lo + width - 1, lo);
    }
    default:
      return pool.Binary(k, RandomAbsExpr(pool, rng, depth - 1, width),
                         RandomAbsExpr(pool, rng, depth - 1, width));
  }
}

class AbsOfSoundness : public ::testing::TestWithParam<int> {};

TEST_P(AbsOfSoundness, ConcreteEvaluationLandsInAbstractValue) {
  SplitMix64 rng(GetParam() * 2654435761u + 17);
  ExprPool pool;
  const unsigned width = 1 + static_cast<unsigned>(rng.NextBelow(16));
  ExprRef e = RandomAbsExpr(pool, rng, 4, width);
  const AbsValue av = AbsOf(e);
  ASSERT_EQ(av.width, e->width);
  for (int trial = 0; trial < 32; ++trial) {
    Assignment a{{"v0", rng.Next()}, {"v1", rng.Next()}, {"v2", rng.Next()}};
    const uint64_t v = Evaluate(e, a);
    ASSERT_TRUE(av.Contains(v))
        << "value " << v << " escaped " << Describe(av) << "\n  expr: "
        << ToString(e);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbsOfSoundness, ::testing::Range(0, 80));

// Memoization across pools: a session pool importing a DAG whose leaves
// live in another pool must publish per-node results into each node's own
// pool without id collisions.
TEST(AbsMemoTest, MixedPoolDagsAreSound) {
  ExprPool engine_pool;
  ExprRef x = engine_pool.Var("x", 8);
  ExprRef e = engine_pool.Add(x, engine_pool.Const(3, 8));
  const AbsValue from_engine = AbsOf(e);
  ExprPool session_pool;
  ExprRef imported = ImportInto(&session_pool, e);
  const AbsValue from_session = AbsOf(imported);
  EXPECT_EQ(from_engine.umin, from_session.umin);
  EXPECT_EQ(from_engine.umax, from_session.umax);
  EXPECT_EQ(from_engine.known0, from_session.known0);
  EXPECT_EQ(from_engine.known1, from_session.known1);
  // Repeat lookups hit the memo (same values, no recomputation crash).
  EXPECT_EQ(AbsOf(e).umax, from_engine.umax);
  EXPECT_EQ(AbsOf(imported).umax, from_session.umax);
}

}  // namespace
}  // namespace sbce::solver
